// Package shardmap places keys onto shards with a deterministic
// consistent-hash ring. It is the routing brain of bft/sharded: every
// client and every test that needs to know which PBFT group owns a key
// builds the same ring from (shards, virtual nodes) and gets the same
// answer, with no coordination and no shared state.
//
// The ring hashes VirtualNodes points per shard onto a 64-bit circle; a
// key is owned by the shard whose next clockwise point follows the key's
// hash. Virtual nodes smooth the per-shard load (balance tightens as
// ~1/sqrt(vnodes·shards)), and consistent hashing bounds remap churn:
// growing from k to k+1 shards moves only the keys the new shard takes
// over — about 1/(k+1) of the key space — and every moved key moves TO
// the new shard, never between survivors.
package shardmap

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// DefaultVirtualNodes is the per-shard virtual-node count used when a
// caller passes 0: enough for <10% imbalance at small shard counts
// without making ring construction or lookup noticeable.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring. Construct with New; all
// methods are safe for concurrent use (the ring is never mutated after
// construction — resizing means building a new Ring).
//
// bftlint:owner=shared (immutable after construction)
type Ring struct {
	shards int
	vnodes int
	points []point // sorted ascending by hash
}

type point struct {
	hash  uint64
	shard int
}

// New builds the ring for `shards` shards with `vnodes` virtual nodes
// each (0 means DefaultVirtualNodes). Construction is deterministic:
// two rings with equal parameters route every key identically, on every
// machine and every run.
func New(shards, vnodes int) *Ring {
	if shards <= 0 {
		panic("shardmap: shards must be positive")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{shards: shards, vnodes: vnodes, points: make([]point, 0, shards*vnodes)}
	var buf [12]byte // shard u32 ++ vnode u64, the fixed vnode naming scheme
	for s := 0; s < shards; s++ {
		binary.BigEndian.PutUint32(buf[0:4], uint32(s))
		for v := 0; v < vnodes; v++ {
			binary.BigEndian.PutUint64(buf[4:12], uint64(v))
			sum := sha256.Sum256(buf[:])
			r.points = append(r.points, point{hash: binary.BigEndian.Uint64(sum[:8]), shard: s})
		}
	}
	// Sort by hash; ties (vanishingly rare with 64-bit SHA prefixes) break
	// by shard id so the order never depends on construction order.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the number of shards the ring routes over.
func (r *Ring) Shards() int { return r.shards }

// VirtualNodes returns the per-shard virtual-node count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Owner returns the shard owning key: the shard of the first ring point
// at or clockwise-after the key's hash.
func (r *Ring) Owner(key []byte) int {
	h := KeyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].shard
}

// KeyHash returns the 64-bit position of a key on the circle. Exposed so
// tests and tooling can reason about placement directly.
func KeyHash(key []byte) uint64 {
	sum := sha256.Sum256(key)
	return binary.BigEndian.Uint64(sum[:8])
}
