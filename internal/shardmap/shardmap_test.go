package shardmap

import (
	"fmt"
	"testing"
)

// corpus returns nKeys deterministic test keys.
func corpus(nKeys int) [][]byte {
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%d", i))
	}
	return keys
}

func TestRingDeterminism(t *testing.T) {
	a, b := New(4, 0), New(4, 0)
	if a.VirtualNodes() != DefaultVirtualNodes {
		t.Fatalf("vnodes default = %d", a.VirtualNodes())
	}
	for _, k := range corpus(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings disagree on %q: %d vs %d", k, a.Owner(k), b.Owner(k))
		}
	}
	// Owners must be stable across calls (no internal mutation).
	k := []byte("stability")
	first := a.Owner(k)
	for i := 0; i < 100; i++ {
		if a.Owner(k) != first {
			t.Fatal("Owner is not stable")
		}
	}
}

func TestRingBalance(t *testing.T) {
	// With 128 vnodes/shard the max/mean load ratio over a 20k-key corpus
	// must stay tight; a broken hash or sort degenerates this immediately.
	for _, shards := range []int{2, 4, 8} {
		r := New(shards, 0)
		counts := make([]int, shards)
		keys := corpus(20000)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		mean := float64(len(keys)) / float64(shards)
		for s, c := range counts {
			if ratio := float64(c) / mean; ratio < 0.70 || ratio > 1.30 {
				t.Errorf("shards=%d: shard %d holds %d keys (%.2fx mean; want within ±30%%)",
					shards, s, c, ratio)
			}
		}
	}
}

func TestRingMinimalRemapOnGrow(t *testing.T) {
	// Growing k -> k+1: every moved key must move TO the new shard (no
	// survivor-to-survivor churn), and the moved fraction must be near
	// 1/(k+1) — the consistent-hashing contract.
	keys := corpus(20000)
	for _, k := range []int{1, 2, 4} {
		old, grown := New(k, 0), New(k+1, 0)
		moved := 0
		for _, key := range keys {
			a, b := old.Owner(key), grown.Owner(key)
			if a == b {
				continue
			}
			moved++
			if b != k {
				t.Fatalf("k=%d: key %q moved %d -> %d, not to the new shard %d", k, key, a, b, k)
			}
		}
		want := float64(len(keys)) / float64(k+1)
		if f := float64(moved); f < 0.6*want || f > 1.4*want {
			t.Errorf("k=%d->%d: %d keys moved, want ≈ %.0f (1/(k+1) of the space)", k, k+1, moved, want)
		}
	}
}

func TestRingMinimalRemapOnShrink(t *testing.T) {
	// Shrinking k+1 -> k: only keys owned by the removed (highest) shard
	// may move; everything else stays put.
	keys := corpus(20000)
	for _, k := range []int{1, 2, 4} {
		big, small := New(k+1, 0), New(k, 0)
		for _, key := range keys {
			a, b := big.Owner(key), small.Owner(key)
			if a != b && a != k {
				t.Fatalf("k=%d->%d: key %q moved %d -> %d though its owner survived", k+1, k, key, a, b)
			}
		}
	}
}

func TestRingSingleShard(t *testing.T) {
	r := New(1, 4)
	for _, k := range corpus(100) {
		if r.Owner(k) != 0 {
			t.Fatal("single-shard ring must own everything")
		}
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r := New(8, 0)
	keys := corpus(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owner(keys[i%len(keys)])
	}
}
