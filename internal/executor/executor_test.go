package executor

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/crypto"
	"repro/internal/kvservice"
	"repro/internal/message"
	"repro/internal/statemachine"
)

// captureOut records replies for inspection.
type captureOut struct {
	mu   sync.Mutex
	reps []*message.Reply
}

func (c *captureOut) SendReply(rep *message.Reply) {
	c.mu.Lock()
	c.reps = append(c.reps, rep)
	c.mu.Unlock()
}

func (c *captureOut) replies() []*message.Reply {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*message.Reply(nil), c.reps...)
}

type harness struct {
	ex     *Executor
	out    *captureOut
	region *statemachine.Region
	mgr    *checkpoint.Manager
	events chan Event
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	region := statemachine.NewRegion(kvservice.MinStateSize, 1024)
	svc := kvservice.New(region)
	mgr := checkpoint.NewManager(region, 16)
	h := &harness{
		out:    &captureOut{},
		region: region,
		mgr:    mgr,
		events: make(chan Event, 64),
	}
	h.ex = New(Config{
		Self:          0,
		DigestReplies: true,
		SmallResult:   32,
		Service:       svc,
		Ckpt:          mgr,
		Cache:         NewReplyCache(),
		Out:           h.out,
		Report:        func(ev Event) { h.events <- ev },
	})
	t.Cleanup(h.ex.Close)
	return h
}

func req(client message.NodeID, ts uint64, op []byte) *message.Request {
	return &message.Request{Client: client, Timestamp: ts, Replier: message.NoNode, Op: op}
}

func TestExecBatchRepliesAndCaches(t *testing.T) {
	h := newHarness(t)
	cl := message.ClientIDBase
	h.ex.ExecBatch(1, 0, nil, false, []Entry{
		{Req: req(cl, 1, kvservice.Incr())},
		{Req: req(cl+1, 1, kvservice.Incr())},
	})
	h.ex.Sync(func() {})
	reps := h.out.replies()
	if len(reps) != 2 {
		t.Fatalf("got %d replies, want 2", len(reps))
	}
	if got := kvservice.DecodeU64(reps[0].Result); got != 1 {
		t.Fatalf("first incr -> %d", got)
	}
	if got := kvservice.DecodeU64(reps[1].Result); got != 2 {
		t.Fatalf("second incr -> %d", got)
	}
	if cr := h.ex.Cache().Get(cl); cr == nil || cr.Timestamp != 1 {
		t.Fatalf("cache entry missing after execution: %+v", cr)
	}
}

func TestExactlyOnceAndResend(t *testing.T) {
	h := newHarness(t)
	cl := message.ClientIDBase
	h.ex.ExecBatch(1, 0, nil, false, []Entry{{Req: req(cl, 5, kvservice.Incr())}})
	// A duplicate at the same timestamp resends the cached reply instead of
	// re-executing; an older timestamp is dropped.
	h.ex.ExecBatch(2, 0, nil, false, []Entry{
		{Req: req(cl, 5, kvservice.Incr())},
		{Req: req(cl, 4, kvservice.Incr())},
	})
	h.ex.ResendReply(cl, 0)
	h.ex.Sync(func() {})
	reps := h.out.replies()
	if len(reps) != 3 { // execute + duplicate resend + explicit resend
		t.Fatalf("got %d replies, want 3", len(reps))
	}
	for i, rep := range reps {
		if got := kvservice.DecodeU64(rep.Result); got != 1 {
			t.Fatalf("reply %d carries counter %d, want 1 (re-execution leaked)", i, got)
		}
	}
}

func TestTentativeFinalize(t *testing.T) {
	h := newHarness(t)
	cl := message.ClientIDBase
	h.ex.ExecBatch(1, 0, nil, true, []Entry{{Req: req(cl, 1, kvservice.Incr())}})
	h.ex.Sync(func() {})
	if rep := h.out.replies()[0]; !rep.Tentative {
		t.Fatal("reply not marked tentative")
	}
	if cr := h.ex.Cache().Get(cl); !cr.Tentative {
		t.Fatal("cache entry not tentative")
	}
	h.ex.Finalize([]Final{{Client: cl, Timestamp: 1}})
	h.ex.Sync(func() {})
	if cr := h.ex.Cache().Get(cl); cr.Tentative {
		t.Fatal("finalize did not clear the tentative flag")
	}
}

func TestCheckpointEventDigest(t *testing.T) {
	h := newHarness(t)
	cl := message.ClientIDBase
	h.ex.ExecBatch(1, 0, nil, false, []Entry{{Req: req(cl, 1, kvservice.Incr())}})
	h.ex.TakeCheckpoint(1, 7)
	ev := <-h.events
	if ev.Seq != 1 || ev.Epoch != 7 {
		t.Fatalf("event = %+v", ev)
	}
	// The reported digest must match what the manager + cache would give.
	var want crypto.Digest
	h.ex.Sync(func() {
		snap, ok := h.mgr.Snapshot(1)
		if !ok {
			t.Error("snapshot 1 missing")
			return
		}
		want = checkpoint.CombinedDigest(snap.Root, snap.Extra)
	})
	if ev.Digest != want {
		t.Fatal("reported digest disagrees with the manager snapshot")
	}
	if st := h.ex.Stats(); st.CkptTime <= 0 || st.PagesDigested == 0 {
		t.Fatalf("checkpoint stats not tracked: %+v", st)
	}
}

func TestPrecomputedResultSkipsService(t *testing.T) {
	h := newHarness(t)
	cl := message.NodeID(2) // replica id: a recovery request
	pre := []byte{9, 9, 9, 9, 9, 9, 9, 9}
	h.ex.ExecBatch(1, 0, nil, false, []Entry{
		{Req: req(cl, 1, kvservice.Incr()), Pre: pre, HasPre: true},
	})
	h.ex.Sync(func() {})
	if !bytes.Equal(h.out.replies()[0].Result, pre) {
		t.Fatal("precomputed result not used")
	}
	// The service op must not have run: counter unchanged.
	h.ex.ExecReadOnly(req(message.ClientIDBase, 1, kvservice.Get()), 0)
	h.ex.Sync(func() {})
	reps := h.out.replies()
	if got := kvservice.DecodeU64(reps[len(reps)-1].Result); got != 0 {
		t.Fatalf("counter = %d after precomputed entry, want 0", got)
	}
}

func TestDigestRepliesSlimming(t *testing.T) {
	h := newHarness(t)
	cl := message.ClientIDBase
	// Write a blob, then read it back with a non-self designated replier:
	// the reply must be slimmed to a digest.
	h.ex.ExecBatch(1, 0, nil, false, []Entry{
		{Req: req(cl, 1, kvservice.WriteBlob(bytes.Repeat([]byte{7}, 256)))},
	})
	rr := req(cl, 2, kvservice.ReadBlob(256))
	rr.Replier = 3
	h.ex.ExecReadOnly(rr, 0)
	h.ex.Sync(func() {})
	reps := h.out.replies()
	last := reps[len(reps)-1]
	if last.HasResult || last.Result != nil {
		t.Fatal("reply for non-designated replier not slimmed")
	}
	if last.ResultDigest.IsZero() {
		t.Fatal("slimmed reply lacks result digest")
	}
}

func TestReplyCacheRoundTrip(t *testing.T) {
	c := NewReplyCache()
	c.Set(message.ClientIDBase, 3, []byte("abc"), false)
	c.Set(message.ClientIDBase+5, 9, nil, true)
	b := c.Marshal()

	c2 := NewReplyCache()
	c2.Install(b)
	if c2.Len() != 2 {
		t.Fatalf("installed %d entries, want 2", c2.Len())
	}
	cr := c2.Get(message.ClientIDBase)
	if cr == nil || cr.Timestamp != 3 || !bytes.Equal(cr.Result, []byte("abc")) {
		t.Fatalf("round trip lost entry: %+v", cr)
	}
	// Checkpointed replies install committed regardless of live flags.
	if c2.Get(message.ClientIDBase + 5).Tentative {
		t.Fatal("installed entry kept tentative flag")
	}
	marks := Marks(b)
	if len(marks) != 2 || marks[0].Timestamp != 3 || marks[1].Timestamp != 9 {
		t.Fatalf("marks = %+v", marks)
	}
	// Marshaling must be deterministic (it is checkpointed state).
	if !bytes.Equal(b, c2.Marshal()) {
		t.Fatal("marshal not deterministic across install")
	}
}
