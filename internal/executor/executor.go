// Package executor is stage 3 of the replica pipeline: a single ordered
// goroutine that exclusively owns the pieces of replica state touched by
// request execution — the service (and through it the statemachine.Region),
// the hierarchical checkpoint.Manager (§5.3), and the last-reply cache
// (§2.4.4's last-rep) — fed by the protocol core through an ordered command
// channel.
//
// The cost it moves off the event loop is the tail of the per-batch
// critical path: Service.Execute for every request in the batch, the
// copy-on-write page digesting of a checkpoint epoch, and reply
// construction. With those inline, agreement for batch n+1 stalls behind
// execution of batch n; with the executor, a committed batch's
// execution+digest+reply work overlaps the core's prepare/commit processing
// for subsequent batches — the overlap §5.1.2's tentative execution was
// designed to exploit, now realized across cores:
//
//	event loop (protocol state) -> ordered commands -> executor
//	     (Region + checkpoint.Manager + reply cache) -> replies to egress
//
// Ownership rules:
//
//   - The executor goroutine is the ONLY goroutine that touches the
//     Region, the checkpoint manager, or the reply cache while the
//     pipeline runs. The protocol core keeps lightweight mirrors (last
//     replied timestamp per client, own checkpoint digests) that it updates
//     from command dispatch and from checkpoint Events reported back.
//   - Rare paths that must observe or mutate execution state from the core
//     (view-change rollback of tentative executions, state-transfer page
//     install, proactive-recovery state checking, test inspection) run as
//     Sync rendezvous commands: the core blocks until the closure has run
//     on the executor goroutine, which both drains every earlier command
//     and excludes concurrent execution.
//   - The executor never blocks on the core: checkpoint digests are
//     reported through a non-blocking callback, and replies go to the
//     egress pipeline (non-blocking, drop-on-overflow) or straight to the
//     thread-safe transport. The core MAY block on a full command queue
//     (counted in Stats.Stalls); because the executor always drains, this
//     cannot deadlock.
//
// Command order equals dispatch order, so the executor observes exactly the
// interleaving the serial path would have produced: batches execute in
// sequence-number order, a read-only request runs after the prefix it was
// queued behind, and a rollback rendezvous reverts precisely the tentative
// batches dispatched before it.
package executor

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/crypto"
	"repro/internal/message"
	"repro/internal/statemachine"
)

// Outbound transmits one finished reply. Implementations must be safe to
// call from the executor goroutine concurrently with event-loop sends: the
// replica's implementation routes through the egress pipeline (or the
// thread-safe transport) and touches no protocol state.
type Outbound interface {
	SendReply(rep *message.Reply)
}

// Entry is one request of a batch command. Pre carries a result the core
// precomputed on the event loop (recovery requests, whose execution is pure
// protocol bookkeeping and never touches the Region); for ordinary requests
// the executor runs Service.Execute.
type Entry struct {
	Req    *message.Request
	Pre    []byte
	HasPre bool
}

// Final marks one tentative cached reply as committed (§5.1.2).
type Final struct {
	Client    message.NodeID
	Timestamp uint64
}

// Event reports one taken checkpoint back to the protocol core, which
// broadcasts the digest or defers it until the batch commits (§5.1.2). The
// epoch echoes the core's execution epoch at dispatch: the core bumps it
// whenever a rendezvous rebuilds execution state (rollback, state transfer,
// recovery reset), so reports for snapshots destroyed in between are
// recognized as stale and dropped.
type Event struct {
	Seq    message.Seq
	Digest crypto.Digest
	Epoch  uint64
}

// Config assembles an executor. Service, Ckpt, and Cache hand over
// ownership: after New, the caller may touch them only inside Sync
// closures.
type Config struct {
	// Self is the replica id stamped into replies.
	Self message.NodeID
	// DigestReplies applies §5.1.1: only the designated replier sends the
	// full result.
	DigestReplies bool
	// SmallResult is the §5.1.1 threshold below which results are always
	// sent in full.
	SmallResult int
	// QueueCap bounds the command queue (0 means 8192); a full queue
	// blocks the dispatcher (counted in Stats.Stalls), it never drops.
	QueueCap int

	Service statemachine.Service // bftlint:owner=executor
	Ckpt    *checkpoint.Manager  // bftlint:owner=executor
	Cache   *ReplyCache          // bftlint:owner=executor
	Out     Outbound
	// Report delivers checkpoint Events; it must not block (the replica
	// appends to an unbounded queue drained by the event loop).
	Report func(Event)
}

// Stats is a live snapshot of the executor's counters.
type Stats struct {
	// Depth is the instantaneous command-queue depth.
	Depth int
	// Stalls counts dispatches that found the queue full and blocked.
	Stalls uint64
	// PagesCopied / PagesDigested surface the checkpoint manager's
	// counters (updated after every command, so reads never touch the
	// manager off the executor goroutine).
	PagesCopied   uint64
	PagesDigested uint64
	// CkptTime is the cumulative wall time spent taking checkpoints
	// (copy-on-write folding + hierarchical digesting).
	CkptTime time.Duration
}

type cmdKind uint8

const (
	cmdBatch cmdKind = iota
	cmdReadOnly
	cmdResend
	cmdFinalize
	cmdCkpt
	cmdDiscard
	cmdSync
)

type cmd struct {
	kind      cmdKind
	seq       message.Seq
	view      message.View
	nondet    []byte
	tentative bool
	entries   []Entry
	req       *message.Request
	client    message.NodeID
	finals    []Final
	epoch     uint64
	fn        func()
	done      chan struct{}
}

// Executor is the stage-3 goroutine plus its command queue.
type Executor struct {
	cfg  Config
	cmds chan cmd
	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	stalls        atomic.Uint64
	pagesCopied   atomic.Uint64
	pagesDigested atomic.Uint64
	ckptNanos     atomic.Int64
}

// New starts the executor goroutine. Ownership of cfg.Service, cfg.Ckpt,
// and cfg.Cache transfers to it.
func New(cfg Config) *Executor {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 8192
	}
	e := &Executor{
		cfg:  cfg,
		cmds: make(chan cmd, cfg.QueueCap),
		quit: make(chan struct{}),
	}
	e.wg.Add(1)
	go e.run()
	return e
}

// Close stops the executor goroutine; commands still queued are dropped.
// Call only after every dispatcher has stopped.
func (e *Executor) Close() {
	e.once.Do(func() {
		close(e.quit)
		e.wg.Wait()
	})
}

// Stats returns a snapshot of the counters; safe from any goroutine.
func (e *Executor) Stats() Stats {
	return Stats{
		Depth:         len(e.cmds),
		Stalls:        e.stalls.Load(),
		PagesCopied:   e.pagesCopied.Load(),
		PagesDigested: e.pagesDigested.Load(),
		CkptTime:      time.Duration(e.ckptNanos.Load()),
	}
}

// Cache returns the executor-owned reply cache. Touch it only inside Sync
// closures (or before Start/after Close).
func (e *Executor) Cache() *ReplyCache { return e.cfg.Cache }

// ---------------------------------------------------------------------------
// Dispatch (called from the protocol core)
// ---------------------------------------------------------------------------

// submit enqueues one command in dispatch order. A full queue blocks rather
// than drops: commands mutate state, so losing one would fork the replica
// from the group. The executor always drains, so blocking here cannot
// deadlock (the executor never waits on the core).
func (e *Executor) submit(c cmd) {
	select {
	case e.cmds <- c:
		return
	default:
	}
	e.stalls.Add(1)
	select {
	case e.cmds <- c:
	case <-e.quit:
	}
}

// ExecBatch executes the batch assigned to seq: each entry in order, reply
// built, cached, and sent. Entries must already be filtered by the core's
// exactly-once mirror; the executor re-checks against the authoritative
// cache as defense in depth.
func (e *Executor) ExecBatch(seq message.Seq, view message.View, nondet []byte,
	tentative bool, entries []Entry) {
	e.submit(cmd{kind: cmdBatch, seq: seq, view: view, nondet: nondet,
		tentative: tentative, entries: entries})
}

// ExecReadOnly answers one read-only request against the current state
// (§5.1.3). The core dispatches it only once its quiescence conditions
// hold; command order guarantees the executor state reflects exactly the
// prefix the core observed.
func (e *Executor) ExecReadOnly(req *message.Request, view message.View) {
	e.submit(cmd{kind: cmdReadOnly, req: req, view: view})
}

// ResendReply retransmits the cached reply for client, if any (§2.3.3
// exactly-once).
func (e *Executor) ResendReply(client message.NodeID, view message.View) {
	e.submit(cmd{kind: cmdResend, client: client, view: view})
}

// Finalize upgrades tentative cached replies to committed (§5.1.2).
func (e *Executor) Finalize(finals []Final) {
	e.submit(cmd{kind: cmdFinalize, finals: finals})
}

// TakeCheckpoint snapshots the state for seq and reports the combined
// digest back through cfg.Report, stamped with epoch.
func (e *Executor) TakeCheckpoint(seq message.Seq, epoch uint64) {
	e.submit(cmd{kind: cmdCkpt, seq: seq, epoch: epoch})
}

// Discard drops snapshots below seq (log truncation, §2.3.4).
func (e *Executor) Discard(seq message.Seq) {
	e.submit(cmd{kind: cmdDiscard, seq: seq})
}

// Sync runs fn on the executor goroutine after every earlier command and
// blocks until it returns. While fn runs the dispatching goroutine is
// blocked, so fn may touch both executor-owned and caller-owned state.
// Never call Sync from inside a Sync closure (the executor cannot process
// the nested command).
//
// bftlint:rendezvous
func (e *Executor) Sync(fn func()) {
	done := make(chan struct{}, 1)
	e.submit(cmd{kind: cmdSync, fn: fn, done: done})
	select {
	case <-done:
	case <-e.quit:
	}
}

// ---------------------------------------------------------------------------
// The executor goroutine
// ---------------------------------------------------------------------------

// run is the stage-3 goroutine: the sole owner of the service, checkpoint
// manager, and reply cache while the pipeline runs.
//
// bftlint:entrypoint=executor
func (e *Executor) run() {
	defer e.wg.Done()
	for {
		select {
		case <-e.quit:
			return
		case c := <-e.cmds:
			e.handle(c)
			// Publish the manager's counters so Stats never reads the
			// manager off this goroutine.
			e.pagesCopied.Store(e.cfg.Ckpt.PagesCopied)
			e.pagesDigested.Store(e.cfg.Ckpt.PagesDigested)
		}
	}
}

func (e *Executor) handle(c cmd) {
	switch c.kind {
	case cmdBatch:
		for i := range c.entries {
			e.execOne(&c.entries[i], c.nondet, c.tentative, c.view)
		}
	case cmdReadOnly:
		result := e.cfg.Service.Execute(c.req.Client, c.req.Op, nil)
		e.sendReply(c.req, result, false, c.view)
	case cmdResend:
		e.resendCached(c.client, c.view)
	case cmdFinalize:
		for _, f := range c.finals {
			e.cfg.Cache.MarkFinal(f.Client, f.Timestamp)
		}
	case cmdCkpt:
		t0 := time.Now()
		extra := e.cfg.Cache.Marshal()
		snap := e.cfg.Ckpt.Take(c.seq, extra)
		e.ckptNanos.Add(int64(time.Since(t0)))
		e.cfg.Report(Event{
			Seq:    c.seq,
			Digest: checkpoint.CombinedDigest(snap.Root, snap.Extra),
			Epoch:  c.epoch,
		})
	case cmdDiscard:
		e.cfg.Ckpt.DiscardBefore(c.seq)
	case cmdSync:
		c.fn()
		c.done <- struct{}{}
	}
}

// execOne applies a single request and sends its reply — the stage-3 half
// of the serial path's execOne.
func (e *Executor) execOne(ent *Entry, nondet []byte, tentative bool, view message.View) {
	req := ent.Req
	client := req.Client
	if cr := e.cfg.Cache.Get(client); cr != nil && req.Timestamp <= cr.Timestamp {
		if req.Timestamp == cr.Timestamp {
			e.resendCached(client, view)
		}
		return
	}
	var result []byte
	if ent.HasPre {
		result = ent.Pre
	} else {
		result = e.cfg.Service.Execute(client, req.Op, nondet)
	}
	e.cfg.Cache.Set(client, req.Timestamp, result, tentative)
	e.sendReply(req, result, tentative, view)
}

// sendReply builds and transmits the reply for an executed request.
func (e *Executor) sendReply(req *message.Request, result []byte, tentative bool,
	view message.View) {
	e.cfg.Out.SendReply(BuildReply(e.cfg.Self, e.cfg.DigestReplies,
		e.cfg.SmallResult, view, req, result, tentative))
}

// resendCached retransmits a cached reply.
func (e *Executor) resendCached(client message.NodeID, view message.View) {
	if cr := e.cfg.Cache.Get(client); cr != nil {
		e.cfg.Out.SendReply(CachedReply(e.cfg.Self, view, client, cr))
	}
}

// BuildReply constructs the reply for an executed request, applying the
// §5.1.1 digest-reply rule: everyone carries the full result when the
// optimization is off, the result is small, or this replica is the
// designated replier; otherwise only the digest ships. Replies must match
// byte for byte across replicas for the client's certificate, and a group
// may legitimately mix inline and staged replicas (ExecPipeline adapts to
// core count) — so both execution paths share this one builder.
func BuildReply(self message.NodeID, digestReplies bool, smallResult int,
	view message.View, req *message.Request, result []byte, tentative bool) *message.Reply {
	full := !digestReplies ||
		req.Replier == self || req.Replier == message.NoNode ||
		len(result) <= smallResult
	rep := &message.Reply{
		View:         view,
		Timestamp:    req.Timestamp,
		Client:       req.Client,
		Replica:      self,
		Tentative:    tentative,
		HasResult:    true,
		Result:       result,
		ResultDigest: crypto.DigestOf(result),
	}
	if !full {
		rep.HasResult = false
		rep.Result = nil
	}
	return rep
}

// CachedReply builds the retransmission of a cached reply — always full:
// the client asked again because it lacks a certificate.
func CachedReply(self message.NodeID, view message.View, client message.NodeID,
	cr *Cached) *message.Reply {
	return &message.Reply{
		View:         view,
		Timestamp:    cr.Timestamp,
		Client:       client,
		Replica:      self,
		Tentative:    cr.Tentative,
		HasResult:    true,
		Result:       cr.Result,
		ResultDigest: crypto.DigestOf(cr.Result),
	}
}
