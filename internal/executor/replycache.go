package executor

import (
	"encoding/binary"

	"repro/internal/message"
)

// Cached is the last reply sent to one client (§2.4.4 last-rep). Result
// arrays are immutable once stored: retransmissions and the WrongResult
// fault personality copy before mutating.
type Cached struct {
	Timestamp uint64
	Result    []byte
	Tentative bool
}

// ReplyCache is the per-client last-reply table. It is part of the
// checkpointed state (its serialization rides in every snapshot's Extra
// blob), so its wire encoding must stay identical across configurations —
// every replica in a group must produce the same checkpoint digest.
//
// Ownership follows execution: the serial path keeps it on the event loop,
// the staged path hands it to the executor goroutine (the protocol core
// then keeps only a timestamp mirror for exactly-once checks).
//
// bftlint:owner=executor
type ReplyCache struct {
	m map[message.NodeID]*Cached
}

// NewReplyCache returns an empty cache.
func NewReplyCache() *ReplyCache {
	return &ReplyCache{m: make(map[message.NodeID]*Cached)}
}

// Get returns client's entry, or nil.
func (c *ReplyCache) Get(client message.NodeID) *Cached { return c.m[client] }

// Set records the reply for client's request at ts.
func (c *ReplyCache) Set(client message.NodeID, ts uint64, result []byte, tentative bool) {
	c.m[client] = &Cached{Timestamp: ts, Result: result, Tentative: tentative}
}

// MarkFinal clears the tentative flag of client's entry if it is still the
// reply for ts (§5.1.2 finalize).
func (c *ReplyCache) MarkFinal(client message.NodeID, ts uint64) {
	if cr, ok := c.m[client]; ok && cr.Timestamp == ts {
		cr.Tentative = false
	}
}

// Len returns the number of cached entries.
func (c *ReplyCache) Len() int { return len(c.m) }

// Marshal serializes the cache in deterministic order (ascending client
// id) — the checkpointed form, identical on every replica.
func (c *ReplyCache) Marshal() []byte {
	ids := make([]message.NodeID, 0, len(c.m))
	for id := range c.m {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	var out []byte
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(ids)))
	out = append(out, buf[:4]...)
	for _, id := range ids {
		cr := c.m[id]
		binary.LittleEndian.PutUint32(buf[:4], uint32(id))
		out = append(out, buf[:4]...)
		binary.LittleEndian.PutUint64(buf[:], cr.Timestamp)
		out = append(out, buf[:8]...)
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(cr.Result)))
		out = append(out, buf[:4]...)
		out = append(out, cr.Result...)
	}
	return out
}

// Install replaces the cache contents with a marshaled blob (checkpoint
// restore: rollback, state transfer). Checkpointed replies correspond to
// committed execution, so entries install non-tentative.
func (c *ReplyCache) Install(b []byte) {
	c.m = make(map[message.NodeID]*Cached)
	n, off, ok := cacheHeader(b)
	if !ok {
		return
	}
	for i := 0; i < n; i++ {
		id, ts, result, next, ok := cacheEntry(b, off)
		if !ok {
			break
		}
		c.m[id] = &Cached{Timestamp: ts, Result: result, Tentative: false}
		off = next
	}
}

// Mark is one (client, timestamp) pair of a marshaled cache — what the
// protocol core's exactly-once mirror needs after a checkpoint restore.
type Mark struct {
	Client    message.NodeID
	Timestamp uint64
}

// Marks decodes only the (client, timestamp) pairs of a marshaled cache.
func Marks(b []byte) []Mark {
	n, off, ok := cacheHeader(b)
	if !ok {
		return nil
	}
	out := make([]Mark, 0, n)
	for i := 0; i < n; i++ {
		id, ts, _, next, ok := cacheEntry(b, off)
		if !ok {
			break
		}
		out = append(out, Mark{Client: id, Timestamp: ts})
		off = next
	}
	return out
}

func cacheHeader(b []byte) (n, off int, ok bool) {
	if len(b) < 4 {
		return 0, 0, false
	}
	return int(binary.LittleEndian.Uint32(b[:4])), 4, true
}

func cacheEntry(b []byte, off int) (id message.NodeID, ts uint64, result []byte, next int, ok bool) {
	if off+16 > len(b) {
		return 0, 0, nil, 0, false
	}
	id = message.NodeID(binary.LittleEndian.Uint32(b[off:]))
	ts = binary.LittleEndian.Uint64(b[off+4:])
	rl := int(binary.LittleEndian.Uint32(b[off+12:]))
	off += 16
	if rl < 0 || off+rl > len(b) {
		return 0, 0, nil, 0, false
	}
	result = append([]byte(nil), b[off:off+rl]...)
	return id, ts, result, off + rl, true
}
