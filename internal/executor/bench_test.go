package executor

import (
	"fmt"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/crypto"
	"repro/internal/kvservice"
	"repro/internal/message"
	"repro/internal/statemachine"
)

// devnull drops replies: the benchmark measures the execution stage alone.
type devnull struct{}

func (devnull) SendReply(*message.Reply) {}

// BenchmarkExecPipeline compares inline execution (Service.Execute + reply
// construction + periodic checkpoint digesting on the caller, the serial
// replica path) against the staged executor for 1KiB and 4KiB write
// operations. On one core the staged rows pay the command-channel hop
// (~0.5µs/op) for no gain; with GOMAXPROCS > 1 the caller — standing in
// for the protocol event loop — overlaps the next batch's bookkeeping with
// execution, which is the win the replica pipeline exploits.
func BenchmarkExecPipeline(b *testing.B) {
	const ckptEvery = 128
	for _, size := range []int{1024, 4096} {
		for _, staged := range []bool{false, true} {
			name := fmt.Sprintf("op=%dKiB/%s", size/1024, map[bool]string{false: "inline", true: "staged"}[staged])
			b.Run(name, func(b *testing.B) {
				region := statemachine.NewRegion(kvservice.MinStateSize+1<<20, 4096)
				svc := kvservice.New(region)
				mgr := checkpoint.NewManager(region, 16)
				cache := NewReplyCache()
				op := kvservice.WriteBlob(make([]byte, size))
				cl := message.ClientIDBase

				b.SetBytes(int64(size))
				b.ReportAllocs()
				b.ResetTimer()
				if staged {
					ex := New(Config{
						Self: 0, DigestReplies: true, SmallResult: 32,
						Service: svc, Ckpt: mgr, Cache: cache, Out: devnull{},
						Report: func(Event) {},
					})
					defer ex.Close()
					for i := 0; i < b.N; i++ {
						seq := message.Seq(i + 1)
						ex.ExecBatch(seq, 0, nil, false,
							[]Entry{{Req: &message.Request{Client: cl, Timestamp: uint64(i + 1), Replier: message.NoNode, Op: op}}})
						if seq%ckptEvery == 0 {
							ex.TakeCheckpoint(seq, 0)
							ex.Discard(seq) // keep snapshot count bounded, like the inline row
						}
					}
					ex.Sync(func() {}) // drain before the timer stops
				} else {
					out := devnull{}
					for i := 0; i < b.N; i++ {
						seq := message.Seq(i + 1)
						result := svc.Execute(cl, op, nil)
						cache.Set(cl, uint64(i+1), result, false)
						out.SendReply(&message.Reply{
							Timestamp: uint64(i + 1), Client: cl,
							HasResult: true, Result: result,
							ResultDigest: crypto.DigestOf(result),
						})
						if seq%ckptEvery == 0 {
							mgr.Take(seq, cache.Marshal())
							mgr.DiscardBefore(seq)
						}
					}
				}
			})
		}
	}
}
