package lint_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/driver"
)

// TestRepoClean runs the full suite over the whole module and requires zero
// findings: the clean-tree guarantee CI enforces via the vettool step. This
// also exercises cross-package fact flow (RunsFact from internal/transport
// into the ingress/egress pools, LonglivedFact on pbft view-change state)
// on the real tree rather than fixtures.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(self)))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found from %s: %v", self, err)
	}
	set, err := driver.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := set.Run(lint.Analyzers)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("finding on the clean tree: %s", d)
	}
}

// TestNoDigestExemptionsAudited pins the bftlint:nodigest exemption list:
// every exemption must carry a reason token (bftwire enforces this too,
// but only for structs it reaches), and adding a NEW exemption anywhere in
// the tree requires extending the list below — the audit the annotation
// grammar promises. Fixtures under testdata are the analyzers' own test
// vectors and are excluded.
func TestNoDigestExemptionsAudited(t *testing.T) {
	want := map[string]bool{
		"internal/message/messages.go:Replier=routing-advice":       true,
		"internal/message/messages.go:View=certificate-binds-tuple": true,
		"internal/message/messages.go:Seq=certificate-binds-tuple":  true,
		"internal/message/messages.go:Replica=authenticated-sender": true,
	}

	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(self)))
	dirRe := regexp.MustCompile(`bftlint:nodigest(=([A-Za-z0-9-]*))?`)
	fieldRe := regexp.MustCompile(`^\s*([A-Za-z_][A-Za-z0-9_]*)`)

	got := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" || d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, _ := filepath.Rel(root, path)
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := sc.Text()
			// Only directive comments count — the annot grammar requires the
			// comment body to START with bftlint:, which also excludes prose
			// and diagnostic strings that merely mention the key.
			ci := strings.Index(line, "//")
			if ci < 0 {
				continue
			}
			body := strings.TrimSpace(line[ci+2:])
			if !strings.HasPrefix(body, "bftlint:nodigest") {
				continue
			}
			m := dirRe.FindStringSubmatch(body)
			if m == nil {
				continue
			}
			reason := m[2]
			if reason == "" {
				t.Errorf("%s: bftlint:nodigest without a reason token: %q", rel, strings.TrimSpace(line))
				continue
			}
			field := "?"
			if fm := fieldRe.FindStringSubmatch(line); fm != nil {
				field = fm[1]
			}
			got[fmt.Sprintf("%s:%s=%s", filepath.ToSlash(rel), field, reason)] = true
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}

	var diff []string
	for k := range got {
		if !want[k] {
			diff = append(diff, "unexpected exemption (extend the audited list): "+k)
		}
	}
	for k := range want {
		if !got[k] {
			diff = append(diff, "pinned exemption missing from the tree: "+k)
		}
	}
	sort.Strings(diff)
	for _, d := range diff {
		t.Error(d)
	}
}
