package lint_test

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/driver"
)

// TestRepoClean runs the full suite over the whole module and requires zero
// findings: the clean-tree guarantee CI enforces via the vettool step. This
// also exercises cross-package fact flow (RunsFact from internal/transport
// into the ingress/egress pools, LonglivedFact on pbft view-change state)
// on the real tree rather than fixtures.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(self)))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found from %s: %v", self, err)
	}
	set, err := driver.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := set.Run(lint.Analyzers)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("finding on the clean tree: %s", d)
	}
}
