// Package quorum implements bftquorum, the quorum-arithmetic analyzer of
// the bftlint suite.
//
// Every certificate-size threshold in the protocol (f+1, 2f+1, 2f, 2f-1, f)
// derives from the resilience bound n = 3f+1, and the §4.1 safety argument
// is only as strong as the weakest hand-written comparison: one `>= 2*f`
// where the proof needs 2f+1 silently re-admits split-brain executions.
// The repo therefore centralizes all f-arithmetic in internal/quorum, and
// this analyzer enforces the migration:
//
//   - `bftlint:faultbound` marks fields, variables, and functions whose
//     value IS the fault threshold f (vlog.Log.f, pbft.Config.F, ...).
//   - A fault-bound value may be stored, returned, and passed to the
//     threshold helpers (internal/quorum functions, or helpers annotated
//     `bftlint:threshold` such as vlog.Log.Quorum), but it must not appear
//     as an operand of any arithmetic or comparison expression elsewhere:
//     `count >= 2*f` is a finding, `count >= quorum.Strong(f)` is not.
//   - Local variables assigned from a fault-bound expression inherit the
//     bound (`f := p.F(); 2*f` is still flagged).
//
// Bodies of `bftlint:threshold` functions are exempt — they are the audited
// places allowed to turn f into a certificate size. Facts carry both marks
// across packages, so pbft call sites of vlog and internal/quorum helpers
// resolve without re-annotation.
package quorum

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/lint/annot"
)

// Name is the analyzer name, used in `bftlint:allow=` suppressions.
const Name = "bftquorum"

// Analyzer is the bftquorum analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      Name,
	Doc:       "flag raw f-arithmetic outside internal/quorum and bftlint:threshold helpers",
	Run:       run,
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*FaultFact)(nil), (*ThresholdFact)(nil)},
}

// FaultFact marks an object (field, var, or function result) whose value is
// the fault threshold f.
type FaultFact struct{}

func (*FaultFact) AFact()         {}
func (*FaultFact) String() string { return "faultbound" }

// ThresholdFact marks a function blessed to consume fault-bound values and
// perform f-arithmetic (the internal/quorum helpers and annotated wrappers).
type ThresholdFact struct{}

func (*ThresholdFact) AFact()         {}
func (*ThresholdFact) String() string { return "threshold" }

type checker struct {
	pass      *analysis.Pass
	fault     map[types.Object]bool // annotated fields/vars/functions
	threshold map[*types.Func]bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:      pass,
		fault:     make(map[types.Object]bool),
		threshold: make(map[*types.Func]bool),
	}
	c.collect()

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if fn != nil && c.threshold[fn] {
			return // blessed helper: the audited place for f-arithmetic
		}
		c.checkFunc(fd)
	})
	return nil, nil
}

// collect gathers the annotated objects of this package and exports facts.
func (c *checker) collect() {
	info := c.pass.TypesInfo
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				dirs := annot.FuncDirectives(d)
				fn, ok := info.Defs[d.Name].(*types.Func)
				if !ok {
					continue
				}
				if annot.Has(dirs, "faultbound") {
					c.fault[fn] = true
					c.pass.ExportObjectFact(fn, &FaultFact{})
				}
				if annot.Has(dirs, "threshold") {
					c.threshold[fn] = true
					c.pass.ExportObjectFact(fn, &ThresholdFact{})
				}
			case *ast.GenDecl:
				ast.Inspect(d, func(n ast.Node) bool {
					st, ok := n.(*ast.StructType)
					if !ok {
						return true
					}
					for _, field := range st.Fields.List {
						if !annot.Has(annot.FieldDirectives(field), "faultbound") {
							continue
						}
						for _, name := range field.Names {
							if fv, ok := info.Defs[name].(*types.Var); ok {
								c.fault[fv] = true
								c.pass.ExportObjectFact(fv, &FaultFact{})
							}
						}
					}
					return true
				})
			}
		}
	}
}

func (c *checker) isFaultObj(obj types.Object) bool {
	if obj == nil {
		return false
	}
	if c.fault[obj] {
		return true
	}
	if obj.Pkg() == nil || obj.Pkg() == c.pass.Pkg {
		return false
	}
	var f FaultFact
	return c.pass.ImportObjectFact(obj, &f)
}

func (c *checker) isThreshold(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if c.threshold[fn] {
		return true
	}
	if fn.Pkg() == nil || fn.Pkg() == c.pass.Pkg {
		return false
	}
	var f ThresholdFact
	return c.pass.ImportObjectFact(fn, &f)
}

// checkFunc flags arithmetic/comparison expressions with fault-bound
// operands inside one function.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	info := c.pass.TypesInfo

	// Local taint: variables assigned from a fault-bound expression are
	// fault-bound too. Iterate to a fixed point (assignment chains).
	local := make(map[types.Object]bool)
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || local[obj] {
					continue
				}
				if c.faultBound(as.Rhs[i], local) {
					local[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		for _, op := range []ast.Expr{be.X, be.Y} {
			if !c.faultBound(op, local) {
				continue
			}
			if annot.InTestFile(c.pass, be.Pos()) || annot.Suppressed(c.pass, be.Pos(), Name) {
				break
			}
			verb := "arithmetic on"
			switch be.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				verb = "comparison against"
			}
			c.pass.Reportf(be.Pos(),
				"raw %s the fault bound f (%s); certificate sizes must come from internal/quorum or a bftlint:threshold helper so the §4.1 thresholds cannot drift",
				verb, types.ExprString(be))
			break // one finding per expression
		}
		return true
	})
}

// faultBound reports whether expr evaluates to the fault threshold itself:
// an annotated object, a call to an annotated function, a tainted local, or
// a parenthesized/converted/negated form of one. Calls are boundaries — a
// call to a threshold helper is clean even with fault-bound arguments.
func (c *checker) faultBound(expr ast.Expr, local map[types.Object]bool) bool {
	info := c.pass.TypesInfo
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		return c.isFaultObj(obj) || local[obj]
	case *ast.SelectorExpr:
		return c.isFaultObj(info.Uses[e.Sel])
	case *ast.CallExpr:
		if fn := typeutil.StaticCallee(info, e); fn != nil {
			return c.isFaultObj(fn)
		}
		// Conversions propagate the bound: int(f), uint32(f).
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return c.faultBound(e.Args[0], local)
		}
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
				return c.isFaultObj(fn)
			}
		}
		return false
	case *ast.UnaryExpr:
		return c.faultBound(e.X, local)
	}
	return false
}
