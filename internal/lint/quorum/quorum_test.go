package quorum_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/quorum"
)

func TestQuorum(t *testing.T) {
	linttest.Run(t, "quorumfix", quorum.Analyzer)
}
