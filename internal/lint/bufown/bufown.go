// Package bufown implements bftbufown, which enforces the release-callback
// contract of internal/transport's SendOwned/MulticastOwned: once a payload
// slice is handed over, the transport (or its release callback) owns it, and
// the sender must not read, append to, or re-seal it. Violations corrupt
// in-flight datagrams under the egress pool's buffer recycling.
//
// Functions that take ownership declare it on the parameter by name:
//
//	// bftlint:consumes=payload
//	func (m *Mux) SendOwned(to NodeID, payload []byte, release func([]byte))
//
// (also legal on interface methods). After a call passing a plain local
// variable for a consumed parameter, any later use of that variable in the
// same function is reported. If the call sits inside a loop and the
// variable is declared outside it, every use inside the loop is reported —
// the next iteration runs "after" the handoff. Reassigning the variable as
// a whole (`buf = fresh()`) re-establishes ownership and is allowed;
// `buf = append(buf[:0], ...)` is not, because the right-hand side reads
// the surrendered buffer. Acknowledge intentional reuse with
// `bftlint:reuse-ok` (an alias for allow=bftbufown).
package bufown

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/lint/annot"
)

// Name is the analyzer name, used in `bftlint:allow=` suppressions
// (spelling `bftlint:reuse-ok` is the idiomatic acknowledgment).
const Name = "bftbufown"

// Analyzer is the bftbufown analysis.
var Analyzer = &analysis.Analyzer{
	Name:      Name,
	Doc:       "flag use of a payload slice after it was surrendered to a bftlint:consumes callee (SendOwned/MulticastOwned contract)",
	Run:       run,
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*ConsumesFact)(nil)},
}

// ConsumesFact records which parameter indices of a function take
// ownership of their argument.
type ConsumesFact struct{ Indices []int }

func (*ConsumesFact) AFact() {}
func (f *ConsumesFact) String() string {
	return "consumes" // indices are positional; names live at the decl
}

type checker struct {
	pass     *analysis.Pass
	consumes map[*types.Func][]int
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{pass: pass, consumes: make(map[*types.Func][]int)}
	c.collect()

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		c.checkFunc(fd)
	})
	return nil, nil
}

// ---------------------------------------------------------------------------
// Annotation collection
// ---------------------------------------------------------------------------

func (c *checker) collect() {
	info := c.pass.TypesInfo
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if v, ok := annot.Value(annot.FuncDirectives(d), "consumes"); ok {
					c.declare(info.Defs[d.Name], d.Type, v, d.Pos())
				}
			case *ast.GenDecl:
				ast.Inspect(d, func(n ast.Node) bool {
					it, ok := n.(*ast.InterfaceType)
					if !ok {
						return true
					}
					for _, m := range it.Methods.List {
						v, ok := annot.Value(annot.FieldDirectives(m), "consumes")
						if !ok {
							continue
						}
						ft, ok := m.Type.(*ast.FuncType)
						if !ok {
							continue
						}
						for _, name := range m.Names {
							c.declare(info.Defs[name], ft, v, m.Pos())
						}
					}
					return true
				})
			}
		}
	}
}

// declare resolves comma-separated parameter names to indices and records
// (and exports) the ConsumesFact for fn.
func (c *checker) declare(obj types.Object, ft *ast.FuncType, names string, pos token.Pos) {
	fn, ok := obj.(*types.Func)
	if !ok || ft.Params == nil {
		return
	}
	want := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	var idx []int
	i := 0
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if want[name.Name] {
				idx = append(idx, i)
				delete(want, name.Name)
			}
			i++
		}
	}
	for n := range want {
		c.pass.Reportf(pos, "bftlint: consumes names unknown parameter %q", n)
	}
	if len(idx) > 0 {
		c.consumes[fn] = idx
		c.pass.ExportObjectFact(fn, &ConsumesFact{Indices: idx})
	}
}

func (c *checker) consumedIndices(fn *types.Func) []int {
	if idx, ok := c.consumes[fn]; ok {
		return idx
	}
	if fn.Pkg() == nil || fn.Pkg() == c.pass.Pkg {
		return nil
	}
	var f ConsumesFact
	if c.pass.ImportObjectFact(fn, &f) {
		return f.Indices
	}
	return nil
}

func (c *checker) calleeOf(call *ast.CallExpr) *types.Func {
	if fn := typeutil.StaticCallee(c.pass.TypesInfo, call); fn != nil {
		return fn
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Per-function check
// ---------------------------------------------------------------------------

// handoff is one consuming call of a tracked local variable.
type handoff struct {
	obj    types.Object // the surrendered variable
	arg    *ast.Ident   // its appearance as the consumed argument
	end    token.Pos    // position after which plain uses are illegal
	loop   ast.Node     // innermost for/range enclosing the call, if the
	callee string       // variable is declared outside it (else nil)
	param  int
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	info := c.pass.TypesInfo
	var handoffs []handoff

	// Pass 1: find consuming calls with identifier arguments, tracking the
	// loop stack so the cross-iteration rule can apply.
	var loops []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, n)
				if f, ok := n.(*ast.ForStmt); ok {
					walk(f.Body)
				} else {
					walk(n.(*ast.RangeStmt).Body)
				}
				loops = loops[:len(loops)-1]
				return false
			case *ast.CallExpr:
				callee := c.calleeOf(n)
				if callee == nil {
					return true
				}
				for _, i := range c.consumedIndices(callee) {
					if i >= len(n.Args) {
						continue
					}
					id, ok := ast.Unparen(n.Args[i]).(*ast.Ident)
					if !ok {
						continue // fields/temporaries: out of scope
					}
					obj := info.Uses[id]
					if obj == nil {
						continue
					}
					if _, isVar := obj.(*types.Var); !isVar {
						continue
					}
					h := handoff{obj: obj, arg: id, end: n.End(), callee: callee.Name(), param: i}
					for j := len(loops) - 1; j >= 0; j-- {
						l := loops[j]
						if obj.Pos() < l.Pos() || obj.Pos() > l.End() {
							h.loop = l
							break
						}
					}
					handoffs = append(handoffs, h)
				}
				return true
			}
			return true
		})
	}
	walk(fd.Body)
	if len(handoffs) == 0 {
		return
	}

	// Pass 2: reassignments of the tracked variables (whole-variable LHS)
	// re-establish ownership.
	reassigns := make(map[types.Object][]token.Pos)
	pureLHS := make(map[*ast.Ident]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Uses[id]
			if obj == nil {
				obj = info.Defs[id]
			}
			if obj == nil {
				continue
			}
			pureLHS[id] = true
			reassigns[obj] = append(reassigns[obj], as.End())
		}
		return true
	})

	// Pass 3: judge every use of each surrendered variable.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		for _, h := range handoffs {
			if h.obj != obj || id == h.arg || pureLHS[id] {
				continue
			}
			if c.useViolates(id.Pos(), h, reassigns[obj]) {
				c.report(id, h)
				break
			}
		}
		return true
	})
}

// useViolates decides whether a use at pos conflicts with handoff h given
// the variable's whole-reassignment positions.
func (c *checker) useViolates(pos token.Pos, h handoff, reassigns []token.Pos) bool {
	if h.loop != nil && pos >= h.loop.Pos() && pos <= h.loop.End() {
		// Cross-iteration rule: the variable outlives the loop, so a use
		// anywhere in the loop body races the previous iteration's handoff
		// — unless a whole reassignment precedes the use within the loop.
		for _, r := range reassigns {
			if r >= h.loop.Pos() && r <= pos {
				return false
			}
		}
		return true
	}
	if pos <= h.end {
		return false
	}
	for _, r := range reassigns {
		if r > h.end && r <= pos {
			return false
		}
	}
	return true
}

func (c *checker) report(id *ast.Ident, h handoff) {
	if annot.InTestFile(c.pass, id.Pos()) || annot.Suppressed(c.pass, id.Pos(), Name) {
		return
	}
	where := "after"
	if h.loop != nil {
		where = "across loop iterations after"
	}
	c.pass.Reportf(id.Pos(),
		"%s is used %s being surrendered to %s (bftlint:consumes); the transport owns it once handed over (reallocate, or acknowledge with bftlint:reuse-ok)",
		id.Name, where, h.callee)
}
