package bufown_test

import (
	"testing"

	"repro/internal/lint/bufown"
	"repro/internal/lint/linttest"
)

func TestBufown(t *testing.T) {
	linttest.Run(t, "bufownfix", bufown.Analyzer)
}
