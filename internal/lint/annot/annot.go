// Package annot parses the bftlint annotation grammar: machine-readable
// comments that declare the repo's ownership, aliasing, and determinism
// invariants so the analyzers in internal/lint can enforce them.
//
// A directive is a comment line of the form
//
//	//bftlint:key
//	//bftlint:key=value
//
// (a single space after // is permitted; anything after the first
// whitespace inside the directive body is human commentary and ignored).
// Directives attach to the declaration whose doc or trailing comment they
// appear in. The full grammar is specified in internal/lint/doc.go.
package annot

import (
	"go/ast"
	"go/token"
	"strings"
	"sync"

	"golang.org/x/tools/go/analysis"
)

// Directive is one parsed bftlint comment.
type Directive struct {
	Key   string // "owner", "entrypoint", "rendezvous", ...
	Value string // "" for bare keys
	Pos   token.Pos
}

// prefix is what a directive comment starts with after the comment marker.
const prefix = "bftlint:"

// parseLine parses one comment's text (without the // or /* markers).
func parseLine(text string, pos token.Pos) (Directive, bool) {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, prefix) {
		return Directive{}, false
	}
	body := text[len(prefix):]
	// Anything after the first whitespace is commentary.
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		body = body[:i]
	}
	if body == "" {
		return Directive{}, false
	}
	d := Directive{Key: body, Pos: pos}
	if i := strings.IndexByte(body, '='); i >= 0 {
		d.Key, d.Value = body[:i], body[i+1:]
	}
	return d, true
}

// Parse returns every directive in a comment group.
func Parse(cg *ast.CommentGroup) []Directive {
	if cg == nil {
		return nil
	}
	var out []Directive
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimPrefix(text, "/*")
		text = strings.TrimSuffix(text, "*/")
		if d, ok := parseLine(text, c.Pos()); ok {
			out = append(out, d)
		}
	}
	return out
}

// FuncDirectives returns the directives attached to a function declaration.
func FuncDirectives(fd *ast.FuncDecl) []Directive { return Parse(fd.Doc) }

// TypeDirectives returns the directives attached to a type declaration:
// those on the TypeSpec itself plus, for single-spec declarations, those on
// the enclosing GenDecl ("type Foo struct { ... }" puts the doc there).
func TypeDirectives(gd *ast.GenDecl, ts *ast.TypeSpec) []Directive {
	out := Parse(ts.Doc)
	if gd != nil && len(gd.Specs) == 1 {
		out = append(out, Parse(gd.Doc)...)
	}
	return out
}

// FieldDirectives returns the directives attached to a struct field (doc
// comment above it or trailing comment on its line).
func FieldDirectives(f *ast.Field) []Directive {
	out := Parse(f.Doc)
	out = append(out, Parse(f.Comment)...)
	return out
}

// Value returns the value of the first directive with the given key, and
// whether one was present.
func Value(ds []Directive, key string) (string, bool) {
	for _, d := range ds {
		if d.Key == key {
			return d.Value, true
		}
	}
	return "", false
}

// Has reports whether a directive with the given key is present.
func Has(ds []Directive, key string) bool {
	_, ok := Value(ds, key)
	return ok
}

// Suppressions indexes a file's `bftlint:allow=<name>[,<name>...]`
// directives (plus the analyzer-specific acknowledgment spellings, e.g.
// `bftlint:deepcopy` which is allow=bftalias) by line, so analyzers can
// honor per-line suppression both standalone and under go vet.
type Suppressions struct {
	byLine map[int][]string
}

// ackAliases maps acknowledgment spellings to the analyzer they allow.
var ackAliases = map[string]string{
	"deepcopy": "bftalias", // "I deep-copied / aliasing is intended here"
	"reuse-ok": "bftbufown",
}

// SuppressionsFor builds the per-line suppression index for one file.
func SuppressionsFor(fset *token.FileSet, f *ast.File) *Suppressions {
	s := &Suppressions{byLine: make(map[int][]string)}
	for _, cg := range f.Comments {
		for _, d := range Parse(cg) {
			line := fset.Position(d.Pos).Line
			switch d.Key {
			case "allow":
				for _, name := range strings.Split(d.Value, ",") {
					if name = strings.TrimSpace(name); name != "" {
						s.byLine[line] = append(s.byLine[line], name)
					}
				}
			default:
				if name, ok := ackAliases[d.Key]; ok {
					s.byLine[line] = append(s.byLine[line], name)
				}
			}
		}
	}
	return s
}

// Allowed reports whether analyzer name is suppressed at pos: an allow
// directive on the same line (trailing comment) or on the line directly
// above (its own comment line) covers it.
func (s *Suppressions) Allowed(fset *token.FileSet, pos token.Pos, name string) bool {
	line := fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, n := range s.byLine[l] {
			if n == name {
				return true
			}
		}
	}
	return false
}

// Pass-scoped helpers -------------------------------------------------------

// InTestFile reports whether pos lies in a _test.go file. The analyzers
// target production code: test files exercise nondeterminism and aliasing
// on purpose, and go vet analyzes test variants of every package.
func InTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// fileOf returns the *ast.File of the pass containing pos.
func fileOf(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// passIndex caches per-file suppression indexes per pass. Drivers run
// analyzers concurrently, so access is locked.
var (
	passMu    sync.Mutex
	passIndex = map[*analysis.Pass]map[*ast.File]*Suppressions{}
)

// Suppressed reports whether analyzer name is suppressed at pos, building
// and caching the file index on first use. Analyzers must call this (or
// Allowed) before reporting so `bftlint:allow` works under every driver.
func Suppressed(pass *analysis.Pass, pos token.Pos, name string) bool {
	f := fileOf(pass, pos)
	if f == nil {
		return false
	}
	passMu.Lock()
	defer passMu.Unlock()
	files := passIndex[pass]
	if files == nil {
		files = make(map[*ast.File]*Suppressions)
		passIndex[pass] = files
	}
	s := files[f]
	if s == nil {
		s = SuppressionsFor(pass.Fset, f)
		files[f] = s
	}
	return s.Allowed(pass.Fset, pos, name)
}
