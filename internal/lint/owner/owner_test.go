package owner_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/owner"
)

func TestOwner(t *testing.T) {
	linttest.Run(t, "ownerfix", owner.Analyzer)
}
