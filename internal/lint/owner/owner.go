// Package owner implements bftowner, the ownership analyzer of the bftlint
// suite: it machine-checks the replica's goroutine-ownership contract that
// PRs 1-3 established and that the safety argument of Castro & Liskov
// (§4.2) silently assumes — protocol state is event-loop-owned, execution
// state (Region, checkpoint manager, reply cache) belongs to the stage-3
// executor goroutine, and ingress/egress worker pools touch neither.
//
// The rules are declared with the annotation grammar of internal/lint/doc.go:
//
//   - `bftlint:owner=<domain>` on a struct type or field marks state owned
//     by one goroutine domain (eventloop, executor) or explicitly safe for
//     cross-domain use (shared: channels, atomics, immutable config).
//   - `bftlint:entrypoint=<domain>` on a function declares that its body
//     runs in that domain (a worker-pool callback, the executor loop).
//   - `bftlint:rendezvous` on a function declares that closures passed to
//     it run with mutual exclusion against every owner (Sync/execSync), so
//     their bodies are exempt.
//   - `bftlint:runs=<domain>` on a function declares that function-literal
//     arguments execute in that domain (transport attach handlers, pool
//     sinks); their bodies are checked under it.
//
// The analyzer computes, per function, the set of owned state reachable
// through static calls (propagated across packages via facts) and reports
// any entrypoint whose domain is not allowed to touch what it reaches.
// Dynamic dispatch through interfaces is invisible to the call graph;
// closing that hole is exactly what entrypoint annotations on the concrete
// implementations (sealer.Seal, verifier.Verify) are for.
package owner

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/lint/annot"
)

// Name is the analyzer name, used in `bftlint:allow=` suppressions.
const Name = "bftowner"

// Analyzer is the bftowner analysis.
var Analyzer = &analysis.Analyzer{
	Name:     Name,
	Doc:      "check goroutine-ownership annotations: worker/executor entry points must not reach state owned by another domain outside a rendezvous",
	Run:      run,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{
		(*OwnerFact)(nil), (*CtxFact)(nil), (*RendFact)(nil),
		(*RunsFact)(nil), (*AccessFact)(nil),
	},
}

// OwnerFact marks a type or struct field as owned by a goroutine domain.
type OwnerFact struct{ Domain string }

// CtxFact marks a function as an entry point executing in a domain.
type CtxFact struct{ Domain string }

// RendFact marks a function as a rendezvous: closures passed to it run
// serialized with every owner.
type RendFact struct{}

// RunsFact marks a function whose function-literal arguments execute in
// Domain.
type RunsFact struct{ Domain string }

// Access is one reachable touch of owned state.
type Access struct {
	Owner string   // owning domain
	Desc  string   // e.g. "(*statemachine.Region).Modify" or "pbft.Replica.queue"
	Chain []string // call path (function names) from the summarized function
}

// AccessFact summarizes the owned state a function reaches, for
// cross-package propagation.
type AccessFact struct{ Accesses []Access }

func (*OwnerFact) AFact()  {}
func (*CtxFact) AFact()    {}
func (*RendFact) AFact()   {}
func (*RunsFact) AFact()   {}
func (*AccessFact) AFact() {}

func (f *OwnerFact) String() string  { return "owner=" + f.Domain }
func (f *CtxFact) String() string    { return "entrypoint=" + f.Domain }
func (f *RendFact) String() string   { return "rendezvous" }
func (f *RunsFact) String() string   { return "runs=" + f.Domain }
func (f *AccessFact) String() string { return fmt.Sprintf("accesses(%d)", len(f.Accesses)) }

// ownerDomains are the values owner= accepts; ctxDomains the execution
// domains entrypoint=/runs= accept.
var (
	ownerDomains = map[string]bool{"eventloop": true, "executor": true, "worker": true, "shared": true}
	ctxDomains   = map[string]bool{"eventloop": true, "executor": true, "worker": true}
)

// allowed reports whether code running in domain ctx may touch state owned
// by owner. A domain owns its own state; everything else needs a rendezvous.
func allowed(ctx, owner string) bool { return ctx == owner }

// maxAccesses caps per-function summaries so facts stay small.
const maxAccesses = 64

type ctx struct {
	pass *analysis.Pass

	localOwner map[types.Object]string // annotated types and fields, this package
	localCtx   map[*types.Func]string
	localRend  map[*types.Func]bool
	localRuns  map[*types.Func]string

	decls   map[*types.Func]*ast.FuncDecl
	sums    map[*types.Func]*summary
	flatMap map[*types.Func][]Access
	onStack map[*types.Func]bool
}

type callRec struct {
	fn  *types.Func
	pos token.Pos
}

type spawnRec struct {
	lit    *ast.FuncLit
	domain string
}

type summary struct {
	direct []Access // Chain empty; pos in directPos
	pos    []token.Pos
	calls  []callRec
	spawns []spawnRec
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &ctx{
		pass:       pass,
		localOwner: make(map[types.Object]string),
		localCtx:   make(map[*types.Func]string),
		localRend:  make(map[*types.Func]bool),
		localRuns:  make(map[*types.Func]string),
		decls:      make(map[*types.Func]*ast.FuncDecl),
		sums:       make(map[*types.Func]*summary),
		flatMap:    make(map[*types.Func][]Access),
		onStack:    make(map[*types.Func]bool),
	}
	c.collectAnnotations()
	c.exportAnnotationFacts()

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		c.decls[fn] = fd
	})

	// Summarize every declared function, then flatten through the local
	// call graph (imports resolved through facts).
	for fn, fd := range c.decls {
		sum := &summary{}
		c.scan(fd.Body, sum)
		c.sums[fn] = sum
	}
	fns := make([]*types.Func, 0, len(c.decls))
	for fn := range c.decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	for _, fn := range fns {
		flat := c.flatten(fn)
		if len(flat) > 0 {
			// Strip positions before exporting: they are meaningless in
			// other packages.
			facc := make([]Access, len(flat))
			copy(facc, flat)
			pass.ExportObjectFact(fn, &AccessFact{Accesses: facc})
		}
	}

	// Check entrypoints.
	for _, fn := range fns {
		domain := c.ctxDomainOf(fn)
		if domain == "" {
			continue
		}
		fd := c.decls[fn]
		sum := c.sums[fn]
		c.checkReach(domain, fn.Name(), fd.Name.Pos(), sum)
	}
	// Check closures spawned into a domain (bftlint:runs) from any local
	// function, including transitively spawned ones.
	for _, fn := range fns {
		c.checkSpawns(c.sums[fn])
	}
	return nil, nil
}

// checkReach reports every access in sum (flattened) that domain may not
// touch.
func (c *ctx) checkReach(domain, label string, fallbackPos token.Pos, sum *summary) {
	for i, acc := range sum.direct {
		if allowed(domain, acc.Owner) {
			continue
		}
		pos := sum.pos[i]
		if !pos.IsValid() {
			pos = fallbackPos
		}
		c.report(pos, domain, label, acc)
	}
	for _, call := range sum.calls {
		for _, acc := range c.accessesOf(call.fn) {
			if allowed(domain, acc.Owner) {
				continue
			}
			chained := acc
			chained.Chain = append([]string{call.fn.Name()}, acc.Chain...)
			c.report(call.pos, domain, label, chained)
		}
	}
}

// checkSpawns checks every bftlint:runs closure recorded in sum under its
// declared domain, recursing into the closures' own spawns.
func (c *ctx) checkSpawns(sum *summary) {
	for _, sp := range sum.spawns {
		inner := &summary{}
		c.scan(sp.lit.Body, inner)
		c.checkReach(sp.domain, "closure", sp.lit.Pos(), inner)
		c.checkSpawns(inner)
	}
}

func (c *ctx) report(pos token.Pos, domain, label string, acc Access) {
	if annot.InTestFile(c.pass, pos) || annot.Suppressed(c.pass, pos, Name) {
		return
	}
	via := ""
	if len(acc.Chain) > 0 {
		via = " via " + strings.Join(acc.Chain, " -> ")
	}
	c.pass.Reportf(pos,
		"%s-context %s reaches %s-owned %s%s; only the %s goroutine may touch it outside a bftlint:rendezvous (Sync/execSync)",
		domain, label, acc.Owner, acc.Desc, via, acc.Owner)
}

// ---------------------------------------------------------------------------
// Annotation collection
// ---------------------------------------------------------------------------

func (c *ctx) collectAnnotations() {
	info := c.pass.TypesInfo
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					c.collectTypeSpec(d, ts, info)
				}
			case *ast.FuncDecl:
				c.collectFuncDecl(d, info)
			}
		}
	}
}

func (c *ctx) collectTypeSpec(gd *ast.GenDecl, ts *ast.TypeSpec, info *types.Info) {
	ds := annot.TypeDirectives(gd, ts)
	structDomain, hasStruct := annot.Value(ds, "owner")
	if hasStruct && !ownerDomains[structDomain] {
		c.pass.Reportf(ts.Pos(), "bftlint: unknown owner domain %q (want eventloop, executor, worker, or shared)", structDomain)
		hasStruct = false
	}
	tn, _ := info.Defs[ts.Name].(*types.TypeName)
	if hasStruct && structDomain != "shared" && tn != nil {
		c.localOwner[tn] = structDomain
	}
	st, isStruct := ts.Type.(*ast.StructType)
	if !isStruct {
		return
	}
	for _, field := range st.Fields.List {
		fds := annot.FieldDirectives(field)
		domain, has := annot.Value(fds, "owner")
		if has && !ownerDomains[domain] {
			c.pass.Reportf(field.Pos(), "bftlint: unknown owner domain %q (want eventloop, executor, worker, or shared)", domain)
			has = false
		}
		if !has {
			if !hasStruct {
				continue
			}
			domain = structDomain
		}
		if domain == "shared" {
			continue
		}
		for _, name := range field.Names {
			if obj, ok := info.Defs[name].(*types.Var); ok {
				c.localOwner[obj] = domain
			}
		}
	}
}

func (c *ctx) collectFuncDecl(fd *ast.FuncDecl, info *types.Info) {
	ds := annot.FuncDirectives(fd)
	if len(ds) == 0 {
		return
	}
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	if d, has := annot.Value(ds, "owner"); has {
		// Method-level owner override: calling this method counts as touching
		// d-owned state regardless of the receiver type's owner; owner=shared
		// declares the method safe from any domain (it touches only shared
		// fields), carving it out of an owned type.
		if !ownerDomains[d] {
			c.pass.Reportf(fd.Pos(), "bftlint: unknown owner domain %q (want eventloop, executor, worker, or shared)", d)
		} else {
			c.localOwner[fn] = d
		}
	}
	if d, has := annot.Value(ds, "entrypoint"); has {
		if !ctxDomains[d] {
			c.pass.Reportf(fd.Pos(), "bftlint: unknown entrypoint domain %q (want eventloop, executor, or worker)", d)
		} else {
			c.localCtx[fn] = d
		}
	}
	if annot.Has(ds, "rendezvous") {
		c.localRend[fn] = true
	}
	if d, has := annot.Value(ds, "runs"); has {
		if !ctxDomains[d] {
			c.pass.Reportf(fd.Pos(), "bftlint: unknown runs domain %q (want eventloop, executor, or worker)", d)
		} else {
			c.localRuns[fn] = d
		}
	}
}

// collectInterfaceMethods annotates interface methods: directives on an
// interface's method fields are gathered when the interface TypeSpec is
// visited (method fields look like struct fields in the AST).
// (Handled by collectTypeSpec? No — interface methods live in
// *ast.InterfaceType. Collected here via exportAnnotationFacts walking
// files again.)
func (c *ctx) collectInterfaceAnnotations() {
	info := c.pass.TypesInfo
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			it, ok := n.(*ast.InterfaceType)
			if !ok {
				return true
			}
			for _, m := range it.Methods.List {
				ds := annot.FieldDirectives(m)
				if len(ds) == 0 {
					continue
				}
				for _, name := range m.Names {
					fn, ok := info.Defs[name].(*types.Func)
					if !ok {
						continue
					}
					if annot.Has(ds, "rendezvous") {
						c.localRend[fn] = true
					}
					if d, has := annot.Value(ds, "runs"); has && ctxDomains[d] {
						c.localRuns[fn] = d
					}
				}
			}
			return true
		})
	}
}

func (c *ctx) exportAnnotationFacts() {
	c.collectInterfaceAnnotations()
	for obj, domain := range c.localOwner {
		obj := obj
		c.pass.ExportObjectFact(obj, &OwnerFact{Domain: domain})
	}
	for fn, domain := range c.localCtx {
		c.pass.ExportObjectFact(fn, &CtxFact{Domain: domain})
	}
	for fn := range c.localRend {
		c.pass.ExportObjectFact(fn, &RendFact{})
	}
	for fn, domain := range c.localRuns {
		c.pass.ExportObjectFact(fn, &RunsFact{Domain: domain})
	}
}

// ---------------------------------------------------------------------------
// Lookup helpers (local annotation, then imported fact)
// ---------------------------------------------------------------------------

func (c *ctx) ownerOf(obj types.Object) string {
	if obj == nil {
		return ""
	}
	if d, ok := c.localOwner[obj]; ok {
		return d
	}
	if obj.Pkg() == nil || obj.Pkg() == c.pass.Pkg {
		return ""
	}
	var f OwnerFact
	if c.pass.ImportObjectFact(obj, &f) {
		return f.Domain
	}
	return ""
}

func (c *ctx) ctxDomainOf(fn *types.Func) string {
	if d, ok := c.localCtx[fn]; ok {
		return d
	}
	return ""
}

func (c *ctx) isRend(fn *types.Func) bool {
	if c.localRend[fn] {
		return true
	}
	if fn.Pkg() == nil || fn.Pkg() == c.pass.Pkg {
		return false
	}
	var f RendFact
	return c.pass.ImportObjectFact(fn, &f)
}

func (c *ctx) runsDomainOf(fn *types.Func) string {
	if d, ok := c.localRuns[fn]; ok {
		return d
	}
	if fn.Pkg() == nil || fn.Pkg() == c.pass.Pkg {
		return ""
	}
	var f RunsFact
	if c.pass.ImportObjectFact(fn, &f) {
		return f.Domain
	}
	return ""
}

// accessesOf returns the flattened access set of fn: computed locally for
// declared functions, imported as a fact otherwise.
func (c *ctx) accessesOf(fn *types.Func) []Access {
	if _, ok := c.decls[fn]; ok {
		return c.flatten(fn)
	}
	var f AccessFact
	if c.pass.ImportObjectFact(fn, &f) {
		return f.Accesses
	}
	return nil
}

// ---------------------------------------------------------------------------
// Function body scanning
// ---------------------------------------------------------------------------

// calleeOf resolves a call to its *types.Func: static callees (including
// methods) through typeutil, interface methods through Uses. Builtins and
// truly dynamic calls (function values) return nil.
func (c *ctx) calleeOf(call *ast.CallExpr) *types.Func {
	if fn := typeutil.StaticCallee(c.pass.TypesInfo, call); fn != nil {
		return fn
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// scan walks one function (or closure) body, recording direct owned-state
// accesses, static calls, and spawned closures. Function literals passed to
// a rendezvous are skipped entirely; literals passed to a bftlint:runs
// function are recorded for a separate check under that domain.
func (c *ctx) scan(body ast.Node, sum *summary) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := c.calleeOf(n)
			if callee == nil {
				return true
			}
			if c.isRend(callee) {
				c.scanCallSkippingLits(n, sum, nil)
				return false
			}
			if d := c.runsDomainOf(callee); d != "" {
				c.scanCallSkippingLits(n, sum, func(lit *ast.FuncLit) {
					sum.spawns = append(sum.spawns, spawnRec{lit: lit, domain: d})
				})
				return false
			}
			if c.ownerOf(callee) == "shared" {
				// owner=shared declares the callee safe from every domain: a
				// trust boundary, so its internal accesses do not propagate
				// to callers (the selector access is exempted separately).
				return true
			}
			sum.calls = append(sum.calls, callRec{fn: callee, pos: n.Pos()})
			return true
		case *ast.SelectorExpr:
			c.recordSelector(n, sum)
			return true
		}
		return true
	})
}

// scanCallSkippingLits scans the callee expression and non-literal
// arguments of call (they evaluate in the caller), skipping function
// literal arguments; spawn, when non-nil, receives each skipped literal.
func (c *ctx) scanCallSkippingLits(call *ast.CallExpr, sum *summary, spawn func(*ast.FuncLit)) {
	c.scan(call.Fun, sum)
	for _, a := range call.Args {
		if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			if spawn != nil {
				spawn(lit)
			}
			continue
		}
		c.scan(a, sum)
	}
}

// recordSelector records x.f when f (or, for method selections, x's type)
// is owner-annotated.
func (c *ctx) recordSelector(sel *ast.SelectorExpr, sum *summary) {
	s := c.pass.TypesInfo.Selections[sel]
	if s == nil {
		return
	}
	qual := types.RelativeTo(c.pass.Pkg)
	switch s.Kind() {
	case types.FieldVal:
		obj := s.Obj()
		if d := c.ownerOf(obj); d != "" {
			desc := strings.TrimPrefix(types.TypeString(deref(s.Recv()), qual), "*") + "." + obj.Name()
			c.addDirect(sum, Access{Owner: d, Desc: desc}, sel.Sel.Pos())
		}
	case types.MethodVal, types.MethodExpr:
		recv := deref(s.Recv())
		// A method-level owner annotation overrides the receiver type's:
		// owner=shared exempts the method, any other domain re-owns it.
		if d := c.ownerOf(s.Obj()); d != "" {
			if d != "shared" {
				desc := "(" + types.TypeString(recv, qual) + ")." + s.Obj().Name()
				c.addDirect(sum, Access{Owner: d, Desc: desc}, sel.Sel.Pos())
			}
			return
		}
		tn := typeNameOf(recv)
		if tn == nil {
			return
		}
		if d := c.ownerOf(tn); d != "" {
			desc := "(" + types.TypeString(recv, qual) + ")." + s.Obj().Name()
			c.addDirect(sum, Access{Owner: d, Desc: desc}, sel.Sel.Pos())
		}
	}
}

func (c *ctx) addDirect(sum *summary, acc Access, pos token.Pos) {
	if len(sum.direct) >= maxAccesses {
		return
	}
	for _, a := range sum.direct {
		if a.Owner == acc.Owner && a.Desc == acc.Desc {
			return
		}
	}
	sum.direct = append(sum.direct, acc)
	sum.pos = append(sum.pos, pos)
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func typeNameOf(t types.Type) *types.TypeName {
	if n, ok := t.(interface{ Obj() *types.TypeName }); ok {
		return n.Obj()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Propagation
// ---------------------------------------------------------------------------

// flatten computes the transitive access set of a locally declared
// function: its direct accesses plus, for every static callee, the
// callee's accesses with the call prepended to the chain. Cycles terminate
// through the onStack guard; results are memoized.
func (c *ctx) flatten(fn *types.Func) []Access {
	if flat, ok := c.flatMap[fn]; ok {
		return flat
	}
	if c.onStack[fn] {
		return nil
	}
	c.onStack[fn] = true
	defer delete(c.onStack, fn)

	sum := c.sums[fn]
	if sum == nil {
		return nil
	}
	out := make([]Access, 0, len(sum.direct))
	seen := make(map[string]bool)
	add := func(a Access) {
		key := a.Owner + "\x00" + a.Desc
		if seen[key] || len(out) >= maxAccesses {
			return
		}
		seen[key] = true
		out = append(out, a)
	}
	for _, a := range sum.direct {
		add(a)
	}
	for _, call := range sum.calls {
		var calleeAcc []Access
		if _, local := c.decls[call.fn]; local {
			calleeAcc = c.flatten(call.fn)
		} else {
			var f AccessFact
			if call.fn.Pkg() != nil && call.fn.Pkg() != c.pass.Pkg &&
				c.pass.ImportObjectFact(call.fn, &f) {
				calleeAcc = f.Accesses
			}
		}
		for _, a := range calleeAcc {
			chained := a
			chained.Chain = append([]string{call.fn.Name()}, a.Chain...)
			add(chained)
		}
	}
	c.flatMap[fn] = out
	return out
}
