// Package deadlock implements bftsync, the rendezvous self-deadlock
// analyzer of the bftlint suite.
//
// A `bftlint:rendezvous` function (executor.Sync, pbft's execSync) blocks
// the calling goroutine until the executor goroutine runs the supplied
// closure. That protocol has one fatal misuse: reaching a rendezvous FROM
// the executor goroutine itself — the executor cannot serve a command it
// is itself blocked on. The runtime catches the nested-Sync shape with a
// CAS panic; this analyzer catches both shapes at build time:
//
//   - a function annotated `bftlint:entrypoint=executor` or
//     `bftlint:runs=executor` (code that runs ON the executor goroutine)
//     transitively calls a rendezvous;
//   - a function literal passed to a rendezvous call (its body runs on the
//     executor) transitively calls a rendezvous — "never call Sync from
//     inside a Sync closure".
//
// Reachability crosses package boundaries via facts (a pbft closure calling
// a helper that calls executor.Sync is caught), and diagnostics carry the
// witness chain. Suppress a vetted site with `bftlint:allow=bftsync`.
package deadlock

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/lint/annot"
)

// Name is the analyzer name, used in `bftlint:allow=` suppressions.
const Name = "bftsync"

// Analyzer is the bftsync analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      Name,
	Doc:       "flag rendezvous (Sync/execSync) calls reachable from the executor goroutine itself — the self-deadlock the runtime CAS panic catches only at runtime",
	Run:       run,
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*RendFact)(nil), (*ReachFact)(nil)},
}

// RendFact marks a bftlint:rendezvous function.
type RendFact struct{}

func (*RendFact) AFact()         {}
func (*RendFact) String() string { return "rendezvous" }

// ReachFact marks a function that transitively calls a rendezvous,
// recording one witness path for diagnostics.
type ReachFact struct {
	Desc  string   // the rendezvous reached, e.g. "Sync"
	Chain []string // call path from the function to the rendezvous
}

func (*ReachFact) AFact()           {}
func (f *ReachFact) String() string { return "reaches rendezvous " + f.Desc }

type callRec struct {
	fn  *types.Func
	pos token.Pos
}

// summary is one function's direct behavior: the first rendezvous it calls
// and its outgoing static calls (function literals excluded — their bodies
// run in a different dynamic context and are checked where they are passed).
type summary struct {
	rendDesc string
	rendPos  token.Pos
	calls    []callRec
}

type checker struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	sums  map[*types.Func]*summary
	memo  map[*types.Func]*ReachFact
	stack map[*types.Func]bool
	rend  map[*types.Func]bool
	// onExec maps executor-goroutine functions (entrypoint=executor or
	// runs=executor) to their annotation for diagnostics.
	onExec map[*types.Func]string
	// spawners are functions whose function-literal arguments run on the
	// executor: rendezvous themselves, plus runs=executor registrars.
	runsExec map[*types.Func]bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:     pass,
		decls:    make(map[*types.Func]*ast.FuncDecl),
		sums:     make(map[*types.Func]*summary),
		memo:     make(map[*types.Func]*ReachFact),
		stack:    make(map[*types.Func]bool),
		rend:     make(map[*types.Func]bool),
		onExec:   make(map[*types.Func]string),
		runsExec: make(map[*types.Func]bool),
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Collect annotations first (summaries need the rendezvous set).
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		dirs := annot.FuncDirectives(fd)
		if annot.Has(dirs, "rendezvous") {
			c.rend[fn] = true
			c.pass.ExportObjectFact(fn, &RendFact{})
		}
		if v, _ := annot.Value(dirs, "entrypoint"); v == "executor" {
			c.onExec[fn] = "entrypoint=executor"
		}
		if v, _ := annot.Value(dirs, "runs"); v == "executor" {
			c.onExec[fn] = "runs=executor"
			c.runsExec[fn] = true
		}
	})
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok || fd.Body == nil {
			return
		}
		c.decls[fn] = fd
		c.sums[fn] = c.summarize(fd.Body)
	})

	// Export reach facts for cross-package chains.
	for fn := range c.decls {
		if w := c.witness(fn); w != nil {
			c.pass.ExportObjectFact(fn, w)
		}
	}

	// Shape 1: executor-goroutine functions reaching a rendezvous. The
	// rendezvous wrappers themselves are exempt (they are the protocol).
	for fn, how := range c.onExec {
		if c.rend[fn] {
			continue
		}
		w := c.witness(fn)
		if w == nil {
			continue
		}
		pos := fn.Pos()
		if sum := c.sums[fn]; sum != nil {
			if sum.rendDesc != "" {
				pos = sum.rendPos
			} else if len(w.Chain) > 0 {
				for _, call := range sum.calls {
					if call.fn.Name() == w.Chain[0] {
						pos = call.pos
						break
					}
				}
			}
		}
		c.reportf(pos,
			"bftlint:%s %s runs on the executor goroutine but reaches rendezvous %s%s; the executor cannot serve a rendezvous it is itself executing — self-deadlock",
			how, fn.Name(), w.Desc, via(w.Chain))
	}

	// Shape 2: closures handed to a rendezvous (or to a runs=executor
	// spawner) whose bodies reach a rendezvous.
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		callee := c.calleeOf(call)
		if callee == nil || !(c.isRend(callee) || c.isRunsExec(callee)) {
			return
		}
		for _, a := range call.Args {
			lit, ok := ast.Unparen(a).(*ast.FuncLit)
			if !ok {
				continue
			}
			sum := c.summarize(lit.Body)
			desc, chain, pos := sum.rendDesc, []string(nil), sum.rendPos
			if desc == "" {
				for _, cr := range sum.calls {
					if w := c.witness(cr.fn); w != nil {
						desc = w.Desc
						chain = append([]string{cr.fn.Name()}, w.Chain...)
						pos = cr.pos
						break
					}
				}
			}
			if desc == "" {
				continue
			}
			c.reportf(pos,
				"closure passed to rendezvous %s reaches rendezvous %s%s; the executor runs this closure and cannot serve a nested rendezvous — self-deadlock (never call Sync inside a Sync closure)",
				callee.Name(), desc, via(chain))
		}
	})
	return nil, nil
}

func via(chain []string) string {
	if len(chain) == 0 {
		return ""
	}
	return " via " + strings.Join(chain, " -> ")
}

func (c *checker) reportf(pos token.Pos, format string, args ...interface{}) {
	if annot.InTestFile(c.pass, pos) || annot.Suppressed(c.pass, pos, Name) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *checker) isRend(fn *types.Func) bool {
	if c.rend[fn] {
		return true
	}
	if fn.Pkg() == nil || fn.Pkg() == c.pass.Pkg {
		return false
	}
	var f RendFact
	return c.pass.ImportObjectFact(fn, &f)
}

func (c *checker) isRunsExec(fn *types.Func) bool {
	// Cross-package runs= domains belong to the owner analyzer's fact
	// namespace; bftsync only needs the local registrars plus rendezvous,
	// which carry their own fact above.
	return c.runsExec[fn]
}

func (c *checker) calleeOf(call *ast.CallExpr) *types.Func {
	if fn := typeutil.StaticCallee(c.pass.TypesInfo, call); fn != nil {
		return fn
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// summarize records the first direct rendezvous call and the outgoing
// static calls of one body, skipping function literals.
func (c *checker) summarize(body ast.Node) *summary {
	sum := &summary{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := c.calleeOf(call)
		if fn == nil {
			return true
		}
		if c.isRend(fn) {
			if sum.rendDesc == "" {
				sum.rendDesc, sum.rendPos = fn.Name(), call.Pos()
			}
			return true
		}
		sum.calls = append(sum.calls, callRec{fn: fn, pos: call.Pos()})
		return true
	})
	return sum
}

// witness returns how fn reaches a rendezvous, or nil. Rendezvous wrappers
// are boundaries: their witness is themselves (callers see the direct
// call), so their bodies are not traversed.
func (c *checker) witness(fn *types.Func) *ReachFact {
	if w, ok := c.memo[fn]; ok {
		return w
	}
	if c.stack[fn] {
		return nil
	}
	c.stack[fn] = true
	defer delete(c.stack, fn)

	sum := c.sums[fn]
	if sum == nil {
		// Not declared here: consult facts.
		if fn.Pkg() != nil && fn.Pkg() != c.pass.Pkg {
			var f ReachFact
			if c.pass.ImportObjectFact(fn, &f) {
				return &f
			}
		}
		return nil
	}
	var w *ReachFact
	if sum.rendDesc != "" {
		w = &ReachFact{Desc: sum.rendDesc}
	} else {
		for _, call := range sum.calls {
			if cw := c.witness(call.fn); cw != nil {
				w = &ReachFact{Desc: cw.Desc, Chain: append([]string{call.fn.Name()}, cw.Chain...)}
				break
			}
		}
	}
	c.memo[fn] = w
	return w
}
