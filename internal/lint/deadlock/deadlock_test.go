package deadlock_test

import (
	"testing"

	"repro/internal/lint/deadlock"
	"repro/internal/lint/linttest"
)

func TestSync(t *testing.T) {
	linttest.Run(t, "syncfix", deadlock.Analyzer)
}
