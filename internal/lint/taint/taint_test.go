package taint_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/taint"
)

func TestTaint(t *testing.T) {
	linttest.Run(t, "taintfix", taint.Analyzer)
}
