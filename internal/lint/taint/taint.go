// Package taint implements bfttaint, the Byzantine-input taint analyzer of
// the bftlint suite.
//
// Every scalar field of a wire message (any struct with an unmarshalBody
// method) is attacker-controlled: a Byzantine sender can put any value in
// it, and the codec's sticky-error discipline only bounds slice LENGTHS
// (the maxSliceLen check in codec.go), not the integers the message
// carries. This analyzer generalizes that discipline to every consumer:
// an untrusted integer used as
//
//   - a slice/array index or slice bound,
//   - an allocation size (make len/cap),
//   - a loop bound, or
//   - a map key being INSERTED (unbounded map growth — each distinct
//     forged value permanently grows the map)
//
// is a finding unless the function bounds it first. A bound is any
// comparison mentioning the same expression (`if level >= leaf { return }`
// then indexing with level), a min/max clamp at the sink, or a modulo. A
// call boundary also clears taint: values returned by callees (like
// reader.sliceLen, which enforces maxSliceLen internally) are trusted —
// the callee is the audited sanitizer. Functions whose RESULTS are
// attacker-controlled can be annotated `bftlint:untrusted` to propagate
// taint through such a boundary.
//
// Suppress a vetted site with `bftlint:allow=bfttaint`.
package taint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/lint/annot"
)

// Name is the analyzer name, used in `bftlint:allow=` suppressions.
const Name = "bfttaint"

// Analyzer is the bfttaint analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      Name,
	Doc:       "flag untrusted wire-message integers used as index, allocation size, loop bound, or inserted map key without a bounds check",
	Run:       run,
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*WireFact)(nil), (*UntrustedFact)(nil)},
}

// WireFact marks a named type as a wire message: its fields are
// attacker-controlled after decode.
type WireFact struct{}

func (*WireFact) AFact()         {}
func (*WireFact) String() string { return "wire" }

// UntrustedFact marks a function whose results are attacker-controlled.
type UntrustedFact struct{}

func (*UntrustedFact) AFact()         {}
func (*UntrustedFact) String() string { return "untrusted" }

type checker struct {
	pass      *analysis.Pass
	wire      map[*types.TypeName]bool
	untrusted map[*types.Func]bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:      pass,
		wire:      make(map[*types.TypeName]bool),
		untrusted: make(map[*types.Func]bool),
	}
	c.collect()

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		// The codec methods are the sanitizing boundary itself: they read
		// raw attacker bytes under the sliceLen/maxSliceLen discipline that
		// the rest of this analyzer assumes, and tainting their own field
		// stores would flag the sanitizer.
		if fd.Name.Name == "unmarshalBody" || fd.Name.Name == "marshalBody" {
			return
		}
		c.checkFunc(fd)
	})
	return nil, nil
}

// collect finds wire types (unmarshalBody methods) and bftlint:untrusted
// functions, exporting facts for cross-package consumers.
func (c *checker) collect() {
	info := c.pass.TypesInfo
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if annot.Has(annot.FuncDirectives(fd), "untrusted") {
				c.untrusted[fn] = true
				c.pass.ExportObjectFact(fn, &UntrustedFact{})
			}
			if fd.Name.Name != "unmarshalBody" || fd.Recv == nil {
				continue
			}
			if tn := receiverType(fn); tn != nil {
				c.wire[tn] = true
				c.pass.ExportObjectFact(tn, &WireFact{})
			}
		}
	}
}

func receiverType(fn *types.Func) *types.TypeName {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

func (c *checker) isWire(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	if c.wire[tn] {
		return true
	}
	if tn.Pkg() == nil || tn.Pkg() == c.pass.Pkg {
		return false
	}
	var f WireFact
	return c.pass.ImportObjectFact(tn, &f)
}

func (c *checker) isUntrusted(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if c.untrusted[fn] {
		return true
	}
	if fn.Pkg() == nil || fn.Pkg() == c.pass.Pkg {
		return false
	}
	var f UntrustedFact
	return c.pass.ImportObjectFact(fn, &f)
}

// isIntegerish reports whether t's underlying type is an integer kind
// (including named types like message.Seq and message.NodeID).
func isIntegerish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// funcState is the per-function taint context.
type funcState struct {
	c      *checker
	info   *types.Info
	locals map[types.Object]bool // locals assigned from tainted expressions
	guards map[string]bool       // canonical exprs mentioned in a comparison
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	fs := &funcState{
		c:      c,
		info:   c.pass.TypesInfo,
		locals: make(map[types.Object]bool),
		guards: make(map[string]bool),
	}

	// Guard pass: any relational comparison anywhere in the function counts
	// as a bounds check for the expressions it mentions. This is
	// deliberately flow-insensitive — a lint, not a verifier: the point is
	// that SOME check exists to audit, not to prove dominance. For-loop
	// conditions are excluded: `i < m.Count` is the loop-bound SINK, and
	// letting it guard its own operands would make that sink unreachable.
	selfGuards := make(map[*ast.BinaryExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if f, ok := n.(*ast.ForStmt); ok {
			if be, ok := f.Cond.(*ast.BinaryExpr); ok {
				selfGuards[be] = true
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || selfGuards[be] {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			fs.guards[fs.canonical(be.X)] = true
			fs.guards[fs.canonical(be.Y)] = true
		}
		return true
	})

	// Taint pass: locals assigned from tainted expressions, to fixed point.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := fs.info.Defs[id]
				if obj == nil {
					obj = fs.info.Uses[id]
				}
				if obj == nil || fs.locals[obj] {
					continue
				}
				if fs.tainted(as.Rhs[i]) {
					fs.locals[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	// Sink pass.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				fs.checkMapStore(ast.Unparen(lhs))
			}
		case *ast.IncDecStmt:
			fs.checkMapStore(ast.Unparen(n.X))
		case *ast.IndexExpr:
			xt := fs.info.TypeOf(n.X)
			if xt == nil {
				return true
			}
			switch xt.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Pointer, *types.Basic:
				if fs.taintedUnguarded(n.Index) {
					fs.report(n.Index.Pos(),
						"untrusted wire value %s used as an index without a bounds check; a Byzantine sender picks it — compare it against a local bound first",
						types.ExprString(n.Index))
				}
			}
		case *ast.SliceExpr:
			for _, b := range []ast.Expr{n.Low, n.High, n.Max} {
				if b != nil && fs.taintedUnguarded(b) {
					fs.report(b.Pos(),
						"untrusted wire value %s used as a slice bound without a bounds check",
						types.ExprString(b))
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && fs.info.Uses[id] == types.Universe.Lookup("make") {
				for _, a := range n.Args[1:] {
					if fs.taintedUnguarded(a) {
						fs.report(a.Pos(),
							"untrusted wire value %s used as an allocation size; a Byzantine sender can demand gigabytes — clamp it like codec.go's maxSliceLen first",
							types.ExprString(a))
					}
				}
			}
		case *ast.ForStmt:
			if be, ok := n.Cond.(*ast.BinaryExpr); ok {
				for _, op := range []ast.Expr{be.X, be.Y} {
					// The condition itself is excluded from the guard set
					// above; only a SEPARATE comparison or clamp counts.
					if fs.taintedUnguarded(op) {
						fs.report(op.Pos(),
							"untrusted wire value %s bounds this loop; a Byzantine sender picks the trip count — clamp it first",
							types.ExprString(op))
					}
				}
			}
		}
		return true
	})
}

// checkMapStore reports an assignment target m[k] on a map type whose key
// is tainted and unguarded — the unbounded-growth sink.
func (fs *funcState) checkMapStore(lhs ast.Expr) {
	idx, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return
	}
	xt := fs.info.TypeOf(idx.X)
	if xt == nil {
		return
	}
	if _, isMap := xt.Underlying().(*types.Map); !isMap {
		return
	}
	if fs.taintedUnguarded(idx.Index) {
		fs.report(idx.Index.Pos(),
			"untrusted wire value %s inserted as a map key without validation; each forged value grows the map permanently (unbounded-growth DoS) — validate it against the membership it claims first",
			types.ExprString(idx.Index))
	}
}

func (fs *funcState) report(pos token.Pos, format string, args ...interface{}) {
	if annot.InTestFile(fs.c.pass, pos) || annot.Suppressed(fs.c.pass, pos, Name) {
		return
	}
	fs.c.pass.Reportf(pos, format, args...)
}

// tainted reports whether expr carries an attacker-controlled integer.
func (fs *funcState) tainted(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := fs.info.Uses[e]
		if obj == nil {
			obj = fs.info.Defs[e]
		}
		return fs.locals[obj]
	case *ast.SelectorExpr:
		sel := fs.info.Selections[e]
		if sel == nil || sel.Kind() != types.FieldVal {
			return false
		}
		if !isIntegerish(sel.Obj().Type()) {
			return false
		}
		return fs.c.isWire(fs.info.TypeOf(e.X))
	case *ast.CallExpr:
		if fn := typeutil.StaticCallee(fs.info, e); fn != nil {
			return fs.c.isUntrusted(fn)
		}
		// Conversion: int(m.Level) stays tainted.
		if tv, ok := fs.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return fs.tainted(e.Args[0])
		}
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if fn, ok := fs.info.Uses[sel.Sel].(*types.Func); ok {
				return fs.c.isUntrusted(fn)
			}
		}
		return false
	case *ast.BinaryExpr:
		if e.Op == token.REM {
			return false // modulo bounds the result
		}
		return fs.tainted(e.X) || fs.tainted(e.Y)
	case *ast.UnaryExpr:
		return fs.tainted(e.X)
	}
	return false
}

// taintedUnguarded reports taint with no visible bounds check: neither a
// comparison mentioning the canonical expression nor a min/max clamp form.
func (fs *funcState) taintedUnguarded(expr ast.Expr) bool {
	return fs.tainted(expr) && !fs.clamped(expr)
}

// clamped reports whether a bound is visibly applied to expr: the function
// compares its canonical form somewhere, or the expr is itself a min/max
// call over a trusted bound.
func (fs *funcState) clamped(expr ast.Expr) bool {
	if fs.guards[fs.canonical(expr)] {
		return true
	}
	if call, ok := ast.Unparen(expr).(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := fs.info.Uses[id]; obj == types.Universe.Lookup("min") || obj == types.Universe.Lookup("max") {
				return true
			}
		}
	}
	return false
}

// canonical renders an expression with parens and type conversions
// stripped, so `int(m.Level)` and `(m.Level)` guard each other.
func (fs *funcState) canonical(expr ast.Expr) string {
	e := ast.Unparen(expr)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := fs.info.Types[call.Fun]; ok && tv.IsType() {
			return fs.canonical(call.Args[0])
		}
	}
	return types.ExprString(e)
}
