package wire_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/wire"
)

func TestWire(t *testing.T) {
	linttest.Run(t, "wirefix", wire.Analyzer)
}
