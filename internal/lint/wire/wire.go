// Package wire implements bftwire, the wire/digest coverage analyzer of the
// bftlint suite.
//
// Every struct that implements the codec pair marshalBody/unmarshalBody is a
// wire message, and two field-level properties must hold for each one:
//
//   - Symmetry: each field is referenced by BOTH marshalBody and
//     unmarshalBody (or by neither, with a `bftlint:nowire=<reason>`
//     exemption). A field written by one side only is wire drift — the
//     decoded message silently differs from the encoded one.
//
//   - Digest coverage: for digest-bearing messages (a `Digest()` method or
//     one annotated `bftlint:digest`), every field that rides the wire must
//     be an input of the digest computation, or carry an audited
//     `bftlint:nodigest=<reason>` exemption. PR 4's Byzantine wedge was
//     exactly this gap: MetaData carried Parts[].LastMod on the wire while
//     InteriorDigest covered only the part digests, so a faulty replica
//     could ship arbitrary LastMod values under a valid digest and wedge
//     the fetcher's hierarchy walk.
//
// Reasons are single tokens (kebab-case); anything after whitespace in the
// directive is commentary. An exemption with an empty reason is itself a
// finding, so the exemption list stays auditable (grep bftlint:nodigest).
package wire

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/lint/annot"
)

// Name is the analyzer name, used in `bftlint:allow=` suppressions.
const Name = "bftwire"

// Analyzer is the bftwire analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     Name,
	Doc:      "check wire-message structs for marshal/unmarshal symmetry and digest coverage of every field",
	Run:      run,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
}

// msgType is one candidate wire struct with its collected methods.
type msgType struct {
	name      *types.TypeName
	fields    []*types.Var
	fieldDecl map[*types.Var]*ast.Field
	marshal   *types.Func
	unmarshal *types.Func
	auth      *types.Func   // AuthTrailer: fields it returns are trailer-covered
	digests   []*types.Func // Digest() methods or bftlint:digest-annotated
}

type checker struct {
	pass    *analysis.Pass
	decls   map[*types.Func]*ast.FuncDecl
	byType  map[*types.TypeName]*msgType
	recv    map[*types.Func]*types.TypeName // receiver base type of each method
	refMemo map[*types.Func]*refSet
	stack   map[*types.Func]bool
}

// refSet is the (transitive) field-reference summary of one method.
type refSet struct {
	fields map[*types.Var]bool
	full   bool // receiver escapes whole (passed to a call / Payload / Marshal)
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:    pass,
		decls:   make(map[*types.Func]*ast.FuncDecl),
		byType:  make(map[*types.TypeName]*msgType),
		recv:    make(map[*types.Func]*types.TypeName),
		refMemo: make(map[*types.Func]*refSet),
		stack:   make(map[*types.Func]bool),
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1: struct declarations.
	ins.Preorder([]ast.Node{(*ast.TypeSpec)(nil)}, func(n ast.Node) {
		ts := n.(*ast.TypeSpec)
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return
		}
		tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
		if !ok {
			return
		}
		mt := &msgType{name: tn, fieldDecl: make(map[*types.Var]*ast.Field)}
		for _, f := range st.Fields.List {
			for _, name := range f.Names {
				if fv, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					mt.fields = append(mt.fields, fv)
					mt.fieldDecl[fv] = f
				}
			}
		}
		c.byType[tn] = mt
	})

	// Pass 2: methods.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok || fd.Recv == nil || fd.Body == nil {
			return
		}
		c.decls[fn] = fd
		tn := receiverType(fn)
		if tn == nil {
			return
		}
		c.recv[fn] = tn
		mt, ok := c.byType[tn]
		if !ok {
			return
		}
		switch {
		case fn.Name() == "marshalBody":
			mt.marshal = fn
		case fn.Name() == "unmarshalBody":
			mt.unmarshal = fn
		case fn.Name() == "AuthTrailer":
			mt.auth = fn
		case isDigestMethod(fn, fd):
			mt.digests = append(mt.digests, fn)
		}
	})

	for _, mt := range c.byType {
		if mt.marshal != nil && mt.unmarshal != nil {
			c.check(mt)
		}
	}
	return nil, nil
}

// isDigestMethod reports whether fn computes a message digest: a
// parameterless method named Digest, or any method annotated bftlint:digest
// (PrePrepare's digest is named BatchDigest).
func isDigestMethod(fn *types.Func, fd *ast.FuncDecl) bool {
	if annot.Has(annot.FuncDirectives(fd), "digest") {
		return true
	}
	sig := fn.Type().(*types.Signature)
	return fn.Name() == "Digest" && sig.Params().Len() == 0 && sig.Results().Len() > 0
}

// receiverType returns the named base type of a method's receiver.
func receiverType(fn *types.Func) *types.TypeName {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

func (c *checker) check(mt *msgType) {
	marshaled := c.refsOf(mt.marshal)
	unmarshaled := c.refsOf(mt.unmarshal)
	trailer := &refSet{fields: map[*types.Var]bool{}}
	if mt.auth != nil {
		trailer = c.refsOf(mt.auth)
	}
	digest := &refSet{fields: map[*types.Var]bool{}}
	for _, d := range mt.digests {
		ds := c.refsOf(d)
		digest.full = digest.full || ds.full
		for f := range ds.fields {
			digest.fields[f] = true
		}
	}

	for _, f := range mt.fields {
		decl := mt.fieldDecl[f]
		pos := f.Pos()
		dirs := annot.FieldDirectives(decl)
		inM, inU := marshaled.has(f), unmarshaled.has(f)

		if trailer.has(f) && !inM && !inU {
			continue // auth trailer: marshaled/verified by the envelope
		}
		if !inM && !inU {
			if reason, ok := annot.Value(dirs, "nowire"); ok {
				if reason == "" {
					c.reportf(pos, "bftlint:nowire on %s.%s needs a reason token; the exemption list is audited",
						mt.name.Name(), f.Name())
				}
				continue
			}
			c.reportf(pos,
				"wire struct %s: field %s is referenced by neither marshalBody nor unmarshalBody; it silently vanishes on the wire — marshal it or annotate bftlint:nowire=<reason>",
				mt.name.Name(), f.Name())
			continue
		}
		if inM != inU {
			side, other := "marshalBody", "unmarshalBody"
			if inU {
				side, other = "unmarshalBody", "marshalBody"
			}
			c.reportf(pos,
				"wire struct %s: field %s is referenced by %s but not %s; encode/decode drift means the decoded message differs from the encoded one",
				mt.name.Name(), f.Name(), side, other)
			continue
		}

		// Digest coverage: only for digest-bearing messages, only for
		// fields that ride the wire body.
		if len(mt.digests) == 0 || digest.full || digest.has(f) {
			continue
		}
		if reason, ok := annot.Value(dirs, "nodigest"); ok {
			if reason == "" {
				c.reportf(pos, "bftlint:nodigest on %s.%s needs a reason token; the exemption list is audited",
					mt.name.Name(), f.Name())
			}
			continue
		}
		c.reportf(pos,
			"wire struct %s: field %s rides the wire but no digest computation covers it; a Byzantine sender can vary it under an unchanged digest (the PR 4 LastMod shape) — cover it or annotate bftlint:nodigest=<reason>",
			mt.name.Name(), f.Name())
	}
}

func (c *checker) reportf(pos token.Pos, format string, args ...interface{}) {
	if annot.InTestFile(c.pass, pos) || annot.Suppressed(c.pass, pos, Name) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (r *refSet) has(f *types.Var) bool { return r.full || r.fields[f] }

// refsOf returns the transitive field-reference set of a method: fields
// selected in its body plus those of same-type methods it calls. The
// receiver escaping whole — passed as a call argument, or Payload/Marshal
// invoked on it — marks full coverage (those serialize every field).
func (c *checker) refsOf(fn *types.Func) *refSet {
	if r, ok := c.refMemo[fn]; ok {
		return r
	}
	r := &refSet{fields: make(map[*types.Var]bool)}
	if c.stack[fn] {
		return r // recursion: fields found elsewhere on the cycle still count
	}
	c.stack[fn] = true
	defer delete(c.stack, fn)

	fd := c.decls[fn]
	tn := c.recv[fn]
	if fd == nil || tn == nil {
		c.refMemo[fn] = r
		return r
	}
	mt := c.byType[tn]
	recv := recvObj(c.pass, fd)
	info := c.pass.TypesInfo

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel := info.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
				if fv, ok := sel.Obj().(*types.Var); ok && mt != nil && mt.fieldDecl[fv] != nil {
					r.fields[fv] = true
				}
			}
		case *ast.CallExpr:
			callee := typeutil.StaticCallee(info, n)
			if callee != nil && c.recv[callee] == tn {
				if callee.Name() == "Payload" || callee.Name() == "Marshal" || callee.Name() == "marshalBody" {
					r.full = true
					return true
				}
				sub := c.refsOf(callee)
				r.full = r.full || sub.full
				for f := range sub.fields {
					r.fields[f] = true
				}
			}
			// The receiver passed whole to any call (payloadOf(m, ...),
			// DigestOf(m.Payload()) resolves above) covers every field.
			for _, a := range n.Args {
				if escapesReceiver(info, a, recv) {
					r.full = true
				}
			}
		}
		return true
	})
	c.refMemo[fn] = r
	return r
}

// recvObj returns the receiver variable object of a method declaration.
func recvObj(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// escapesReceiver reports whether expr is the receiver itself (m, &m, *m).
func escapesReceiver(info *types.Info, expr ast.Expr, recv types.Object) bool {
	if recv == nil {
		return false
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.Uses[e] == recv
	case *ast.UnaryExpr:
		return escapesReceiver(info, e.X, recv)
	case *ast.StarExpr:
		return escapesReceiver(info, e.X, recv)
	}
	return false
}
