// Package lint is bftlint: a go/analysis suite that machine-enforces the
// concurrency, aliasing, and determinism invariants this replica's safety
// argument rests on. PBFT (§4.2, §A) assumes protocol-state access is
// serialized; after the three-stage pipeline split (ingress/egress worker
// pools, stage-3 executor), that assumption lives in goroutine ownership
// rules that used to exist only in comments and one runtime CAS — and that
// have been violated in shipped code twice (the PR 2 qset-aliasing bug,
// the PR 4 map-order nondeterminism). bftlint turns those rules into
// annotations the compiler toolchain checks on every build.
//
// # Running
//
// Standalone (uses an internal driver; no go/packages needed):
//
//	go run ./cmd/bftlint ./...
//
// Under the build system, as a vet tool (modular analysis with
// serialized facts, incremental via the build cache):
//
//	go build -o /tmp/bftlint ./cmd/bftlint
//	go vet -vettool=/tmp/bftlint ./...
//
// Both exit nonzero on any finding. CI runs the vettool form before the
// race tests.
//
// # Annotation grammar
//
// A directive is a comment line of the form
//
//	//bftlint:KEY
//	//bftlint:KEY=VALUE
//
// One space may follow the "//". Anything after the first whitespace
// inside the directive body is human commentary and is ignored, so
//
//	// bftlint:owner=executor   (sole mutator: the stage-3 goroutine)
//
// is a well-formed owner directive. Unknown domains are themselves
// diagnosed; unknown keys are reserved for future analyzers and ignored.
// Directives attach to the declaration whose doc comment (or, for struct
// fields, trailing comment) they appear in.
//
// Keys and where they may appear:
//
//	owner=DOMAIN        type, struct field, or method. The state is owned
//	                    by DOMAIN (eventloop | executor | worker), or is
//	                    explicitly safe for cross-domain use (shared:
//	                    channels, atomics, immutable-after-construction
//	                    config). A field directive overrides its struct's
//	                    default. On a method, the directive overrides the
//	                    receiver type's owner for calls to that method:
//	                    owner=shared carves a cross-domain-safe helper
//	                    (one that touches only shared fields) out of an
//	                    owned type. A shared method is a trust boundary:
//	                    its internal accesses do not propagate to callers,
//	                    so the annotation is a claim to audit, like any
//	                    suppression.
//	entrypoint=DOMAIN   function. Its body executes in DOMAIN (a worker
//	                    pool callback, the executor loop). The bftowner
//	                    analyzer checks everything statically reachable
//	                    from it against the ownership rules.
//	rendezvous          function or interface method. Closures passed to
//	                    it run serialized against every owner (Sync,
//	                    execSync); their bodies are exempt.
//	runs=DOMAIN         function or interface method. Function-literal
//	                    arguments passed to it execute in DOMAIN
//	                    (transport attach handlers, pool sinks); their
//	                    bodies are checked under that domain.
//	longlived           type. Values outlive the calls that populate
//	                    them; bftalias flags caller-provided slices/maps
//	                    stored into them without a deep copy.
//	consumes=PARAMS     function or interface method; PARAMS is a
//	                    comma-separated list of parameter names whose
//	                    arguments the callee takes ownership of
//	                    (SendOwned/MulticastOwned payloads). bftbufown
//	                    flags uses after the handoff.
//	send                function or interface method. It emits protocol
//	                    messages; bftmaporder flags calls to it from
//	                    inside a map-range body.
//	deterministic       function. It must compute identically on every
//	                    replica and seeded run; bfttime flags reachable
//	                    time.Now/Since/Until.
//	faultbound          struct field or function. Its value (result) IS
//	                    the resilience bound f; bftquorum forbids raw
//	                    arithmetic or comparisons on it outside threshold
//	                    helpers — "no raw f-arithmetic in thresholds".
//	threshold           function. The audited place allowed to turn f
//	                    into a certificate size (the internal/quorum
//	                    helpers, vlog.Log.Quorum/Weak); its body is exempt
//	                    from bftquorum and calls to it are trusted.
//	digest              method. Marks a digest computation not named
//	                    Digest (PrePrepare.BatchDigest) so bftwire checks
//	                    its field coverage.
//	nodigest=REASON     struct field. The field deliberately rides the
//	                    wire outside the digest; REASON is a mandatory
//	                    single token (kebab-case) and the exemption list
//	                    is pinned by TestNoDigestExemptionsAudited and a
//	                    CI grep.
//	nowire=REASON       struct field. The field is deliberately absent
//	                    from marshalBody/unmarshalBody (derived state);
//	                    same audited-reason rule.
//	untrusted           function. Its results are attacker-controlled;
//	                    bfttaint propagates taint through calls to it
//	                    (calls are otherwise sanitizing boundaries).
//
// Suppressions acknowledge an intentional exception on the same line or
// the line directly above the finding:
//
//	allow=NAME[,NAME]   suppress the named analyzers (bftowner, bftalias,
//	                    bftbufown, bftrand, bfttime, bftmaporder, bftwire,
//	                    bftquorum, bfttaint, bftsync) here.
//	deepcopy            shorthand for allow=bftalias: "this store is a
//	                    deep copy / the alias is intended".
//	reuse-ok            shorthand for allow=bftbufown: "this reuse is
//	                    coordinated with the release callback".
//
// # Analyzers
//
//   - bftowner: call-graph reachability from entrypoint-annotated
//     functions (and runs=-spawned closures) to owner-annotated state;
//     reports any touch of state the entry domain does not own. Facts
//     propagate summaries across packages, so an executor entry point in
//     internal/executor reaching event-loop state in internal/pbft through
//     three calls is still caught. Interface dispatch is statically
//     invisible; annotate the concrete implementations of cross-goroutine
//     interfaces as entrypoints to close that hole.
//   - bftalias: the PR 2 qset bug shape — caller-provided slice/map
//     memory (parameters, their sub-slices, composite literals embedding
//     them) stored into a bftlint:longlived struct without a deep copy.
//   - bftbufown: use of a payload variable after it was surrendered to a
//     bftlint:consumes callee, including reuse across loop iterations
//     when the variable outlives the loop.
//   - bftrand: package-global math/rand or math/rand/v2 draws (anything
//     but source constructors); replicas must use their per-replica
//     seeded source so seeded simnet runs stay bit-reproducible.
//   - bfttime: wall-clock reads (time.Now/Since/Until, transitive)
//     reachable from bftlint:deterministic functions.
//   - bftmaporder: the PR 4 bug shape — map-range loops that either call
//     a bftlint:send function in the body (iteration order reaches the
//     wire) or select a winner via early exit with the key/value escaping
//     (iteration order picks the replier/digest/sequence). Iterate sorted
//     keys instead; see ownCkptList or statefetch's retry path for the
//     idiom.
//   - bftwire: wire/digest coverage. Every struct with a
//     marshalBody/unmarshalBody pair must reference each field from BOTH
//     codec sides (or neither, with nowire=REASON), and for digest-bearing
//     messages every wire field must be an input of the digest computation
//     or carry nodigest=REASON — the PR 4 LastMod gap (a field a Byzantine
//     sender can vary under a valid digest), made unrepresentable.
//   - bftquorum: quorum arithmetic. Fault-bound values (bftlint:faultbound
//     fields/functions, and locals assigned from them) must not appear as
//     operands of arithmetic or comparison expressions outside
//     internal/quorum and bftlint:threshold helpers: `count >= 2*f` is a
//     finding, `count >= quorum.Strong(f)` is not. This pins every §4.1
//     certificate size to one audited package.
//   - bfttaint: Byzantine-input taint. Integer fields of wire types (any
//     struct with unmarshalBody; WireFact crosses packages) are
//     attacker-controlled; using one as a slice index, slice bound,
//     allocation size, loop bound, or inserted map key without a visible
//     bounds check (a comparison on the same expression, a min/max clamp,
//     or a modulo) is a finding. Calls are sanitizing boundaries unless
//     annotated bftlint:untrusted.
//   - bftsync: rendezvous self-deadlock. Code running on the executor
//     goroutine (entrypoint=executor, runs=executor) must never reach a
//     bftlint:rendezvous call, and a closure passed to a rendezvous must
//     not rendezvous again — the Sync-inside-Sync shape the runtime CAS
//     panic catches only when it fires, reported at build time with the
//     witness call chain.
//
// All analyzers skip _test.go files: tests exercise nondeterminism and
// aliasing on purpose, and `go vet` analyzes test variants of every
// package.
package lint
