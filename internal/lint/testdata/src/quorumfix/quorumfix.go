// Package quorumfix exercises bftquorum with the historical off-by-one
// shape: a hand-written `>= 2*f` where the §4.1 proof needs 2f+1. All
// f-arithmetic must go through a bftlint:threshold helper; fault-bound
// values may only be stored, returned, and passed along.
package quorumfix

// faults returns the resilience bound f.
//
// bftlint:faultbound
func faults() int { return 1 }

// strong is the audited helper allowed to turn f into a certificate size.
//
// bftlint:threshold
func strong(f int) int { return 2*f + 1 }

type state struct {
	// bftlint:faultbound
	f     int
	count int
}

// prepared reproduces the motivating bug: 2f matching prepares where the
// certificate needs 2f+1.
func (s *state) prepared() bool {
	return s.count >= 2*s.f // want `raw arithmetic on the fault bound f`
}

// weak launders f through a local before the arithmetic; the local taint
// still carries the bound.
func (s *state) weak() bool {
	f := faults()
	need := f + 1 // want `raw arithmetic on the fault bound f`
	return s.count >= need
}

// tooFew compares against f directly.
func (s *state) tooFew() bool {
	return s.count <= s.f // want `raw comparison against the fault bound f`
}

// ok goes through the audited helper: calls are the trust boundary.
func (s *state) ok() bool {
	return s.count >= strong(s.f)
}

// vetted shows a reviewed suppression (e.g. mid-migration code).
func (s *state) vetted() bool {
	return s.count >= 2*s.f+1 // bftlint:allow=bftquorum reviewed-migration
}
