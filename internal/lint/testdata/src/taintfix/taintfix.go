// Package taintfix exercises bfttaint: integers decoded from the wire are
// attacker-controlled, and using one as an index, allocation size, loop
// bound, or inserted map key without a bounds check is a finding. The
// shapes mirror the codec's sliceLen discipline and the statefetch
// hierarchy walk.
package taintfix

type reader struct{ b []byte }

func (r *reader) u64() uint64 { return 0 }

// fetch mimics an inbound state-transfer request: having an unmarshalBody
// method marks it as a wire type, so its integer fields are untrusted.
type fetch struct {
	Level uint64
	Index uint64
	Count uint64
	From  uint64
}

func (m *fetch) unmarshalBody(r *reader) {
	m.Level = r.u64()
	m.Index = r.u64()
	m.Count = r.u64()
	m.From = r.u64()
}

// peek returns attacker bytes reinterpreted as a count.
//
// bftlint:untrusted
func peek(b []byte) uint64 { return uint64(len(b)) }

type table struct {
	levels  [8][]byte
	seen    map[uint64]bool
	replies map[uint64]int
}

func (t *table) lookup(m *fetch) []byte {
	return t.levels[m.Level] // want `used as an index without a bounds check`
}

// lookupChecked bounds the level first: the comparison guards the index.
func (t *table) lookupChecked(m *fetch) []byte {
	if m.Level >= uint64(len(t.levels)) {
		return nil
	}
	return t.levels[m.Level]
}

func (t *table) alloc(m *fetch) []byte {
	return make([]byte, m.Count) // want `used as an allocation size`
}

// allocClamped uses a min clamp at the sink.
func (t *table) allocClamped(m *fetch) []byte {
	return make([]byte, min(m.Count, 4096))
}

func (t *table) slice(m *fetch, b []byte) []byte {
	return b[:m.Index] // want `used as a slice bound`
}

func (t *table) record(m *fetch) {
	t.seen[m.From] = true // want `inserted as a map key without validation`
}

// recordChecked validates the claimed ID against the membership bound.
func (t *table) recordChecked(m *fetch, n uint64) {
	if m.From >= n {
		return
	}
	t.seen[m.From] = true
}

// recordVetted is bounded elsewhere; the suppression records the audit.
func (t *table) recordVetted(m *fetch) {
	t.replies[m.From]++ // bftlint:allow=bfttaint bounded-by-directory-auth
}

func (t *table) walk(m *fetch) int {
	s := 0
	for i := uint64(0); i < m.Count; i++ { // want `bounds this loop`
		s++
	}
	return s
}

// walkChecked clamps the trip count before looping.
func (t *table) walkChecked(m *fetch) int {
	if m.Count > 64 {
		return 0
	}
	s := 0
	for i := uint64(0); i < m.Count; i++ {
		s++
	}
	return s
}

// laundered shows taint propagating through a local and an annotated
// untrusted helper.
func (t *table) laundered(m *fetch, raw []byte) []byte {
	n := peek(raw)
	return make([]byte, n) // want `used as an allocation size`
}
