// Package timefix exercises bfttime: functions annotated
// bftlint:deterministic must not reach time.Now/Since/Until, directly or
// through any call chain. Time enters deterministic paths only as a
// parameter.
package timefix

import "time"

// pick reads the clock directly.
//
// bftlint:deterministic
func pick(xs []int) int {
	now := time.Now() // want `bftlint:deterministic pick reaches time\.Now`
	_ = now
	if len(xs) == 0 {
		return 0
	}
	return xs[0]
}

// stamp is an unannotated helper; the read is reported at the first hop of
// the chain from the deterministic caller.
func stamp() int64 { return time.Since(time.Time{}).Nanoseconds() }

// bftlint:deterministic
func choose(xs []int) int {
	d := stamp() // want `bftlint:deterministic choose reaches time\.Since via stamp`
	return int(d) + len(xs)
}

// parameterized takes time as an argument: the correct form.
//
// bftlint:deterministic
func parameterized(now time.Time, deadline time.Time) bool {
	return now.Before(deadline)
}

// acknowledged keeps a clock read the simnet is known to stub out.
//
// bftlint:deterministic
func acknowledged() int64 {
	return stamp() // bftlint:allow=bfttime the simnet clock backs this in tests
}
