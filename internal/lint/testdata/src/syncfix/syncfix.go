// Package syncfix exercises bftsync with the self-deadlock shape the
// runtime CAS panic catches only when it fires: reaching a rendezvous from
// the executor goroutine itself, directly or through a closure already
// running inside one.
package syncfix

type executor struct{ c chan func() }

// Sync runs fn on the executor goroutine and waits for it.
//
// bftlint:rendezvous
func (e *executor) Sync(fn func()) {
	done := make(chan struct{})
	e.c <- func() { fn(); close(done) }
	<-done
}

type replica struct{ ex *executor }

func (r *replica) flush() {
	r.ex.Sync(func() {})
}

// drainEvents is called from the executor's own loop: reaching a
// rendezvous from here blocks the goroutine that must serve it.
//
// bftlint:entrypoint=executor
func (r *replica) drainEvents() {
	r.flush() // want `runs on the executor goroutine but reaches rendezvous Sync via flush`
}

// onCommit runs as an executor callback and calls the rendezvous directly.
//
// bftlint:runs=executor
func (r *replica) onCommit() {
	r.ex.Sync(func() {}) // want `runs on the executor goroutine but reaches rendezvous Sync`
}

// snapshot nests a rendezvous inside a rendezvous closure through a helper.
func (r *replica) snapshot() {
	r.ex.Sync(func() {
		r.flush() // want `closure passed to rendezvous Sync reaches rendezvous Sync via flush`
	})
}

// nested is the direct Sync-inside-Sync shape.
func (r *replica) nested() {
	r.ex.Sync(func() {
		r.ex.Sync(func() {}) // want `closure passed to rendezvous Sync reaches rendezvous Sync`
	})
}

// report only touches local state: executor-domain code that never
// rendezvouses is clean.
//
// bftlint:entrypoint=executor
func (r *replica) report() {
	_ = r.ex
}

// vetted documents a reviewed exception (e.g. a path proven unreachable
// while the executor is draining).
//
// bftlint:runs=executor
func (r *replica) vetted() {
	r.flush() // bftlint:allow=bftsync proven-unreachable-while-draining
}
