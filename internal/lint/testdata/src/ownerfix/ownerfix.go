// Package ownerfix exercises bftowner: goroutine-ownership annotations and
// call-graph reachability from entrypoints, rendezvous exemption, runs=
// closure checking, method-level owner overrides, and allow= suppression.
package ownerfix

// replica mimics the event-loop-owned protocol core. Field-level
// annotations only: method calls on replica are not themselves accesses.
type replica struct {
	seq   int      // bftlint:owner=eventloop
	view  int      // bftlint:owner=eventloop
	inbox chan int // bftlint:owner=shared
}

// region mimics executor-owned execution state with a type-level owner:
// calling any of its methods counts as touching executor state.
//
// bftlint:owner=executor
type region struct{ n int }

func (g *region) modify() { g.n++ }

// stats is a shared-method carve-out of an owned type.
//
// bftlint:owner=executor
type cache struct {
	m    map[int]int
	hits int
}

// Len touches nothing a single goroutine owns.
//
// bftlint:owner=shared
func (c *cache) Len() int { return len(c.m) }

// sync mimics execSync: closures run serialized against every owner.
//
// bftlint:rendezvous
func sync(fn func()) { fn() }

// spawn mimics a worker-pool constructor: literal args run on workers.
//
// bftlint:runs=worker
func spawn(fn func()) { go fn() }

// bump is an unannotated helper; reaching seq through it must still be
// reported at the entrypoint's call site with the chain.
func (r *replica) bump() { r.seq++ }

// bftlint:entrypoint=worker
func decode(r *replica, g *region, c *cache) {
	r.inbox <- 1             // shared field: ok
	_ = r.seq                // want `worker-context decode reaches eventloop-owned replica\.seq`
	r.bump()                 // want `eventloop-owned replica\.seq via bump`
	g.modify()               // want `executor-owned \(region\)\.modify` `executor-owned region\.n via modify`
	_ = c.Len()              // owner=shared method override: ok
	sync(func() { r.seq++ }) // rendezvous closure: exempt
	_ = r.view               // bftlint:allow=bftowner inspection hook, externally coordinated
}

// arm is not an entrypoint itself, but the closure it hands to spawn runs
// on a worker and is checked under that domain.
func arm(r *replica) {
	_ = r.seq // not an entrypoint: unchecked
	spawn(func() {
		r.seq++ // want `worker-context closure reaches eventloop-owned replica\.seq`
	})
}

// bftlint:entrypoint=executor
func execute(g *region, r *replica) {
	g.modify() // executor touching executor state: ok
	_ = r.seq  // want `executor-context execute reaches eventloop-owned replica\.seq`
}
