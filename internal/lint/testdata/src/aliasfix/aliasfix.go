// Package aliasfix exercises bftalias with the PR 2 qset-aliasing bug
// shape: view-change handler state that stored a slice taken from an
// inbound message, which a later in-place sort then mutated under the
// sender's feet.
package aliasfix

// dv is a (digest, view) entry, as in message.DV.
type dv struct{ digest, view int }

// qinfo is a per-sequence entry of a view-change message.
type qinfo struct {
	seq     int
	entries []dv
}

// viewchange mimics an inbound protocol message: the handler may keep the
// pointer, but not slice memory reachable from it.
type viewchange struct {
	q       []qinfo
	replica int
}

// vcstate outlives every handler call that populates it.
//
// bftlint:longlived
type vcstate struct {
	qset  map[int][]dv
	last  *viewchange
	note  []byte
	bound int
}

// onViewChange reproduces the historical bug: the message's entries slice
// lands in the long-lived qset without a copy, so the bounded-space
// truncation later mutates the sender's message in place.
func (s *vcstate) onViewChange(m *viewchange, raw []byte) {
	s.qset[m.q[0].seq] = m.q[0].entries // want `caller-provided slice/map stored into long-lived vcstate\.qset`
	s.note = raw                        // want `stored into long-lived vcstate\.note`
	s.last = m                          // pointer handoff: ok (messages are owned after dispatch)
	s.bound = m.replica                 // scalar: ok

	// The correct form: deep-copy before storing.
	cp := append([]dv(nil), m.q[0].entries...)
	s.qset[m.q[0].seq] = cp

	// Locals carrying caller memory are tracked through assignment.
	entries := m.q[0].entries
	s.qset[0] = entries // want `stored into long-lived vcstate\.qset`

	// An acknowledged alias: the caller is known to discard the message.
	s.note = raw[2:] // bftlint:deepcopy the ingress path hands over the datagram
}

// freshResult shows call results counting as fresh memory.
func (s *vcstate) freshResult(m *viewchange) {
	s.qset[1] = clone(m.q[0].entries) // fresh: ok
}

func clone(in []dv) []dv { return append([]dv(nil), in...) }
