// Package randfix exercises bftrand: package-global math/rand (v1 and v2)
// draws come from the shared process stream, so seeded simnet runs stop
// being reproducible. Explicit sources and their methods are fine.
package randfix

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// jitterV1 draws from the v1 global stream.
func jitterV1(n int) int {
	return rand.Intn(n) // want `package-global rand\.Intn draws from the shared process stream`
}

// jitterV2 draws from the v2 global stream (reported under the local name).
func jitterV2(n int) int {
	return randv2.IntN(n) // want `package-global randv2\.IntN draws from the shared process stream`
}

// seeded builds an explicit per-replica source: constructors are exempt,
// and method calls on the source never touch the global stream.
func seeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// seededV2 is the same idiom over rand/v2, as replica.go uses.
func seededV2(seed uint64, n int) int {
	r := randv2.New(randv2.NewPCG(seed, seed))
	return r.IntN(n)
}

// typeRef mentions rand types without drawing: not a finding.
var typeRef *rand.Rand

// acknowledged keeps a deliberate global draw (e.g. test-only jitter).
func acknowledged() int64 {
	return rand.Int63() // bftlint:allow=bftrand process-level jitter, not replica-visible
}
