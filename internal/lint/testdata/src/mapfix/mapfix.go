// Package mapfix exercises bftmaporder with the PR 4 bug shape: Go's
// randomized map iteration order leaking into wire order (a bftlint:send
// call in a map-range body) or into winner selection (early exit with the
// key/value escaping the loop). The fix in both cases is to iterate sorted
// keys.
package mapfix

import "sort"

// emit puts a protocol message on the wire.
//
// bftlint:send
func emit(dst int, payload []byte) {}

// broadcastUnsorted feeds map order straight into wire order.
func broadcastUnsorted(peers map[int][]byte) {
	for id, p := range peers {
		emit(id, p) // want `emit emits messages inside a map range: iteration order reaches the wire`
	}
}

// broadcastSorted is the idiom: collect keys, sort, then send.
func broadcastSorted(peers map[int][]byte) {
	ids := make([]int, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		emit(id, peers[id])
	}
}

// pickReplier lets map order choose which name escapes via return.
func pickReplier(names map[int]string) string {
	for _, name := range names {
		return name // want `map iteration order selects this result \(early exit with escaping key/value\); iterate sorted keys`
	}
	return ""
}

// pickAssigned escapes the key through an assignment plus break.
func pickAssigned(scores map[int]int) int {
	best := -1
	for id, s := range scores {
		if s > 10 {
			best = id // want `map iteration order selects this result`
			break
		}
	}
	return best
}

// tally visits every element; order cannot matter without an early exit.
func tally(scores map[int]int) int {
	total := 0
	for _, s := range scores {
		total += s
	}
	return total
}

// acknowledged keeps a deliberately unordered broadcast (fault injection
// shuffles delivery anyway).
func acknowledged(peers map[int][]byte) {
	for id, p := range peers {
		emit(id, p) // bftlint:allow=bftmaporder fault-injection path, order is shuffled downstream
	}
}
