// Package wirefix exercises bftwire with the PR 4 bug shape: a metadata
// message whose LastMod field rode the wire while the digest covered only
// the part digests, letting a Byzantine replica vary it under a valid
// digest and wedge the fetcher. It also covers encode/decode drift, fields
// that vanish on the wire, and both exemption kinds.
package wirefix

type writer struct{ b []byte }

func (w *writer) u64(v uint64)   {}
func (w *writer) bytes(p []byte) {}

type reader struct{ b []byte }

func (r *reader) u64() uint64   { return 0 }
func (r *reader) bytes() []byte { return nil }

type digest [16]byte

func digestOfU64(vs ...uint64) digest { return digest{} }

// meta mimics the historical MetaData shape: the digest covers Seq only,
// while LastMod rides the wire uncovered.
type meta struct {
	Seq     uint64
	LastMod uint64 // want `rides the wire but no digest computation covers it`
	Legacy  uint64 // want `referenced by marshalBody but not unmarshalBody`
	Skipped uint64 // want `referenced by neither marshalBody nor unmarshalBody`
	// Cached is derived state, legitimately absent from the wire format.
	Cached []byte // bftlint:nowire=recomputed-on-decode
	// Hint has an exemption with no reason token: the audit rejects it.
	Hint uint64 // bftlint:nodigest= // want `needs a reason token`
	// Spare carries a properly audited exemption.
	Spare uint64 // bftlint:nodigest=routing-advice
}

func (m *meta) Digest() digest { return digestOfU64(m.Seq) }

func (m *meta) marshalBody(w *writer) {
	w.u64(m.Seq)
	w.u64(m.LastMod)
	w.u64(m.Legacy) // encoded but never decoded: drift
	w.u64(m.Hint)
	w.u64(m.Spare)
}

func (m *meta) unmarshalBody(r *reader) {
	m.Seq = r.u64()
	m.LastMod = r.u64()
	m.Hint = r.u64()
	m.Spare = r.u64()
}

// covered is fully symmetric with a digest over the whole payload: the
// receiver escaping into payloadOf marks every field covered.
type covered struct {
	A uint64
	B uint64
}

func payloadOf(m *covered) []byte { return nil }

func digestOf(p []byte) digest { return digest{} }

func (m *covered) Digest() digest { return digestOf(payloadOf(m)) }

func (m *covered) marshalBody(w *writer) {
	w.u64(m.A)
	w.u64(m.B)
}

func (m *covered) unmarshalBody(r *reader) {
	m.A = r.u64()
	m.B = r.u64()
}
