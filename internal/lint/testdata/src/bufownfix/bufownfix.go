// Package bufownfix exercises bftbufown: payload slices surrendered to a
// bftlint:consumes callee (the SendOwned/MulticastOwned release-callback
// contract) must not be used afterwards.
package bufownfix

// mux mimics the transport's owned-buffer surface.
type mux struct{}

// SendOwned takes ownership of payload; it is released asynchronously.
//
// bftlint:consumes=payload
func (m *mux) SendOwned(dst int, payload []byte, release func([]byte)) {}

// sender is the interface form; consumes= works on interface methods too.
type sender interface {
	// bftlint:consumes=payload
	MulticastOwned(dsts []int, payload []byte, release func([]byte))
}

func noop([]byte) {}

// useAfterSend is the linear rule: any use after the handoff.
func useAfterSend(m *mux) {
	buf := make([]byte, 0, 64)
	buf = append(buf, 1, 2, 3)
	m.SendOwned(1, buf, noop)
	_ = len(buf) // want `buf is used after being surrendered to SendOwned`
}

// reuseAcrossIterations is the loop rule: buf outlives the loop, so the
// next iteration's append reads a surrendered buffer.
func reuseAcrossIterations(m *mux, payloads [][]byte) {
	var buf []byte
	for _, p := range payloads {
		buf = append(buf[:0], p...) // want `buf is used across loop iterations after being surrendered to SendOwned`
		m.SendOwned(1, buf, noop)
	}
}

// reallocate re-establishes ownership: a whole-variable reassignment from
// fresh memory between iterations is legal.
func reallocate(m *mux, payloads [][]byte) {
	var buf []byte
	for _, p := range payloads {
		buf = make([]byte, 0, len(p))
		buf = append(buf, p...)
		m.SendOwned(1, buf, noop)
	}
}

// interfaceHandoff applies the same rule through the interface method.
func interfaceHandoff(s sender, dsts []int) {
	wire := []byte{1}
	s.MulticastOwned(dsts, wire, noop)
	_ = wire[0] // want `wire is used after being surrendered to MulticastOwned`
}

// acknowledged documents a coordinated reuse (the release callback has
// already run by construction).
func acknowledged(m *mux) {
	buf := []byte{1}
	m.SendOwned(1, buf, noop)
	_ = buf[0] // bftlint:reuse-ok the nil release above runs synchronously
}
