// Package driver loads and analyzes packages for bftlint without
// go/packages (which the vendored x/tools subset does not include — the
// container has no module network access). It shells out to `go list
// -json -export -deps` for package metadata and compiled export data,
// typechecks every main-module package from source in dependency order so
// object identities are shared across packages, imports external
// dependencies (std, vendored x/tools) from their export files, and runs
// analyzers with an in-memory fact store.
//
// Under `go vet -vettool` none of this is used: cmd/bftlint delegates to
// the vendored unitchecker, and the build tool drives loading and fact
// serialization. This driver backs the standalone `go run ./cmd/bftlint
// ./...` mode and the linttest golden harness.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"reflect"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Package is one source-typechecked main-module package.
type Package struct {
	PkgPath    string
	Dir        string
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	Reportable bool // matched the load patterns (not a dep-only package)
}

// Set is a load result: packages in dependency order plus everything
// needed to import the rest of the build from export data.
type Set struct {
	Fset    *token.FileSet
	Pkgs    []*Package
	exports map[string]string // import path -> export data file
	srcPkgs map[string]*types.Package
	gc      types.Importer // shared so identical imports unify
}

// Diagnostic is one analyzer finding, positioned.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// listPkg is the subset of `go list -json` output the driver consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct {
		Path string
		Main bool
	}
}

// Load lists patterns (relative to dir) and typechecks the main-module
// packages of the result, dependencies first.
func Load(dir string, patterns ...string) (*Set, error) {
	args := append([]string{"list", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	byPath := make(map[string]*listPkg)
	var order []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		byPath[p.ImportPath] = &p
		order = append(order, p.ImportPath)
	}

	s := &Set{
		Fset:    token.NewFileSet(),
		exports: make(map[string]string),
		srcPkgs: make(map[string]*types.Package),
	}
	inMain := func(p *listPkg) bool { return p != nil && p.Module != nil && p.Module.Main }
	for _, p := range byPath {
		if p.Export != "" {
			s.exports[p.ImportPath] = p.Export
		}
	}

	// Topologically order the main-module packages.
	var topo []string
	state := make(map[string]int) // 0 unvisited, 1 on stack, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		p := byPath[path]
		if !inMain(p) || state[path] == 2 {
			return nil
		}
		if state[path] == 1 {
			return fmt.Errorf("import cycle through %s", path)
		}
		state[path] = 1
		for _, imp := range p.Imports {
			if err := visit(imp); err != nil {
				return err
			}
		}
		state[path] = 2
		topo = append(topo, path)
		return nil
	}
	for _, path := range order {
		if err := visit(path); err != nil {
			return nil, err
		}
	}

	for _, path := range topo {
		p := byPath[path]
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported by the bftlint driver", path)
		}
		pkg, err := s.check(p)
		if err != nil {
			return nil, err
		}
		pkg.Reportable = !p.DepOnly
		s.Pkgs = append(s.Pkgs, pkg)
	}
	return s, nil
}

// importerFor resolves imports: source-typechecked main-module packages by
// identity, everything else through compiled export data.
type importerFor struct{ s *Set }

func (im importerFor) Import(path string) (*types.Package, error) {
	if p := im.s.srcPkgs[path]; p != nil {
		return p, nil
	}
	if im.s.gc == nil {
		im.s.gc = importer.ForCompiler(im.s.Fset, "gc", func(path string) (io.ReadCloser, error) {
			f := im.s.exports[path]
			if f == "" {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		})
	}
	return im.s.gc.Import(path)
}

// check parses and typechecks one package from source.
func (s *Set) check(p *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !strings.HasPrefix(path, "/") {
			path = p.Dir + "/" + name
		}
		f, err := parser.ParseFile(s.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importerFor{s}}
	pkg, err := conf.Check(p.ImportPath, s.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", p.ImportPath, err)
	}
	s.srcPkgs[p.ImportPath] = pkg
	return &Package{
		PkgPath:   p.ImportPath,
		Dir:       p.Dir,
		Syntax:    files,
		Types:     pkg,
		TypesInfo: info,
	}, nil
}

// ---------------------------------------------------------------------------
// Running analyzers
// ---------------------------------------------------------------------------

type objFactKey struct {
	obj types.Object
	typ reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	typ reflect.Type
}

// Run executes the analyzers (and their requirements) over every package
// in the set, dependency order first so facts flow forward. Only
// reportable packages contribute diagnostics.
func (s *Set) Run(analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	plan, err := executionOrder(analyzers)
	if err != nil {
		return nil, err
	}
	objFacts := make(map[objFactKey]analysis.Fact)
	pkgFacts := make(map[pkgFactKey]analysis.Fact)
	var diags []Diagnostic

	for _, pkg := range s.Pkgs {
		results := make(map[*analysis.Analyzer]interface{})
		for _, a := range plan {
			pass := s.newPass(a, pkg, results, objFacts, pkgFacts, &diags)
			res, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			results[a] = res
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return diags, nil
}

func (s *Set) newPass(
	a *analysis.Analyzer, pkg *Package,
	results map[*analysis.Analyzer]interface{},
	objFacts map[objFactKey]analysis.Fact,
	pkgFacts map[pkgFactKey]analysis.Fact,
	diags *[]Diagnostic,
) *analysis.Pass {
	resultOf := make(map[*analysis.Analyzer]interface{})
	for _, req := range a.Requires {
		resultOf[req] = results[req]
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       s.Fset,
		Files:      pkg.Syntax,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.TypesInfo,
		TypesSizes: types.SizesFor("gc", build.Default.GOARCH),
		ResultOf:   resultOf,
		ReadFile:   os.ReadFile,
	}
	pass.Report = func(d analysis.Diagnostic) {
		if !pkg.Reportable {
			return
		}
		*diags = append(*diags, Diagnostic{
			Analyzer: a.Name,
			Pos:      s.Fset.Position(d.Pos),
			Message:  d.Message,
		})
	}
	pass.ExportObjectFact = func(obj types.Object, fact analysis.Fact) {
		objFacts[objFactKey{obj, reflect.TypeOf(fact)}] = fact
	}
	pass.ImportObjectFact = func(obj types.Object, fact analysis.Fact) bool {
		return importFact(objFacts[objFactKey{obj, reflect.TypeOf(fact)}], fact)
	}
	pass.ExportPackageFact = func(fact analysis.Fact) {
		pkgFacts[pkgFactKey{pkg.Types, reflect.TypeOf(fact)}] = fact
	}
	pass.ImportPackageFact = func(p *types.Package, fact analysis.Fact) bool {
		return importFact(pkgFacts[pkgFactKey{p, reflect.TypeOf(fact)}], fact)
	}
	pass.AllObjectFacts = func() []analysis.ObjectFact {
		var out []analysis.ObjectFact
		for k, f := range objFacts {
			out = append(out, analysis.ObjectFact{Object: k.obj, Fact: f})
		}
		return out
	}
	pass.AllPackageFacts = func() []analysis.PackageFact {
		var out []analysis.PackageFact
		for k, f := range pkgFacts {
			out = append(out, analysis.PackageFact{Package: k.pkg, Fact: f})
		}
		return out
	}
	return pass
}

// importFact copies a stored fact into the caller's pointer.
func importFact(stored analysis.Fact, dst analysis.Fact) bool {
	if stored == nil {
		return false
	}
	sv := reflect.ValueOf(stored)
	dv := reflect.ValueOf(dst)
	if sv.Type() != dv.Type() {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// executionOrder flattens the analyzers plus their requirements into a
// dependency-respecting sequence.
func executionOrder(analyzers []*analysis.Analyzer) ([]*analysis.Analyzer, error) {
	var plan []*analysis.Analyzer
	state := make(map[*analysis.Analyzer]int)
	var visit func(a *analysis.Analyzer) error
	visit = func(a *analysis.Analyzer) error {
		switch state[a] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("requirement cycle through %s", a.Name)
		}
		state[a] = 1
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		state[a] = 2
		plan = append(plan, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return plan, nil
}
