package det_test

import (
	"testing"

	"repro/internal/lint/det"
	"repro/internal/lint/linttest"
)

func TestRand(t *testing.T) {
	linttest.Run(t, "randfix", det.RandAnalyzer)
}

func TestTime(t *testing.T) {
	linttest.Run(t, "timefix", det.TimeAnalyzer)
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "mapfix", det.MapOrderAnalyzer)
}
