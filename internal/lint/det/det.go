// Package det implements the determinism analyzers of the bftlint suite.
// Seeded-simnet reproducibility (and, per §4.4, replica-coordinated
// behavior like replier selection) dies by a thousand nondeterminism cuts;
// these three analyzers target the cuts this repo has actually bled from:
//
//   - bftrand: package-global math/rand (and math/rand/v2) functions draw
//     from a process-global, unseeded-per-replica stream. Every draw must
//     go through a per-replica *rand.Rand (replica.go seeds one from the
//     cluster seed + replica ID).
//   - bfttime: functions annotated `bftlint:deterministic` — decision
//     paths that must compute identically on every replica and every
//     seeded run — must not reach time.Now/Since/Until (transitively).
//     Time enters those paths only as explicit parameters fed by the
//     simnet clock.
//   - bftmaporder: ranging over a map feeds Go's randomized iteration
//     order into the result when the body either emits messages
//     (calls a `bftlint:send` function — relative send order hits the
//     wire) or selects a winner (early exit with the key/value escaping).
//     The PR 4 fetch-retry bug was exactly this; iterate sorted keys.
package det

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/lint/annot"
)

// Analyzer names, used in `bftlint:allow=` suppressions.
const (
	RandName     = "bftrand"
	TimeName     = "bfttime"
	MapOrderName = "bftmaporder"
)

// ---------------------------------------------------------------------------
// bftrand
// ---------------------------------------------------------------------------

// RandAnalyzer flags package-global math/rand use.
var RandAnalyzer = &analysis.Analyzer{
	Name:     RandName,
	Doc:      "flag package-global math/rand functions; replicas must draw from a per-replica seeded source",
	Run:      runRand,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
}

// randConstructors are the package-level functions that build an explicit
// source rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true,
	"NewChaCha8": true, "NewZipf": true,
}

func runRand(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return
		}
		pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return
		}
		path := pkg.Imported().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return
		}
		if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
			return // types like rand.Rand, rand.Source
		}
		if randConstructors[sel.Sel.Name] {
			return
		}
		if annot.InTestFile(pass, sel.Pos()) || annot.Suppressed(pass, sel.Pos(), RandName) {
			return
		}
		pass.Reportf(sel.Sel.Pos(),
			"package-global %s.%s draws from the shared process stream; use the per-replica seeded *rand.Rand so seeded runs stay reproducible",
			pkg.Name(), sel.Sel.Name)
	})
	return nil, nil
}

// ---------------------------------------------------------------------------
// bfttime
// ---------------------------------------------------------------------------

// TimeAnalyzer checks bftlint:deterministic functions against wall-clock
// reads.
var TimeAnalyzer = &analysis.Analyzer{
	Name:      TimeName,
	Doc:       "flag bftlint:deterministic decision paths that reach time.Now/Since/Until",
	Run:       runTime,
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*TimeFact)(nil)},
}

// TimeFact marks a function that (transitively) reads the wall clock,
// recording one witness path for diagnostics.
type TimeFact struct {
	Desc  string   // e.g. "time.Now"
	Chain []string // call path from the function to the read
}

func (*TimeFact) AFact()           {}
func (f *TimeFact) String() string { return "reads " + f.Desc }

// wallClockFuncs are the time package reads that break determinism.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

type timeSummary struct {
	desc  string // direct wall-clock read, if any
	pos   token.Pos
	calls []struct {
		fn  *types.Func
		pos token.Pos
	}
}

type timeChecker struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	sums  map[*types.Func]*timeSummary
	memo  map[*types.Func]*TimeFact
	stack map[*types.Func]bool
	det   map[*types.Func]token.Pos
}

func runTime(pass *analysis.Pass) (interface{}, error) {
	c := &timeChecker{
		pass:  pass,
		decls: make(map[*types.Func]*ast.FuncDecl),
		sums:  make(map[*types.Func]*timeSummary),
		memo:  make(map[*types.Func]*TimeFact),
		stack: make(map[*types.Func]bool),
		det:   make(map[*types.Func]token.Pos),
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok || fd.Body == nil {
			return
		}
		c.decls[fn] = fd
		if annot.Has(annot.FuncDirectives(fd), "deterministic") {
			c.det[fn] = fd.Name.Pos()
		}
		c.sums[fn] = c.summarize(fd)
	})

	// Export facts for every local clock-reader, then check the annotated
	// deterministic functions.
	for fn := range c.decls {
		if w := c.witness(fn); w != nil {
			c.pass.ExportObjectFact(fn, w)
		}
	}
	for fn, pos := range c.det {
		w := c.witness(fn)
		if w == nil {
			continue
		}
		// Report at the first hop when the read is reachable via a call;
		// the chain names the rest.
		rpos := pos
		if sum := c.sums[fn]; sum != nil {
			if sum.desc != "" {
				rpos = sum.pos
			} else if len(w.Chain) > 0 {
				for _, call := range sum.calls {
					if call.fn.Name() == w.Chain[0] {
						rpos = call.pos
						break
					}
				}
			}
		}
		if annot.InTestFile(pass, rpos) || annot.Suppressed(pass, rpos, TimeName) {
			continue
		}
		via := ""
		if len(w.Chain) > 0 {
			via = " via " + strings.Join(w.Chain, " -> ")
		}
		pass.Reportf(rpos,
			"bftlint:deterministic %s reaches %s%s; wall-clock reads diverge across replicas and seeded runs — take time as a parameter",
			fn.Name(), w.Desc, via)
	}
	return nil, nil
}

func (c *timeChecker) summarize(fd *ast.FuncDecl) *timeSummary {
	sum := &timeSummary{}
	info := c.pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := typeutil.StaticCallee(info, call)
		if fn == nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				fn, _ = info.Uses[sel.Sel].(*types.Func)
			}
		}
		if fn == nil {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
			if sum.desc == "" {
				sum.desc, sum.pos = "time."+fn.Name(), call.Pos()
			}
			return true
		}
		sum.calls = append(sum.calls, struct {
			fn  *types.Func
			pos token.Pos
		}{fn, call.Pos()})
		return true
	})
	return sum
}

// witness returns how fn reaches the wall clock, or nil.
func (c *timeChecker) witness(fn *types.Func) *TimeFact {
	if w, ok := c.memo[fn]; ok {
		return w
	}
	if c.stack[fn] {
		return nil
	}
	c.stack[fn] = true
	defer delete(c.stack, fn)

	sum := c.sums[fn]
	if sum == nil {
		// Not declared here: consult facts.
		if fn.Pkg() != nil && fn.Pkg() != c.pass.Pkg {
			var f TimeFact
			if c.pass.ImportObjectFact(fn, &f) {
				return &f
			}
		}
		return nil
	}
	var w *TimeFact
	if sum.desc != "" {
		w = &TimeFact{Desc: sum.desc}
	} else {
		for _, call := range sum.calls {
			if cw := c.witness(call.fn); cw != nil {
				w = &TimeFact{Desc: cw.Desc, Chain: append([]string{call.fn.Name()}, cw.Chain...)}
				break
			}
		}
	}
	c.memo[fn] = w
	return w
}

// ---------------------------------------------------------------------------
// bftmaporder
// ---------------------------------------------------------------------------

// MapOrderAnalyzer flags map iteration feeding message emission or
// selection.
var MapOrderAnalyzer = &analysis.Analyzer{
	Name:      MapOrderName,
	Doc:       "flag map-range loops whose randomized order reaches the wire (bftlint:send in body) or selects a winner (early exit with escaping key/value)",
	Run:       runMapOrder,
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*SendFact)(nil)},
}

// SendFact marks a function that emits protocol messages; calling it under
// a map range puts iteration order on the wire.
type SendFact struct{}

func (*SendFact) AFact()         {}
func (*SendFact) String() string { return "send" }

type mapChecker struct {
	pass  *analysis.Pass
	sends map[*types.Func]bool
}

func runMapOrder(pass *analysis.Pass) (interface{}, error) {
	c := &mapChecker{pass: pass, sends: make(map[*types.Func]bool)}
	c.collectSends()

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node) {
		rs := n.(*ast.RangeStmt)
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		c.checkRange(rs)
	})
	return nil, nil
}

func (c *mapChecker) collectSends() {
	info := c.pass.TypesInfo
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if annot.Has(annot.FuncDirectives(d), "send") {
					if fn, ok := info.Defs[d.Name].(*types.Func); ok {
						c.sends[fn] = true
						c.pass.ExportObjectFact(fn, &SendFact{})
					}
				}
			case *ast.GenDecl:
				ast.Inspect(d, func(n ast.Node) bool {
					it, ok := n.(*ast.InterfaceType)
					if !ok {
						return true
					}
					for _, m := range it.Methods.List {
						if !annot.Has(annot.FieldDirectives(m), "send") {
							continue
						}
						for _, name := range m.Names {
							if fn, ok := info.Defs[name].(*types.Func); ok {
								c.sends[fn] = true
								c.pass.ExportObjectFact(fn, &SendFact{})
							}
						}
					}
					return true
				})
			}
		}
	}
}

func (c *mapChecker) isSend(fn *types.Func) bool {
	if c.sends[fn] {
		return true
	}
	if fn.Pkg() == nil || fn.Pkg() == c.pass.Pkg {
		return false
	}
	var f SendFact
	return c.pass.ImportObjectFact(fn, &f)
}

func (c *mapChecker) checkRange(rs *ast.RangeStmt) {
	info := c.pass.TypesInfo

	// Rule a: a send inside the body — iteration order becomes wire order.
	var sendCall *ast.CallExpr
	var sendName string
	inspectSkippingFuncLits(rs.Body, func(n ast.Node) bool {
		if sendCall != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := typeutil.StaticCallee(info, call)
		if fn == nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				fn, _ = info.Uses[sel.Sel].(*types.Func)
			}
		}
		if fn != nil && c.isSend(fn) {
			sendCall, sendName = call, fn.Name()
			return false
		}
		return true
	})
	if sendCall != nil {
		c.reportf(sendCall.Pos(),
			"%s emits messages inside a map range: iteration order reaches the wire; collect and sort the keys first", sendName)
	}

	// Rule b: selection — an early exit plus the key/value escaping the
	// loop means map order picked the winner.
	kv := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				kv[obj] = true
			}
		}
	}
	if len(kv) == 0 {
		return
	}
	if !hasEarlyExit(rs.Body) {
		return
	}
	var escape ast.Node
	inspectSkippingFuncLits(rs.Body, func(n ast.Node) bool {
		if escape != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesAny(info, res, kv) {
					escape = n
					return false
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) && len(n.Rhs) != 1 {
					break
				}
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Uses[id] // plain =, target declared outside
				if obj == nil || obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
					continue
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if usesAny(info, rhs, kv) {
					escape = n
					return false
				}
			}
		}
		return true
	})
	if escape != nil {
		c.reportf(escape.Pos(),
			"map iteration order selects this result (early exit with escaping key/value); iterate sorted keys so every replica picks the same winner")
	}
}

func (c *mapChecker) reportf(pos token.Pos, format string, args ...interface{}) {
	if annot.InTestFile(c.pass, pos) || annot.Suppressed(c.pass, pos, MapOrderName) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// hasEarlyExit reports whether the loop body can exit before visiting every
// element: a return anywhere, or a break binding to this loop (breaks
// inside nested loops, switches, and selects bind to those instead).
func hasEarlyExit(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node, breakable bool)
	walk = func(n ast.Node, breakable bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				found = true
				return false
			case *ast.BranchStmt:
				if n.Tok == token.BREAK && breakable {
					// Unlabeled break to this loop (labels would name an
					// outer statement; treat any labeled break as exiting).
					found = true
				}
				return false
			case *ast.ForStmt:
				walk(n.Body, false)
				return false
			case *ast.RangeStmt:
				walk(n.Body, false)
				return false
			case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				// break binds to these; returns inside still count.
				walkInner(n, &found)
				return false
			}
			return true
		})
	}
	walk(body, true)
	return found
}

// walkInner scans switch/select bodies for returns only.
func walkInner(n ast.Node, found *bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if *found {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			*found = true
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			return false
		}
		return true
	})
}

func usesAny(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				used = true
				return false
			}
		}
		return true
	})
	return used
}

// inspectSkippingFuncLits walks n without descending into function
// literals (their bodies run later, in a different dynamic context).
func inspectSkippingFuncLits(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return f(n)
	})
}
