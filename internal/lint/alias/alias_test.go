package alias_test

import (
	"testing"

	"repro/internal/lint/alias"
	"repro/internal/lint/linttest"
)

func TestAlias(t *testing.T) {
	linttest.Run(t, "aliasfix", alias.Analyzer)
}
