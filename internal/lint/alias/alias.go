// Package alias implements bftalias, which flags the bug class behind the
// PR 2 buildViewChange regression: a caller-provided slice or map stored
// into a long-lived protocol structure without a deep copy. The caller
// keeps its reference, later mutates (append, re-slice, reuse), and the
// "immutable" protocol record changes under an active certificate.
//
// Types that outlive a call are marked `bftlint:longlived` (protocol
// state, certificate logs, caches). Within any function, an expression is
// *derived* from the caller if it is a non-receiver parameter of slice,
// map, or pointer type, a sub-slice / element / field of one, a local
// carrying one, or a composite literal embedding one. Storing a derived
// expression of slice or map type into a field or map of a long-lived
// value is reported unless the write is acknowledged with
// `bftlint:deepcopy` (an alias for allow=bftalias). Storing a derived
// pointer itself is not reported: handlers own their message objects after
// dispatch, and the bug class is retained slice/map backing memory (the
// qset field of a view-change message, not the message).
//
// Freshness heuristics: composite literals are fresh iff their elements
// are; `append` is derived iff its first argument is; any other call
// result (clones, marshals, constructors) counts as fresh.
package alias

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/lint/annot"
)

// Name is the analyzer name, used in `bftlint:allow=` suppressions
// (spelling `bftlint:deepcopy` is the idiomatic acknowledgment).
const Name = "bftalias"

// Analyzer is the bftalias analysis.
var Analyzer = &analysis.Analyzer{
	Name:      Name,
	Doc:       "flag caller-provided slices/maps stored into bftlint:longlived structs without a deep copy",
	Run:       run,
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*LonglivedFact)(nil)},
}

// LonglivedFact marks a type whose values outlive the calls that populate
// them, so storing caller memory into them is aliasing.
type LonglivedFact struct{}

func (*LonglivedFact) AFact()         {}
func (*LonglivedFact) String() string { return "longlived" }

type checker struct {
	pass      *analysis.Pass
	longlived map[*types.TypeName]bool // this package's annotations
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{pass: pass, longlived: make(map[*types.TypeName]bool)}
	c.collect()

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		c.checkFunc(fd)
	})
	return nil, nil
}

func (c *checker) collect() {
	info := c.pass.TypesInfo
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !annot.Has(annot.TypeDirectives(gd, ts), "longlived") {
					continue
				}
				if tn, ok := info.Defs[ts.Name].(*types.TypeName); ok {
					c.longlived[tn] = true
					c.pass.ExportObjectFact(tn, &LonglivedFact{})
				}
			}
		}
	}
}

func (c *checker) isLonglived(tn *types.TypeName) bool {
	if tn == nil {
		return false
	}
	if c.longlived[tn] {
		return true
	}
	if tn.Pkg() == nil || tn.Pkg() == c.pass.Pkg {
		return false
	}
	var f LonglivedFact
	return c.pass.ImportObjectFact(tn, &f)
}

// checkFunc runs the derived-value dataflow over one function body.
// Statements are visited in source order, which is a sound-enough
// approximation for straight-line assignment propagation.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	derived := make(map[types.Object]bool)
	info := c.pass.TypesInfo
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				if seedable(obj.Type()) {
					derived[obj] = true
				}
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Lhs) != len(as.Rhs) {
			return true // multi-value call or comma-ok: results are fresh
		}
		for i, lhs := range as.Lhs {
			rhs := as.Rhs[i]
			isDerived := c.derivedExpr(rhs, derived)
			// Propagate through plain local assignments.
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := objOf(info, id); obj != nil {
					derived[obj] = isDerived
				}
				continue
			}
			if !isDerived {
				continue
			}
			// Only slice/map stores retain caller backing memory; storing a
			// derived pointer (a whole message object) is ownership handoff.
			if tv, ok := info.Types[rhs]; !ok || !aliasable(tv.Type) {
				continue
			}
			if pos, desc, hit := c.longlivedTarget(lhs); hit {
				if annot.InTestFile(c.pass, pos) || annot.Suppressed(c.pass, pos, Name) {
					continue
				}
				c.pass.Reportf(pos,
					"caller-provided slice/map stored into long-lived %s without a deep copy; the caller retains a mutable reference (copy it, or acknowledge with bftlint:deepcopy)",
					desc)
			}
		}
		return true
	})
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// aliasable reports whether a stored value of type t retains caller
// backing memory.
func aliasable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// seedable reports whether a parameter of type t can carry caller memory
// reachable through field/index/slice chains (and so seeds the derived
// set).
func seedable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer:
		return true
	}
	return false
}

// derivedExpr reports whether e may alias caller-provided memory.
func (c *checker) derivedExpr(e ast.Expr, derived map[types.Object]bool) bool {
	info := c.pass.TypesInfo
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := objOf(info, e)
		return obj != nil && derived[obj]
	case *ast.SliceExpr:
		return c.derivedExpr(e.X, derived)
	case *ast.IndexExpr:
		return c.derivedExpr(e.X, derived)
	case *ast.SelectorExpr:
		// A field of a derived value is derived; package-qualified idents
		// and fields of owned state are not caller memory.
		if sel := info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			return c.derivedExpr(e.X, derived)
		}
		return false
	case *ast.UnaryExpr:
		return c.derivedExpr(e.X, derived)
	case *ast.StarExpr:
		return c.derivedExpr(e.X, derived)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if c.derivedExpr(el, derived) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		// append keeps its first argument's backing array; conversions
		// keep their operand; everything else (clones, constructors,
		// marshals) returns fresh memory.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && info.Uses[id] == types.Universe.Lookup("append") {
			return len(e.Args) > 0 && c.derivedExpr(e.Args[0], derived)
		}
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			return len(e.Args) == 1 && c.derivedExpr(e.Args[0], derived)
		}
		return false
	}
	return false
}

// longlivedTarget reports whether lhs writes into a field or map of a
// long-lived value, returning a position and description for the report.
func (c *checker) longlivedTarget(lhs ast.Expr) (pos token.Pos, desc string, hit bool) {
	info := c.pass.TypesInfo
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if sel := info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
				recv := sel.Recv()
				if p, ok := recv.Underlying().(*types.Pointer); ok {
					recv = p.Elem()
				}
				if tn := typeNameOf(recv); c.isLonglived(tn) {
					return e.Sel.Pos(), types.TypeString(recv, types.RelativeTo(c.pass.Pkg)) + "." + e.Sel.Name, true
				}
			}
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return 0, "", false
		}
	}
}

func typeNameOf(t types.Type) *types.TypeName {
	if n, ok := t.(interface{ Obj() *types.TypeName }); ok {
		return n.Obj()
	}
	return nil
}
