// Package linttest is the golden-test harness for the bftlint analyzers.
// The vendored x/tools subset has no analysistest, so this reimplements the
// part the suite needs on top of the internal/lint/driver loader: run
// analyzers over a fixture package under internal/lint/testdata/src and
// compare every diagnostic against `// want` expectations in the fixture
// source.
//
// Expectation syntax (a subset of analysistest's):
//
//	s.qset[seq] = entries // want `stored into long-lived`
//	r.bump()              // want `reaches eventloop-owned` `via bump`
//
// Each backquoted pattern is a regexp that must match the message of a
// distinct diagnostic reported on that line; diagnostics with no matching
// pattern, and patterns with no matching diagnostic, both fail the test.
// Fixtures live under a testdata directory, so `go build ./...` and the
// repo-wide bftlint run never see them — which keeps deliberately buggy
// fixture code out of the clean-tree guarantee.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/driver"
)

// expectation is one `// want` pattern, keyed by file and line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("// want (.*)$")
var patRe = regexp.MustCompile("`([^`]*)`")

// Run loads the fixture package internal/lint/testdata/src/<fixture>,
// runs the analyzers over it (dependencies first, facts flowing forward),
// and checks the diagnostics against the fixture's `// want` comments.
func Run(t *testing.T, fixture string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	root := repoRoot(t)
	set, err := driver.Load(root, "./internal/lint/testdata/src/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags, err := set.Run(analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", fixture, err)
	}

	var wants []*expectation
	for _, pkg := range set.Pkgs {
		if !pkg.Reportable {
			continue
		}
		for _, f := range pkg.Syntax {
			name := set.Fset.Position(f.Pos()).Filename
			ws, err := parseWants(name)
			if err != nil {
				t.Fatalf("parsing expectations: %v", err)
			}
			wants = append(wants, ws...)
		}
	}

	for _, d := range diags {
		if !match(wants, d) {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", posOf(d), d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				filepath.Base(w.file), w.line, w.pattern)
		}
	}
}

// match consumes the first unmatched expectation on the diagnostic's line
// whose pattern matches its message.
func match(wants []*expectation, d driver.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func posOf(d driver.Diagnostic) string {
	return fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
}

// parseWants extracts the `// want` expectations of one fixture file.
func parseWants(file string) ([]*expectation, error) {
	b, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var out []*expectation
	for i, line := range strings.Split(string(b), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		pats := patRe.FindAllStringSubmatch(m[1], -1)
		if len(pats) == 0 {
			return nil, fmt.Errorf("%s:%d: `// want` with no backquoted pattern", file, i+1)
		}
		for _, p := range pats {
			re, err := regexp.Compile(p[1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad pattern %q: %v", file, i+1, p[1], err)
			}
			out = append(out, &expectation{file: file, line: i + 1, pattern: re})
		}
	}
	return out, nil
}

// repoRoot locates the module root (two levels above this package's dir),
// robust to the test binary's working directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	// self = <root>/internal/lint/linttest/linttest.go
	root := filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(self))))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found from %s: %v", self, err)
	}
	return root
}
