package lint

import (
	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/alias"
	"repro/internal/lint/bufown"
	"repro/internal/lint/deadlock"
	"repro/internal/lint/det"
	"repro/internal/lint/owner"
	"repro/internal/lint/quorum"
	"repro/internal/lint/taint"
	"repro/internal/lint/wire"
)

// Analyzers is the full bftlint suite, in the order findings are most
// useful to read: ownership first (the structural invariant), then the
// memory contracts, then determinism, then the protocol-shape analyzers
// (wire/digest coverage, quorum arithmetic, Byzantine-input taint,
// rendezvous deadlock).
var Analyzers = []*analysis.Analyzer{
	owner.Analyzer,
	alias.Analyzer,
	bufown.Analyzer,
	det.RandAnalyzer,
	det.TimeAnalyzer,
	det.MapOrderAnalyzer,
	wire.Analyzer,
	quorum.Analyzer,
	taint.Analyzer,
	deadlock.Analyzer,
}
