package lint

import (
	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/alias"
	"repro/internal/lint/bufown"
	"repro/internal/lint/det"
	"repro/internal/lint/owner"
)

// Analyzers is the full bftlint suite, in the order findings are most
// useful to read: ownership first (the structural invariant), then the
// memory contracts, then determinism.
var Analyzers = []*analysis.Analyzer{
	owner.Analyzer,
	alias.Analyzer,
	bufown.Analyzer,
	det.RandAnalyzer,
	det.TimeAnalyzer,
	det.MapOrderAnalyzer,
}
