// Package workload provides the load generators and measurement helpers the
// benchmark harness uses: closed-loop client drivers for the micro
// benchmarks of §8.1 (a/0 and 0/b operations), latency statistics, and a
// scaled Andrew-benchmark workalike for the BFS evaluation of §8.6.
package workload

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bfs"
)

// Invoker is the minimal execution interface (BFT client, baseline client).
type Invoker interface {
	Invoke(op []byte, readOnly bool) ([]byte, error)
}

// ContextInvoker is the library-wide cancellable invocation contract.
// bft.Client, bft.ClientPool, the engine client, and the baseline all
// satisfy it; the open-loop driver requires it because open-loop load only
// makes sense against something that can serve invocations concurrently —
// a pool of client principals.
type ContextInvoker interface {
	InvokeContext(ctx context.Context, op []byte, readOnly bool) ([]byte, error)
}

// OpGen produces the i-th operation for one client. Returning a nil op
// ends that client's stream early (used by duration-bounded runs).
type OpGen func(i int) (op []byte, readOnly bool)

// Stats summarizes a run.
type Stats struct {
	N         int
	Errors    int
	Elapsed   time.Duration
	latencies []time.Duration
	sorted    bool
}

// Add records one sample.
func (s *Stats) Add(d time.Duration) {
	s.latencies = append(s.latencies, d)
	s.N++
	s.sorted = false
}

// Merge folds another Stats in.
func (s *Stats) Merge(o *Stats) {
	s.latencies = append(s.latencies, o.latencies...)
	s.N += o.N
	s.Errors += o.Errors
	s.sorted = false
}

func (s *Stats) sort() {
	if !s.sorted {
		sort.Slice(s.latencies, func(i, j int) bool { return s.latencies[i] < s.latencies[j] })
		s.sorted = true
	}
}

// Mean returns the average latency.
func (s *Stats) Mean() time.Duration {
	if len(s.latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.latencies {
		sum += d
	}
	return sum / time.Duration(len(s.latencies))
}

// Percentile returns the p-th percentile latency (p in [0,100]).
func (s *Stats) Percentile(p float64) time.Duration {
	if len(s.latencies) == 0 {
		return 0
	}
	s.sort()
	idx := int(p / 100 * float64(len(s.latencies)-1))
	return s.latencies[idx]
}

// Median returns the 50th percentile.
func (s *Stats) Median() time.Duration { return s.Percentile(50) }

// Throughput returns completed operations per second.
func (s *Stats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.N) / s.Elapsed.Seconds()
}

// String formats the headline numbers.
func (s *Stats) String() string {
	return fmt.Sprintf("n=%d err=%d mean=%v p50=%v p95=%v tput=%.0f/s",
		s.N, s.Errors, s.Mean(), s.Median(), s.Percentile(95), s.Throughput())
}

// RunClosed drives nClients closed-loop clients, each executing opsEach
// operations produced by gen, and returns merged statistics.
func RunClosed(mkClient func() Invoker, nClients, opsEach int, gen OpGen) *Stats {
	var wg sync.WaitGroup
	parts := make([]*Stats, nClients)
	start := time.Now()
	for c := 0; c < nClients; c++ {
		inv := mkClient()
		st := &Stats{}
		parts[c] = st
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				op, ro := gen(i)
				if op == nil {
					return
				}
				t0 := time.Now()
				if _, err := inv.Invoke(op, ro); err != nil {
					st.Errors++
					continue
				}
				st.Add(time.Since(t0))
			}
		}()
	}
	wg.Wait()
	total := &Stats{Elapsed: time.Since(start)}
	for _, p := range parts {
		total.Merge(p)
	}
	return total
}

// OpenStats extends Stats with open-loop accounting.
type OpenStats struct {
	Stats
	// Offered is the number of operations injected by the arrival process
	// (rate × duration, independent of completions). Every offered
	// operation resolves before the driver returns — successes land in N,
	// failures (including invocations aborted by ctx cancellation) in
	// Errors — so Offered = N + Errors; the interesting open-loop signal
	// is the latency distribution, which includes queueing delay whenever
	// arrivals outpace completions.
	Offered int
}

// RunOpenLoop drives OPEN-LOOP load: operations arrive at a fixed rate
// (ops/sec) for the given duration regardless of completions — the
// arrival process of a production front door, as opposed to RunClosed's
// think-time-free closed loop. Each arrival invokes through inv, which
// must multiplex concurrent invocations (a bft.ClientPool fans them
// across k distinct client principals; arrivals beyond k queue on the
// pool, and their latency includes the queueing delay, as open-loop
// latency should). After the last arrival the driver waits for every
// in-flight invocation to resolve — each is bounded by its client's own
// retry budget; give ctx a deadline (or cancel it) to cut stragglers
// short, which lands them in Errors.
func RunOpenLoop(ctx context.Context, inv ContextInvoker, rate float64, duration time.Duration, gen OpGen) *OpenStats {
	if rate <= 0 {
		return &OpenStats{}
	}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	st := &OpenStats{}
	var mu sync.Mutex
	var wg sync.WaitGroup

	start := time.Now()
	end := start.Add(duration)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	i := 0
inject:
	for {
		now := time.Now()
		if !now.Before(end) {
			break
		}
		// Inject every arrival the nominal schedule owes by now (arrival i
		// is due at start + i·interval). A busy host can starve this
		// goroutine between ticks, and the ticker coalesces missed fires;
		// without catch-up the "open-loop" rate silently degrades toward
		// the completion rate — a closed loop in disguise.
		due := int(now.Sub(start)/interval) + 1
		for i < due {
			op, ro := gen(i)
			i++
			if op == nil {
				break inject
			}
			st.Offered++
			wg.Add(1)
			go func() {
				defer wg.Done()
				t0 := time.Now()
				_, err := inv.InvokeContext(ctx, op, ro)
				d := time.Since(t0)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					st.Errors++
					return
				}
				st.Add(d)
			}()
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			break inject
		}
	}
	wg.Wait()
	st.Elapsed = time.Since(start)
	return st
}

// MeasureLatency runs n sequential operations on one client and returns
// per-op statistics (the paper's latency micro-benchmark shape, §8.3.1).
func MeasureLatency(inv Invoker, n int, gen OpGen) *Stats {
	st := &Stats{}
	start := time.Now()
	for i := 0; i < n; i++ {
		op, ro := gen(i)
		t0 := time.Now()
		if _, err := inv.Invoke(op, ro); err != nil {
			st.Errors++
			continue
		}
		st.Add(time.Since(t0))
	}
	st.Elapsed = time.Since(start)
	return st
}

// ---------------------------------------------------------------------------
// Andrew-benchmark workalike (§8.6: "we scaled up the benchmark")
// ---------------------------------------------------------------------------

// AndrewTimes holds per-phase wall-clock times.
type AndrewTimes struct {
	Phase [5]time.Duration
	Total time.Duration
}

// PhaseNames labels the five phases like the paper's Table 8.14.
var PhaseNames = [5]string{
	"1 mkdir", "2 copy", "3 stat", "4 read", "5 make",
}

// RunAndrew executes a scaled Andrew-benchmark-like workload against a BFS
// client: (1) create the directory tree, (2) copy source files into it,
// (3) stat every file, (4) read every file, (5) a compile-like pass that
// reads sources and writes outputs. scale multiplies the work (scale 1 ≈
// one Andrew iteration's file counts, shrunk to simulator size).
func RunAndrew(fc *bfs.Client, scale int) (AndrewTimes, error) {
	return RunAndrewAt(fc, scale, "")
}

// RunAndrewAt runs the benchmark under a namespace prefix so repeated
// passes over one file system do not collide.
func RunAndrewAt(fc *bfs.Client, scale int, prefix string) (AndrewTimes, error) {
	var at AndrewTimes
	if scale < 1 {
		scale = 1
	}
	const dirsPerUnit = 5
	const filesPerDir = 4
	fileSize := 2048

	type file struct {
		dir  uint32
		name string
		ino  uint32
	}
	var files []file
	var dirs []uint32

	start := time.Now()

	base := uint32(bfs.RootIno)
	if prefix != "" {
		a, err := fc.MkdirAll("/" + prefix + "/bench")
		if err != nil {
			return at, fmt.Errorf("prefix: %w", err)
		}
		base = a
	}

	// Phase 1: mkdir.
	t0 := time.Now()
	for u := 0; u < scale; u++ {
		top, err := fc.Mkdir(base, fmt.Sprintf("unit%d", u))
		if err != nil {
			return at, fmt.Errorf("phase1: %w", err)
		}
		for d := 0; d < dirsPerUnit; d++ {
			sub, err := fc.Mkdir(top.Ino, fmt.Sprintf("dir%d", d))
			if err != nil {
				return at, fmt.Errorf("phase1: %w", err)
			}
			dirs = append(dirs, sub.Ino)
		}
	}
	at.Phase[0] = time.Since(t0)

	// Phase 2: copy (write source files).
	t0 = time.Now()
	content := make([]byte, fileSize)
	for i := range content {
		content[i] = byte(i)
	}
	for di, dir := range dirs {
		for f := 0; f < filesPerDir; f++ {
			name := fmt.Sprintf("src%d.c", f)
			ino, err := fc.WriteFile(dir, name, content)
			if err != nil {
				return at, fmt.Errorf("phase2: %w", err)
			}
			files = append(files, file{dir: dir, name: name, ino: ino})
		}
		_ = di
	}
	at.Phase[1] = time.Since(t0)

	// Phase 3: stat every file (directory walk + getattr).
	t0 = time.Now()
	for _, dir := range dirs {
		ents, err := fc.Readdir(dir)
		if err != nil {
			return at, fmt.Errorf("phase3: %w", err)
		}
		for _, e := range ents {
			if _, err := fc.GetAttr(e.Ino); err != nil {
				return at, fmt.Errorf("phase3: %w", err)
			}
		}
	}
	at.Phase[2] = time.Since(t0)

	// Phase 4: read every file.
	t0 = time.Now()
	for _, f := range files {
		if _, err := fc.ReadFile(f.ino); err != nil {
			return at, fmt.Errorf("phase4: %w", err)
		}
	}
	at.Phase[3] = time.Since(t0)

	// Phase 5: make — read sources, write an output per directory.
	t0 = time.Now()
	for _, dir := range dirs {
		var objSize int
		ents, err := fc.Readdir(dir)
		if err != nil {
			return at, fmt.Errorf("phase5: %w", err)
		}
		for _, e := range ents {
			data, err := fc.ReadFile(e.Ino)
			if err != nil {
				return at, fmt.Errorf("phase5: %w", err)
			}
			objSize += len(data) / 2
		}
		obj := make([]byte, objSize)
		if _, err := fc.WriteFile(dir, "out.o", obj); err != nil {
			return at, fmt.Errorf("phase5: %w", err)
		}
	}
	at.Phase[4] = time.Since(t0)

	at.Total = time.Since(start)
	return at, nil
}
