package workload

import (
	"errors"
	"testing"
	"time"

	"repro/internal/bfs"
	"repro/internal/message"
	"repro/internal/statemachine"
)

type fakeInvoker struct {
	delay time.Duration
	fail  bool
	calls int
}

func (f *fakeInvoker) Invoke(op []byte, ro bool) ([]byte, error) {
	f.calls++
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.fail {
		return nil, errors.New("boom")
	}
	return []byte("ok"), nil
}

func TestStatsBasics(t *testing.T) {
	s := &Stats{}
	for _, d := range []time.Duration{10, 20, 30, 40, 50} {
		s.Add(d * time.Millisecond)
	}
	s.Elapsed = 150 * time.Millisecond
	if s.Mean() != 30*time.Millisecond {
		t.Fatalf("mean %v", s.Mean())
	}
	if s.Median() != 30*time.Millisecond {
		t.Fatalf("median %v", s.Median())
	}
	if s.Percentile(100) != 50*time.Millisecond {
		t.Fatalf("p100 %v", s.Percentile(100))
	}
	if s.Percentile(0) != 10*time.Millisecond {
		t.Fatalf("p0 %v", s.Percentile(0))
	}
	if tp := s.Throughput(); tp < 33 || tp > 34 {
		t.Fatalf("throughput %f", tp)
	}
	if s.String() == "" {
		t.Fatal("empty string")
	}
}

func TestStatsEmpty(t *testing.T) {
	s := &Stats{}
	if s.Mean() != 0 || s.Median() != 0 || s.Throughput() != 0 {
		t.Fatal("zero-value stats must be zeros")
	}
}

func TestStatsMerge(t *testing.T) {
	a, b := &Stats{}, &Stats{}
	a.Add(10 * time.Millisecond)
	b.Add(30 * time.Millisecond)
	b.Errors = 2
	a.Merge(b)
	if a.N != 2 || a.Errors != 2 || a.Mean() != 20*time.Millisecond {
		t.Fatalf("merge: %+v", a)
	}
}

func TestRunClosedCountsOps(t *testing.T) {
	invokers := []*fakeInvoker{}
	st := RunClosed(func() Invoker {
		f := &fakeInvoker{}
		invokers = append(invokers, f)
		return f
	}, 3, 7, func(int) ([]byte, bool) { return []byte{1}, false })
	if st.N != 21 || st.Errors != 0 {
		t.Fatalf("stats %+v", st)
	}
	for _, f := range invokers {
		if f.calls != 7 {
			t.Fatalf("client made %d calls", f.calls)
		}
	}
}

func TestRunClosedRecordsErrors(t *testing.T) {
	st := RunClosed(func() Invoker { return &fakeInvoker{fail: true} },
		2, 3, func(int) ([]byte, bool) { return []byte{1}, false })
	if st.N != 0 || st.Errors != 6 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMeasureLatency(t *testing.T) {
	f := &fakeInvoker{delay: time.Millisecond}
	st := MeasureLatency(f, 5, func(int) ([]byte, bool) { return []byte{1}, true })
	if st.N != 5 {
		t.Fatalf("n=%d", st.N)
	}
	if st.Mean() < time.Millisecond {
		t.Fatalf("mean %v below injected delay", st.Mean())
	}
}

// directInvoker drives the Andrew benchmark against an in-process BFS.
type directInvoker struct{ s *bfs.Service }

func (d *directInvoker) Invoke(op []byte, ro bool) ([]byte, error) {
	return d.s.Execute(message.ClientIDBase, op, d.s.ProposeNonDet()), nil
}

func TestRunAndrewPhases(t *testing.T) {
	r := statemachine.NewRegion(bfs.MinRegionSize(4096), 4096)
	fc := bfs.NewClient(&directInvoker{s: bfs.NewService(r)})
	at, err := RunAndrew(fc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if at.Total <= 0 {
		t.Fatal("no time elapsed")
	}
	for i, p := range at.Phase {
		if p < 0 {
			t.Fatalf("phase %d negative", i)
		}
	}
	// Scale 1: 5 dirs of 4 files each must exist afterwards.
	a, err := fc.WalkPath("/unit0/dir0/src0.c")
	if err != nil {
		t.Fatal(err)
	}
	if a.Size != 2048 {
		t.Fatalf("file size %d", a.Size)
	}
	if _, err := fc.WalkPath("/unit0/dir4/out.o"); err != nil {
		t.Fatal("phase 5 output missing")
	}
}

func TestRunAndrewAtPrefixIsolated(t *testing.T) {
	r := statemachine.NewRegion(bfs.MinRegionSize(8192), 4096)
	fc := bfs.NewClient(&directInvoker{s: bfs.NewService(r)})
	if _, err := RunAndrewAt(fc, 1, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := RunAndrewAt(fc, 1, "b"); err != nil {
		t.Fatal("second pass under a different prefix must not collide:", err)
	}
	if _, err := fc.WalkPath("/a/bench/unit0/dir0/src0.c"); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.WalkPath("/b/bench/unit0/dir0/src0.c"); err != nil {
		t.Fatal(err)
	}
}
