package workload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/bfs"
	"repro/internal/message"
	"repro/internal/statemachine"
)

type fakeInvoker struct {
	delay time.Duration
	fail  bool
	calls int
}

func (f *fakeInvoker) Invoke(op []byte, ro bool) ([]byte, error) {
	f.calls++
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.fail {
		return nil, errors.New("boom")
	}
	return []byte("ok"), nil
}

func TestStatsBasics(t *testing.T) {
	s := &Stats{}
	for _, d := range []time.Duration{10, 20, 30, 40, 50} {
		s.Add(d * time.Millisecond)
	}
	s.Elapsed = 150 * time.Millisecond
	if s.Mean() != 30*time.Millisecond {
		t.Fatalf("mean %v", s.Mean())
	}
	if s.Median() != 30*time.Millisecond {
		t.Fatalf("median %v", s.Median())
	}
	if s.Percentile(100) != 50*time.Millisecond {
		t.Fatalf("p100 %v", s.Percentile(100))
	}
	if s.Percentile(0) != 10*time.Millisecond {
		t.Fatalf("p0 %v", s.Percentile(0))
	}
	if tp := s.Throughput(); tp < 33 || tp > 34 {
		t.Fatalf("throughput %f", tp)
	}
	if s.String() == "" {
		t.Fatal("empty string")
	}
}

func TestStatsEmpty(t *testing.T) {
	s := &Stats{}
	if s.Mean() != 0 || s.Median() != 0 || s.Throughput() != 0 {
		t.Fatal("zero-value stats must be zeros")
	}
}

func TestStatsMerge(t *testing.T) {
	a, b := &Stats{}, &Stats{}
	a.Add(10 * time.Millisecond)
	b.Add(30 * time.Millisecond)
	b.Errors = 2
	a.Merge(b)
	if a.N != 2 || a.Errors != 2 || a.Mean() != 20*time.Millisecond {
		t.Fatalf("merge: %+v", a)
	}
}

func TestRunClosedCountsOps(t *testing.T) {
	invokers := []*fakeInvoker{}
	st := RunClosed(func() Invoker {
		f := &fakeInvoker{}
		invokers = append(invokers, f)
		return f
	}, 3, 7, func(int) ([]byte, bool) { return []byte{1}, false })
	if st.N != 21 || st.Errors != 0 {
		t.Fatalf("stats %+v", st)
	}
	for _, f := range invokers {
		if f.calls != 7 {
			t.Fatalf("client made %d calls", f.calls)
		}
	}
}

func TestRunClosedRecordsErrors(t *testing.T) {
	st := RunClosed(func() Invoker { return &fakeInvoker{fail: true} },
		2, 3, func(int) ([]byte, bool) { return []byte{1}, false })
	if st.N != 0 || st.Errors != 6 {
		t.Fatalf("stats %+v", st)
	}
}

// fakePool is a ContextInvoker with a bounded number of concurrent slots,
// shaped like a bft.ClientPool.
type fakePool struct {
	slots chan struct{}
	delay time.Duration

	mu      sync.Mutex
	calls   int
	maxBusy int
	busy    int
}

func newFakePool(k int, delay time.Duration) *fakePool {
	p := &fakePool{slots: make(chan struct{}, k), delay: delay}
	for i := 0; i < k; i++ {
		p.slots <- struct{}{}
	}
	return p
}

func (p *fakePool) InvokeContext(ctx context.Context, op []byte, ro bool) ([]byte, error) {
	select {
	case <-p.slots:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { p.slots <- struct{}{} }()
	p.mu.Lock()
	p.calls++
	p.busy++
	if p.busy > p.maxBusy {
		p.maxBusy = p.busy
	}
	p.mu.Unlock()
	time.Sleep(p.delay)
	p.mu.Lock()
	p.busy--
	p.mu.Unlock()
	return []byte("ok"), nil
}

func TestRunOpenLoopOffersAtRate(t *testing.T) {
	pool := newFakePool(8, time.Millisecond)
	st := RunOpenLoop(context.Background(), pool, 500, 200*time.Millisecond,
		func(int) ([]byte, bool) { return []byte{1}, false })
	if st.Offered == 0 || st.N == 0 {
		t.Fatalf("no load ran: %+v", st)
	}
	if st.N != st.Offered {
		t.Fatalf("completions %d != offered %d with an idle pool", st.N, st.Offered)
	}
	if st.Errors != 0 {
		t.Fatalf("%d errors", st.Errors)
	}
	// 500/s for 200ms ≈ 100 arrivals; allow wide scheduling slack but
	// catch a driver that ignores the rate entirely.
	if st.Offered < 20 || st.Offered > 120 {
		t.Fatalf("offered %d, want ≈100", st.Offered)
	}
	pool.mu.Lock()
	defer pool.mu.Unlock()
	if pool.maxBusy < 2 {
		t.Fatalf("open-loop never overlapped invocations (maxBusy=%d)", pool.maxBusy)
	}
}

func TestRunOpenLoopHonorsCancellation(t *testing.T) {
	pool := newFakePool(1, 50*time.Millisecond) // 1 slot: arrivals pile up
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(60 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	st := RunOpenLoop(ctx, pool, 1000, time.Second,
		func(int) ([]byte, bool) { return []byte{1}, false })
	if waited := time.Since(start); waited > 500*time.Millisecond {
		t.Fatalf("driver kept running %v after cancel", waited)
	}
	if st.Offered == 0 {
		t.Fatal("nothing offered before cancel")
	}
}

func TestMeasureLatency(t *testing.T) {
	f := &fakeInvoker{delay: time.Millisecond}
	st := MeasureLatency(f, 5, func(int) ([]byte, bool) { return []byte{1}, true })
	if st.N != 5 {
		t.Fatalf("n=%d", st.N)
	}
	if st.Mean() < time.Millisecond {
		t.Fatalf("mean %v below injected delay", st.Mean())
	}
}

// directInvoker drives the Andrew benchmark against an in-process BFS.
type directInvoker struct{ s *bfs.Service }

func (d *directInvoker) InvokeContext(_ context.Context, op []byte, ro bool) ([]byte, error) {
	return d.s.Execute(message.ClientIDBase, op, d.s.ProposeNonDet()), nil
}

func TestRunAndrewPhases(t *testing.T) {
	r := statemachine.NewRegion(bfs.MinRegionSize(4096), 4096)
	fc := bfs.NewClient(&directInvoker{s: bfs.NewService(r)})
	at, err := RunAndrew(fc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if at.Total <= 0 {
		t.Fatal("no time elapsed")
	}
	for i, p := range at.Phase {
		if p < 0 {
			t.Fatalf("phase %d negative", i)
		}
	}
	// Scale 1: 5 dirs of 4 files each must exist afterwards.
	a, err := fc.WalkPath("/unit0/dir0/src0.c")
	if err != nil {
		t.Fatal(err)
	}
	if a.Size != 2048 {
		t.Fatalf("file size %d", a.Size)
	}
	if _, err := fc.WalkPath("/unit0/dir4/out.o"); err != nil {
		t.Fatal("phase 5 output missing")
	}
}

func TestRunAndrewAtPrefixIsolated(t *testing.T) {
	r := statemachine.NewRegion(bfs.MinRegionSize(8192), 4096)
	fc := bfs.NewClient(&directInvoker{s: bfs.NewService(r)})
	if _, err := RunAndrewAt(fc, 1, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := RunAndrewAt(fc, 1, "b"); err != nil {
		t.Fatal("second pass under a different prefix must not collide:", err)
	}
	if _, err := fc.WalkPath("/a/bench/unit0/dir0/src0.c"); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.WalkPath("/b/bench/unit0/dir0/src0.c"); err != nil {
		t.Fatal(err)
	}
}
