// Package bfs is BFS, the Byzantine-fault-tolerant file service of Chapter 6:
// an NFS-like file system whose entire state lives in the library-managed
// memory region, laid out like a small on-disk file system (superblock,
// inode table, allocation bitmap, data blocks). Every mutation goes through
// Region.Modify, so the BFT library's copy-on-write checkpoints and state
// transfer work over file-system state exactly as they did for the thesis's
// memory-mapped BFS.
//
// File timestamps come from the non-determinism protocol of §5.4: the
// primary proposes its clock reading with each batch and BFS stamps mtimes
// with the agreed value.
package bfs

import (
	"encoding/binary"

	"repro/internal/statemachine"
)

// Geometry constants.
const (
	// BlockSize is the data block size. It need not match the region's
	// checkpoint page size.
	BlockSize = 1024

	// InodeSize is the on-"disk" inode record size.
	InodeSize = 128

	// NDirect is the number of direct block pointers per inode.
	NDirect = 12

	// DirEntrySize is the fixed directory entry size: 4-byte inode number,
	// 1-byte name length, 59-byte name.
	DirEntrySize = 64

	// MaxNameLen bounds file names.
	MaxNameLen = 59

	// RootIno is the root directory's inode number.
	RootIno = 1
)

// File types stored in Inode.Type.
const (
	TypeFree    uint8 = 0
	TypeFile    uint8 = 1
	TypeDir     uint8 = 2
	TypeSymlink uint8 = 3
)

// Superblock field offsets (all u64, at the start of the region).
const (
	sbMagic      = 0
	sbNumInodes  = 8
	sbNumBlocks  = 16
	sbInodeBase  = 24
	sbBitmapBase = 32
	sbDataBase   = 40
	sbFreeBlocks = 48
	sbGeneration = 56
	sbSize       = 64
)

const fsMagic = 0xBF5_F5_2026

// Inode is the in-memory view of an inode record.
type Inode struct {
	Ino    uint32
	Type   uint8
	Nlink  uint16
	Size   uint64
	Mtime  uint64
	Blocks [NDirect]uint32 // direct data block numbers; 0 = hole
	// Indirect is a block number holding up to BlockSize/4 further block
	// pointers; 0 = none.
	Indirect uint32
}

// MaxFileSize is the largest representable file.
const MaxFileSize = (NDirect + BlockSize/4) * BlockSize

// FS is the file-system layer over a region. It is purely mechanical: all
// policy (operation semantics, permissions) lives in service.go.
type FS struct {
	r *statemachine.Region

	numInodes  int
	numBlocks  int
	inodeBase  int // byte offset of the inode table
	bitmapBase int // byte offset of the allocation bitmap
	dataBase   int // byte offset of block 0
}

// Format initializes an empty file system in the region and returns the FS.
// The layout is computed from the region size: ~1 inode per 4 data blocks.
func Format(r *statemachine.Region) *FS {
	total := r.Size() - sbSize
	// Solve for blocks: blocks*BlockSize + blocks/4*InodeSize + blocks/8 <= total
	perBlock := BlockSize + InodeSize/4 + 1
	blocks := total / perBlock
	if blocks < 8 {
		blocks = 8
	}
	inodes := blocks / 4
	if inodes < 16 {
		inodes = 16
	}
	fs := &FS{
		r:          r,
		numInodes:  inodes,
		numBlocks:  blocks,
		inodeBase:  sbSize,
		bitmapBase: sbSize + inodes*InodeSize,
	}
	fs.dataBase = fs.bitmapBase + (blocks+7)/8
	if fs.dataBase+blocks*BlockSize > r.Size() {
		// Shrink blocks to fit (conservative fixpoint).
		for fs.dataBase+fs.numBlocks*BlockSize > r.Size() && fs.numBlocks > 0 {
			fs.numBlocks--
		}
	}

	fs.putU64(sbMagic, fsMagic)
	fs.putU64(sbNumInodes, uint64(fs.numInodes))
	fs.putU64(sbNumBlocks, uint64(fs.numBlocks))
	fs.putU64(sbInodeBase, uint64(fs.inodeBase))
	fs.putU64(sbBitmapBase, uint64(fs.bitmapBase))
	fs.putU64(sbDataBase, uint64(fs.dataBase))
	// Block 0 is reserved as the "hole" marker and never allocated.
	fs.putU64(sbFreeBlocks, uint64(fs.numBlocks-1))
	fs.putU64(sbGeneration, 1)

	// Root directory.
	root := Inode{Ino: RootIno, Type: TypeDir, Nlink: 2}
	fs.writeInode(&root)
	return fs
}

// Open attaches to an already-formatted region (e.g. after state transfer).
func Open(r *statemachine.Region) *FS {
	fs := &FS{r: r}
	if fs.u64(sbMagic) != fsMagic {
		return Format(r)
	}
	fs.numInodes = int(fs.u64(sbNumInodes))
	fs.numBlocks = int(fs.u64(sbNumBlocks))
	fs.inodeBase = int(fs.u64(sbInodeBase))
	fs.bitmapBase = int(fs.u64(sbBitmapBase))
	fs.dataBase = int(fs.u64(sbDataBase))
	return fs
}

// MinRegionSize returns a region size fitting roughly the given number of
// data blocks.
func MinRegionSize(blocks int) int {
	return sbSize + blocks/4*InodeSize + (blocks+7)/8 + blocks*BlockSize + BlockSize
}

func (fs *FS) u64(off int) uint64 {
	return binary.LittleEndian.Uint64(fs.r.Bytes()[off:])
}

func (fs *FS) putU64(off int, v uint64) {
	fs.r.Modify(off, 8)
	binary.LittleEndian.PutUint64(fs.r.Bytes()[off:], v)
}

// FreeBlocks returns the free data block count.
func (fs *FS) FreeBlocks() int { return int(fs.u64(sbFreeBlocks)) }

// NumBlocks returns the total data block count.
func (fs *FS) NumBlocks() int { return fs.numBlocks }

// NumInodes returns the inode table size.
func (fs *FS) NumInodes() int { return fs.numInodes }

// --- Inode table ---

func (fs *FS) inodeOff(ino uint32) int {
	return fs.inodeBase + int(ino)*InodeSize
}

// ValidIno reports whether ino indexes the inode table (0 is reserved).
func (fs *FS) ValidIno(ino uint32) bool {
	return ino >= 1 && int(ino) < fs.numInodes
}

// ReadInode loads an inode record.
func (fs *FS) ReadInode(ino uint32) (Inode, bool) {
	if !fs.ValidIno(ino) {
		return Inode{}, false
	}
	b := fs.r.Bytes()[fs.inodeOff(ino):]
	in := Inode{
		Ino:   ino,
		Type:  b[0],
		Nlink: binary.LittleEndian.Uint16(b[2:]),
		Size:  binary.LittleEndian.Uint64(b[8:]),
		Mtime: binary.LittleEndian.Uint64(b[16:]),
	}
	for i := 0; i < NDirect; i++ {
		in.Blocks[i] = binary.LittleEndian.Uint32(b[24+4*i:])
	}
	in.Indirect = binary.LittleEndian.Uint32(b[24+4*NDirect:])
	return in, in.Type != TypeFree
}

func (fs *FS) writeInode(in *Inode) {
	off := fs.inodeOff(in.Ino)
	fs.r.Modify(off, InodeSize)
	b := fs.r.Bytes()[off:]
	b[0] = in.Type
	binary.LittleEndian.PutUint16(b[2:], in.Nlink)
	binary.LittleEndian.PutUint64(b[8:], in.Size)
	binary.LittleEndian.PutUint64(b[16:], in.Mtime)
	for i := 0; i < NDirect; i++ {
		binary.LittleEndian.PutUint32(b[24+4*i:], in.Blocks[i])
	}
	binary.LittleEndian.PutUint32(b[24+4*NDirect:], in.Indirect)
}

// allocInode finds a free inode and types it.
func (fs *FS) allocInode(typ uint8) (uint32, bool) {
	for ino := uint32(1); int(ino) < fs.numInodes; ino++ {
		b := fs.r.Bytes()[fs.inodeOff(ino):]
		if b[0] == TypeFree {
			in := Inode{Ino: ino, Type: typ, Nlink: 1}
			fs.writeInode(&in)
			return ino, true
		}
	}
	return 0, false
}

// freeInode releases an inode and all its blocks.
func (fs *FS) freeInode(in *Inode) {
	fs.truncate(in, 0)
	in.Type = TypeFree
	in.Nlink = 0
	fs.writeInode(in)
}

// --- Block allocation ---

// allocBlock returns a free data block number (1-based; 0 means failure).
func (fs *FS) allocBlock() uint32 {
	bm := fs.r.Bytes()[fs.bitmapBase:fs.dataBase]
	for i := 1; i < fs.numBlocks; i++ { // block 0 reserved as "hole"
		if bm[i>>3]&(1<<(i&7)) == 0 {
			fs.r.Modify(fs.bitmapBase+i>>3, 1)
			fs.r.Bytes()[fs.bitmapBase+i>>3] |= 1 << (i & 7)
			fs.putU64(sbFreeBlocks, fs.u64(sbFreeBlocks)-1)
			// Zero the block: deterministic content.
			off := fs.dataBase + i*BlockSize
			fs.r.Modify(off, BlockSize)
			clear(fs.r.Bytes()[off : off+BlockSize])
			return uint32(i)
		}
	}
	return 0
}

func (fs *FS) freeBlock(b uint32) {
	if b == 0 || int(b) >= fs.numBlocks {
		return
	}
	i := int(b)
	fs.r.Modify(fs.bitmapBase+i>>3, 1)
	fs.r.Bytes()[fs.bitmapBase+i>>3] &^= 1 << (i & 7)
	fs.putU64(sbFreeBlocks, fs.u64(sbFreeBlocks)+1)
}

// block returns the byte offset of data block b.
func (fs *FS) block(b uint32) int { return fs.dataBase + int(b)*BlockSize }

// --- Indirect block helpers ---

// blockNumAt returns the data block number for file block index bi (without
// allocating).
func (fs *FS) blockNumAt(in *Inode, bi int) uint32 {
	if bi < NDirect {
		return in.Blocks[bi]
	}
	if in.Indirect == 0 {
		return 0
	}
	idx := bi - NDirect
	if idx >= BlockSize/4 {
		return 0
	}
	off := fs.block(in.Indirect) + idx*4
	return binary.LittleEndian.Uint32(fs.r.Bytes()[off:])
}

// ensureBlockAt returns the data block for file block bi, allocating it (and
// the indirect block) if needed. Returns 0 when out of space or range.
func (fs *FS) ensureBlockAt(in *Inode, bi int) uint32 {
	if bi < NDirect {
		if in.Blocks[bi] == 0 {
			b := fs.allocBlock()
			if b == 0 {
				return 0
			}
			in.Blocks[bi] = b
			fs.writeInode(in)
		}
		return in.Blocks[bi]
	}
	idx := bi - NDirect
	if idx >= BlockSize/4 {
		return 0
	}
	if in.Indirect == 0 {
		b := fs.allocBlock()
		if b == 0 {
			return 0
		}
		in.Indirect = b
		fs.writeInode(in)
	}
	off := fs.block(in.Indirect) + idx*4
	bn := binary.LittleEndian.Uint32(fs.r.Bytes()[off:])
	if bn == 0 {
		b := fs.allocBlock()
		if b == 0 {
			return 0
		}
		fs.r.Modify(off, 4)
		binary.LittleEndian.PutUint32(fs.r.Bytes()[off:], b)
		bn = b
	}
	return bn
}

// truncate shrinks (or zero-extends) a file to size bytes, freeing blocks
// beyond the new end.
func (fs *FS) truncate(in *Inode, size uint64) {
	if size > MaxFileSize {
		size = MaxFileSize
	}
	oldBlocks := int((in.Size + BlockSize - 1) / BlockSize)
	newBlocks := int((size + BlockSize - 1) / BlockSize)
	for bi := newBlocks; bi < oldBlocks; bi++ {
		bn := fs.blockNumAt(in, bi)
		if bn != 0 {
			fs.freeBlock(bn)
			if bi < NDirect {
				in.Blocks[bi] = 0
			} else if in.Indirect != 0 {
				off := fs.block(in.Indirect) + (bi-NDirect)*4
				fs.r.Modify(off, 4)
				binary.LittleEndian.PutUint32(fs.r.Bytes()[off:], 0)
			}
		}
	}
	if newBlocks <= NDirect && in.Indirect != 0 {
		fs.freeBlock(in.Indirect)
		in.Indirect = 0
	}
	// Zero the tail of the last block when shrinking within a block, so
	// deterministic reads past EOF extensions see zeros.
	if size < in.Size && size%BlockSize != 0 {
		bn := fs.blockNumAt(in, int(size/BlockSize))
		if bn != 0 {
			off := fs.block(bn) + int(size%BlockSize)
			n := BlockSize - int(size%BlockSize)
			fs.r.Modify(off, n)
			clear(fs.r.Bytes()[off : off+n])
		}
	}
	in.Size = size
	fs.writeInode(in)
}

// ReadAt reads up to len(p) bytes at off from the file, returning the count
// (short reads at EOF).
func (fs *FS) ReadAt(in *Inode, off uint64, p []byte) int {
	if off >= in.Size {
		return 0
	}
	if off+uint64(len(p)) > in.Size {
		p = p[:in.Size-off]
	}
	n := 0
	for n < len(p) {
		bi := int((off + uint64(n)) / BlockSize)
		bo := int((off + uint64(n)) % BlockSize)
		chunk := BlockSize - bo
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		bn := fs.blockNumAt(in, bi)
		if bn == 0 {
			// Hole: zeros.
			clear(p[n : n+chunk])
		} else {
			copy(p[n:n+chunk], fs.r.Bytes()[fs.block(bn)+bo:])
		}
		n += chunk
	}
	return n
}

// WriteAt writes p at off, extending the file as needed. It returns the
// bytes written (may be short when space runs out) and whether space ran
// out.
func (fs *FS) WriteAt(in *Inode, off uint64, p []byte) (int, bool) {
	if off+uint64(len(p)) > MaxFileSize {
		if off >= MaxFileSize {
			return 0, true
		}
		p = p[:MaxFileSize-off]
	}
	n := 0
	for n < len(p) {
		bi := int((off + uint64(n)) / BlockSize)
		bo := int((off + uint64(n)) % BlockSize)
		chunk := BlockSize - bo
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		bn := fs.ensureBlockAt(in, bi)
		if bn == 0 {
			break // out of space
		}
		dst := fs.block(bn) + bo
		fs.r.Modify(dst, chunk)
		copy(fs.r.Bytes()[dst:], p[n:n+chunk])
		n += chunk
	}
	end := off + uint64(n)
	if end > in.Size {
		in.Size = end
		fs.writeInode(in)
	}
	return n, n < len(p)
}
