package bfs

import (
	"encoding/binary"
)

// Directory entries are fixed-size DirEntrySize records inside the
// directory's file data: 4-byte inode number (0 = free slot), 1-byte name
// length, name bytes.

// DirEntry is a decoded directory entry.
type DirEntry struct {
	Ino  uint32
	Name string
}

// lookupDir finds name in dir, returning the child inode number and the
// entry's byte offset.
func (fs *FS) lookupDir(dir *Inode, name string) (uint32, uint64, bool) {
	var rec [DirEntrySize]byte
	n := dir.Size / DirEntrySize
	for i := uint64(0); i < n; i++ {
		off := i * DirEntrySize
		if fs.ReadAt(dir, off, rec[:]) != DirEntrySize {
			return 0, 0, false
		}
		ino := binary.LittleEndian.Uint32(rec[:])
		if ino == 0 {
			continue
		}
		nl := int(rec[4])
		if nl > MaxNameLen {
			continue
		}
		if string(rec[5:5+nl]) == name {
			return ino, off, true
		}
	}
	return 0, 0, false
}

// addDirEntry inserts (name -> ino) into dir, reusing a free slot if any.
// Returns false when out of space.
func (fs *FS) addDirEntry(dir *Inode, name string, ino uint32) bool {
	var rec [DirEntrySize]byte
	n := dir.Size / DirEntrySize
	slot := n
	for i := uint64(0); i < n; i++ {
		if fs.ReadAt(dir, i*DirEntrySize, rec[:]) != DirEntrySize {
			return false
		}
		if binary.LittleEndian.Uint32(rec[:]) == 0 {
			slot = i
			break
		}
	}
	clear(rec[:])
	binary.LittleEndian.PutUint32(rec[:], ino)
	rec[4] = byte(len(name))
	copy(rec[5:], name)
	w, short := fs.WriteAt(dir, slot*DirEntrySize, rec[:])
	return w == DirEntrySize && !short
}

// removeDirEntry clears the entry at byte offset off.
func (fs *FS) removeDirEntry(dir *Inode, off uint64) {
	var zero [4]byte
	fs.WriteAt(dir, off, zero[:])
}

// dirEntries lists the live entries of dir.
func (fs *FS) dirEntries(dir *Inode) []DirEntry {
	var out []DirEntry
	var rec [DirEntrySize]byte
	n := dir.Size / DirEntrySize
	for i := uint64(0); i < n; i++ {
		if fs.ReadAt(dir, i*DirEntrySize, rec[:]) != DirEntrySize {
			break
		}
		ino := binary.LittleEndian.Uint32(rec[:])
		if ino == 0 {
			continue
		}
		nl := int(rec[4])
		if nl > MaxNameLen {
			continue
		}
		out = append(out, DirEntry{Ino: ino, Name: string(rec[5 : 5+nl])})
	}
	return out
}

// isDescendant reports whether candidate lies in root's directory subtree.
func (fs *FS) isDescendant(root, candidate uint32) bool {
	in, ok := fs.ReadInode(root)
	if !ok || in.Type != TypeDir {
		return false
	}
	for _, e := range fs.dirEntries(&in) {
		if e.Ino == candidate {
			return true
		}
		child, ok := fs.ReadInode(e.Ino)
		if ok && child.Type == TypeDir && fs.isDescendant(e.Ino, candidate) {
			return true
		}
	}
	return false
}

// dirEmpty reports whether dir has no live entries.
func (fs *FS) dirEmpty(dir *Inode) bool {
	var rec [DirEntrySize]byte
	n := dir.Size / DirEntrySize
	for i := uint64(0); i < n; i++ {
		if fs.ReadAt(dir, i*DirEntrySize, rec[:]) != DirEntrySize {
			break
		}
		if binary.LittleEndian.Uint32(rec[:]) != 0 {
			return false
		}
	}
	return true
}
