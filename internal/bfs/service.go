package bfs

import (
	"encoding/binary"
	"time"

	"repro/internal/message"
	"repro/internal/statemachine"
)

// Status is the NFS-style result status of a BFS operation.
type Status uint8

// Operation statuses.
const (
	OK Status = iota
	ErrNoEnt
	ErrExist
	ErrNotDir
	ErrIsDir
	ErrNoSpc
	ErrNotEmpty
	ErrInval
	ErrStale
	ErrTooBig
)

var statusNames = [...]string{
	OK: "OK", ErrNoEnt: "no such entry", ErrExist: "already exists",
	ErrNotDir: "not a directory", ErrIsDir: "is a directory",
	ErrNoSpc: "no space", ErrNotEmpty: "directory not empty",
	ErrInval: "invalid argument", ErrStale: "stale handle",
	ErrTooBig: "file too big",
}

func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return "unknown error"
}

// Error turns a non-OK status into an error.
func (s Status) Error() string { return "bfs: " + s.String() }

// Operation opcodes.
const (
	opLookup byte = iota + 1
	opGetAttr
	opSetSize
	opCreate
	opMkdir
	opRemove
	opRmdir
	opRead
	opWrite
	opReaddir
	opRename
	opSymlink
	opReadlink
	opStatFS
)

// Attr is the attribute record returned by most operations.
type Attr struct {
	Ino   uint32
	Type  uint8
	Nlink uint16
	Size  uint64
	Mtime uint64
}

const attrSize = 4 + 1 + 2 + 8 + 8

func putAttr(b []byte, a Attr) {
	binary.LittleEndian.PutUint32(b[0:], a.Ino)
	b[4] = a.Type
	binary.LittleEndian.PutUint16(b[5:], a.Nlink)
	binary.LittleEndian.PutUint64(b[7:], a.Size)
	binary.LittleEndian.PutUint64(b[15:], a.Mtime)
}

func getAttr(b []byte) Attr {
	return Attr{
		Ino:   binary.LittleEndian.Uint32(b[0:]),
		Type:  b[4],
		Nlink: binary.LittleEndian.Uint16(b[5:]),
		Size:  binary.LittleEndian.Uint64(b[7:]),
		Mtime: binary.LittleEndian.Uint64(b[15:]),
	}
}

func attrOf(in *Inode) Attr {
	return Attr{Ino: in.Ino, Type: in.Type, Nlink: in.Nlink, Size: in.Size, Mtime: in.Mtime}
}

// Service adapts the FS to the replicated state machine interface. One
// instance lives inside each replica.
type Service struct {
	fs *FS

	// Clock feeds the §5.4 timestamp agreement (overridable in tests).
	Clock func() int64
	// Tolerance bounds accepted primary clock skew.
	Tolerance time.Duration
}

// NewService formats (or opens) the region and returns the service.
func NewService(r *statemachine.Region) *Service {
	return &Service{
		fs:        Open(r),
		Clock:     func() int64 { return time.Now().UnixNano() },
		Tolerance: time.Minute,
	}
}

// Factory adapts NewService to the replica constructor signature.
func Factory(r *statemachine.Region) statemachine.Service { return NewService(r) }

// FS exposes the underlying file system (tests and tools).
func (s *Service) FS() *FS { return s.fs }

// ProposeNonDet implements statemachine.Service: the primary proposes the
// mtime for the batch.
func (s *Service) ProposeNonDet() []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(s.Clock()))
	return b[:]
}

// CheckNonDet implements statemachine.Service.
func (s *Service) CheckNonDet(nondet []byte) bool {
	if len(nondet) != 8 {
		return false
	}
	prop := int64(binary.LittleEndian.Uint64(nondet))
	diff := s.Clock() - prop
	if diff < 0 {
		diff = -diff
	}
	return time.Duration(diff) <= s.Tolerance
}

// IsReadOnly implements statemachine.Service.
func (s *Service) IsReadOnly(op []byte) bool {
	if len(op) == 0 {
		return false
	}
	switch op[0] {
	case opLookup, opGetAttr, opRead, opReaddir, opReadlink, opStatFS:
		return true
	}
	return false
}

// Execute implements statemachine.Service. Results are status-prefixed;
// the transition function is total. Mtimes come exclusively from the agreed
// nondet value, never the local clock — bfttime enforces this.
//
// bftlint:deterministic
func (s *Service) Execute(client message.NodeID, op []byte, nondet []byte) []byte {
	if len(op) == 0 {
		return fail(ErrInval)
	}
	var mtime uint64
	if len(nondet) == 8 {
		mtime = binary.LittleEndian.Uint64(nondet)
	}
	d := opDecoder{b: op[1:]}
	switch op[0] {
	case opLookup:
		dir, name := d.u32(), d.str()
		return s.lookup(dir, name)
	case opGetAttr:
		return s.getattr(d.u32())
	case opSetSize:
		ino, size := d.u32(), d.u64()
		return s.setsize(ino, size, mtime)
	case opCreate:
		dir, name := d.u32(), d.str()
		return s.create(dir, name, TypeFile, nil, mtime)
	case opMkdir:
		dir, name := d.u32(), d.str()
		return s.create(dir, name, TypeDir, nil, mtime)
	case opSymlink:
		dir, name, target := d.u32(), d.str(), d.rest()
		return s.create(dir, name, TypeSymlink, target, mtime)
	case opRemove:
		dir, name := d.u32(), d.str()
		return s.remove(dir, name, false, mtime)
	case opRmdir:
		dir, name := d.u32(), d.str()
		return s.remove(dir, name, true, mtime)
	case opRead:
		ino, off, count := d.u32(), d.u64(), d.u32()
		return s.read(ino, off, count)
	case opWrite:
		ino, off, data := d.u32(), d.u64(), d.rest()
		return s.write(ino, off, data, mtime)
	case opReaddir:
		return s.readdir(d.u32())
	case opRename:
		sdir, sname, ddir, dname := d.u32(), d.str(), d.u32(), d.str()
		return s.rename(sdir, sname, ddir, dname, mtime)
	case opReadlink:
		return s.readlink(d.u32())
	case opStatFS:
		return s.statfs()
	}
	return fail(ErrInval)
}

func fail(st Status) []byte { return []byte{byte(st)} }

func okAttr(in *Inode) []byte {
	out := make([]byte, 1+attrSize)
	out[0] = byte(OK)
	putAttr(out[1:], attrOf(in))
	return out
}

func (s *Service) dirInode(dir uint32) (*Inode, Status) {
	in, ok := s.fs.ReadInode(dir)
	if !ok {
		return nil, ErrStale
	}
	if in.Type != TypeDir {
		return nil, ErrNotDir
	}
	return &in, OK
}

func (s *Service) lookup(dir uint32, name string) []byte {
	din, st := s.dirInode(dir)
	if st != OK {
		return fail(st)
	}
	ino, _, found := s.fs.lookupDir(din, name)
	if !found {
		return fail(ErrNoEnt)
	}
	in, ok := s.fs.ReadInode(ino)
	if !ok {
		return fail(ErrStale)
	}
	return okAttr(&in)
}

func (s *Service) getattr(ino uint32) []byte {
	in, ok := s.fs.ReadInode(ino)
	if !ok {
		return fail(ErrStale)
	}
	return okAttr(&in)
}

func (s *Service) setsize(ino uint32, size uint64, mtime uint64) []byte {
	in, ok := s.fs.ReadInode(ino)
	if !ok {
		return fail(ErrStale)
	}
	if in.Type != TypeFile {
		return fail(ErrIsDir)
	}
	if size > MaxFileSize {
		return fail(ErrTooBig)
	}
	if size > in.Size {
		in.Size = size // sparse extension: holes read as zeros
	} else {
		s.fs.truncate(&in, size)
	}
	in.Mtime = mtime
	s.fs.writeInode(&in)
	return okAttr(&in)
}

func (s *Service) create(dir uint32, name string, typ uint8, target []byte, mtime uint64) []byte {
	if name == "" || len(name) > MaxNameLen || name == "." || name == ".." {
		return fail(ErrInval)
	}
	din, st := s.dirInode(dir)
	if st != OK {
		return fail(st)
	}
	if _, _, found := s.fs.lookupDir(din, name); found {
		return fail(ErrExist)
	}
	ino, ok := s.fs.allocInode(typ)
	if !ok {
		return fail(ErrNoSpc)
	}
	in, _ := s.fs.ReadInode(ino)
	in.Mtime = mtime
	if typ == TypeDir {
		in.Nlink = 2
	}
	s.fs.writeInode(&in)
	if typ == TypeSymlink && len(target) > 0 {
		if _, short := s.fs.WriteAt(&in, 0, target); short {
			s.fs.freeInode(&in)
			return fail(ErrNoSpc)
		}
	}
	if !s.fs.addDirEntry(din, name, ino) {
		s.fs.freeInode(&in)
		return fail(ErrNoSpc)
	}
	din.Mtime = mtime
	if typ == TypeDir {
		din.Nlink++
	}
	s.fs.writeInode(din)
	return okAttr(&in)
}

func (s *Service) remove(dir uint32, name string, wantDir bool, mtime uint64) []byte {
	din, st := s.dirInode(dir)
	if st != OK {
		return fail(st)
	}
	ino, off, found := s.fs.lookupDir(din, name)
	if !found {
		return fail(ErrNoEnt)
	}
	in, ok := s.fs.ReadInode(ino)
	if !ok {
		return fail(ErrStale)
	}
	if wantDir {
		if in.Type != TypeDir {
			return fail(ErrNotDir)
		}
		if !s.fs.dirEmpty(&in) {
			return fail(ErrNotEmpty)
		}
	} else if in.Type == TypeDir {
		return fail(ErrIsDir)
	}
	s.fs.removeDirEntry(din, off)
	din.Mtime = mtime
	if in.Type == TypeDir {
		din.Nlink--
	}
	s.fs.writeInode(din)
	s.fs.freeInode(&in)
	return fail(OK)
}

func (s *Service) read(ino uint32, off uint64, count uint32) []byte {
	in, ok := s.fs.ReadInode(ino)
	if !ok {
		return fail(ErrStale)
	}
	if in.Type == TypeDir {
		return fail(ErrIsDir)
	}
	if count > MaxFileSize {
		count = MaxFileSize
	}
	buf := make([]byte, 1+count)
	buf[0] = byte(OK)
	n := s.fs.ReadAt(&in, off, buf[1:])
	return buf[:1+n]
}

func (s *Service) write(ino uint32, off uint64, data []byte, mtime uint64) []byte {
	in, ok := s.fs.ReadInode(ino)
	if !ok {
		return fail(ErrStale)
	}
	if in.Type != TypeFile {
		return fail(ErrIsDir)
	}
	n, short := s.fs.WriteAt(&in, off, data)
	in, _ = s.fs.ReadInode(ino) // reload: WriteAt may have updated size
	in.Mtime = mtime
	s.fs.writeInode(&in)
	if short && n == 0 {
		return fail(ErrNoSpc)
	}
	out := make([]byte, 1+4)
	out[0] = byte(OK)
	binary.LittleEndian.PutUint32(out[1:], uint32(n))
	return out
}

func (s *Service) readdir(dir uint32) []byte {
	din, st := s.dirInode(dir)
	if st != OK {
		return fail(st)
	}
	entries := s.fs.dirEntries(din)
	out := []byte{byte(OK)}
	var n4 [4]byte
	binary.LittleEndian.PutUint32(n4[:], uint32(len(entries)))
	out = append(out, n4[:]...)
	for _, e := range entries {
		binary.LittleEndian.PutUint32(n4[:], e.Ino)
		out = append(out, n4[:]...)
		out = append(out, byte(len(e.Name)))
		out = append(out, e.Name...)
	}
	return out
}

func (s *Service) rename(sdir uint32, sname string, ddir uint32, dname string, mtime uint64) []byte {
	if dname == "" || len(dname) > MaxNameLen {
		return fail(ErrInval)
	}
	sin, st := s.dirInode(sdir)
	if st != OK {
		return fail(st)
	}
	ino, soff, found := s.fs.lookupDir(sin, sname)
	if !found {
		return fail(ErrNoEnt)
	}
	din, st := s.dirInode(ddir)
	if st != OK {
		return fail(st)
	}
	// Moving a directory into its own subtree would disconnect a cycle
	// from the root (POSIX EINVAL).
	if mv, ok := s.fs.ReadInode(ino); ok && mv.Type == TypeDir {
		if ino == ddir || s.fs.isDescendant(ino, ddir) {
			return fail(ErrInval)
		}
	}
	// Replace semantics: an existing non-directory target is removed.
	if tIno, tOff, exists := s.fs.lookupDir(din, dname); exists {
		if tIno == ino {
			return fail(OK) // rename onto itself
		}
		tin, ok := s.fs.ReadInode(tIno)
		if !ok || tin.Type == TypeDir {
			return fail(ErrIsDir)
		}
		s.fs.removeDirEntry(din, tOff)
		s.fs.freeInode(&tin)
		din, _ = s.dirInode(ddir)
	}
	if !s.fs.addDirEntry(din, dname, ino) {
		return fail(ErrNoSpc)
	}
	// Re-read the source dir: it may be the same inode as din.
	sin, _ = s.dirInode(sdir)
	_, soff, found = s.fs.lookupDir(sin, sname)
	if found {
		s.fs.removeDirEntry(sin, soff)
	}
	sin.Mtime = mtime
	s.fs.writeInode(sin)
	if ddir != sdir {
		din, _ = s.dirInode(ddir)
		din.Mtime = mtime
		s.fs.writeInode(din)
	}
	return fail(OK)
}

func (s *Service) readlink(ino uint32) []byte {
	in, ok := s.fs.ReadInode(ino)
	if !ok {
		return fail(ErrStale)
	}
	if in.Type != TypeSymlink {
		return fail(ErrInval)
	}
	buf := make([]byte, 1+in.Size)
	buf[0] = byte(OK)
	n := s.fs.ReadAt(&in, 0, buf[1:])
	return buf[:1+n]
}

func (s *Service) statfs() []byte {
	out := make([]byte, 1+16)
	out[0] = byte(OK)
	// Usable blocks exclude the reserved hole marker (block 0).
	binary.LittleEndian.PutUint64(out[1:], uint64(s.fs.NumBlocks()-1))
	binary.LittleEndian.PutUint64(out[9:], uint64(s.fs.FreeBlocks()))
	return out
}

// opDecoder reads operation arguments; it is forgiving (zero values on
// truncation) because the transition function must be total.
type opDecoder struct {
	b   []byte
	off int
}

func (d *opDecoder) u32() uint32 {
	if d.off+4 > len(d.b) {
		d.off = len(d.b)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *opDecoder) u64() uint64 {
	if d.off+8 > len(d.b) {
		d.off = len(d.b)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *opDecoder) str() string {
	if d.off >= len(d.b) {
		return ""
	}
	n := int(d.b[d.off])
	d.off++
	if d.off+n > len(d.b) {
		n = len(d.b) - d.off
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *opDecoder) rest() []byte {
	out := d.b[d.off:]
	d.off = len(d.b)
	return out
}
