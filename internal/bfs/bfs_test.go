package bfs

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/message"
	"repro/internal/statemachine"
)

// directInvoker runs ops straight against a Service (no replication), for
// unit-testing the file system through its public operation interface.
type directInvoker struct {
	s     *Service
	clock int64
}

func (d *directInvoker) InvokeContext(_ context.Context, op []byte, ro bool) ([]byte, error) {
	d.clock++
	nondet := d.s.ProposeNonDet()
	return d.s.Execute(message.ClientIDBase, op, nondet), nil
}

func newFSClient(t testing.TB, blocks int) (*Client, *Service) {
	t.Helper()
	r := statemachine.NewRegion(MinRegionSize(blocks), 4096)
	svc := NewService(r)
	base := int64(1_000_000)
	svc.Clock = func() int64 { base++; return base }
	return NewClient(&directInvoker{s: svc}), svc
}

func TestCreateLookupGetAttr(t *testing.T) {
	c, _ := newFSClient(t, 256)
	a, err := c.Create(RootIno, "hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if a.Type != TypeFile || a.Size != 0 {
		t.Fatalf("attr %+v", a)
	}
	got, err := c.Lookup(RootIno, "hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Ino != a.Ino {
		t.Fatal("lookup returned different inode")
	}
	if _, err := c.Lookup(RootIno, "absent"); err != Status(ErrNoEnt) {
		t.Fatalf("lookup absent: %v", err)
	}
	if _, err := c.Create(RootIno, "hello.txt"); err != Status(ErrExist) {
		t.Fatalf("duplicate create: %v", err)
	}
}

func TestWriteRead(t *testing.T) {
	c, _ := newFSClient(t, 256)
	a, _ := c.Create(RootIno, "f")
	data := []byte("the quick brown fox")
	n, err := c.Write(a.Ino, 0, data)
	if err != nil || n != len(data) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	got, err := c.Read(a.Ino, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q", got)
	}
	// Partial read.
	got, _ = c.Read(a.Ino, 4, 5)
	if string(got) != "quick" {
		t.Fatalf("partial read %q", got)
	}
	// Read past EOF.
	got, _ = c.Read(a.Ino, 1000, 10)
	if len(got) != 0 {
		t.Fatal("read past EOF returned data")
	}
}

func TestWriteAcrossBlocks(t *testing.T) {
	c, _ := newFSClient(t, 256)
	a, _ := c.Create(RootIno, "big")
	data := make([]byte, BlockSize*3+100)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if n, err := c.Write(a.Ino, 0, data); err != nil || n != len(data) {
		t.Fatalf("write: %d %v", n, err)
	}
	got, err := c.Read(a.Ino, 0, uint32(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("multi-block round trip failed")
	}
	// Overwrite in the middle.
	patch := []byte("PATCH")
	c.Write(a.Ino, BlockSize-2, patch)
	got, _ = c.Read(a.Ino, BlockSize-2, 5)
	if !bytes.Equal(got, patch) {
		t.Fatalf("cross-block patch read %q", got)
	}
}

func TestIndirectBlocks(t *testing.T) {
	c, _ := newFSClient(t, 1024)
	a, _ := c.Create(RootIno, "huge")
	// Beyond the direct range.
	size := (NDirect + 5) * BlockSize
	data := bytes.Repeat([]byte{0x5A}, size)
	if n, err := c.Write(a.Ino, 0, data); err != nil || n != size {
		t.Fatalf("indirect write: %d %v", n, err)
	}
	got, err := c.ReadFile(a.Ino)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("indirect read back failed")
	}
}

func TestSparseHolesReadZero(t *testing.T) {
	c, _ := newFSClient(t, 256)
	a, _ := c.Create(RootIno, "sparse")
	c.Write(a.Ino, BlockSize*2, []byte("tail"))
	got, _ := c.Read(a.Ino, 0, BlockSize)
	for _, b := range got {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
	at, _ := c.GetAttr(a.Ino)
	if at.Size != BlockSize*2+4 {
		t.Fatalf("size %d", at.Size)
	}
}

func TestTruncateAndExtend(t *testing.T) {
	c, _ := newFSClient(t, 256)
	a, _ := c.Create(RootIno, "t")
	c.Write(a.Ino, 0, bytes.Repeat([]byte{1}, 3000))
	if at, _ := c.SetSize(a.Ino, 100); at.Size != 100 {
		t.Fatal("truncate failed")
	}
	// Extension reads zeros after the old content.
	if at, _ := c.SetSize(a.Ino, 200); at.Size != 200 {
		t.Fatal("extend failed")
	}
	got, _ := c.Read(a.Ino, 0, 200)
	if len(got) != 200 {
		t.Fatalf("read %d bytes", len(got))
	}
	for i := 100; i < 200; i++ {
		if got[i] != 0 {
			t.Fatalf("extended byte %d = %d, want 0", i, got[i])
		}
	}
	// The freed blocks are reusable.
	total0, free0, _ := c.StatFS()
	if free0 == 0 || free0 > total0 {
		t.Fatalf("statfs %d/%d", free0, total0)
	}
}

func TestMkdirTreeAndReaddir(t *testing.T) {
	c, _ := newFSClient(t, 256)
	sub, err := c.Mkdir(RootIno, "sub")
	if err != nil {
		t.Fatal(err)
	}
	c.Create(sub.Ino, "a")
	c.Create(sub.Ino, "b")
	c.Mkdir(sub.Ino, "c")
	ents, err := c.Readdir(sub.Ino)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 3 {
		t.Fatalf("%d entries", len(ents))
	}
	names := map[string]bool{}
	for _, e := range ents {
		names[e.Name] = true
	}
	if !names["a"] || !names["b"] || !names["c"] {
		t.Fatalf("entries %v", ents)
	}
	// Nested resolution via WalkPath.
	if _, err := c.WalkPath("/sub/a"); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveSemantics(t *testing.T) {
	c, _ := newFSClient(t, 256)
	a, _ := c.Create(RootIno, "f")
	d, _ := c.Mkdir(RootIno, "d")
	c.Create(d.Ino, "inner")

	if err := c.Remove(RootIno, "d"); err != Status(ErrIsDir) {
		t.Fatalf("remove dir as file: %v", err)
	}
	if err := c.Rmdir(RootIno, "f"); err != Status(ErrNotDir) {
		t.Fatalf("rmdir file: %v", err)
	}
	if err := c.Rmdir(RootIno, "d"); err != Status(ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := c.Remove(d.Ino, "inner"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rmdir(RootIno, "d"); err != nil {
		t.Fatalf("rmdir empty: %v", err)
	}
	if err := c.Remove(RootIno, "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetAttr(a.Ino); err != Status(ErrStale) {
		t.Fatalf("stale inode: %v", err)
	}
	// All file blocks are released; the root directory legitimately keeps
	// its own entry block.
	total, free, _ := c.StatFS()
	if free < total-1 {
		t.Fatalf("leak: %d free of %d after removing everything", free, total)
	}
}

func TestRename(t *testing.T) {
	c, _ := newFSClient(t, 256)
	a, _ := c.Create(RootIno, "old")
	c.Write(a.Ino, 0, []byte("payload"))
	d, _ := c.Mkdir(RootIno, "dir")

	if err := c.Rename(RootIno, "old", d.Ino, "new"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup(RootIno, "old"); err != Status(ErrNoEnt) {
		t.Fatal("source still present")
	}
	got, err := c.WalkPath("/dir/new")
	if err != nil || got.Ino != a.Ino {
		t.Fatal("rename lost the inode")
	}
	// Replace semantics.
	b, _ := c.Create(RootIno, "victim")
	c.Write(b.Ino, 0, []byte("junk"))
	if err := c.Rename(d.Ino, "new", RootIno, "victim"); err != nil {
		t.Fatal(err)
	}
	v, _ := c.Lookup(RootIno, "victim")
	if v.Ino != a.Ino {
		t.Fatal("replace rename kept the victim inode")
	}
	data, _ := c.ReadFile(v.Ino)
	if string(data) != "payload" {
		t.Fatalf("content after rename %q", data)
	}
}

func TestRenameWithinSameDir(t *testing.T) {
	c, _ := newFSClient(t, 256)
	a, _ := c.Create(RootIno, "x")
	if err := c.Rename(RootIno, "x", RootIno, "y"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup(RootIno, "y")
	if err != nil || got.Ino != a.Ino {
		t.Fatal("same-dir rename broken")
	}
	if _, err := c.Lookup(RootIno, "x"); err != Status(ErrNoEnt) {
		t.Fatal("old name lingers")
	}
}

func TestSymlink(t *testing.T) {
	c, _ := newFSClient(t, 256)
	a, err := c.Symlink(RootIno, "link", "/target/path")
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Readlink(a.Ino)
	if err != nil || got != "/target/path" {
		t.Fatalf("readlink %q %v", got, err)
	}
	f, _ := c.Create(RootIno, "plain")
	if _, err := c.Readlink(f.Ino); err != Status(ErrInval) {
		t.Fatal("readlink on file")
	}
}

func TestOutOfSpace(t *testing.T) {
	c, _ := newFSClient(t, 16) // tiny FS
	a, _ := c.Create(RootIno, "f")
	big := bytes.Repeat([]byte{1}, 64*BlockSize)
	_, err := c.Write(a.Ino, 0, big)
	// Either a short write or ErrNoSpc is acceptable; the FS must survive.
	_ = err
	if _, err := c.GetAttr(a.Ino); err != nil {
		t.Fatal("fs corrupted after ENOSPC")
	}
	// Freeing makes room again.
	if err := c.Remove(RootIno, "f"); err != nil {
		t.Fatal(err)
	}
	b, err := c.Create(RootIno, "g")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(b.Ino, 0, []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestMtimeFromNonDet(t *testing.T) {
	r := statemachine.NewRegion(MinRegionSize(64), 4096)
	svc := NewService(r)
	var nd [8]byte
	nd[0] = 42 // agreed "time"
	res := svc.Execute(message.ClientIDBase, enc(opCreate).u32(RootIno).str("f").b, nd[:])
	if Status(res[0]) != OK {
		t.Fatal("create failed")
	}
	a := getAttr(res[1:])
	if a.Mtime != 42 {
		t.Fatalf("mtime %d, want agreed 42", a.Mtime)
	}
}

func TestServiceTotalOnGarbage(t *testing.T) {
	r := statemachine.NewRegion(MinRegionSize(64), 4096)
	svc := NewService(r)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		op := make([]byte, rng.Intn(64))
		rng.Read(op)
		_ = svc.Execute(message.ClientIDBase, op, svc.ProposeNonDet())
	}
	// Root must still be intact.
	res := svc.Execute(message.ClientIDBase, enc(opGetAttr).u32(RootIno).b, svc.ProposeNonDet())
	if Status(res[0]) != OK {
		t.Fatal("root damaged by garbage ops")
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	// Two service instances fed identical op streams produce identical
	// regions — the property replication depends on.
	mk := func() (*Service, *statemachine.Region) {
		r := statemachine.NewRegion(MinRegionSize(128), 4096)
		return NewService(r), r
	}
	s1, r1 := mk()
	s2, r2 := mk()
	rng := rand.New(rand.NewSource(7))
	var nd [8]byte
	ops := [][]byte{
		enc(opMkdir).u32(RootIno).str("d").b,
		enc(opCreate).u32(2).str("f1").b,
		enc(opWrite).u32(3).u64(0).raw([]byte("hello world")).b,
		enc(opCreate).u32(RootIno).str("f2").b,
		enc(opRename).u32(2).str("f1").u32(RootIno).str("moved").b,
		enc(opSetSize).u32(3).u64(5).b,
		enc(opRemove).u32(RootIno).str("f2").b,
	}
	for i, op := range ops {
		rng.Read(nd[:])
		o1 := s1.Execute(message.ClientIDBase, op, nd[:])
		o2 := s2.Execute(message.ClientIDBase, op, nd[:])
		if !bytes.Equal(o1, o2) {
			t.Fatalf("op %d results diverge", i)
		}
	}
	if !bytes.Equal(r1.Bytes(), r2.Bytes()) {
		t.Fatal("regions diverge")
	}
}

// --- Model-based property test: the FS against an in-memory map model ---

type modelFile struct {
	isDir bool
	data  []byte
	kids  map[string]*modelFile
}

func TestModelBasedRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runModelTest(t, seed, 400)
		})
	}
}

func runModelTest(t *testing.T, seed int64, steps int) {
	c, _ := newFSClient(t, 2048)
	rng := rand.New(rand.NewSource(seed))

	root := &modelFile{isDir: true, kids: map[string]*modelFile{}}
	inoOf := map[*modelFile]uint32{root: RootIno}
	// flat list of model dirs and files for random picking
	dirs := []*modelFile{root}
	files := []*modelFile{}

	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}

	for step := 0; step < steps; step++ {
		switch rng.Intn(6) {
		case 0: // create
			d := dirs[rng.Intn(len(dirs))]
			name := names[rng.Intn(len(names))]
			a, err := c.Create(inoOf[d], name)
			if _, exists := d.kids[name]; exists {
				if err != Status(ErrExist) {
					t.Fatalf("step %d: create existing: %v", step, err)
				}
			} else if err != nil {
				t.Fatalf("step %d: create: %v", step, err)
			} else {
				mf := &modelFile{}
				d.kids[name] = mf
				inoOf[mf] = a.Ino
				files = append(files, mf)
			}
		case 1: // mkdir
			d := dirs[rng.Intn(len(dirs))]
			name := names[rng.Intn(len(names))]
			a, err := c.Mkdir(inoOf[d], name)
			if _, exists := d.kids[name]; exists {
				if err != Status(ErrExist) {
					t.Fatalf("step %d: mkdir existing: %v", step, err)
				}
			} else if err != nil {
				t.Fatalf("step %d: mkdir: %v", step, err)
			} else {
				mf := &modelFile{isDir: true, kids: map[string]*modelFile{}}
				d.kids[name] = mf
				inoOf[mf] = a.Ino
				dirs = append(dirs, mf)
			}
		case 2: // write
			if len(files) == 0 {
				continue
			}
			f := files[rng.Intn(len(files))]
			if inoOf[f] == 0 {
				continue
			}
			off := rng.Intn(3000)
			data := make([]byte, rng.Intn(500)+1)
			rng.Read(data)
			n, err := c.Write(inoOf[f], uint64(off), data)
			if err != nil {
				t.Fatalf("step %d: write: %v", step, err)
			}
			// apply to model
			if off+n > len(f.data) {
				grown := make([]byte, off+n)
				copy(grown, f.data)
				f.data = grown
			}
			copy(f.data[off:], data[:n])
		case 3: // read & compare
			if len(files) == 0 {
				continue
			}
			f := files[rng.Intn(len(files))]
			if inoOf[f] == 0 {
				continue
			}
			got, err := c.ReadFile(inoOf[f])
			if err != nil {
				t.Fatalf("step %d: read: %v", step, err)
			}
			if !bytes.Equal(got, f.data) {
				t.Fatalf("step %d: content mismatch: got %d bytes want %d", step, len(got), len(f.data))
			}
		case 4: // readdir & compare
			d := dirs[rng.Intn(len(dirs))]
			ents, err := c.Readdir(inoOf[d])
			if err != nil {
				t.Fatalf("step %d: readdir: %v", step, err)
			}
			if len(ents) != len(d.kids) {
				t.Fatalf("step %d: %d entries, model has %d", step, len(ents), len(d.kids))
			}
			for _, e := range ents {
				if _, ok := d.kids[e.Name]; !ok {
					t.Fatalf("step %d: phantom entry %q", step, e.Name)
				}
			}
		case 5: // remove a file
			d := dirs[rng.Intn(len(dirs))]
			if len(d.kids) == 0 {
				continue
			}
			var name string
			var mf *modelFile
			for k, v := range d.kids {
				name, mf = k, v
				break
			}
			if mf.isDir {
				err := c.Rmdir(inoOf[d], name)
				if len(mf.kids) > 0 {
					if err != Status(ErrNotEmpty) {
						t.Fatalf("step %d: rmdir non-empty: %v", step, err)
					}
				} else if err != nil {
					t.Fatalf("step %d: rmdir: %v", step, err)
				} else {
					delete(d.kids, name)
					delete(inoOf, mf)
					for i, dd := range dirs {
						if dd == mf {
							dirs = append(dirs[:i], dirs[i+1:]...)
							break
						}
					}
				}
			} else {
				if err := c.Remove(inoOf[d], name); err != nil {
					t.Fatalf("step %d: remove: %v", step, err)
				}
				delete(d.kids, name)
				delete(inoOf, mf)
				for i, ff := range files {
					if ff == mf {
						files = append(files[:i], files[i+1:]...)
						break
					}
				}
			}
		}
	}
}
