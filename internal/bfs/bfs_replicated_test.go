package bfs_test

// Integration: BFS running on top of the full BFT library — the
// configuration the thesis evaluates in §8.6.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/bfs"
	"repro/internal/message"
	"repro/internal/pbft"
)

func replicatedFS(t testing.TB, behaviors map[message.NodeID]pbft.Behavior) (*pbft.Cluster, *bfs.Client) {
	t.Helper()
	cfg := pbft.Config{
		Mode:               pbft.ModeMAC,
		Opt:                pbft.DefaultOptions(),
		CheckpointInterval: 16,
		LogWindow:          32,
		ViewChangeTimeout:  200 * time.Millisecond,
		StatusInterval:     30 * time.Millisecond,
		StateSize:          bfs.MinRegionSize(2048),
		PageSize:           4096,
		Fanout:             16,
		Seed:               11,
	}
	c := pbft.NewLocalCluster(4, cfg, bfs.Factory, behaviors)
	c.Start()
	t.Cleanup(c.Stop)
	cl := c.NewClient()
	cl.MaxRetries = 20
	return c, bfs.NewClient(cl)
}

func TestReplicatedFileSystem(t *testing.T) {
	_, fc := replicatedFS(t, nil)

	dir, err := fc.Mkdir(bfs.RootIno, "docs")
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("byzantine fault tolerant file content")
	ino, err := fc.WriteFile(dir.Ino, "paper.txt", content)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fc.ReadFile(ino)
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("read back %q, %v", got, err)
	}
	ents, err := fc.Readdir(dir.Ino)
	if err != nil || len(ents) != 1 || ents[0].Name != "paper.txt" {
		t.Fatalf("readdir %v %v", ents, err)
	}
	// Timestamps come from the agreed non-deterministic value.
	a, _ := fc.GetAttr(ino)
	now := uint64(time.Now().UnixNano())
	if a.Mtime == 0 || a.Mtime > now+uint64(time.Hour) {
		t.Fatalf("mtime %d implausible", a.Mtime)
	}
}

func TestReplicatedFSWithFaultyReplica(t *testing.T) {
	_, fc := replicatedFS(t, map[message.NodeID]pbft.Behavior{2: pbft.WrongResult})
	dir, err := fc.Mkdir(bfs.RootIno, "d")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("f%d", i)
		if _, err := fc.WriteFile(dir.Ino, name, []byte(name)); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := fc.Readdir(dir.Ino)
	if err != nil || len(ents) != 5 {
		t.Fatalf("readdir with faulty replica: %v %v", ents, err)
	}
}

func TestReplicatedFSSurvivesPrimaryFailure(t *testing.T) {
	c, fc := replicatedFS(t, nil)
	dir, err := fc.Mkdir(bfs.RootIno, "work")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.WriteFile(dir.Ino, "before", []byte("pre-failure")); err != nil {
		t.Fatal(err)
	}
	c.Net.Isolate(0) // primary of view 0 dies
	if _, err := fc.WriteFile(dir.Ino, "after", []byte("post-failure")); err != nil {
		t.Fatal(err)
	}
	a, err := fc.WalkPath("/work/before")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := fc.ReadFile(a.Ino)
	if string(got) != "pre-failure" {
		t.Fatal("pre-failure file lost across view change")
	}
}

func TestReplicatedFSStrictMode(t *testing.T) {
	_, fc := replicatedFS(t, nil)
	fc.Strict = true // BFS-strict: no read-only optimization (§8.6.2)
	dir, err := fc.Mkdir(bfs.RootIno, "s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.WriteFile(dir.Ino, "f", []byte("strict")); err != nil {
		t.Fatal(err)
	}
	a, err := fc.WalkPath("/s/f")
	if err != nil {
		t.Fatal(err)
	}
	got, err := fc.ReadFile(a.Ino)
	if err != nil || string(got) != "strict" {
		t.Fatalf("strict read: %q %v", got, err)
	}
}

func TestReplicatedFSRecoveryAfterCorruption(t *testing.T) {
	// An attacker corrupts one replica's file-system state; proactive
	// recovery's state check finds and repairs the damaged pages.
	c, fc := replicatedFS(t, nil)
	dir, err := fc.Mkdir(bfs.RootIno, "data")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5C}, 8192)
	if _, err := fc.WriteFile(dir.Ino, "blob", payload); err != nil {
		t.Fatal(err)
	}
	// Push enough operations through to cross a checkpoint interval.
	for i := 0; i < 20; i++ {
		if _, err := fc.WriteFile(dir.Ino, fmt.Sprintf("pad%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for a stable checkpoint covering the writes.
	deadline := time.Now().Add(5 * time.Second)
	for c.Replica(1).LowWaterMark() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no stable checkpoint")
		}
		time.Sleep(20 * time.Millisecond)
	}

	c.Replica(1).CorruptStatePage(3)
	c.Replica(1).Recover()
	deadline = time.Now().Add(10 * time.Second)
	for c.Replica(1).Recovering() {
		if time.Now().After(deadline) {
			t.Fatal("recovery stuck")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if m := c.Replica(1).Metrics(); m.PagesFetched == 0 {
		t.Fatal("corrupt page not repaired")
	}
	// File still reads correctly through the replicated service.
	a, err := fc.WalkPath("/data/blob")
	if err != nil {
		t.Fatal(err)
	}
	got, err := fc.ReadFile(a.Ino)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatal("file corrupted after recovery")
	}
}
