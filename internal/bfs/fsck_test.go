package bfs

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestFsckCleanOnFreshFS(t *testing.T) {
	_, svc := newFSClient(t, 256)
	if errs := svc.FS().Check(); len(errs) != 0 {
		t.Fatalf("fresh fs has errors: %v", errs)
	}
}

func TestFsckCleanAfterWorkload(t *testing.T) {
	c, svc := newFSClient(t, 512)
	d, _ := c.Mkdir(RootIno, "d")
	for i := 0; i < 10; i++ {
		a, err := c.Create(d.Ino, fmt.Sprintf("f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		c.Write(a.Ino, 0, make([]byte, 100+i*700))
	}
	c.Remove(d.Ino, "f3")
	c.Rename(d.Ino, "f5", RootIno, "top")
	c.SetSize(2+7, 50) // arbitrary truncate
	if errs := svc.FS().Check(); len(errs) != 0 {
		t.Fatalf("fsck after workload: %v", errs)
	}
}

func TestFsckCleanAfterRandomOps(t *testing.T) {
	// Property: no random operation sequence can break the on-disk
	// invariants (no leaks, no double references, counts consistent).
	for seed := int64(1); seed <= 4; seed++ {
		c, svc := newFSClient(t, 1024)
		rng := rand.New(rand.NewSource(seed))
		dirs := []uint32{RootIno}
		names := []string{"a", "b", "c", "d"}
		for step := 0; step < 300; step++ {
			dir := dirs[rng.Intn(len(dirs))]
			name := names[rng.Intn(len(names))]
			switch rng.Intn(6) {
			case 0:
				if a, err := c.Mkdir(dir, name); err == nil {
					dirs = append(dirs, a.Ino)
				}
			case 1:
				c.Create(dir, name)
			case 2:
				if a, err := c.Lookup(dir, name); err == nil && a.Type == TypeFile {
					c.Write(a.Ino, uint64(rng.Intn(4000)), make([]byte, rng.Intn(2000)))
				}
			case 3:
				if a, err := c.Lookup(dir, name); err == nil && a.Type == TypeFile {
					c.SetSize(a.Ino, uint64(rng.Intn(1000)))
				}
			case 4:
				c.Remove(dir, name)
			case 5:
				c.Rename(dir, name, dirs[rng.Intn(len(dirs))], names[rng.Intn(len(names))])
			}
		}
		if errs := svc.FS().Check(); len(errs) != 0 {
			t.Fatalf("seed %d: fsck: %v", seed, errs)
		}
	}
}

func TestFsckDetectsCorruption(t *testing.T) {
	c, svc := newFSClient(t, 256)
	d, _ := c.Mkdir(RootIno, "dir")
	c.Create(d.Ino, "victim")
	if errs := svc.FS().Check(); len(errs) != 0 {
		t.Fatalf("pre-corruption errors: %v", errs)
	}
	if !svc.FS().CorruptDirEntry(d.Ino) {
		t.Fatal("corruption injection failed")
	}
	errs := svc.FS().Check()
	if len(errs) == 0 {
		t.Fatal("fsck missed a corrupted directory entry")
	}
}
