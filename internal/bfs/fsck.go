package bfs

import (
	"encoding/binary"
	"fmt"
)

// CheckError describes one inconsistency found by Check.
type CheckError struct {
	Ino  uint32
	What string
}

func (e CheckError) Error() string {
	return fmt.Sprintf("bfs: fsck: inode %d: %s", e.Ino, e.What)
}

// Check is an fsck-style consistency verifier: it walks the inode table and
// directory tree and cross-checks the allocation bitmap. It reports
//
//   - data block numbers out of range or doubly referenced,
//   - allocated blocks referenced by no inode (leaks),
//   - referenced blocks marked free in the bitmap,
//   - directory entries pointing at free or out-of-range inodes,
//   - directories unreachable from the root,
//   - link/entry count mismatches for directories, and
//   - free-block counter drift in the superblock.
//
// The replication library never needs Check for correctness (state digests
// guard integrity end-to-end); it exists for tests and for operators
// inspecting a replica image.
func (fs *FS) Check() []error {
	var errs []error
	report := func(ino uint32, format string, args ...interface{}) {
		errs = append(errs, CheckError{Ino: ino, What: fmt.Sprintf(format, args...)})
	}

	// Pass 1: walk inodes, collect block references.
	refs := make(map[uint32]uint32) // block -> owning inode
	usedBlocks := 0
	addRef := func(ino, b uint32) {
		if b == 0 {
			return
		}
		if int(b) >= fs.numBlocks {
			report(ino, "block %d out of range", b)
			return
		}
		if owner, dup := refs[b]; dup {
			report(ino, "block %d doubly referenced (also inode %d)", b, owner)
			return
		}
		refs[b] = ino
		usedBlocks++
		// Bitmap must mark it allocated.
		if fs.r.Bytes()[fs.bitmapBase+int(b)>>3]&(1<<(b&7)) == 0 {
			report(ino, "block %d referenced but marked free", b)
		}
	}

	live := make(map[uint32]*Inode)
	for ino := uint32(1); int(ino) < fs.numInodes; ino++ {
		in, ok := fs.ReadInode(ino)
		if !ok {
			continue
		}
		live[ino] = &in
		if in.Size > MaxFileSize {
			report(ino, "size %d exceeds maximum", in.Size)
		}
		blocks := int((in.Size + BlockSize - 1) / BlockSize)
		for bi := 0; bi < blocks; bi++ {
			addRef(ino, fs.blockNumAt(&in, bi))
		}
		if in.Indirect != 0 {
			addRef(ino, in.Indirect)
		}
	}

	// Pass 2: walk the directory tree from the root; every live inode must
	// be reachable exactly once (no hard links in this FS).
	if _, ok := live[RootIno]; !ok {
		report(RootIno, "root directory missing")
		return errs
	}
	reached := make(map[uint32]bool)
	var walk func(dir uint32)
	walk = func(dir uint32) {
		if reached[dir] {
			report(dir, "directory reachable twice (cycle or duplicate entry)")
			return
		}
		reached[dir] = true
		din := live[dir]
		for _, e := range fs.dirEntries(din) {
			child, ok := live[e.Ino]
			if !ok {
				report(dir, "entry %q points at free inode %d", e.Name, e.Ino)
				continue
			}
			if child.Type == TypeDir {
				walk(e.Ino)
			} else {
				if reached[e.Ino] {
					report(e.Ino, "file linked from multiple directories")
				}
				reached[e.Ino] = true
			}
		}
	}
	walk(RootIno)
	for ino := range live {
		if !reached[ino] {
			report(ino, "orphaned (unreachable from root)")
		}
	}

	// Pass 3: bitmap leaks — allocated blocks nobody references.
	for b := uint32(1); int(b) < fs.numBlocks; b++ {
		allocated := fs.r.Bytes()[fs.bitmapBase+int(b)>>3]&(1<<(b&7)) != 0
		if allocated {
			if _, ok := refs[b]; !ok {
				report(0, "block %d allocated but unreferenced (leak)", b)
			}
		}
	}

	// Pass 4: superblock free-count drift.
	free := int(fs.u64(sbFreeBlocks))
	expect := fs.numBlocks - 1 - usedBlocks // block 0 reserved
	if free != expect {
		report(0, "superblock free count %d, expected %d", free, expect)
	}
	return errs
}

// CorruptDirEntry deliberately damages the first live directory entry of
// dir — fault injection for fsck tests.
func (fs *FS) CorruptDirEntry(dir uint32) bool {
	din, ok := fs.ReadInode(dir)
	if !ok || din.Type != TypeDir {
		return false
	}
	var rec [DirEntrySize]byte
	n := din.Size / DirEntrySize
	for i := uint64(0); i < n; i++ {
		if fs.ReadAt(&din, i*DirEntrySize, rec[:]) != DirEntrySize {
			return false
		}
		if binary.LittleEndian.Uint32(rec[:]) != 0 {
			// Point the entry at a bogus inode.
			binary.LittleEndian.PutUint32(rec[:], uint32(fs.numInodes-1))
			fs.WriteAt(&din, i*DirEntrySize, rec[:4])
			return true
		}
	}
	return false
}
