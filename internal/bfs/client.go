package bfs

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Invoker is the replication-agnostic execution interface: the BFT client
// (engine-level and public bft.Client alike) and the unreplicated baseline
// all satisfy it, so the same BFS client drives the paper's BFS and NO-REP
// configurations (§8.6). The context form is the library-wide invocation
// contract; the BFS client itself passes context.Background().
type Invoker interface {
	InvokeContext(ctx context.Context, op []byte, readOnly bool) ([]byte, error)
}

// Client is the typed BFS client, the analogue of the thesis's NFS relay:
// it encodes file operations as state-machine ops and decodes the
// status-prefixed results.
type Client struct {
	inv Invoker
	// Strict disables the read-only optimization for lookups/reads,
	// matching the thesis's BFS-strict configuration (§8.6.2).
	Strict bool
}

// NewClient wraps an invoker.
func NewClient(inv Invoker) *Client { return &Client{inv: inv} }

// ErrBadReply reports a malformed service result.
var ErrBadReply = errors.New("bfs: malformed reply")

func (c *Client) call(op []byte, ro bool) ([]byte, error) {
	if c.Strict {
		ro = false
	}
	res, err := c.inv.InvokeContext(context.Background(), op, ro)
	if err != nil {
		return nil, err
	}
	if len(res) < 1 {
		return nil, ErrBadReply
	}
	if st := Status(res[0]); st != OK {
		return nil, st
	}
	return res[1:], nil
}

type opEncoder struct{ b []byte }

func enc(code byte) *opEncoder { return &opEncoder{b: []byte{code}} }

func (e *opEncoder) u32(v uint32) *opEncoder {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
	return e
}

func (e *opEncoder) u64(v uint64) *opEncoder {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
	return e
}

func (e *opEncoder) str(s string) *opEncoder {
	e.b = append(e.b, byte(len(s)))
	e.b = append(e.b, s...)
	return e
}

func (e *opEncoder) raw(p []byte) *opEncoder {
	e.b = append(e.b, p...)
	return e
}

func decodeAttr(p []byte) (Attr, error) {
	if len(p) < attrSize {
		return Attr{}, ErrBadReply
	}
	return getAttr(p), nil
}

// Lookup resolves name in directory dir.
func (c *Client) Lookup(dir uint32, name string) (Attr, error) {
	p, err := c.call(enc(opLookup).u32(dir).str(name).b, true)
	if err != nil {
		return Attr{}, err
	}
	return decodeAttr(p)
}

// GetAttr fetches attributes.
func (c *Client) GetAttr(ino uint32) (Attr, error) {
	p, err := c.call(enc(opGetAttr).u32(ino).b, true)
	if err != nil {
		return Attr{}, err
	}
	return decodeAttr(p)
}

// SetSize truncates or extends a file.
func (c *Client) SetSize(ino uint32, size uint64) (Attr, error) {
	p, err := c.call(enc(opSetSize).u32(ino).u64(size).b, false)
	if err != nil {
		return Attr{}, err
	}
	return decodeAttr(p)
}

// Create makes a regular file.
func (c *Client) Create(dir uint32, name string) (Attr, error) {
	p, err := c.call(enc(opCreate).u32(dir).str(name).b, false)
	if err != nil {
		return Attr{}, err
	}
	return decodeAttr(p)
}

// Mkdir makes a directory.
func (c *Client) Mkdir(dir uint32, name string) (Attr, error) {
	p, err := c.call(enc(opMkdir).u32(dir).str(name).b, false)
	if err != nil {
		return Attr{}, err
	}
	return decodeAttr(p)
}

// Symlink makes a symbolic link holding target.
func (c *Client) Symlink(dir uint32, name, target string) (Attr, error) {
	p, err := c.call(enc(opSymlink).u32(dir).str(name).raw([]byte(target)).b, false)
	if err != nil {
		return Attr{}, err
	}
	return decodeAttr(p)
}

// Readlink reads a symlink target.
func (c *Client) Readlink(ino uint32) (string, error) {
	p, err := c.call(enc(opReadlink).u32(ino).b, true)
	if err != nil {
		return "", err
	}
	return string(p), nil
}

// Remove unlinks a file or symlink.
func (c *Client) Remove(dir uint32, name string) error {
	_, err := c.call(enc(opRemove).u32(dir).str(name).b, false)
	return err
}

// Rmdir removes an empty directory.
func (c *Client) Rmdir(dir uint32, name string) error {
	_, err := c.call(enc(opRmdir).u32(dir).str(name).b, false)
	return err
}

// Read returns up to count bytes at off.
func (c *Client) Read(ino uint32, off uint64, count uint32) ([]byte, error) {
	return c.call(enc(opRead).u32(ino).u64(off).u32(count).b, true)
}

// Write stores data at off and returns the bytes written.
func (c *Client) Write(ino uint32, off uint64, data []byte) (int, error) {
	p, err := c.call(enc(opWrite).u32(ino).u64(off).raw(data).b, false)
	if err != nil {
		return 0, err
	}
	if len(p) < 4 {
		return 0, ErrBadReply
	}
	return int(binary.LittleEndian.Uint32(p)), nil
}

// Readdir lists a directory.
func (c *Client) Readdir(dir uint32) ([]DirEntry, error) {
	p, err := c.call(enc(opReaddir).u32(dir).b, true)
	if err != nil {
		return nil, err
	}
	if len(p) < 4 {
		return nil, ErrBadReply
	}
	n := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	out := make([]DirEntry, 0, n)
	for i := 0; i < n; i++ {
		if len(p) < 5 {
			return nil, ErrBadReply
		}
		ino := binary.LittleEndian.Uint32(p)
		nl := int(p[4])
		p = p[5:]
		if len(p) < nl {
			return nil, ErrBadReply
		}
		out = append(out, DirEntry{Ino: ino, Name: string(p[:nl])})
		p = p[nl:]
	}
	return out, nil
}

// Rename moves sdir/sname to ddir/dname.
func (c *Client) Rename(sdir uint32, sname string, ddir uint32, dname string) error {
	_, err := c.call(enc(opRename).u32(sdir).str(sname).u32(ddir).str(dname).b, false)
	return err
}

// StatFS returns (total, free) data blocks.
func (c *Client) StatFS() (total, free uint64, err error) {
	p, err := c.call(enc(opStatFS).b, true)
	if err != nil {
		return 0, 0, err
	}
	if len(p) < 16 {
		return 0, 0, ErrBadReply
	}
	return binary.LittleEndian.Uint64(p), binary.LittleEndian.Uint64(p[8:]), nil
}

// --- Path helpers (convenience for examples and benchmarks) ---

// WalkPath resolves an absolute slash-separated path to an inode.
func (c *Client) WalkPath(path string) (Attr, error) {
	cur := uint32(RootIno)
	attr := Attr{Ino: RootIno, Type: TypeDir}
	for _, part := range strings.Split(path, "/") {
		if part == "" {
			continue
		}
		a, err := c.Lookup(cur, part)
		if err != nil {
			return Attr{}, fmt.Errorf("bfs: walk %q at %q: %w", path, part, err)
		}
		attr = a
		cur = a.Ino
	}
	return attr, nil
}

// MkdirAll creates every directory along an absolute path.
func (c *Client) MkdirAll(path string) (uint32, error) {
	cur := uint32(RootIno)
	for _, part := range strings.Split(path, "/") {
		if part == "" {
			continue
		}
		a, err := c.Lookup(cur, part)
		if err == nil {
			cur = a.Ino
			continue
		}
		a, err = c.Mkdir(cur, part)
		if err != nil {
			return 0, err
		}
		cur = a.Ino
	}
	return cur, nil
}

// WriteFile creates (or truncates) dir/name with the given content.
func (c *Client) WriteFile(dir uint32, name string, data []byte) (uint32, error) {
	a, err := c.Lookup(dir, name)
	if err != nil {
		a, err = c.Create(dir, name)
		if err != nil {
			return 0, err
		}
	} else if _, err := c.SetSize(a.Ino, 0); err != nil {
		return 0, err
	}
	// Chunked writes keep request sizes realistic.
	const chunk = 4096
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if _, err := c.Write(a.Ino, uint64(off), data[off:end]); err != nil {
			return 0, err
		}
	}
	return a.Ino, nil
}

// ReadFile reads the whole file.
func (c *Client) ReadFile(ino uint32) ([]byte, error) {
	a, err := c.GetAttr(ino)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, a.Size)
	const chunk = 4096
	for off := uint64(0); off < a.Size; off += chunk {
		p, err := c.Read(ino, off, chunk)
		if err != nil {
			return nil, err
		}
		out = append(out, p...)
		if len(p) == 0 {
			break
		}
	}
	return out, nil
}
