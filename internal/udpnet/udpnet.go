// Package udpnet is a real-network transport with the same interface as the
// in-process simulator: UDP datagrams between principals, exactly like the
// thesis's implementation (§6.1 "point-to-point communication between nodes
// is implemented using UDP"). It exists so the same replica code can run
// across processes; the benchmark harness uses simnet for control over the
// link model.
package udpnet

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/message"
	"repro/internal/transport"
)

// MaxDatagram bounds datagram size (the thesis capped pre-prepares at 9000
// bytes to fit common kernel configurations; we allow more for large
// state-transfer pages).
const MaxDatagram = 64 * 1024

// AddressBook maps principals to UDP addresses.
type AddressBook struct {
	mu    sync.RWMutex
	addrs map[message.NodeID]*net.UDPAddr
}

// NewAddressBook creates an empty book.
func NewAddressBook() *AddressBook {
	return &AddressBook{addrs: make(map[message.NodeID]*net.UDPAddr)}
}

// LocalBook maps replicas 0..n-1 (and clients from message.ClientIDBase) to
// consecutive loopback ports starting at basePort.
func LocalBook(n int, basePort int, clients int) (*AddressBook, error) {
	b := NewAddressBook()
	for i := 0; i < n; i++ {
		if err := b.Set(message.NodeID(i), fmt.Sprintf("127.0.0.1:%d", basePort+i)); err != nil {
			return nil, err
		}
	}
	for c := 0; c < clients; c++ {
		id := message.ClientIDBase + message.NodeID(c)
		if err := b.Set(id, fmt.Sprintf("127.0.0.1:%d", basePort+n+c)); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// LoopbackBook maps replicas 0..n-1 and clients 0..clients-1 (from
// message.ClientIDBase) to kernel-chosen free ports on 127.0.0.1: each
// port is reserved with a probe bind, recorded, and released. The window
// between release and the principal's real bind is tiny, and a lost race
// surfaces as a bind error at Attach, never as silent misrouting.
func LoopbackBook(n, clients int) (*AddressBook, error) {
	b := NewAddressBook()
	ids := make([]message.NodeID, 0, n+clients)
	for i := 0; i < n; i++ {
		ids = append(ids, message.NodeID(i))
	}
	for c := 0; c < clients; c++ {
		ids = append(ids, message.ClientIDBase+message.NodeID(c))
	}
	conns := make([]*net.UDPConn, 0, len(ids))
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for _, id := range ids {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return nil, fmt.Errorf("udpnet: reserve loopback port: %w", err)
		}
		conns = append(conns, conn)
		if err := b.Set(id, conn.LocalAddr().String()); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Set registers a principal's address.
func (b *AddressBook) Set(id message.NodeID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("udpnet: resolve %q: %w", addr, err)
	}
	b.mu.Lock()
	b.addrs[id] = ua
	b.mu.Unlock()
	return nil
}

// Lookup returns a principal's address.
func (b *AddressBook) Lookup(id message.NodeID) (*net.UDPAddr, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	a, ok := b.addrs[id]
	return a, ok
}

// Endpoint is a UDP transport bound to one principal's address.
type Endpoint struct {
	self message.NodeID
	book *AddressBook
	conn *net.UDPConn
	wg   sync.WaitGroup
	once sync.Once
}

var _ transport.Transport = (*Endpoint)(nil)
var _ transport.Multicaster = (*Endpoint)(nil)

// Listen binds the principal's socket and starts delivering inbound
// datagrams to h.
func Listen(self message.NodeID, book *AddressBook, h transport.Handler) (*Endpoint, error) {
	addr, ok := book.Lookup(self)
	if !ok {
		return nil, fmt.Errorf("udpnet: no address for principal %d", self)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udpnet: listen %v: %w", addr, err)
	}
	ep := &Endpoint{self: self, book: book, conn: conn}
	ep.wg.Add(1)
	go func() {
		defer ep.wg.Done()
		buf := make([]byte, MaxDatagram)
		for {
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				return // closed
			}
			p := make([]byte, n)
			copy(p, buf[:n])
			h(p)
		}
	}()
	return ep, nil
}

// Self implements transport.Transport.
func (ep *Endpoint) Self() message.NodeID { return ep.self }

// Send implements transport.Transport.
func (ep *Endpoint) Send(dst message.NodeID, payload []byte) {
	if len(payload) > MaxDatagram {
		return
	}
	if addr, ok := ep.book.Lookup(dst); ok {
		ep.conn.WriteToUDP(payload, addr) //nolint:errcheck // UDP is lossy by contract
	}
}

// Multicast implements transport.Transport (iterated unicast; the thesis used
// IP multicast where available with the same semantics).
func (ep *Endpoint) Multicast(dsts []message.NodeID, payload []byte) {
	for _, d := range dsts {
		if d != ep.self {
			ep.Send(d, payload)
		}
	}
}

// MulticastOwned implements transport.Multicaster: the n datagrams of one
// multicast leave in one tight loop over a single buffer, and the buffer is
// released as soon as the kernel has copied the last datagram out (UDP
// writes are synchronous copies), so the egress pipeline can recycle it.
func (ep *Endpoint) MulticastOwned(dsts []message.NodeID, payload []byte, release func([]byte)) {
	ep.Multicast(dsts, payload)
	if release != nil {
		release(payload)
	}
}

// SendOwned implements transport.Multicaster (single-destination form).
func (ep *Endpoint) SendOwned(dst message.NodeID, payload []byte, release func([]byte)) {
	ep.Send(dst, payload)
	if release != nil {
		release(payload)
	}
}

// Close implements transport.Transport.
func (ep *Endpoint) Close() {
	ep.once.Do(func() {
		ep.conn.Close()
		ep.wg.Wait()
	})
}
