package udpnet

import (
	"fmt"

	"repro/internal/message"
	"repro/internal/transport"
)

// Network adapts an AddressBook to transport.Network, so a BFT cluster can
// run over real UDP sockets instead of the simulator.
type Network struct {
	book *AddressBook
}

var _ transport.Network = (*Network)(nil)

// NewNetwork wraps an address book.
func NewNetwork(book *AddressBook) *Network { return &Network{book: book} }

// Attach binds the principal's UDP socket and delivers datagrams to h.
// It panics on bind errors (construction-time configuration faults), like
// the simulator's Attach which cannot fail.
func (n *Network) Attach(id message.NodeID, h transport.Handler) transport.Transport {
	ep, err := Listen(id, n.book, h)
	if err != nil {
		panic(fmt.Sprintf("udpnet: attach %d: %v", id, err))
	}
	return ep
}
