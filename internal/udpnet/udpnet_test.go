package udpnet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/message"
)

func TestLocalBookAndRoundTrip(t *testing.T) {
	book, err := LocalBook(2, 34711, 1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got [][]byte
	seen := make(chan struct{}, 16)

	a, err := Listen(0, book, func(p []byte) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
		seen <- struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// The handler runs on the receive goroutine: publish the endpoint to it
	// atomically (a plain captured variable would race the assignment).
	var echo atomic.Pointer[Endpoint]
	b, err := Listen(1, book, func(p []byte) {
		if ep := echo.Load(); ep != nil {
			ep.Send(0, append([]byte("echo:"), p...))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	echo.Store(b)

	a.Send(1, []byte("ping"))
	select {
	case <-seen:
	case <-time.After(2 * time.Second):
		t.Fatal("no echo")
	}
	mu.Lock()
	defer mu.Unlock()
	if string(got[0]) != "echo:ping" {
		t.Fatalf("got %q", got[0])
	}
}

func TestMulticastSkipsSelfUDP(t *testing.T) {
	book, err := LocalBook(3, 34761, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]chan struct{}, 3)
	eps := make([]*Endpoint, 3)
	for i := 0; i < 3; i++ {
		counts[i] = make(chan struct{}, 8)
		ch := counts[i]
		ep, err := Listen(message.NodeID(i), book, func(p []byte) { ch <- struct{}{} })
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps[i] = ep
	}
	eps[0].Multicast([]message.NodeID{0, 1, 2}, []byte("m"))
	for i := 1; i < 3; i++ {
		select {
		case <-counts[i]:
		case <-time.After(2 * time.Second):
			t.Fatalf("endpoint %d missed multicast", i)
		}
	}
	select {
	case <-counts[0]:
		t.Fatal("self received own multicast")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSendToUnknownIsNoop(t *testing.T) {
	book, err := LocalBook(1, 34791, 0)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := Listen(0, book, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	ep.Send(99, []byte("void")) // must not panic
	ep.Send(1, make([]byte, MaxDatagram+1))
}

func TestAddressBookErrors(t *testing.T) {
	b := NewAddressBook()
	if err := b.Set(0, "not-an-address:-1"); err == nil {
		t.Fatal("bad address accepted")
	}
	if _, ok := b.Lookup(0); ok {
		t.Fatal("phantom address")
	}
}
