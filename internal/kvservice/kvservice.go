// Package kvservice is the replicated service used by the micro-benchmarks
// and tests: a counter, a register file, and a blob area that together can
// express the paper's 0/0, a/0 and 0/b operations (§8.1) as well as the
// linearizability checks.
//
// All state lives inside the library-managed memory region; every mutation
// goes through Region.Modify, honoring the Byz_modify contract (§6.2).
package kvservice

import (
	"encoding/binary"
	"time"

	"repro/internal/message"
	"repro/internal/statemachine"
)

// Operation opcodes (first byte of the op buffer).
const (
	OpNoop      byte = 0x00 // 0/0: no argument, no result
	OpIncr      byte = 0x01 // counter++; returns the new value
	OpGet       byte = 0x02 // read-only: returns the counter
	OpWriteBlob byte = 0x03 // a/0: writes the argument into the blob area
	OpReadBlob  byte = 0x04 // 0/b: returns n bytes from the blob area
	OpSetReg    byte = 0x05 // registers[k] = v
	OpGetReg    byte = 0x06 // read-only: returns registers[k]
	OpGetTime   byte = 0x07 // returns the agreed non-deterministic value
	OpAppendLog byte = 0x08 // appends client id to the shared order log
	OpReadLog   byte = 0x09 // read-only: returns the shared order log
)

// Region layout offsets.
const (
	offCounter = 0  // 8 bytes
	offCursor  = 8  // 8 bytes: blob write cursor
	offLogLen  = 16 // 8 bytes: order-log length
	offRegs    = 64 // 256 registers * 8 bytes
	offLog     = 64 + 256*8
	logCap     = 4096 // order-log entries (8 bytes each)
	offBlob    = offLog + logCap*8
)

// MinStateSize is the smallest region that fits the fixed layout plus one
// blob page.
const MinStateSize = offBlob + 4096

// Service implements statemachine.Service over a Region.
type Service struct {
	r *statemachine.Region

	// Timestamps enables the non-determinism protocol of §5.4: the primary
	// proposes its clock reading; backups accept it within Tolerance.
	Timestamps bool
	Tolerance  time.Duration

	// Clock is the local clock source (overridable in tests).
	Clock func() int64
}

// New creates the service bound to a region.
func New(r *statemachine.Region) *Service {
	return &Service{r: r, Tolerance: 10 * time.Second, Clock: func() int64 { return time.Now().UnixNano() }}
}

// Factory adapts New to the replica constructor signature.
func Factory(r *statemachine.Region) statemachine.Service { return New(r) }

// TimestampFactory builds a service with clock agreement enabled.
func TimestampFactory(r *statemachine.Region) statemachine.Service {
	s := New(r)
	s.Timestamps = true
	return s
}

func (s *Service) u64(off int) uint64 {
	return binary.LittleEndian.Uint64(s.r.Bytes()[off:])
}

func (s *Service) putU64(off int, v uint64) {
	s.r.Modify(off, 8)
	binary.LittleEndian.PutUint64(s.r.Bytes()[off:], v)
}

// Execute implements statemachine.Service. The transition function is
// total: malformed operations return an empty result rather than failing.
// It must be a pure function of (state, client, op, nondet) — bfttime
// flags any wall-clock read reachable from here; local time belongs in
// ProposeNonDet, where the protocol agrees on it first (§5.4).
//
// bftlint:deterministic
func (s *Service) Execute(client message.NodeID, op []byte, nondet []byte) []byte {
	if len(op) == 0 {
		return nil
	}
	body := op[1:]
	switch op[0] {
	case OpNoop:
		return nil

	case OpIncr:
		v := s.u64(offCounter) + 1
		s.putU64(offCounter, v)
		return u64bytes(v)

	case OpGet:
		return u64bytes(s.u64(offCounter))

	case OpWriteBlob:
		if len(body) == 0 {
			return nil
		}
		blobArea := s.r.Size() - offBlob
		if blobArea <= 0 {
			return nil
		}
		cur := int(s.u64(offCursor)) % blobArea
		n := len(body)
		if n > blobArea {
			n = blobArea
		}
		// Write with wraparound.
		first := n
		if cur+first > blobArea {
			first = blobArea - cur
		}
		s.r.WriteAt(offBlob+cur, body[:first])
		if first < n {
			s.r.WriteAt(offBlob, body[first:n])
		}
		s.putU64(offCursor, uint64((cur+n)%blobArea))
		return nil

	case OpReadBlob:
		if len(body) < 4 {
			return nil
		}
		n := int(binary.LittleEndian.Uint32(body))
		blobArea := s.r.Size() - offBlob
		if n < 0 || blobArea <= 0 {
			return nil
		}
		if n > blobArea {
			n = blobArea
		}
		return s.r.ReadAt(offBlob, n)

	case OpSetReg:
		if len(body) < 12 {
			return nil
		}
		k := int(binary.LittleEndian.Uint32(body)) % 256
		v := binary.LittleEndian.Uint64(body[4:])
		s.putU64(offRegs+8*k, v)
		return u64bytes(v)

	case OpGetReg:
		if len(body) < 4 {
			return nil
		}
		k := int(binary.LittleEndian.Uint32(body)) % 256
		return u64bytes(s.u64(offRegs + 8*k))

	case OpGetTime:
		return append([]byte(nil), nondet...)

	case OpAppendLog:
		n := s.u64(offLogLen)
		if n < logCap {
			s.putU64(offLog+8*int(n), uint64(uint32(client)))
			s.putU64(offLogLen, n+1)
		}
		return u64bytes(n)

	case OpReadLog:
		n := int(s.u64(offLogLen))
		if n > logCap {
			n = logCap
		}
		return s.r.ReadAt(offLog, 8*n)
	}
	return nil
}

// IsReadOnly implements statemachine.Service.
func (s *Service) IsReadOnly(op []byte) bool {
	if len(op) == 0 {
		return false
	}
	switch op[0] {
	case OpGet, OpReadBlob, OpGetReg, OpReadLog:
		return true
	}
	return false
}

// ProposeNonDet implements statemachine.Service: the primary proposes its
// local clock when timestamp agreement is on (§5.4).
func (s *Service) ProposeNonDet() []byte {
	if !s.Timestamps {
		return nil
	}
	return u64bytes(uint64(s.Clock()))
}

// CheckNonDet implements statemachine.Service: backups accept a proposed
// clock within Tolerance of their own (§5.4's optimized common case).
func (s *Service) CheckNonDet(nondet []byte) bool {
	if !s.Timestamps {
		return len(nondet) == 0
	}
	if len(nondet) != 8 {
		return false
	}
	prop := int64(binary.LittleEndian.Uint64(nondet))
	diff := s.Clock() - prop
	if diff < 0 {
		diff = -diff
	}
	return time.Duration(diff) <= s.Tolerance
}

func u64bytes(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// --- Operation encoders (client-side helpers) ---

// Noop returns a 0/0 operation.
func Noop() []byte { return []byte{OpNoop} }

// Incr returns the counter-increment operation.
func Incr() []byte { return []byte{OpIncr} }

// Get returns the read-only counter fetch.
func Get() []byte { return []byte{OpGet} }

// WriteBlob returns an a/0 operation carrying data.
func WriteBlob(data []byte) []byte { return append([]byte{OpWriteBlob}, data...) }

// ReadBlob returns a 0/b operation requesting n result bytes.
func ReadBlob(n int) []byte {
	op := make([]byte, 5)
	op[0] = OpReadBlob
	binary.LittleEndian.PutUint32(op[1:], uint32(n))
	return op
}

// SetReg returns registers[k]=v.
func SetReg(k uint32, v uint64) []byte {
	op := make([]byte, 13)
	op[0] = OpSetReg
	binary.LittleEndian.PutUint32(op[1:], k)
	binary.LittleEndian.PutUint64(op[5:], v)
	return op
}

// GetReg returns the read-only register fetch.
func GetReg(k uint32) []byte {
	op := make([]byte, 5)
	op[0] = OpGetReg
	binary.LittleEndian.PutUint32(op[1:], k)
	return op
}

// GetTime returns the agreed-timestamp operation.
func GetTime() []byte { return []byte{OpGetTime} }

// AppendLog returns the order-log append operation.
func AppendLog() []byte { return []byte{OpAppendLog} }

// ReadLog returns the read-only order-log fetch.
func ReadLog() []byte { return []byte{OpReadLog} }

// DecodeU64 reads a result produced by counter/register operations.
func DecodeU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
