package kvservice

import (
	"bytes"
	"testing"

	"repro/internal/statemachine"
)

// clampKV bounds fuzz-chosen keys and values to the encodable range the
// op encoders and slot layout accept (1..MaxKeyLen, 0..MaxValueLen).
func clampKV(key, val []byte) ([]byte, []byte) {
	if len(key) == 0 {
		key = []byte("k")
	}
	if len(key) > MaxKeyLen {
		key = key[:MaxKeyLen]
	}
	if len(val) > MaxValueLen {
		val = val[:MaxValueLen]
	}
	return key, val
}

func newFuzzKeyed() *KeyedService {
	return NewKeyed(statemachine.NewRegion(MinKeyedStateSize, 1024))
}

// FuzzKeyedExecuteTotal feeds arbitrary operation bytes to the keyed
// store: Execute is a total function over Byzantine input — it must never
// panic and always return a status byte (malformed ops decode to
// StatusBad, never to a crash).
func FuzzKeyedExecuteTotal(f *testing.F) {
	f.Add([]byte{})
	f.Add(KPut(1, []byte("key"), []byte("val")))
	f.Add(KGet([]byte("key")))
	f.Add(TxLock(1, 42, 0, 1000, []TxKV{{Key: []byte("key"), Val: []byte("val")}}))
	f.Add(TxCommit(2, 42))
	f.Add(TxAbort(2, 42, true))
	f.Add(TxStatus(42))
	f.Fuzz(func(t *testing.T, op []byte) {
		s := newFuzzKeyed()
		res := s.Execute(0, op, nil)
		if len(res) == 0 {
			t.Fatalf("Execute returned empty result for %x", op)
		}
		if st := DecodeStatus(res); st > StatusBad {
			t.Fatalf("Execute returned out-of-range status %d for %x", st, op)
		}
	})
}

// FuzzKeyedPutGetRoundTrip checks the keyed op encodings end to end: a
// value written through the KPut encoding is returned bit-exact by the
// KGet encoding.
func FuzzKeyedPutGetRoundTrip(f *testing.F) {
	f.Add(uint64(1), []byte("key"), []byte("val"))
	f.Add(uint64(0), []byte{0xff}, []byte{})
	f.Fuzz(func(t *testing.T, now uint64, key, val []byte) {
		key, val = clampKV(key, val)
		s := newFuzzKeyed()
		if st := DecodeStatus(s.Execute(0, KPut(now, key, val), nil)); st != StatusOK {
			t.Fatalf("KPut status %d", st)
		}
		res := s.Execute(0, KGet(key), nil)
		got, ok := DecodeValue(res)
		if !ok {
			t.Fatalf("KGet after KPut: status %d", DecodeStatus(res))
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("round trip mismatch: put %x got %x", val, got)
		}
	})
}

// FuzzKeyedTxRoundTrip drives the two-phase encodings: lock stages the
// write invisibly, commit publishes it, and the recorded outcome is
// idempotently readable through TxStatus and TxAbort.
func FuzzKeyedTxRoundTrip(f *testing.F) {
	f.Add(uint64(7), []byte("key"), []byte("val"))
	f.Add(uint64(0), []byte("k"), []byte{})
	f.Fuzz(func(t *testing.T, txid uint64, key, val []byte) {
		key, val = clampKV(key, val)
		if txid == 0 {
			txid = 1 // txid 0 is the reserved "unlocked" marker, rejected by design
		}
		s := newFuzzKeyed()
		lock := TxLock(1, txid, 3, 1_000_000, []TxKV{{Key: key, Val: val}})
		if st := DecodeStatus(s.Execute(0, lock, nil)); st != StatusOK {
			t.Fatalf("TxLock status %d", st)
		}
		// Staged, not committed: the key must not be visible yet.
		if st := DecodeStatus(s.Execute(0, KGet(key), nil)); st != StatusNotFound {
			t.Fatalf("staged write visible before commit: status %d", st)
		}
		if st := DecodeStatus(s.Execute(0, TxCommit(2, txid), nil)); st != StatusCommitted {
			t.Fatalf("TxCommit status %d", st)
		}
		res := s.Execute(0, KGet(key), nil)
		got, ok := DecodeValue(res)
		if !ok || !bytes.Equal(got, val) {
			t.Fatalf("committed value mismatch: ok=%v got %x want %x", ok, got, val)
		}
		if st := DecodeStatus(s.Execute(0, TxStatus(txid), nil)); st != StatusCommitted {
			t.Fatalf("TxStatus after commit: %d", st)
		}
		// The outcome table makes finish idempotent: a late abort reports
		// the recorded commit instead of releasing anything.
		if st := DecodeStatus(s.Execute(0, TxAbort(3, txid, true), nil)); st != StatusCommitted {
			t.Fatalf("TxAbort after commit: %d", st)
		}
	})
}
