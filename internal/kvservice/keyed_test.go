package kvservice

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/statemachine"
)

func newKeyed(t testing.TB) *KeyedService {
	t.Helper()
	return NewKeyed(statemachine.NewRegion(MinKeyedStateSize, 1024))
}

func kstatus(t *testing.T, res []byte, want Status) {
	t.Helper()
	if got := DecodeStatus(res); got != want {
		t.Fatalf("status = %v, want %v (res=%x)", got, want, res)
	}
}

func TestKeyedPutGet(t *testing.T) {
	s := newKeyed(t)
	kstatus(t, s.Execute(cli, KPut(1, []byte("alpha"), []byte("one")), nil), StatusOK)
	kstatus(t, s.Execute(cli, KPut(2, []byte("beta"), []byte("two")), nil), StatusOK)

	v, ok := DecodeValue(s.Execute(cli, KGet([]byte("alpha")), nil))
	if !ok || !bytes.Equal(v, []byte("one")) {
		t.Fatalf("alpha = %q ok=%v", v, ok)
	}
	// Overwrite.
	kstatus(t, s.Execute(cli, KPut(3, []byte("alpha"), []byte("uno")), nil), StatusOK)
	if v, _ := DecodeValue(s.Execute(cli, KGet([]byte("alpha")), nil)); !bytes.Equal(v, []byte("uno")) {
		t.Fatalf("alpha after overwrite = %q", v)
	}
	kstatus(t, s.Execute(cli, KGet([]byte("missing")), nil), StatusNotFound)
}

func TestKeyedExecuteTotal(t *testing.T) {
	s := newKeyed(t)
	for _, op := range [][]byte{nil, {}, {OpKPut}, {OpKGet}, {OpTxLock, 1}, {OpTxCommit}, {OpTxAbort}, {OpTxStatus}, {0xEE}} {
		if got := DecodeStatus(s.Execute(cli, op, nil)); got != StatusBad {
			t.Fatalf("op %x -> %v, want StatusBad", op, got)
		}
	}
}

func TestKeyedTableFull(t *testing.T) {
	s := newKeyed(t)
	n := s.Slots()
	for i := 0; i < n; i++ {
		kstatus(t, s.Execute(cli, KPut(1, []byte(fmt.Sprintf("k%04d", i)), []byte("v")), nil), StatusOK)
	}
	kstatus(t, s.Execute(cli, KPut(1, []byte("overflow"), []byte("v")), nil), StatusFull)
	// Overwriting an existing key still works at capacity.
	kstatus(t, s.Execute(cli, KPut(1, []byte("k0000"), []byte("w")), nil), StatusOK)
}

func TestKeyedTxCommitAppliesAtomically(t *testing.T) {
	s := newKeyed(t)
	kstatus(t, s.Execute(cli, KPut(1, []byte("a"), []byte("old")), nil), StatusOK)

	kvs := []TxKV{{[]byte("a"), []byte("new")}, {[]byte("b"), []byte("fresh")}}
	kstatus(t, s.Execute(cli, TxLock(10, 77, 0, 100, kvs), nil), StatusOK)

	// Until commit, reads see the pre-tx state: a=old, b absent.
	if v, _ := DecodeValue(s.Execute(cli, KGet([]byte("a")), nil)); !bytes.Equal(v, []byte("old")) {
		t.Fatalf("a during lock = %q", v)
	}
	kstatus(t, s.Execute(cli, KGet([]byte("b")), nil), StatusNotFound)

	// Locked keys refuse plain writers and name the holder.
	res := s.Execute(cli, KPut(11, []byte("a"), []byte("race")), nil)
	kstatus(t, res, StatusBusy)
	if info, ok := DecodeBusy(res); !ok || info.Tx != 77 || info.Expiry != 110 {
		t.Fatalf("busy info = %+v ok=%v", info, ok)
	}

	kstatus(t, s.Execute(cli, TxCommit(12, 77), nil), StatusCommitted)
	if v, _ := DecodeValue(s.Execute(cli, KGet([]byte("a")), nil)); !bytes.Equal(v, []byte("new")) {
		t.Fatalf("a after commit = %q", v)
	}
	if v, _ := DecodeValue(s.Execute(cli, KGet([]byte("b")), nil)); !bytes.Equal(v, []byte("fresh")) {
		t.Fatalf("b after commit = %q", v)
	}
	// Idempotent: re-commit and late abort both answer the recorded outcome.
	kstatus(t, s.Execute(cli, TxCommit(13, 77), nil), StatusCommitted)
	kstatus(t, s.Execute(cli, TxAbort(14, 77, true), nil), StatusCommitted)
}

func TestKeyedTxAbortDiscards(t *testing.T) {
	s := newKeyed(t)
	kstatus(t, s.Execute(cli, KPut(1, []byte("a"), []byte("old")), nil), StatusOK)
	kvs := []TxKV{{[]byte("a"), []byte("new")}, {[]byte("b"), []byte("fresh")}}
	kstatus(t, s.Execute(cli, TxLock(10, 5, 0, 100, kvs), nil), StatusOK)
	kstatus(t, s.Execute(cli, TxAbort(11, 5, true), nil), StatusAborted)

	// Existing value survives; the insert reservation vanished entirely.
	if v, _ := DecodeValue(s.Execute(cli, KGet([]byte("a")), nil)); !bytes.Equal(v, []byte("old")) {
		t.Fatalf("a after abort = %q", v)
	}
	kstatus(t, s.Execute(cli, KGet([]byte("b")), nil), StatusNotFound)
	// Both keys writable again.
	kstatus(t, s.Execute(cli, KPut(12, []byte("a"), []byte("x")), nil), StatusOK)
	kstatus(t, s.Execute(cli, KPut(12, []byte("b"), []byte("y")), nil), StatusOK)
	// A late commit of the aborted tx is refused with the recorded outcome.
	kstatus(t, s.Execute(cli, TxCommit(13, 5), nil), StatusAborted)
	// And the tx can never lock again.
	kstatus(t, s.Execute(cli, TxLock(14, 5, 0, 100, kvs), nil), StatusAborted)
}

func TestKeyedTxLockAllOrNothing(t *testing.T) {
	s := newKeyed(t)
	kstatus(t, s.Execute(cli, TxLock(10, 1, 0, 100, []TxKV{{[]byte("x"), []byte("1")}}), nil), StatusOK)

	// tx 2 wants x (held) and y (free): must lock NEITHER.
	res := s.Execute(cli, TxLock(11, 2, 0, 100, []TxKV{{[]byte("y"), []byte("2")}, {[]byte("x"), []byte("2")}}), nil)
	kstatus(t, res, StatusBusy)
	if info, _ := DecodeBusy(res); info.Tx != 1 {
		t.Fatalf("busy holder = %d, want 1", info.Tx)
	}
	// y must still be writable by a plain put (tx 2 locked nothing).
	kstatus(t, s.Execute(cli, KPut(12, []byte("y"), []byte("solo")), nil), StatusOK)
}

func TestKeyedTxRecoveryRespectsTTL(t *testing.T) {
	s := newKeyed(t)
	kstatus(t, s.Execute(cli, TxLock(100, 9, 3, 50, []TxKV{{[]byte("k"), []byte("v")}}), nil), StatusOK)

	// Non-force abort inside the lease (expiry=150, now=120): refused Busy.
	res := s.Execute(cli, TxAbort(120, 9, false), nil)
	kstatus(t, res, StatusBusy)
	info, _ := DecodeBusy(res)
	if info.Expired() {
		t.Fatalf("lease should be live at now=120: %+v", info)
	}
	if info.Home != 3 {
		t.Fatalf("busy home = %d, want 3", info.Home)
	}

	// Past the TTL the same recovery abort succeeds and unlocks the key.
	kstatus(t, s.Execute(cli, TxAbort(151, 9, false), nil), StatusAborted)
	kstatus(t, s.Execute(cli, KPut(152, []byte("k"), []byte("w")), nil), StatusOK)
}

func TestKeyedTxAbortUnknownRecordsTombstone(t *testing.T) {
	s := newKeyed(t)
	// Resolving a tx this group never saw records Aborted...
	kstatus(t, s.Execute(cli, TxAbort(10, 42, false), nil), StatusAborted)
	// ...so a late lock or commit for it is dead on arrival.
	kstatus(t, s.Execute(cli, TxLock(11, 42, 0, 100, []TxKV{{[]byte("z"), []byte("v")}}), nil), StatusAborted)
	kstatus(t, s.Execute(cli, TxCommit(12, 42), nil), StatusAborted)
	// Commit of an unknown tx does NOT record anything.
	kstatus(t, s.Execute(cli, TxCommit(13, 43), nil), StatusUnknown)
	kstatus(t, s.Execute(cli, TxStatus(43), nil), StatusUnknown)
}

func TestKeyedTxStatus(t *testing.T) {
	s := newKeyed(t)
	kstatus(t, s.Execute(cli, TxStatus(7), nil), StatusUnknown)
	kstatus(t, s.Execute(cli, TxLock(10, 7, 1, 100, []TxKV{{[]byte("s"), []byte("v")}}), nil), StatusOK)
	res := s.Execute(cli, TxStatus(7), nil)
	kstatus(t, res, StatusBusy)
	if info, _ := DecodeBusy(res); info.Tx != 7 || info.Home != 1 {
		t.Fatalf("status busy info = %+v", info)
	}
	kstatus(t, s.Execute(cli, TxCommit(11, 7), nil), StatusCommitted)
	kstatus(t, s.Execute(cli, TxStatus(7), nil), StatusCommitted)
}

func TestKeyedReadOnlyClassification(t *testing.T) {
	s := newKeyed(t)
	ro := map[bool][][]byte{
		true:  {KGet([]byte("k")), TxStatus(1)},
		false: {KPut(1, []byte("k"), []byte("v")), TxLock(1, 1, 0, 1, nil), TxCommit(1, 1), TxAbort(1, 1, false), nil},
	}
	for want, ops := range ro {
		for _, op := range ops {
			if s.IsReadOnly(op) != want {
				t.Fatalf("IsReadOnly(%x) != %v", op, want)
			}
		}
	}
}

func TestKeyedKeyOf(t *testing.T) {
	cases := []struct {
		op   []byte
		key  string
		want bool
	}{
		{KPut(9, []byte("router"), []byte("v")), "router", true},
		{KGet([]byte("fetch")), "fetch", true},
		{TxLock(9, 1, 0, 10, []TxKV{{[]byte("first"), []byte("v")}, {[]byte("second"), []byte("w")}}), "first", true},
		{TxCommit(9, 1), "", false},
		{TxAbort(9, 1, false), "", false},
		{TxStatus(1), "", false},
		{nil, "", false},
	}
	for _, c := range cases {
		key, ok := KeyOf(c.op)
		if ok != c.want || (ok && string(key) != c.key) {
			t.Fatalf("KeyOf(%x) = %q,%v want %q,%v", c.op, key, ok, c.key, c.want)
		}
	}
}

func TestKeyedMaxNowMonotonic(t *testing.T) {
	s := newKeyed(t)
	// A lagging coordinator clock cannot rewind the lease frame: lock at
	// now=100 with ttl=10, then a put carrying now=1 still sees the lease.
	kstatus(t, s.Execute(cli, TxLock(100, 2, 0, 10, []TxKV{{[]byte("m"), []byte("v")}}), nil), StatusOK)
	res := s.Execute(cli, KPut(1, []byte("m"), []byte("w")), nil)
	kstatus(t, res, StatusBusy)
	if info, _ := DecodeBusy(res); info.Now != 100 || info.Expired() {
		t.Fatalf("lease frame rewound: %+v", info)
	}
}
