package kvservice

// keyed.go is the sharded-deployment face of the demo service: a keyed
// store (key -> value) with the two-phase lock/commit operations the
// bft/sharded cross-shard write protocol executes as ordered ops inside
// each participating group. It is a SEPARATE service layout from the
// counter/register/blob Service above — a sharded cluster replicates
// KeyedFactory in every group, and bft/sharded routes each key to its
// owning group via the consistent-hash ring (internal/shardmap).
//
// Determinism contract: Execute is a pure function of (state, client,
// op). There is no wall clock anywhere — time enters only as the `now`
// field coordinators embed in their operations, and the store keeps the
// maximum such value seen (maxNow). Lock leases expire relative to
// maxNow, so every replica of a group makes the identical expiry
// decision at the identical point in the op sequence. A client that lies
// about `now` can at worst expire leases early or hold its own late —
// a liveness nuisance inside one trust domain, never a safety issue:
// commit-vs-abort of a transaction is serialized by its home group's
// op order, not by clocks.
//
// Two-phase protocol (client is the coordinator; see bft/sharded):
//
//	lock   TxLock(tx, home, ttl, keys+staged values) at each group,
//	       ascending group order, home group first. All-or-nothing per
//	       group; Busy names the holder so a blocked coordinator can
//	       recover a stale one.
//	commit TxCommit(tx) at the home group FIRST — this is the commit
//	       point — then at the other participants.
//	abort  TxAbort(tx) releases a group's locks and records the outcome.
//	       Recovery for a crashed coordinator: past the TTL, anyone may
//	       resolve through the HOME group (abort there if it has not
//	       committed; its answer then propagates to the stuck groups).
//	       Aborting an unknown tx records Aborted, so a resolved outcome
//	       can never be contradicted by a late lock or commit.

import (
	"encoding/binary"

	"repro/internal/message"
	"repro/internal/statemachine"
)

// Keyed-store opcodes (disjoint from the counter/blob opcodes so a
// router can classify any kv op by its first byte).
const (
	OpKPut     byte = 0x20 // now, key, value: write one key
	OpKGet     byte = 0x21 // key: read-only fetch
	OpTxLock   byte = 0x22 // now, tx, home, ttl, keys+staged values
	OpTxCommit byte = 0x23 // now, tx: apply staged writes, release
	OpTxAbort  byte = 0x24 // now, tx, force: discard staged, release
	OpTxStatus byte = 0x25 // tx: read-only outcome probe
)

// Status is the first byte of every keyed-store result.
type Status byte

const (
	StatusOK        Status = 0 // operation applied (Put/Get/Lock)
	StatusNotFound  Status = 1 // Get: key absent
	StatusBusy      Status = 2 // key locked (payload: holder) / lease live
	StatusCommitted Status = 3 // tx outcome: committed (idempotent)
	StatusAborted   Status = 4 // tx outcome: aborted (idempotent)
	StatusUnknown   Status = 5 // tx not known to this group
	StatusFull      Status = 6 // key table out of slots
	StatusBad       Status = 7 // malformed operation (total function)
)

// Store geometry. Keys and values are length-capped so a slot is fixed
// size and the whole table lives in the paged Region like any other
// service state (checkpointed, state-transferred, recovery-checked for
// free).
const (
	MaxKeyLen   = 32
	MaxValueLen = 64

	offKMaxNow     = 0  // u64: max coordinator clock seen (lease frame)
	offKTxCursor   = 8  // u64: tx-outcome ring cursor
	offKTxTable    = 64 // txTableEntries * txEntrySize
	txTableEntries = 256
	txEntrySize    = 16 // txid u64, status u8, pad

	offKSlots = offKTxTable + txTableEntries*txEntrySize

	// Slot field offsets (within a slot).
	slotFlags      = 0 // bit0 live value, bit1 locked, bit2 staged value
	slotKLen       = 1
	slotKey        = 2
	slotVLen       = 34 // u16
	slotVal        = 36
	slotLockTx     = 100 // u64
	slotLockExpiry = 108 // u64 nanos in the maxNow frame
	slotLockHome   = 116 // u32 home group of the holder
	slotStagedVLen = 120 // u16
	slotStagedVal  = 122
	slotSize       = 192

	flagLive   = 1 << 0
	flagLocked = 1 << 1
	flagStaged = 1 << 2
)

// MinKeyedStateSize is the smallest region holding the keyed layout with
// a useful number of slots.
const MinKeyedStateSize = offKSlots + 64*slotSize

// KeyedService implements statemachine.Service over the keyed layout.
type KeyedService struct {
	r *statemachine.Region
}

// NewKeyed builds the keyed store over a region (at least
// MinKeyedStateSize bytes; larger regions hold proportionally more keys).
func NewKeyed(r *statemachine.Region) *KeyedService {
	if r.Size() < MinKeyedStateSize {
		panic("kvservice: region below MinKeyedStateSize for the keyed store")
	}
	return &KeyedService{r: r}
}

// KeyedFactory adapts NewKeyed to the replica constructor signature.
func KeyedFactory(r *statemachine.Region) statemachine.Service { return NewKeyed(r) }

// Slots returns the key capacity of this store's region.
func (s *KeyedService) Slots() int { return (s.r.Size() - offKSlots) / slotSize }

func (s *KeyedService) slotOff(i int) int { return offKSlots + i*slotSize }

func (s *KeyedService) maxNow() uint64 {
	return binary.LittleEndian.Uint64(s.r.Bytes()[offKMaxNow:])
}

// bumpNow folds an op-supplied coordinator clock into the store's lease
// frame and returns the frame value.
func (s *KeyedService) bumpNow(now uint64) uint64 {
	cur := s.maxNow()
	if now > cur {
		s.r.Modify(offKMaxNow, 8)
		binary.LittleEndian.PutUint64(s.r.Bytes()[offKMaxNow:], now)
		return now
	}
	return cur
}

// findSlot scans for key; returns (slot index, found) and the first free
// slot (-1 if none). A full scan keeps lookups correct without tombstone
// bookkeeping — the table is a few hundred slots, far below the cost of
// one agreement round.
func (s *KeyedService) findSlot(key []byte) (idx int, found bool, free int) {
	free = -1
	n := s.Slots()
	data := s.r.Bytes()
	for i := 0; i < n; i++ {
		off := s.slotOff(i)
		flags := data[off+slotFlags]
		if flags == 0 {
			if free < 0 {
				free = i
			}
			continue
		}
		klen := int(data[off+slotKLen])
		if klen == len(key) && string(data[off+slotKey:off+slotKey+klen]) == string(key) {
			return i, true, free
		}
	}
	return 0, false, free
}

func (s *KeyedService) slotLockedBy(i int) (tx uint64, home uint32, expiry uint64, locked bool) {
	off := s.slotOff(i)
	data := s.r.Bytes()
	if data[off+slotFlags]&flagLocked == 0 {
		return 0, 0, 0, false
	}
	return binary.LittleEndian.Uint64(data[off+slotLockTx:]),
		binary.LittleEndian.Uint32(data[off+slotLockHome:]),
		binary.LittleEndian.Uint64(data[off+slotLockExpiry:]), true
}

// txOutcome scans the outcome ring for txid.
func (s *KeyedService) txOutcome(txid uint64) (Status, bool) {
	data := s.r.Bytes()
	for i := 0; i < txTableEntries; i++ {
		off := offKTxTable + i*txEntrySize
		id := binary.LittleEndian.Uint64(data[off:])
		if id == txid && id != 0 {
			return Status(data[off+8]), true
		}
	}
	return StatusUnknown, false
}

// recordOutcome appends txid -> status to the outcome ring (overwriting
// the oldest entry once the ring wraps; see the capacity note in doc.go
// of bft/sharded).
func (s *KeyedService) recordOutcome(txid uint64, st Status) {
	cur := binary.LittleEndian.Uint64(s.r.Bytes()[offKTxCursor:])
	off := offKTxTable + int(cur%txTableEntries)*txEntrySize
	s.r.Modify(off, txEntrySize)
	binary.LittleEndian.PutUint64(s.r.Bytes()[off:], txid)
	s.r.Bytes()[off+8] = byte(st)
	s.r.Modify(offKTxCursor, 8)
	binary.LittleEndian.PutUint64(s.r.Bytes()[offKTxCursor:], cur+1)
}

// busyReply encodes StatusBusy plus the holder's identity so the caller
// can run coordinator recovery: holder txid, holder home group, lease
// expiry, and the store's current lease frame (so the caller can tell
// expired from live without trusting its own clock).
func busyReply(tx uint64, home uint32, expiry, now uint64) []byte {
	out := make([]byte, 1+8+4+8+8)
	out[0] = byte(StatusBusy)
	binary.LittleEndian.PutUint64(out[1:], tx)
	binary.LittleEndian.PutUint32(out[9:], home)
	binary.LittleEndian.PutUint64(out[13:], expiry)
	binary.LittleEndian.PutUint64(out[21:], now)
	return out
}

func statusReply(st Status) []byte { return []byte{byte(st)} }

// Execute implements statemachine.Service. The transition function is
// total: malformed operations return StatusBad. It must be a pure
// function of (state, client, op) — no clock, no randomness, no map
// iteration; lease decisions read only the op-carried `now` folded into
// the region's maxNow.
//
// bftlint:deterministic
func (s *KeyedService) Execute(client message.NodeID, op []byte, nondet []byte) []byte {
	if len(op) == 0 {
		return statusReply(StatusBad)
	}
	body := op[1:]
	switch op[0] {
	case OpKPut:
		return s.execPut(body)
	case OpKGet:
		return s.execGet(body)
	case OpTxLock:
		return s.execTxLock(body)
	case OpTxCommit:
		return s.execTxFinish(body, true)
	case OpTxAbort:
		return s.execTxFinish(body, false)
	case OpTxStatus:
		return s.execTxStatus(body)
	}
	return statusReply(StatusBad)
}

func (s *KeyedService) execPut(body []byte) []byte {
	if len(body) < 9 {
		return statusReply(StatusBad)
	}
	now := binary.LittleEndian.Uint64(body)
	key, val, rest := parseKV(body[8:])
	if key == nil || len(rest) != 0 {
		return statusReply(StatusBad)
	}
	frame := s.bumpNow(now)
	idx, found, free := s.findSlot(key)
	if found {
		if tx, home, expiry, locked := s.slotLockedBy(idx); locked {
			// Locked keys refuse writers — even past expiry: the staged
			// write needs resolution through the holder's home group
			// first (the client library does this on Busy).
			return busyReply(tx, home, expiry, frame)
		}
		s.writeLive(idx, key, val)
		return statusReply(StatusOK)
	}
	if free < 0 {
		return statusReply(StatusFull)
	}
	s.writeLive(free, key, val)
	return statusReply(StatusOK)
}

func (s *KeyedService) execGet(body []byte) []byte {
	key, rest, ok := parseKey(body)
	if !ok || len(rest) != 0 {
		return statusReply(StatusBad)
	}
	idx, found, _ := s.findSlot(key)
	if !found {
		return statusReply(StatusNotFound)
	}
	off := s.slotOff(idx)
	data := s.r.Bytes()
	if data[off+slotFlags]&flagLive == 0 {
		// Lock-only reservation (an insert staged by an unresolved tx):
		// the committed view of this key is "absent".
		return statusReply(StatusNotFound)
	}
	vlen := int(binary.LittleEndian.Uint16(data[off+slotVLen:]))
	out := make([]byte, 1+2+vlen)
	out[0] = byte(StatusOK)
	binary.LittleEndian.PutUint16(out[1:], uint16(vlen))
	copy(out[3:], data[off+slotVal:off+slotVal+vlen])
	return out
}

func (s *KeyedService) execTxLock(body []byte) []byte {
	if len(body) < 8+8+4+8+2 {
		return statusReply(StatusBad)
	}
	now := binary.LittleEndian.Uint64(body)
	txid := binary.LittleEndian.Uint64(body[8:])
	home := binary.LittleEndian.Uint32(body[16:])
	ttl := binary.LittleEndian.Uint64(body[20:])
	nkeys := int(binary.LittleEndian.Uint16(body[28:]))
	rest := body[30:]
	if txid == 0 || nkeys == 0 {
		return statusReply(StatusBad)
	}
	type staged struct {
		key, val []byte
	}
	kvs := make([]staged, 0, nkeys)
	for i := 0; i < nkeys; i++ {
		var key, val []byte
		key, val, rest = parseKV(rest)
		if key == nil {
			return statusReply(StatusBad)
		}
		kvs = append(kvs, staged{key, val})
	}
	if len(rest) != 0 {
		return statusReply(StatusBad)
	}
	frame := s.bumpNow(now)
	// A resolved transaction can never re-lock: the resolution (commit or
	// abort) was serialized by this group's op order and must stand.
	if st, ok := s.txOutcome(txid); ok {
		return statusReply(st)
	}
	// Validate pass: all keys lockable, or nothing locks. Free slots are
	// claimed greedily in the apply pass, so count them here.
	freeNeeded := 0
	for _, kv := range kvs {
		idx, found, _ := s.findSlot(kv.key)
		if !found {
			freeNeeded++
			continue
		}
		if tx, h, expiry, locked := s.slotLockedBy(idx); locked && tx != txid {
			return busyReply(tx, h, expiry, frame)
		}
	}
	if freeNeeded > 0 {
		freeCount := 0
		n := s.Slots()
		for i := 0; i < n; i++ {
			if s.r.Bytes()[s.slotOff(i)+slotFlags] == 0 {
				freeCount++
			}
		}
		if freeCount < freeNeeded {
			return statusReply(StatusFull)
		}
	}
	// Apply pass: lock every key with the staged value.
	expiry := frame + ttl
	for _, kv := range kvs {
		idx, found, free := s.findSlot(kv.key)
		if !found {
			idx = free
			off := s.slotOff(idx)
			s.r.Modify(off, slotSize)
			data := s.r.Bytes()
			for i := off; i < off+slotSize; i++ {
				data[i] = 0
			}
			data[off+slotKLen] = byte(len(kv.key))
			copy(data[off+slotKey:], kv.key)
		}
		off := s.slotOff(idx)
		s.r.Modify(off, slotSize)
		data := s.r.Bytes()
		data[off+slotFlags] |= flagLocked | flagStaged
		binary.LittleEndian.PutUint64(data[off+slotLockTx:], txid)
		binary.LittleEndian.PutUint64(data[off+slotLockExpiry:], expiry)
		binary.LittleEndian.PutUint32(data[off+slotLockHome:], home)
		binary.LittleEndian.PutUint16(data[off+slotStagedVLen:], uint16(len(kv.val)))
		copy(data[off+slotStagedVal:], kv.val)
	}
	return statusReply(StatusOK)
}

// execTxFinish is commit (apply staged writes) or abort (discard them);
// both release the tx's locks and record the outcome so the decision is
// idempotent and a late opposite op is refused.
func (s *KeyedService) execTxFinish(body []byte, commit bool) []byte {
	if len(body) < 16 {
		return statusReply(StatusBad)
	}
	now := binary.LittleEndian.Uint64(body)
	txid := binary.LittleEndian.Uint64(body[8:])
	force := !commit && len(body) >= 17 && body[16] == 1
	if txid == 0 {
		return statusReply(StatusBad)
	}
	frame := s.bumpNow(now)
	if st, ok := s.txOutcome(txid); ok {
		return statusReply(st) // already resolved: idempotent answer
	}
	// Collect this tx's locks.
	var held []int
	n := s.Slots()
	for i := 0; i < n; i++ {
		if tx, _, expiry, locked := s.slotLockedBy(i); locked && tx == txid {
			if !commit && !force && expiry >= frame {
				// Recovery abort inside the lease: the coordinator may
				// still be driving this tx — refuse until the TTL passes.
				_, home, _, _ := s.slotLockedBy(i)
				return busyReply(txid, home, expiry, frame)
			}
			held = append(held, i)
		}
	}
	if len(held) == 0 {
		if commit {
			// Commit of a tx this group never saw (or whose outcome was
			// evicted): refuse without recording — the coordinator holds
			// the retry loop, and recording Committed here could
			// resurrect an evicted abort.
			return statusReply(StatusUnknown)
		}
		// Abort of an unknown tx RECORDS the abort: this is the recovery
		// linchpin — once the home group answers Aborted, a late lock or
		// commit for this tx must find the tombstone and fail.
		s.recordOutcome(txid, StatusAborted)
		return statusReply(StatusAborted)
	}
	for _, i := range held {
		off := s.slotOff(i)
		s.r.Modify(off, slotSize)
		data := s.r.Bytes()
		if commit {
			vlen := binary.LittleEndian.Uint16(data[off+slotStagedVLen:])
			binary.LittleEndian.PutUint16(data[off+slotVLen:], vlen)
			copy(data[off+slotVal:off+slotVal+int(vlen)], data[off+slotStagedVal:off+slotStagedVal+int(vlen)])
			data[off+slotFlags] = flagLive
		} else if data[off+slotFlags]&flagLive != 0 {
			data[off+slotFlags] = flagLive // keep the committed value
		} else {
			// Insert reservation: aborting erases the slot entirely.
			for b := off; b < off+slotSize; b++ {
				data[b] = 0
			}
		}
		if commit || data[off+slotFlags]&flagLive != 0 {
			// Clear lock/staged fields for hygiene (flags already reset).
			zero := [slotSize - slotLockTx]byte{}
			copy(data[off+slotLockTx:off+slotSize], zero[:])
		}
	}
	if commit {
		s.recordOutcome(txid, StatusCommitted)
		return statusReply(StatusCommitted)
	}
	s.recordOutcome(txid, StatusAborted)
	return statusReply(StatusAborted)
}

func (s *KeyedService) execTxStatus(body []byte) []byte {
	if len(body) < 8 {
		return statusReply(StatusBad)
	}
	txid := binary.LittleEndian.Uint64(body)
	if st, ok := s.txOutcome(txid); ok {
		return statusReply(st)
	}
	n := s.Slots()
	for i := 0; i < n; i++ {
		if tx, home, expiry, locked := s.slotLockedBy(i); locked && tx == txid {
			return busyReply(tx, home, expiry, s.maxNow())
		}
	}
	return statusReply(StatusUnknown)
}

// writeLive sets a slot's committed value (insert or overwrite).
func (s *KeyedService) writeLive(idx int, key, val []byte) {
	off := s.slotOff(idx)
	s.r.Modify(off, slotSize)
	data := s.r.Bytes()
	data[off+slotFlags] = flagLive
	data[off+slotKLen] = byte(len(key))
	copy(data[off+slotKey:], key)
	binary.LittleEndian.PutUint16(data[off+slotVLen:], uint16(len(val)))
	copy(data[off+slotVal:], val)
}

// IsReadOnly implements statemachine.Service. Decided from the op bytes
// alone (the upcall runs on the protocol loop while Execute may run on
// the staged executor).
func (s *KeyedService) IsReadOnly(op []byte) bool {
	if len(op) == 0 {
		return false
	}
	switch op[0] {
	case OpKGet, OpTxStatus:
		return true
	}
	return false
}

// ProposeNonDet implements statemachine.Service (deterministic service).
func (s *KeyedService) ProposeNonDet() []byte { return nil }

// CheckNonDet implements statemachine.Service.
func (s *KeyedService) CheckNonDet(nondet []byte) bool { return len(nondet) == 0 }

// --- Wire helpers -----------------------------------------------------

// parseKey decodes "klen u8, key" returning the key and the remainder.
func parseKey(b []byte) (key, rest []byte, ok bool) {
	if len(b) < 1 {
		return nil, nil, false
	}
	klen := int(b[0])
	if klen == 0 || klen > MaxKeyLen || len(b) < 1+klen {
		return nil, nil, false
	}
	return b[1 : 1+klen], b[1+klen:], true
}

// parseKV decodes "klen u8, key, vlen u16, val"; nil key means malformed.
func parseKV(b []byte) (key, val, rest []byte) {
	key, b, ok := parseKey(b)
	if !ok || len(b) < 2 {
		return nil, nil, nil
	}
	vlen := int(binary.LittleEndian.Uint16(b))
	if vlen > MaxValueLen || len(b) < 2+vlen {
		return nil, nil, nil
	}
	return key, b[2 : 2+vlen], b[2+vlen:]
}

func appendKV(op []byte, key, val []byte) []byte {
	op = append(op, byte(len(key)))
	op = append(op, key...)
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(val)))
	op = append(op, l[:]...)
	return append(op, val...)
}

// --- Operation encoders (client-side helpers) -------------------------

// KPut encodes a single-key write. now is the coordinator's clock in
// nanoseconds (it only advances the store's lease frame).
func KPut(now uint64, key, val []byte) []byte {
	op := make([]byte, 9, 9+1+len(key)+2+len(val))
	op[0] = OpKPut
	binary.LittleEndian.PutUint64(op[1:], now)
	return appendKV(op, key, val)
}

// KGet encodes a read-only single-key fetch.
func KGet(key []byte) []byte {
	op := make([]byte, 1, 2+len(key))
	op[0] = OpKGet
	op = append(op, byte(len(key)))
	return append(op, key...)
}

// TxKV is one staged write of a TxLock operation.
type TxKV struct {
	Key, Val []byte
}

// TxLock encodes phase 1 for one group: lock (and stage) every listed
// key under txid with the given lease, recording the tx's home group for
// recovery routing.
func TxLock(now, txid uint64, home uint32, ttl uint64, kvs []TxKV) []byte {
	op := make([]byte, 31)
	op[0] = OpTxLock
	binary.LittleEndian.PutUint64(op[1:], now)
	binary.LittleEndian.PutUint64(op[9:], txid)
	binary.LittleEndian.PutUint32(op[17:], home)
	binary.LittleEndian.PutUint64(op[21:], ttl)
	binary.LittleEndian.PutUint16(op[29:], uint16(len(kvs)))
	for _, kv := range kvs {
		op = appendKV(op, kv.Key, kv.Val)
	}
	return op
}

// TxCommit encodes phase 2: apply txid's staged writes and release.
func TxCommit(now, txid uint64) []byte {
	op := make([]byte, 17)
	op[0] = OpTxCommit
	binary.LittleEndian.PutUint64(op[1:], now)
	binary.LittleEndian.PutUint64(op[9:], txid)
	return op
}

// TxAbort encodes the release path. force aborts even inside the lease
// (the coordinator abandoning its own tx); without force the op refuses
// with StatusBusy until the TTL passes — the recovery rule.
func TxAbort(now, txid uint64, force bool) []byte {
	op := make([]byte, 18)
	op[0] = OpTxAbort
	binary.LittleEndian.PutUint64(op[1:], now)
	binary.LittleEndian.PutUint64(op[9:], txid)
	if force {
		op[17] = 1
	}
	return op
}

// TxStatus encodes the read-only outcome probe.
func TxStatus(txid uint64) []byte {
	op := make([]byte, 9)
	op[0] = OpTxStatus
	binary.LittleEndian.PutUint64(op[1:], txid)
	return op
}

// --- Result decoders --------------------------------------------------

// DecodeStatus reads the status byte of any keyed-store result.
func DecodeStatus(res []byte) Status {
	if len(res) == 0 {
		return StatusBad
	}
	return Status(res[0])
}

// DecodeValue decodes a successful KGet result.
func DecodeValue(res []byte) ([]byte, bool) {
	if len(res) < 3 || Status(res[0]) != StatusOK {
		return nil, false
	}
	vlen := int(binary.LittleEndian.Uint16(res[1:]))
	if len(res) < 3+vlen {
		return nil, false
	}
	return append([]byte(nil), res[3:3+vlen]...), true
}

// BusyInfo is the holder identity carried by a StatusBusy result.
type BusyInfo struct {
	Tx     uint64 // holder transaction id
	Home   uint32 // holder's home group (recovery routes here)
	Expiry uint64 // lease end, in the store's maxNow frame
	Now    uint64 // the store's maxNow at execution time
}

// Expired reports whether the lease had already lapsed when the group
// executed the op that returned this Busy.
func (b BusyInfo) Expired() bool { return b.Now > b.Expiry }

// DecodeBusy decodes the holder identity from a StatusBusy result.
func DecodeBusy(res []byte) (BusyInfo, bool) {
	if len(res) < 29 || Status(res[0]) != StatusBusy {
		return BusyInfo{}, false
	}
	return BusyInfo{
		Tx:     binary.LittleEndian.Uint64(res[1:]),
		Home:   binary.LittleEndian.Uint32(res[9:]),
		Expiry: binary.LittleEndian.Uint64(res[13:]),
		Now:    binary.LittleEndian.Uint64(res[21:]),
	}, true
}

// KeyOf extracts the routing key of a keyed-store op: the key of a
// Put/Get, or the FIRST key of a TxLock. Tx finish/status ops carry no
// key (they are routed by group, not by key) and return false.
func KeyOf(op []byte) ([]byte, bool) {
	if len(op) == 0 {
		return nil, false
	}
	switch op[0] {
	case OpKPut:
		if len(op) < 9 {
			return nil, false
		}
		key, _, ok := parseKey(op[9:])
		return key, ok
	case OpKGet:
		key, _, ok := parseKey(op[1:])
		return key, ok
	case OpTxLock:
		if len(op) < 31 {
			return nil, false
		}
		key, _, _ := parseKV(op[31:])
		return key, key != nil
	}
	return nil, false
}
