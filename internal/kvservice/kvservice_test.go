package kvservice

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/message"
	"repro/internal/statemachine"
)

func newSvc(t testing.TB) *Service {
	t.Helper()
	r := statemachine.NewRegion(MinStateSize+16*1024, 1024)
	return New(r)
}

const cli = message.ClientIDBase

func TestCounter(t *testing.T) {
	s := newSvc(t)
	for i := 1; i <= 5; i++ {
		got := DecodeU64(s.Execute(cli, Incr(), nil))
		if got != uint64(i) {
			t.Fatalf("incr %d -> %d", i, got)
		}
	}
	if got := DecodeU64(s.Execute(cli, Get(), nil)); got != 5 {
		t.Fatalf("get -> %d", got)
	}
}

func TestRegisters(t *testing.T) {
	s := newSvc(t)
	s.Execute(cli, SetReg(3, 42), nil)
	s.Execute(cli, SetReg(7, 99), nil)
	if got := DecodeU64(s.Execute(cli, GetReg(3), nil)); got != 42 {
		t.Fatalf("reg3 = %d", got)
	}
	if got := DecodeU64(s.Execute(cli, GetReg(7), nil)); got != 99 {
		t.Fatalf("reg7 = %d", got)
	}
	if got := DecodeU64(s.Execute(cli, GetReg(0), nil)); got != 0 {
		t.Fatalf("reg0 = %d", got)
	}
	// Key space wraps at 256.
	s.Execute(cli, SetReg(256+3, 1), nil)
	if got := DecodeU64(s.Execute(cli, GetReg(3), nil)); got != 1 {
		t.Fatal("register wrap broken")
	}
}

func TestBlobRoundTrip(t *testing.T) {
	s := newSvc(t)
	data := bytes.Repeat([]byte{7}, 4096)
	s.Execute(cli, WriteBlob(data), nil)
	got := s.Execute(cli, ReadBlob(4096), nil)
	if !bytes.Equal(got, data) {
		t.Fatal("blob mismatch")
	}
}

func TestBlobWraparound(t *testing.T) {
	r := statemachine.NewRegion(MinStateSize+2048, 1024)
	s := New(r)
	blobArea := r.Size() - offBlob
	if blobArea <= 0 {
		t.Skip("layout leaves no blob area")
	}
	// Write more than the blob area in two chunks; must not panic and must
	// keep the cursor in range.
	s.Execute(cli, WriteBlob(bytes.Repeat([]byte{1}, blobArea-10)), nil)
	s.Execute(cli, WriteBlob(bytes.Repeat([]byte{2}, 100)), nil)
	if got := int(s.u64(offCursor)); got < 0 || got >= blobArea {
		t.Fatalf("cursor %d out of range", got)
	}
}

func TestOrderLog(t *testing.T) {
	s := newSvc(t)
	s.Execute(cli+1, AppendLog(), nil)
	s.Execute(cli+2, AppendLog(), nil)
	out := s.Execute(cli, ReadLog(), nil)
	if len(out) != 16 {
		t.Fatalf("log length %d", len(out))
	}
	if DecodeU64(out[:8]) != uint64(uint32(cli+1)) || DecodeU64(out[8:]) != uint64(uint32(cli+2)) {
		t.Fatal("log order wrong")
	}
}

func TestIsReadOnly(t *testing.T) {
	s := newSvc(t)
	ro := [][]byte{Get(), ReadBlob(10), GetReg(1), ReadLog()}
	rw := [][]byte{Incr(), WriteBlob([]byte{1}), SetReg(1, 2), AppendLog(), Noop(), GetTime(), nil}
	for _, op := range ro {
		if !s.IsReadOnly(op) {
			t.Fatalf("op %v not classified read-only", op[:1])
		}
	}
	for _, op := range rw {
		if s.IsReadOnly(op) {
			t.Fatalf("op %v classified read-only", op)
		}
	}
}

func TestTotalityOnGarbage(t *testing.T) {
	// The transition function must be total: junk ops return without panic.
	s := newSvc(t)
	f := func(op []byte) bool {
		_ = s.Execute(cli, op, nil)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	// Two instances fed the same ops produce identical regions.
	r1 := statemachine.NewRegion(MinStateSize, 1024)
	r2 := statemachine.NewRegion(MinStateSize, 1024)
	s1, s2 := New(r1), New(r2)
	ops := [][]byte{Incr(), SetReg(1, 7), AppendLog(), Incr(), WriteBlob([]byte("abc"))}
	for _, op := range ops {
		out1 := s1.Execute(cli, op, nil)
		out2 := s2.Execute(cli, op, nil)
		if !bytes.Equal(out1, out2) {
			t.Fatal("results diverge")
		}
	}
	if !bytes.Equal(r1.Bytes(), r2.Bytes()) {
		t.Fatal("state diverges")
	}
}

func TestNonDetDisabledByDefault(t *testing.T) {
	s := newSvc(t)
	if s.ProposeNonDet() != nil {
		t.Fatal("deterministic service proposed a value")
	}
	if !s.CheckNonDet(nil) {
		t.Fatal("empty nondet rejected")
	}
	if s.CheckNonDet([]byte{1}) {
		t.Fatal("unexpected nondet accepted")
	}
}

func TestNonDetTimestamps(t *testing.T) {
	r := statemachine.NewRegion(MinStateSize, 1024)
	s := New(r)
	s.Timestamps = true
	base := time.Now().UnixNano()
	s.Clock = func() int64 { return base }

	prop := s.ProposeNonDet()
	if len(prop) != 8 {
		t.Fatalf("proposal %d bytes", len(prop))
	}
	if !s.CheckNonDet(prop) {
		t.Fatal("own proposal rejected")
	}
	// Within tolerance.
	s.Clock = func() int64 { return base + int64(5*time.Second) }
	if !s.CheckNonDet(prop) {
		t.Fatal("5s skew rejected with 10s tolerance")
	}
	// Beyond tolerance.
	s.Clock = func() int64 { return base + int64(30*time.Second) }
	if s.CheckNonDet(prop) {
		t.Fatal("30s skew accepted")
	}
	if s.CheckNonDet([]byte{1, 2}) {
		t.Fatal("malformed nondet accepted")
	}
	// GetTime returns the agreed value verbatim.
	out := s.Execute(cli, GetTime(), prop)
	if !bytes.Equal(out, prop) {
		t.Fatal("GetTime did not return the agreed value")
	}
}

func TestDirtyTrackingHonored(t *testing.T) {
	// Every mutation must pass through Modify: after ClearDirty, executing
	// a write op must mark pages dirty again.
	r := statemachine.NewRegion(MinStateSize, 1024)
	s := New(r)
	r.ClearDirty()
	s.Execute(cli, Incr(), nil)
	if len(r.DirtyPages()) == 0 {
		t.Fatal("Incr did not mark dirty pages")
	}
	r.ClearDirty()
	s.Execute(cli, Get(), nil)
	if len(r.DirtyPages()) != 0 {
		t.Fatal("read-only op dirtied pages")
	}
}
