// Package simnet is the network substrate for in-process BFT clusters. It
// models the unreliable multicast channel of Section 2.4.2: messages may be
// delayed, dropped, duplicated, or reordered, and an adversary hook may
// inspect, modify, or suppress traffic between any pair of principals.
//
// The paper's testbed was a switched 10 Mbit/s Ethernet carrying UDP; here a
// central scheduler goroutine applies a per-link latency model
// (base + jitter + bytes/bandwidth) and delivers into bounded per-endpoint
// queues, so overload produces drops exactly like a UDP socket buffer.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/message"
	"repro/internal/transport"
)

// LinkConfig sets the delay/loss model for one direction of one link (or the
// network default).
type LinkConfig struct {
	// Latency is the fixed one-way propagation delay.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// BytesPerSec models serialization time (0 = infinite bandwidth).
	BytesPerSec float64
	// LossRate drops datagrams with this probability in [0,1).
	LossRate float64
	// DupRate duplicates datagrams with this probability in [0,1).
	DupRate float64
}

// Filter inspects a datagram in flight. It returns the (possibly modified)
// payload and whether to deliver it. Filters are the adversary hook used by
// fault-injection tests: they can corrupt, drop, or record traffic.
type Filter func(src, dst message.NodeID, payload []byte) ([]byte, bool)

// Stats aggregates network counters.
type Stats struct {
	MsgsSent     uint64
	BytesSent    uint64
	MsgsDropped  uint64 // loss model + partitions + filters
	MsgsOverflow uint64 // receiver queue full
}

// Network is an in-process simulated datagram network.
type Network struct {
	mu        sync.RWMutex
	endpoints map[message.NodeID]*endpoint
	defaults  LinkConfig
	overrides map[linkKey]LinkConfig
	blocked   map[linkKey]bool
	filter    Filter
	rng       *rand.Rand
	rngMu     sync.Mutex

	stats Stats

	q        deliveryQueue
	qMu      sync.Mutex
	wake     chan struct{}
	closed   atomic.Bool
	done     chan struct{}
	queueCap int
}

type linkKey struct{ src, dst message.NodeID }

type delivery struct {
	at      time.Time
	dst     message.NodeID
	payload []byte
	seq     uint64 // tie-break for stable ordering
}

type deliveryQueue []*delivery

func (q deliveryQueue) Len() int { return len(q) }
func (q deliveryQueue) Less(i, j int) bool {
	if q[i].at.Equal(q[j].at) {
		return q[i].seq < q[j].seq
	}
	return q[i].at.Before(q[j].at)
}
func (q deliveryQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *deliveryQueue) Push(x interface{}) { *q = append(*q, x.(*delivery)) }
func (q *deliveryQueue) Pop() interface{} {
	old := *q
	n := len(old)
	d := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return d
}

type endpoint struct {
	id    message.NodeID
	net   *Network
	queue chan []byte
	stop  chan struct{}
	once  sync.Once
}

// Option configures a Network.
type Option func(*Network)

// WithDefaults sets the default link model.
func WithDefaults(cfg LinkConfig) Option {
	return func(n *Network) { n.defaults = cfg }
}

// WithSeed seeds the network PRNG for reproducible loss/jitter.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithQueueCap sets per-endpoint receive queue capacity (default 8192).
func WithQueueCap(c int) Option {
	return func(n *Network) { n.queueCap = c }
}

// New creates a network and starts its delivery scheduler.
func New(opts ...Option) *Network {
	n := &Network{
		endpoints: make(map[message.NodeID]*endpoint),
		overrides: make(map[linkKey]LinkConfig),
		blocked:   make(map[linkKey]bool),
		rng:       rand.New(rand.NewSource(1)),
		wake:      make(chan struct{}, 1),
		done:      make(chan struct{}),
		queueCap:  8192,
	}
	for _, o := range opts {
		o(n)
	}
	go n.run()
	return n
}

// Close stops the scheduler and detaches all endpoints.
func (n *Network) Close() {
	if n.closed.CompareAndSwap(false, true) {
		close(n.done)
		n.mu.Lock()
		eps := make([]*endpoint, 0, len(n.endpoints))
		for _, ep := range n.endpoints {
			eps = append(eps, ep)
		}
		n.mu.Unlock()
		for _, ep := range eps {
			ep.Close()
		}
	}
}

// Attach registers an endpoint and starts a dispatch goroutine invoking h
// serially for each delivered datagram. It implements transport.Network.
// Attaching a principal that is already attached panics, like a UDP bind
// on a port in use — silently replacing the endpoint would wedge the
// first attachment with no diagnosis (its traffic would route to the
// newer one). Re-attach after Close is fine.
func (n *Network) Attach(id message.NodeID, h transport.Handler) transport.Transport {
	ep := &endpoint{
		id:    id,
		net:   n,
		queue: make(chan []byte, n.queueCap),
		stop:  make(chan struct{}),
	}
	n.mu.Lock()
	if _, live := n.endpoints[id]; live {
		n.mu.Unlock()
		panic(fmt.Sprintf("simnet: principal %d attached twice", id))
	}
	n.endpoints[id] = ep
	n.mu.Unlock()
	go func() {
		for {
			select {
			case p := <-ep.queue:
				h(p)
			case <-ep.stop:
				return
			}
		}
	}()
	return ep
}

// SetDefaults replaces the default link model at runtime (links with a
// SetLink override keep it). In-flight datagrams already scheduled under
// the old model are unaffected.
func (n *Network) SetDefaults(cfg LinkConfig) {
	n.mu.Lock()
	n.defaults = cfg
	n.mu.Unlock()
}

// SetLink overrides the model for the directed link src->dst.
func (n *Network) SetLink(src, dst message.NodeID, cfg LinkConfig) {
	n.mu.Lock()
	n.overrides[linkKey{src, dst}] = cfg
	n.mu.Unlock()
}

// SetFilter installs the adversary hook (nil clears it).
func (n *Network) SetFilter(f Filter) {
	n.mu.Lock()
	n.filter = f
	n.mu.Unlock()
}

// Block severs the directed link src->dst.
func (n *Network) Block(src, dst message.NodeID) {
	n.mu.Lock()
	n.blocked[linkKey{src, dst}] = true
	n.mu.Unlock()
}

// Unblock restores the directed link src->dst.
func (n *Network) Unblock(src, dst message.NodeID) {
	n.mu.Lock()
	delete(n.blocked, linkKey{src, dst})
	n.mu.Unlock()
}

// Isolate severs all traffic to and from id.
func (n *Network) Isolate(id message.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for other := range n.endpoints {
		if other != id {
			n.blocked[linkKey{id, other}] = true
			n.blocked[linkKey{other, id}] = true
		}
	}
}

// Heal removes every block.
func (n *Network) Heal() {
	n.mu.Lock()
	n.blocked = make(map[linkKey]bool)
	n.mu.Unlock()
}

// Partition splits the network into groups; traffic crossing group
// boundaries is dropped until Heal.
func (n *Network) Partition(groups ...[]message.NodeID) {
	groupOf := make(map[message.NodeID]int)
	for gi, g := range groups {
		for _, id := range g {
			groupOf[id] = gi
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	ids := make([]message.NodeID, 0, len(n.endpoints))
	for id := range n.endpoints {
		ids = append(ids, id)
	}
	for _, a := range ids {
		for _, b := range ids {
			if a == b {
				continue
			}
			ga, oka := groupOf[a]
			gb, okb := groupOf[b]
			if !oka || !okb || ga != gb {
				n.blocked[linkKey{a, b}] = true
			}
		}
	}
}

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats {
	return Stats{
		MsgsSent:     atomic.LoadUint64(&n.stats.MsgsSent),
		BytesSent:    atomic.LoadUint64(&n.stats.BytesSent),
		MsgsDropped:  atomic.LoadUint64(&n.stats.MsgsDropped),
		MsgsOverflow: atomic.LoadUint64(&n.stats.MsgsOverflow),
	}
}

var seqCounter uint64

func (n *Network) send(src, dst message.NodeID, payload []byte) {
	if n.closed.Load() {
		return
	}
	atomic.AddUint64(&n.stats.MsgsSent, 1)
	atomic.AddUint64(&n.stats.BytesSent, uint64(len(payload)))

	n.mu.RLock()
	blocked := n.blocked[linkKey{src, dst}]
	cfg, hasOverride := n.overrides[linkKey{src, dst}]
	if !hasOverride {
		cfg = n.defaults
	}
	filter := n.filter
	_, dstExists := n.endpoints[dst]
	n.mu.RUnlock()

	if blocked || !dstExists {
		atomic.AddUint64(&n.stats.MsgsDropped, 1)
		return
	}
	if filter != nil {
		var deliver bool
		payload, deliver = filter(src, dst, payload)
		if !deliver {
			atomic.AddUint64(&n.stats.MsgsDropped, 1)
			return
		}
	}

	n.rngMu.Lock()
	loss := cfg.LossRate > 0 && n.rng.Float64() < cfg.LossRate
	dup := cfg.DupRate > 0 && n.rng.Float64() < cfg.DupRate
	var jitter time.Duration
	if cfg.Jitter > 0 {
		jitter = time.Duration(n.rng.Int63n(int64(cfg.Jitter)))
	}
	n.rngMu.Unlock()

	if loss {
		atomic.AddUint64(&n.stats.MsgsDropped, 1)
		return
	}

	delay := cfg.Latency + jitter
	if cfg.BytesPerSec > 0 {
		delay += time.Duration(float64(len(payload)) / cfg.BytesPerSec * float64(time.Second))
	}

	copies := 1
	if dup {
		copies = 2
	}
	for c := 0; c < copies; c++ {
		if delay <= 0 {
			n.deliver(dst, payload)
			continue
		}
		d := &delivery{
			at:      time.Now().Add(delay),
			dst:     dst,
			payload: payload,
			seq:     atomic.AddUint64(&seqCounter, 1),
		}
		n.qMu.Lock()
		heap.Push(&n.q, d)
		n.qMu.Unlock()
		select {
		case n.wake <- struct{}{}:
		default:
		}
	}
}

func (n *Network) deliver(dst message.NodeID, payload []byte) {
	n.mu.RLock()
	ep := n.endpoints[dst]
	n.mu.RUnlock()
	if ep == nil {
		atomic.AddUint64(&n.stats.MsgsDropped, 1)
		return
	}
	n.deliverEp(ep, payload)
}

func (n *Network) deliverEp(ep *endpoint, payload []byte) {
	select {
	case ep.queue <- payload:
	default:
		atomic.AddUint64(&n.stats.MsgsOverflow, 1)
	}
}

// multicast is the coalesced fan-out behind transport.Multicaster: one
// submission delivers payload to every destination, taking each network
// lock once for the whole set instead of once per destination. Its
// observable behavior (stats, filters, loss/dup/jitter draws, delivery
// order) is identical to looping send over dsts — the PRNG is consumed in
// the same per-destination order — so simulations are reproducible across
// the serial and pipelined egress paths.
func (n *Network) multicast(src message.NodeID, dsts []message.NodeID, payload []byte) {
	if n.closed.Load() {
		return
	}
	type hop struct {
		ep      *endpoint
		cfg     LinkConfig
		payload []byte
	}
	// Small groups (every BFT multicast) plan on the stack; per-multicast
	// heap traffic would eat the coalescing win.
	var hopBuf [16]hop
	hops := hopBuf[:0]
	if len(dsts) > len(hopBuf) {
		hops = make([]hop, 0, len(dsts))
	}
	var dropped uint64

	// One read-lock round: link decisions for every destination.
	n.mu.RLock()
	filter := n.filter
	for _, dst := range dsts {
		if dst == src {
			continue
		}
		atomic.AddUint64(&n.stats.MsgsSent, 1)
		atomic.AddUint64(&n.stats.BytesSent, uint64(len(payload)))
		ep := n.endpoints[dst]
		if ep == nil || n.blocked[linkKey{src, dst}] {
			dropped++
			continue
		}
		cfg, ok := n.overrides[linkKey{src, dst}]
		if !ok {
			cfg = n.defaults
		}
		hops = append(hops, hop{ep: ep, cfg: cfg, payload: payload})
	}
	n.mu.RUnlock()

	// Adversary hook outside the lock (filters may reconfigure the network).
	if filter != nil {
		kept := hops[:0]
		for _, h := range hops {
			p, deliver := filter(src, h.ep.id, h.payload)
			if !deliver {
				dropped++
				continue
			}
			h.payload = p
			kept = append(kept, h)
		}
		hops = kept
	}

	// One PRNG round for the whole set.
	type fate struct {
		loss, dup bool
		jitter    time.Duration
	}
	var fateBuf [16]fate
	fates := fateBuf[:]
	if len(hops) > len(fateBuf) {
		fates = make([]fate, len(hops))
	} else {
		fates = fates[:len(hops)]
	}
	n.rngMu.Lock()
	for i, h := range hops {
		fates[i].loss = h.cfg.LossRate > 0 && n.rng.Float64() < h.cfg.LossRate
		fates[i].dup = h.cfg.DupRate > 0 && n.rng.Float64() < h.cfg.DupRate
		if h.cfg.Jitter > 0 {
			fates[i].jitter = time.Duration(n.rng.Int63n(int64(h.cfg.Jitter)))
		}
	}
	n.rngMu.Unlock()

	now := time.Now()
	var delayed []*delivery
	for i, h := range hops {
		if fates[i].loss {
			dropped++
			continue
		}
		delay := h.cfg.Latency + fates[i].jitter
		if h.cfg.BytesPerSec > 0 {
			delay += time.Duration(float64(len(h.payload)) / h.cfg.BytesPerSec * float64(time.Second))
		}
		copies := 1
		if fates[i].dup {
			copies = 2
		}
		for c := 0; c < copies; c++ {
			if delay <= 0 {
				n.deliverEp(h.ep, h.payload)
				continue
			}
			delayed = append(delayed, &delivery{
				at:      now.Add(delay),
				dst:     h.ep.id,
				payload: h.payload,
				seq:     atomic.AddUint64(&seqCounter, 1),
			})
		}
	}
	if dropped > 0 {
		atomic.AddUint64(&n.stats.MsgsDropped, dropped)
	}
	if len(delayed) > 0 {
		// One heap round and one scheduler wake for the whole batch.
		n.qMu.Lock()
		for _, d := range delayed {
			heap.Push(&n.q, d)
		}
		n.qMu.Unlock()
		select {
		case n.wake <- struct{}{}:
		default:
		}
	}
}

// run is the delivery scheduler loop.
func (n *Network) run() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		n.qMu.Lock()
		var next *delivery
		if len(n.q) > 0 {
			next = n.q[0]
		}
		n.qMu.Unlock()

		if next == nil {
			select {
			case <-n.wake:
				continue
			case <-n.done:
				return
			}
		}

		wait := time.Until(next.at)
		if wait <= 0 {
			n.qMu.Lock()
			d := heap.Pop(&n.q).(*delivery)
			n.qMu.Unlock()
			n.deliver(d.dst, d.payload)
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-n.wake:
		case <-n.done:
			return
		}
	}
}

// --- endpoint (transport.Transport implementation) ---

var _ transport.Transport = (*endpoint)(nil)
var _ transport.Multicaster = (*endpoint)(nil)
var _ transport.Network = (*Network)(nil)

// Self implements transport.Transport.
func (ep *endpoint) Self() message.NodeID { return ep.id }

// Send implements transport.Transport.
func (ep *endpoint) Send(dst message.NodeID, payload []byte) {
	ep.net.send(ep.id, dst, payload)
}

// Multicast implements transport.Transport.
func (ep *endpoint) Multicast(dsts []message.NodeID, payload []byte) {
	ep.net.multicast(ep.id, dsts, payload)
}

// MulticastOwned implements transport.Multicaster: the whole destination
// set is submitted in one coalesced round. The simulator's delivery queues
// retain payload references (zero-copy), so release is never called and the
// buffer falls to the garbage collector, per the Multicaster contract.
func (ep *endpoint) MulticastOwned(dsts []message.NodeID, payload []byte, _ func([]byte)) {
	ep.net.multicast(ep.id, dsts, payload)
}

// SendOwned implements transport.Multicaster (single-destination form).
func (ep *endpoint) SendOwned(dst message.NodeID, payload []byte, _ func([]byte)) {
	ep.net.send(ep.id, dst, payload)
}

// Close implements transport.Transport.
func (ep *endpoint) Close() {
	ep.once.Do(func() {
		close(ep.stop)
		ep.net.mu.Lock()
		if ep.net.endpoints[ep.id] == ep {
			delete(ep.net.endpoints, ep.id)
		}
		ep.net.mu.Unlock()
	})
}
