package simnet

import (
	"repro/internal/transport"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/message"
)

// collector gathers payloads delivered to an endpoint.
type collector struct {
	mu   sync.Mutex
	got  [][]byte
	seen chan struct{}
}

func newCollector() *collector {
	return &collector{seen: make(chan struct{}, 1024)}
}

func (c *collector) handler(p []byte) {
	c.mu.Lock()
	c.got = append(c.got, p)
	c.mu.Unlock()
	c.seen <- struct{}{}
}

func (c *collector) wait(t *testing.T, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.After(timeout)
	for i := 0; i < n; i++ {
		select {
		case <-c.seen:
		case <-deadline:
			t.Fatalf("timed out waiting for delivery %d/%d", i+1, n)
		}
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func TestBasicDelivery(t *testing.T) {
	n := New(WithSeed(1))
	defer n.Close()
	c := newCollector()
	a := n.Attach(0, func([]byte) {})
	n.Attach(1, c.handler)
	a.Send(1, []byte("hello"))
	c.wait(t, 1, time.Second)
	if string(c.got[0]) != "hello" {
		t.Fatalf("got %q", c.got[0])
	}
}

func TestMulticastSkipsSelf(t *testing.T) {
	n := New(WithSeed(1))
	defer n.Close()
	self := newCollector()
	c1, c2 := newCollector(), newCollector()
	a := n.Attach(0, self.handler)
	n.Attach(1, c1.handler)
	n.Attach(2, c2.handler)
	a.Multicast([]message.NodeID{0, 1, 2}, []byte("m"))
	c1.wait(t, 1, time.Second)
	c2.wait(t, 1, time.Second)
	time.Sleep(20 * time.Millisecond)
	if self.count() != 0 {
		t.Fatal("multicast delivered to self")
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	n := New(WithSeed(1), WithDefaults(LinkConfig{Latency: 30 * time.Millisecond}))
	defer n.Close()
	c := newCollector()
	a := n.Attach(0, func([]byte) {})
	n.Attach(1, c.handler)
	start := time.Now()
	a.Send(1, []byte("x"))
	c.wait(t, 1, time.Second)
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~30ms", el)
	}
}

func TestOrderingPreservedAtEqualDelay(t *testing.T) {
	n := New(WithSeed(1), WithDefaults(LinkConfig{Latency: 5 * time.Millisecond}))
	defer n.Close()
	c := newCollector()
	a := n.Attach(0, func([]byte) {})
	n.Attach(1, c.handler)
	for i := 0; i < 20; i++ {
		a.Send(1, []byte{byte(i)})
	}
	c.wait(t, 20, 2*time.Second)
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, p := range c.got {
		if p[0] != byte(i) {
			t.Fatalf("message %d out of order (got %d)", i, p[0])
		}
	}
}

func TestLossRateDropsEverything(t *testing.T) {
	n := New(WithSeed(1), WithDefaults(LinkConfig{LossRate: 1.0}))
	defer n.Close()
	c := newCollector()
	a := n.Attach(0, func([]byte) {})
	n.Attach(1, c.handler)
	for i := 0; i < 10; i++ {
		a.Send(1, []byte("x"))
	}
	time.Sleep(30 * time.Millisecond)
	if c.count() != 0 {
		t.Fatal("lossy link delivered")
	}
	if s := n.Stats(); s.MsgsDropped != 10 {
		t.Fatalf("dropped = %d, want 10", s.MsgsDropped)
	}
}

func TestDuplication(t *testing.T) {
	n := New(WithSeed(1), WithDefaults(LinkConfig{DupRate: 1.0, Latency: time.Millisecond}))
	defer n.Close()
	c := newCollector()
	a := n.Attach(0, func([]byte) {})
	n.Attach(1, c.handler)
	a.Send(1, []byte("x"))
	c.wait(t, 2, time.Second)
	if c.count() != 2 {
		t.Fatalf("got %d copies, want 2", c.count())
	}
}

func TestBlockAndUnblock(t *testing.T) {
	n := New(WithSeed(1))
	defer n.Close()
	c := newCollector()
	a := n.Attach(0, func([]byte) {})
	n.Attach(1, c.handler)
	n.Block(0, 1)
	a.Send(1, []byte("x"))
	time.Sleep(20 * time.Millisecond)
	if c.count() != 0 {
		t.Fatal("blocked link delivered")
	}
	n.Unblock(0, 1)
	a.Send(1, []byte("y"))
	c.wait(t, 1, time.Second)
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(WithSeed(1))
	defer n.Close()
	cs := make([]*collector, 4)
	ts := make([]transport.Transport, 4)
	for i := range cs {
		cs[i] = newCollector()
		ts[i] = n.Attach(message.NodeID(i), cs[i].handler)
	}
	n.Partition([]message.NodeID{0, 1}, []message.NodeID{2, 3})
	ts[0].Send(1, []byte("in-group"))
	ts[0].Send(2, []byte("cross-group"))
	cs[1].wait(t, 1, time.Second)
	time.Sleep(20 * time.Millisecond)
	if cs[2].count() != 0 {
		t.Fatal("cross-partition traffic delivered")
	}
	n.Heal()
	ts[0].Send(2, []byte("after-heal"))
	cs[2].wait(t, 1, time.Second)
}

func TestIsolate(t *testing.T) {
	n := New(WithSeed(1))
	defer n.Close()
	c0, c1, c2 := newCollector(), newCollector(), newCollector()
	t0 := n.Attach(0, c0.handler)
	t1 := n.Attach(1, c1.handler)
	n.Attach(2, c2.handler)
	n.Isolate(0)
	t0.Send(1, []byte("out"))
	t1.Send(0, []byte("in"))
	t1.Send(2, []byte("bystander"))
	c2.wait(t, 1, time.Second)
	time.Sleep(20 * time.Millisecond)
	if c0.count() != 0 || c1.count() != 0 {
		t.Fatal("isolated node exchanged traffic")
	}
}

func TestFilterModifiesAndDrops(t *testing.T) {
	n := New(WithSeed(1))
	defer n.Close()
	c := newCollector()
	a := n.Attach(0, func([]byte) {})
	n.Attach(1, c.handler)
	var dropped atomic.Int32
	n.SetFilter(func(src, dst message.NodeID, p []byte) ([]byte, bool) {
		if p[0] == 'd' {
			dropped.Add(1)
			return nil, false
		}
		out := append([]byte("mod:"), p...)
		return out, true
	})
	a.Send(1, []byte("drop-me"))
	a.Send(1, []byte("keep"))
	c.wait(t, 1, time.Second)
	if string(c.got[0]) != "mod:keep" {
		t.Fatalf("got %q", c.got[0])
	}
	if dropped.Load() != 1 {
		t.Fatal("filter drop not applied")
	}
	n.SetFilter(nil)
	a.Send(1, []byte("plain"))
	c.wait(t, 1, time.Second)
}

func TestPerLinkOverride(t *testing.T) {
	n := New(WithSeed(1))
	defer n.Close()
	fast, slow := newCollector(), newCollector()
	a := n.Attach(0, func([]byte) {})
	n.Attach(1, fast.handler)
	n.Attach(2, slow.handler)
	n.SetLink(0, 2, LinkConfig{Latency: 50 * time.Millisecond})
	start := time.Now()
	a.Send(1, []byte("f"))
	a.Send(2, []byte("s"))
	fast.wait(t, 1, time.Second)
	fastAt := time.Since(start)
	slow.wait(t, 1, time.Second)
	slowAt := time.Since(start)
	if fastAt > 20*time.Millisecond {
		t.Fatalf("fast path took %v", fastAt)
	}
	if slowAt < 40*time.Millisecond {
		t.Fatalf("slow path took only %v", slowAt)
	}
}

func TestBandwidthModel(t *testing.T) {
	// 1 MB/s: a 100 KB payload should take ~100 ms.
	n := New(WithSeed(1), WithDefaults(LinkConfig{BytesPerSec: 1 << 20}))
	defer n.Close()
	c := newCollector()
	a := n.Attach(0, func([]byte) {})
	n.Attach(1, c.handler)
	start := time.Now()
	a.Send(1, make([]byte, 100<<10))
	c.wait(t, 1, 2*time.Second)
	if el := time.Since(start); el < 60*time.Millisecond {
		t.Fatalf("100KB at 1MB/s arrived in %v", el)
	}
}

func TestSendToUnknownDoesNotPanic(t *testing.T) {
	n := New(WithSeed(1))
	defer n.Close()
	a := n.Attach(0, func([]byte) {})
	a.Send(42, []byte("void"))
	if s := n.Stats(); s.MsgsDropped != 1 {
		t.Fatalf("dropped = %d", s.MsgsDropped)
	}
}

func TestCloseEndpointStopsDelivery(t *testing.T) {
	n := New(WithSeed(1))
	defer n.Close()
	c := newCollector()
	a := n.Attach(0, func([]byte) {})
	ep := n.Attach(1, c.handler)
	ep.Close()
	a.Send(1, []byte("x"))
	time.Sleep(20 * time.Millisecond)
	if c.count() != 0 {
		t.Fatal("closed endpoint received")
	}
}

func TestStatsCounters(t *testing.T) {
	n := New(WithSeed(1))
	defer n.Close()
	c := newCollector()
	a := n.Attach(0, func([]byte) {})
	n.Attach(1, c.handler)
	a.Send(1, make([]byte, 100))
	c.wait(t, 1, time.Second)
	s := n.Stats()
	if s.MsgsSent != 1 || s.BytesSent != 100 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConcurrentSendersNoRace(t *testing.T) {
	n := New(WithSeed(1), WithDefaults(LinkConfig{Latency: time.Millisecond, Jitter: time.Millisecond}))
	defer n.Close()
	c := newCollector()
	n.Attach(9, c.handler)
	var wg sync.WaitGroup
	const senders, each = 8, 50
	for i := 0; i < senders; i++ {
		tr := n.Attach(message.NodeID(i), func([]byte) {})
		wg.Add(1)
		go func(tr transport.Transport) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				tr.Send(9, []byte{1})
			}
		}(tr)
	}
	wg.Wait()
	c.wait(t, senders*each, 5*time.Second)
}
