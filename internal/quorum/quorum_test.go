package quorum

import "testing"

func TestThresholds(t *testing.T) {
	for f := 0; f <= 33; f++ {
		n := N(f)
		if got := F(n); got != f {
			t.Fatalf("F(N(%d)) = %d, want %d", f, got, f)
		}
		if Weak(f) != f+1 {
			t.Fatalf("Weak(%d) = %d", f, Weak(f))
		}
		if Strong(f) != 2*f+1 {
			t.Fatalf("Strong(%d) = %d", f, Strong(f))
		}
		// Quorum intersection (§4.1): two strong certificates out of n
		// overlap in at least f+1 replicas, so at least one is honest.
		if overlap := 2*Strong(f) - n; overlap < f+1 {
			t.Fatalf("f=%d: strong certs overlap in %d < f+1 replicas", f, overlap)
		}
		// A prepared certificate is the primary's pre-prepare plus 2f
		// matching prepares: one strong certificate in total.
		if 1+MatchingPrepares(f) != Strong(f) {
			t.Fatalf("f=%d: 1+MatchingPrepares != Strong", f)
		}
		// §3.2.4: sender + primary + 2f-1 acks = a strong certificate.
		if f >= 1 && 2+Acks(f) != Strong(f) {
			t.Fatalf("f=%d: 2+Acks != Strong", f)
		}
		// §3.2.2 condition 2: this replica + f vouchers = a weak certificate.
		if 1+Vouchers(f) != Weak(f) {
			t.Fatalf("f=%d: 1+Vouchers != Weak", f)
		}
		// §4.3.2: claimant + others = the corresponding certificate.
		if 1+StrongOthers(f) != Strong(f) || 1+WeakOthers(f) != Weak(f) {
			t.Fatalf("f=%d: Others variants drift from certificate sizes", f)
		}
	}
	// F truncates: intermediate group sizes tolerate the same f.
	for _, tc := range []struct{ n, f int }{{1, 0}, {2, 0}, {3, 0}, {4, 1}, {5, 1}, {6, 1}, {7, 2}, {10, 3}} {
		if got := F(tc.n); got != tc.f {
			t.Fatalf("F(%d) = %d, want %d", tc.n, got, tc.f)
		}
	}
}
