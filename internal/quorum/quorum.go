// Package quorum is the single place this repo does f-arithmetic. Every
// certificate-size and vote-count threshold in the protocol derives from
// the resilience bound n = 3f+1 of Castro & Liskov §2.1, and the §4.1
// safety argument is exactly as strong as the weakest threshold
// comparison in the code: one silent off-by-one (a `>= 2*f` where the
// proof needs 2f+1, an ack count that drifts from §3.2.4) re-admits the
// split-brain executions the quorum-intersection lemma excludes. The
// bftquorum analyzer (internal/lint/quorum) therefore forbids raw
// f-arithmetic outside this package: values annotated
// `bftlint:faultbound` may flow into these functions (or into helpers
// annotated `bftlint:threshold`), but may not be added, scaled, or
// compared inline at call sites.
//
// Naming convention: functions that include the local replica's own vote
// are certificate sizes (Weak, Strong); functions counting only messages
// from *other* replicas carry an explicit suffix or doc note, because
// "2f+1 including myself" and "2f others" are the same quorum expressed
// from two viewpoints and conflating them is precisely the historical
// bug shape this package exists to prevent.
package quorum

// N returns the group size n = 3f+1 that tolerates f Byzantine faults
// (§2.1). It is the inverse of F.
//
//bftlint:threshold
func N(f int) int { return 3*f + 1 }

// F returns the fault threshold f = ⌊(n-1)/3⌋ tolerated by a group of n
// replicas (§2.1).
//
//bftlint:faultbound
func F(n int) int { return (n - 1) / 3 }

// Weak returns the weak-certificate size f+1: any set of f+1 replicas
// contains at least one non-faulty one, so f+1 matching claims prove at
// least one honest replica backs the value (§2.3.2 reply certificates,
// §4.3.2 recovery replies, the §2.3.5 view-change join rule, §5.3.2
// state-transfer targets).
//
//bftlint:threshold
func Weak(f int) int { return f + 1 }

// Strong returns the quorum-certificate size 2f+1: any two sets of 2f+1
// replicas intersect in at least one non-faulty replica, which is what
// the §4.1 safety proof's quorum-intersection lemma needs (committed
// certificates, stable checkpoints, view-change sets, read-only reply
// certificates).
//
//bftlint:threshold
func Strong(f int) int { return 2*f + 1 }

// MatchingPrepares returns 2f, the number of prepares from *other*
// replicas (distinct from the primary's pre-prepare) that complete a
// prepared certificate: pre-prepare + 2f prepares = 2f+1 distinct
// replicas vouching for (v, n, d) (§2.3.3).
//
//bftlint:threshold
func MatchingPrepares(f int) int { return 2 * f }

// Acks returns 2f-1, the view-change-ack count that lets the new primary
// accept a view-change message it cannot verify directly: 2f-1 acks from
// replicas other than the primary and the sender, plus the sender's own
// message and the primary's implicit ack, total the 2f+1 the new-view
// certificate requires (§3.2.4).
//
//bftlint:threshold
func Acks(f int) int { return 2*f - 1 }

// Vouchers returns f, the prepare count that substitutes for direct
// request authentication: condition 2 of §3.2.2 accepts a request when f
// *other* replicas sent prepares carrying its batch digest — with this
// replica's own pre-prepare/prepare that is f+1, a weak certificate, so
// at least one honest replica authenticated the request directly.
//
//bftlint:threshold
func Vouchers(f int) int { return f }

// StrongOthers returns 2f, a strong certificate counted from the
// viewpoint of a replica whose own claim is excluded: 2f other replicas
// plus the claimant itself form the 2f+1 quorum. The §4.3.2 recovery
// estimation uses it (2f others report checkpoints at or below the
// candidate).
//
//bftlint:threshold
func StrongOthers(f int) int { return 2 * f }

// WeakOthers returns f, a weak certificate counted excluding the
// claimant's own vote: f others plus the claimant form the f+1 weak
// certificate. The §4.3.2 recovery estimation uses it (f others report
// prepared sequence numbers at or above the candidate).
//
//bftlint:threshold
func WeakOthers(f int) int { return f }
