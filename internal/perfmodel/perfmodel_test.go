package perfmodel

import (
	"testing"
	"time"

	"repro/internal/simnet"
)

// fixedParams returns hand-set constants so tests are deterministic.
func fixedParams(n int) Params {
	return Params{
		N:             n,
		Header:        96,
		DigestFixed:   200 * time.Nanosecond,
		DigestPerByte: 2 * time.Nanosecond,
		MACOp:         300 * time.Nanosecond,
		SigGen:        30 * time.Microsecond,
		SigVerify:     60 * time.Microsecond,
		CommFixed:     5 * time.Microsecond,
		CommPerByte:   8 * time.Nanosecond,
		Execute:       200 * time.Nanosecond,
	}
}

func TestReadOnlyFasterThanReadWrite(t *testing.T) {
	p := fixedParams(4)
	ro := p.LatencyReadOnly(0, 0, false)
	rw := p.LatencyReadWrite(0, 0, false, true)
	if ro >= rw {
		t.Fatalf("read-only %v not faster than read-write %v", ro, rw)
	}
}

func TestTentativeFasterThanFull(t *testing.T) {
	p := fixedParams(4)
	tent := p.LatencyReadWrite(0, 0, false, true)
	full := p.LatencyReadWrite(0, 0, false, false)
	if tent >= full {
		t.Fatalf("tentative %v not faster than full commit %v", tent, full)
	}
}

func TestPKSlowerThanMAC(t *testing.T) {
	// The paper's headline: signatures dominate latency (§8.3.1 shows
	// BFT-PK an order of magnitude slower).
	p := fixedParams(4)
	mac := p.LatencyReadWrite(0, 0, false, true)
	pk := p.LatencyReadWrite(0, 0, true, true)
	if pk < 5*mac {
		t.Fatalf("PK latency %v should dwarf MAC latency %v", pk, mac)
	}
}

func TestLatencyGrowsWithSizes(t *testing.T) {
	p := fixedParams(4)
	if p.LatencyReadWrite(4096, 0, false, true) <= p.LatencyReadWrite(0, 0, false, true) {
		t.Fatal("argument size has no cost")
	}
	if p.LatencyReadWrite(0, 4096, false, true) <= p.LatencyReadWrite(0, 0, false, true) {
		t.Fatal("result size has no cost")
	}
}

func TestBatchingImprovesThroughput(t *testing.T) {
	p := fixedParams(4)
	t1 := p.ThroughputReadWrite(0, 0, 1, false)
	t16 := p.ThroughputReadWrite(0, 0, 16, false)
	if t16 <= t1 {
		t.Fatalf("batching hurt throughput: %v -> %v", t1, t16)
	}
}

func TestMoreReplicasSlower(t *testing.T) {
	// §8.3.4: latency grows with n (bigger authenticators, more traffic).
	l4 := fixedParams(4).LatencyReadWrite(0, 0, false, true)
	l13 := fixedParams(13).LatencyReadWrite(0, 0, false, true)
	if l13 <= l4 {
		t.Fatalf("n=13 latency %v not above n=4 latency %v", l13, l4)
	}
}

func TestAuthenticatorCrossover(t *testing.T) {
	// §3.2.1: generating an authenticator costs (n-1) MACs, so BFT beats
	// BFT-PK until n is enormous. With these constants the crossover is
	// SigGen/MACOp = 100 replicas.
	p := fixedParams(4)
	cross := int(p.SigGen/p.MACOp) + 1
	small := fixedParams(cross / 2)
	if small.authGen(false) >= small.authGen(true) {
		t.Fatal("MACs should beat signatures below the crossover")
	}
	big := fixedParams(cross * 2)
	if big.authGen(false) <= big.authGen(true) {
		t.Fatal("signatures should win far beyond the crossover")
	}
}

func TestThroughputPositive(t *testing.T) {
	p := fixedParams(4)
	for _, pk := range []bool{false, true} {
		if p.ThroughputReadWrite(0, 4096, 8, pk) <= 0 {
			t.Fatal("non-positive throughput")
		}
		if p.ThroughputReadOnly(0, 0, pk) <= 0 {
			t.Fatal("non-positive RO throughput")
		}
	}
}

func TestCalibrateSane(t *testing.T) {
	p := Calibrate(4, simnet.LinkConfig{})
	if p.MACOp <= 0 || p.DigestFixed <= 0 || p.SigGen <= 0 || p.CommFixed <= 0 {
		t.Fatalf("calibration produced zeros: %+v", p)
	}
	// The relative ordering the protocol depends on (§3's premise).
	if p.SigGen < 10*p.MACOp {
		t.Fatalf("signatures (%v) not much dearer than MACs (%v)", p.SigGen, p.MACOp)
	}
	if p.LatencyReadWrite(0, 0, false, true) <= 0 {
		t.Fatal("model predicts non-positive latency")
	}
}
