// Package perfmodel implements the analytic performance model of Chapter 7:
// latency and throughput predictions for read-only and read-write
// operations built from three component models — digest computation, MAC
// computation, and communication — plus protocol constants.
//
// The thesis calibrates the model on its testbed (PII/600, 100 Mbit
// Ethernet); here Calibrate measures the same components on the host and
// the in-process network, so the model predicts what the harness should
// measure (experiment E10 compares the two).
package perfmodel

import (
	"time"

	"repro/internal/crypto"
	"repro/internal/message"
	"repro/internal/quorum"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// Params are the model's calibrated constants (§7.1, §7.2).
type Params struct {
	// Digest computation: D(l) = DigestFixed + l*DigestPerByte (§7.1.1).
	DigestFixed   time.Duration
	DigestPerByte time.Duration

	// MAC computation over a fixed-size header (§7.1.2). Generation and
	// verification are symmetric for HMAC.
	MACOp time.Duration

	// Public-key operations (BFT-PK's substitutes for MACs).
	SigGen    time.Duration
	SigVerify time.Duration

	// Communication: C(l) = CommFixed + l*CommPerByte one way (§7.1.3).
	CommFixed   time.Duration
	CommPerByte time.Duration

	// Execute is the service-execution floor (null op).
	Execute time.Duration

	// Header is the protocol header overhead added to every message.
	Header int

	// N is the replica group size (f = (N-1)/3).
	N int
}

// F returns the fault threshold.
//
//bftlint:faultbound
func (p Params) F() int { return quorum.F(p.N) }

// digest returns D(l).
func (p Params) digest(l int) time.Duration {
	return p.DigestFixed + time.Duration(l)*p.DigestPerByte
}

// comm returns the one-way time for an l-byte payload.
func (p Params) comm(l int) time.Duration {
	return p.CommFixed + time.Duration(l+p.Header)*p.CommPerByte
}

// authGen is the cost of generating an authenticator (one MAC per replica,
// §3.2.1) or a signature in PK mode.
func (p Params) authGen(pk bool) time.Duration {
	if pk {
		return p.SigGen
	}
	return time.Duration(p.N-1) * p.MACOp
}

// authVerify is the cost of verifying one inbound message's authentication.
func (p Params) authVerify(pk bool) time.Duration {
	if pk {
		return p.SigVerify
	}
	return p.MACOp
}

// LatencyReadOnly predicts the latency of a read-only a/b operation
// (§7.3.1): one round trip — request multicast, execution, reply.
func (p Params) LatencyReadOnly(a, b int, pk bool) time.Duration {
	t := p.comm(a)                                                   // request to replicas
	t += p.authVerify(pk) + p.digest(a)                              // replica authenticates request
	t += p.Execute                                                   // execute
	t += p.digest(b) + p.authGen(pk)/time.Duration(maxInt(p.N-1, 1)) // reply MAC (single)
	t += p.comm(b)                                                   // reply to client
	t += p.authVerify(pk) + p.digest(b)                              // client checks the certificate
	return t
}

// LatencyReadWrite predicts the latency of a read-write a/b operation
// (§7.3.2). With tentative execution the client sees four message delays
// (request, pre-prepare, prepare, reply); without it the commit phase adds
// a fifth (§5.1.2).
func (p Params) LatencyReadWrite(a, b int, pk, tentative bool) time.Duration {
	f := p.F()
	// Request to primary.
	t := p.comm(a)
	t += p.authVerify(pk) + p.digest(a)
	// Pre-prepare to backups (request inlined).
	t += p.authGen(pk)
	t += p.comm(a)
	t += p.authVerify(pk) + p.digest(a)
	// Prepare round: backups multicast, everyone collects 2f matching.
	t += p.authGen(pk)
	t += p.comm(0)
	t += time.Duration(quorum.MatchingPrepares(f)) * p.authVerify(pk)
	if !tentative {
		// Commit round.
		t += p.authGen(pk)
		t += p.comm(0)
		t += time.Duration(quorum.Strong(f)) * p.authVerify(pk)
	}
	// Execute and reply.
	t += p.Execute
	t += p.digest(b) + p.MACOp
	t += p.comm(b)
	t += p.authVerify(pk) + p.digest(b)
	return t
}

// ThroughputReadWrite predicts sustained operations per second for a/b
// read-write operations with the given batch size (§7.4.2). The primary is
// the bottleneck: per batch it verifies β requests, builds one pre-prepare
// authenticator, processes 2f prepares and 2f+1 commits, executes β
// operations, and sends β replies plus n-1 pre-prepare copies.
func (p Params) ThroughputReadWrite(a, b, batch int, pk bool) float64 {
	f := p.F()
	β := time.Duration(batch)
	perBatch := β * (p.authVerify(pk) + p.digest(a)) // verify requests
	perBatch += p.authGen(pk)                        // pre-prepare auth
	// Serialize n-1 pre-prepare copies onto the wire.
	perBatch += time.Duration(p.N-1) * time.Duration(batch*a+p.Header) * p.CommPerByte
	perBatch += time.Duration(quorum.MatchingPrepares(f)) * p.authVerify(pk) // prepares in
	perBatch += p.authGen(pk)                                                // commit auth
	perBatch += time.Duration(quorum.Strong(f)) * p.authVerify(pk)           // commits in
	perBatch += β * p.Execute                                                // execution
	perBatch += β * (p.digest(b) + p.MACOp +
		time.Duration(b+p.Header)*p.CommPerByte) // replies
	if perBatch <= 0 {
		return 0
	}
	return float64(batch) / perBatch.Seconds()
}

// ThroughputReadOnly predicts read-only throughput (§7.4.1): every replica
// serves reads independently, so aggregate capacity is n times one
// replica's rate, but each replica must verify and answer every client's
// request (quorum of 2f+1 needed), giving n/(2f+1) effective parallelism.
func (p Params) ThroughputReadOnly(a, b int, pk bool) float64 {
	per := p.authVerify(pk) + p.digest(a) + p.Execute +
		p.digest(b) + p.MACOp + time.Duration(b+p.Header)*p.CommPerByte
	if per <= 0 {
		return 0
	}
	single := 1 / per.Seconds()
	return single * float64(p.N) / float64(quorum.Strong(p.F()))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Calibrate measures the component costs on this host and network
// configuration (§8.2's "performance model parameters").
func Calibrate(n int, link simnet.LinkConfig) Params {
	p := Params{N: n, Header: 96}

	// Digest: measure SHA-256 on 0 and 4096 bytes.
	small := make([]byte, 64)
	big := make([]byte, 4096)
	p.DigestFixed = timeOp(2000, func() { crypto.DigestOf(small) })
	d4k := timeOp(2000, func() { crypto.DigestOf(big) })
	if d4k > p.DigestFixed {
		p.DigestPerByte = (d4k - p.DigestFixed) / 4032
	}

	// MAC over a fixed-size header.
	key := crypto.DeriveKey("calibrate", 0, 1)
	hdr := make([]byte, 96)
	p.MACOp = timeOp(2000, func() { crypto.ComputeMAC(key, hdr) })

	// Signatures.
	kp := crypto.GenerateKeyPair([]byte("calibrate"))
	sig := kp.Sign(hdr)
	p.SigGen = timeOp(200, func() { kp.Sign(hdr) })
	p.SigVerify = timeOp(200, func() { crypto.Verify(kp.Public, hdr, sig) })

	// Communication: measure an in-process round trip on a probe network
	// with the same link model, then halve it.
	p.CommFixed, p.CommPerByte = measureComm(link)
	p.Execute = 200 * time.Nanosecond
	return p
}

func timeOp(iters int, f func()) time.Duration {
	f() // warm up
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	return time.Since(start) / time.Duration(iters)
}

// measureComm times round trips for small and large payloads over a probe
// simnet with the given link model.
func measureComm(link simnet.LinkConfig) (fixed, perByte time.Duration) {
	net := simnet.New(simnet.WithSeed(1), simnet.WithDefaults(link))
	defer net.Close()
	pong := make(chan int, 1)
	var echo transport.Transport
	echo = net.Attach(message.NodeID(1), func(b []byte) {
		echo.Send(0, b)
	})
	var ping transport.Transport
	ping = net.Attach(message.NodeID(0), func(b []byte) {
		pong <- len(b)
	})

	rtt := func(size, iters int) time.Duration {
		buf := make([]byte, size)
		// warm up
		ping.Send(1, buf)
		<-pong
		start := time.Now()
		for i := 0; i < iters; i++ {
			ping.Send(1, buf)
			<-pong
		}
		return time.Since(start) / time.Duration(iters)
	}
	smallRT := rtt(64, 200)
	bigRT := rtt(4096, 200)
	fixed = smallRT / 2
	if bigRT > smallRT {
		perByte = (bigRT - smallRT) / (2 * 4032)
	}
	return fixed, perByte
}
