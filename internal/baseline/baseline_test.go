package baseline

import (
	"testing"
	"time"

	"repro/internal/kvservice"
	"repro/internal/message"
	"repro/internal/simnet"
)

func newPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	net := simnet.New(simnet.WithSeed(3))
	t.Cleanup(net.Close)
	srv := NewServer(net, kvservice.MinStateSize, 4096, kvservice.Factory)
	srv.Start()
	t.Cleanup(srv.Stop)
	cl := NewClient(message.ClientIDBase, net)
	t.Cleanup(cl.Close)
	return srv, cl
}

func TestBaselineInvoke(t *testing.T) {
	_, cl := newPair(t)
	for i := 1; i <= 5; i++ {
		res, err := cl.Invoke(kvservice.Incr(), false)
		if err != nil {
			t.Fatal(err)
		}
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d -> %d", i, got)
		}
	}
	res, err := cl.Invoke(kvservice.Get(), true)
	if err != nil || kvservice.DecodeU64(res) != 5 {
		t.Fatalf("get: %v %d", err, kvservice.DecodeU64(res))
	}
}

func TestBaselineExactlyOnceUnderLoss(t *testing.T) {
	net := simnet.New(simnet.WithSeed(9), simnet.WithDefaults(simnet.LinkConfig{LossRate: 0.3}))
	t.Cleanup(net.Close)
	srv := NewServer(net, kvservice.MinStateSize, 4096, kvservice.Factory)
	srv.Start()
	t.Cleanup(srv.Stop)
	cl := NewClient(message.ClientIDBase, net)
	t.Cleanup(cl.Close)
	cl.RetryTimeout = 30 * time.Millisecond
	cl.MaxRetries = 30

	for i := 1; i <= 10; i++ {
		res, err := cl.Invoke(kvservice.Incr(), false)
		if err != nil {
			t.Fatal(err)
		}
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d -> %d (retransmission double-executed)", i, got)
		}
	}
}

func TestBaselineConcurrentClients(t *testing.T) {
	net := simnet.New(simnet.WithSeed(4))
	t.Cleanup(net.Close)
	srv := NewServer(net, kvservice.MinStateSize, 4096, kvservice.Factory)
	srv.Start()
	t.Cleanup(srv.Stop)

	const n = 4
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		cl := NewClient(message.ClientIDBase+message.NodeID(i), net)
		t.Cleanup(cl.Close)
		go func() {
			for j := 0; j < 10; j++ {
				if _, err := cl.Invoke(kvservice.Incr(), false); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	cl := NewClient(message.ClientIDBase+100, net)
	t.Cleanup(cl.Close)
	res, err := cl.Invoke(kvservice.Get(), true)
	if err != nil || kvservice.DecodeU64(res) != n*10 {
		t.Fatalf("counter %d, want %d", kvservice.DecodeU64(res), n*10)
	}
}
