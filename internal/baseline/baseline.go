// Package baseline implements NO-REP: the same service, the same transport,
// the same wire messages — but a single unreplicated server. It is the
// baseline the paper compares BFT against (§8.3: "NO-REP ... a simple
// implementation of the same service interface without replication"), and
// the stand-in for the unreplicated NFS of the BFS comparison (§8.6).
package baseline

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/crypto"
	"repro/internal/message"
	"repro/internal/simnet"
	"repro/internal/statemachine"
	"repro/internal/transport"
)

// ServerID is the principal id the baseline server listens on.
const ServerID message.NodeID = 0

// Server is the unreplicated service endpoint.
type Server struct {
	region  *statemachine.Region
	service statemachine.Service
	trans   transport.Transport
	ks      *crypto.KeyStore

	inbox chan []byte
	stopC chan struct{}
	wg    sync.WaitGroup

	// exactly-once cache, like the replicated library's.
	lastTS  map[message.NodeID]uint64
	lastRes map[message.NodeID][]byte
}

// NewServer builds the server with its own service instance.
func NewServer(net *simnet.Network, stateSize, pageSize int,
	svc func(*statemachine.Region) statemachine.Service) *Server {
	s := &Server{
		region:  statemachine.NewRegion(stateSize, pageSize),
		ks:      crypto.NewKeyStore(uint32(ServerID)),
		inbox:   make(chan []byte, 8192),
		stopC:   make(chan struct{}),
		lastTS:  make(map[message.NodeID]uint64),
		lastRes: make(map[message.NodeID][]byte),
	}
	s.service = svc(s.region)
	s.trans = net.Attach(ServerID, func(p []byte) {
		select {
		case s.inbox <- p:
		default:
		}
	})
	return s
}

// Start launches the server loop.
func (s *Server) Start() {
	s.wg.Add(1)
	go s.run()
}

// Stop terminates the server.
func (s *Server) Stop() {
	close(s.stopC)
	s.wg.Wait()
	s.trans.Close()
}

func (s *Server) run() {
	defer s.wg.Done()
	for {
		select {
		case p := <-s.inbox:
			s.onRaw(p)
		case <-s.stopC:
			return
		}
	}
}

func (s *Server) onRaw(p []byte) {
	m, err := message.Unmarshal(p)
	if err != nil {
		return
	}
	req, ok := m.(*message.Request)
	if !ok {
		return
	}
	// Authenticate: the client's vector contains our entry at index 0.
	if k, _ := s.ks.OutKey(uint32(req.Client)); k == nil {
		s.ks.InstallInitial(uint32(req.Client))
	}
	if req.Auth.Kind != message.AuthVector ||
		!s.ks.CheckAuthenticator(uint32(req.Client), req.Payload(), req.Auth.Vector) {
		return
	}

	var result []byte
	if last, ok := s.lastTS[req.Client]; ok && req.Timestamp <= last {
		if req.Timestamp < last {
			return
		}
		result = s.lastRes[req.Client]
	} else {
		result = s.service.Execute(req.Client, req.Op, s.service.ProposeNonDet())
		// The per-client reply cache grows with the executed-client set by
		// design; admission is gated by CheckAuthenticator above, which
		// rejects unknown senders.
		s.lastTS[req.Client] = req.Timestamp // bftlint:allow=bfttaint
		s.lastRes[req.Client] = result       // bftlint:allow=bfttaint
	}

	rep := &message.Reply{
		Timestamp:    req.Timestamp,
		Client:       req.Client,
		Replica:      ServerID,
		HasResult:    true,
		Result:       result,
		ResultDigest: crypto.DigestOf(result),
	}
	rep.Auth = message.Auth{
		Kind: message.AuthMAC,
		MAC:  s.ks.ComputePointMAC(uint32(req.Client), rep.Payload()),
	}
	s.trans.Send(req.Client, rep.Marshal())
}

// Client invokes operations against the baseline server. It satisfies the
// same Invoke contract as the BFT client.
type Client struct {
	id    message.NodeID
	ks    *crypto.KeyStore
	trans transport.Transport

	RetryTimeout time.Duration
	MaxRetries   int

	mu        sync.Mutex
	timestamp uint64
	waiting   map[uint64]chan []byte
}

// NewClient attaches a baseline client.
func NewClient(id message.NodeID, net *simnet.Network) *Client {
	c := &Client{
		id:           id,
		ks:           crypto.NewKeyStore(uint32(id)),
		RetryTimeout: 150 * time.Millisecond,
		MaxRetries:   10,
		waiting:      make(map[uint64]chan []byte),
	}
	c.ks.InstallInitial(uint32(ServerID))
	c.trans = net.Attach(id, c.onRaw)
	return c
}

// Close detaches the client.
func (c *Client) Close() { c.trans.Close() }

func (c *Client) onRaw(p []byte) {
	m, err := message.Unmarshal(p)
	if err != nil {
		return
	}
	rep, ok := m.(*message.Reply)
	if !ok || rep.Client != c.id || rep.Auth.Kind != message.AuthMAC {
		return
	}
	if !c.ks.CheckPointMAC(uint32(ServerID), rep.Payload(), rep.Auth.MAC) {
		return
	}
	if crypto.DigestOf(rep.Result) != rep.ResultDigest {
		return
	}
	c.mu.Lock()
	ch := c.waiting[rep.Timestamp]
	c.mu.Unlock()
	if ch != nil {
		select {
		case ch <- rep.Result:
		default:
		}
	}
}

// Invoke executes one operation (readOnly is accepted for interface parity;
// the baseline treats everything identically).
func (c *Client) Invoke(op []byte, readOnly bool) ([]byte, error) {
	return c.InvokeContext(context.Background(), op, readOnly)
}

// InvokeContext executes one operation with cancellation, satisfying the
// same context-aware invocation contract as the BFT clients (bfs.Invoker):
// the retry loop stops retransmitting and returns ctx.Err() promptly when
// the caller cancels.
func (c *Client) InvokeContext(ctx context.Context, op []byte, readOnly bool) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.timestamp++
	ts := c.timestamp
	ch := make(chan []byte, 1)
	c.waiting[ts] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiting, ts)
		c.mu.Unlock()
	}()

	req := &message.Request{
		Client:    c.id,
		Timestamp: ts,
		Replier:   ServerID,
		Op:        op,
	}
	req.Auth = message.Auth{
		Kind:   message.AuthVector,
		Vector: c.ks.MakeAuthenticator(1, req.Payload()),
	}
	raw := req.Marshal()

	timeout := c.RetryTimeout
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for attempt := 0; attempt <= c.MaxRetries; attempt++ {
		c.trans.Send(ServerID, raw)
		select {
		case res := <-ch:
			return res, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-timer.C:
			timeout *= 2
			timer.Reset(timeout)
		}
	}
	return nil, errors.New("baseline: request timed out")
}
