// Package vlog implements the replica's message log: per-sequence-number
// slots that accumulate pre-prepare/prepare/commit messages and decide when
// quorum certificates are complete (§2.3.1), the water-mark window that
// bounds the log (§2.3.4), and the request store that keeps request bodies
// alive until they execute or are garbage collected.
package vlog

import (
	"repro/internal/crypto"
	"repro/internal/message"
	"repro/internal/quorum"
)

// certVote records one replica's prepare/commit for a slot; the vote only
// counts while it matches the slot's accepted pre-prepare.
type certVote struct {
	view   message.View
	digest crypto.Digest
}

// Slot tracks the three-phase state of one sequence number in the current
// view. Votes that arrive before the pre-prepare are buffered and counted
// once the pre-prepare fixes the (view, digest) pair.
type Slot struct {
	Seq message.Seq

	// View and Digest are set when a pre-prepare is accepted, or when a
	// new-view message fixes the slot's batch digest before the body is
	// available (HasDigest distinguishes "digest known" from "body held").
	View       message.View
	Digest     crypto.Digest
	HasDigest  bool
	PrePrepare *message.PrePrepare

	// PrePrepared records that this replica sent a pre-prepare or prepare
	// for the slot (the paper's "pre-prepared at i" predicate, feeding Q).
	PrePrepared bool

	// SentPrepare/SentCommit dedupe this replica's own protocol sends.
	SentPrepare bool
	SentCommit  bool

	prepares map[message.NodeID]certVote
	commits  map[message.NodeID]certVote

	// Prepared/CommittedLocal latch once true (within the view).
	Prepared       bool
	CommittedLocal bool

	// Executed states.
	ExecutedTentative bool
	Executed          bool
}

func newSlot(seq message.Seq) *Slot {
	return &Slot{
		Seq:      seq,
		prepares: make(map[message.NodeID]certVote),
		commits:  make(map[message.NodeID]certVote),
	}
}

// AddPrePrepare installs the accepted pre-prepare, fixing (view, digest).
func (s *Slot) AddPrePrepare(pp *message.PrePrepare) {
	s.View = pp.View
	s.Digest = pp.BatchDigest()
	s.HasDigest = true
	s.PrePrepare = pp
}

// AddDigestOnly fixes (view, digest) from a new-view decision before the
// batch body is available.
func (s *Slot) AddDigestOnly(v message.View, d crypto.Digest) {
	s.View = v
	s.Digest = d
	s.HasDigest = true
}

// AddPrepare records a prepare vote from a replica.
func (s *Slot) AddPrepare(from message.NodeID, view message.View, digest crypto.Digest) {
	s.prepares[from] = certVote{view, digest}
}

// AddCommit records a commit vote from a replica.
func (s *Slot) AddCommit(from message.NodeID, view message.View, digest crypto.Digest) {
	s.commits[from] = certVote{view, digest}
}

// PrepareCount counts prepare votes matching the accepted digest,
// excluding the primary (whose pre-prepare stands for its prepare).
func (s *Slot) PrepareCount(primary message.NodeID) int {
	if !s.HasDigest {
		return 0
	}
	n := 0
	for from, v := range s.prepares {
		if from != primary && v.view == s.View && v.digest == s.Digest {
			n++
		}
	}
	return n
}

// CommitCount counts commit votes matching the accepted digest.
func (s *Slot) CommitCount() int {
	if !s.HasDigest {
		return 0
	}
	n := 0
	for _, v := range s.commits {
		if v.view == s.View && v.digest == s.Digest {
			n++
		}
	}
	return n
}

// CommitDigestCount counts commit votes for (view, digest) regardless of
// whether a pre-prepare is present (used to detect falling behind: 2f+1
// commits prove correctness of the digest).
func (s *Slot) CommitDigestCount(view message.View, digest crypto.Digest) int {
	n := 0
	for _, v := range s.commits {
		if v.view == view && v.digest == digest {
			n++
		}
	}
	return n
}

// PrepareDigestCount counts prepare votes for digest in the slot's view
// (request-authentication condition 2 of §3.2.2 uses f such votes).
func (s *Slot) PrepareDigestCount(digest crypto.Digest) int {
	n := 0
	for _, v := range s.prepares {
		if v.digest == digest {
			n++
		}
	}
	return n
}

// Log is the bounded message log of one replica.
type Log struct {
	n       int
	f       int         //bftlint:faultbound
	logSize message.Seq // L: window width in sequence numbers

	low   message.Seq // h: last stable checkpoint
	slots map[message.Seq]*Slot

	// requests maps request digest -> request body, retained until GC.
	requests map[crypto.Digest]*message.Request
	// executedBelow tracks request digests whose execution is reflected at
	// or below the last stable checkpoint (clearable at GC).
	reqSeq map[crypto.Digest]message.Seq
}

// New creates a log for n=3f+1 replicas with the given window size.
func New(n int, logSize message.Seq) *Log {
	return &Log{
		n:        n,
		f:        quorum.F(n),
		logSize:  logSize,
		slots:    make(map[message.Seq]*Slot),
		requests: make(map[crypto.Digest]*message.Request),
		reqSeq:   make(map[crypto.Digest]message.Seq),
	}
}

// F returns the fault threshold.
//
//bftlint:faultbound
func (l *Log) F() int { return l.f }

// Quorum returns the quorum certificate size, 2f+1.
//
//bftlint:threshold
func (l *Log) Quorum() int { return quorum.Strong(l.f) }

// Weak returns the weak certificate size, f+1.
//
//bftlint:threshold
func (l *Log) Weak() int { return quorum.Weak(l.f) }

// Low returns the low water mark h.
func (l *Log) Low() message.Seq { return l.low }

// High returns the high water mark H = h + L.
func (l *Log) High() message.Seq { return l.low + l.logSize }

// LogSize returns L.
func (l *Log) LogSize() message.Seq { return l.logSize }

// InWindow reports h < seq <= H (§2.3.3's in-w predicate).
func (l *Log) InWindow(seq message.Seq) bool {
	return seq > l.low && seq <= l.High()
}

// Slot returns the slot for seq, creating it if within the window.
func (l *Log) Slot(seq message.Seq) *Slot {
	if s, ok := l.slots[seq]; ok {
		return s
	}
	if !l.InWindow(seq) {
		return nil
	}
	s := newSlot(seq)
	l.slots[seq] = s
	return s
}

// Peek returns the slot for seq only if it already exists.
func (l *Log) Peek(seq message.Seq) (*Slot, bool) {
	s, ok := l.slots[seq]
	return s, ok
}

// CheckPrepared updates and returns the slot's prepared flag: pre-prepare
// plus 2f matching prepares (§2.3.3).
func (l *Log) CheckPrepared(s *Slot, primary message.NodeID) bool {
	if s.Prepared {
		return true
	}
	if s.HasDigest && s.PrepareCount(primary) >= quorum.MatchingPrepares(l.f) {
		s.Prepared = true
	}
	return s.Prepared
}

// CheckCommitted updates and returns committed-local: prepared plus a quorum
// of matching commits (§2.3.3).
func (l *Log) CheckCommitted(s *Slot, primary message.NodeID) bool {
	if s.CommittedLocal {
		return true
	}
	if l.CheckPrepared(s, primary) && s.CommitCount() >= l.Quorum() {
		s.CommittedLocal = true
	}
	return s.CommittedLocal
}

// AdvanceLow moves the low water mark to stable (a new stable checkpoint)
// and discards slots at or below it (§2.3.4). It returns the sequence
// numbers discarded.
//
// Request bodies executed at or below the checkpoint are garbage collected
// unless still referenced above it: a client retransmission can cause the
// primary to assign one request to a second, higher sequence number, and
// the body must survive until that slot executes (its execution dedupes on
// the timestamp, but the batch cannot be processed without the body).
func (l *Log) AdvanceLow(stable message.Seq) []message.Seq {
	if stable <= l.low {
		return nil
	}
	l.low = stable
	var dropped []message.Seq
	for seq := range l.slots {
		if seq <= stable {
			dropped = append(dropped, seq)
			delete(l.slots, seq)
		}
	}
	// Pin digests referenced by surviving slots' batches.
	pinned := make(map[crypto.Digest]struct{})
	for _, s := range l.slots {
		if s.PrePrepare == nil {
			continue
		}
		for i := range s.PrePrepare.Inline {
			pinned[s.PrePrepare.Inline[i].Digest()] = struct{}{}
		}
		for _, d := range s.PrePrepare.Digests {
			pinned[d] = struct{}{}
		}
	}
	for d, seq := range l.reqSeq {
		if seq != 0 && seq <= stable {
			if _, ok := pinned[d]; ok {
				continue
			}
			delete(l.requests, d)
			delete(l.reqSeq, d)
		}
	}
	return dropped
}

// Reset clears every slot (used when a recovering replica discards
// potentially corrupt protocol state). The request store survives.
func (l *Log) Reset(low message.Seq) {
	l.low = low
	l.slots = make(map[message.Seq]*Slot)
}

// StoreRequest retains a request body.
func (l *Log) StoreRequest(req *message.Request) {
	d := req.Digest()
	if _, ok := l.requests[d]; !ok {
		l.requests[d] = req
		l.reqSeq[d] = 0
	}
}

// Request returns the stored request with the given digest.
func (l *Log) Request(d crypto.Digest) (*message.Request, bool) {
	r, ok := l.requests[d]
	return r, ok
}

// HasRequest reports whether the body of d is available.
func (l *Log) HasRequest(d crypto.Digest) bool {
	_, ok := l.requests[d]
	return ok
}

// MarkRequestExecuted binds a request digest to the sequence number whose
// execution covered it, making it GC-able once that seq is stable.
func (l *Log) MarkRequestExecuted(d crypto.Digest, seq message.Seq) {
	if _, ok := l.requests[d]; ok {
		l.reqSeq[d] = seq
	}
}

// UnmarkExecutedAbove clears execution marks above seq. It must be called
// whenever execution rolls back (tentative aborts at a view change, state
// transfer regressions): a request tentatively executed at one sequence
// number may be reassigned to a higher one in the new view, and its body
// must not be garbage collected before it re-executes.
func (l *Log) UnmarkExecutedAbove(seq message.Seq) {
	for d, s := range l.reqSeq {
		if s > seq {
			l.reqSeq[d] = 0
		}
	}
}

// RequestCount returns the number of retained request bodies.
func (l *Log) RequestCount() int { return len(l.requests) }

// Slots iterates over existing slots in an unspecified order.
func (l *Log) Slots(f func(*Slot)) {
	for _, s := range l.slots {
		f(s)
	}
}

// SlotCount returns the number of live slots.
func (l *Log) SlotCount() int { return len(l.slots) }
