package vlog

import (
	"testing"
	"testing/quick"

	"repro/internal/crypto"
	"repro/internal/message"
)

func pp(view message.View, seq message.Seq, body string) *message.PrePrepare {
	return &message.PrePrepare{
		View: view, Seq: seq,
		Digests: []crypto.Digest{crypto.DigestOf([]byte(body))},
		Replica: 0,
	}
}

func TestQuorumArithmetic(t *testing.T) {
	cases := []struct{ n, f, q, w int }{
		{4, 1, 3, 2}, {7, 2, 5, 3}, {10, 3, 7, 4}, {13, 4, 9, 5},
	}
	for _, c := range cases {
		l := New(c.n, 128)
		if l.F() != c.f || l.Quorum() != c.q || l.Weak() != c.w {
			t.Fatalf("n=%d: f=%d q=%d w=%d", c.n, l.F(), l.Quorum(), l.Weak())
		}
	}
}

func TestWaterMarks(t *testing.T) {
	l := New(4, 16)
	if l.Low() != 0 || l.High() != 16 {
		t.Fatalf("initial marks %d/%d", l.Low(), l.High())
	}
	if l.InWindow(0) {
		t.Fatal("0 must be outside (h, H]")
	}
	if !l.InWindow(1) || !l.InWindow(16) {
		t.Fatal("1 and 16 must be inside")
	}
	if l.InWindow(17) {
		t.Fatal("17 must be outside")
	}
	l.AdvanceLow(8)
	if l.InWindow(8) || !l.InWindow(9) || !l.InWindow(24) || l.InWindow(25) {
		t.Fatal("window after advance wrong")
	}
}

func TestSlotCreationRespectsWindow(t *testing.T) {
	l := New(4, 8)
	if l.Slot(0) != nil {
		t.Fatal("slot 0 created below low mark")
	}
	if l.Slot(9) != nil {
		t.Fatal("slot beyond high mark created")
	}
	s := l.Slot(5)
	if s == nil || s.Seq != 5 {
		t.Fatal("slot 5 not created")
	}
	if s2 := l.Slot(5); s2 != s {
		t.Fatal("slot not cached")
	}
}

func TestPreparedCertificate(t *testing.T) {
	l := New(4, 16) // f=1: need pre-prepare + 2 matching prepares
	s := l.Slot(1)
	p := pp(0, 1, "batch")
	d := p.BatchDigest()
	s.AddPrePrepare(p)

	if l.CheckPrepared(s, 0) {
		t.Fatal("prepared with no prepares")
	}
	s.AddPrepare(1, 0, d)
	if l.CheckPrepared(s, 0) {
		t.Fatal("prepared with one prepare (need 2f)")
	}
	s.AddPrepare(2, 0, d)
	if !l.CheckPrepared(s, 0) {
		t.Fatal("not prepared with 2f matching prepares")
	}
}

func TestPreparesFromPrimaryDoNotCount(t *testing.T) {
	l := New(4, 16)
	s := l.Slot(1)
	p := pp(0, 1, "b")
	d := p.BatchDigest()
	s.AddPrePrepare(p)
	s.AddPrepare(0, 0, d) // primary's prepare must not count
	s.AddPrepare(1, 0, d)
	if l.CheckPrepared(s, 0) {
		t.Fatal("prepared counting the primary's prepare")
	}
	s.AddPrepare(2, 0, d)
	if !l.CheckPrepared(s, 0) {
		t.Fatal("not prepared")
	}
}

func TestMismatchedPreparesDoNotCount(t *testing.T) {
	l := New(4, 16)
	s := l.Slot(1)
	p := pp(0, 1, "good")
	s.AddPrePrepare(p)
	bad := crypto.DigestOf([]byte("evil"))
	s.AddPrepare(1, 0, bad)
	s.AddPrepare(2, 0, bad)
	s.AddPrepare(3, 0, bad)
	if l.CheckPrepared(s, 0) {
		t.Fatal("prepared from mismatched digests")
	}
	// Wrong view must not count either.
	d := p.BatchDigest()
	s.AddPrepare(1, 1, d)
	s.AddPrepare(2, 1, d)
	if l.CheckPrepared(s, 0) {
		t.Fatal("prepared from wrong-view prepares")
	}
}

func TestCommittedCertificate(t *testing.T) {
	l := New(4, 16)
	s := l.Slot(1)
	p := pp(0, 1, "b")
	d := p.BatchDigest()
	s.AddPrePrepare(p)
	s.AddPrepare(1, 0, d)
	s.AddPrepare(2, 0, d)
	s.AddCommit(0, 0, d)
	s.AddCommit(1, 0, d)
	if l.CheckCommitted(s, 0) {
		t.Fatal("committed with 2 commits (need 2f+1)")
	}
	s.AddCommit(2, 0, d)
	if !l.CheckCommitted(s, 0) {
		t.Fatal("not committed with quorum of commits")
	}
}

func TestCommitsBufferedBeforePrePrepare(t *testing.T) {
	// Votes arriving before the pre-prepare must count once it lands.
	l := New(4, 16)
	s := l.Slot(2)
	p := pp(0, 2, "late")
	d := p.BatchDigest()
	s.AddPrepare(1, 0, d)
	s.AddPrepare(2, 0, d)
	s.AddCommit(1, 0, d)
	s.AddCommit(2, 0, d)
	s.AddCommit(3, 0, d)
	if l.CheckCommitted(s, 0) {
		t.Fatal("committed without a digest fixed")
	}
	s.AddPrePrepare(p)
	if !l.CheckCommitted(s, 0) {
		t.Fatal("buffered votes did not count after pre-prepare")
	}
}

func TestVoteOverwritePerReplica(t *testing.T) {
	// A replica's second (conflicting) vote replaces the first: at most one
	// vote per replica counts.
	l := New(4, 16)
	s := l.Slot(1)
	p := pp(0, 1, "b")
	d := p.BatchDigest()
	s.AddPrePrepare(p)
	s.AddPrepare(1, 0, d)
	s.AddPrepare(1, 0, crypto.DigestOf([]byte("other"))) // overwrite
	if s.PrepareCount(0) != 0 {
		t.Fatalf("prepare count %d after overwrite, want 0", s.PrepareCount(0))
	}
}

func TestAddDigestOnly(t *testing.T) {
	l := New(4, 16)
	s := l.Slot(3)
	d := crypto.DigestOf([]byte("from-new-view"))
	s.AddDigestOnly(2, d)
	if !s.HasDigest || s.PrePrepare != nil {
		t.Fatal("digest-only install wrong")
	}
	// Primary of view 2 (replica 2) does not send prepares; votes come from
	// other backups.
	s.AddPrepare(1, 2, d)
	s.AddPrepare(3, 2, d)
	if !l.CheckPrepared(s, 2) {
		t.Fatal("digest-only slot cannot prepare")
	}
}

func TestAdvanceLowDiscardsSlots(t *testing.T) {
	l := New(4, 16)
	for seq := message.Seq(1); seq <= 10; seq++ {
		l.Slot(seq)
	}
	dropped := l.AdvanceLow(5)
	if len(dropped) != 5 {
		t.Fatalf("dropped %d slots, want 5", len(dropped))
	}
	if _, ok := l.Peek(3); ok {
		t.Fatal("discarded slot still present")
	}
	if _, ok := l.Peek(6); !ok {
		t.Fatal("retained slot missing")
	}
	if l.AdvanceLow(5) != nil {
		t.Fatal("re-advancing to same mark dropped slots")
	}
}

func TestRequestStoreGC(t *testing.T) {
	l := New(4, 16)
	req := &message.Request{Client: message.ClientIDBase, Timestamp: 1, Op: []byte("x")}
	d := req.Digest()
	l.StoreRequest(req)
	if !l.HasRequest(d) {
		t.Fatal("stored request missing")
	}
	l.MarkRequestExecuted(d, 3)
	l.AdvanceLow(2)
	if !l.HasRequest(d) {
		t.Fatal("request GC'd before its checkpoint")
	}
	l.AdvanceLow(3)
	if l.HasRequest(d) {
		t.Fatal("request not GC'd after stable checkpoint covers it")
	}
}

func TestUnexecutedRequestSurvivesGC(t *testing.T) {
	l := New(4, 16)
	req := &message.Request{Client: message.ClientIDBase, Timestamp: 9, Op: []byte("pending")}
	l.StoreRequest(req)
	l.AdvanceLow(10)
	if !l.HasRequest(req.Digest()) {
		t.Fatal("pending request was GC'd")
	}
}

func TestResetKeepsRequests(t *testing.T) {
	l := New(4, 16)
	l.Slot(1)
	l.Slot(2)
	req := &message.Request{Client: message.ClientIDBase, Timestamp: 1, Op: []byte("x")}
	l.StoreRequest(req)
	l.Reset(0)
	if l.SlotCount() != 0 {
		t.Fatal("slots survive reset")
	}
	if !l.HasRequest(req.Digest()) {
		t.Fatal("request store cleared by reset")
	}
}

func TestPrepareDigestCount(t *testing.T) {
	l := New(7, 16)
	s := l.Slot(1)
	d := crypto.DigestOf([]byte("b"))
	for i := 1; i <= 3; i++ {
		s.AddPrepare(message.NodeID(i), 0, d)
	}
	if s.PrepareDigestCount(d) != 3 {
		t.Fatalf("digest count %d", s.PrepareDigestCount(d))
	}
	if s.PrepareDigestCount(crypto.DigestOf([]byte("z"))) != 0 {
		t.Fatal("count for absent digest")
	}
}

func TestCommitDigestCount(t *testing.T) {
	l := New(4, 16)
	s := l.Slot(1)
	d := crypto.DigestOf([]byte("b"))
	s.AddCommit(1, 3, d)
	s.AddCommit(2, 3, d)
	if s.CommitDigestCount(3, d) != 2 {
		t.Fatal("commit digest count wrong")
	}
	if s.CommitDigestCount(2, d) != 0 {
		t.Fatal("wrong-view commits counted")
	}
}

// Property: for any set of votes, prepared implies >= 2f matching prepares
// from non-primary replicas, and committed implies prepared plus >= 2f+1
// matching commits — the certificate definitions themselves.
func TestCertificateSoundnessQuick(t *testing.T) {
	f := func(votes []uint8, commits []uint8) bool {
		l := New(4, 16)
		s := l.Slot(1)
		p := pp(0, 1, "b")
		d := p.BatchDigest()
		s.AddPrePrepare(p)
		good := crypto.DigestOf([]byte("bad"))
		for _, v := range votes {
			replica := message.NodeID(v % 4)
			dig := d
			if v%3 == 0 {
				dig = good
			}
			s.AddPrepare(replica, 0, dig)
		}
		for _, v := range commits {
			replica := message.NodeID(v % 4)
			dig := d
			if v%5 == 0 {
				dig = good
			}
			s.AddCommit(replica, 0, dig)
		}
		prepared := l.CheckPrepared(s, 0)
		if prepared != (s.PrepareCount(0) >= 2) {
			return false
		}
		committed := l.CheckCommitted(s, 0)
		if committed && (!prepared || s.CommitCount() < 3) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
