package message

import (
	"testing"

	"repro/internal/crypto"
)

func benchPP() *PrePrepare {
	pp := &PrePrepare{View: 3, Seq: 1000, Replica: 0, NonDet: make([]byte, 8)}
	for i := 0; i < 8; i++ {
		pp.Inline = append(pp.Inline, Request{
			Client:    ClientIDBase + NodeID(i),
			Timestamp: uint64(i),
			Replier:   NoNode,
			Op:        make([]byte, 100),
			Auth: Auth{Kind: AuthVector, Vector: crypto.Authenticator{
				MACs: make([]crypto.MAC, 4)}},
		})
	}
	return pp
}

func BenchmarkMarshalPrePrepare(b *testing.B) {
	pp := benchPP()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = pp.Marshal()
	}
}

func BenchmarkUnmarshalPrePrepare(b *testing.B) {
	raw := benchPP().Marshal()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalPrepare(b *testing.B) {
	p := &Prepare{View: 1, Seq: 2, Replica: 3,
		Auth: Auth{Kind: AuthVector, Vector: crypto.Authenticator{MACs: make([]crypto.MAC, 4)}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Marshal()
	}
}

func BenchmarkBatchDigest16(b *testing.B) {
	ds := make([]crypto.Digest, 16)
	for i := range ds {
		ds[i] = crypto.DigestOf([]byte{byte(i)})
	}
	for i := 0; i < b.N; i++ {
		_ = BatchDigest(ds, nil)
	}
}
