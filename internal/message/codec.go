// Package message defines every wire message of the BFT protocol family
// (BFT-PK, BFT, BFT-PR) together with a compact hand-rolled binary codec.
//
// The layout follows Figure 6-1 of the thesis in spirit: a one-byte type tag,
// a fixed type-specific header, a variable payload, and an authentication
// trailer (authenticator, point-to-point MAC, or signature). Marshal always
// produces body||auth so that the authentication payload of a message is
// exactly the body prefix, mirroring the thesis's "MACs are computed only
// over the fixed-size header" optimization at the granularity we need.
package message

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/crypto"
)

// ErrTruncated is returned when decoding runs out of bytes.
var ErrTruncated = errors.New("message: truncated encoding")

// ErrBadTag is returned when the type tag is unknown.
var ErrBadTag = errors.New("message: unknown type tag")

// maxSliceLen bounds decoded slice lengths to keep a malicious peer from
// causing huge allocations (a §5.5 denial-of-service defense).
const maxSliceLen = 1 << 26

// writer is an append-only encoder.
type writer struct{ b []byte }

func newWriter(sizeHint int) *writer { return &writer{b: make([]byte, 0, sizeHint)} }

func (w *writer) u8(v uint8)   { w.b = append(w.b, v) }
func (w *writer) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) digest(d crypto.Digest) { w.b = append(w.b, d[:]...) }
func (w *writer) mac(m crypto.MAC)       { w.b = append(w.b, m[:]...) }

// bytes writes a length-prefixed byte slice.
func (w *writer) bytes(p []byte) {
	w.u32(uint32(len(p)))
	w.b = append(w.b, p...)
}

// AppendPayload appends m's body — the exact bytes MACs and signatures
// cover, identical to Payload() — to dst and returns the extended slice.
// It exists for the egress pipeline, whose workers encode into pooled wire
// buffers instead of allocating per message.
func AppendPayload(dst []byte, m Message) []byte {
	w := &writer{b: dst}
	m.(bodyCodec).marshalBody(w)
	return w.b
}

// AppendAuth appends an authentication trailer to dst and returns the
// extended slice. AppendPayload followed by AppendAuth produces the same
// bytes as Marshal, but with a caller-chosen trailer: egress workers seal
// messages without writing into the (event-loop-owned) message object.
func AppendAuth(dst []byte, a *Auth) []byte {
	w := &writer{b: dst}
	a.marshal(w)
	return w.b
}

// reader is a sticky-error decoder.
type reader struct {
	b   []byte
	off int
	err error
}

func newReader(b []byte) *reader { return &reader{b: b} }

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) bool() bool { return r.u8() != 0 }

func (r *reader) digest() crypto.Digest {
	var d crypto.Digest
	if r.err != nil || r.off+crypto.DigestSize > len(r.b) {
		r.fail()
		return d
	}
	copy(d[:], r.b[r.off:])
	r.off += crypto.DigestSize
	return d
}

func (r *reader) mac() crypto.MAC {
	var m crypto.MAC
	if r.err != nil || r.off+crypto.MACSize > len(r.b) {
		r.fail()
		return m
	}
	copy(m[:], r.b[r.off:])
	r.off += crypto.MACSize
	return m
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n < 0 || n > maxSliceLen || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	p := make([]byte, n)
	copy(p, r.b[r.off:])
	r.off += n
	return p
}

// sliceLen reads and validates a count of fixed-size records.
func (r *reader) sliceLen(recordSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || recordSize <= 0 || n > maxSliceLen/recordSize || r.off+n*recordSize > len(r.b) {
		r.fail()
		return 0
	}
	return n
}

// remaining returns the undecoded suffix.
func (r *reader) remaining() []byte { return r.b[r.off:] }

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("message: %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}
