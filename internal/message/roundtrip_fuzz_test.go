package message

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalRoundTrip feeds arbitrary bytes to the codec. Whatever
// decodes must re-encode to a fixed point: Marshal(Unmarshal(b)) decodes
// again and re-encodes identically. This pins both directions of every
// message codec against drift (the bftwire analyzer checks field coverage
// statically; this checks the byte-level encodings dynamically).
func FuzzUnmarshalRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Request{Client: ClientIDBase, Timestamp: 9, Replier: NoNode,
		Op: []byte("operation")}).Marshal())
	f.Add((&PrePrepare{View: 3, Seq: 17, Replica: 1,
		Inline: []Request{{Client: ClientIDBase, Timestamp: 1, Replier: NoNode,
			Op: []byte("op")}}}).Marshal())
	f.Add((&Reply{View: 1, Timestamp: 4, Client: ClientIDBase, Replica: 2,
		HasResult: true, Result: []byte("r")}).Marshal())
	f.Add((&Checkpoint{Seq: 128, Replica: 0}).Marshal())
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Unmarshal(b)
		if err != nil {
			return
		}
		b2 := m.Marshal()
		m2, err := Unmarshal(b2)
		if err != nil {
			t.Fatalf("re-encode of decoded message does not decode: %v", err)
		}
		if b3 := m2.Marshal(); !bytes.Equal(b2, b3) {
			t.Fatalf("Marshal/Unmarshal not a fixed point:\n first %x\nsecond %x", b2, b3)
		}
	})
}
