package message

import (
	"repro/internal/crypto"
)

// PInfo is one entry of a view-change message's P component (§3.2.4): the
// sender collected a prepared certificate for the request with digest Digest
// at sequence number Seq in view View, and nothing prepared later.
type PInfo struct {
	Seq    Seq
	Digest crypto.Digest
	View   View
}

// DV pairs a request digest with the last view in which it pre-prepared.
type DV struct {
	Digest crypto.Digest
	View   View
}

// QInfo is one entry of the Q component (§3.2.4): for sequence number Seq,
// each (digest, view) pair records the latest view in which a request with
// that digest pre-prepared at the sender.
type QInfo struct {
	Seq     Seq
	Entries []DV
}

// CkptInfo pairs a checkpoint sequence number with its state digest
// (the C component).
type CkptInfo struct {
	Seq    Seq
	Digest crypto.Digest
}

// ViewChange is ⟨VIEW-CHANGE, v+1, h, C, P, Q, i⟩ (§3.2.4). H is the
// sequence number of the sender's last stable checkpoint.
type ViewChange struct {
	NewView View
	H       Seq
	Ckpts   []CkptInfo
	P       []PInfo
	Q       []QInfo
	Replica NodeID
	Auth    Auth
}

// Digest identifies the view-change message for acks and new-view
// certificates. It covers the body (not the authenticator).
func (m *ViewChange) Digest() crypto.Digest {
	return crypto.DigestOf(m.Payload())
}

// PEntry returns the P entry for seq, if any.
func (m *ViewChange) PEntry(seq Seq) (PInfo, bool) {
	for _, p := range m.P {
		if p.Seq == seq {
			return p, true
		}
	}
	return PInfo{}, false
}

// QEntry returns the Q entry for seq, if any.
func (m *ViewChange) QEntry(seq Seq) (QInfo, bool) {
	for _, q := range m.Q {
		if q.Seq == seq {
			return q, true
		}
	}
	return QInfo{}, false
}

// MsgType implements Message.
func (m *ViewChange) MsgType() Type { return TViewChange }

// Sender implements Message.
func (m *ViewChange) Sender() NodeID { return m.Replica }

// AuthTrailer implements Message.
func (m *ViewChange) AuthTrailer() *Auth { return &m.Auth }

// Marshal implements Message.
func (m *ViewChange) Marshal() []byte { return marshalMsg(m, 512) }

// Payload implements Message.
func (m *ViewChange) Payload() []byte { return payloadOf(m, 512) }

func (m *ViewChange) marshalBody(w *writer) {
	w.u8(uint8(TViewChange))
	w.u64(uint64(m.NewView))
	w.u64(uint64(m.H))
	w.u32(uint32(len(m.Ckpts)))
	for _, c := range m.Ckpts {
		w.u64(uint64(c.Seq))
		w.digest(c.Digest)
	}
	w.u32(uint32(len(m.P)))
	for _, p := range m.P {
		w.u64(uint64(p.Seq))
		w.digest(p.Digest)
		w.u64(uint64(p.View))
	}
	w.u32(uint32(len(m.Q)))
	for _, q := range m.Q {
		w.u64(uint64(q.Seq))
		w.u32(uint32(len(q.Entries)))
		for _, e := range q.Entries {
			w.digest(e.Digest)
			w.u64(uint64(e.View))
		}
	}
	w.u32(uint32(m.Replica))
}

func (m *ViewChange) unmarshalBody(r *reader) {
	r.u8()
	m.NewView = View(r.u64())
	m.H = Seq(r.u64())
	nc := r.sliceLen(8 + crypto.DigestSize)
	m.Ckpts = make([]CkptInfo, nc)
	for i := 0; i < nc; i++ {
		m.Ckpts[i].Seq = Seq(r.u64())
		m.Ckpts[i].Digest = r.digest()
	}
	np := r.sliceLen(16 + crypto.DigestSize)
	m.P = make([]PInfo, np)
	for i := 0; i < np; i++ {
		m.P[i].Seq = Seq(r.u64())
		m.P[i].Digest = r.digest()
		m.P[i].View = View(r.u64())
	}
	nq := r.sliceLen(12)
	m.Q = make([]QInfo, 0, min(nq, 4096))
	for i := 0; i < nq && r.err == nil; i++ {
		var q QInfo
		q.Seq = Seq(r.u64())
		ne := r.sliceLen(8 + crypto.DigestSize)
		q.Entries = make([]DV, ne)
		for j := 0; j < ne; j++ {
			q.Entries[j].Digest = r.digest()
			q.Entries[j].View = View(r.u64())
		}
		m.Q = append(m.Q, q)
	}
	m.Replica = NodeID(r.u32())
}

// ViewChangeAck is ⟨VIEW-CHANGE-ACK, v+1, i, j, d⟩ (§3.2.4): replica i tells
// the primary of v+1 that it received a view-change message from j whose
// body digest is d. 2f-1 acks let the primary prove the message's
// authenticity to backups that did not receive it.
type ViewChangeAck struct {
	View     View
	Replica  NodeID // the acker, i
	Source   NodeID // the replica whose view-change is acknowledged, j
	VCDigest crypto.Digest
	Auth     Auth
}

// MsgType implements Message.
func (m *ViewChangeAck) MsgType() Type { return TViewChangeAck }

// Sender implements Message.
func (m *ViewChangeAck) Sender() NodeID { return m.Replica }

// AuthTrailer implements Message.
func (m *ViewChangeAck) AuthTrailer() *Auth { return &m.Auth }

// Marshal implements Message.
func (m *ViewChangeAck) Marshal() []byte { return marshalMsg(m, 96) }

// Payload implements Message.
func (m *ViewChangeAck) Payload() []byte { return payloadOf(m, 96) }

func (m *ViewChangeAck) marshalBody(w *writer) {
	w.u8(uint8(TViewChangeAck))
	w.u64(uint64(m.View))
	w.u32(uint32(m.Replica))
	w.u32(uint32(m.Source))
	w.digest(m.VCDigest)
}

func (m *ViewChangeAck) unmarshalBody(r *reader) {
	r.u8()
	m.View = View(r.u64())
	m.Replica = NodeID(r.u32())
	m.Source = NodeID(r.u32())
	m.VCDigest = r.digest()
}

// VCSummary names one view-change message inside a new-view certificate.
type VCSummary struct {
	Replica  NodeID
	VCDigest crypto.Digest
}

// SeqDigest is one chosen request for the new view: the request with digest
// Digest is pre-prepared at sequence number Seq (ZeroDigest = null request).
type SeqDigest struct {
	Seq    Seq
	Digest crypto.Digest
}

// NewView is ⟨NEW-VIEW, v+1, V, X⟩ (§3.2.4). V identifies the 2f+1
// view-change messages justifying the decision; CkptSeq/CkptDigest select
// the starting checkpoint h; X lists the chosen request for every sequence
// number in (h, h+L] that needs one.
type NewView struct {
	View       View
	V          []VCSummary
	CkptSeq    Seq
	CkptDigest crypto.Digest
	X          []SeqDigest
	Replica    NodeID
	Auth       Auth
}

// Digest identifies the new-view decision (used by not-committed tracking).
func (m *NewView) Digest() crypto.Digest { return crypto.DigestOf(m.Payload()) }

// MsgType implements Message.
func (m *NewView) MsgType() Type { return TNewView }

// Sender implements Message.
func (m *NewView) Sender() NodeID { return m.Replica }

// AuthTrailer implements Message.
func (m *NewView) AuthTrailer() *Auth { return &m.Auth }

// Marshal implements Message.
func (m *NewView) Marshal() []byte { return marshalMsg(m, 512) }

// Payload implements Message.
func (m *NewView) Payload() []byte { return payloadOf(m, 512) }

func (m *NewView) marshalBody(w *writer) {
	w.u8(uint8(TNewView))
	w.u64(uint64(m.View))
	w.u32(uint32(len(m.V)))
	for _, v := range m.V {
		w.u32(uint32(v.Replica))
		w.digest(v.VCDigest)
	}
	w.u64(uint64(m.CkptSeq))
	w.digest(m.CkptDigest)
	w.u32(uint32(len(m.X)))
	for _, x := range m.X {
		w.u64(uint64(x.Seq))
		w.digest(x.Digest)
	}
	w.u32(uint32(m.Replica))
}

func (m *NewView) unmarshalBody(r *reader) {
	r.u8()
	m.View = View(r.u64())
	nv := r.sliceLen(4 + crypto.DigestSize)
	m.V = make([]VCSummary, nv)
	for i := 0; i < nv; i++ {
		m.V[i].Replica = NodeID(r.u32())
		m.V[i].VCDigest = r.digest()
	}
	m.CkptSeq = Seq(r.u64())
	m.CkptDigest = r.digest()
	nx := r.sliceLen(8 + crypto.DigestSize)
	m.X = make([]SeqDigest, nx)
	for i := 0; i < nx; i++ {
		m.X[i].Seq = Seq(r.u64())
		m.X[i].Digest = r.digest()
	}
	m.Replica = NodeID(r.u32())
}
