package message

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/crypto"
)

func randDigest(r *rand.Rand) crypto.Digest {
	var d crypto.Digest
	r.Read(d[:])
	return d
}

func randAuth(r *rand.Rand) Auth {
	switch r.Intn(4) {
	case 0:
		return Auth{Kind: AuthNone}
	case 1:
		macs := make([]crypto.MAC, 4)
		for i := range macs {
			r.Read(macs[i][:])
		}
		return Auth{Kind: AuthVector, Vector: crypto.Authenticator{Epoch: r.Uint32(), MACs: macs}}
	case 2:
		var m crypto.MAC
		r.Read(m[:])
		return Auth{Kind: AuthMAC, MAC: m}
	default:
		sig := make([]byte, crypto.SigSize)
		r.Read(sig)
		return Auth{Kind: AuthSig, Sig: sig}
	}
}

func randBytes(r *rand.Rand, maxLen int) []byte {
	b := make([]byte, r.Intn(maxLen+1))
	r.Read(b)
	return b
}

// roundTrip marshals, unmarshals via the tag dispatcher, and compares.
func roundTrip(t *testing.T, m Message) {
	t.Helper()
	b := m.Marshal()
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("%s: unmarshal: %v", m.MsgType(), err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("%s: round trip mismatch:\n  sent %#v\n  got  %#v", m.MsgType(), m, got)
	}
	// Payload must be a strict prefix of Marshal (body||auth framing).
	p := m.Payload()
	if !bytes.HasPrefix(b, p) {
		t.Fatalf("%s: payload is not a prefix of marshal", m.MsgType())
	}
}

func TestRequestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		m := &Request{
			Client:    ClientIDBase + NodeID(r.Intn(100)),
			Timestamp: r.Uint64(),
			Flags:     uint8(r.Intn(4)),
			Replier:   NodeID(r.Intn(4)),
			Op:        randBytes(r, 300),
			Auth:      randAuth(r),
		}
		roundTrip(t, m)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		m := &Reply{
			View:         View(r.Uint64()),
			Timestamp:    r.Uint64(),
			Client:       ClientIDBase,
			Replica:      NodeID(r.Intn(7)),
			Tentative:    r.Intn(2) == 0,
			HasResult:    r.Intn(2) == 0,
			Result:       randBytes(r, 4096),
			ResultDigest: randDigest(r),
			Auth:         randAuth(r),
		}
		roundTrip(t, m)
	}
}

func TestPrePrepareRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 30; i++ {
		ni := r.Intn(4)
		inline := make([]Request, ni)
		for j := range inline {
			inline[j] = Request{
				Client:    ClientIDBase + NodeID(j),
				Timestamp: r.Uint64(),
				Replier:   NoNode,
				Op:        randBytes(r, 100),
				Auth:      randAuth(r),
			}
		}
		nd := r.Intn(5)
		digests := make([]crypto.Digest, nd)
		for j := range digests {
			digests[j] = randDigest(r)
		}
		m := &PrePrepare{
			View:    View(r.Uint64()),
			Seq:     Seq(r.Uint64()),
			Inline:  inline,
			Digests: digests,
			NonDet:  randBytes(r, 16),
			Replica: NodeID(r.Intn(4)),
			Auth:    randAuth(r),
		}
		roundTrip(t, m)
	}
}

func TestPreparesCommitsCheckpoints(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 30; i++ {
		roundTrip(t, &Prepare{View: View(r.Uint64()), Seq: Seq(r.Uint64()),
			Digest: randDigest(r), Replica: NodeID(r.Intn(4)), Auth: randAuth(r)})
		roundTrip(t, &Commit{View: View(r.Uint64()), Seq: Seq(r.Uint64()),
			Digest: randDigest(r), Replica: NodeID(r.Intn(4)), Auth: randAuth(r)})
		roundTrip(t, &Checkpoint{Seq: Seq(r.Uint64()),
			Digest: randDigest(r), Replica: NodeID(r.Intn(4)), Auth: randAuth(r)})
	}
}

func TestViewChangeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		nc := r.Intn(3)
		ck := make([]CkptInfo, nc)
		for j := range ck {
			ck[j] = CkptInfo{Seq: Seq(r.Uint64()), Digest: randDigest(r)}
		}
		np := r.Intn(4)
		ps := make([]PInfo, np)
		for j := range ps {
			ps[j] = PInfo{Seq: Seq(r.Uint64()), Digest: randDigest(r), View: View(r.Uint64())}
		}
		nq := r.Intn(4)
		qs := make([]QInfo, nq)
		for j := range qs {
			ne := 1 + r.Intn(3)
			es := make([]DV, ne)
			for k := range es {
				es[k] = DV{Digest: randDigest(r), View: View(r.Uint64())}
			}
			qs[j] = QInfo{Seq: Seq(r.Uint64()), Entries: es}
		}
		m := &ViewChange{
			NewView: View(r.Uint64()),
			H:       Seq(r.Uint64()),
			Ckpts:   ck, P: ps, Q: qs,
			Replica: NodeID(r.Intn(7)),
			Auth:    randAuth(r),
		}
		roundTrip(t, m)
	}
}

func TestViewChangeAckNewViewRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 30; i++ {
		roundTrip(t, &ViewChangeAck{View: View(r.Uint64()), Replica: NodeID(r.Intn(4)),
			Source: NodeID(r.Intn(4)), VCDigest: randDigest(r), Auth: randAuth(r)})
		nv := r.Intn(4)
		vs := make([]VCSummary, nv)
		for j := range vs {
			vs[j] = VCSummary{Replica: NodeID(r.Intn(4)), VCDigest: randDigest(r)}
		}
		nx := r.Intn(5)
		xs := make([]SeqDigest, nx)
		for j := range xs {
			xs[j] = SeqDigest{Seq: Seq(r.Uint64()), Digest: randDigest(r)}
		}
		roundTrip(t, &NewView{View: View(r.Uint64()), V: vs, CkptSeq: Seq(r.Uint64()),
			CkptDigest: randDigest(r), X: xs, Replica: NodeID(r.Intn(4)), Auth: randAuth(r)})
	}
}

func TestStatusRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 30; i++ {
		roundTrip(t, &StatusActive{View: View(r.Uint64()), LastStable: Seq(r.Uint64()),
			LastExec: Seq(r.Uint64()), Replica: NodeID(r.Intn(4)),
			Prepared: randBytes(r, 32), Committed: randBytes(r, 32), Auth: randAuth(r)})
		roundTrip(t, &StatusPending{View: View(r.Uint64()), LastStable: Seq(r.Uint64()),
			LastExec: Seq(r.Uint64()), Replica: NodeID(r.Intn(4)),
			HasNewView: r.Intn(2) == 0, VCs: randBytes(r, 4), Auth: randAuth(r)})
	}
}

func TestStateTransferRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 30; i++ {
		roundTrip(t, &Fetch{Level: uint8(r.Intn(4)), Index: r.Uint64(),
			LastKnown: Seq(r.Uint64()), Target: Seq(r.Uint64()),
			Replier: NodeID(r.Intn(4)), Replica: NodeID(r.Intn(4)), Auth: randAuth(r)})
		np := r.Intn(5)
		parts := make([]PartInfo, np)
		for j := range parts {
			parts[j] = PartInfo{Index: r.Uint64(), LastMod: Seq(r.Uint64()), Digest: randDigest(r)}
		}
		roundTrip(t, &MetaData{Seq: Seq(r.Uint64()), Level: uint8(r.Intn(4)),
			Index: r.Uint64(), LastMod: Seq(r.Uint64()), Parts: parts,
			Extra: randBytes(r, 64), Replica: NodeID(r.Intn(4)), Auth: randAuth(r)})
		roundTrip(t, &Data{Index: r.Uint64(), LastMod: Seq(r.Uint64()),
			Page: randBytes(r, 4096), Replica: NodeID(r.Intn(4)), Auth: randAuth(r)})
	}
}

func TestRecoveryMessagesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for i := 0; i < 30; i++ {
		nk := r.Intn(4)
		peers := make([]NodeID, nk)
		keys := make([][]byte, nk)
		for j := range keys {
			peers[j] = NodeID(j)
			keys[j] = randBytes(r, 16)
		}
		roundTrip(t, &NewKey{Replica: NodeID(r.Intn(4)), Epoch: r.Uint32(),
			Counter: r.Uint64(), Peers: peers, Keys: keys, Auth: randAuth(r)})
		roundTrip(t, &QueryStable{Replica: NodeID(r.Intn(4)), Nonce: r.Uint64(), Auth: randAuth(r)})
		roundTrip(t, &ReplyStable{LastCkpt: Seq(r.Uint64()), LastPrepared: Seq(r.Uint64()),
			Replica: NodeID(r.Intn(4)), Nonce: r.Uint64(), Auth: randAuth(r)})
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("empty buffer accepted")
	}
	if _, err := Unmarshal([]byte{0xEE}); err == nil {
		t.Fatal("unknown tag accepted")
	}
	m := &Prepare{View: 1, Seq: 2, Replica: 3}
	b := m.Marshal()
	for _, cut := range []int{1, 5, len(b) - 1} {
		if _, err := Unmarshal(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := Unmarshal(append(b, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// Property: truncating any valid encoding never panics and never yields a
// valid message of another length.
func TestTruncationNeverPanics(t *testing.T) {
	f := func(op []byte, ts uint64, cut uint8) bool {
		m := &Request{Client: ClientIDBase, Timestamp: ts, Replier: NoNode, Op: op}
		b := m.Marshal()
		c := int(cut) % (len(b) + 1)
		_, err := Unmarshal(b[:c])
		return c == len(b) || err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRequestDigestProperties(t *testing.T) {
	a := &Request{Client: ClientIDBase, Timestamp: 1, Op: []byte("op")}
	b := &Request{Client: ClientIDBase, Timestamp: 1, Op: []byte("op")}
	if a.Digest() != b.Digest() {
		t.Fatal("equal requests have different digests")
	}
	c := &Request{Client: ClientIDBase, Timestamp: 2, Op: []byte("op")}
	if a.Digest() == c.Digest() {
		t.Fatal("different timestamps collided")
	}
	d := &Request{Client: ClientIDBase + 1, Timestamp: 1, Op: []byte("op")}
	if a.Digest() == d.Digest() {
		t.Fatal("different clients collided")
	}
	// The replier choice must NOT affect the request digest: different
	// clients may designate different repliers for the same logical request.
	e := &Request{Client: ClientIDBase, Timestamp: 1, Op: []byte("op"), Replier: 2}
	if a.Digest() != e.Digest() {
		t.Fatal("replier field changed request identity")
	}
}

func TestBatchDigest(t *testing.T) {
	d1 := crypto.DigestOf([]byte("r1"))
	d2 := crypto.DigestOf([]byte("r2"))
	a := BatchDigest([]crypto.Digest{d1, d2}, nil)
	b := BatchDigest([]crypto.Digest{d2, d1}, nil)
	if a == b {
		t.Fatal("batch digest must depend on request order")
	}
	c := BatchDigest([]crypto.Digest{d1, d2}, []byte("nd"))
	if a == c {
		t.Fatal("batch digest must cover the non-deterministic value")
	}
}

func TestPrePrepareBatchDigestMatchesParts(t *testing.T) {
	req := Request{Client: ClientIDBase, Timestamp: 9, Replier: NoNode, Op: []byte("x")}
	sep := crypto.DigestOf([]byte("separate"))
	pp := &PrePrepare{View: 3, Seq: 7, Inline: []Request{req}, Digests: []crypto.Digest{sep}}
	want := BatchDigest([]crypto.Digest{req.Digest(), sep}, nil)
	if pp.BatchDigest() != want {
		t.Fatal("BatchDigest mismatch")
	}
	ds := pp.RequestDigests()
	if len(ds) != 2 || ds[0] != req.Digest() || ds[1] != sep {
		t.Fatal("RequestDigests wrong order or content")
	}
}

func TestNodeIDSpaces(t *testing.T) {
	if NodeID(0).IsClient() || NodeID(999).IsClient() {
		t.Fatal("replica ids classified as clients")
	}
	if !ClientIDBase.IsClient() {
		t.Fatal("client base not a client")
	}
}

func TestTypeString(t *testing.T) {
	if TRequest.String() != "request" || TNewView.String() != "new-view" {
		t.Fatal("type names wrong")
	}
	if Type(200).String() != "unknown" {
		t.Fatal("unknown tag not reported")
	}
}

func TestViewChangeEntryLookups(t *testing.T) {
	vc := &ViewChange{
		P: []PInfo{{Seq: 5, Digest: crypto.DigestOf([]byte("a")), View: 2}},
		Q: []QInfo{{Seq: 5, Entries: []DV{{Digest: crypto.DigestOf([]byte("a")), View: 2}}}},
	}
	if _, ok := vc.PEntry(5); !ok {
		t.Fatal("PEntry(5) missing")
	}
	if _, ok := vc.PEntry(6); ok {
		t.Fatal("PEntry(6) found")
	}
	if _, ok := vc.QEntry(5); !ok {
		t.Fatal("QEntry(5) missing")
	}
	if _, ok := vc.QEntry(4); ok {
		t.Fatal("QEntry(4) found")
	}
}

func TestViewChangeDigestCoversBody(t *testing.T) {
	a := &ViewChange{NewView: 2, H: 0, Replica: 1}
	b := &ViewChange{NewView: 2, H: 0, Replica: 1}
	if a.Digest() != b.Digest() {
		t.Fatal("identical view-changes digest differently")
	}
	b.H = 128
	if a.Digest() == b.Digest() {
		t.Fatal("H not covered by digest")
	}
	// The authenticator must not affect the digest (acks reference the body).
	c := &ViewChange{NewView: 2, H: 0, Replica: 1, Auth: Auth{Kind: AuthMAC}}
	if a.Digest() != c.Digest() {
		t.Fatal("auth trailer leaked into view-change digest")
	}
}
