package message

import (
	"repro/internal/crypto"
)

// ---------------------------------------------------------------------------
// Request / Reply
// ---------------------------------------------------------------------------

// Request flags.
const (
	// FlagReadOnly marks a request for the read-only optimization (§5.1.3).
	FlagReadOnly uint8 = 1 << iota
	// FlagRecovery marks a proactive-recovery request (§4.3.2); it must be
	// signed by the recovering replica's co-processor.
	FlagRecovery
)

// Request is ⟨REQUEST, o, t, c⟩: client c asks the service to execute
// operation o with timestamp t (§2.3.2). Replier is the designated replica
// for the digest-replies optimization (§5.1.1); NoNode means every replica
// returns the full result.
type Request struct {
	Client    NodeID
	Timestamp uint64
	Flags     uint8
	// Replier is routing advice, not semantics: the §5.1.1 designated
	// replier changes which replica sends the full result, never what
	// executes, so it is deliberately outside the request digest (it is
	// also client-rewritten on retransmission).
	Replier NodeID // bftlint:nodigest=routing-advice
	Op      []byte
	Auth    Auth
}

// ReadOnly reports whether the read-only flag is set.
func (m *Request) ReadOnly() bool { return m.Flags&FlagReadOnly != 0 }

// Recovery reports whether this is a recovery request.
func (m *Request) Recovery() bool { return m.Flags&FlagRecovery != 0 }

// Digest identifies the request: H(client, timestamp, flags, op), matching
// the thesis's MD5(cid # rid # op).
func (m *Request) Digest() crypto.Digest {
	return crypto.DigestOfU64(
		[]uint64{uint64(uint32(m.Client)), m.Timestamp, uint64(m.Flags)}, m.Op)
}

// MsgType implements Message.
func (m *Request) MsgType() Type { return TRequest }

// Sender implements Message.
func (m *Request) Sender() NodeID { return m.Client }

// AuthTrailer implements Message.
func (m *Request) AuthTrailer() *Auth { return &m.Auth }

// Marshal implements Message.
func (m *Request) Marshal() []byte { return marshalMsg(m, 64+len(m.Op)) }

// Payload implements Message.
func (m *Request) Payload() []byte { return payloadOf(m, 64+len(m.Op)) }

func (m *Request) marshalBody(w *writer) {
	w.u8(uint8(TRequest))
	w.u32(uint32(m.Client))
	w.u64(m.Timestamp)
	w.u8(m.Flags)
	w.u32(uint32(m.Replier))
	w.bytes(m.Op)
}

func (m *Request) unmarshalBody(r *reader) {
	r.u8()
	m.Client = NodeID(r.u32())
	m.Timestamp = r.u64()
	m.Flags = r.u8()
	m.Replier = NodeID(r.u32())
	m.Op = r.bytes()
}

// Reply is ⟨REPLY, v, t, c, i, r⟩ (§2.3.2). With digest replies only the
// designated replier carries Result; the others send ResultDigest alone.
// Tentative replies (§5.1.2) require a quorum certificate at the client.
type Reply struct {
	View         View
	Timestamp    uint64
	Client       NodeID
	Replica      NodeID
	Tentative    bool
	HasResult    bool
	Result       []byte
	ResultDigest crypto.Digest
	Auth         Auth
}

// MsgType implements Message.
func (m *Reply) MsgType() Type { return TReply }

// Sender implements Message.
func (m *Reply) Sender() NodeID { return m.Replica }

// AuthTrailer implements Message.
func (m *Reply) AuthTrailer() *Auth { return &m.Auth }

// Marshal implements Message.
func (m *Reply) Marshal() []byte { return marshalMsg(m, 96+len(m.Result)) }

// Payload implements Message.
func (m *Reply) Payload() []byte { return payloadOf(m, 96+len(m.Result)) }

func (m *Reply) marshalBody(w *writer) {
	w.u8(uint8(TReply))
	w.u64(uint64(m.View))
	w.u64(m.Timestamp)
	w.u32(uint32(m.Client))
	w.u32(uint32(m.Replica))
	w.bool(m.Tentative)
	w.bool(m.HasResult)
	w.bytes(m.Result)
	w.digest(m.ResultDigest)
}

func (m *Reply) unmarshalBody(r *reader) {
	r.u8()
	m.View = View(r.u64())
	m.Timestamp = r.u64()
	m.Client = NodeID(r.u32())
	m.Replica = NodeID(r.u32())
	m.Tentative = r.bool()
	m.HasResult = r.bool()
	m.Result = r.bytes()
	m.ResultDigest = r.digest()
}

// ---------------------------------------------------------------------------
// Three-phase protocol
// ---------------------------------------------------------------------------

// PrePrepare is ⟨PRE-PREPARE, v, n, batch⟩ (§2.3.3). A batch carries small
// requests inline and only the digests of requests transmitted separately
// (§5.1.5); NonDet is the non-deterministic choice agreed for the batch
// (§5.4). BatchDigest covers the ordered request digests plus NonDet and is
// what prepare/commit messages refer to.
type PrePrepare struct {
	// View and Seq are deliberately outside BatchDigest: the §2.3.3
	// certificates bind the tuple (v, n, d) directly — every prepare and
	// commit restates v and n next to d — so varying them under an
	// unchanged digest yields a different certificate, not a forged one.
	View View // bftlint:nodigest=certificate-binds-tuple
	Seq  Seq  // bftlint:nodigest=certificate-binds-tuple
	// Inline requests ship inside the pre-prepare; Digests identify the
	// separately-transmitted ones (§5.1.5).
	Inline  []Request
	Digests []crypto.Digest
	NonDet  []byte
	// Replica is the sender identity, authenticated by the trailer and
	// checked against primary(v) on receipt; it is not batch content.
	Replica NodeID // bftlint:nodigest=authenticated-sender
	Auth    Auth
}

// RequestDigests returns the ordered digests of every request in the batch:
// inline requests first, then the separately-transmitted ones.
func (m *PrePrepare) RequestDigests() []crypto.Digest {
	ds := make([]crypto.Digest, 0, len(m.Inline)+len(m.Digests))
	for i := range m.Inline {
		ds = append(ds, m.Inline[i].Digest())
	}
	return append(ds, m.Digests...)
}

// BatchDigest is the digest prepares and commits certify.
//
// bftlint:digest
func (m *PrePrepare) BatchDigest() crypto.Digest {
	return BatchDigest(m.RequestDigests(), m.NonDet)
}

// BatchDigest computes the digest over ordered request digests and the
// non-deterministic value.
func BatchDigest(reqDigests []crypto.Digest, nonDet []byte) crypto.Digest {
	parts := make([][]byte, 0, len(reqDigests)+1)
	for i := range reqDigests {
		parts = append(parts, reqDigests[i][:])
	}
	parts = append(parts, nonDet)
	return crypto.DigestOf(parts...)
}

// MsgType implements Message.
func (m *PrePrepare) MsgType() Type { return TPrePrepare }

// Sender implements Message.
func (m *PrePrepare) Sender() NodeID { return m.Replica }

// AuthTrailer implements Message.
func (m *PrePrepare) AuthTrailer() *Auth { return &m.Auth }

// Marshal implements Message.
func (m *PrePrepare) Marshal() []byte { return marshalMsg(m, 256) }

// Payload implements Message.
func (m *PrePrepare) Payload() []byte { return payloadOf(m, 256) }

func (m *PrePrepare) marshalBody(w *writer) {
	w.u8(uint8(TPrePrepare))
	w.u64(uint64(m.View))
	w.u64(uint64(m.Seq))
	w.u32(uint32(len(m.Inline)))
	for i := range m.Inline {
		w.bytes(m.Inline[i].Marshal())
	}
	w.u32(uint32(len(m.Digests)))
	for _, d := range m.Digests {
		w.digest(d)
	}
	w.bytes(m.NonDet)
	w.u32(uint32(m.Replica))
}

func (m *PrePrepare) unmarshalBody(r *reader) {
	r.u8()
	m.View = View(r.u64())
	m.Seq = Seq(r.u64())
	ni := r.sliceLen(8) // lower bound: each inline request takes >= 8 bytes
	m.Inline = make([]Request, 0, min(ni, 1024))
	for i := 0; i < ni && r.err == nil; i++ {
		rb := r.bytes()
		var req Request
		if err := unmarshalInto(&req, rb); err != nil {
			r.fail()
			return
		}
		m.Inline = append(m.Inline, req)
	}
	nd := r.sliceLen(crypto.DigestSize)
	m.Digests = make([]crypto.Digest, nd)
	for i := 0; i < nd; i++ {
		m.Digests[i] = r.digest()
	}
	m.NonDet = r.bytes()
	m.Replica = NodeID(r.u32())
}

// Prepare is ⟨PREPARE, v, n, d, i⟩ (§2.3.3).
type Prepare struct {
	View    View
	Seq     Seq
	Digest  crypto.Digest
	Replica NodeID
	Auth    Auth
}

// MsgType implements Message.
func (m *Prepare) MsgType() Type { return TPrepare }

// Sender implements Message.
func (m *Prepare) Sender() NodeID { return m.Replica }

// AuthTrailer implements Message.
func (m *Prepare) AuthTrailer() *Auth { return &m.Auth }

// Marshal implements Message.
func (m *Prepare) Marshal() []byte { return marshalMsg(m, 96) }

// Payload implements Message.
func (m *Prepare) Payload() []byte { return payloadOf(m, 96) }

func (m *Prepare) marshalBody(w *writer) {
	w.u8(uint8(TPrepare))
	w.u64(uint64(m.View))
	w.u64(uint64(m.Seq))
	w.digest(m.Digest)
	w.u32(uint32(m.Replica))
}

func (m *Prepare) unmarshalBody(r *reader) {
	r.u8()
	m.View = View(r.u64())
	m.Seq = Seq(r.u64())
	m.Digest = r.digest()
	m.Replica = NodeID(r.u32())
}

// Commit is ⟨COMMIT, v, n, d, i⟩ (§2.3.3).
type Commit struct {
	View    View
	Seq     Seq
	Digest  crypto.Digest
	Replica NodeID
	Auth    Auth
}

// MsgType implements Message.
func (m *Commit) MsgType() Type { return TCommit }

// Sender implements Message.
func (m *Commit) Sender() NodeID { return m.Replica }

// AuthTrailer implements Message.
func (m *Commit) AuthTrailer() *Auth { return &m.Auth }

// Marshal implements Message.
func (m *Commit) Marshal() []byte { return marshalMsg(m, 96) }

// Payload implements Message.
func (m *Commit) Payload() []byte { return payloadOf(m, 96) }

func (m *Commit) marshalBody(w *writer) {
	w.u8(uint8(TCommit))
	w.u64(uint64(m.View))
	w.u64(uint64(m.Seq))
	w.digest(m.Digest)
	w.u32(uint32(m.Replica))
}

func (m *Commit) unmarshalBody(r *reader) {
	r.u8()
	m.View = View(r.u64())
	m.Seq = Seq(r.u64())
	m.Digest = r.digest()
	m.Replica = NodeID(r.u32())
}

// ---------------------------------------------------------------------------
// Garbage collection
// ---------------------------------------------------------------------------

// Checkpoint is ⟨CHECKPOINT, n, d, i⟩ (§2.3.4): replica i took a checkpoint
// covering execution up to sequence number n with state digest d.
type Checkpoint struct {
	Seq     Seq
	Digest  crypto.Digest
	Replica NodeID
	Auth    Auth
}

// MsgType implements Message.
func (m *Checkpoint) MsgType() Type { return TCheckpoint }

// Sender implements Message.
func (m *Checkpoint) Sender() NodeID { return m.Replica }

// AuthTrailer implements Message.
func (m *Checkpoint) AuthTrailer() *Auth { return &m.Auth }

// Marshal implements Message.
func (m *Checkpoint) Marshal() []byte { return marshalMsg(m, 96) }

// Payload implements Message.
func (m *Checkpoint) Payload() []byte { return payloadOf(m, 96) }

func (m *Checkpoint) marshalBody(w *writer) {
	w.u8(uint8(TCheckpoint))
	w.u64(uint64(m.Seq))
	w.digest(m.Digest)
	w.u32(uint32(m.Replica))
}

func (m *Checkpoint) unmarshalBody(r *reader) {
	r.u8()
	m.Seq = Seq(r.u64())
	m.Digest = r.digest()
	m.Replica = NodeID(r.u32())
}
