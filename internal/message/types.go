package message

import (
	"repro/internal/crypto"
)

// View is a view number; the primary of view v is replica v mod n.
type View uint64

// Seq is a protocol sequence number assigned by a primary to a batch.
type Seq uint64

// NodeID identifies a principal. Replicas are numbered 0..n-1; clients are
// numbered from ClientIDBase upward so the two spaces never collide.
type NodeID int32

// ClientIDBase is the first client NodeID.
const ClientIDBase NodeID = 1000

// NoNode is the nil NodeID.
const NoNode NodeID = -1

// IsClient reports whether id falls in the client space.
func (id NodeID) IsClient() bool { return id >= ClientIDBase }

// Type tags every wire message.
type Type uint8

// Wire message type tags.
const (
	TRequest Type = iota + 1
	TReply
	TPrePrepare
	TPrepare
	TCommit
	TCheckpoint
	TViewChange
	TViewChangeAck
	TNewView
	TStatusActive
	TStatusPending
	TFetch
	TMetaData
	TData
	TNewKey
	TQueryStable
	TReplyStable
	TBatchFetch
	TBatchBody
	numTypes
)

var typeNames = [...]string{
	TRequest:       "request",
	TReply:         "reply",
	TPrePrepare:    "pre-prepare",
	TPrepare:       "prepare",
	TCommit:        "commit",
	TCheckpoint:    "checkpoint",
	TViewChange:    "view-change",
	TViewChangeAck: "view-change-ack",
	TNewView:       "new-view",
	TStatusActive:  "status-active",
	TStatusPending: "status-pending",
	TFetch:         "fetch",
	TMetaData:      "meta-data",
	TData:          "data",
	TNewKey:        "new-key",
	TQueryStable:   "query-stable",
	TReplyStable:   "reply-stable",
	TBatchFetch:    "batch-fetch",
	TBatchBody:     "batch-body",
}

func (t Type) String() string {
	if int(t) < len(typeNames) && typeNames[t] != "" {
		return typeNames[t]
	}
	return "unknown"
}

// AuthKind says how a message's trailer authenticates it.
type AuthKind uint8

// Authentication trailer kinds.
const (
	AuthNone AuthKind = iota
	AuthVector
	AuthMAC
	AuthSig
)

// Auth is the authentication trailer shared by all messages. Exactly one of
// Vector, MAC or Sig is meaningful, selected by Kind. BFT-PK signs
// everything; BFT uses authenticators for multicast messages and single MACs
// for point-to-point ones; new-key and recovery requests are always signed.
type Auth struct {
	Kind   AuthKind
	Vector crypto.Authenticator
	MAC    crypto.MAC
	Sig    []byte
}

func (a *Auth) marshal(w *writer) {
	w.u8(uint8(a.Kind))
	switch a.Kind {
	case AuthVector:
		w.u32(a.Vector.Epoch)
		w.u32(uint32(len(a.Vector.MACs)))
		for _, m := range a.Vector.MACs {
			w.mac(m)
		}
	case AuthMAC:
		w.mac(a.MAC)
	case AuthSig:
		w.bytes(a.Sig)
	}
}

func (a *Auth) unmarshal(r *reader) {
	a.Kind = AuthKind(r.u8())
	switch a.Kind {
	case AuthNone:
	case AuthVector:
		a.Vector.Epoch = r.u32()
		n := r.sliceLen(crypto.MACSize)
		a.Vector.MACs = make([]crypto.MAC, n)
		for i := 0; i < n; i++ {
			a.Vector.MACs[i] = r.mac()
		}
	case AuthMAC:
		a.MAC = r.mac()
	case AuthSig:
		a.Sig = r.bytes()
	default:
		r.fail()
	}
}

// Message is implemented by every wire message.
type Message interface {
	// MsgType returns the wire tag.
	MsgType() Type
	// Sender returns the principal that (claims to have) sent the message.
	Sender() NodeID
	// Marshal encodes body followed by the authentication trailer.
	Marshal() []byte
	// Payload encodes the body alone: the bytes that MACs/signatures cover.
	Payload() []byte
	// AuthTrailer gives access to the trailer for signing/verifying.
	AuthTrailer() *Auth
}

// Unmarshal decodes any wire message by its leading tag.
func Unmarshal(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, ErrTruncated
	}
	var m Message
	switch Type(b[0]) {
	case TRequest:
		m = new(Request)
	case TReply:
		m = new(Reply)
	case TPrePrepare:
		m = new(PrePrepare)
	case TPrepare:
		m = new(Prepare)
	case TCommit:
		m = new(Commit)
	case TCheckpoint:
		m = new(Checkpoint)
	case TViewChange:
		m = new(ViewChange)
	case TViewChangeAck:
		m = new(ViewChangeAck)
	case TNewView:
		m = new(NewView)
	case TStatusActive:
		m = new(StatusActive)
	case TStatusPending:
		m = new(StatusPending)
	case TFetch:
		m = new(Fetch)
	case TMetaData:
		m = new(MetaData)
	case TData:
		m = new(Data)
	case TNewKey:
		m = new(NewKey)
	case TQueryStable:
		m = new(QueryStable)
	case TReplyStable:
		m = new(ReplyStable)
	case TBatchFetch:
		m = new(BatchFetch)
	case TBatchBody:
		m = new(BatchBody)
	default:
		return nil, ErrBadTag
	}
	if err := unmarshalInto(m, b); err != nil {
		return nil, err
	}
	return m, nil
}

// bodyCodec is the per-type body encoder/decoder implemented by each message.
type bodyCodec interface {
	marshalBody(w *writer)
	unmarshalBody(r *reader)
	AuthTrailer() *Auth
}

func marshalMsg(m bodyCodec, sizeHint int) []byte {
	w := newWriter(sizeHint)
	m.marshalBody(w)
	m.AuthTrailer().marshal(w)
	return w.b
}

func payloadOf(m bodyCodec, sizeHint int) []byte {
	w := newWriter(sizeHint)
	m.marshalBody(w)
	return w.b
}

func unmarshalInto(m Message, b []byte) error {
	r := newReader(b)
	m.(bodyCodec).unmarshalBody(r)
	m.AuthTrailer().unmarshal(r)
	return r.done()
}
