package message

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Unmarshal must never panic on arbitrary input — replicas feed it raw
// network bytes from untrusted peers (§5.5).
func TestUnmarshalArbitraryBytesNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %x: %v", b, r)
			}
		}()
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Valid encodings with a few corrupted bytes must either fail to decode or
// decode into a *different* message (the tag/length framing must not make
// corruption invisible at the codec layer; authentication catches content
// tampering).
func TestBitFlippedEncodingsSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	mk := func() []byte {
		m := &PrePrepare{
			View: 3, Seq: 17,
			Inline: []Request{{
				Client: ClientIDBase, Timestamp: 9, Replier: NoNode,
				Op: []byte("operation body"),
			}},
			Replica: 1,
		}
		return m.Marshal()
	}
	for i := 0; i < 500; i++ {
		b := mk()
		// Flip 1-3 random bytes.
		for k := 0; k < 1+rng.Intn(3); k++ {
			b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on corrupted encoding: %v", r)
				}
			}()
			_, _ = Unmarshal(b)
		}()
	}
}

// Messages with adversarially huge length prefixes must be rejected, not
// ballooned into allocations.
func TestHugeLengthPrefixRejected(t *testing.T) {
	m := &Data{Index: 1, Page: make([]byte, 64), Replica: 2}
	b := m.Marshal()
	// The page length prefix sits after tag(1)+index(8)+lastmod(8).
	copy(b[17:21], []byte{0xFF, 0xFF, 0xFF, 0x7F})
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("4GB length prefix accepted")
	}
}

// Deeply recursive structures (pre-prepare with many inline requests)
// round-trip correctly at the batching limit.
func TestMaxBatchRoundTrip(t *testing.T) {
	pp := &PrePrepare{View: 1, Seq: 2, Replica: 0}
	for i := 0; i < 16; i++ {
		pp.Inline = append(pp.Inline, Request{
			Client:    ClientIDBase + NodeID(i),
			Timestamp: uint64(i),
			Replier:   NoNode,
			Op:        make([]byte, 200),
		})
	}
	out, err := Unmarshal(pp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*PrePrepare)
	if len(got.Inline) != 16 {
		t.Fatalf("inline count %d", len(got.Inline))
	}
	if got.BatchDigest() != pp.BatchDigest() {
		t.Fatal("batch digest changed in transit")
	}
}
