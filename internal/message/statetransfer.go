package message

import (
	"repro/internal/crypto"
)

// ---------------------------------------------------------------------------
// Retransmission (status) messages — §5.2
// ---------------------------------------------------------------------------

// StatusActive is ⟨STATUS-ACTIVE, v, ls, le, i, P, C⟩: a summary of replica
// i's state while its view is active. Receivers retransmit what i is
// missing. Prepared and Committed carry one bit per sequence number in
// (LastExec, LastStable+L].
type StatusActive struct {
	View       View
	LastStable Seq
	LastExec   Seq
	Replica    NodeID
	Prepared   []byte // bitmap
	Committed  []byte // bitmap
	Auth       Auth
}

// MsgType implements Message.
func (m *StatusActive) MsgType() Type { return TStatusActive }

// Sender implements Message.
func (m *StatusActive) Sender() NodeID { return m.Replica }

// AuthTrailer implements Message.
func (m *StatusActive) AuthTrailer() *Auth { return &m.Auth }

// Marshal implements Message.
func (m *StatusActive) Marshal() []byte { return marshalMsg(m, 128) }

// Payload implements Message.
func (m *StatusActive) Payload() []byte { return payloadOf(m, 128) }

func (m *StatusActive) marshalBody(w *writer) {
	w.u8(uint8(TStatusActive))
	w.u64(uint64(m.View))
	w.u64(uint64(m.LastStable))
	w.u64(uint64(m.LastExec))
	w.u32(uint32(m.Replica))
	w.bytes(m.Prepared)
	w.bytes(m.Committed)
}

func (m *StatusActive) unmarshalBody(r *reader) {
	r.u8()
	m.View = View(r.u64())
	m.LastStable = Seq(r.u64())
	m.LastExec = Seq(r.u64())
	m.Replica = NodeID(r.u32())
	m.Prepared = r.bytes()
	m.Committed = r.bytes()
}

// StatusPending is the status summary sent while a view change is in
// progress: it triggers retransmission of view-change and new-view protocol
// messages (§5.2).
type StatusPending struct {
	View       View
	LastStable Seq
	LastExec   Seq
	Replica    NodeID
	HasNewView bool
	// VCs has one bit per replica: whether the sender holds a view-change
	// message from that replica for View.
	VCs  []byte
	Auth Auth
}

// MsgType implements Message.
func (m *StatusPending) MsgType() Type { return TStatusPending }

// Sender implements Message.
func (m *StatusPending) Sender() NodeID { return m.Replica }

// AuthTrailer implements Message.
func (m *StatusPending) AuthTrailer() *Auth { return &m.Auth }

// Marshal implements Message.
func (m *StatusPending) Marshal() []byte { return marshalMsg(m, 128) }

// Payload implements Message.
func (m *StatusPending) Payload() []byte { return payloadOf(m, 128) }

func (m *StatusPending) marshalBody(w *writer) {
	w.u8(uint8(TStatusPending))
	w.u64(uint64(m.View))
	w.u64(uint64(m.LastStable))
	w.u64(uint64(m.LastExec))
	w.u32(uint32(m.Replica))
	w.bool(m.HasNewView)
	w.bytes(m.VCs)
}

func (m *StatusPending) unmarshalBody(r *reader) {
	r.u8()
	m.View = View(r.u64())
	m.LastStable = Seq(r.u64())
	m.LastExec = Seq(r.u64())
	m.Replica = NodeID(r.u32())
	m.HasNewView = r.bool()
	m.VCs = r.bytes()
}

// ---------------------------------------------------------------------------
// State transfer — §5.3.2
// ---------------------------------------------------------------------------

// Fetch is ⟨FETCH, l, x, lc, c, k, i⟩: replica i asks for the partition at
// level Level and index Index. LastKnown (lc) is the checkpoint the
// requester already reflects for that partition; Target (c) is the
// checkpoint whose digest the requester knows (0 = unknown, any recent);
// Replier (k) is the designated replica that should send the full data.
// The fetcher keeps a window of these in flight (one per partition, striped
// across distinct repliers), so (Level, Index) is also the key replies are
// matched back against.
type Fetch struct {
	Level     uint8
	Index     uint64
	LastKnown Seq
	Target    Seq
	Replier   NodeID
	Replica   NodeID
	Auth      Auth
}

// MsgType implements Message.
func (m *Fetch) MsgType() Type { return TFetch }

// Sender implements Message.
func (m *Fetch) Sender() NodeID { return m.Replica }

// AuthTrailer implements Message.
func (m *Fetch) AuthTrailer() *Auth { return &m.Auth }

// Marshal implements Message.
func (m *Fetch) Marshal() []byte { return marshalMsg(m, 64) }

// Payload implements Message.
func (m *Fetch) Payload() []byte { return payloadOf(m, 64) }

func (m *Fetch) marshalBody(w *writer) {
	w.u8(uint8(TFetch))
	w.u8(m.Level)
	w.u64(m.Index)
	w.u64(uint64(m.LastKnown))
	w.u64(uint64(m.Target))
	w.u32(uint32(m.Replier))
	w.u32(uint32(m.Replica))
}

func (m *Fetch) unmarshalBody(r *reader) {
	r.u8()
	m.Level = r.u8()
	m.Index = r.u64()
	m.LastKnown = Seq(r.u64())
	m.Target = Seq(r.u64())
	m.Replier = NodeID(r.u32())
	m.Replica = NodeID(r.u32())
}

// PartInfo describes one sub-partition inside a MetaData reply: its index,
// the checkpoint at which it last changed (lm), and its digest.
type PartInfo struct {
	Index   uint64
	LastMod Seq
	Digest  crypto.Digest
}

// MetaData is ⟨META-DATA, c, l, x, P, k⟩: sub-partition digests of partition
// (Level, Index) at checkpoint Seq — sent by the designated replier, or by
// another replica serving its own latest stable checkpoint when the
// requested one was discarded. The fetcher matches the reply to its
// in-flight item by (Level, Index) and accepts it purely on digest
// verification: Seq is informational (which checkpoint the server used), so
// a fallback reply at a newer stable checkpoint still lands wherever the
// partition did not change in between. LastMod is the partition's own
// last-modification checkpoint. For the root partition, Extra carries the
// serialized reply cache (last-rep/last-rep-t of the formal specification),
// which is part of the checkpointed state.
type MetaData struct {
	Seq     Seq
	Level   uint8
	Index   uint64
	LastMod Seq
	Parts   []PartInfo
	Extra   []byte
	Replica NodeID
	Auth    Auth
}

// MsgType implements Message.
func (m *MetaData) MsgType() Type { return TMetaData }

// Sender implements Message.
func (m *MetaData) Sender() NodeID { return m.Replica }

// AuthTrailer implements Message.
func (m *MetaData) AuthTrailer() *Auth { return &m.Auth }

// Marshal implements Message.
func (m *MetaData) Marshal() []byte { return marshalMsg(m, 64+len(m.Parts)*48) }

// Payload implements Message.
func (m *MetaData) Payload() []byte { return payloadOf(m, 64+len(m.Parts)*48) }

func (m *MetaData) marshalBody(w *writer) {
	w.u8(uint8(TMetaData))
	w.u64(uint64(m.Seq))
	w.u8(m.Level)
	w.u64(m.Index)
	w.u64(uint64(m.LastMod))
	w.u32(uint32(len(m.Parts)))
	for _, p := range m.Parts {
		w.u64(p.Index)
		w.u64(uint64(p.LastMod))
		w.digest(p.Digest)
	}
	w.bytes(m.Extra)
	w.u32(uint32(m.Replica))
}

func (m *MetaData) unmarshalBody(r *reader) {
	r.u8()
	m.Seq = Seq(r.u64())
	m.Level = r.u8()
	m.Index = r.u64()
	m.LastMod = Seq(r.u64())
	n := r.sliceLen(16 + crypto.DigestSize)
	m.Parts = make([]PartInfo, n)
	for i := 0; i < n; i++ {
		m.Parts[i].Index = r.u64()
		m.Parts[i].LastMod = Seq(r.u64())
		m.Parts[i].Digest = r.digest()
	}
	m.Extra = r.bytes()
	m.Replica = NodeID(r.u32())
}

// Data is ⟨DATA, x, lm, p⟩: the full value of page Index, last modified at
// checkpoint LastMod. The requester matches it to its in-flight leaf item
// by Index and verifies it against the digest (and LastMod) it learned from
// meta-data, so no MAC is needed (§5.3.2); the unauthenticated Replica
// field is therefore only a weak hint for replier-quality accounting.
type Data struct {
	Index   uint64
	LastMod Seq
	Page    []byte
	Replica NodeID
	Auth    Auth
}

// MsgType implements Message.
func (m *Data) MsgType() Type { return TData }

// Sender implements Message.
func (m *Data) Sender() NodeID { return m.Replica }

// AuthTrailer implements Message.
func (m *Data) AuthTrailer() *Auth { return &m.Auth }

// Marshal implements Message.
func (m *Data) Marshal() []byte { return marshalMsg(m, 64+len(m.Page)) }

// Payload implements Message.
func (m *Data) Payload() []byte { return payloadOf(m, 64+len(m.Page)) }

func (m *Data) marshalBody(w *writer) {
	w.u8(uint8(TData))
	w.u64(m.Index)
	w.u64(uint64(m.LastMod))
	w.bytes(m.Page)
	w.u32(uint32(m.Replica))
}

func (m *Data) unmarshalBody(r *reader) {
	r.u8()
	m.Index = r.u64()
	m.LastMod = Seq(r.u64())
	m.Page = r.bytes()
	m.Replica = NodeID(r.u32())
}

// ---------------------------------------------------------------------------
// Proactive recovery — §4.3
// ---------------------------------------------------------------------------

// NewKey is ⟨NEW-KEY, i, ..{k_j}.., t⟩ (§4.3.1): replica or client i
// announces fresh session keys for traffic sent TO it. Keys[j] is the key
// principal j must use (conceptually encrypted under j's public key; the
// simulation ships it in the clear on the trusted setup channel). The
// message is signed by the sender's co-processor; Counter is the
// co-processor's monotonic counter preventing suppress-replay attacks.
type NewKey struct {
	Replica NodeID
	Epoch   uint32
	Counter uint64
	Peers   []NodeID
	Keys    [][]byte
	Auth    Auth
}

// MsgType implements Message.
func (m *NewKey) MsgType() Type { return TNewKey }

// Sender implements Message.
func (m *NewKey) Sender() NodeID { return m.Replica }

// AuthTrailer implements Message.
func (m *NewKey) AuthTrailer() *Auth { return &m.Auth }

// Marshal implements Message.
func (m *NewKey) Marshal() []byte { return marshalMsg(m, 64+len(m.Keys)*24) }

// Payload implements Message.
func (m *NewKey) Payload() []byte { return payloadOf(m, 64+len(m.Keys)*24) }

func (m *NewKey) marshalBody(w *writer) {
	w.u8(uint8(TNewKey))
	w.u32(uint32(m.Replica))
	w.u32(m.Epoch)
	w.u64(m.Counter)
	w.u32(uint32(len(m.Peers)))
	for _, p := range m.Peers {
		w.u32(uint32(p))
	}
	w.u32(uint32(len(m.Keys)))
	for _, k := range m.Keys {
		w.bytes(k)
	}
}

func (m *NewKey) unmarshalBody(r *reader) {
	r.u8()
	m.Replica = NodeID(r.u32())
	m.Epoch = r.u32()
	m.Counter = r.u64()
	np := r.sliceLen(4)
	m.Peers = make([]NodeID, np)
	for i := 0; i < np; i++ {
		m.Peers[i] = NodeID(r.u32())
	}
	nk := r.sliceLen(4)
	m.Keys = make([][]byte, 0, min(nk, 4096))
	for i := 0; i < nk && r.err == nil; i++ {
		m.Keys = append(m.Keys, r.bytes())
	}
}

// QueryStable is ⟨QUERY-STABLE, i, nonce⟩ (§4.3.2): the recovering replica
// asks everyone for their checkpoint progress to estimate its high-water
// mark bound.
type QueryStable struct {
	Replica NodeID
	Nonce   uint64
	Auth    Auth
}

// MsgType implements Message.
func (m *QueryStable) MsgType() Type { return TQueryStable }

// Sender implements Message.
func (m *QueryStable) Sender() NodeID { return m.Replica }

// AuthTrailer implements Message.
func (m *QueryStable) AuthTrailer() *Auth { return &m.Auth }

// Marshal implements Message.
func (m *QueryStable) Marshal() []byte { return marshalMsg(m, 32) }

// Payload implements Message.
func (m *QueryStable) Payload() []byte { return payloadOf(m, 32) }

func (m *QueryStable) marshalBody(w *writer) {
	w.u8(uint8(TQueryStable))
	w.u32(uint32(m.Replica))
	w.u64(m.Nonce)
}

func (m *QueryStable) unmarshalBody(r *reader) {
	r.u8()
	m.Replica = NodeID(r.u32())
	m.Nonce = r.u64()
}

// ReplyStable is ⟨REPLY-STABLE, c, p, i⟩ (§4.3.2): replica i's last stable
// checkpoint is LastCkpt and its last prepared request is LastPrepared.
type ReplyStable struct {
	LastCkpt     Seq
	LastPrepared Seq
	Replica      NodeID
	Nonce        uint64
	Auth         Auth
}

// MsgType implements Message.
func (m *ReplyStable) MsgType() Type { return TReplyStable }

// Sender implements Message.
func (m *ReplyStable) Sender() NodeID { return m.Replica }

// AuthTrailer implements Message.
func (m *ReplyStable) AuthTrailer() *Auth { return &m.Auth }

// Marshal implements Message.
func (m *ReplyStable) Marshal() []byte { return marshalMsg(m, 48) }

// Payload implements Message.
func (m *ReplyStable) Payload() []byte { return payloadOf(m, 48) }

func (m *ReplyStable) marshalBody(w *writer) {
	w.u8(uint8(TReplyStable))
	w.u64(uint64(m.LastCkpt))
	w.u64(uint64(m.LastPrepared))
	w.u32(uint32(m.Replica))
	w.u64(m.Nonce)
}

func (m *ReplyStable) unmarshalBody(r *reader) {
	r.u8()
	m.LastCkpt = Seq(r.u64())
	m.LastPrepared = Seq(r.u64())
	m.Replica = NodeID(r.u32())
	m.Nonce = r.u64()
}
