package message

import (
	"repro/internal/crypto"
)

// BatchFetch asks the group for the body of a batch by digest. A new
// primary needs it when the view-change decision selects a batch it never
// received (§3.2.4's condition A3: "the primary will eventually receive the
// request in a response to its status messages").
type BatchFetch struct {
	Digest  crypto.Digest
	Replica NodeID
	Auth    Auth
}

// MsgType implements Message.
func (m *BatchFetch) MsgType() Type { return TBatchFetch }

// Sender implements Message.
func (m *BatchFetch) Sender() NodeID { return m.Replica }

// AuthTrailer implements Message.
func (m *BatchFetch) AuthTrailer() *Auth { return &m.Auth }

// Marshal implements Message.
func (m *BatchFetch) Marshal() []byte { return marshalMsg(m, 64) }

// Payload implements Message.
func (m *BatchFetch) Payload() []byte { return payloadOf(m, 64) }

func (m *BatchFetch) marshalBody(w *writer) {
	w.u8(uint8(TBatchFetch))
	w.digest(m.Digest)
	w.u32(uint32(m.Replica))
}

func (m *BatchFetch) unmarshalBody(r *reader) {
	r.u8()
	m.Digest = r.digest()
	m.Replica = NodeID(r.u32())
}

// BatchBody carries a marshaled pre-prepare whose batch content hashes to
// the digest the requester asked for. Content-addressed: the requester
// verifies the digest, so no authentication is needed (like DATA messages
// in state transfer, §5.3.2).
type BatchBody struct {
	Batch   []byte // marshaled PrePrepare
	Replica NodeID
	Auth    Auth
}

// MsgType implements Message.
func (m *BatchBody) MsgType() Type { return TBatchBody }

// Sender implements Message.
func (m *BatchBody) Sender() NodeID { return m.Replica }

// AuthTrailer implements Message.
func (m *BatchBody) AuthTrailer() *Auth { return &m.Auth }

// Marshal implements Message.
func (m *BatchBody) Marshal() []byte { return marshalMsg(m, 64+len(m.Batch)) }

// Payload implements Message.
func (m *BatchBody) Payload() []byte { return payloadOf(m, 64+len(m.Batch)) }

func (m *BatchBody) marshalBody(w *writer) {
	w.u8(uint8(TBatchBody))
	w.bytes(m.Batch)
	w.u32(uint32(m.Replica))
}

func (m *BatchBody) unmarshalBody(r *reader) {
	r.u8()
	m.Batch = r.bytes()
	m.Replica = NodeID(r.u32())
}
