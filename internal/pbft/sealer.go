package pbft

import (
	"repro/internal/crypto"
	"repro/internal/egress"
	"repro/internal/message"
)

// sealer is the state-free authentication core of the send path, shared by
// the serial helpers on the event loop and the egress pipeline workers —
// the outbound twin of verifier. It owns no protocol state: it reads the
// copy-on-write key-store snapshots and the immutable mode/group size, so
// Seal is safe to call from any goroutine concurrently with key refresh.
//
// Seal never writes into the message: the computed trailer goes straight
// into the wire buffer (message.AppendAuth), so protocol objects stay
// exclusively event-loop-owned even while workers encode them.
type sealer struct {
	mode Mode
	n    int
	ks   *crypto.KeyStore
	kp   crypto.KeyPair
}

// Generation implements egress.Sealer.
func (s *sealer) Generation() uint64 { return s.ks.Generation() }

// Seal implements egress.Sealer: it appends m's body to buf, computes the
// trailer the kind calls for over exactly those bytes, and appends it. The
// returned generation stamps MAC-based trailers with the key snapshot they
// were computed under; signatures return egress.NoGeneration since key
// rotation cannot invalidate them.
//
// Annotated as a worker entry point because egress workers reach it through
// the egress.Sealer interface, invisible to the bftowner call graph.
//
// bftlint:entrypoint=worker
func (s *sealer) Seal(buf []byte, kind egress.Kind, dst message.NodeID,
	m message.Message) ([]byte, uint64) {
	start := len(buf)
	buf = message.AppendPayload(buf, m)
	payload := buf[start:]

	var a message.Auth
	gen := egress.NoGeneration
	switch {
	case s.mode == ModePK || kind == egress.Sign:
		a = message.Auth{Kind: message.AuthSig, Sig: s.kp.Sign(payload)}
	case kind == egress.Vector:
		gen = s.ks.Generation()
		a = message.Auth{
			Kind:   message.AuthVector,
			Vector: s.ks.MakeAuthenticator(s.n, payload),
		}
	case kind == egress.Point:
		// Install first-contact keys BEFORE reading the generation: the
		// install publishes a new snapshot, and stamping the pre-install
		// generation would spuriously re-seal every MAC job in flight.
		s.ensurePeerKeys(dst)
		gen = s.ks.Generation()
		a = message.Auth{
			Kind: message.AuthMAC,
			MAC:  s.ks.ComputePointMAC(uint32(dst), payload),
		}
	}
	return message.AppendAuth(buf, &a), gen
}

// ensurePeerKeys lazily installs the administrator-distributed initial keys
// for a principal first seen now (clients appear dynamically; replies to a
// new client may be sealed on a worker before the event loop saw it).
func (s *sealer) ensurePeerKeys(peer message.NodeID) {
	if k, _ := s.ks.OutKey(uint32(peer)); k == nil {
		s.ks.InstallInitial(uint32(peer))
	}
}
