package pbft

// Regression tests for the §5.1.3 read-only path: replica-side demotion of
// mutating requests flagged read-only, and survival of queued read-only
// requests across a view change.

import (
	"testing"
	"time"

	"repro/internal/kvservice"
	"repro/internal/message"
	"repro/internal/simnet"
)

// TestMutatingReadOnlyDemotedInOneRoundTrip pins the headline fix: a
// request FLAGGED read-only whose operation mutates state used to be
// silently dropped — not queued read-only (IsReadOnly said no), not
// enqueued read-write, no reply — so the client burned a full RetryTimeout
// before its retransmission demoted it. §5.1.3 demotes at the replica: the
// request falls through to the ordered read-write path immediately and the
// client gets a correct reply in one round trip.
func TestMutatingReadOnlyDemotedInOneRoundTrip(t *testing.T) {
	c := newTestCluster(t, 4, testConfig(), nil)
	cl := c.NewClient()
	// With zero retries and a retry timeout far beyond the test budget, the
	// only way this invoke can succeed is the first transmission.
	cl.RetryTimeout = 30 * time.Second
	cl.MaxRetries = 0

	start := time.Now()
	res, err := cl.Invoke(kvservice.Incr(), true) // a write, flagged read-only
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("demoted invoke failed (request was dropped): %v", err)
	}
	if got := kvservice.DecodeU64(res); got != 1 {
		t.Fatalf("demoted incr returned %d, want 1", got)
	}
	if elapsed >= cl.RetryTimeout {
		t.Fatalf("reply took %v: demotion happened via client retry, not at the replica", elapsed)
	}

	// The write landed exactly once, through consensus.
	res = mustInvoke(t, cl, kvservice.Get(), true)
	if got := kvservice.DecodeU64(res); got != 1 {
		t.Fatalf("state after demoted write: counter=%d, want 1", got)
	}
}

// TestReadOnlyQueueSurvivesViewChange queues a read-only request behind a
// tentative (uncommitted) execution, forces a view change, and requires the
// queued request to be answered — in one client round trip — once the new
// view commits. §5.1.3's quiescence rule must hold ACROSS the view change,
// not drop the queue with it.
func TestReadOnlyQueueSurvivesViewChange(t *testing.T) {
	cfg := testConfig()
	net := simnet.New(simnet.WithSeed(cfg.Seed + 7))
	t.Cleanup(func() { net.Close() })

	// Drop every view-0 commit: batches prepare and execute tentatively but
	// can never commit in view 0, so lastExec stays ahead of lastCommitted
	// and read-only requests queue behind quiescence.
	net.SetFilter(func(src, dst message.NodeID, p []byte) ([]byte, bool) {
		if m, err := message.Unmarshal(p); err == nil {
			if cm, ok := m.(*message.Commit); ok && cm.View == 0 {
				return nil, false
			}
		}
		return p, true
	})

	c := NewCluster(net, cfg, 4, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(c.Stop)

	// A tentative write: the client accepts 2f+1 tentative replies (§5.1.2)
	// even though the batch can never commit in this view.
	clA := c.NewClient()
	clA.RetryTimeout = 5 * time.Second
	if got := kvservice.DecodeU64(mustInvoke(t, clA, kvservice.Incr(), false)); got != 1 {
		t.Fatalf("tentative incr -> %d", got)
	}
	waitReplicas(t, c, 1, 3, "tentative execution", func(r *Replica) bool {
		var ok bool
		r.do(func() { ok = r.lastExec == 1 && r.lastCommitted == 0 })
		return ok
	})

	// The read-only request must queue (state is not quiescent) and must
	// NOT need a client retry to complete: its answer comes from the queue.
	clB := c.NewClient()
	clB.RetryTimeout = 30 * time.Second
	clB.MaxRetries = 0
	type invokeResult struct {
		res []byte
		err error
	}
	done := make(chan invokeResult, 1)
	go func() {
		res, err := clB.Invoke(kvservice.Get(), true)
		done <- invokeResult{res, err}
	}()
	waitReplicas(t, c, 1, 3, "read-only request queued", func(r *Replica) bool {
		var n int
		r.do(func() { n = len(r.roQueue) })
		return n > 0
	})

	// Cut off the primary and push a request through the backups: their
	// view-change timers fire and the group moves to view 1, where commits
	// flow again. The rolled-back tentative write re-commits there.
	net.Isolate(0)
	clC := c.NewClient()
	clC.RetryTimeout = 50 * time.Millisecond
	clC.MaxRetries = 60
	mustInvoke(t, clC, kvservice.Noop(), false)

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("queued read-only request was dropped across the view change: %v", r.err)
		}
		if got := kvservice.DecodeU64(r.res); got != 1 {
			t.Fatalf("read-only reply after view change: counter=%d, want 1", got)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("queued read-only request never answered after the view change")
	}
	if v := c.Replica(1).View(); v < 1 {
		t.Fatalf("no view change happened (view %d); test exercised nothing", v)
	}
}

// waitReplicas polls cond on replicas [from, to] until it holds everywhere.
func waitReplicas(t *testing.T, c *Cluster, from, to int, what string,
	cond func(*Replica) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		all := true
		for i := from; i <= to; i++ {
			if !cond(c.Replica(i)) {
				all = false
				break
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s on replicas %d..%d", what, from, to)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
