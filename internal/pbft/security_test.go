package pbft

// Tests for the defenses of §5.5 (denial of service, faulty clients) and
// the authentication rules of §3.2.2.

import (
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/kvservice"
	"repro/internal/message"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// rawSender lets tests inject hand-crafted datagrams as an attacker would.
type rawSender struct {
	trans transport.Transport
}

func newRawSender(net *simnet.Network, id message.NodeID) *rawSender {
	return &rawSender{trans: net.Attach(id, func([]byte) {})}
}

func TestForgedRequestRejected(t *testing.T) {
	// A request whose authenticator was computed with the wrong keys must
	// not execute.
	cfg := testConfig()
	c := NewLocalCluster(4, cfg, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(c.Stop)

	attacker := newRawSender(c.Net, message.ClientIDBase+77)
	forged := &message.Request{
		Client:    message.ClientIDBase + 78, // claims to be someone else
		Timestamp: 1,
		Replier:   message.NoNode,
		Op:        kvservice.Incr(),
	}
	// Authenticator computed with the attacker's own keys, not the victim's.
	ks := crypto.NewKeyStore(uint32(message.ClientIDBase + 77))
	for i := 0; i < 4; i++ {
		ks.InstallInitial(uint32(i))
	}
	forged.Auth = message.Auth{Kind: message.AuthVector, Vector: ks.MakeAuthenticator(4, forged.Payload())}
	for i := 0; i < 4; i++ {
		attacker.trans.Send(message.NodeID(i), forged.Marshal())
	}
	time.Sleep(150 * time.Millisecond)

	cl := c.NewClient()
	res := mustInvoke(t, cl, kvservice.Get(), true)
	if got := kvservice.DecodeU64(res); got != 0 {
		t.Fatalf("forged increment executed: counter=%d", got)
	}
	m := c.Replica(0).Metrics()
	if m.MsgsDroppedBadAuth == 0 {
		t.Fatal("forged message was not counted as dropped")
	}
}

func TestForgedPrePrepareRejected(t *testing.T) {
	// An attacker impersonating the primary cannot inject batches.
	cfg := testConfig()
	c := NewLocalCluster(4, cfg, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(c.Stop)

	attacker := newRawSender(c.Net, message.ClientIDBase+99)
	evil := &message.Request{Client: message.ClientIDBase + 99, Timestamp: 1, Op: kvservice.Incr()}
	pp := &message.PrePrepare{
		View: 0, Seq: 1,
		Inline:  []message.Request{*evil},
		Replica: 0, // claims to be the primary
	}
	pp.Auth = message.Auth{Kind: message.AuthVector,
		Vector: crypto.Authenticator{MACs: make([]crypto.MAC, 4)}} // garbage MACs
	for i := 1; i < 4; i++ {
		attacker.trans.Send(message.NodeID(i), pp.Marshal())
	}
	time.Sleep(150 * time.Millisecond)
	cl := c.NewClient()
	res := mustInvoke(t, cl, kvservice.Get(), true)
	if kvservice.DecodeU64(res) != 0 {
		t.Fatal("forged pre-prepare caused execution")
	}
}

func TestReplayedRequestExecutesOnce(t *testing.T) {
	// Capture a legitimate request and replay it: the timestamp cache must
	// suppress re-execution (§5.5).
	cfg := testConfig()
	c := NewLocalCluster(4, cfg, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(c.Stop)

	var captured []byte
	c.Net.SetFilter(func(src, dst message.NodeID, p []byte) ([]byte, bool) {
		if src.IsClient() && captured == nil {
			m, err := message.Unmarshal(p)
			if err == nil {
				if _, ok := m.(*message.Request); ok {
					captured = append([]byte(nil), p...)
				}
			}
		}
		return p, true
	})
	cl := c.NewClient()
	mustInvoke(t, cl, kvservice.Incr(), false)
	c.Net.SetFilter(nil)
	if captured == nil {
		t.Fatal("no request captured")
	}

	attacker := newRawSender(c.Net, message.ClientIDBase+55)
	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			attacker.trans.Send(message.NodeID(i), captured)
		}
	}
	time.Sleep(200 * time.Millisecond)
	res := mustInvoke(t, cl, kvservice.Get(), true)
	if got := kvservice.DecodeU64(res); got != 1 {
		t.Fatalf("replay executed: counter=%d, want 1", got)
	}
}

func TestFaultyClientCannotMarkWriteReadOnly(t *testing.T) {
	// §5.1.3: a faulty client marking a write as read-only must not corrupt
	// state through the read-only fast path. The service-specific IsReadOnly
	// upcall demotes the request to the ordered read-write path, so it
	// executes exactly once, through consensus — never unordered, and never
	// more than once however often it is replayed.
	cfg := testConfig()
	c := NewLocalCluster(4, cfg, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(c.Stop)

	// Craft a read-only-flagged increment by hand.
	ks := crypto.NewKeyStore(uint32(message.ClientIDBase + 5))
	for i := 0; i < 4; i++ {
		ks.InstallInitial(uint32(i))
	}
	evil := &message.Request{
		Client:    message.ClientIDBase + 5,
		Timestamp: 1,
		Flags:     message.FlagReadOnly,
		Replier:   message.NoNode,
		Op:        kvservice.Incr(), // a write!
	}
	evil.Auth = message.Auth{Kind: message.AuthVector, Vector: ks.MakeAuthenticator(4, evil.Payload())}
	sender := newRawSender(c.Net, message.ClientIDBase+5)
	send := func() {
		for i := 0; i < 4; i++ {
			sender.trans.Send(message.NodeID(i), evil.Marshal())
		}
	}
	send()

	// The demoted write lands exactly once via the ordered path.
	cl := c.NewClient()
	deadline := time.Now().Add(5 * time.Second)
	for {
		res := mustInvoke(t, cl, kvservice.Get(), true)
		if kvservice.DecodeU64(res) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("demoted write never executed: counter=%d, want 1",
				kvservice.DecodeU64(res))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Replays of the same timestamp must not execute again (§2.3.3).
	send()
	send()
	time.Sleep(150 * time.Millisecond)
	res := mustInvoke(t, cl, kvservice.Get(), true)
	if got := kvservice.DecodeU64(res); got != 1 {
		t.Fatalf("replayed demoted write executed again: counter=%d, want 1", got)
	}
}

func TestQueueFairnessOneSlotPerClient(t *testing.T) {
	// §5.5: the request queue retains only the newest request per client, so
	// one client cannot monopolize the queue.
	cfg := testConfig()
	c := NewLocalCluster(4, cfg, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(c.Stop)
	r := c.Replica(0)
	r.do(func() {
		cli := message.ClientIDBase + 9
		for ts := uint64(1); ts <= 10; ts++ {
			req := &message.Request{Client: cli, Timestamp: ts, Op: kvservice.Incr()}
			r.log.StoreRequest(req)
			r.enqueueRequest(req)
		}
		if r.queue.Len() != 1 {
			t.Errorf("queue holds %d entries for one client, want 1", r.queue.Len())
		}
	})
}

func TestLossyAndDuplicatingNetwork(t *testing.T) {
	// End-to-end under 20% loss + 20% duplication + jitter: correctness and
	// exactly-once must hold (§2.1's network model).
	cfg := testConfig()
	net := simnet.New(simnet.WithSeed(77), simnet.WithDefaults(simnet.LinkConfig{
		LossRate: 0.2, DupRate: 0.2, Jitter: 2 * time.Millisecond,
	}))
	c := NewCluster(net, cfg, 4, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(func() { c.Stop(); net.Close() })

	cl := c.NewClient()
	cl.RetryTimeout = 80 * time.Millisecond
	cl.MaxRetries = 40
	for i := 1; i <= 10; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d -> %d under loss+dup", i, got)
		}
	}
}

func TestWANProfileCluster(t *testing.T) {
	// A wide-area link model (10ms +- 2ms, 1 Gbit/s): the protocol must
	// still complete, just slower — sanity for the latency model used in
	// the experiments.
	cfg := testConfig()
	cfg.ViewChangeTimeout = 2 * time.Second
	net := simnet.New(simnet.WithSeed(13), simnet.WithDefaults(simnet.LinkConfig{
		Latency: 10 * time.Millisecond, Jitter: 2 * time.Millisecond, BytesPerSec: 125e6,
	}))
	c := NewCluster(net, cfg, 4, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(func() { c.Stop(); net.Close() })
	cl := c.NewClient()
	cl.RetryTimeout = 2 * time.Second

	start := time.Now()
	mustInvoke(t, cl, kvservice.Incr(), false)
	el := time.Since(start)
	// 4 one-way delays minimum (request, pre-prepare, prepare, reply).
	if el < 35*time.Millisecond {
		t.Fatalf("latency %v impossibly low for a 10ms-per-hop network", el)
	}
	if el > 500*time.Millisecond {
		t.Fatalf("latency %v unreasonably high", el)
	}
}
