package pbft

import (
	"testing"
	"time"
)

func TestMetricsMergeSemantics(t *testing.T) {
	a := Metrics{
		RequestsExecuted: 100, BatchesExecuted: 10,
		ViewChanges: 1, InboxDrops: 3,
		LastTransferTime: 5 * time.Millisecond,
		LastRecoveryTime: 2 * time.Second,
		CkptDigestTime:   10 * time.Millisecond,
		BatchesProposed:  10, RequestsProposed: 40, BatchFillAvg: 4.0,
		QueueDepth: 7, BatchTarget: 4, ExecQueueDepth: 2,
	}
	b := Metrics{
		RequestsExecuted: 50, BatchesExecuted: 25,
		LastTransferTime: 9 * time.Millisecond,
		LastRecoveryTime: 1 * time.Second,
		CkptDigestTime:   15 * time.Millisecond,
		BatchesProposed:  30, RequestsProposed: 40, BatchFillAvg: 1.33,
		QueueDepth: 1, BatchTarget: 9, ExecQueueDepth: 5,
	}
	m := SumMetrics(a, b)

	if m.RequestsExecuted != 150 || m.BatchesExecuted != 35 || m.ViewChanges != 1 || m.InboxDrops != 3 {
		t.Fatalf("counters should add: %+v", m)
	}
	if m.QueueDepth != 8 || m.ExecQueueDepth != 7 {
		t.Fatalf("backlog gauges should add: %+v", m)
	}
	if m.LastTransferTime != 9*time.Millisecond || m.LastRecoveryTime != 2*time.Second {
		t.Fatalf("last-observed durations should take the max: %+v", m)
	}
	if m.CkptDigestTime != 25*time.Millisecond {
		t.Fatalf("cumulative digest time should add: %v", m.CkptDigestTime)
	}
	if m.BatchTarget != 9 {
		t.Fatalf("batch target should take the max: %d", m.BatchTarget)
	}
	// 80 requests over 40 batches = 2.0 — NOT the mean of 4.0 and 1.33.
	if m.BatchFillAvg != 2.0 {
		t.Fatalf("fill avg must be recomputed from totals: %v", m.BatchFillAvg)
	}
}

func TestMetricsMergeZero(t *testing.T) {
	var zero Metrics
	if got := SumMetrics(); got != zero {
		t.Fatalf("empty sum = %+v", got)
	}
	a := Metrics{RequestsProposed: 6, BatchesProposed: 2, BatchFillAvg: 3}
	if got := SumMetrics(a, zero); got != a {
		t.Fatalf("identity merge changed the snapshot: %+v", got)
	}
	if got := SumMetrics(zero); got.BatchFillAvg != 0 {
		t.Fatalf("zero-batch fill avg must stay 0, got %v", got.BatchFillAvg)
	}
}
