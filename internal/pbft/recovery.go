package pbft

import (
	"encoding/binary"
	"sort"
	"time"

	"repro/internal/message"
	"repro/internal/quorum"
	"repro/internal/vlog"
)

// recoveryPhase tracks the recovering replica's progress through §4.3.2.
type recoveryPhase int

const (
	recIdle recoveryPhase = iota
	recEstimating
	recRequesting
	recChecking
	recWaitingStable
)

// recoveryState is the BFT-PR bookkeeping.
type recoveryState struct {
	inRecovery bool
	phase      recoveryPhase
	startedAt  time.Time

	// Simulated secure co-processor: the signing key lives in Replica.kp;
	// the monotonic counter is here (§4.2).
	coCounter uint64
	epoch     uint32

	// Estimation protocol.
	estNonce   uint64
	estMinC    map[message.NodeID]message.Seq
	estMaxP    map[message.NodeID]message.Seq
	hM         message.Seq
	estStarted time.Time

	// Recovery request tracking. The recovering replica collects replies to
	// its own recovery request exactly like a client (§4.3.2): it may learn
	// the request's sequence number from the replies rather than from local
	// execution (e.g. when it caught up via state transfer).
	recoveryTs    uint64
	recoverySeq   message.Seq // sequence number the request executed at
	recoveryPoint message.Seq
	reqRaw        []byte                    // marshaled recovery request, for retransmission
	reqSentAt     time.Time                 // last (re)transmission
	replies       map[message.NodeID]uint64 // replica -> reported exec seq

	// Server-side: rate limiting of peers' recovery requests (§4.3.2) and
	// the set of replicas currently recovering (drives null-request
	// generation so recovery finishes on an idle system).
	lastRecoveryFrom map[message.NodeID]time.Time
	recovering       map[message.NodeID]message.Seq // replica -> recovery point
	lastNewKeyCtr    map[message.NodeID]uint64

	nullBatchDeadline time.Time
}

func (r *Replica) initRecoveryState() {
	r.rec = recoveryState{
		estMinC:          make(map[message.NodeID]message.Seq),
		estMaxP:          make(map[message.NodeID]message.Seq),
		lastRecoveryFrom: make(map[message.NodeID]time.Time),
		recovering:       make(map[message.NodeID]message.Seq),
		lastNewKeyCtr:    make(map[message.NodeID]uint64),
	}
}

// ---------------------------------------------------------------------------
// Key refreshment (§4.3.1)
// ---------------------------------------------------------------------------

// refreshKeys generates fresh in-keys for every replica peer and announces
// them in a signed new-key message.
func (r *Replica) refreshKeys() {
	r.rec.epoch++
	r.rec.coCounter++
	nk := &message.NewKey{
		Replica: r.id,
		Epoch:   r.rec.epoch,
		Counter: r.rec.coCounter,
	}
	var seeds []uint64
	for i := 0; i < r.n; i++ {
		peer := message.NodeID(i)
		if peer == r.id {
			continue
		}
		seed := r.rng.Uint64()
		key := r.ks.RefreshIn(uint32(peer), r.rec.epoch, seed)
		seeds = append(seeds, seed)
		nk.Peers = append(nk.Peers, peer)
		nk.Keys = append(nk.Keys, key)
	}
	// Durable first (counter + seeds, with a barrier): once the
	// announcement escapes, peers hold us to this counter and these
	// in-keys forever — a restart that forgot them would be deaf (old
	// in-keys rejected) and mute (counter reuse suppressed as replay).
	r.walKeyRefresh(seeds)
	r.multicastSigned(nk) // signed by the co-processor
}

// onNewKey installs the fresh key a peer chose for our traffic to it.
func (r *Replica) onNewKey(nk *message.NewKey) {
	// MAC-mode session keys derive for ANY principal ID: authentication
	// proves key possession, not group membership. Bound the claimed ID
	// before it keys the counter map and the WAL bookkeeping.
	if nk.Replica == r.id || int(nk.Replica) >= r.n || len(nk.Peers) != len(nk.Keys) {
		return
	}
	// Suppress-replay defense: the co-processor counter must advance.
	if nk.Counter <= r.rec.lastNewKeyCtr[nk.Replica] {
		return
	}
	r.rec.lastNewKeyCtr[nk.Replica] = nk.Counter
	for i, p := range nk.Peers {
		if p == r.id {
			r.ks.SetOut(uint32(nk.Replica), nk.Keys[i], nk.Epoch)
			// The peer forgot its old in-key the moment it rotated:
			// survive a crash holding the new one.
			r.walNewKey(nk.Replica, nk.Epoch, nk.Counter, nk.Keys[i])
		}
	}
}

// ---------------------------------------------------------------------------
// Recovery (§4.3.2)
// ---------------------------------------------------------------------------

// Recover triggers proactive recovery immediately (the watchdog also calls
// this on its period).
func (r *Replica) Recover() {
	r.do(func() { r.startRecovery() })
}

// Recovering reports whether a recovery is in progress.
func (r *Replica) Recovering() bool {
	var b bool
	r.do(func() { b = r.rec.inRecovery })
	return b
}

// startRecovery begins the §4.3.2 sequence: "reboot", re-key, estimate,
// request, check state, and wait for a stable checkpoint at the recovery
// point. The replica keeps participating throughout, as the thesis requires
// for the common case where it was not actually faulty.
func (r *Replica) startRecovery() {
	if r.rec.inRecovery {
		return
	}
	r.metrics.Recoveries++
	r.rec.inRecovery = true
	r.rec.startedAt = time.Now()

	// "Reboot": volatile non-certificate protocol state is rebuilt; the
	// saved state (region, checkpoints, log) survives. A recovering primary
	// first hands off its view (§4.3.2).
	if r.isPrimary() && r.active {
		r.startViewChange(r.view + 1)
	}

	// Change the keys others use to talk to us: a compromised replica's
	// keys are known to the attacker.
	r.refreshKeys()

	// Estimation protocol for H_M.
	r.rec.phase = recEstimating
	r.rec.estNonce = r.rng.Uint64()
	r.rec.estMinC = make(map[message.NodeID]message.Seq)
	r.rec.estMaxP = make(map[message.NodeID]message.Seq)
	r.rec.estStarted = time.Now()
	q := &message.QueryStable{Replica: r.id, Nonce: r.rec.estNonce}
	r.multicastReplicas(q)
}

func (r *Replica) onQueryStable(q *message.QueryStable) {
	if q.Replica == r.id {
		return
	}
	rs := &message.ReplyStable{
		LastCkpt:     r.log.Low(),
		LastPrepared: r.highestPrepared(),
		Replica:      r.id,
		Nonce:        q.Nonce,
	}
	r.sendTo(q.Replica, rs)
}

// highestPrepared returns the largest sequence number with a prepared
// certificate in the log.
func (r *Replica) highestPrepared() message.Seq {
	maxP := r.log.Low()
	r.log.Slots(func(s *vlog.Slot) {
		if s.Prepared && s.Seq > maxP {
			maxP = s.Seq
		}
	})
	return maxP
}

func (r *Replica) onReplyStable(rs *message.ReplyStable) {
	if !r.rec.inRecovery || r.rec.phase != recEstimating || rs.Nonce != r.rec.estNonce {
		return
	}
	// Only group members answer QueryStable; in MAC mode any principal that
	// holds a session key can authenticate, so bound the claimed replica ID
	// before it keys the estimation maps.
	if int(rs.Replica) >= r.n {
		return
	}
	// Track min c and max p per replica (§4.3.2).
	if cur, ok := r.rec.estMinC[rs.Replica]; !ok || rs.LastCkpt < cur {
		r.rec.estMinC[rs.Replica] = rs.LastCkpt
	}
	if cur, ok := r.rec.estMaxP[rs.Replica]; !ok || rs.LastPrepared > cur {
		r.rec.estMaxP[rs.Replica] = rs.LastPrepared
	}
	r.tryFinishEstimation()
}

// tryFinishEstimation selects s_M: a value c from some replica such that 2f
// other replicas reported checkpoints <= c and f other replicas reported
// prepared numbers >= c. H_M = L + s_M bounds any honest high water mark.
func (r *Replica) tryFinishEstimation() {
	// Include our own values.
	r.rec.estMinC[r.id] = r.log.Low()
	r.rec.estMaxP[r.id] = r.highestPrepared()

	// Several candidates can satisfy the predicate simultaneously (peers
	// legitimately report different checkpoints); scan them in node-id order
	// so every seeded run picks the same s_M.
	cands := make([]message.NodeID, 0, len(r.rec.estMinC))
	for cand := range r.rec.estMinC {
		cands = append(cands, cand)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	for _, cand := range cands {
		c := r.rec.estMinC[cand]
		le, ge := 0, 0
		for peer, v := range r.rec.estMinC {
			if peer != cand && v <= c {
				le++
			}
		}
		for peer, v := range r.rec.estMaxP {
			if peer != cand && v >= c {
				ge++
			}
		}
		if le >= quorum.StrongOthers(r.f) && ge >= quorum.WeakOthers(r.f) {
			r.finishEstimation(c)
			return
		}
	}
}

func (r *Replica) finishEstimation(sM message.Seq) {
	r.rec.hM = sM + r.log.LogSize()
	r.rec.phase = recRequesting

	// Discard any log entries and checkpoints above H_M: they may be
	// fabrications of an attacker who controlled this replica.
	r.log.Slots(func(s *vlog.Slot) {
		if s.Seq > r.rec.hM {
			s.Executed = false
		}
	})

	// Multicast the signed recovery request through the normal protocol.
	r.rec.coCounter++
	r.rec.recoveryTs = r.rec.coCounter
	var op [8]byte
	binary.LittleEndian.PutUint64(op[:], uint64(r.rec.hM))
	req := &message.Request{
		Client:    r.id,
		Timestamp: r.rec.recoveryTs,
		Flags:     message.FlagRecovery,
		Replier:   message.NoNode,
		Op:        op[:],
	}
	r.authSigned(req)
	r.rec.reqRaw = req.Marshal()
	r.rec.reqSentAt = time.Now()
	r.rec.replies = make(map[message.NodeID]uint64)
	r.multicastRawBytes(r.rec.reqRaw)
	// Process our own copy so we queue it like everyone else.
	r.onRequest(req)
}

// noteRecoveryRequest rate-limits recovery requests (denial-of-service
// defense: one per peer per half watchdog period, §4.3.2).
func (r *Replica) noteRecoveryRequest(req *message.Request) {
	last := r.rec.lastRecoveryFrom[req.Client]
	minGap := r.cfg.WatchdogInterval / 2
	if minGap == 0 {
		minGap = 50 * time.Millisecond
	}
	if !last.IsZero() && time.Since(last) < minGap {
		// Drop from the queue: handled by leaving it unqueued. (The request
		// was already stored; the primary simply won't batch it again.)
		return
	}
	// Recovery requests are co-processor signed and verified against the
	// directory (verifySig): unknown principals have no public key, so the
	// rate-limit map is bounded by registered membership.
	r.rec.lastRecoveryFrom[req.Client] = time.Now() // bftlint:allow=bfttaint
}

// executeRecoveryRequest runs when a recovery request commits and executes
// (§4.3.2): every other replica refreshes its session keys, and the result
// tells the recovering replica the request's sequence number. The staged
// path splits it: the result is precomputed at dispatch (recoveryResult)
// and the protocol effects run on the event loop after the batch command
// ships (recoveryRequestEffects) — recovery requests never touch the
// Region, so nothing of theirs belongs on the executor.
func (r *Replica) executeRecoveryRequest(req *message.Request, seq message.Seq) []byte {
	r.recoveryRequestEffects(req, seq)
	return recoveryResult(seq)
}

// recoveryRequestEffects applies the protocol-side effects of an executed
// recovery request.
func (r *Replica) recoveryRequestEffects(req *message.Request, seq message.Seq) {
	recoverer := req.Client
	if recoverer != r.id {
		// Keys we chose for the recovering replica may be known to the
		// attacker; refresh them.
		r.refreshKeys()
		target := (seq/r.cfg.CheckpointInterval+1)*r.cfg.CheckpointInterval + r.log.LogSize()
		r.rec.recovering[recoverer] = target
		r.armNullBatches()
	} else if r.rec.inRecovery && r.rec.phase == recRequesting {
		r.finishRecoveryRequest(seq)
	}
}

// recoveryResult encodes a recovery request's reply: the sequence number it
// executed at.
func recoveryResult(seq message.Seq) []byte {
	var out [8]byte
	binary.LittleEndian.PutUint64(out[:], uint64(seq))
	return out[:]
}

// finishRecoveryRequest records the sequence number the recovery request
// executed at and moves on to state checking.
func (r *Replica) finishRecoveryRequest(seq message.Seq) {
	if !r.rec.inRecovery || r.rec.phase != recRequesting {
		return
	}
	r.rec.recoverySeq = seq
	hRec := (seq/r.cfg.CheckpointInterval+1)*r.cfg.CheckpointInterval + r.log.LogSize()
	r.rec.recoveryPoint = maxSeq(r.rec.hM, hRec)
	r.startStateCheck()
}

// onRecoveryReply collects replies to our own recovery request (§4.3.2): a
// weak certificate of f+1 matching results tells us the sequence number it
// executed at even if we never executed it locally (we may have skipped
// those batches via state transfer).
func (r *Replica) onRecoveryReply(rep *message.Reply) {
	if !r.rec.inRecovery || r.rec.phase != recRequesting {
		return
	}
	if rep.Client != r.id || rep.Timestamp != r.rec.recoveryTs || !rep.HasResult {
		return
	}
	if len(rep.Result) != 8 {
		return
	}
	// Replies come from group members; bound the claimed replica ID before
	// it keys the reply map (MAC possession alone does not prove membership).
	if int(rep.Replica) >= r.n {
		return
	}
	if r.rec.replies == nil {
		r.rec.replies = make(map[message.NodeID]uint64)
	}
	r.rec.replies[rep.Replica] = binary.LittleEndian.Uint64(rep.Result)
	counts := make(map[uint64]int)
	for _, v := range r.rec.replies {
		counts[v]++
	}
	// At most one value can carry an honest f+1 certificate, but scan in
	// sorted order anyway: the reply set a Byzantine peer controls must not
	// get to vary the scan through map iteration order.
	seqs := make([]uint64, 0, len(counts))
	for s := range counts {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		if counts[seq] >= quorum.Weak(r.f) {
			r.finishRecoveryRequest(message.Seq(seq))
			return
		}
	}
}

func maxSeq(a, b message.Seq) message.Seq {
	if a > b {
		return a
	}
	return b
}

// startStateCheck verifies the local state against the partition tree and
// repairs corruption via state transfer (§5.3.3). The digest sweep and the
// page invalidation run on the executor (rendezvous) on the staged path;
// the transfer itself is driven from the event loop as usual.
func (r *Replica) startStateCheck() {
	r.rec.phase = recChecking
	var bad []int
	r.execSync(func() { bad = r.ckpt.RecomputeFull() })
	if len(bad) > 0 {
		// Pages whose content no longer matches their digest were corrupted
		// behind the library's back. Fetch the latest stable checkpoint;
		// the per-page comparison inside the transfer re-fetches exactly
		// the damaged pages.
		low := r.log.Low()
		if d, ok := r.ownCkptDigest(low); ok {
			// Invalidate the bad pages' live digests so the transfer diff
			// sees them as stale.
			r.execSync(func() {
				for _, p := range bad {
					r.ckpt.InstallPage(p, 0, r.region.Page(p))
				}
			})
			r.startStateTransfer(low, d)
		}
	}
	r.rec.phase = recWaitingStable
	r.recoveryCheckpointStable(r.log.Low())
}

// recoveryCheckpointStable completes recovery once a checkpoint at or above
// the recovery point is stable (§4.3.2: "replica i is recovered when the
// checkpoint with sequence number H is stable").
func (r *Replica) recoveryCheckpointStable(stable message.Seq) {
	if r.rec.inRecovery && r.rec.phase == recWaitingStable && stable >= r.rec.recoveryPoint {
		r.rec.inRecovery = false
		r.rec.phase = recIdle
		r.metrics.RecoveriesCompleted++
		r.metrics.LastRecoveryTime = time.Since(r.rec.startedAt)
	}
	// Server side: drop peers whose recovery point has been reached.
	for peer, target := range r.rec.recovering {
		if stable >= target {
			delete(r.rec.recovering, peer)
		}
	}
}

// armNullBatches schedules null-request generation at the primary while any
// replica is recovering, so recovery completes on an idle system (§4.3.2).
func (r *Replica) armNullBatches() {
	if len(r.rec.recovering) > 0 && r.rec.nullBatchDeadline.IsZero() {
		r.rec.nullBatchDeadline = time.Now().Add(10 * time.Millisecond)
	}
}

// recoveryTick drives estimation retries, recovery-request retransmission,
// and null-batch generation.
func (r *Replica) recoveryTick(now time.Time) {
	if r.rec.inRecovery && r.rec.phase == recEstimating &&
		now.Sub(r.rec.estStarted) > 100*time.Millisecond {
		// Retransmit the query (lost replies).
		r.rec.estStarted = now
		q := &message.QueryStable{Replica: r.id, Nonce: r.rec.estNonce}
		r.multicastReplicas(q)
	}
	if r.rec.inRecovery && r.rec.phase == recRequesting && r.rec.reqRaw != nil &&
		now.Sub(r.rec.reqSentAt) > 300*time.Millisecond {
		// The recovery request can be lost across view changes; retransmit
		// it (same co-processor timestamp, so execution stays idempotent).
		r.rec.reqSentAt = now
		r.multicastRawBytes(r.rec.reqRaw)
	}

	if len(r.rec.recovering) == 0 {
		r.rec.nullBatchDeadline = time.Time{}
		return
	}
	if r.rec.nullBatchDeadline.IsZero() || now.Before(r.rec.nullBatchDeadline) {
		r.armNullBatches()
		return
	}
	r.rec.nullBatchDeadline = now.Add(10 * time.Millisecond)
	if r.isPrimary() && r.active && r.queue.Len() == 0 && r.seqno < r.log.High() &&
		r.seqno < r.lastExec+message.Seq(r.cfg.Opt.AgreementWindow) {
		// Issue a null batch: an empty batch whose execution is a no-op but
		// advances sequence numbers toward the next checkpoint.
		r.seqno++
		pp := &message.PrePrepare{View: r.view, Seq: r.seqno, Replica: r.id,
			NonDet: r.service.ProposeNonDet()}
		r.multicastReplicas(pp)
		r.acceptPrePrepare(pp)
	}
}
