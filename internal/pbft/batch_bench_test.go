package pbft

import (
	"testing"

	"repro/internal/message"
)

// BenchmarkBatchAssembly measures the primary's hot-path batch assembly —
// O(1) intrusive-queue enqueues plus a takeBatch drain — against a standing
// backlog of 1024 distinct clients. Each iteration assembles one 16-request
// batch and replenishes the queue, so ns/op is the proposal-side cost of a
// full batch independent of agreement and the network.
func BenchmarkBatchAssembly(b *testing.B) {
	cfg := testConfig()
	c := newTestCluster(b, 4, cfg, nil)
	r := c.Replica(0)
	r.do(func() {
		const clients = 1024
		reqs := make([]*message.Request, clients)
		for i := range reqs {
			reqs[i] = &message.Request{
				Client:    message.ClientIDBase + message.NodeID(i),
				Timestamp: 1,
				Op:        make([]byte, 32),
			}
			r.log.StoreRequest(reqs[i])
			r.enqueueRequest(reqs[i])
		}
		next := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch, _ := r.takeBatch(16)
			if len(batch) != 16 {
				b.Fatalf("batch of %d, want 16", len(batch))
			}
			for range batch {
				r.enqueueRequest(reqs[next%clients])
				next++
			}
		}
	})
}
