package pbft

// End-to-end check that the protocol engine runs unmodified over real UDP
// sockets (the thesis's transport, §6.1) via the udpnet adapter.

import (
	"testing"
	"time"

	"repro/internal/kvservice"
	"repro/internal/message"
	"repro/internal/udpnet"
)

func TestClusterOverRealUDP(t *testing.T) {
	book, err := udpnet.LoopbackBook(4, 2)
	if err != nil {
		t.Skipf("cannot bind loopback ports: %v", err)
	}
	net := udpnet.NewNetwork(book)

	cfg := testConfig()
	cfg.ViewChangeTimeout = time.Second
	cfg.N = 4
	cfg.Validate()

	dir := NewDirectory(4)
	var replicas []*Replica
	for i := 0; i < 4; i++ {
		rc := cfg
		rc.ID = message.NodeID(i)
		r := NewReplica(rc, dir, net, kvservice.Factory)
		replicas = append(replicas, r)
	}
	for _, r := range replicas {
		r.Start()
	}
	t.Cleanup(func() {
		for _, r := range replicas {
			r.Stop()
		}
	})

	cl := NewClient(message.ClientIDBase, dir, net, cfg.Mode, cfg.Opt)
	t.Cleanup(cl.Close)
	cl.RetryTimeout = 300 * time.Millisecond
	cl.MaxRetries = 15

	for i := 1; i <= 5; i++ {
		res, err := cl.Invoke(kvservice.Incr(), false)
		if err != nil {
			t.Fatalf("udp invoke %d: %v", i, err)
		}
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("udp incr %d -> %d", i, got)
		}
	}
	// Read-only over UDP too.
	res, err := cl.Invoke(kvservice.Get(), true)
	if err != nil || kvservice.DecodeU64(res) != 5 {
		t.Fatalf("udp read-only: %v %d", err, kvservice.DecodeU64(res))
	}
}
