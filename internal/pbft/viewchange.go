package pbft

import (
	"bytes"
	"sort"
	"time"

	"repro/internal/crypto"
	"repro/internal/message"
	"repro/internal/quorum"
	"repro/internal/wal"
)

// vcState holds all view-change bookkeeping (§3.2.4). It outlives every
// message handler that populates it, so slices and maps taken from inbound
// messages must be deep-copied before they land here — the PR 2 qset
// aliasing bug stored a caller's slice directly and a later in-place sort
// corrupted the sender's message. bftalias enforces the copy.
//
// bftlint:longlived
type vcState struct {
	// pending is true between sending a view-change and accepting the
	// corresponding new-view.
	pending bool

	// forView collects view-change messages for the current (pending or
	// active) view, by sender.
	forView map[message.NodeID]*message.ViewChange
	// future stashes view-change messages for views ahead of ours so they
	// are still available when we join (their senders may have moved on by
	// then and be unable to retransmit). Bounded to a small window.
	future map[message.View]map[message.NodeID]*message.ViewChange
	// latestView tracks the highest view each replica has announced, for
	// the f+1 join rule of §2.3.5.
	latestView map[message.NodeID]message.View

	// Primary-side: acks[src][acker] for view-change certificates, and s,
	// the set S of Fig 3-3 (messages with complete certificates).
	acks map[message.NodeID]map[message.NodeID]bool
	s    map[message.NodeID]*message.ViewChange

	// sentNewView dedupes the primary's new-view broadcast for this view.
	sentNewView bool

	// newView is the accepted new-view for the current view; stashedNV is a
	// candidate waiting for its view-change messages to arrive.
	newView   *message.NewView
	stashedNV *message.NewView

	// PSet and QSet carry prepared / pre-prepared history across view
	// changes (§3.2.4, Fig 3-2).
	pset map[message.Seq]message.PInfo
	qset map[message.Seq][]message.DV

	// batchStore maps batch digest -> pre-prepare content so chosen batches
	// can be re-proposed in the new view (the thesis stores requests; with
	// batching the unit is the batch).
	batchStore map[crypto.Digest]*message.PrePrepare
	batchSeq   map[crypto.Digest]message.Seq

	// wantBatches are batch digests the decision procedure needs but this
	// replica lacks; they are fetched content-addressed from peers.
	wantBatches map[crypto.Digest]bool

	// waitTimeout is the doubling new-view wait timer of §2.3.5.
	waitTimeout time.Duration
	timerArmed  bool
}

func (r *Replica) initViewChangeState() {
	r.vc = vcState{
		forView:     make(map[message.NodeID]*message.ViewChange),
		future:      make(map[message.View]map[message.NodeID]*message.ViewChange),
		latestView:  make(map[message.NodeID]message.View),
		acks:        make(map[message.NodeID]map[message.NodeID]bool),
		s:           make(map[message.NodeID]*message.ViewChange),
		pset:        make(map[message.Seq]message.PInfo),
		qset:        make(map[message.Seq][]message.DV),
		batchStore:  make(map[crypto.Digest]*message.PrePrepare),
		batchSeq:    make(map[crypto.Digest]message.Seq),
		wantBatches: make(map[crypto.Digest]bool),
		waitTimeout: 0,
	}
}

// rememberBatch stores a batch body for re-proposal across view changes.
// Identical batch contents can ride at several sequence numbers (null
// batches all share one digest; retransmitted batches get re-proposed), so
// the GC horizon tracks the HIGHEST sequence number the digest was proposed
// at — the body must survive while any live slot may reference it.
func (r *Replica) rememberBatch(pp *message.PrePrepare) {
	d := pp.BatchDigest()
	r.vc.batchStore[d] = pp
	if pp.Seq > r.vc.batchSeq[d] {
		r.vc.batchSeq[d] = pp.Seq
	}
}

// emptyBatchDigest is the digest of a batch with no requests and no
// non-deterministic value: anyone can synthesize its body.
var emptyBatchDigest = message.BatchDigest(nil, nil)

// pruneViewChangeSets drops history at or below a stable checkpoint.
func (r *Replica) pruneViewChangeSets(stable message.Seq) {
	for s := range r.vc.pset {
		if s <= stable {
			delete(r.vc.pset, s)
		}
	}
	for s := range r.vc.qset {
		if s <= stable {
			delete(r.vc.qset, s)
		}
	}
	for d, s := range r.vc.batchSeq {
		if s <= stable {
			delete(r.vc.batchSeq, d)
			delete(r.vc.batchStore, d)
		}
	}
}

// onViewChangeTimeout fires when the primary kept a backup waiting too long.
func (r *Replica) onViewChangeTimeout() {
	r.vcTimerDeadline = time.Time{}
	r.startViewChange(r.view + 1)
}

// startViewChange moves to view nv and multicasts a view-change message
// (Fig 3-2 computes its P and Q components).
func (r *Replica) startViewChange(nv message.View) {
	if nv <= r.view {
		return
	}
	r.metrics.ViewChanges++

	// Make the checkpoint mirror current before it feeds buildViewChange's
	// C component (a report still in flight would under-report a retained
	// checkpoint, weakening the decision procedure's checkpoint selection).
	r.syncExecEvents()

	// Abort tentative executions: revert to the newest snapshot at or below
	// the last committed batch (§5.1.2).
	r.rollbackTentative()

	r.computePQ()

	r.view = nv
	r.active = false
	r.vc.pending = true
	r.vc.forView = make(map[message.NodeID]*message.ViewChange)
	r.vc.acks = make(map[message.NodeID]map[message.NodeID]bool)
	r.vc.s = make(map[message.NodeID]*message.ViewChange)
	r.vc.newView = nil
	r.vc.stashedNV = nil
	r.vc.sentNewView = false
	r.vc.timerArmed = false
	r.vcTimerDeadline = time.Time{}
	if r.vc.waitTimeout == 0 {
		r.vc.waitTimeout = r.vcTimeout
	} else {
		r.vc.waitTimeout *= 2 // exponential backoff (§2.3.5)
	}

	// Clear per-view slot state; history lives in PSet/QSet/batchStore.
	r.log.Reset(r.log.Low())
	r.waitingPP = make(map[message.Seq]*message.PrePrepare)

	// Durability barrier (§3.2.4): the view-change message's P/Q components
	// feed other replicas' new-view proofs. Log the transition and flush —
	// on restart, the walView record's presence proves the multicast may
	// have left, and replay re-runs this view change from the same slots.
	r.walView(nv, false)
	r.walBarrier()

	vc := r.buildViewChange(nv)
	r.multicastReplicas(vc)
	r.acceptViewChange(vc)

	// Replay stashed view-changes for the view we just joined and drop
	// older stashes.
	if m, ok := r.vc.future[nv]; ok {
		delete(r.vc.future, nv)
		for _, fvc := range m {
			r.acceptViewChange(fvc)
		}
	}
	for v := range r.vc.future {
		if v <= nv {
			delete(r.vc.future, v)
		}
	}
}

// rollbackTentative undoes tentative executions that may abort (§5.1.2).
// It runs as an executor rendezvous on the staged path: the closure sees
// every dispatched batch applied and excludes concurrent execution, so the
// revert target and the reverted state are exactly what the serial path
// would compute.
func (r *Replica) rollbackTentative() {
	if r.lastExec <= r.lastCommitted {
		return
	}
	r.execSync(func() {
		// Find the newest snapshot at or below lastCommitted.
		var target message.Seq
		found := false
		for s := r.lastCommitted; ; s-- {
			if _, ok := r.ckpt.Snapshot(s); ok {
				target = s
				found = true
				break
			}
			if s == 0 {
				break
			}
		}
		if !found {
			return
		}
		extra, ok := r.ckpt.RevertTo(target)
		if !ok {
			return
		}
		r.setRepliesFromCheckpoint(extra)
		r.lastExec = target
		r.lastCommitted = target
		// Requests whose only execution was rolled back must not be GC'd:
		// the new view may reassign them to higher sequence numbers.
		r.log.UnmarkExecutedAbove(target)
		for s := range r.execRecords {
			if s > target {
				delete(r.execRecords, s)
			}
		}
		for s := range r.pendingCkpts {
			if s > target {
				delete(r.pendingCkpts, s)
			}
		}
		if r.staged() {
			// Snapshots above the target are gone; invalidate any
			// checkpoint-digest report still in flight for them.
			r.pruneCkptsAbove(target)
			r.xs.epoch++
		}
		r.metrics.Rollbacks++
	})
}

// computePQ folds the current log into PSet and QSet per Fig 3-2.
func (r *Replica) computePQ() {
	low := r.log.Low()
	high := r.log.High()
	for seq := low + 1; seq <= high; seq++ {
		s, ok := r.log.Peek(seq)
		if !ok {
			continue
		}
		if s.HasDigest && s.Prepared {
			r.vc.pset[seq] = message.PInfo{Seq: seq, Digest: s.Digest, View: s.View}
		}
		if s.HasDigest && s.PrePrepared {
			entries := r.vc.qset[seq]
			found := false
			for i := range entries {
				if entries[i].Digest == s.Digest {
					if s.View > entries[i].View {
						entries[i].View = s.View
					}
					found = true
					break
				}
			}
			if !found {
				entries = append(entries, message.DV{Digest: s.Digest, View: s.View})
			}
			// Bounded-space view change (§3.2.5): keep only the QSetBound
			// most recent pre-prepared digests per sequence number.
			if b := r.cfg.QSetBound; b > 0 {
				for len(entries) > b {
					lowest := 0
					for i := 1; i < len(entries); i++ {
						if entries[i].View < entries[lowest].View {
							lowest = i
						}
					}
					entries = append(entries[:lowest], entries[lowest+1:]...)
				}
			}
			r.vc.qset[seq] = entries
		}
	}
}

// buildViewChange assembles ⟨VIEW-CHANGE, nv, h, C, P, Q, i⟩.
func (r *Replica) buildViewChange(nv message.View) *message.ViewChange {
	vc := &message.ViewChange{NewView: nv, H: r.log.Low(), Replica: r.id}
	// C: every retained checkpoint (seq, digest) — from the manager on the
	// serial path, from the digest mirror on the staged path.
	vc.Ckpts = r.ownCkptList()
	// Deterministic order by seq for P and Q.
	seqs := make([]message.Seq, 0, len(r.vc.pset))
	for s := range r.vc.pset {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		vc.P = append(vc.P, r.vc.pset[s])
	}
	seqs = seqs[:0]
	for s := range r.vc.qset {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		// Copy the entries: the live qset keeps mutating (computePQ bumps
		// views in place), and the message we are building is stored, hashed
		// into certificates, and re-marshaled for retransmission — its body
		// must be frozen at build time.
		vc.Q = append(vc.Q, message.QInfo{
			Seq:     s,
			Entries: append([]message.DV(nil), r.vc.qset[s]...),
		})
	}
	return vc
}

// correctViewChange is the correct-view-change predicate: every P/Q entry
// must be for a view before the new view.
func correctViewChange(vc *message.ViewChange) bool {
	for _, p := range vc.P {
		if p.View >= vc.NewView {
			return false
		}
	}
	for _, q := range vc.Q {
		for _, e := range q.Entries {
			if e.View >= vc.NewView {
				return false
			}
		}
	}
	return true
}

// onUnauthenticatedViewChange accepts a view-change whose authenticator did
// not verify, provided its body digest matches the entry for its sender in
// the new-view certificate we are trying to verify. The digest pins the
// content, so authentication adds nothing (§3.2.4: "a backup can accept a
// view-change message whose authenticator is incorrect if it [matches] the
// digest and identifier in V"; we require the full new-view in hand, which
// the primary retransmits alongside).
func (r *Replica) onUnauthenticatedViewChange(vc *message.ViewChange) {
	nv := r.vc.stashedNV
	if nv == nil || !r.vc.pending || nv.View != r.view || vc.NewView != r.view {
		r.metrics.MsgsDroppedBadAuth++
		return
	}
	if !correctViewChange(vc) {
		return
	}
	d := vc.Digest()
	for _, ref := range nv.V {
		if ref.Replica == vc.Replica && ref.VCDigest == d {
			r.acceptViewChange(vc)
			return
		}
	}
	r.metrics.MsgsDroppedBadAuth++
}

func (r *Replica) onViewChange(vc *message.ViewChange) {
	if !correctViewChange(vc) {
		return
	}
	if v, ok := r.vc.latestView[vc.Replica]; !ok || vc.NewView > v {
		r.vc.latestView[vc.Replica] = vc.NewView
	}

	// Self-demotion (§4.3.2): a view-change for v+1 sent by the primary of
	// our current view v is honored immediately — replacing a primary at
	// its own request is always safe, and recovering primaries rely on it
	// to hand off the view without waiting out the backups' timers.
	if vc.NewView == r.view+1 && vc.Replica == r.primary(r.view) && r.active {
		r.startViewChange(vc.NewView)
	}

	// Stash messages for future views: when we join one, its earlier
	// view-changes must still be on hand (§5.2's retransmission cannot
	// recover them once their senders move past that view).
	if vc.NewView > r.view {
		m := r.vc.future[vc.NewView]
		if m == nil {
			if vc.NewView <= r.view+64 { // bound memory (§5.5)
				m = make(map[message.NodeID]*message.ViewChange)
				r.vc.future[vc.NewView] = m
			}
		}
		if m != nil {
			if _, dup := m[vc.Replica]; !dup {
				m[vc.Replica] = vc
			}
		}
	}

	// Join rule (§2.3.5): f+1 replicas ahead of us drag us forward to the
	// smallest of their views.
	if vc.NewView > r.view {
		r.maybeJoinViewChange()
		if vc.NewView != r.view {
			return
		}
	}
	if vc.NewView != r.view {
		return
	}
	r.acceptViewChange(vc)
}

// maybeJoinViewChange applies the f+1 rule.
func (r *Replica) maybeJoinViewChange() {
	var ahead []message.View
	for _, v := range r.vc.latestView {
		if v > r.view {
			ahead = append(ahead, v)
		}
	}
	if len(ahead) >= quorum.Weak(r.f) {
		minV := ahead[0]
		for _, v := range ahead {
			if v < minV {
				minV = v
			}
		}
		r.startViewChange(minV)
	}
}

// acceptViewChange stores a view-change for the current view, acks it, and
// advances primary-side aggregation.
func (r *Replica) acceptViewChange(vc *message.ViewChange) {
	if _, ok := r.vc.forView[vc.Replica]; ok {
		// Keep the first (acks reference its digest).
		r.tryProcessStashedNewView()
		r.checkVCQuorumTimer()
		return
	}
	r.vc.forView[vc.Replica] = vc

	p := r.primary(r.view)
	if r.id == p {
		if vc.Replica == r.id {
			r.vc.s[vc.Replica] = vc // own message needs no certificate
		} else {
			r.countAcksFor(vc)
		}
		r.runPrimaryDecision()
	} else if vc.Replica != r.id {
		// Ack other replicas' view-changes to the new primary (§3.2.4).
		ack := &message.ViewChangeAck{
			View:     r.view,
			Replica:  r.id,
			Source:   vc.Replica,
			VCDigest: vc.Digest(),
		}
		r.sendTo(p, ack)
	}
	r.tryProcessStashedNewView()
	r.checkVCQuorumTimer()
}

// checkVCQuorumTimer arms the doubling wait timer once 2f+1 view-changes for
// the pending view are in (§2.3.5's first refinement).
func (r *Replica) checkVCQuorumTimer() {
	if !r.vc.pending || r.vc.timerArmed {
		return
	}
	if len(r.vc.forView) >= r.log.Quorum() {
		r.vc.timerArmed = true
		r.vcTimerDeadline = time.Now().Add(r.vc.waitTimeout)
	}
}

func (r *Replica) onViewChangeAck(ack *message.ViewChangeAck) {
	if ack.View != r.view || r.primary(r.view) != r.id {
		return
	}
	// Source is the view-change originator the ack vouches for — a claimed
	// ID, not the authenticated sender — and in MAC mode even the sender ID
	// only proves key possession, not membership. Range-check both before
	// they key a map.
	if int(ack.Source) >= r.n || int(ack.Replica) >= r.n {
		return
	}
	m := r.vc.acks[ack.Source]
	if m == nil {
		m = make(map[message.NodeID]bool)
		r.vc.acks[ack.Source] = m
	}
	m[ack.Replica] = true
	if vc, ok := r.vc.forView[ack.Source]; ok {
		r.countAcksFor(vc)
		r.runPrimaryDecision()
	}
}

// countAcksFor promotes src's view-change into S once 2f-1 acks from other
// replicas match it (together with the message itself and the primary's
// implicit ack that is a quorum, §3.2.4).
func (r *Replica) countAcksFor(vc *message.ViewChange) {
	if _, ok := r.vc.s[vc.Replica]; ok {
		return
	}
	d := vc.Digest()
	count := 0
	for acker := range r.vc.acks[vc.Replica] {
		if acker != r.id && acker != vc.Replica {
			count++
		}
	}
	_ = d
	if count >= quorum.Acks(r.f) {
		r.vc.s[vc.Replica] = vc
	}
}

// decision is the outcome of the Fig 3-3 procedure.
type decision struct {
	ok         bool
	ckptSeq    message.Seq
	ckptDigest crypto.Digest
	x          []message.SeqDigest
}

// runDecision executes the decision procedure of Fig 3-3 over the set S.
// It is a pure function of S so backups can re-verify the primary's choice.
func (r *Replica) runDecision(S map[message.NodeID]*message.ViewChange) decision {
	if len(S) < r.log.Quorum() {
		return decision{}
	}
	msgs := make([]*message.ViewChange, 0, len(S))
	for _, vc := range S {
		msgs = append(msgs, vc)
	}
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].Replica < msgs[j].Replica })

	// Checkpoint selection: highest (n,d) such that 2f+1 messages have
	// h <= n and f+1 messages list (n,d) in C.
	type cand struct {
		seq message.Seq
		d   crypto.Digest
	}
	counts := make(map[cand]int)
	for _, m := range msgs {
		for _, c := range m.Ckpts {
			counts[cand{c.Seq, c.Digest}]++
		}
	}
	best := cand{}
	bestOK := false
	for c, cnt := range counts {
		if cnt < r.log.Weak() {
			continue
		}
		reach := 0
		for _, m := range msgs {
			if m.H <= c.seq {
				reach++
			}
		}
		if reach < r.log.Quorum() {
			continue
		}
		if !bestOK || c.seq > best.seq ||
			(c.seq == best.seq && bytes.Compare(c.d[:], best.d[:]) > 0) {
			best = c
			bestOK = true
		}
	}
	if !bestOK {
		return decision{}
	}
	h := best.seq

	// Per-sequence-number selection for (h, h+L].
	var x []message.SeqDigest
	maxN := h
	for n := h + 1; n <= h+r.log.LogSize(); n++ {
		// Candidates: P entries for n across S, tried in deterministic
		// order (view desc, digest desc).
		type pc struct {
			d crypto.Digest
			v message.View
		}
		var cands []pc
		seen := make(map[pc]bool)
		for _, m := range msgs {
			if p, ok := m.PEntry(n); ok {
				c := pc{p.Digest, p.View}
				if !seen[c] {
					seen[c] = true
					cands = append(cands, c)
				}
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].v != cands[j].v {
				return cands[i].v > cands[j].v
			}
			return bytes.Compare(cands[i].d[:], cands[j].d[:]) > 0
		})

		chosen := false
		var chosenD crypto.Digest
		for _, c := range cands {
			// A1: 2f+1 messages with h < n whose P entry for n (if any) is
			// older than v or matches (v,d).
			a1 := 0
			for _, m := range msgs {
				if m.H >= n {
					continue
				}
				ok := true
				if p, has := m.PEntry(n); has {
					if !(p.View < c.v || (p.View == c.v && p.Digest == c.d)) {
						ok = false
					}
				}
				if ok {
					a1++
				}
			}
			if a1 < r.log.Quorum() {
				continue
			}
			// A2: f+1 messages whose Q entry for n vouches (d, v' >= v).
			a2 := 0
			for _, m := range msgs {
				if q, has := m.QEntry(n); has {
					for _, e := range q.Entries {
						if e.Digest == c.d && e.View >= c.v {
							a2++
							break
						}
					}
				}
			}
			if a2 < r.log.Weak() {
				continue
			}
			chosen = true
			chosenD = c.d
			break
		}
		if chosen {
			x = append(x, message.SeqDigest{Seq: n, Digest: chosenD})
			if n > maxN {
				maxN = n
			}
			continue
		}
		// B: 2f+1 messages with h < n and no P entry for n — null request.
		b := 0
		for _, m := range msgs {
			if m.H < n {
				if _, has := m.PEntry(n); !has {
					b++
				}
			}
		}
		if b >= r.log.Quorum() {
			x = append(x, message.SeqDigest{Seq: n, Digest: crypto.ZeroDigest})
			continue
		}
		return decision{} // undecidable yet: wait for more view-changes
	}

	// Trim trailing nulls beyond the last real selection.
	for len(x) > 0 && x[len(x)-1].Seq > maxN {
		x = x[:len(x)-1]
	}
	return decision{ok: true, ckptSeq: h, ckptDigest: best.d, x: x}
}

// runPrimaryDecision tries to build and send the new-view message.
func (r *Replica) runPrimaryDecision() {
	if !r.vc.pending || r.primary(r.view) != r.id || r.vc.sentNewView {
		return
	}
	dec := r.runDecision(r.vc.s)
	if !dec.ok {
		return
	}
	// A3: the primary must hold every chosen batch body — including the
	// separately-transmitted request bodies — before proposing. Empty
	// batches are synthesizable; missing ones are fetched by digest from
	// the peers whose view-changes vouched for them.
	missing := false
	for _, xd := range dec.x {
		if xd.Digest.IsZero() || xd.Digest == emptyBatchDigest {
			continue
		}
		batch := r.vc.batchStore[xd.Digest]
		if batch == nil {
			missing = true
			r.requestBatchBody(xd.Digest)
			continue
		}
		if !r.haveSeparateBodies(batch) {
			missing = true // status/client retransmission brings the bodies
		}
	}
	if missing {
		return
	}
	nv := &message.NewView{
		View:       r.view,
		CkptSeq:    dec.ckptSeq,
		CkptDigest: dec.ckptDigest,
		X:          dec.x,
		Replica:    r.id,
	}
	ids := make([]message.NodeID, 0, len(r.vc.s))
	for id := range r.vc.s {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		nv.V = append(nv.V, message.VCSummary{Replica: id, VCDigest: r.vc.s[id].Digest()})
	}
	r.vc.sentNewView = true
	r.multicastReplicas(nv)
	r.enterNewView(nv)
}

func (r *Replica) onNewView(nv *message.NewView) {
	if nv.Replica != r.primary(nv.View) || nv.View == 0 {
		return
	}
	if nv.View < r.view || (nv.View == r.view && !r.vc.pending) {
		return
	}
	if nv.View > r.view {
		// Join the view change so our own P/Q history is in the mix, then
		// verify the stashed new-view as messages arrive.
		r.startViewChange(nv.View)
		r.vc.stashedNV = nv
		r.tryProcessStashedNewView()
		return
	}
	r.vc.stashedNV = nv
	r.tryProcessStashedNewView()
}

// tryProcessStashedNewView verifies a candidate new-view once every
// referenced view-change message is available (§3.2.4: backups re-run the
// decision procedure).
func (r *Replica) tryProcessStashedNewView() {
	nv := r.vc.stashedNV
	if nv == nil || !r.vc.pending || nv.View != r.view {
		return
	}
	if r.primary(r.view) == r.id {
		return // the primary built its own
	}
	S := make(map[message.NodeID]*message.ViewChange, len(nv.V))
	for _, ref := range nv.V {
		vc, ok := r.vc.forView[ref.Replica]
		if !ok || vc.Digest() != ref.VCDigest {
			return // missing or mismatched: wait for retransmission
		}
		S[ref.Replica] = vc
	}
	if len(S) < r.log.Quorum() {
		return
	}
	dec := r.runDecision(S)
	if !dec.ok || dec.ckptSeq != nv.CkptSeq || dec.ckptDigest != nv.CkptDigest ||
		len(dec.x) != len(nv.X) {
		r.vc.stashedNV = nil
		r.startViewChange(r.view + 1) // bad new-view: replace the primary
		return
	}
	for i := range dec.x {
		if dec.x[i] != nv.X[i] {
			r.vc.stashedNV = nil
			r.startViewChange(r.view + 1)
			return
		}
	}
	r.vc.stashedNV = nil
	r.enterNewView(nv)
}

// requestBatchBody multicasts a content-addressed fetch for a batch the
// decision procedure selected but we never received.
func (r *Replica) requestBatchBody(d crypto.Digest) {
	r.vc.wantBatches[d] = true
	bf := &message.BatchFetch{Digest: d, Replica: r.id}
	r.multicastReplicas(bf)
}

// onBatchFetch serves a stored batch body by digest.
func (r *Replica) onBatchFetch(bf *message.BatchFetch) {
	if bf.Replica == r.id {
		return
	}
	pp, ok := r.vc.batchStore[bf.Digest]
	if !ok || !r.haveSeparateBodies(pp) {
		return
	}
	// Bundle the separately-transmitted request bodies the requester will
	// also need.
	for _, d := range pp.Digests {
		if req, ok := r.log.Request(d); ok {
			r.sendRaw(bf.Replica, req)
		}
	}
	r.sendRaw(bf.Replica, &message.BatchBody{Batch: pp.Marshal(), Replica: r.id})
}

// onBatchBody installs a fetched batch after verifying its content hash.
func (r *Replica) onBatchBody(bb *message.BatchBody) {
	m, err := message.Unmarshal(bb.Batch)
	if err != nil {
		return
	}
	pp, ok := m.(*message.PrePrepare)
	if !ok {
		return
	}
	d := pp.BatchDigest()
	if !r.vc.wantBatches[d] {
		return // unsolicited
	}
	delete(r.vc.wantBatches, d)
	for i := range pp.Inline {
		r.log.StoreRequest(&pp.Inline[i])
	}
	r.rememberBatch(pp)
	if r.vc.pending {
		r.runPrimaryDecision()
		r.tryProcessStashedNewView()
	}
}

// enterNewView installs an accepted new-view message: the replica becomes
// active in the view, slots are rebuilt from X, and backups prepare every
// chosen batch (§3.2.4 "new-view message processing").
func (r *Replica) enterNewView(nv *message.NewView) {
	r.vc.newView = nv
	r.vc.pending = false
	r.vc.wantBatches = make(map[crypto.Digest]bool)
	r.active = true
	r.vcTimerDeadline = time.Time{}
	r.metrics.NewViewsProcessed++

	// Log the transition before any send below: a restart that replays this
	// record resumes ACTIVE in the new view (replaying the pending record
	// alone would re-multicast the view change — harmless but slower). The
	// X-entry pre-prepares and own prepares are re-logged as the loop
	// installs them, so replay rebuilds the new view's slots too.
	r.walView(nv.View, true)
	r.walBarrier()

	h := nv.CkptSeq

	// If the chosen checkpoint is ahead of us, fetch it (§5.3.2); the slots
	// are installed regardless so the protocol can proceed. The mirror must
	// be current first: deciding on an in-flight report would start a
	// transfer for a checkpoint this replica already took.
	if r.latestCkptSeq() < h || r.lastExec < h {
		r.syncExecEvents()
	}
	if r.latestCkptSeq() < h || r.lastExec < h {
		if _, ok := r.ownCkptDigest(h); !ok {
			r.startStateTransfer(h, nv.CkptDigest)
		}
	}
	if r.log.Low() < h {
		// The new-view certificate proves h is stable group-wide.
		r.makeStable(h)
	}

	isPrimary := r.primary(r.view) == r.id
	var maxN message.Seq = h
	for _, xd := range nv.X {
		if xd.Seq > maxN {
			maxN = xd.Seq
		}
		if xd.Seq <= r.log.Low() {
			continue
		}
		slot := r.log.Slot(xd.Seq)
		if slot == nil {
			continue
		}
		slot.AddDigestOnly(nv.View, xd.Digest)
		slot.PrePrepared = true

		if xd.Digest.IsZero() {
			// Null request: synthesize the body locally (§2.3.5).
			slot.PrePrepare = &message.PrePrepare{
				View: nv.View, Seq: xd.Seq,
				Digests: []crypto.Digest{crypto.ZeroDigest},
				Replica: r.primary(nv.View),
			}
			// Null batches hash differently from stored batches; fix the
			// slot digest to the declared zero value.
			slot.Digest = crypto.ZeroDigest
		} else if xd.Digest == emptyBatchDigest {
			// Empty batch (e.g. recovery null batches): synthesizable.
			slot.PrePrepare = &message.PrePrepare{
				View: nv.View, Seq: xd.Seq, Replica: r.primary(nv.View),
			}
		} else if old, ok := r.vc.batchStore[xd.Digest]; ok {
			// Re-propose the stored batch content under the new view.
			pp := &message.PrePrepare{
				View: nv.View, Seq: xd.Seq,
				Inline: old.Inline, Digests: old.Digests, NonDet: old.NonDet,
				Replica: r.primary(nv.View),
			}
			slot.PrePrepare = pp
		}

		if slot.PrePrepare != nil {
			r.walPrePrepare(slot.PrePrepare)
		}

		if !isPrimary {
			slot.SentPrepare = true
			prep := &message.Prepare{View: nv.View, Seq: xd.Seq, Digest: xd.Digest, Replica: r.id}
			r.walVote(wal.KindPrepare, nv.View, xd.Seq, r.id, xd.Digest)
			r.multicastReplicas(prep)
			slot.AddPrepare(r.id, nv.View, xd.Digest)
		}

		// Skip re-execution of batches we already executed with the same
		// digest (committed before the view change).
		if rec, ok := r.execRecords[xd.Seq]; ok && xd.Seq <= r.lastExec {
			if rec.digest == slot.Digest && !rec.tentative {
				slot.Executed = true
			}
		}
	}

	if isPrimary {
		r.seqno = maxN
		// Re-issue pre-prepares for the chosen batches so backups that lack
		// the bodies obtain them under the new view's authentication.
		for _, xd := range nv.X {
			if xd.Digest.IsZero() || xd.Seq <= r.log.Low() {
				continue
			}
			if slot, ok := r.log.Peek(xd.Seq); ok && slot.PrePrepare != nil {
				r.multicastReplicas(slot.PrePrepare)
			}
		}
	}

	// Record Q entries for the new view: everything in X pre-prepared here.
	r.computePQ()

	r.executeForward()
	r.updateVCTimer()
	if isPrimary {
		r.tryIssuePrePrepares()
	}
}
