package pbft

// Durability integration (internal/wal): the event loop appends protocol
// records — accepted requests and pre-prepares, prepare/commit votes, view
// transitions — to an async group-commit write-ahead log and continues; the
// log goroutine coalesces appends into one write+fsync per group. Two
// multicasts carry an explicit durability barrier before they leave,
// because the receiver treats them as claims about state that must survive
// a crash: checkpoint votes (the snapshot a stable certificate will point
// at) and view-change messages (the P/Q sets other replicas build the
// new-view proof from). Normal-case votes ride the group commit: a kill can
// lose the un-fsynced suffix, which on restart degrades to the replica
// rejoining slightly behind and catching up through the ordinary
// retransmission and state-transfer machinery — the same position a
// replica that crashed just BEFORE voting would be in. (A vote sent but
// lost to the crash can, combined with f simultaneously Byzantine peers,
// fall outside the fault model; Config.WALSyncEvery closes that window at
// the cost the E14 experiment measures.)
//
// The log truncates at each stable checkpoint: makeStable persists the
// checkpoint's pages and reply cache as a snapshot, the writer rotates to a
// fresh segment, and the replay window stays exactly the water-mark window.
// Restart replays the newest snapshot plus the retained segments with every
// send path muted, then resumes live operation.

import (
	"encoding/binary"
	"time"

	"repro/internal/crypto"
	"repro/internal/message"
	"repro/internal/wal"
)

// initWAL recovers durable state from cfg.WALBackend / cfg.WALDir (no-op
// when neither is set) and starts the group-commit writer. Called at the
// end of NewReplica, before the event loop exists; a backend that cannot
// even be opened is a fatal misconfiguration, not a runtime fault.
func (r *Replica) initWAL() {
	backend := r.cfg.WALBackend
	if backend == nil {
		if r.cfg.WALDir == "" {
			return
		}
		fb, err := wal.NewFileBackend(r.cfg.WALDir)
		if err != nil {
			panic("pbft: cannot open WAL directory: " + err.Error())
		}
		backend = fb
	}
	recov, err := wal.Recover(backend)
	if err != nil {
		panic("pbft: WAL recovery failed: " + err.Error())
	}

	t0 := time.Now()
	r.muted.Store(true)
	pendingVC := r.replayRecovered(recov)
	r.syncExecEvents() // drain replayed execution before un-muting
	r.metrics.ReplayTime = time.Since(t0)

	w, err := wal.Open(backend, recov, wal.Options{
		SyncEvery: r.cfg.WALSyncEvery,
		SyncWait:  r.cfg.WALSyncWait,
	})
	if err != nil {
		panic("pbft: cannot open WAL for appending: " + err.Error())
	}
	r.wal = w
	r.muted.Store(false)
	// An existing log means this is a reboot, not a first boot: any session
	// keys rotated since the initial derivation are gone from our keystore
	// but still expected by peers. The event loop re-runs key refreshment
	// as its first act (run()), which heals both directions.
	r.rekeyOnStart = recov.Snap != nil || len(recov.Records) > 0

	if pendingVC > 0 {
		// The crash interrupted a view change after its view-change multicast
		// (the walView record carries a barrier, so its presence proves the
		// send). Re-running startViewChange from the replayed slots rebuilds
		// the same P/Q sets — the barrier flushed every vote that fed them —
		// and re-multicasts the view-change, which is exactly the §2.3.5
		// retransmission a slow view change needs anyway.
		r.view = pendingVC - 1
		r.active = false
		r.startViewChange(pendingVC)
	}
}

// replayRecovered rebuilds protocol state from a recovery scan: install the
// snapshot into the region/checkpoint-manager/reply-cache, then apply the
// records in append order, executing forward as commits complete. Runs
// muted (nothing may touch the network) and before the WAL writer exists
// (nothing may re-log). Returns the view of a view change that was pending
// at the crash, or 0.
func (r *Replica) replayRecovered(recov *wal.Recovered) message.View {
	if snap := recov.Snap; snap != nil {
		seq := message.Seq(snap.Seq)
		var root crypto.Digest
		var extra []byte
		r.execSync(func() {
			np := r.region.NumPages()
			ps := r.region.PageSize()
			for i := range snap.Pages {
				p := &snap.Pages[i]
				// Index and size come off disk: bound them before they touch
				// the region (InstallPage panics on a size mismatch).
				if int(p.Index) >= np || len(p.Content) != ps {
					continue
				}
				r.ckpt.InstallPage(int(p.Index), message.Seq(p.LastMod), p.Content)
			}
			sealed := r.ckpt.SealFetched(seq, snap.Extra)
			root = sealed.Root
			extra = sealed.Extra
			r.setRepliesFromCheckpoint(extra)
		})
		// A root that disagrees with snap.Root (possible only through silent
		// page corruption the per-blob CRC cannot see) is left for the
		// checkpoint protocol: the group's next stable certificate will not
		// match and state transfer replaces the pages.
		r.lastExec = seq
		r.lastCommitted = seq
		r.seqno = seq
		r.log.Reset(seq)
		if r.staged() {
			r.xs.myCkpts = map[message.Seq]crypto.Digest{seq: ckptDigest(root, extra)}
		}
	}

	var pendingVC message.View
	for i := range recov.Records {
		rec := &recov.Records[i]
		switch rec.Kind {
		case wal.KindRequest:
			m, err := message.Unmarshal(rec.Body)
			if err != nil {
				continue
			}
			if req, ok := m.(*message.Request); ok {
				r.log.StoreRequest(req)
			}
		case wal.KindPrePrepare:
			m, err := message.Unmarshal(rec.Body)
			if err != nil {
				continue
			}
			pp, ok := m.(*message.PrePrepare)
			if !ok || !r.log.InWindow(pp.Seq) {
				continue
			}
			slot := r.log.Slot(pp.Seq)
			if slot == nil {
				continue
			}
			for j := range pp.Inline {
				r.log.StoreRequest(&pp.Inline[j])
			}
			if slot.HasDigest {
				if slot.PrePrepare == nil && pp.View == slot.View &&
					pp.BatchDigest() == slot.Digest {
					slot.PrePrepare = pp
				}
			} else {
				slot.AddPrePrepare(pp)
			}
			slot.PrePrepared = true
			r.rememberBatch(pp)
			if pp.Seq > r.seqno {
				r.seqno = pp.Seq
			}
			r.replayForward()
		case wal.KindPrepare, wal.KindCommit:
			seq := message.Seq(rec.Seq)
			if !r.log.InWindow(seq) {
				continue
			}
			slot := r.log.Slot(seq)
			if slot == nil {
				continue
			}
			from := message.NodeID(rec.From)
			if rec.Kind == wal.KindPrepare {
				slot.AddPrepare(from, message.View(rec.View), rec.Digest)
				if from == r.id {
					slot.SentPrepare = true
				}
			} else {
				slot.AddCommit(from, message.View(rec.View), rec.Digest)
				if from == r.id {
					slot.SentCommit = true
				}
			}
			if seq > r.seqno {
				r.seqno = seq
			}
			r.replayForward()
		case wal.KindView:
			v := message.View(rec.View)
			if v < r.view {
				continue
			}
			if rec.Flags&wal.ViewActive != 0 {
				// New-view processed: reset per-view slot state exactly as
				// the live startViewChange did before this point, then let
				// the following records (re-logged X pre-prepares, own
				// prepares) rebuild the new view's slots.
				r.view = v
				r.active = true
				pendingVC = 0
				r.log.Reset(r.log.Low())
				r.waitingPP = make(map[message.Seq]*message.PrePrepare)
			} else {
				// View change multicast, new-view never processed. Keep the
				// slots as they are: initWAL re-runs startViewChange after
				// replay, and computePQ must see the same slot state the
				// pre-crash computation saw.
				r.view = v
				r.active = false
				pendingVC = v
			}
		case wal.KindStable:
			// Proof that a stable certificate existed at seq when this was
			// logged: slide the replay window exactly as the live makeStable
			// did, so a tail longer than L (normal when segment rotation is
			// throttled) keeps replaying instead of falling off the window.
			// Execution must already have reached seq — if it has not
			// (missing bodies in a torn log), leave the window alone and let
			// state transfer finish the job.
			seq := message.Seq(rec.Seq)
			if seq > r.log.Low() && r.lastExec >= seq {
				r.log.AdvanceLow(seq)
				for s := range r.waitingPP {
					if s <= seq {
						delete(r.waitingPP, s)
					}
				}
			}
		case wal.KindKeys:
			// Session-key-exchange state (§4.3.1): peers hold us to it
			// across the crash. Re-derive our announced in-keys from the
			// logged seeds, reinstall peers' announced out-keys, and restore
			// the co-processor counter so our next announcement is not
			// suppressed as a replay.
			epoch := uint32(rec.View)
			if rec.Flags&wal.KeysSelf != 0 {
				if rec.Seq <= r.rec.coCounter {
					continue
				}
				r.rec.epoch = epoch
				r.rec.coCounter = rec.Seq
				body := rec.Body
				for p := 0; p < r.n && len(body) >= 8; p++ {
					peer := message.NodeID(p)
					if peer == r.id {
						continue
					}
					r.ks.RefreshIn(uint32(peer), epoch, binary.LittleEndian.Uint64(body))
					body = body[8:]
				}
				recCopy := *rec
				recCopy.Body = append([]byte(nil), rec.Body...)
				r.keyRecs.self = &recCopy
			} else {
				from := message.NodeID(rec.From)
				if int(rec.From) >= r.n || from == r.id ||
					rec.Seq <= r.rec.lastNewKeyCtr[from] {
					continue
				}
				r.rec.lastNewKeyCtr[from] = rec.Seq
				key := append([]byte(nil), rec.Body...)
				r.ks.SetOut(rec.From, key, epoch)
				recCopy := *rec
				recCopy.Body = key
				if r.keyRecs.outs == nil {
					r.keyRecs.outs = make(map[message.NodeID]*wal.Record)
				}
				r.keyRecs.outs[from] = &recCopy
			}
		}
	}
	r.replayForward()
	if r.lastExec > r.seqno {
		r.seqno = r.lastExec
	}
	return pendingVC
}

// replayForward is executeForward minus the live-operation side effects
// that make no sense mid-replay (read-only drain, view-change timer,
// primary proposals — the queue is empty and every send is muted anyway).
func (r *Replica) replayForward() {
	for {
		progress := false
		for r.lastCommitted < r.lastExec {
			s, ok := r.log.Peek(r.lastCommitted + 1)
			if !ok || !r.log.CheckCommitted(s, r.primary(s.View)) {
				break
			}
			r.finalizeBatch(s)
			progress = true
		}
		next := r.lastExec + 1
		s, ok := r.log.Peek(next)
		if ok && s.PrePrepare != nil && r.haveSeparateBodies(s.PrePrepare) {
			if r.log.CheckCommitted(s, r.primary(s.View)) {
				r.execBatch(s, false)
				progress = true
			} else if r.cfg.Opt.TentativeExec && r.active &&
				r.lastExec == r.lastCommitted &&
				r.log.CheckPrepared(s, r.primary(s.View)) {
				r.execBatch(s, true)
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Append hooks (all no-ops when the WAL is off or the replica is muted)
// ---------------------------------------------------------------------------

// walEnabled gates every hook: no writer means durability is off, muted
// means the replica is replaying (records being applied must not re-log) or
// being killed.
func (r *Replica) walEnabled() bool {
	return r.wal != nil && !r.muted.Load()
}

// walRequest logs one request body (only ever a separately-transmitted
// one — see walPrePrepare).
func (r *Replica) walRequest(req *message.Request) {
	r.wal.Append(wal.Record{
		Kind: wal.KindRequest,
		From: uint32(req.Client),
		Body: req.Marshal(),
	})
}

// walPrePrepare logs an accepted pre-prepare. Request bodies are logged
// exactly once: inline requests travel inside the pre-prepare record
// itself, and the separately-transmitted ones (§5.1.5, referenced by
// digest) are logged just before it, so a replay that sees the
// pre-prepare always finds every body it references in the records that
// precede it. Requests are deliberately NOT logged on arrival — in the
// common all-inline case that would write every body twice, and bodies
// that never make it into a pre-prepare don't need to survive a crash
// (the client retransmits, §2.3.5).
func (r *Replica) walPrePrepare(pp *message.PrePrepare) {
	if !r.walEnabled() {
		return
	}
	for _, d := range pp.Digests {
		if d.IsZero() {
			continue
		}
		if req, ok := r.log.Request(d); ok {
			r.walRequest(req)
		}
	}
	r.wal.Append(wal.Record{
		Kind: wal.KindPrePrepare,
		Seq:  uint64(pp.Seq),
		View: uint64(pp.View),
		From: uint32(pp.Replica),
		Body: pp.Marshal(),
	})
}

// walVote logs one prepare or commit vote recorded in a slot — our own
// (restoring the Sent* dedupe flags on replay) or a peer's.
func (r *Replica) walVote(kind wal.Kind, v message.View, seq message.Seq,
	from message.NodeID, d crypto.Digest) {
	if !r.walEnabled() {
		return
	}
	r.wal.Append(wal.Record{
		Kind:   kind,
		Seq:    uint64(seq),
		View:   uint64(v),
		From:   uint32(from),
		Digest: d,
	})
}

// walView logs a view transition; pending (view-change sent) and active
// (new-view processed) both carry a durability barrier at the call site.
func (r *Replica) walView(v message.View, active bool) {
	if !r.walEnabled() {
		return
	}
	var flags uint8
	if active {
		flags = wal.ViewActive
	}
	r.wal.Append(wal.Record{Kind: wal.KindView, View: uint64(v), Flags: flags})
}

// walBarrier blocks until every record appended so far is durable — the
// price of the two sends that claim durable state.
func (r *Replica) walBarrier() {
	if !r.walEnabled() {
		return
	}
	r.wal.Barrier()
}

// keyRecords is the current session-key-exchange state in WAL-record form,
// kept so segment rotation can re-append it into the fresh segment (key
// state must outlive log truncation — peers hold us to it indefinitely).
type keyRecords struct {
	self *wal.Record                    // our latest refreshment (seeds)
	outs map[message.NodeID]*wal.Record // latest accepted announcement per peer
}

// walKeyRefresh logs our own key refreshment — the co-processor counter and
// epoch just advanced, plus the RNG seeds that generated each peer's fresh
// in-key — and barriers before the caller multicasts the announcement: if
// the announcement escapes but the counter record does not, a restart would
// reuse a counter peers have already seen and every announcement after the
// reboot would be suppressed as a replay.
func (r *Replica) walKeyRefresh(seeds []uint64) {
	if !r.walEnabled() {
		return
	}
	body := make([]byte, 0, len(seeds)*8)
	for _, s := range seeds {
		body = binary.LittleEndian.AppendUint64(body, s)
	}
	rec := wal.Record{
		Kind:  wal.KindKeys,
		Flags: wal.KeysSelf,
		Seq:   r.rec.coCounter,
		View:  uint64(r.rec.epoch),
		From:  uint32(r.id),
		Body:  body,
	}
	r.keyRecs.self = &rec
	r.wal.Append(rec)
	r.wal.Barrier()
}

// walNewKey logs a peer's accepted new-key announcement (the out-key we
// must now use toward it). Barriered: the peer forgets its old in-key the
// moment it rotates, so a crash that loses this record would leave the
// restarted replica unable to authenticate to the peer until its next
// refreshment.
func (r *Replica) walNewKey(from message.NodeID, epoch uint32, counter uint64, key []byte) {
	if !r.walEnabled() {
		return
	}
	// Callers validated from against the membership (onNewKey bounds the
	// claimed ID before installing anything); re-check here because this
	// map key must never grow past the group.
	if int(from) >= r.n {
		return
	}
	rec := wal.Record{
		Kind: wal.KindKeys,
		Seq:  counter,
		View: uint64(epoch),
		From: uint32(from),
		Body: append([]byte(nil), key...),
	}
	if r.keyRecs.outs == nil {
		r.keyRecs.outs = make(map[message.NodeID]*wal.Record)
	}
	r.keyRecs.outs[from] = &rec
	r.wal.Append(rec)
	r.wal.Barrier()
}

// reappendKeyRecords re-logs the current key-exchange state after a segment
// rotation discarded the records that carried it.
func (r *Replica) reappendKeyRecords() {
	if r.keyRecs.self == nil && len(r.keyRecs.outs) == 0 {
		return
	}
	if r.keyRecs.self != nil {
		r.wal.Append(*r.keyRecs.self)
	}
	for _, rec := range r.keyRecs.outs {
		r.wal.Append(*rec)
	}
	r.wal.Barrier()
}

// persistStable records the stable checkpoint at seq in the WAL and — once
// the current segment has accumulated enough bytes to be worth replacing —
// saves a full snapshot and rotates the log. Called from makeStable; the
// snapshot may be absent (a new-view certificate can stabilize a checkpoint
// this replica never took), in which case the log keeps its old base and
// the replica relies on state transfer after a crash — the same catch-up it
// is about to perform live.
//
// Rotation is throttled because it is the expensive half of durability:
// copying and durably writing every region page plus the rename costs
// several fsync-class syscalls, and at small checkpoint intervals doing it
// every time dominates the WAL's overhead. Between rotations the KindStable
// record alone carries the truncation point: replay slides its window over
// it, so a multi-checkpoint tail still reconstructs completely.
func (r *Replica) persistStable(seq message.Seq) {
	if !r.walEnabled() {
		return
	}
	var ws *wal.Snapshot
	rotate := r.wal.Stats().Bytes-r.walRotated >= uint64(r.rotateBytes())
	r.execSync(func() {
		snap, ok := r.ckpt.Snapshot(seq)
		if !ok {
			return
		}
		s := &wal.Snapshot{
			Seq:   uint64(seq),
			Root:  snap.Root,
			Extra: append([]byte(nil), snap.Extra...),
		}
		if rotate {
			for p := 0; p < r.region.NumPages(); p++ {
				content, lm, ok := r.ckpt.PageAt(seq, p)
				if !ok {
					return
				}
				s.Pages = append(s.Pages, wal.Page{
					Index:   uint32(p),
					LastMod: uint64(lm),
					Content: append([]byte(nil), content...),
				})
			}
		}
		ws = s
	})
	if ws == nil {
		return
	}
	r.wal.Append(wal.Record{
		Kind:   wal.KindStable,
		Seq:    uint64(seq),
		Digest: ckptDigest(ws.Root, ws.Extra),
	})
	if rotate {
		r.wal.SaveSnapshot(ws)
		// Rotation discarded the segments carrying the key-exchange records;
		// key state must outlive truncation, so re-log it first thing in the
		// fresh segment.
		r.reappendKeyRecords()
		r.walRotated = r.wal.Stats().Bytes
	}
}

// rotateBytes is the segment-size threshold above which a stable checkpoint
// triggers a snapshot + rotation.
func (r *Replica) rotateBytes() int64 {
	if r.cfg.WALRotateBytes != 0 {
		return r.cfg.WALRotateBytes
	}
	return 256 << 10
}

// ---------------------------------------------------------------------------
// Crash
// ---------------------------------------------------------------------------

// Kill terminates the replica abruptly, abandoning whatever the WAL writer
// has not yet fsynced — the in-process equivalent of kill -9 mid-batch. The
// durable prefix on disk is exactly what a power failure would leave.
func (r *Replica) Kill() {
	select {
	case <-r.stopC:
		return // already stopped
	default:
	}
	r.muted.Store(true) // in-flight executor replies die with the process
	close(r.stopC)
	r.wg.Wait()
	if r.xs != nil {
		r.xs.ex.Close()
	}
	if r.out != nil {
		r.out.Close()
	}
	if r.wal != nil {
		r.wal.Crash()
	}
	r.trans.Close()
	if r.pipe != nil {
		r.pipe.Close()
	}
}
