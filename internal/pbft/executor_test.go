package pbft

// Tests for the stage-3 executor integration: the serial (inline) execution
// path that the staged suite no longer exercises, the §5.1.3 read-only
// quiescence rule under asynchronous execution, and the tentative-
// checkpoint rollback regression.

import (
	"testing"
	"time"

	"repro/internal/kvservice"
	"repro/internal/message"
	"repro/internal/simnet"
)

// TestInlineExecutionPath covers the ExecPipeline=false ablation row: the
// serial execution path must still work end to end (the main suite forces
// the staged path).
func TestInlineExecutionPath(t *testing.T) {
	cfg := testConfig()
	cfg.Opt.ExecPipeline = false
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	for i := 1; i <= 5; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d", i, got)
		}
	}
	res := mustInvoke(t, cl, kvservice.Get(), true)
	if got := kvservice.DecodeU64(res); got != 5 {
		t.Fatalf("read-only get returned %d, want 5", got)
	}
	m := c.Replica(0).Metrics()
	if m.ExecQueueDepth != 0 || m.ExecStalls != 0 {
		t.Fatalf("inline path reported executor metrics: %+v", m)
	}
	if m.PagesDigested == 0 && m.CheckpointsTaken > 0 {
		t.Fatalf("inline path lost manager metrics: %+v", m)
	}
}

// TestExecMetricsSurface pins the staged-path metrics plumbing: checkpoint
// manager counters and digest latency must reach Replica.Metrics() without
// touching the manager off the executor goroutine.
func TestExecMetricsSurface(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointInterval = 4
	cfg.LogWindow = 8
	cfg.Opt.Batching = false
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	blob := make([]byte, 2048)
	for i := 0; i < 10; i++ {
		blob[0] = byte(i)
		mustInvoke(t, cl, kvservice.WriteBlob(blob), false)
	}
	m := c.Replica(1).Metrics()
	if m.CheckpointsTaken == 0 {
		t.Fatalf("no checkpoints after 10 writes with K=4: %+v", m)
	}
	if m.PagesDigested == 0 || m.PagesCopied == 0 {
		t.Fatalf("manager counters not surfaced: %+v", m)
	}
	if m.CkptDigestTime <= 0 {
		t.Fatalf("checkpoint digest latency not tracked: %+v", m)
	}
}

// dropCommits suppresses every commit message (any view) so batches
// prepare and execute tentatively but never commit.
func dropCommits(src, dst message.NodeID, p []byte) ([]byte, bool) {
	if m, err := message.Unmarshal(p); err == nil {
		if _, ok := m.(*message.Commit); ok {
			return nil, false
		}
	}
	return p, true
}

// TestReadOnlyWaitsForCommitUnderStagedExecutor is the §5.1.3 quiescence
// rule with asynchronous execution: a queued read-only request whose
// arrival mark covers a tentative (uncommitted) write must NOT be answered
// — even though the executor has long since applied the write — until the
// prefix commits.
func TestReadOnlyWaitsForCommitUnderStagedExecutor(t *testing.T) {
	cfg := testConfig()
	// Backups now treat a tentatively-executed batch whose commits never
	// arrive as grounds for a view change (§2.3.5 liveness); this test
	// wants the uncommitted window held open artificially, so park the
	// timer beyond the test's horizon.
	cfg.ViewChangeTimeout = time.Minute
	net := simnet.New(simnet.WithSeed(cfg.Seed + 11))
	t.Cleanup(func() { net.Close() })
	net.SetFilter(dropCommits)

	c := NewCluster(net, cfg, 4, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(c.Stop)

	// A tentative write (the client accepts 2f+1 tentative replies).
	clA := c.NewClient()
	clA.RetryTimeout = 5 * time.Second
	if got := kvservice.DecodeU64(mustInvoke(t, clA, kvservice.Incr(), false)); got != 1 {
		t.Fatalf("tentative incr -> %d", got)
	}
	waitReplicas(t, c, 1, 3, "tentative execution", func(r *Replica) bool {
		var ok bool
		r.do(func() { ok = r.lastExec == 1 && r.lastCommitted == 0 })
		return ok
	})

	// The read-only request queues behind the uncommitted write. With
	// MaxRetries=0 the only way it can ever answer is from the queue.
	clB := c.NewClient()
	clB.RetryTimeout = 30 * time.Second
	clB.MaxRetries = 0
	type invokeResult struct {
		res []byte
		err error
	}
	done := make(chan invokeResult, 1)
	go func() {
		res, err := clB.Invoke(kvservice.Get(), true)
		done <- invokeResult{res, err}
	}()
	waitReplicas(t, c, 1, 3, "read-only request queued", func(r *Replica) bool {
		var n int
		r.do(func() { n = len(r.roQueue) })
		return n > 0
	})

	// The executor applied the write long ago; the reply must still be
	// withheld while the write is uncommitted.
	select {
	case r := <-done:
		t.Fatalf("read-only reply released before its prefix committed (res=%v err=%v)", r.res, r.err)
	case <-time.After(300 * time.Millisecond):
	}

	// Let commits flow again and push a second write through: its commit
	// advances the committed frontier past the read-only mark and releases
	// the queued reply — still in clB's first round trip (MaxRetries=0).
	// The answer reflects both writes: the read serializes after the batch
	// that released it.
	net.SetFilter(nil)
	if got := kvservice.DecodeU64(mustInvoke(t, clA, kvservice.Incr(), false)); got != 2 {
		t.Fatalf("second incr -> %d", got)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("queued read-only failed after commit: %v", r.err)
		}
		if got := kvservice.DecodeU64(r.res); got != 2 {
			t.Fatalf("read-only reply = %d, want 2", got)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("queued read-only never answered after commits resumed")
	}
}

// TestTentativeCheckpointRollback is the regression for the §5.1.2 /
// §2.3.4 interaction: a checkpoint taken after a TENTATIVE execution whose
// batch is then rolled back by a view change must drop both the
// pendingCkpts entry (the unsent checkpoint message) and the manager
// snapshot, and a later stable checkpoint at the same sequence number must
// produce the correct digest (the group reaches stability on it).
func TestTentativeCheckpointRollback(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointInterval = 1 // checkpoint after every batch
	cfg.LogWindow = 8
	cfg.Opt.Batching = false
	net := simnet.New(simnet.WithSeed(cfg.Seed + 13))
	t.Cleanup(func() { net.Close() })

	// Drop every commit, and every prepare in views > 0: view 0 executes
	// tentatively but cannot commit; after the view change nothing can
	// even re-prepare, freezing the post-rollback state for inspection.
	net.SetFilter(func(src, dst message.NodeID, p []byte) ([]byte, bool) {
		if m, err := message.Unmarshal(p); err == nil {
			switch mm := m.(type) {
			case *message.Commit:
				return nil, false
			case *message.Prepare:
				if mm.View > 0 {
					return nil, false
				}
			}
		}
		return p, true
	})

	c := NewCluster(net, cfg, 4, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(c.Stop)

	// One tentative write: executes at seq 1, checkpoints tentatively at 1.
	clA := c.NewClient()
	clA.RetryTimeout = 5 * time.Second
	if got := kvservice.DecodeU64(mustInvoke(t, clA, kvservice.Incr(), false)); got != 1 {
		t.Fatalf("tentative incr -> %d", got)
	}
	waitReplicas(t, c, 1, 3, "tentative checkpoint pending", func(r *Replica) bool {
		var ok bool
		r.do(func() {
			_, pending := r.pendingCkpts[1]
			var snap bool
			r.execSync(func() { snap = r.ckpt.HasSnapshot(1) })
			ok = r.lastExec == 1 && r.lastCommitted == 0 && pending && snap
		})
		return ok
	})

	// Kill the primary and push a request through the backups to force the
	// view change (and with it the rollback).
	net.Isolate(0)
	clC := c.NewClient()
	clC.RetryTimeout = 50 * time.Millisecond
	clC.MaxRetries = 120
	resC := make(chan error, 1)
	go func() {
		_, err := clC.Invoke(kvservice.Noop(), false)
		resC <- err
	}()

	waitReplicas(t, c, 1, 3, "rollback", func(r *Replica) bool {
		var ok bool
		r.do(func() { ok = r.metrics.Rollbacks >= 1 })
		return ok
	})

	// Post-rollback: the pending entry AND the manager snapshot at 1 must
	// both be gone (prepares of views > 0 are filtered, so nothing can
	// have re-executed seq 1 yet).
	for i := 1; i <= 3; i++ {
		r := c.Replica(i)
		r.do(func() {
			if _, ok := r.pendingCkpts[1]; ok {
				t.Errorf("replica %d: rolled-back tentative checkpoint still pending", i)
			}
			var snap bool
			r.execSync(func() { snap = r.ckpt.HasSnapshot(1) })
			if snap {
				t.Errorf("replica %d: manager snapshot at seq 1 survived the rollback", i)
			}
			if r.lastExec != 0 {
				t.Errorf("replica %d: lastExec = %d after rollback, want 0", i, r.lastExec)
			}
		})
	}
	if t.Failed() {
		t.FailNow()
	}

	// Heal the protocol: prepares and commits flow again, the write
	// recommits at seq 1, and the retaken checkpoint must stabilize — the
	// group only advances its low water mark if the fresh digest at the
	// SAME sequence number is correct on a quorum.
	net.SetFilter(nil)
	if err := <-resC; err != nil {
		t.Fatalf("request after view change failed: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for i := 1; i <= 3; i++ {
		for c.Replica(i).LowWaterMark() < 1 {
			if time.Now().After(deadline) {
				t.Fatalf("replica %d never stabilized a checkpoint past the rolled-back seq", i)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// And the re-executed state is the one the client certified.
	res := mustInvoke(t, clA, kvservice.Get(), true)
	if got := kvservice.DecodeU64(res); got != 1 {
		t.Fatalf("counter after rollback+recommit = %d, want 1", got)
	}
}
