package pbft

import (
	"sync"
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/kvservice"
	"repro/internal/message"
)

func TestCascadingViewChanges(t *testing.T) {
	// n=7 tolerates f=2: replicas 0 and 1 are silent when primary, so the
	// group must cascade through views 0 and 1 and settle on replica 2.
	cfg := testConfig()
	c := newTestCluster(t, 7, cfg, map[message.NodeID]Behavior{
		0: SilentPrimary, 1: SilentPrimary,
	})
	cl := c.NewClient()
	cl.MaxRetries = 30
	for i := 1; i <= 4; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d -> %d", i, got)
		}
	}
	if v := c.Replica(2).View(); v < 2 {
		t.Fatalf("system settled in view %d, expected >= 2", v)
	}
}

func TestViewChangeUnderLoad(t *testing.T) {
	// Kill the primary while several clients are in flight: every client's
	// operations must eventually complete exactly once.
	cfg := testConfig()
	c := NewLocalCluster(4, cfg, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(c.Stop)

	const nClients = 5
	const each = 8
	var wg sync.WaitGroup
	errCh := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		cl := c.NewClient()
		cl.MaxRetries = 30
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				if _, err := cl.Invoke(kvservice.Incr(), false); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}()
	}
	time.Sleep(30 * time.Millisecond)
	c.Net.Isolate(0) // primary dies mid-stream
	wg.Wait()
	for i := 0; i < nClients; i++ {
		if err := <-errCh; err != nil {
			t.Fatalf("client: %v", err)
		}
	}
	cl := c.NewClient()
	cl.MaxRetries = 30
	res := mustInvoke(t, cl, kvservice.Get(), true)
	if got := kvservice.DecodeU64(res); got != nClients*each {
		t.Fatalf("counter %d, want %d (lost or duplicated ops across view change)", got, nClients*each)
	}
}

func TestPKModeViewChange(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = ModePK
	c := newTestCluster(t, 4, cfg, map[message.NodeID]Behavior{0: SilentPrimary})
	cl := c.NewClient()
	cl.MaxRetries = 30
	for i := 1; i <= 3; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d -> %d", i, got)
		}
	}
}

func TestSuccessiveViewChanges(t *testing.T) {
	// Kill primaries one after another (healing in between): views must
	// keep advancing and state must survive every transition.
	cfg := testConfig()
	c := NewLocalCluster(4, cfg, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(c.Stop)
	cl := c.NewClient()
	cl.MaxRetries = 40

	count := uint64(0)
	incr := func(tag string) {
		count++
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != count {
			t.Fatalf("%s: incr -> %d, want %d", tag, got, count)
		}
	}
	incr("view 0")
	for round := 0; round < 2; round++ {
		// Figure out the current primary from a live replica's view.
		v := c.Replica(1).View()
		primary := int(uint64(v) % 4)
		c.Net.Isolate(message.NodeID(primary))
		incr("after kill")
		incr("stable in new view")
		c.Net.Heal()
		incr("after heal")
	}
}

func TestViewChangePropagatesPreparedRequest(t *testing.T) {
	// A request that prepared (but had not committed everywhere) before the
	// view change must keep its sequence number in the new view — observed
	// indirectly: no increment is lost or duplicated across the change.
	cfg := testConfig()
	cfg.Opt.TentativeExec = true
	c := NewLocalCluster(4, cfg, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(c.Stop)
	cl := c.NewClient()
	cl.MaxRetries = 40

	for i := 1; i <= 3; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}
	// Cut the primary's outbound commits only: requests can prepare but the
	// primary's commit is missing; then isolate it fully.
	c.Net.Isolate(0)
	for i := 4; i <= 6; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d -> %d", i, got)
		}
	}
}

func TestClientTracksViewAcrossFailover(t *testing.T) {
	cfg := testConfig()
	c := NewLocalCluster(4, cfg, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(c.Stop)
	cl := c.NewClient()
	cl.MaxRetries = 40

	mustInvoke(t, cl, kvservice.Incr(), false)
	c.Net.Isolate(0)
	mustInvoke(t, cl, kvservice.Incr(), false) // slow: discovers new primary

	// Now the client should know the new view: the next op must be fast
	// (sent straight to the new primary, no retransmission needed).
	start := time.Now()
	mustInvoke(t, cl, kvservice.Incr(), false)
	if el := time.Since(start); el > cl.RetryTimeout {
		t.Fatalf("op after failover took %v — client did not track the new primary", el)
	}
}

func TestQSetBoundedGrowth(t *testing.T) {
	// Repeated view changes without progress must not grow P/Q entries
	// per sequence number without bound for the same digest.
	cfg := testConfig()
	c := NewLocalCluster(4, cfg, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(c.Stop)
	cl := c.NewClient()
	cl.MaxRetries = 40
	mustInvoke(t, cl, kvservice.Incr(), false)

	r := c.Replica(2)
	r.do(func() {
		for i := 0; i < 5; i++ {
			r.startViewChange(r.view + 1)
		}
		for seq, entries := range r.vc.qset {
			if len(entries) > 5 {
				t.Errorf("qset[%d] grew to %d entries", seq, len(entries))
			}
		}
	})
}

func TestDecisionProcedureDeterminism(t *testing.T) {
	// The primary's decision must be a pure function of S: two replicas
	// running it over the same set agree (backup verification relies on it).
	cfg := testConfig()
	c := NewLocalCluster(4, cfg, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(c.Stop)
	cl := c.NewClient()
	for i := 0; i < 5; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}

	// Harvest real view-change messages from every replica.
	vcs := make(map[message.NodeID]*message.ViewChange)
	for i := 0; i < 4; i++ {
		r := c.Replica(i)
		r.do(func() {
			r.computePQ()
			vcs[r.id] = r.buildViewChange(r.view + 1)
		})
	}
	var d0, d1 decision
	c.Replica(0).do(func() { d0 = c.Replica(0).runDecision(vcs) })
	c.Replica(1).do(func() { d1 = c.Replica(1).runDecision(vcs) })
	if d0.ok != d1.ok || d0.ckptSeq != d1.ckptSeq || d0.ckptDigest != d1.ckptDigest ||
		len(d0.x) != len(d1.x) {
		t.Fatalf("decisions differ: %+v vs %+v", d0, d1)
	}
	for i := range d0.x {
		if d0.x[i] != d1.x[i] {
			t.Fatalf("decision X[%d] differs", i)
		}
	}
}

func TestQSetBoundEnforced(t *testing.T) {
	cfg := testConfig()
	cfg.QSetBound = 2
	c := NewLocalCluster(4, cfg, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(c.Stop)
	cl := c.NewClient()
	cl.MaxRetries = 40
	mustInvoke(t, cl, kvservice.Incr(), false)

	r := c.Replica(2)
	r.do(func() {
		// Fabricate pre-prepared slots across many views, then fold them
		// into the QSet repeatedly.
		for v := message.View(1); v <= 6; v++ {
			slot := r.log.Slot(r.log.Low() + 1)
			if slot == nil {
				t.Error("no slot")
				return
			}
			slot.AddDigestOnly(v, crypto.DigestOf([]byte{byte(v)}))
			slot.PrePrepared = true
			r.computePQ()
		}
		for seq, entries := range r.vc.qset {
			if len(entries) > 2 {
				t.Errorf("qset[%d] holds %d entries, bound is 2", seq, len(entries))
			}
			// The retained entries must be the most recent views.
			for _, e := range entries {
				if e.View < 5 && len(entries) == 2 {
					t.Errorf("qset[%d] kept a stale view %d", seq, e.View)
				}
			}
		}
	})
}
