package pbft

import (
	"bytes"
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/crypto"
	"repro/internal/egress"
	"repro/internal/ingress"
	"repro/internal/message"
	"repro/internal/quorum"
	"repro/internal/transport"
)

// ErrClientClosed is returned by Invoke after Close.
var ErrClientClosed = errors.New("pbft: client closed")

// Client is the proxy of §2.3.2/§6.2: it timestamps requests, sends them to
// the primary (retransmitting to everyone on timeout), and assembles reply
// certificates — weak (f+1) for ordinary replies, quorum (2f+1) for
// tentative and read-only replies.
type Client struct {
	id   message.NodeID
	dir  *Directory
	mode Mode
	opt  Options
	ks   *crypto.KeyStore
	kp   crypto.KeyPair

	trans transport.Transport
	pipe  *ingress.Pipeline
	// out, when non-nil (opt.EgressPipeline), seals and transmits requests
	// off the invoking goroutine: the O(n) request authenticator (§5.2)
	// moves to the pool, like the replicas' egress path.
	out *egress.Pipeline

	// RetryTimeout is the base retransmission timeout; it backs off
	// exponentially like the adaptive scheme of §5.2.
	RetryTimeout time.Duration
	// MaxRetries bounds retransmissions before Invoke fails.
	MaxRetries int
	// MulticastThreshold mirrors the library's separate-request-transmission
	// cutoff (§5.1.5): operations larger than this are multicast to every
	// replica up front, because the primary's pre-prepare will carry only
	// their digest.
	MulticastThreshold int

	mu        sync.Mutex
	timestamp uint64
	view      message.View // latest view observed in replies
	pending   *pendingInvoke
	closed    bool

	replierMu   sync.Mutex
	nextReplier uint64
}

type replyVote struct {
	digest    crypto.Digest
	tentative bool
}

type pendingInvoke struct {
	timestamp uint64
	need      int // matching replies required
	votes     map[message.NodeID]replyVote
	results   map[crypto.Digest][]byte // full results received, by digest
	done      chan []byte
	readOnly  bool
}

// NewClient attaches a client to the network. Session keys with each replica
// derive from the same offline setup replicas use.
func NewClient(id message.NodeID, dir *Directory, net Network, mode Mode, opt Options) *Client {
	c := &Client{
		id:                 id,
		dir:                dir,
		mode:               mode,
		opt:                opt,
		ks:                 crypto.NewKeyStore(uint32(id)),
		kp:                 crypto.GenerateKeyPair(crypto.DeriveKey("client-identity", uint64(id))),
		RetryTimeout:       150 * time.Millisecond,
		MaxRetries:         10,
		MulticastThreshold: 255,
		nextReplier:        uint64(id), // stagger start across clients
	}
	dir.Register(id, c.kp.Public)
	for i := 0; i < dir.N(); i++ {
		c.ks.InstallInitial(uint32(i))
	}
	if opt.Pipeline {
		// Same staged ingress as replicas — reply decode + MAC verification
		// off the transport read loop, vote counting on the collector — but
		// sized for a client's traffic: one point MAC per reply needs no
		// pool, so default to a single worker unless callers ask for more
		// (a GOMAXPROCS-wide pool per client would just multiply goroutines
		// across the many-client benchmark harnesses).
		workers := opt.PipelineWorkers
		if workers <= 0 {
			workers = 1
		}
		// A client awaits one reply certificate at a time, so a shallow
		// queue suffices; benchmark harnesses park hundreds of clients per
		// cluster and deep queues would dominate their footprint.
		c.pipe = ingress.New(workers, 256,
			ingress.VerifierFunc(c.verifyInbound),
			func(m message.Message, ok bool, _ uint64) {
				if rep, isRep := m.(*message.Reply); isRep && ok {
					c.onReply(rep)
				}
			})
		c.trans = net.Attach(id, func(p []byte) { c.pipe.Submit(p) })
	} else {
		c.trans = net.Attach(id, c.onRaw)
	}
	if opt.EgressPipeline {
		// Staged egress, sized like the client's ingress: one request at a
		// time needs no wide pool, so a single worker seals (vector of n
		// MACs + marshal) off the invoking goroutine and a shallow queue
		// bounds the footprint across many-client harnesses.
		workers := opt.EgressWorkers
		if workers <= 0 {
			workers = 1
		}
		c.out = egress.New(workers, 256,
			&sealer{mode: mode, n: dir.N(), ks: c.ks, kp: c.kp}, c.trans)
	}
	return c
}

// ID returns the client's principal id.
func (c *Client) ID() message.NodeID { return c.id }

// Close detaches the client from the network.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	if c.out != nil {
		c.out.Close() // before the transport: the collector transmits through it
	}
	c.trans.Close()
	if c.pipe != nil {
		c.pipe.Close()
	}
}

//bftlint:faultbound
func (c *Client) f() int { return quorum.F(c.dir.N()) }

// Invoke executes an operation on the replicated service and returns its
// result (§6.2's Byz_invoke). readOnly requests use the single-round-trip
// optimization when the library has it enabled.
func (c *Client) Invoke(op []byte, readOnly bool) ([]byte, error) {
	return c.InvokeContext(context.Background(), op, readOnly)
}

// InvokeContext is Invoke with cancellation: the retry loop checks ctx
// between transmissions and while waiting for a reply certificate, so an
// in-flight invocation returns promptly with ctx.Err() when the caller
// cancels or a deadline passes. The client stays usable afterwards — the
// abandoned timestamp is simply never reused, and any certificate that
// completes late is discarded like any other stale reply.
func (c *Client) InvokeContext(ctx context.Context, op []byte, readOnly bool) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.timestamp++
	ts := c.timestamp
	view := c.view

	useRO := readOnly && c.opt.ReadOnly
	need := quorum.Weak(c.f())
	if useRO {
		need = quorum.Strong(c.f())
	}
	p := &pendingInvoke{
		timestamp: ts,
		need:      need,
		votes:     make(map[message.NodeID]replyVote),
		results:   make(map[crypto.Digest][]byte),
		done:      make(chan []byte, 1),
		readOnly:  useRO,
	}
	c.pending = p
	c.mu.Unlock()

	replier := c.pickReplier()
	req := &message.Request{
		Client:    c.id,
		Timestamp: ts,
		Replier:   replier,
		Op:        op,
	}
	if useRO {
		req.Flags |= message.FlagReadOnly
	}
	if !c.opt.DigestReplies {
		req.Replier = message.NoNode
	}

	// First transmission: read-only requests and large requests (separate
	// request transmission, §5.1.5) go to everyone; small read-write
	// requests go to the believed primary (§2.3.2).
	if useRO || (c.opt.SeparateRequests && len(op) > c.MulticastThreshold) {
		c.sendRequest(req, message.NoNode)
	} else {
		c.sendRequest(req, c.dir.Primary(view))
	}

	timeout := c.RetryTimeout
	maxBackoff := 8 * c.RetryTimeout // cap the exponential backoff (§5.2)
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for attempt := 0; attempt <= c.MaxRetries; attempt++ {
		select {
		case res := <-p.done:
			c.mu.Lock()
			c.pending = nil
			c.mu.Unlock()
			return res, nil
		case <-ctx.Done():
			c.mu.Lock()
			c.pending = nil
			c.mu.Unlock()
			return nil, ctx.Err()
		case <-timer.C:
		}
		// Retransmit to all replicas; ask everyone for the full result and
		// demote read-only to read-write (§5.1.3, §5.2).
		retry := &message.Request{
			Client:    c.id,
			Timestamp: ts,
			Replier:   message.NoNode,
			Op:        op,
		}
		c.mu.Lock()
		if p.readOnly {
			p.readOnly = false
			p.need = quorum.Weak(c.f())
			p.votes = make(map[message.NodeID]replyVote)
			// Keep results: digests can still match.
		}
		c.mu.Unlock()
		c.sendRequest(retry, message.NoNode)
		timeout *= 2 // randomized exponential backoff, deterministic here
		if timeout > maxBackoff {
			timeout = maxBackoff
		}
		timer.Reset(timeout)
	}
	c.mu.Lock()
	c.pending = nil
	c.mu.Unlock()
	return nil, errors.New("pbft: request timed out without a reply certificate")
}

// pickReplier chooses the designated replier round-robin (load balancing,
// §5.1.1): a per-client counter walks the replicas in strict rotation, so
// over any window of n requests every replica returns exactly one full
// result. (An earlier LCG here skewed replier load through modulo bias.)
func (c *Client) pickReplier() message.NodeID {
	c.replierMu.Lock()
	defer c.replierMu.Unlock()
	id := message.NodeID(c.nextReplier % uint64(c.dir.N()))
	c.nextReplier++
	return id
}

// sendRequest authenticates and transmits one request: multicast to every
// replica when dst is NoNode, point-send otherwise. With the egress
// pipeline on, sealing happens on the pool; requests always carry the full
// vector authenticator (§5.2) — every replica must be able to check its MAC
// when the primary inlines the request in a pre-prepare — so even the
// point-send to the primary seals as a Vector job.
func (c *Client) sendRequest(req *message.Request, dst message.NodeID) {
	if c.out != nil {
		if dst == message.NoNode {
			c.out.Multicast(c.dir.ReplicaIDs(), req, egress.Vector)
		} else {
			c.out.Send(dst, req, egress.Vector)
		}
		return
	}
	c.authRequest(req)
	if dst == message.NoNode {
		c.trans.Multicast(c.dir.ReplicaIDs(), req.Marshal())
	} else {
		c.trans.Send(dst, req.Marshal())
	}
}

func (c *Client) authRequest(req *message.Request) {
	if c.mode == ModePK {
		req.Auth = message.Auth{Kind: message.AuthSig, Sig: c.kp.Sign(req.Payload())}
		return
	}
	req.Auth = message.Auth{
		Kind:   message.AuthVector,
		Vector: c.ks.MakeAuthenticator(c.dir.N(), req.Payload()),
	}
}

// verifyInbound authenticates one decoded message for the ingress
// pipeline: only replies addressed to this client can verify. The tag is
// unused — clients never rotate their session keys mid-run, so a reply
// verdict cannot go stale the way a replica's can.
func (c *Client) verifyInbound(m message.Message) (bool, uint64) {
	rep, ok := m.(*message.Reply)
	if !ok || rep.Client != c.id {
		return false, 0
	}
	return c.verifyReply(rep), 0
}

// onRaw handles replies from replicas (serial path).
func (c *Client) onRaw(b []byte) {
	m, err := message.Unmarshal(b)
	if err != nil {
		return
	}
	rep, ok := m.(*message.Reply)
	if !ok || rep.Client != c.id {
		return
	}
	if !c.verifyReply(rep) {
		return
	}
	c.onReply(rep)
}

// onReply folds one authenticated reply into the pending certificate.
func (c *Client) onReply(rep *message.Reply) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rep.View > c.view {
		c.view = rep.View // track the current primary (§2.3.2)
	}
	p := c.pending
	if p == nil || rep.Timestamp != p.timestamp {
		return
	}
	// verifyReply proved key possession for the claimed sender, not group
	// membership; bound the replica ID before it keys the vote map.
	if int(rep.Replica) >= c.dir.N() {
		return
	}
	if rep.HasResult {
		if crypto.DigestOf(rep.Result) != rep.ResultDigest {
			return // inconsistent reply
		}
		p.results[rep.ResultDigest] = rep.Result
	}
	p.votes[rep.Replica] = replyVote{digest: rep.ResultDigest, tentative: rep.Tentative}

	// Count votes per digest. Tentative replies need a quorum; final
	// replies need only a weak certificate — a final vote also supports a
	// tentative count (it is strictly stronger).
	counts := make(map[crypto.Digest]int)
	finals := make(map[crypto.Digest]int)
	for _, v := range p.votes {
		counts[v.digest]++
		if !v.tentative {
			finals[v.digest]++
		}
	}
	// In read-only mode two digests can complete a weak certificate at once
	// (honest replicas answering from different execution prefixes); iterate
	// digests in sorted order so the accepted result never depends on map
	// iteration order.
	ds := make([]crypto.Digest, 0, len(counts))
	for d := range counts {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return bytes.Compare(ds[i][:], ds[j][:]) < 0 })
	for _, d := range ds {
		n := counts[d]
		enough := n >= quorum.Strong(c.f()) || finals[d] >= p.need
		if p.readOnly {
			enough = n >= p.need
		}
		if enough {
			if res, ok := p.results[d]; ok {
				select {
				case p.done <- res:
				default:
				}
				return
			}
			// Certificate complete but no full result yet: keep waiting (a
			// retransmission will request full replies from everyone).
		}
	}
}

func (c *Client) verifyReply(rep *message.Reply) bool {
	if c.mode == ModePK {
		pub, ok := c.dir.PublicKey(rep.Replica)
		if !ok || rep.Auth.Kind != message.AuthSig {
			return false
		}
		return crypto.Verify(pub, rep.Payload(), rep.Auth.Sig)
	}
	if rep.Auth.Kind != message.AuthMAC {
		return false
	}
	return c.ks.CheckPointMAC(uint32(rep.Replica), rep.Payload(), rep.Auth.MAC)
}
