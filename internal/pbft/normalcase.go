package pbft

import (
	"bytes"
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/crypto"
	"repro/internal/executor"
	"repro/internal/message"
	"repro/internal/quorum"
	"repro/internal/vlog"
	"repro/internal/wal"
)

// smallResultThreshold disables digest replies for tiny results (§5.1.1:
// "not used for very small replies; the threshold is 32 bytes").
const smallResultThreshold = 32

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

func (r *Replica) onRequest(req *message.Request) {
	client := req.Client
	if !client.IsClient() && !req.Recovery() {
		return // only recovery requests may originate from replicas
	}

	// Exactly-once: replay the cached reply for the last executed timestamp,
	// drop anything older (§2.3.3). On the staged path the check reads the
	// event-loop mirror; the executor serves the actual retransmission.
	if ts, ok := r.lastReplied(client); ok {
		if req.Timestamp < ts {
			return
		}
		if req.Timestamp == ts {
			r.resendCachedReply(client)
			return
		}
	}

	// Read-only optimization (§5.1.3): execute immediately once the state
	// reflects only committed requests. A request FLAGGED read-only whose
	// operation actually mutates state is demoted to the read-write path
	// right here: §5.1.3 has the replica treat it like any other request,
	// so the client gets its reply in one round trip instead of burning a
	// full retry timeout before its retransmission demotes it.
	if req.ReadOnly() && r.cfg.Opt.ReadOnly && !req.Recovery() &&
		r.service.IsReadOnly(req.Op) {
		r.roQueue = append(r.roQueue, queuedRO{req: req, mark: r.lastExec})
		r.drainReadOnly()
		return
	}

	d := req.Digest()
	isNew := !r.log.HasRequest(d)
	r.log.StoreRequest(req)
	r.enqueueRequest(req)

	if req.Recovery() {
		r.noteRecoveryRequest(req)
	}

	if r.vc.pending && r.primary(r.view) == r.id {
		// A newly-arrived body may satisfy condition A3 (§3.2.4).
		r.runPrimaryDecision()
	}
	if r.isPrimary() && r.active {
		r.tryIssuePrePrepares()
	} else if isNew {
		// Relay to the primary (it may not have received it) and arm the
		// view-change timer: we are now waiting for this request (§2.3.5).
		r.sendRaw(r.primary(r.view), req)
	}
	r.updateVCTimer()

	// A request body arriving may unblock a buffered pre-prepare (§5.1.5).
	r.retryWaitingPrePrepares()
}

// enqueueRequest keeps a FIFO queue with only the newest request per client
// (§5.5 fairness). The queue is an intrusive list indexed by client, so both
// this and dequeueExecuted are O(1) regardless of how many clients are
// backed up behind the primary.
func (r *Replica) enqueueRequest(req *message.Request) {
	r.queue.Push(req.Client, req.Digest(), len(req.Op))
}

// dequeueExecuted removes a request from the queue once it executes.
func (r *Replica) dequeueExecuted(client message.NodeID, d crypto.Digest) {
	r.queue.Remove(client, d)
}

func (r *Replica) resendCachedReply(client message.NodeID) {
	if r.staged() {
		r.xs.ex.ResendReply(client, r.view)
		return
	}
	if cr := r.replyCache.Get(client); cr != nil {
		r.sendTo(client, executor.CachedReply(r.id, r.view, client, cr))
	}
}

// ---------------------------------------------------------------------------
// Primary: batching and pre-prepare issue (§5.1.4, §5.1.5)
// ---------------------------------------------------------------------------

// tryIssuePrePrepares drains the request queue into pre-prepares. It re-fires
// on every event that can create room or work: request arrival, execution
// progress (executeForward), and checkpoint stability (makeStable), keeping
// up to AgreementWindow batches in flight under load.
func (r *Replica) tryIssuePrePrepares() {
	r.issueReady(false)
}

// issueReady is the proposal loop. deadline is true when called from the
// BatchWait timer: the accumulate window expired, so flush one partial batch
// even if it is below the fill target. Batches are capped three ways
// (§5.1.4): by count (the adaptive fill target, ≤ BatchRequests), by bytes
// (BatchBytes), and by time (BatchWait — armed only while another batch is
// in flight, so an idle system proposes immediately and low-load latency is
// unchanged).
func (r *Replica) issueReady(deadline bool) {
	if r.cfg.Behavior == SilentPrimary {
		return
	}
	if !r.isPrimary() || !r.active || r.vc.pending {
		r.disarmBatchWait()
		return
	}
	for r.queue.Len() > 0 {
		// Sliding window: o - e < W (§5.1.4).
		if r.seqno >= r.lastExec+message.Seq(r.cfg.Opt.AgreementWindow) ||
			r.seqno >= r.log.High() {
			// No agreement (or water-mark) room: the queue waits for
			// commit/execute progress to re-fire the loop; holding the
			// accumulate timer armed would only burn a spurious flush.
			r.disarmBatchWait()
			return
		}
		target := r.fillTarget()
		if !deadline && r.shouldAccumulate(target) {
			r.armBatchWait()
			return
		}
		deadline = false // an expired deadline flushes at most one partial batch
		batch, size := r.takeBatch(target)
		if len(batch) == 0 {
			break
		}
		r.metrics.BatchesProposed++
		r.metrics.RequestsProposed += uint64(len(batch))
		r.metrics.BatchBytesTotal += uint64(size)
		r.issueBatch(batch)
	}
	r.disarmBatchWait()
}

// fillTarget returns the batch-size target for the next proposal: 1 with
// batching off, the hard cap BatchRequests with adaptive mode off. In
// adaptive mode it AIMD-tracks the size needed to fit the outstanding
// demand — queued requests plus work already in agreement — into the
// window's FREE slots: light load converges to 1 (latency), sustained
// concurrency grows toward BatchRequests (throughput), clamped to
// [1, BatchRequests].
func (r *Replica) fillTarget() int {
	if !r.cfg.Opt.Batching {
		return 1
	}
	max := r.cfg.Opt.BatchRequests
	if !r.cfg.Opt.AdaptiveBatch {
		return max
	}
	// Size batches so the OUTSTANDING demand — queued requests plus batches
	// already in agreement — fits in the window slots still free. Queue
	// depth alone is the mid-load failure mode: at ~10 closed-loop clients
	// the window hovers just below full, every arrival sees queue≈1,
	// ceil(queue/W) sits at 1, and adaptive degenerates to serial agreement
	// right where batching should start paying (BENCH_batching.json,
	// 2026-08: adaptive 1091 ops/s vs serial 1117 with fill avg pinned at
	// 1.0). In-flight work is the steady-state concurrency signal: those
	// clients re-request the moment they are answered, so a target that
	// ignores them starves the next wave.
	inflight := int(r.seqno - r.lastExec)
	free := r.cfg.Opt.AgreementWindow - inflight
	if free < 1 {
		free = 1
	}
	desired := (r.queue.Len() + inflight + free - 1) / free
	switch {
	case desired > r.batchTarget:
		r.batchTarget++ // additive increase under growing backlog
	case desired < r.batchTarget:
		if r.queue.Len() == 0 {
			r.batchTarget /= 2 // load gone: collapse toward single-request latency
		} else {
			// Still loaded: desired jitters per arrival (a mid-load replica
			// sees queue≈1 between window-full episodes), and halving on
			// every dip thrashes the target back to 1 — the second half of
			// the fill-avg-pinned-at-1.0 regression. Back off one step.
			r.batchTarget--
		}
	}
	if r.batchTarget < 1 {
		r.batchTarget = 1
	}
	if r.batchTarget > max {
		r.batchTarget = max
	}
	return r.batchTarget
}

// shouldAccumulate reports whether the proposal loop should hold the queued
// requests for up to BatchWait hoping to fill the batch further. Never when
// nothing is in flight (the first request after idle must not eat the wait),
// and never once the queue already meets the fill target or the byte cap.
func (r *Replica) shouldAccumulate(target int) bool {
	if !r.cfg.Opt.Batching || r.cfg.Opt.BatchWait <= 0 {
		return false
	}
	if r.seqno <= r.lastExec {
		return false // idle pipeline: propose immediately
	}
	if r.queue.Len() >= target {
		return false
	}
	if bb := r.cfg.Opt.BatchBytes; bb > 0 && r.queue.Bytes() >= bb {
		return false
	}
	return true
}

// armBatchWait starts the accumulate deadline if not already running.
func (r *Replica) armBatchWait() {
	if !r.batchDeadline.IsZero() {
		return
	}
	r.batchDeadline = time.Now().Add(r.cfg.Opt.BatchWait)
	if r.batchTimer != nil {
		r.batchTimer.Reset(r.cfg.Opt.BatchWait)
	}
}

// disarmBatchWait cancels the accumulate deadline.
func (r *Replica) disarmBatchWait() {
	if r.batchDeadline.IsZero() {
		return
	}
	r.batchDeadline = time.Time{}
	if r.batchTimer != nil {
		r.batchTimer.Stop()
	}
}

// onBatchWait handles the accumulate timer firing: flush the partial batch.
func (r *Replica) onBatchWait() {
	if r.batchDeadline.IsZero() {
		return // stale fire: the batch was already flushed or disarmed
	}
	r.batchDeadline = time.Time{}
	r.metrics.BatchWaitFires++
	r.issueReady(true)
}

// takeBatch pops up to target requests off the queue, stopping early rather
// than pushing a non-empty batch past BatchBytes. A single request larger
// than BatchBytes is proposed alone — the cap bounds batch assembly, it is
// not an admission limit.
func (r *Replica) takeBatch(target int) (batch []*message.Request, size int) {
	maxBytes := 0
	if r.cfg.Opt.Batching {
		maxBytes = r.cfg.Opt.BatchBytes
	}
	for len(batch) < target && r.queue.Len() > 0 {
		if _, _, sz, ok := r.queue.Front(); ok &&
			maxBytes > 0 && len(batch) > 0 && size+sz > maxBytes {
			break // byte cap: flush what we have; the next batch takes it
		}
		_, d, sz, _ := r.queue.Pop()
		req, ok := r.log.Request(d)
		if !ok {
			continue
		}
		// Skip anything already executed (duplicate arrivals).
		if ts, ok := r.lastReplied(req.Client); ok && req.Timestamp <= ts {
			continue
		}
		// Skip requests already assigned to a live slot (a retransmission
		// arriving while the first assignment is still in flight).
		if r.requestAssigned(d) {
			continue
		}
		batch = append(batch, req)
		size += sz
	}
	return batch, size
}

// requestAssigned reports whether a request digest already rides in some
// live slot's batch.
func (r *Replica) requestAssigned(d crypto.Digest) bool {
	assigned := false
	r.log.Slots(func(s *vlog.Slot) {
		if assigned || s.PrePrepare == nil || s.Executed {
			return
		}
		for i := range s.PrePrepare.Inline {
			if s.PrePrepare.Inline[i].Digest() == d {
				assigned = true
				return
			}
		}
		for _, dd := range s.PrePrepare.Digests {
			if dd == d {
				assigned = true
				return
			}
		}
	})
	return assigned
}

func (r *Replica) issueBatch(batch []*message.Request) {
	r.seqno++
	seq := r.seqno
	pp := r.buildPrePrepare(r.view, seq, batch)

	if r.cfg.Behavior == ConflictingPrimary {
		r.issueConflicting(pp, batch)
		return
	}

	r.multicastReplicas(pp)
	r.acceptPrePrepare(pp)
}

// buildPrePrepare splits a batch into inline requests and digests of
// separately-transmitted ones, and attaches the non-deterministic choice.
func (r *Replica) buildPrePrepare(v message.View, seq message.Seq, batch []*message.Request) *message.PrePrepare {
	pp := &message.PrePrepare{View: v, Seq: seq, Replica: r.id, NonDet: r.service.ProposeNonDet()}
	for _, req := range batch {
		if r.cfg.Opt.SeparateRequests && len(req.Op) > r.cfg.Opt.InlineThreshold {
			pp.Digests = append(pp.Digests, req.Digest())
		} else {
			pp.Inline = append(pp.Inline, *req)
		}
	}
	return pp
}

// issueConflicting is the Byzantine-primary personality: half the backups
// receive a pre-prepare for the real batch, the other half one with a
// different non-deterministic value (hence a different digest) for the same
// sequence number. Safety demands that at most one of them ever commits.
// It seals inline on the event loop even when the egress pipeline is on —
// equivocation is adversarial traffic, and the honest pipeline's ordering
// guarantees need not extend to it.
func (r *Replica) issueConflicting(pp *message.PrePrepare, batch []*message.Request) {
	alt := r.buildPrePrepare(pp.View, pp.Seq, batch)
	alt.NonDet = append([]byte("evil-"), alt.NonDet...)
	r.authMulticast(pp)
	r.authMulticast(alt)
	ids := r.replicaIDs()
	for i, id := range ids {
		if id == r.id {
			continue
		}
		if i%2 == 0 {
			r.trans.Send(id, pp.Marshal())
		} else {
			r.trans.Send(id, alt.Marshal())
		}
	}
	r.acceptPrePrepare(pp)
}

// ---------------------------------------------------------------------------
// Backups: pre-prepare / prepare / commit
// ---------------------------------------------------------------------------

func (r *Replica) onPrePrepare(pp *message.PrePrepare) {
	if pp.Replica != r.primary(pp.View) || pp.Replica == r.id {
		return
	}
	if !r.inWV(pp.View, pp.Seq) || !r.active || r.vc.pending {
		return
	}
	slot := r.log.Slot(pp.Seq)
	if slot == nil {
		return
	}
	if slot.HasDigest {
		// The slot's digest is already fixed — either by an earlier
		// pre-prepare or by a new-view decision. A matching body fills the
		// slot; a conflicting one is ignored.
		if slot.PrePrepare == nil && pp.View == slot.View && pp.BatchDigest() == slot.Digest {
			r.fillSlotBody(pp, slot)
		}
		return
	}
	// Backups validate the primary's non-deterministic choice (§5.4).
	if !r.service.CheckNonDet(pp.NonDet) {
		return
	}
	// Store verified inline request bodies (their per-request authenticators
	// were checked by requestAuthOK below, via the group authenticator on
	// the pre-prepare plus per-request checks).
	if !r.requestAuthOK(pp, slot) {
		return
	}
	if !r.haveSeparateBodies(pp) {
		// Buffer until the client's separate transmission arrives (§5.1.5).
		// Seq was bounded to the log window by inWV above.
		r.waitingPP[pp.Seq] = pp // bftlint:allow=bfttaint
		return
	}
	r.acceptBackupPrePrepare(pp, slot)
}

// requestAuthOK applies the three request-authentication conditions of
// §3.2.2 to every inline request in the batch.
func (r *Replica) requestAuthOK(pp *message.PrePrepare, slot *vlog.Slot) bool {
	if r.cfg.Mode == ModePK {
		for i := range pp.Inline {
			req := &pp.Inline[i]
			if !r.verifySig(req) {
				return false
			}
		}
		return true
	}
	for i := range pp.Inline {
		req := &pp.Inline[i]
		if req.Recovery() {
			if !r.verifySig(req) {
				return false
			}
			continue
		}
		// Condition 1: the MAC for us in the request's authenticator.
		r.ensurePeerKeys(req.Client)
		if req.Auth.Kind == message.AuthVector &&
			r.ks.CheckAuthenticator(uint32(req.Client), req.Payload(), req.Auth.Vector) {
			continue
		}
		// Condition 3: we already hold an authenticated copy.
		if r.log.HasRequest(req.Digest()) {
			continue
		}
		// Condition 2: f prepares carrying this batch digest vouch for it.
		if slot.PrepareDigestCount(pp.BatchDigest()) >= quorum.Vouchers(r.f) {
			continue
		}
		return false
	}
	return true
}

// haveSeparateBodies reports whether every separately-transmitted request in
// the batch is in the store (null digests count as present).
func (r *Replica) haveSeparateBodies(pp *message.PrePrepare) bool {
	for _, d := range pp.Digests {
		if d.IsZero() {
			continue
		}
		if !r.log.HasRequest(d) {
			return false
		}
	}
	return true
}

// retryWaitingPrePrepares re-processes buffered pre-prepares whose request
// bodies may have arrived.
func (r *Replica) retryWaitingPrePrepares() {
	// Accepting a buffered pre-prepare multicasts a prepare, so process the
	// buffer in sequence order rather than map order: the relative send
	// order is observable on the wire and must be identical on every
	// seeded run.
	seqs := make([]message.Seq, 0, len(r.waitingPP))
	for seq := range r.waitingPP {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		pp := r.waitingPP[seq]
		if !r.inWV(pp.View, seq) {
			delete(r.waitingPP, seq)
			continue
		}
		if !r.haveSeparateBodies(pp) {
			continue
		}
		delete(r.waitingPP, seq)
		slot := r.log.Slot(seq)
		if slot == nil {
			continue
		}
		switch {
		case slot.HasDigest:
			if slot.PrePrepare == nil && pp.View == slot.View && pp.BatchDigest() == slot.Digest {
				r.fillSlotBody(pp, slot)
			}
		case r.requestAuthOK(pp, slot):
			r.acceptBackupPrePrepare(pp, slot)
		}
	}
}

// fillSlotBody supplies the batch body for a slot whose digest was fixed by
// a new-view decision (the re-issued pre-prepare needs no per-request
// authentication: condition A2 already vouched for the batch).
func (r *Replica) fillSlotBody(pp *message.PrePrepare, slot *vlog.Slot) {
	for i := range pp.Inline {
		r.log.StoreRequest(&pp.Inline[i])
	}
	if !r.haveSeparateBodies(pp) {
		// Both callers bound Seq: onPrePrepare via inWV, new-view decisions
		// re-issue only in-window sequence numbers.
		r.waitingPP[pp.Seq] = pp // bftlint:allow=bfttaint
		return
	}
	slot.PrePrepare = pp
	r.rememberBatch(pp)
	r.walPrePrepare(pp)
	r.executeForward()
}

// acceptBackupPrePrepare logs the pre-prepare and enters the prepare phase.
func (r *Replica) acceptBackupPrePrepare(pp *message.PrePrepare, slot *vlog.Slot) {
	for i := range pp.Inline {
		r.log.StoreRequest(&pp.Inline[i])
		r.enqueueRequest(&pp.Inline[i])
	}
	slot.AddPrePrepare(pp)
	slot.PrePrepared = true
	r.rememberBatch(pp)
	r.walPrePrepare(pp)
	r.updateVCTimer()

	if !slot.SentPrepare {
		slot.SentPrepare = true
		prep := &message.Prepare{View: pp.View, Seq: pp.Seq, Digest: slot.Digest, Replica: r.id}
		r.walVote(wal.KindPrepare, pp.View, pp.Seq, r.id, slot.Digest)
		r.multicastReplicas(prep)
		slot.AddPrepare(r.id, pp.View, slot.Digest)
	}
	r.progressSlot(slot)
}

// acceptPrePrepare is the primary-side acceptance of its own pre-prepare.
func (r *Replica) acceptPrePrepare(pp *message.PrePrepare) {
	slot := r.log.Slot(pp.Seq)
	if slot == nil {
		return
	}
	for i := range pp.Inline {
		r.log.StoreRequest(&pp.Inline[i])
	}
	slot.AddPrePrepare(pp)
	slot.PrePrepared = true
	r.rememberBatch(pp)
	r.walPrePrepare(pp)
	r.progressSlot(slot)
}

func (r *Replica) onPrepare(p *message.Prepare) {
	if p.Replica == r.primary(p.View) {
		return // primaries never send prepares (§2.3.3)
	}
	if !r.inWV(p.View, p.Seq) {
		return
	}
	slot := r.log.Slot(p.Seq)
	if slot == nil {
		return
	}
	slot.AddPrepare(p.Replica, p.View, p.Digest)
	r.walVote(wal.KindPrepare, p.View, p.Seq, p.Replica, p.Digest)
	// A prepare may satisfy request-auth condition 2 for a buffered
	// pre-prepare.
	if pp, ok := r.waitingPP[p.Seq]; ok && !slot.HasDigest && r.haveSeparateBodies(pp) {
		if r.requestAuthOK(pp, slot) {
			delete(r.waitingPP, p.Seq)
			r.acceptBackupPrePrepare(pp, slot)
			return
		}
	}
	r.progressSlot(slot)
}

func (r *Replica) onCommit(c *message.Commit) {
	if c.View > r.view || !r.log.InWindow(c.Seq) {
		return
	}
	slot := r.log.Slot(c.Seq)
	if slot == nil {
		return
	}
	slot.AddCommit(c.Replica, c.View, c.Digest)
	r.walVote(wal.KindCommit, c.View, c.Seq, c.Replica, c.Digest)
	r.progressSlot(slot)
}

// progressSlot advances a slot through prepared → committed and triggers
// execution.
func (r *Replica) progressSlot(slot *vlog.Slot) {
	if slot.PrePrepare == nil {
		return
	}
	p := r.primary(slot.View)
	if r.log.CheckPrepared(slot, p) && !slot.SentCommit {
		slot.SentCommit = true
		cm := &message.Commit{View: slot.View, Seq: slot.Seq, Digest: slot.Digest, Replica: r.id}
		r.walVote(wal.KindCommit, slot.View, slot.Seq, r.id, slot.Digest)
		r.multicastReplicas(cm)
		slot.AddCommit(r.id, slot.View, slot.Digest)
	}
	r.log.CheckCommitted(slot, p)
	r.executeForward()
}

// ---------------------------------------------------------------------------
// Execution (§2.3.3, §5.1.2)
// ---------------------------------------------------------------------------

// executeForward executes committed batches in order, tentatively executes
// prepared batches when permitted, and finalizes tentative executions whose
// commits completed.
func (r *Replica) executeForward() {
	for {
		progress := false

		// Finalize tentative executions that have since committed.
		for r.lastCommitted < r.lastExec {
			s, ok := r.log.Peek(r.lastCommitted + 1)
			if !ok || !r.log.CheckCommitted(s, r.primary(s.View)) {
				break
			}
			r.finalizeBatch(s)
			progress = true
		}

		// Execute the next batch.
		next := r.lastExec + 1
		s, ok := r.log.Peek(next)
		if ok && s.PrePrepare != nil && r.haveSeparateBodies(s.PrePrepare) {
			if r.log.CheckCommitted(s, r.primary(s.View)) {
				r.execBatch(s, false)
				progress = true
			} else if r.cfg.Opt.TentativeExec && r.active && !r.vc.pending &&
				!r.rec.inRecovery &&
				r.lastExec == r.lastCommitted &&
				r.log.CheckPrepared(s, r.primary(s.View)) {
				r.execBatch(s, true)
				progress = true
			}
		}

		if !progress {
			break
		}
	}
	r.drainReadOnly()
	r.updateVCTimer()
	if r.isPrimary() {
		r.tryIssuePrePrepares()
	}
}

// batchRequests resolves the bodies of every request in a batch, in order.
// Null digests yield nil entries.
func (r *Replica) batchRequests(pp *message.PrePrepare) []*message.Request {
	out := make([]*message.Request, 0, len(pp.Inline)+len(pp.Digests))
	for i := range pp.Inline {
		out = append(out, &pp.Inline[i])
	}
	for _, d := range pp.Digests {
		if d.IsZero() {
			out = append(out, nil)
			continue
		}
		req, _ := r.log.Request(d)
		out = append(out, req) // nil if missing (caller checked bodies)
	}
	return out
}

// execBatch executes every request of the batch at slot s against the
// service state and replies to clients. tentative selects §5.1.2 semantics.
// With the stage-3 executor, the state-machine half (Service.Execute,
// reply construction, checkpoint digesting) is dispatched as ordered
// commands and overlaps the protocol work for subsequent batches; all
// protocol bookkeeping below stays on the event loop either way.
func (r *Replica) execBatch(s *vlog.Slot, tentative bool) {
	pp := s.PrePrepare
	seq := s.Seq
	if r.staged() {
		r.dispatchBatch(pp, seq, tentative)
	} else {
		for _, req := range r.batchRequests(pp) {
			if req == nil {
				continue // null request: no-op (§2.3.5)
			}
			r.execOne(req, pp.NonDet, tentative, seq)
		}
	}
	r.lastExec = seq
	r.execRecords[seq] = execRecord{digest: s.Digest, tentative: tentative}
	r.metrics.BatchesExecuted++
	// Progress in the new view resets the exponential backoff (§2.3.5).
	r.vc.waitTimeout = 0
	r.vcTimeout = r.cfg.ViewChangeTimeout
	if tentative {
		s.ExecutedTentative = true
		r.metrics.TentativeExecs++
	} else {
		s.Executed = true
		r.lastCommitted = seq
	}

	// Checkpoint right after (tentative) execution of a multiple of K; the
	// checkpoint message goes out only once the batch commits (§5.1.2). On
	// the staged path the digest comes back as an event (onCkptTaken),
	// which broadcasts or defers by the commit state at report time.
	if seq%r.cfg.CheckpointInterval == 0 {
		if r.staged() {
			r.metrics.CheckpointsTaken++
			r.xs.ex.TakeCheckpoint(seq, r.xs.epoch)
		} else {
			d := r.takeCheckpointNow(seq)
			if tentative {
				r.pendingCkpts[seq] = d
			} else {
				r.broadcastCheckpoint(seq, d)
			}
		}
	}
}

// finalizeBatch upgrades a tentative execution to committed.
func (r *Replica) finalizeBatch(s *vlog.Slot) {
	s.Executed = true
	r.lastCommitted = s.Seq
	if rec, ok := r.execRecords[s.Seq]; ok {
		rec.tentative = false
		r.execRecords[s.Seq] = rec
	}
	// The batch's replies are no longer tentative.
	if s.PrePrepare != nil {
		var finals []executor.Final
		for _, req := range r.batchRequests(s.PrePrepare) {
			if req == nil {
				continue
			}
			if r.staged() {
				if mark, ok := r.xs.repMarks[req.Client]; ok &&
					mark.ts == req.Timestamp && mark.tentative {
					mark.tentative = false
					// Updates an existing reply-cache entry (guarded by the
					// lookup above); no new key is ever inserted here.
					r.xs.repMarks[req.Client] = mark // bftlint:allow=bfttaint
					finals = append(finals, executor.Final{
						Client: req.Client, Timestamp: req.Timestamp})
				}
			} else {
				r.replyCache.MarkFinal(req.Client, req.Timestamp)
			}
		}
		if len(finals) > 0 {
			r.xs.ex.Finalize(finals)
		}
	}
	if d, ok := r.pendingCkpts[s.Seq]; ok {
		delete(r.pendingCkpts, s.Seq)
		r.broadcastCheckpoint(s.Seq, d)
	}
}

// execOne applies a single request and sends the reply (serial path; the
// staged twin is dispatchBatch + executor execOne).
func (r *Replica) execOne(req *message.Request, nondet []byte, tentative bool, seq message.Seq) {
	client := req.Client
	d := req.Digest()
	defer func() {
		r.log.MarkRequestExecuted(d, seq)
		r.dequeueExecuted(client, d)
	}()

	if cr := r.replyCache.Get(client); cr != nil && req.Timestamp <= cr.Timestamp {
		if req.Timestamp == cr.Timestamp {
			r.resendCachedReply(client)
		}
		return
	}

	var result []byte
	if req.Recovery() {
		result = r.executeRecoveryRequest(req, seq)
	} else {
		result = r.service.Execute(client, req.Op, nondet)
	}
	r.metrics.RequestsExecuted++
	r.replyTo(req, result, tentative)
}

// replyTo builds, caches, and sends the reply for an executed request.
func (r *Replica) replyTo(req *message.Request, result []byte, tentative bool) {
	// Cache the canonical (timestamp, result) for retransmissions; the
	// protocol envelope (view, tentative) is rebuilt when resending so the
	// checkpointed reply cache is identical across replicas.
	r.replyCache.Set(req.Client, req.Timestamp, result, tentative)
	r.sendTo(req.Client, executor.BuildReply(r.id, r.cfg.Opt.DigestReplies,
		smallResultThreshold, r.view, req, result, tentative))
}

// drainReadOnly answers queued read-only requests once the state reflects
// only committed execution (§5.1.3). Two conditions gate each reply: the
// state must hold no tentative (revocable) writes NOW, and everything that
// was (tentatively) executed when the request ARRIVED must have committed —
// a view change may roll a tentative write back and recommit it later, and
// a read the client issued after that write's reply certificate must not
// answer from the rolled-back state in between.
func (r *Replica) drainReadOnly() {
	if len(r.roQueue) == 0 || r.lastExec != r.lastCommitted {
		return
	}
	q := r.roQueue
	r.roQueue = nil
	for _, e := range q {
		if e.mark > r.lastCommitted {
			// The tentative prefix observed at arrival has not recommitted
			// yet; keep waiting (the client's retry demotes to read-write if
			// this drags on, §5.1.3).
			r.roQueue = append(r.roQueue, e)
			continue
		}
		req := e.req
		if r.staged() {
			// Eligibility was decided here on protocol state; command order
			// guarantees the executor answers from a state reflecting
			// exactly the dispatched prefix.
			r.xs.ex.ExecReadOnly(req, r.view)
			continue
		}
		result := r.service.Execute(req.Client, req.Op, nil)
		r.sendTo(req.Client, executor.BuildReply(r.id, r.cfg.Opt.DigestReplies,
			smallResultThreshold, r.view, req, result, false))
	}
}

// ---------------------------------------------------------------------------
// Checkpoints and garbage collection (§2.3.4, §3.2.3)
// ---------------------------------------------------------------------------

// ckptDigest combines the partition-tree root and the reply-cache blob into
// the digest carried by checkpoint messages. Every replica must compute the
// same digest for the same state, so nothing time- or randomness-dependent
// may be reachable from here.
//
// bftlint:deterministic
func ckptDigest(root crypto.Digest, extra []byte) crypto.Digest {
	return checkpoint.CombinedDigest(root, extra)
}

// takeCheckpointNow snapshots the state and returns the checkpoint digest
// (serial path; the staged path dispatches TakeCheckpoint to the executor).
func (r *Replica) takeCheckpointNow(seq message.Seq) crypto.Digest {
	t0 := time.Now()
	extra := r.replyCache.Marshal()
	snap := r.ckpt.Take(seq, extra)
	r.metrics.CheckpointsTaken++
	r.metrics.CkptDigestTime += time.Since(t0)
	return ckptDigest(snap.Root, snap.Extra)
}

func (r *Replica) broadcastCheckpoint(seq message.Seq, d crypto.Digest) {
	cp := &message.Checkpoint{Seq: seq, Digest: d, Replica: r.id}
	// Durability barrier (§2.3.4): a checkpoint vote asserts state the group
	// may build a stable certificate on, so everything that produced it must
	// survive a crash before the claim leaves this replica.
	r.walBarrier()
	r.multicastReplicas(cp)
	r.addCkptVote(seq, r.id, d)
	r.checkCkptStable(seq)
}

func (r *Replica) addCkptVote(seq message.Seq, from message.NodeID, d crypto.Digest) {
	votes, ok := r.ckptVotes[seq]
	if !ok {
		votes = make(map[message.NodeID]crypto.Digest)
		r.ckptVotes[seq] = votes
	}
	votes[from] = d
}

func (r *Replica) onCheckpoint(cp *message.Checkpoint) {
	if cp.Seq <= r.log.Low() {
		return
	}
	r.addCkptVote(cp.Seq, cp.Replica, cp.Digest)
	r.checkCkptStable(cp.Seq)
	r.maybeStartTransfer(cp.Seq)
}

// checkCkptStable makes a checkpoint stable when a quorum certifies a digest
// matching our own snapshot (§3.2.3 requires a quorum, not a weak cert, so
// other replicas can reconstruct proof during view changes).
func (r *Replica) checkCkptStable(seq message.Seq) {
	if seq <= r.log.Low() {
		return
	}
	// Our own digest for seq: from the manager on the serial path, from
	// the digest mirror on the staged path (absent until the executor's
	// report arrives; the report re-runs this check).
	mine, ok := r.ownCkptDigest(seq)
	if !ok {
		return
	}
	votes := r.ckptVotes[seq]
	n := 0
	for _, d := range votes {
		if d == mine {
			n++
		}
	}
	if n < r.log.Quorum() {
		return
	}
	r.makeStable(seq)
}

// makeStable advances the low water mark and garbage collects (§2.3.4).
func (r *Replica) makeStable(seq message.Seq) {
	if seq <= r.log.Low() {
		return
	}
	r.log.AdvanceLow(seq)
	r.discardCkptsBefore(seq)
	for s := range r.ckptVotes {
		if s <= seq {
			delete(r.ckptVotes, s)
		}
	}
	for s := range r.execRecords {
		if s <= seq {
			delete(r.execRecords, s)
		}
	}
	for s := range r.pendingCkpts {
		if s <= seq {
			delete(r.pendingCkpts, s)
		}
	}
	for s := range r.waitingPP {
		if s <= seq {
			delete(r.waitingPP, s)
		}
	}
	r.metrics.StableCheckpoints++
	r.persistStable(seq) // WAL snapshot + segment rotation (replay window = L)
	r.pruneViewChangeSets(seq)
	r.recoveryCheckpointStable(seq)
	if r.isPrimary() {
		r.tryIssuePrePrepares() // window advanced
	}
}

// maybeStartTransfer reacts to a weak certificate for a checkpoint we have
// not reached (§5.3.2). Once such a checkpoint is stable group-wide, the
// other replicas discard every protocol message at or below it, so replay
// may be impossible and the state itself is the only way to catch up. A
// checkpoint beyond our window triggers the transfer immediately; one
// within it becomes a candidate that fetchTick promotes only if ordinary
// execution fails to reach it within a grace period (a replica lagging by
// milliseconds must not thrash with spurious transfers). Candidates are
// recorded even while a transfer is ACTIVE: a weak certificate ahead of the
// current fetch target is the signal that the target was collected
// cluster-wide and the transfer must be re-pointed — refusing it wedged the
// fetcher on a Fetch nobody could ever serve.
func (r *Replica) maybeStartTransfer(seq message.Seq) {
	if seq <= r.latestCkptSeq() || seq <= r.lastExec {
		return
	}
	if r.fetch.active && seq <= r.fetch.target {
		return // already fetching at least this far
	}
	votes := r.ckptVotes[seq]
	count := make(map[crypto.Digest]int)
	for _, d := range votes {
		count[d]++
	}
	// Pick the transfer target digest in sorted order: only one digest can
	// hold an honest weak certificate, but the scan must not let map order
	// (or a Byzantine voter) decide which certificate we test first.
	ds := make([]crypto.Digest, 0, len(count))
	for d := range count {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return bytes.Compare(ds[i][:], ds[j][:]) < 0 })
	for _, d := range ds {
		if count[d] < r.log.Weak() {
			continue
		}
		if seq > r.log.High() {
			r.startStateTransfer(seq, d)
			return
		}
		if r.fetch.candSeq == 0 || seq > r.fetch.candSeq {
			r.fetch.candSeq = seq
			r.fetch.candDigest = d
			r.fetch.candSince = time.Now()
			r.fetch.candExec = r.lastExec
		}
		return
	}
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// inWV is the in-wv predicate: right view and inside the water marks.
func (r *Replica) inWV(v message.View, seq message.Seq) bool {
	return v == r.view && r.log.InWindow(seq)
}

// updateVCTimer arms the view-change timer while this backup waits for
// queued requests to execute, per §2.3.5. A tentatively executed batch whose
// commits have not arrived also counts as waiting: the request is answered
// only by a tentative reply the client cannot certify until it commits
// (§5.1.2), and if the primary died right after its pre-prepare the commit
// quorum never forms — the retransmissions then hit the reply cache instead
// of the queue, so the queue alone would leave every backup timerless and
// the view change would never start. The two predicates age differently:
// a queued request holds the deadline fixed (steady progress on OTHER
// requests must not mask a primary censoring this one), while
// tentative-only waiting restarts the deadline whenever the committed
// frontier advances — under sustained load some batch is always tentatively
// ahead of its commits, and a healthy pipelining cluster must not view-
// change over it.
func (r *Replica) updateVCTimer() {
	if r.isPrimary() || r.vc.pending {
		r.vcTimerDeadline = time.Time{}
		return
	}
	queueWaiting := r.queue.Len() > 0
	tentWaiting := r.lastCommitted < r.lastExec
	switch {
	case !queueWaiting && !tentWaiting:
		r.vcTimerDeadline = time.Time{}
	case r.vcTimerDeadline.IsZero(),
		!queueWaiting && r.lastCommitted > r.vcTimerCommitted:
		r.vcTimerDeadline = time.Now().Add(r.vcTimeout)
		r.vcTimerCommitted = r.lastCommitted
	}
}
