package pbft

import (
	"sync"
	"testing"
	"time"

	"repro/internal/kvservice"
	"repro/internal/message"
	"repro/internal/simnet"
)

func TestRequestQueueSemantics(t *testing.T) {
	q := newRequestQueue()
	mk := func(cli message.NodeID, ts uint64, size int) *message.Request {
		return &message.Request{Client: message.ClientIDBase + cli, Timestamp: ts, Op: make([]byte, size)}
	}
	a1, b1, c1 := mk(1, 1, 10), mk(2, 1, 20), mk(3, 1, 30)
	q.Push(a1.Client, a1.Digest(), len(a1.Op))
	q.Push(b1.Client, b1.Digest(), len(b1.Op))
	q.Push(c1.Client, c1.Digest(), len(c1.Op))
	if q.Len() != 3 || q.Bytes() != 60 {
		t.Fatalf("len=%d bytes=%d, want 3/60", q.Len(), q.Bytes())
	}

	// Replacing a client's request moves it to the tail (§5.5: newest wins).
	a2 := mk(1, 2, 15)
	q.Push(a2.Client, a2.Digest(), len(a2.Op))
	if q.Len() != 3 || q.Bytes() != 65 {
		t.Fatalf("after replace: len=%d bytes=%d, want 3/65", q.Len(), q.Bytes())
	}
	// Re-pushing the same digest is a no-op (position preserved).
	q.Push(a2.Client, a2.Digest(), len(a2.Op))
	if q.Len() != 3 || q.Bytes() != 65 {
		t.Fatalf("after same-digest push: len=%d bytes=%d, want 3/65", q.Len(), q.Bytes())
	}

	// Remove with a stale digest is a no-op; with the live one it drops.
	q.Remove(a2.Client, a1.Digest())
	if _, ok := q.Digest(a2.Client); !ok {
		t.Fatal("stale-digest Remove dropped the live entry")
	}
	q.Remove(a2.Client, a2.Digest())
	if _, ok := q.Digest(a2.Client); ok {
		t.Fatal("Remove left the entry")
	}

	// Pop order is FIFO over the survivors: b then c.
	cli, _, _, ok := q.Pop()
	if !ok || cli != b1.Client {
		t.Fatalf("pop 1: %v %v", cli, ok)
	}
	cli, _, _, ok = q.Pop()
	if !ok || cli != c1.Client {
		t.Fatalf("pop 2: %v %v", cli, ok)
	}
	if _, _, _, ok := q.Pop(); ok || q.Len() != 0 || q.Bytes() != 0 {
		t.Fatalf("queue not empty after draining: len=%d bytes=%d", q.Len(), q.Bytes())
	}
}

func TestOversizedRequestProposesAlone(t *testing.T) {
	// A single request larger than BatchBytes must still propose — alone —
	// and a batch stops before the request that would overflow it.
	cfg := testConfig()
	cfg.Opt.BatchBytes = 64
	c := newTestCluster(t, 4, cfg, nil)
	r := c.Replica(0)
	r.do(func() {
		enq := func(cli message.NodeID, size int) {
			req := &message.Request{Client: message.ClientIDBase + cli, Timestamp: 1, Op: make([]byte, size)}
			r.log.StoreRequest(req)
			r.enqueueRequest(req)
		}
		enq(11, 10)
		enq(12, 200) // oversized: exceeds BatchBytes on its own
		enq(13, 10)
		enq(14, 10)

		b1, s1 := r.takeBatch(16)
		if len(b1) != 1 || s1 != 10 {
			t.Errorf("batch 1: %d requests / %d bytes, want 1/10 (byte cap must stop before the oversized request)", len(b1), s1)
		}
		b2, s2 := r.takeBatch(16)
		if len(b2) != 1 || s2 != 200 {
			t.Errorf("batch 2: %d requests / %d bytes, want the oversized request alone (1/200)", len(b2), s2)
		}
		b3, s3 := r.takeBatch(16)
		if len(b3) != 2 || s3 != 20 {
			t.Errorf("batch 3: %d requests / %d bytes, want 2/20", len(b3), s3)
		}
	})
}

func TestAdaptiveBatchConverges(t *testing.T) {
	// The AIMD fill target must grow toward BatchRequests while a deep queue
	// persists and shrink back to 1 once the queue drains.
	cfg := testConfig()
	c := newTestCluster(t, 4, cfg, nil)
	r := c.Replica(0)
	r.do(func() {
		for i := 0; i < 128; i++ {
			req := &message.Request{Client: message.ClientIDBase + message.NodeID(100+i), Timestamp: 1, Op: make([]byte, 8)}
			r.log.StoreRequest(req)
			r.enqueueRequest(req)
		}
		// Sustained backlog: desired = ceil(128/8) = 16 ≥ cap, so the target
		// climbs by 1 per proposal up to BatchRequests.
		for i := 0; i < 2*r.cfg.Opt.BatchRequests; i++ {
			r.fillTarget()
		}
		if got := r.batchTarget; got != r.cfg.Opt.BatchRequests {
			t.Errorf("target under load = %d, want cap %d", got, r.cfg.Opt.BatchRequests)
		}
		// Drain the queue: the target must decay multiplicatively to 1.
		for r.queue.Len() > 0 {
			r.queue.Pop()
		}
		for i := 0; i < 8; i++ {
			r.fillTarget()
		}
		if got := r.batchTarget; got != 1 {
			t.Errorf("target after drain = %d, want 1", got)
		}
	})
}

func TestAdaptiveRampsUnderWindowPressure(t *testing.T) {
	// Mid-load regression (BENCH_batching, 10 clients): the backlog is
	// shorter than the agreement window, but the window itself is saturated.
	// Dividing the queue by the WHOLE window pins desired at 1 and adaptive
	// degenerates to serial agreement; the target must instead size batches
	// for the outstanding demand (queued + in flight) over the free slots
	// and ramp.
	cfg := testConfig()
	c := newTestCluster(t, 4, cfg, nil)
	r := c.Replica(0)
	r.do(func() {
		w := r.cfg.Opt.AgreementWindow
		for i := 0; i < w-2; i++ { // queue deep enough to matter, < window
			req := &message.Request{Client: message.ClientIDBase + message.NodeID(200+i), Timestamp: 1, Op: make([]byte, 8)}
			r.log.StoreRequest(req)
			r.enqueueRequest(req)
		}
		// Saturate the window: every slot in flight, none executed.
		saved := r.seqno
		r.seqno = r.lastExec + message.Seq(w)
		for i := 0; i < w; i++ {
			r.fillTarget()
		}
		if got := r.batchTarget; got < 2 {
			t.Errorf("fill target stuck at %d with a saturated window and %d queued; adaptive degenerates to serial", got, w-2)
		}
		// One free slot must absorb the whole outstanding demand (w-2
		// queued + w-1 in flight) once ramped.
		r.seqno = r.lastExec + message.Seq(w) - 1
		for i := 0; i < 2*w; i++ {
			r.fillTarget()
		}
		if got := r.batchTarget; got != 2*w-3 {
			t.Errorf("fill target = %d, want the outstanding demand %d over the one free slot", got, 2*w-3)
		}
		r.seqno = saved
	})
}

func TestBatchWaitFlushesPartialBatch(t *testing.T) {
	// With fixed batching (fill target pinned at BatchRequests) and agreement
	// latency well above BatchWait, requests arriving while a batch is in
	// flight are deadline-held and then flushed by the timer — the flush must
	// be visible in BatchWaitFires and every operation must still execute.
	cfg := testConfig()
	cfg.Opt.AdaptiveBatch = false
	cfg.Opt.BatchWait = time.Millisecond
	net := simnet.New(simnet.WithSeed(cfg.Seed+5),
		simnet.WithDefaults(simnet.LinkConfig{Latency: 5 * time.Millisecond}))
	c := NewCluster(net, cfg, 4, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(func() { c.Stop(); net.Close() })

	const nClients, each = 4, 10
	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		cl := c.NewClient()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				if _, err := cl.Invoke(kvservice.Incr(), false); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("invoke: %v", err)
	}
	cl := c.NewClient()
	if got := kvservice.DecodeU64(mustInvoke(t, cl, kvservice.Get(), true)); got != nClients*each {
		t.Fatalf("counter = %d, want %d", got, nClients*each)
	}
	if m := c.Replica(0).Metrics(); m.BatchWaitFires == 0 {
		t.Errorf("no BatchWait fires under concurrent load with 15ms agreement latency: %+v", m)
	}
}

func TestBatchWaitPartialBatchSurvivesViewChange(t *testing.T) {
	// A deadline-armed partial batch on a primary that then fails must not
	// lose or duplicate requests. With 40ms links, request A proposes at
	// ~40ms and its agreement completes among the backups at ~160ms even
	// without the primary; request B lands at ~90ms while A is in flight, so
	// it is held behind the accumulate deadline (BatchWait is set far beyond
	// the view-change timeout, so the old primary can never flush it).
	// Isolating the primary at ~110ms strands B on the dead primary; client
	// retransmission must carry it to the new view's primary, and exactly-
	// once must hold for both operations.
	cfg := testConfig()
	cfg.Opt.BatchWait = 5 * time.Second
	cfg.Opt.AdaptiveBatch = false // fixed fill target 16, so one queued request accumulates
	net := simnet.New(simnet.WithSeed(cfg.Seed+9),
		simnet.WithDefaults(simnet.LinkConfig{Latency: 40 * time.Millisecond}))
	c := NewCluster(net, cfg, 4, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(func() { c.Stop(); net.Close() })

	clA, clB := c.NewClient(), c.NewClient()
	clA.MaxRetries, clB.MaxRetries = 25, 25
	resA := make(chan error, 1)
	resB := make(chan error, 1)
	go func() {
		_, err := clA.Invoke(kvservice.Incr(), false)
		resA <- err
	}()
	time.Sleep(50 * time.Millisecond)
	go func() {
		_, err := clB.Invoke(kvservice.Incr(), false)
		resB <- err
	}()
	time.Sleep(60 * time.Millisecond)
	net.Isolate(0)
	// Pin the premise: at isolation B should be queued on the old primary
	// behind an armed accumulate deadline. Scheduling jitter can shift the
	// interleaving — the correctness assertions below hold either way, so
	// a missed window only downgrades what this run exercised.
	var held bool
	c.Replica(0).do(func() {
		held = r0held(c.Replica(0))
	})
	if !held {
		t.Logf("timing window missed: request B was not deadline-held at isolation; exactly-once checks still apply")
	}

	if err := <-resA; err != nil {
		t.Fatalf("op A lost across the view change: %v", err)
	}
	if err := <-resB; err != nil {
		t.Fatalf("op B lost across the view change: %v", err)
	}
	// Exactly-once: both increments applied, neither duplicated.
	cl := c.NewClient()
	cl.MaxRetries = 25
	if got := kvservice.DecodeU64(mustInvoke(t, cl, kvservice.Get(), true)); got != 2 {
		t.Fatalf("counter = %d after view change, want exactly 2", got)
	}
	if v := c.Replica(1).View(); held && v == 0 {
		t.Errorf("request was deadline-held on an isolated primary yet no view change happened")
	}
}

// r0held reports whether the replica currently holds a queued request behind
// an armed accumulate deadline (event-loop context only).
func r0held(r *Replica) bool {
	return r.queue.Len() > 0 && !r.batchDeadline.IsZero()
}
