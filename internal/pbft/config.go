// Package pbft implements the BFT state-machine replication protocol family
// of Castro & Liskov: BFT-PK (Chapter 2, public-key signatures), BFT
// (Chapter 3, MAC authenticators with the PSet/QSet view change), and BFT-PR
// (Chapter 4, proactive recovery), together with the implementation
// techniques of Chapter 5 — digest replies, tentative execution, read-only
// operations, request batching, separate request transmission, status-based
// retransmission, hierarchical checkpointing and state transfer, and
// non-determinism agreement.
//
// One replica is one goroutine: the event loop owns all protocol state and
// consumes datagrams and timer ticks from channels, mirroring the
// I/O-automaton structure of the thesis's implementation (§6.1).
package pbft

import (
	"crypto/ed25519"
	"runtime"
	"sync"
	"time"

	"repro/internal/crypto"
	"repro/internal/message"
	"repro/internal/quorum"
	"repro/internal/wal"
)

// Mode selects the authentication flavor of the protocol.
type Mode int

// Protocol modes.
const (
	// ModeMAC is BFT (Chapter 3): authenticators everywhere, signatures only
	// for new-key and recovery messages.
	ModeMAC Mode = iota
	// ModePK is BFT-PK (Chapter 2): every message carries a signature.
	ModePK
)

func (m Mode) String() string {
	if m == ModePK {
		return "BFT-PK"
	}
	return "BFT"
}

// Options toggles the Chapter 5 optimizations independently so the ablation
// experiment (§8.3.3) can measure each one's impact.
type Options struct {
	// DigestReplies: only the designated replier returns the full result
	// (§5.1.1).
	DigestReplies bool
	// TentativeExec: execute once prepared, overlap commit with reply
	// (§5.1.2).
	TentativeExec bool
	// ReadOnly: clients may multicast read-only requests answered in a
	// single round trip (§5.1.3).
	ReadOnly bool
	// Batching: assign one sequence number to a batch of requests under
	// load (§5.1.4).
	Batching bool
	// BatchRequests bounds requests per batch (the thesis implementation's
	// 16-digest limit). It is the hard count cap; the adaptive policy picks
	// an effective fill target at or below it.
	BatchRequests int
	// BatchBytes bounds the total operation bytes one batch may carry. A
	// single request larger than the cap still proposes — alone. Zero means
	// the default of 64 KiB.
	BatchBytes int
	// BatchWait is the accumulate micro-deadline: with agreement already in
	// flight, the primary holds a sub-target batch open for up to this long
	// so later arrivals can ride the same sequence number. The timer arms
	// only when the queue is non-empty, the agreement window has room, AND
	// at least one batch is in flight — with nothing in flight a request
	// proposes immediately, so latency at low load is unchanged. Zero means
	// the default of 1ms; negative disables the timer (sub-target batches
	// then propose immediately, the pre-adaptive behavior).
	BatchWait time.Duration
	// AdaptiveBatch auto-tunes the effective batch fill target from
	// observed queue depth: the target tracks ceil(queued / free window
	// slots) — drain the backlog into the agreement room actually left —
	// with additive increase and multiplicative decrease, clamped to
	// [1, BatchRequests]. Light load gets per-request latency, a saturated
	// window gets amortized agreement, with no operator tuning. Off:
	// batches always try to fill to BatchRequests.
	AdaptiveBatch bool
	// AgreementWindow bounds protocol instances running in parallel — the
	// number of batches between the execution frontier and the newest
	// pre-prepare (the sliding-window W of §5.1.4). Must not exceed the
	// water-mark window L.
	AgreementWindow int
	// SeparateRequests: requests larger than InlineThreshold travel
	// directly from client to all replicas and only their digests ride in
	// pre-prepares (§5.1.5).
	SeparateRequests bool
	// InlineThreshold is the size cutoff for inlining (thesis: 255 bytes).
	InlineThreshold int
	// Pipeline moves datagram decode and MAC/signature verification off
	// the event loop onto a parallel worker pool (internal/ingress), so
	// ingress crypto scales across cores instead of capping throughput at
	// one. Protocol state stays single-threaded; per-sender message order
	// is preserved.
	Pipeline bool
	// PipelineWorkers sets the ingress pool size; 0 means GOMAXPROCS.
	PipelineWorkers int
	// EgressPipeline is the send-side twin of Pipeline: marshal and
	// authenticator generation (O(n) MACs per multicast, §5.2) move off
	// the event loop onto a parallel worker pool (internal/egress) that
	// hands pooled wire buffers to the transport in send order. Protocol
	// state stays single-threaded; sends that cross a key rotation are
	// re-sealed before transmission.
	EgressPipeline bool
	// EgressWorkers sets the egress pool size; 0 means GOMAXPROCS.
	EgressWorkers int
	// FetchWindow bounds the number of state-transfer partition fetches in
	// flight at once (§6.2.2 fetches partitions "in parallel from all
	// replicas"): in-flight items are striped across distinct repliers
	// round-robin and their replies matched out of order, so a lagging
	// replica's catch-up overlaps round trips instead of paying one per
	// partition. 1 reproduces the serial engine (the ablation baseline);
	// 0 means the default of 8.
	FetchWindow int
	// ExecPipeline is stage 3 of the replica pipeline: state-machine
	// execution, checkpoint digesting, and reply construction move off the
	// event loop onto a single ordered executor goroutine
	// (internal/executor) that exclusively owns the service Region, the
	// checkpoint manager, and the reply cache. Agreement for batch n+1
	// then overlaps execution of batch n. Protocol state stays
	// single-threaded on the event loop; rare paths that must observe
	// execution state (view-change rollback, state transfer, recovery
	// state checking) rendezvous with the executor.
	ExecPipeline bool
}

// DefaultOptions enables everything, like the thesis's BFT configuration.
// The ingress, egress, and executor pipelines are enabled when more than
// one core is available; on a single core the extra goroutines only add
// scheduling overhead, so the serial paths are kept (set Pipeline /
// EgressPipeline / ExecPipeline explicitly to force any of them).
func DefaultOptions() Options {
	multicore := runtime.GOMAXPROCS(0) > 1
	return Options{
		DigestReplies:    true,
		TentativeExec:    true,
		ReadOnly:         true,
		Batching:         true,
		BatchRequests:    16,
		BatchBytes:       64 << 10,
		BatchWait:        time.Millisecond,
		AdaptiveBatch:    true,
		AgreementWindow:  8,
		SeparateRequests: true,
		InlineThreshold:  255,
		FetchWindow:      8,
		Pipeline:         multicore,
		EgressPipeline:   multicore,
		ExecPipeline:     multicore,
	}
}

// WithoutOptimizations returns a copy of o with every Chapter 5 protocol
// optimization disabled — digest replies, tentative execution, read-only
// operations, batching, and separate request transmission — while leaving
// the engine stages (ingress/egress/executor pipelines, the state-transfer
// fetch window) untouched. The pipelines are implementation plumbing, not
// paper optimizations: a measurement run that wants the unoptimized
// PROTOCOL must still run the engine at full speed, or the ablation
// conflates the two. (Setting Opt = Options{} by hand silently turned the
// pipelines off too; use this instead.)
func (o Options) WithoutOptimizations() Options {
	o.DigestReplies = false
	o.TentativeExec = false
	o.ReadOnly = false
	o.Batching = false
	o.SeparateRequests = false
	return o
}

// Behavior selects a fault-injection personality for a replica.
type Behavior int

// Fault-injection behaviors.
const (
	// Correct follows the protocol.
	Correct Behavior = iota
	// Crashed ignores every message (fail-stop).
	Crashed
	// SilentPrimary follows the protocol except that it never sends
	// pre-prepares while primary, forcing view changes.
	SilentPrimary
	// ConflictingPrimary sends pre-prepares that assign the same sequence
	// number to different batches for different backups (a Byzantine
	// primary; safety must still hold).
	ConflictingPrimary
	// CorruptDigest sends prepare/commit messages with corrupted digests.
	CorruptDigest
	// WrongResult executes correctly but replies to clients with corrupted
	// results (clients must mask it with their reply certificates).
	WrongResult
)

// Config parameterizes one replica.
type Config struct {
	// ID is this replica's identity, 0..N-1.
	ID message.NodeID
	// N is the group size; the protocol tolerates f = (N-1)/3 faults.
	N int
	// Mode selects BFT or BFT-PK authentication.
	Mode Mode
	// Opt toggles the Chapter 5 optimizations.
	Opt Options

	// CheckpointInterval is K: checkpoints are taken when a batch with
	// sequence number divisible by K executes (§2.3.4).
	CheckpointInterval message.Seq
	// LogWindow is L, the width of the water-mark window (thesis: 2K).
	LogWindow message.Seq

	// ViewChangeTimeout is the initial timeout before a backup suspects the
	// primary; it doubles for consecutive view changes (§2.3.5).
	ViewChangeTimeout time.Duration
	// StatusInterval is the period of status multicasts (§5.2).
	StatusInterval time.Duration
	// IdleStatus suppresses status messages while nothing is missing.
	// (Always on; field kept for tests that want chatter.)
	ChattyStatus bool

	// StateSize and PageSize shape the service memory region; Fanout shapes
	// the partition tree (§5.3.1).
	StateSize int
	PageSize  int
	Fanout    int

	// Proactive recovery (Chapter 4). Recovery runs when the watchdog
	// fires (WatchdogInterval > 0) or when Replica.Recover is called.
	KeyRefreshInterval time.Duration
	WatchdogInterval   time.Duration

	// InboxCap bounds the replica's receive queue; overflow models
	// receive-buffer loss and is counted in Metrics.InboxDrops. On the
	// pipelined path it bounds EACH stage queue (submit order, work, and
	// verified inbox), so total in-flight buffering can reach ~3x this
	// value — serial and pipelined drop behavior are comparable in kind,
	// not slot-for-slot. Default 8192. (Clients use a small fixed ingress
	// queue; only replicas are flooded in experiments.)
	InboxCap int

	// Durability (durability.go, internal/wal). WALDir, when set, makes the
	// replica log protocol records to a write-ahead log in that directory
	// (one directory per replica) and recover from it on construction.
	// WALBackend overrides the file backend with a caller-supplied storage
	// seam (tests use wal.MemBackend); it must not be shared between
	// replicas. WALSyncEvery forces a write+fsync per record instead of the
	// async group commit; WALSyncWait is the minimum interval between group
	// commits (zero means wal.DefaultSyncWait). WALRotateBytes is the
	// segment size at which a stable checkpoint saves a full snapshot and
	// rotates the log (zero means 256 KiB; checkpoints below the threshold
	// log only a truncation record, which replay honors by sliding its
	// window).
	WALDir         string
	WALBackend     wal.Backend
	WALSyncEvery   bool
	WALSyncWait    time.Duration
	WALRotateBytes int64

	// QSetBound, when positive, bounds the number of (digest, view) pairs
	// retained per sequence number in the QSet — the bounded-space view
	// change of §3.2.5 (the thesis suggests a small constant like 2). Zero
	// keeps the unbounded base protocol. The bound discards the lowest-view
	// pair; the full not-committed (NCSet) machinery §3.2.5 adds to
	// preserve liveness under adversarial repeated view changes is not
	// reproduced (documented deviation).
	QSetBound int

	// Behavior injects a fault personality.
	Behavior Behavior

	// Seed drives the replica's private PRNG.
	Seed int64
}

// Validate applies defaults and sanity checks.
func (c *Config) Validate() {
	if c.N < 4 {
		c.N = 4
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 128
	}
	if c.LogWindow == 0 {
		c.LogWindow = 2 * c.CheckpointInterval
	}
	if c.ViewChangeTimeout == 0 {
		c.ViewChangeTimeout = 250 * time.Millisecond
	}
	if c.StatusInterval == 0 {
		c.StatusInterval = 50 * time.Millisecond
	}
	if c.StateSize == 0 {
		c.StateSize = 1 << 16
	}
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.Fanout == 0 {
		c.Fanout = 16
	}
	if c.Opt.BatchRequests == 0 {
		c.Opt.BatchRequests = 16
	}
	if c.Opt.BatchBytes == 0 {
		c.Opt.BatchBytes = 64 << 10
	}
	if c.Opt.BatchWait == 0 {
		c.Opt.BatchWait = time.Millisecond
	}
	if c.Opt.AgreementWindow == 0 {
		c.Opt.AgreementWindow = 8
	}
	// The agreement window cannot usefully exceed the water-mark window:
	// pre-prepares beyond L are refused anyway, so clamp rather than wedge.
	if w := message.Seq(c.Opt.AgreementWindow); w > c.LogWindow {
		c.Opt.AgreementWindow = int(c.LogWindow)
	}
	if c.Opt.InlineThreshold == 0 {
		c.Opt.InlineThreshold = 255
	}
	if c.Opt.FetchWindow == 0 {
		c.Opt.FetchWindow = 8
	}
	if c.InboxCap == 0 {
		c.InboxCap = 8192
	}
}

// F returns the fault threshold (N-1)/3.
//
//bftlint:faultbound
func (c *Config) F() int { return quorum.F(c.N) }

// Directory is the public-key and identity registry shared by all
// principals — the role the read-only memory plays in §4.2. Clients appear
// dynamically while replicas (and their ingress verification workers) read
// it, so lookups take a read lock.
type Directory struct {
	n    int
	mu   sync.RWMutex
	keys map[message.NodeID]ed25519.PublicKey
}

// NewDirectory creates a directory for n replicas.
func NewDirectory(n int) *Directory {
	return &Directory{n: n, keys: make(map[message.NodeID]ed25519.PublicKey)}
}

// OfflineDirectory builds a directory pre-populated with the deterministic
// identity keys of the offline trusted setup: the public keys of replicas
// 0..n-1 and of the first clients client principals (ClientIDBase upward).
// Every principal derives the same directory independently, so per-node
// construction works across processes with no runtime key exchange —
// exactly the paper's assumption that keys are distributed offline (§2.1,
// §4.2's read-only memory).
func OfflineDirectory(n, clients int) *Directory {
	dir := NewDirectory(n)
	for i := 0; i < n; i++ {
		kp := crypto.GenerateKeyPair(crypto.DeriveKey("replica-identity", uint64(i)))
		dir.Register(message.NodeID(i), kp.Public)
	}
	for c := 0; c < clients; c++ {
		id := message.ClientIDBase + message.NodeID(c)
		kp := crypto.GenerateKeyPair(crypto.DeriveKey("client-identity", uint64(id)))
		dir.Register(id, kp.Public)
	}
	return dir
}

// N returns the replica group size.
func (d *Directory) N() int { return d.n }

// ReplicaIDs returns the group's replica ids.
func (d *Directory) ReplicaIDs() []message.NodeID {
	ids := make([]message.NodeID, d.n)
	for i := range ids {
		ids[i] = message.NodeID(i)
	}
	return ids
}

// Register records a principal's public key.
func (d *Directory) Register(id message.NodeID, pub ed25519.PublicKey) {
	d.mu.Lock()
	d.keys[id] = pub
	d.mu.Unlock()
}

// PublicKey returns a principal's public key.
func (d *Directory) PublicKey(id message.NodeID) (ed25519.PublicKey, bool) {
	d.mu.RLock()
	k, ok := d.keys[id]
	d.mu.RUnlock()
	return k, ok
}

// Primary returns the primary of view v: p = v mod |R| (§2.3).
func (d *Directory) Primary(v message.View) message.NodeID {
	return message.NodeID(uint64(v) % uint64(d.n))
}
