package pbft

import (
	"repro/internal/crypto"
	"repro/internal/message"
)

// requestQueue is the primary-side (and backup waiting-set) request queue of
// §2.3.5/§5.5: FIFO over clients, at most one entry — the newest request —
// per client. It is an intrusive doubly-linked list indexed by client, so
// enqueue, replace, and dequeue-by-client are all O(1); the previous slice
// representation rescanned the whole queue on every enqueueRequest /
// dequeueExecuted, which at hundreds of queued clients made queue
// maintenance itself a hot-path cost (every executed request paid one scan
// per batch entry).
//
// The queue also maintains a running byte total of the queued operations so
// the batch assembler can apply its byte cap and the adaptive policy can
// read queue pressure without walking the list.
type requestQueue struct {
	head, tail *reqNode
	byClient   map[message.NodeID]*reqNode
	bytes      int
}

// reqNode is one queued request: the client principal, the digest of its
// newest request, and the operation size used for byte accounting.
type reqNode struct {
	client     message.NodeID
	digest     crypto.Digest
	size       int
	prev, next *reqNode
}

func newRequestQueue() requestQueue {
	return requestQueue{byClient: make(map[message.NodeID]*reqNode)}
}

// Len returns the number of queued requests (= clients with a queued entry).
func (q *requestQueue) Len() int { return len(q.byClient) }

// Bytes returns the total op bytes queued.
func (q *requestQueue) Bytes() int { return q.bytes }

// Digest returns the queued digest for a client, if any.
func (q *requestQueue) Digest(client message.NodeID) (crypto.Digest, bool) {
	n, ok := q.byClient[client]
	if !ok {
		return crypto.Digest{}, false
	}
	return n.digest, true
}

// Front returns the oldest queued entry without removing it.
func (q *requestQueue) Front() (client message.NodeID, d crypto.Digest, size int, ok bool) {
	if q.head == nil {
		return 0, crypto.Digest{}, 0, false
	}
	return q.head.client, q.head.digest, q.head.size, true
}

// Push appends a request for client at the tail. If the client already has
// a queued entry it is replaced by the newer request — removed from its
// position and re-queued at the tail (§5.5 fairness: one slot per client,
// newest request wins). Pushing the digest already queued is a no-op.
func (q *requestQueue) Push(client message.NodeID, d crypto.Digest, size int) {
	if old, ok := q.byClient[client]; ok {
		if old.digest == d {
			return
		}
		q.unlink(old)
	}
	n := &reqNode{client: client, digest: d, size: size}
	q.byClient[client] = n
	q.bytes += size
	if q.tail == nil {
		q.head, q.tail = n, n
		return
	}
	n.prev = q.tail
	q.tail.next = n
	q.tail = n
}

// Remove drops the client's entry if it matches d exactly.
func (q *requestQueue) Remove(client message.NodeID, d crypto.Digest) {
	if n, ok := q.byClient[client]; ok && n.digest == d {
		q.unlink(n)
	}
}

// RemoveClient drops the client's entry regardless of digest.
func (q *requestQueue) RemoveClient(client message.NodeID) {
	if n, ok := q.byClient[client]; ok {
		q.unlink(n)
	}
}

// Pop removes and returns the oldest entry.
func (q *requestQueue) Pop() (client message.NodeID, d crypto.Digest, size int, ok bool) {
	n := q.head
	if n == nil {
		return 0, crypto.Digest{}, 0, false
	}
	q.unlink(n)
	return n.client, n.digest, n.size, true
}

// Each walks the queue head to tail; fn returning false stops the walk. The
// current node may be removed by fn (the walk holds its successor first).
func (q *requestQueue) Each(fn func(client message.NodeID, d crypto.Digest) bool) {
	for n := q.head; n != nil; {
		next := n.next
		if !fn(n.client, n.digest) {
			return
		}
		n = next
	}
}

func (q *requestQueue) unlink(n *reqNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		q.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		q.tail = n.prev
	}
	n.prev, n.next = nil, nil
	delete(q.byClient, n.client)
	q.bytes -= n.size
}
