package pbft

// Unit tests for the new-view decision procedure (Fig 3-3) over synthetic
// view-change sets: the safety conditions A1/A2/B in isolation, without a
// live cluster.

import (
	"testing"

	"repro/internal/crypto"
	"repro/internal/kvservice"
	"repro/internal/message"
)

// mkReplicaForDecision builds a standalone replica (n=4) for calling
// runDecision directly.
func mkReplicaForDecision(t *testing.T) (*Replica, *Cluster) {
	t.Helper()
	c := NewLocalCluster(4, testConfig(), kvservice.Factory, nil)
	// No Start(): runDecision is a pure function of its input.
	t.Cleanup(func() {
		for _, r := range c.Replicas {
			r.trans.Close()
		}
		c.Net.Close()
	})
	return c.Replica(0), c
}

// vcFrom builds a synthetic view-change message.
func vcFrom(id message.NodeID, nv message.View, h message.Seq,
	ckpts []message.CkptInfo, p []message.PInfo, q []message.QInfo) *message.ViewChange {
	return &message.ViewChange{
		NewView: nv, H: h, Ckpts: ckpts, P: p, Q: q, Replica: id,
	}
}

func ckptAt(seq message.Seq, tag string) message.CkptInfo {
	return message.CkptInfo{Seq: seq, Digest: crypto.DigestOf([]byte(tag))}
}

func TestDecisionNeedsQuorum(t *testing.T) {
	r, _ := mkReplicaForDecision(t)
	S := map[message.NodeID]*message.ViewChange{
		0: vcFrom(0, 1, 0, []message.CkptInfo{ckptAt(0, "c0")}, nil, nil),
		1: vcFrom(1, 1, 0, []message.CkptInfo{ckptAt(0, "c0")}, nil, nil),
	}
	if dec := r.runDecision(S); dec.ok {
		t.Fatal("decision succeeded with only 2 view-changes (quorum is 3)")
	}
}

func TestDecisionEmptyLogsChooseCheckpointZero(t *testing.T) {
	r, _ := mkReplicaForDecision(t)
	S := map[message.NodeID]*message.ViewChange{}
	for i := message.NodeID(0); i < 4; i++ {
		S[i] = vcFrom(i, 1, 0, []message.CkptInfo{ckptAt(0, "c0")}, nil, nil)
	}
	dec := r.runDecision(S)
	if !dec.ok || dec.ckptSeq != 0 || len(dec.x) != 0 {
		t.Fatalf("decision %+v, want empty start at checkpoint 0", dec)
	}
}

func TestDecisionPicksHighestSupportedCheckpoint(t *testing.T) {
	r, _ := mkReplicaForDecision(t)
	// Three replicas advanced to checkpoint 128; one lags at 0. The f+1
	// weak certificate and 2f+1 reachability both exist for 128.
	S := map[message.NodeID]*message.ViewChange{}
	for i := message.NodeID(0); i < 3; i++ {
		S[i] = vcFrom(i, 1, 128,
			[]message.CkptInfo{ckptAt(128, "c128")}, nil, nil)
	}
	S[3] = vcFrom(3, 1, 0, []message.CkptInfo{ckptAt(0, "c0")}, nil, nil)
	dec := r.runDecision(S)
	if !dec.ok || dec.ckptSeq != 128 {
		t.Fatalf("chose checkpoint %d, want 128 (%+v)", dec.ckptSeq, dec)
	}
}

func TestDecisionCheckpointNeedsWeakCert(t *testing.T) {
	r, _ := mkReplicaForDecision(t)
	// Only ONE replica claims checkpoint 128: no weak certificate, so the
	// decision must fall back to checkpoint 0.
	S := map[message.NodeID]*message.ViewChange{
		0: vcFrom(0, 1, 0, []message.CkptInfo{ckptAt(0, "c0"), ckptAt(128, "c128")}, nil, nil),
	}
	for i := message.NodeID(1); i < 4; i++ {
		S[i] = vcFrom(i, 1, 0, []message.CkptInfo{ckptAt(0, "c0")}, nil, nil)
	}
	dec := r.runDecision(S)
	if !dec.ok || dec.ckptSeq != 0 {
		t.Fatalf("checkpoint %d chosen without weak cert (%+v)", dec.ckptSeq, dec)
	}
}

func TestDecisionSelectsPreparedRequest(t *testing.T) {
	r, _ := mkReplicaForDecision(t)
	d := crypto.DigestOf([]byte("batch-5"))
	// Request d prepared at seq 5 in view 0 at two correct replicas; a
	// third has no P entry (it never prepared it). A1 holds (everyone's
	// entries are consistent), A2 holds (f+1=2 Q entries vouch).
	pEntry := []message.PInfo{{Seq: 5, Digest: d, View: 0}}
	qEntry := []message.QInfo{{Seq: 5, Entries: []message.DV{{Digest: d, View: 0}}}}
	ck := []message.CkptInfo{ckptAt(0, "c0")}
	S := map[message.NodeID]*message.ViewChange{
		0: vcFrom(0, 1, 0, ck, pEntry, qEntry),
		1: vcFrom(1, 1, 0, ck, pEntry, qEntry),
		2: vcFrom(2, 1, 0, ck, nil, nil),
		3: vcFrom(3, 1, 0, ck, nil, nil),
	}
	dec := r.runDecision(S)
	if !dec.ok {
		t.Fatalf("no decision: %+v", dec)
	}
	if len(dec.x) != 5 {
		t.Fatalf("X covers %d seqs, want 5 (nulls up to the selection)", len(dec.x))
	}
	if dec.x[4].Seq != 5 || dec.x[4].Digest != d {
		t.Fatalf("seq 5 selected %v, want the prepared digest", dec.x[4])
	}
	for i := 0; i < 4; i++ {
		if !dec.x[i].Digest.IsZero() {
			t.Fatalf("seq %d should be null", i+1)
		}
	}
}

func TestDecisionRejectsUnvouchedPrepared(t *testing.T) {
	r, _ := mkReplicaForDecision(t)
	d := crypto.DigestOf([]byte("fabricated"))
	// A single (possibly faulty) replica claims request d prepared at seq 3
	// but NO ONE (including itself) has a Q entry vouching it pre-prepared:
	// condition A2 must reject it, and with 2f+1 no-P-entry messages the
	// null request wins.
	pEntry := []message.PInfo{{Seq: 3, Digest: d, View: 0}}
	ck := []message.CkptInfo{ckptAt(0, "c0")}
	S := map[message.NodeID]*message.ViewChange{
		0: vcFrom(0, 1, 0, ck, pEntry, nil),
		1: vcFrom(1, 1, 0, ck, nil, nil),
		2: vcFrom(2, 1, 0, ck, nil, nil),
		3: vcFrom(3, 1, 0, ck, nil, nil),
	}
	dec := r.runDecision(S)
	if !dec.ok {
		t.Fatalf("no decision: %+v", dec)
	}
	for _, x := range dec.x {
		if x.Seq == 3 && !x.Digest.IsZero() {
			t.Fatal("fabricated prepared certificate selected without A2 support")
		}
	}
}

func TestDecisionHigherViewWins(t *testing.T) {
	r, _ := mkReplicaForDecision(t)
	dOld := crypto.DigestOf([]byte("old"))
	dNew := crypto.DigestOf([]byte("new"))
	ck := []message.CkptInfo{ckptAt(0, "c0")}
	// Seq 2 prepared as dOld in view 0 at one replica, and as dNew in view
	// 2 at another (a later view change re-prepared it). The view-2
	// certificate must win (A1's view comparison).
	S := map[message.NodeID]*message.ViewChange{
		0: vcFrom(0, 3, 0, ck,
			[]message.PInfo{{Seq: 2, Digest: dOld, View: 0}},
			[]message.QInfo{{Seq: 2, Entries: []message.DV{{Digest: dOld, View: 0}}}}),
		1: vcFrom(1, 3, 0, ck,
			[]message.PInfo{{Seq: 2, Digest: dNew, View: 2}},
			[]message.QInfo{{Seq: 2, Entries: []message.DV{{Digest: dNew, View: 2}}}}),
		2: vcFrom(2, 3, 0, ck, nil,
			[]message.QInfo{{Seq: 2, Entries: []message.DV{{Digest: dNew, View: 2}}}}),
		3: vcFrom(3, 3, 0, ck, nil, nil),
	}
	dec := r.runDecision(S)
	if !dec.ok {
		t.Fatalf("no decision: %+v", dec)
	}
	var got crypto.Digest
	for _, x := range dec.x {
		if x.Seq == 2 {
			got = x.Digest
		}
	}
	if got != dNew {
		t.Fatalf("seq 2 chose %v, want the later-view certificate", got)
	}
}

func TestDecisionUndecidableWaits(t *testing.T) {
	r, _ := mkReplicaForDecision(t)
	d := crypto.DigestOf([]byte("contested"))
	ck := []message.CkptInfo{ckptAt(0, "c0")}
	// One replica claims seq 1 prepared but A2 has only 1 vouch (need f+1=2)
	// and B has only 2 no-entry messages (need 2f+1=3): undecidable — the
	// primary must wait for more view-changes rather than guess.
	S := map[message.NodeID]*message.ViewChange{
		0: vcFrom(0, 1, 0, ck,
			[]message.PInfo{{Seq: 1, Digest: d, View: 0}},
			[]message.QInfo{{Seq: 1, Entries: []message.DV{{Digest: d, View: 0}}}}),
		1: vcFrom(1, 1, 0, ck,
			[]message.PInfo{{Seq: 1, Digest: d, View: 0}}, nil),
		2: vcFrom(2, 1, 0, ck, nil, nil),
		3: vcFrom(3, 1, 0, ck, nil, nil),
	}
	dec := r.runDecision(S)
	if dec.ok {
		// If it decided, seq 1 must be d (the only safe choice) — never null.
		for _, x := range dec.x {
			if x.Seq == 1 && x.Digest.IsZero() {
				t.Fatal("chose null for a possibly-committed request")
			}
		}
	}
}

func TestDecisionCommittedRequestNeverNull(t *testing.T) {
	r, _ := mkReplicaForDecision(t)
	d := crypto.DigestOf([]byte("committed"))
	ck := []message.CkptInfo{ckptAt(0, "c0")}
	// A committed request prepared at 2f+1 = 3 replicas. Any valid decision
	// over any quorum including these messages must select d at seq 1.
	pe := []message.PInfo{{Seq: 1, Digest: d, View: 0}}
	qe := []message.QInfo{{Seq: 1, Entries: []message.DV{{Digest: d, View: 0}}}}
	S := map[message.NodeID]*message.ViewChange{
		0: vcFrom(0, 1, 0, ck, pe, qe),
		1: vcFrom(1, 1, 0, ck, pe, qe),
		2: vcFrom(2, 1, 0, ck, pe, qe),
		3: vcFrom(3, 1, 0, ck, nil, nil), // the faulty/slow one
	}
	dec := r.runDecision(S)
	if !dec.ok {
		t.Fatalf("no decision: %+v", dec)
	}
	if len(dec.x) == 0 || dec.x[0].Seq != 1 || dec.x[0].Digest != d {
		t.Fatalf("committed request not selected: %+v", dec.x)
	}
}
