package pbft

import (
	"testing"
	"time"

	"repro/internal/kvservice"
)

// TestSequentialLargeRequestsStress reproduces an intermittent wedge seen in
// the E1 experiment: sequential 4 KB (separately-transmitted) requests from
// one client must never stall.
func TestSequentialLargeRequestsStress(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointInterval = 64
	cfg.LogWindow = 128
	cfg.ViewChangeTimeout = 2 * time.Second
	cfg.StatusInterval = 100 * time.Millisecond
	cfg.StateSize = kvservice.MinStateSize + 128*1024
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	cl.RetryTimeout = 250 * time.Millisecond
	cl.MaxRetries = 4 // fail fast instead of wedging for minutes

	blob := make([]byte, 4096)
	for i := 0; i < 300; i++ {
		blob[0] = byte(i)
		if _, err := cl.Invoke(kvservice.WriteBlob(blob), false); err != nil {
			t.Fatalf("op %d wedged: %v", i, err)
		}
	}
}

// TestConcurrentLargeRequestsStress reproduces the E2 wedge: several
// closed-loop clients with separately-transmitted 4 KB requests.
func TestConcurrentLargeRequestsStress(t *testing.T) {
	for round := 0; round < 6; round++ {
		cfg := testConfig()
		cfg.CheckpointInterval = 64
		cfg.LogWindow = 128
		cfg.ViewChangeTimeout = 2 * time.Second
		cfg.StatusInterval = 100 * time.Millisecond
		cfg.StateSize = kvservice.MinStateSize + 128*1024
		cfg.Seed = int64(round)
		c := NewLocalCluster(4, cfg, kvservice.Factory, nil)
		c.Start()

		const nClients = 5
		const each = 10
		errs := make(chan error, nClients)
		for i := 0; i < nClients; i++ {
			cl := c.NewClient()
			cl.RetryTimeout = 250 * time.Millisecond
			cl.MaxRetries = 4
			go func() {
				blob := make([]byte, 4096)
				for j := 0; j < each; j++ {
					blob[0] = byte(j)
					if _, err := cl.Invoke(kvservice.WriteBlob(blob), false); err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}()
		}
		failed := false
		for i := 0; i < nClients; i++ {
			if err := <-errs; err != nil {
				failed = true
			}
		}
		if failed {
			for i, r := range c.Replicas {
				r.do(func() {
					t.Logf("replica %d: view=%d active=%v pending=%v seqno=%d lastExec=%d lastCommitted=%d low=%d queue=%d waitingPP=%d reqStore=%d",
						i, r.view, r.active, r.vc.pending, r.seqno, r.lastExec, r.lastCommitted,
						r.log.Low(), r.queue.Len(), len(r.waitingPP), r.log.RequestCount())
					for seq := r.lastExec + 1; seq <= r.lastExec+4; seq++ {
						if s, ok := r.log.Peek(seq); ok {
							bodies := s.PrePrepare != nil && r.haveSeparateBodies(s.PrePrepare)
							t.Logf("  slot %d: view=%d hasD=%v hasPP=%v bodies=%v prepCnt=%d prepared=%v commitCnt=%d committed=%v",
								seq, s.View, s.HasDigest, s.PrePrepare != nil, bodies, s.PrepareCount(r.primary(s.View)), s.Prepared, s.CommitCount(), s.CommittedLocal)
						} else {
							t.Logf("  slot %d: missing", seq)
						}
					}
				})
			}
			c.Stop()
			t.Fatalf("round %d wedged", round)
		}
		c.Stop()
	}
}
