package pbft

import (
	"testing"
	"time"

	"repro/internal/kvservice"
	"repro/internal/vlog"
)

// TestConcurrentClientsNoWedge is a regression test for a wedge found
// during development: checkpoint digests included per-replica reply
// envelopes (view/tentative flags), so checkpoints never stabilized, the
// water-mark window filled, and a view-change cascade never completed. It
// dumps replica state if progress stalls.
func TestConcurrentClientsNoWedge(t *testing.T) {
	cfg := testConfig()
	c := newTestCluster(t, 4, cfg, nil)
	const nClients = 5
	const each = 10
	done := make(chan int, nClients)
	for i := 0; i < nClients; i++ {
		cl := c.NewClient()
		go func(k int) {
			for j := 0; j < each; j++ {
				if _, err := cl.Invoke(kvservice.Incr(), false); err != nil {
					t.Logf("client %d op %d: %v", k, j, err)
					done <- j
					return
				}
			}
			done <- each
		}(i)
	}
	finished := 0
	timeout := time.After(10 * time.Second)
	for finished < nClients {
		select {
		case <-done:
			finished++
		case <-timeout:
			for i, r := range c.Replicas {
				r.do(func() {
					t.Logf("replica %d: view=%d active=%v pending=%v seqno=%d lastExec=%d lastCommitted=%d low=%d queue=%d slots=%d waitingPP=%d",
						i, r.view, r.active, r.vc.pending, r.seqno, r.lastExec, r.lastCommitted, r.log.Low(), r.queue.Len(), r.log.SlotCount(), len(r.waitingPP))
					r.log.Slots(func(s *vlog.Slot) {
						t.Logf("  slot %d: view=%d hasDigest=%v hasPP=%v prepared=%v committed=%v execT=%v exec=%v prepCount=%d commitCount=%d",
							s.Seq, s.View, s.HasDigest, s.PrePrepare != nil, s.Prepared, s.CommittedLocal, s.ExecutedTentative, s.Executed, s.PrepareCount(r.primary(s.View)), s.CommitCount())
					})
				})
			}
			t.Fatal("stalled")
		}
	}
}
