package pbft

import (
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/crypto"
	"repro/internal/message"
	"repro/internal/vlog"
)

// fetchTimeout bounds one fetch round-trip before retrying with a different
// designated replier.
const fetchTimeout = 150 * time.Millisecond

// retargetGrace is how long a weak certificate for a checkpoint ahead of the
// current fetch target must stand before an ACTIVE transfer is re-pointed at
// it (the same grace that gates starting a transfer at all: a transfer that
// is completing normally should not thrash between targets).
const retargetGrace = 4 * fetchTimeout

// statusBitmapBits caps the per-status retransmission window.
const statusBitmapBits = 256

// fetchItem is one partition awaiting transfer. While in flight it carries
// its own designated replier and timeout, so one Byzantine or dead replier
// only stalls its own items until their individual timeouts rotate them to a
// new replier.
type fetchItem struct {
	level  int
	index  uint64
	digest crypto.Digest // expected digest (from the parent's meta-data)
	// origin authored the meta-data this expectation came from (NoNode for
	// the root, whose digest comes from the weak certificate). Meta-data is
	// point-MAC'd, so origin is authentic — if the item exhausts its retry
	// budget the expectation itself is suspect (the order-insensitive child
	// sum cannot bind WHICH digest pairs with WHICH child index, so a
	// digest-valid interior reply can still poison the pairings) and origin
	// takes the blame while the recursion restarts from the root.
	origin message.NodeID

	replier message.NodeID // designated replier this item was assigned to
	sentAt  time.Time
	retries int
}

// fetchKey identifies one partition of the tree — the matching key for
// out-of-order MetaData/Data replies against the in-flight window.
type fetchKey struct {
	level int
	index uint64
}

// fetchState drives the hierarchical state transfer of §5.3.2. The paper
// fetches partitions "in parallel from all replicas" (§6.2.2); here a window
// of Config.Opt.FetchWindow items is kept in flight, striped across distinct
// repliers round-robin. Window=1 reproduces the serial engine for the
// ablation.
type fetchState struct {
	active       bool
	target       message.Seq   // checkpoint being fetched
	targetDigest crypto.Digest // H(root, extra) from the weak certificate
	rootVerified bool
	extra        []byte

	// candidate tracks a stable checkpoint ahead of us that we might still
	// reach by ordinary execution; the fetch starts only if we fail to for
	// a grace period (normal slight lag must not trigger transfers). While
	// a transfer is ACTIVE the candidate doubles as the re-target vote: if
	// a weak certificate forms for a checkpoint beyond the current target —
	// which happens precisely when the target was garbage-collected
	// cluster-wide and can no longer be served — the transfer is re-pointed
	// at it instead of retrying the doomed Fetch forever.
	candSeq    message.Seq
	candDigest crypto.Digest
	candSince  time.Time
	candExec   message.Seq // lastExec when the candidate clock last reset

	// chaseUntil marks catch-up chase mode: right after a transfer seals,
	// the cluster may already have stabilized past the sealed checkpoint
	// (heavy traffic keeps moving the frontier, and the slots below the new
	// stable checkpoint are collected cluster-wide, so ordinary execution
	// can never bridge the gap). While chasing, a STUCK candidate promotes
	// after a short damp instead of the full grace, so seal-to-seal cycles
	// shrink geometrically — each transfer only moves the pages dirtied
	// during the previous cycle — until live execution takes over. Without
	// this a lagging replica oscillates one grace period behind a loaded
	// cluster forever.
	chaseUntil time.Time

	queue    []fetchItem             // partitions not yet requested
	inflight map[fetchKey]*fetchItem // requested, awaiting replies
	rr       int                     // round-robin cursor striping repliers

	// strikes counts per-replier timeouts and verifiably-bad replies.
	// assignReplier prefers repliers with the fewest strikes, so a
	// Byzantine or dead replier is deprioritized instead of being re-drawn
	// uniformly. Strikes only bias replier selection — safety always comes
	// from the digest checks — and decay on successful service.
	strikes map[message.NodeID]int

	startedAt time.Time
	prevExec  message.Seq // lastExec when the transfer started
}

func (r *Replica) initFetchState() { r.fetch = fetchState{} }

// fetchWindow returns the configured in-flight window (>= 1).
func (r *Replica) fetchWindow() int {
	if w := r.cfg.Opt.FetchWindow; w > 1 {
		return w
	}
	return 1
}

// startStateTransfer begins fetching checkpoint seq whose combined digest
// (root+extra) is d, learned from a weak certificate or a new-view message.
// Called with seq beyond an ACTIVE transfer's target it re-points the
// transfer: the fetch plan (queue + window) describes the old target's tree
// and is discarded, but installed pages, per-replier strikes, and the
// transfer clock carry over — progress is monotone across re-targets
// because already-matching partitions are skipped by the live-digest diff.
func (r *Replica) startStateTransfer(seq message.Seq, d crypto.Digest) {
	f := &r.fetch
	if f.active && f.target >= seq {
		return
	}
	r.metrics.StateTransfers++
	startedAt, prevExec := time.Now(), r.lastExec
	strikes, rr, chase := f.strikes, f.rr, f.chaseUntil
	if f.active {
		// Re-target: keep the transfer clock and replier quality history.
		startedAt, prevExec = f.startedAt, f.prevExec
	}
	if strikes == nil {
		strikes = make(map[message.NodeID]int)
	}
	r.fetch = fetchState{
		active:       true,
		target:       seq,
		targetDigest: d,
		queue:        []fetchItem{{level: 0, index: 0, origin: message.NoNode}},
		inflight:     make(map[fetchKey]*fetchItem),
		rr:           rr,
		strikes:      strikes,
		chaseUntil:   chase,
		startedAt:    startedAt,
		prevExec:     prevExec,
	}
	r.fillFetchWindow()
}

// assignReplier picks the designated replier for one item: round-robin over
// the repliers with the FEWEST strikes, never self and never `not` (the
// replier being rotated away from). Strikes gate the eligible set rather
// than picking a strict global minimum — a strict minimum would funnel an
// entire window refill onto one lucky replica, recreating the serial
// single-replier bottleneck the window exists to avoid.
func (r *Replica) assignReplier(not message.NodeID) message.NodeID {
	f := &r.fetch
	min := -1
	for c := 0; c < r.n; c++ {
		id := message.NodeID(c)
		if id == r.id || id == not {
			continue
		}
		if s := f.strikes[id]; min < 0 || s < min {
			min = s
		}
	}
	for k := 0; k < r.n; k++ {
		c := message.NodeID((f.rr + k) % r.n)
		if c == r.id || c == not {
			continue
		}
		if f.strikes[c] == min {
			f.rr = int(c) + 1
			return c
		}
	}
	return message.NoNode // unreachable: n >= 4 always leaves a candidate
}

// fillFetchWindow refills the in-flight window from the queue, skipping
// partitions that already match locally. The skip-scan reads live tree
// digests, so one executor rendezvous prices the whole refill, not one item.
func (r *Replica) fillFetchWindow() {
	f := &r.fetch
	if !f.active {
		return
	}
	want := r.fetchWindow() - len(f.inflight)
	var admit []fetchItem
	if want > 0 && len(f.queue) > 0 {
		r.execSync(func() {
			for len(f.queue) > 0 && len(admit) < want {
				item := f.queue[0]
				f.queue = f.queue[1:]
				// Skip partitions that already match locally.
				if item.level > 0 && r.ckpt.LiveDigest(item.level, int(item.index)) == item.digest {
					continue
				}
				admit = append(admit, item)
			}
		})
	}
	now := time.Now()
	for i := range admit {
		item := admit[i]
		item.replier = r.assignReplier(message.NoNode)
		item.sentAt = now
		f.inflight[fetchKey{item.level, item.index}] = &item
		r.sendFetchItem(&item)
	}
	if len(f.queue) == 0 && len(f.inflight) == 0 {
		r.finishFetchIfDone()
	}
}

// sendFetchItem multicasts the Fetch for one in-flight item (§5.3.2: the
// request goes to all replicas; Replier names the one that ships full data).
func (r *Replica) sendFetchItem(item *fetchItem) {
	r.multicastReplicas(&message.Fetch{
		Level:     uint8(item.level),
		Index:     item.index,
		LastKnown: r.latestCkptSeq(),
		Target:    r.fetch.target,
		Replier:   item.replier,
		Replica:   r.id,
	})
}

// fetchTick retries timed-out in-flight items with a new designated replier
// and promotes stalled catch-up candidates to transfers (or re-targets an
// active transfer whose target was collected cluster-wide).
func (r *Replica) fetchTick(now time.Time) {
	f := &r.fetch
	if f.candSeq != 0 {
		// Ordinary execution progressing toward the candidate resets the
		// promotion clock: a replica that is actually replaying the gap must
		// not be reset by a transfer it does not need.
		if r.lastExec > f.candExec {
			f.candExec = r.lastExec
			f.candSince = now
		}
		// While chasing a loaded cluster (just sealed a transfer, frontier
		// already moved on) a STUCK candidate promotes almost immediately:
		// waiting the full grace guarantees the next target is a grace
		// period stale by the time it seals, which is the oscillation that
		// keeps a lagging replica from ever catching a busy cluster. The
		// short damp filters the instant between a vote arriving and the
		// next batch executing.
		grace := retargetGrace
		if !f.active && now.Before(f.chaseUntil) {
			grace = fetchTimeout / 8
		}
		switch {
		case r.lastExec >= f.candSeq || (f.active && f.target >= f.candSeq):
			f.candSeq = 0 // caught up, or already fetching at least that far
			// Reaching a candidate by ordinary execution ends the chase:
			// the replica is participating in real time again.
			f.chaseUntil = time.Time{}
		case now.Sub(f.candSince) > grace:
			seq, d := f.candSeq, f.candDigest
			f.candSeq = 0
			r.startStateTransfer(seq, d)
			return
		}
	}
	if !f.active {
		return
	}
	// A whole refill shares one sentAt, so items often time out together;
	// retry them in tree order, not map order, or the round-robin cursor,
	// strike counts, and send schedule diverge run to run on a seeded net.
	keys := make([]fetchKey, 0, len(f.inflight))
	for k, item := range f.inflight {
		if now.Sub(item.sentAt) >= fetchTimeout {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].level != keys[j].level {
			return keys[i].level < keys[j].level
		}
		return keys[i].index < keys[j].index
	})
	for _, k := range keys {
		item := f.inflight[k]
		// Only this item's replier is rotated; the rest of the window keeps
		// its assignments and in-flight requests.
		item.retries++
		r.metrics.FetchRetries++
		f.strikes[item.replier]++
		if item.retries >= 2*r.n && item.origin != message.NoNode {
			// Every replier has had turns and none could satisfy this
			// expectation: the expectation itself is the likely lie (see
			// fetchItem.origin). Blame its authenticated author and restart
			// the recursion — the live-digest diff re-walks only the
			// poisoned subtree, and the origin's strikes steer future
			// parent fetches to honest repliers.
			f.strikes[item.origin]++
			r.restartFetchFromRoot()
			return
		}
		item.replier = r.assignReplier(item.replier)
		item.sentAt = now
		r.sendFetchItem(item)
	}
}

// restartFetchFromRoot rebuilds the fetch plan for the current target from
// the root, keeping installed pages, strikes, and the transfer clock.
func (r *Replica) restartFetchFromRoot() {
	f := &r.fetch
	f.queue = []fetchItem{{level: 0, index: 0, origin: message.NoNode}}
	f.inflight = make(map[fetchKey]*fetchItem)
	f.rootVerified = false
	f.extra = nil
	r.fillFetchWindow()
}

// onFetch serves state to a fetching replica (§5.3.2). The whole serving
// path reads snapshot overlays and live pages, so on the staged path it
// runs as one executor rendezvous (serving is rare — only while a peer is
// fetching — so stalling the dispatch loop briefly is fine).
func (r *Replica) onFetch(m *message.Fetch) {
	if m.Replica == r.id {
		return
	}
	var voteFor message.Seq
	r.execSync(func() {
		snap, ok := r.ckpt.Snapshot(m.Target)
		if m.Replier == r.id && ok {
			r.serveFetch(m, snap.Seq)
			return
		}
		// Non-designated replicas (or ones that discarded the checkpoint)
		// offer their latest stable checkpoint if it is fresher than what
		// the requester has (guarantees progress when m.Target was
		// collected): the meta-data is useful wherever partitions did not
		// change between the doomed target and our stable checkpoint.
		low := r.log.Low()
		if low > m.LastKnown && low > m.Target {
			if s2, ok2 := r.ckpt.Snapshot(low); ok2 {
				r.serveFetch(m, s2.Seq)
			}
			voteFor = low
		}
	})
	if voteFor != 0 {
		// Resend our Checkpoint vote for the stable checkpoint we CAN serve
		// (fresh authenticator, §5.2). The fetcher assembles a weak
		// certificate from f+1 such votes and re-targets its transfer —
		// without this, a fetcher whose target was collected cluster-wide
		// re-sends the same doomed Fetch forever while its peers' fallback
		// meta-data is dropped for digest mismatch.
		if d, ok := r.ownCkptDigest(voteFor); ok {
			r.resendOwn(m.Replica, &message.Checkpoint{Seq: voteFor, Digest: d, Replica: r.id})
		}
	}
}

// serveFetch sends the meta-data (or page data) for one partition at
// checkpoint seq.
func (r *Replica) serveFetch(m *message.Fetch, seq message.Seq) {
	level := int(m.Level)
	leaf := r.ckpt.Levels() - 1
	if level >= leaf {
		// Page request: the designated replier ships the full page; its
		// correctness is checked against the digest the fetcher already
		// verified, so no MAC is needed.
		content, lm, ok := r.ckpt.PageAt(seq, int(m.Index))
		if !ok {
			return
		}
		d := &message.Data{
			Index:   m.Index,
			LastMod: lm,
			Page:    append([]byte(nil), content...),
			Replica: r.id,
		}
		r.sendRaw(m.Replica, d)
		return
	}
	parts, ok := r.ckpt.ChildrenAt(seq, level, int(m.Index))
	if !ok {
		return
	}
	info, _ := r.ckpt.NodeAt(seq, level, int(m.Index))
	md := &message.MetaData{
		Seq:     seq,
		Level:   m.Level,
		Index:   m.Index,
		LastMod: info.LastMod,
		Parts:   parts,
		Replica: r.id,
	}
	if level == 0 {
		if snap, ok := r.ckpt.Snapshot(seq); ok {
			md.Extra = snap.Extra
		}
	}
	r.sendTo(m.Replica, md)
}

// completeFetchItem retires a successfully-served in-flight item: the
// replier's strike count decays (quality signal for assignReplier) and the
// freed window slot is refilled.
func (r *Replica) completeFetchItem(key fetchKey, servedBy message.NodeID) {
	f := &r.fetch
	delete(f.inflight, key)
	if f.strikes[servedBy] > 0 {
		f.strikes[servedBy]--
	}
	r.fillFetchWindow()
}

// onMetaData advances the fetch recursion after verifying the reply against
// the digest learned from the parent (or the weak certificate for the root).
// Replies are matched to in-flight items by (level, index) — out of order
// across the window — and verified purely by digest: a fallback reply served
// at a DIFFERENT checkpoint is accepted wherever the partition did not
// change in between, which is exactly when it is still correct.
func (r *Replica) onMetaData(md *message.MetaData) {
	f := &r.fetch
	if !f.active {
		return
	}
	item, ok := f.inflight[fetchKey{int(md.Level), md.Index}]
	if !ok {
		return // no such item in flight (stale, duplicate, or unsolicited)
	}
	// Verify: recompute the partition digest from the children.
	var sum crypto.Incr
	for _, p := range md.Parts {
		sum = sum.Add(crypto.IncrOf(p.Digest))
	}
	computed := checkpoint.InteriorDigest(item.level, int(item.index), sum)
	if item.level == 0 {
		if ckptDigest(computed, md.Extra) != f.targetDigest {
			// Bogus or stale; no strike — a failed verification cannot
			// distinguish a lying sender from an honest one whose reply is
			// checked against a poisoned expectation (see fetchItem.origin),
			// so only the sender-claim-free timeout and origin-blame paths
			// accrue strikes. This item's timeout rotates its replier.
			return
		}
		f.rootVerified = true
		f.extra = append([]byte(nil), md.Extra...)
	} else if computed != item.digest {
		return
	}
	// Enqueue children that differ from our live state — one rendezvous
	// covers the whole child set on the staged path.
	live := make([]crypto.Digest, 0, len(md.Parts))
	r.execSync(func() {
		live = r.ckpt.AppendLiveDigests(live, item.level+1, md.Parts)
	})
	for i, p := range md.Parts {
		if live[i] == p.Digest {
			continue
		}
		// Note p.LastMod is NOT carried into the item: the interior digest
		// covers only the children's digests (see checkpoint.InteriorDigest),
		// so a meta-data LastMod is unauthenticated — gating Data acceptance
		// on it would let a Byzantine replier wedge honest leaves forever.
		// LeafDigest binds the true lm, so the digest check there suffices.
		f.queue = append(f.queue, fetchItem{
			level:  item.level + 1,
			index:  p.Index,
			digest: p.Digest,
			origin: md.Replica,
		})
	}
	r.completeFetchItem(fetchKey{item.level, item.index}, md.Replica)
}

// onData installs a fetched page after verifying it against the expected
// leaf digest.
func (r *Replica) onData(d *message.Data) {
	f := &r.fetch
	if !f.active {
		return
	}
	leaf := r.ckpt.Levels() - 1
	item, ok := f.inflight[fetchKey{leaf, d.Index}]
	if !ok {
		return
	}
	// The digest alone authenticates the page AND its LastMod (LeafDigest
	// covers both), chaining up to the weak certificate's root. Data also
	// carries no MAC (content-addressed, §5.3.2), so its Replica field is
	// attacker-chosen: striking on it would let any Byzantine peer frame
	// the honest designated replier with injected garbage. Garbage is
	// simply dropped; if the real replier never serves the item, its
	// timeout strikes the assignment without trusting any sender claim.
	if len(d.Page) != r.region.PageSize() ||
		checkpoint.LeafDigest(int(d.Index), d.LastMod, d.Page) != item.digest {
		return
	}
	r.execSync(func() { r.ckpt.InstallPage(int(d.Index), d.LastMod, d.Page) })
	r.metrics.PagesFetched++
	r.metrics.TransferBytes += uint64(len(d.Page))
	// Decay the ASSIGNMENT, not d.Replica: the claim is unauthenticated, so
	// crediting it would let a Byzantine peer race honest pages stamped with
	// its own id to launder away its timeout strikes.
	r.completeFetchItem(fetchKey{leaf, d.Index}, item.replier)
}

// finishFetchIfDone seals a completed transfer and resumes the protocol.
func (r *Replica) finishFetchIfDone() {
	f := &r.fetch
	if !f.active || len(f.queue) != 0 || len(f.inflight) != 0 || !f.rootVerified {
		return
	}
	rootOK := false
	r.execSync(func() {
		if ckptDigest(r.ckpt.RootDigest(), f.extra) != f.targetDigest {
			return
		}
		rootOK = true
		r.ckpt.SealFetched(f.target, f.extra)
		r.setRepliesFromCheckpoint(f.extra)
	})
	if !rootOK {
		// Shouldn't happen: every page verified. Restart from the root.
		r.restartFetchFromRoot()
		return
	}
	if f.target > f.prevExec {
		// Transfer observability: wall clock from the first startStateTransfer
		// (re-targets keep the clock) to the seal, for transfers that
		// actually advanced execution.
		r.metrics.LastTransferTime = time.Since(f.startedAt)
	}
	// A loaded cluster has moved on while we fetched; chase the frontier
	// without the candidate grace for a bounded window (see chaseUntil).
	f.chaseUntil = time.Now().Add(2 * retargetGrace)
	target := f.target
	f.active = false

	if r.staged() {
		// SealFetched replaced every snapshot with the fetched one; reports
		// in flight for destroyed snapshots must not land, and the digest
		// mirror now holds exactly the verified target.
		r.xs.epoch++
		r.xs.myCkpts = map[message.Seq]crypto.Digest{target: f.targetDigest}
	}
	if target > r.log.Low() {
		r.log.AdvanceLow(target)
		for s := range r.ckptVotes {
			if s <= target {
				delete(r.ckptVotes, s)
			}
		}
		r.pruneViewChangeSets(target)
	}
	prev := r.lastExec
	if target != prev {
		// The live state now reflects execution through target exactly; any
		// slots between target and the old lastExec must re-execute, so
		// their request bodies must survive garbage collection.
		r.lastExec = target
		r.lastCommitted = target
		r.log.UnmarkExecutedAbove(target)
		for s := range r.execRecords {
			if s > target {
				delete(r.execRecords, s)
			}
		}
		r.log.Slots(func(s *vlog.Slot) {
			if s.Seq > target {
				s.Executed = false
				s.ExecutedTentative = false
			}
		})
	}
	r.metrics.StableCheckpoints++
	r.pruneRetiredQueue()
	r.recoveryCheckpointStable(target)
	r.executeForward()
}

// pruneRetiredQueue drops queued requests the freshly-installed reply cache
// proves already answered (timestamp at or below the client's restored
// last-replied mark). A replica rejoining via transfer carries requests
// queued before it fell behind; the group retired them long ago, and a
// queue of retired requests is not "waiting to execute" (§2.3.5) — left in
// place it holds the view-change timer armed through the whole catch-up and
// pushes the rejoiner into a lonely view change.
func (r *Replica) pruneRetiredQueue() {
	r.queue.Each(func(client message.NodeID, d crypto.Digest) bool {
		if req, ok := r.log.Request(d); ok {
			if ts, replied := r.lastReplied(req.Client); replied && req.Timestamp <= ts {
				r.queue.Remove(client, d)
			}
		}
		return true
	})
	r.updateVCTimer()
}

// ---------------------------------------------------------------------------
// Status messages and retransmission (§5.2)
// ---------------------------------------------------------------------------

func setBit(b []byte, i int) {
	if i>>3 < len(b) {
		b[i>>3] |= 1 << (i & 7)
	}
}

func getBit(b []byte, i int) bool {
	return i>>3 < len(b) && b[i>>3]&(1<<(i&7)) != 0
}

// sendStatus multicasts the appropriate status summary.
func (r *Replica) sendStatus() {
	if r.vc.pending {
		st := &message.StatusPending{
			View:       r.view,
			LastStable: r.log.Low(),
			LastExec:   r.lastExec,
			Replica:    r.id,
			HasNewView: false,
			VCs:        make([]byte, (r.n+7)/8),
		}
		for id := range r.vc.forView {
			setBit(st.VCs, int(id))
		}
		r.multicastReplicas(st)
		return
	}
	// Status messages are periodic (§5.2): they double as negative
	// acknowledgments, and they are how an isolated replica's peers learn
	// it fell behind, so they are sent even when nothing seems missing.
	bits := int(min64(int64(r.log.LogSize()), statusBitmapBits))
	st := &message.StatusActive{
		View:       r.view,
		LastStable: r.log.Low(),
		LastExec:   r.lastExec,
		Replica:    r.id,
		Prepared:   make([]byte, (bits+7)/8),
		Committed:  make([]byte, (bits+7)/8),
	}
	for i := 0; i < bits; i++ {
		seq := r.lastExec + 1 + message.Seq(i)
		if s, ok := r.log.Peek(seq); ok {
			if s.Prepared {
				setBit(st.Prepared, i)
			}
			if s.CommittedLocal {
				setBit(st.Committed, i)
			}
		}
	}
	r.multicastReplicas(st)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (r *Replica) onStatusActive(st *message.StatusActive) {
	if st.Replica == r.id {
		return
	}
	if st.View < r.view {
		r.helpLaggingView(st.Replica)
		return
	}
	if st.View > r.view || r.vc.pending {
		return
	}
	// Retransmit checkpoint votes if the peer's stability lags ours.
	if st.LastStable < r.log.Low() {
		if d, ok := r.ownCkptDigest(r.log.Low()); ok {
			cp := &message.Checkpoint{Seq: r.log.Low(), Digest: d, Replica: r.id}
			r.resendOwn(st.Replica, cp)
		}
	}
	// Retransmit protocol messages for sequence numbers the peer lacks.
	// Retransmissions are authenticated with the CURRENT keys (§5.2: after
	// a key refresh, messages stored with old authenticators are useless),
	// so each replica only retransmits messages it originally sent.
	bits := int(min64(int64(r.log.LogSize()), statusBitmapBits))
	for i := 0; i < bits; i++ {
		seq := st.LastExec + 1 + message.Seq(i)
		s, ok := r.log.Peek(seq)
		if !ok || !s.HasDigest {
			continue
		}
		if !getBit(st.Prepared, i) {
			if s.PrePrepare != nil && s.PrePrepare.Replica == r.id && r.haveSeparateBodies(s.PrePrepare) {
				r.resendOwn(st.Replica, s.PrePrepare) // fresh authenticator
				// Ship separately-transmitted request bodies too (client
				// authenticators are epoch-stable).
				for _, d := range s.PrePrepare.Digests {
					if req, ok := r.log.Request(d); ok {
						r.sendRaw(st.Replica, req)
					}
				}
			}
			if s.SentPrepare {
				p := &message.Prepare{View: s.View, Seq: seq, Digest: s.Digest, Replica: r.id}
				r.resendOwn(st.Replica, p)
			}
		}
		if getBit(st.Prepared, i) && !getBit(st.Committed, i) && s.SentCommit {
			c := &message.Commit{View: s.View, Seq: seq, Digest: s.Digest, Replica: r.id}
			r.resendOwn(st.Replica, c)
		}
	}
}

func (r *Replica) onStatusPending(st *message.StatusPending) {
	if st.Replica == r.id {
		return
	}
	if st.View < r.view {
		r.helpLaggingView(st.Replica)
		return
	}
	if st.View != r.view {
		return
	}
	if r.vc.pending {
		// Resend our own view-change with a fresh authenticator if the peer
		// lacks it, and relay others' (the receiver validates relays by
		// digest against the new-view certificate when authenticators are
		// stale, §3.2.4).
		r.sendMissingViewChanges(st.Replica, st.VCs)
		return
	}
	// We are active in this view: give the peer the new-view decision (the
	// author re-authenticates it; others relay) plus the certificate's
	// view-changes.
	if r.vc.newView != nil && !st.HasNewView {
		if r.vc.newView.Replica == r.id {
			r.resendOwn(st.Replica, r.vc.newView)
		} else {
			r.sendRaw(st.Replica, r.vc.newView)
		}
		r.sendMissingViewChanges(st.Replica, st.VCs)
	}
}

// sendMissingViewChanges ships every collected view-change the peer's
// status bitmap lacks, in ascending sender order: the sends reach the wire,
// so iteration must not follow map order (seeded runs replay bit-identically
// only if retransmission order is a pure function of state).
func (r *Replica) sendMissingViewChanges(dst message.NodeID, have []byte) {
	ids := make([]message.NodeID, 0, len(r.vc.forView))
	for id := range r.vc.forView {
		if !getBit(have, int(id)) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if vc := r.vc.forView[id]; id == r.id {
			r.resendOwn(dst, vc)
		} else {
			r.sendRaw(dst, vc)
		}
	}
}

// helpLaggingView pushes a replica stuck in an older view forward: our own
// view-change for the current view (freshly authenticated) plus the
// new-view message if we authored it. The other certificate members help
// with their own messages when they see the laggard's status.
func (r *Replica) helpLaggingView(peer message.NodeID) {
	if vc, ok := r.vc.forView[r.id]; ok {
		r.resendOwn(peer, vc)
	}
	if !r.vc.pending && r.vc.newView != nil {
		if r.vc.newView.Replica == r.id {
			r.resendOwn(peer, r.vc.newView)
		} else {
			r.sendRaw(peer, r.vc.newView)
		}
		for _, ref := range r.vc.newView.V {
			if vc, ok := r.vc.forView[ref.Replica]; ok {
				if ref.Replica == r.id {
					r.resendOwn(peer, vc)
				} else {
					r.sendRaw(peer, vc)
				}
			}
		}
	}
}
