package pbft

import (
	"time"

	"repro/internal/checkpoint"
	"repro/internal/crypto"
	"repro/internal/message"
	"repro/internal/vlog"
)

// fetchTimeout bounds one fetch round-trip before retrying with a different
// designated replier.
const fetchTimeout = 150 * time.Millisecond

// statusBitmapBits caps the per-status retransmission window.
const statusBitmapBits = 256

// fetchItem is one partition awaiting transfer.
type fetchItem struct {
	level  int
	index  uint64
	digest crypto.Digest // expected digest (from the parent's meta-data)
	lm     message.Seq   // expected last-modification checkpoint
}

// fetchState drives the hierarchical state transfer of §5.3.2.
type fetchState struct {
	active       bool
	target       message.Seq   // checkpoint being fetched
	targetDigest crypto.Digest // H(root, extra) from the weak certificate
	rootVerified bool
	extra        []byte

	// candidate tracks a stable checkpoint ahead of us that we might still
	// reach by ordinary execution; the fetch starts only if we fail to for
	// a grace period (normal slight lag must not trigger transfers).
	candSeq    message.Seq
	candDigest crypto.Digest
	candSince  time.Time

	queue       []fetchItem
	outstanding *fetchItem
	replier     message.NodeID
	sentAt      time.Time
	retries     int
	startedAt   time.Time
	prevExec    message.Seq // lastExec when the transfer started
}

func (r *Replica) initFetchState() { r.fetch = fetchState{} }

// startStateTransfer begins fetching checkpoint seq whose combined digest
// (root+extra) is d, learned from a weak certificate or a new-view message.
func (r *Replica) startStateTransfer(seq message.Seq, d crypto.Digest) {
	if r.fetch.active && r.fetch.target >= seq {
		return
	}
	r.metrics.StateTransfers++
	r.fetch = fetchState{
		active:       true,
		target:       seq,
		targetDigest: d,
		queue:        []fetchItem{{level: 0, index: 0}},
		replier:      r.pickReplier(message.NoNode),
		startedAt:    time.Now(),
		prevExec:     r.lastExec,
	}
	r.issueNextFetch()
}

func (r *Replica) pickReplier(not message.NodeID) message.NodeID {
	for {
		c := message.NodeID(r.rng.Intn(r.n))
		if c != r.id && c != not {
			return c
		}
	}
}

func (r *Replica) issueNextFetch() {
	f := &r.fetch
	if f.outstanding != nil {
		return
	}
	// Pop until a partition actually differs locally; one rendezvous covers
	// the whole skip-scan on the staged path.
	var next *fetchItem
	r.execSync(func() {
		for len(f.queue) > 0 {
			item := f.queue[0]
			f.queue = f.queue[1:]
			// Skip partitions that already match locally.
			if item.level > 0 && r.liveNodeDigest(item.level, int(item.index)) == item.digest {
				continue
			}
			next = &item
			break
		}
	})
	if next == nil {
		r.finishFetchIfDone()
		return
	}
	f.outstanding = next
	r.sendFetch()
}

// liveNodeDigest reads the live tree digest of a partition — a checkpoint-
// manager read, so on the staged path call it only inside execSync.
func (r *Replica) liveNodeDigest(level, index int) crypto.Digest {
	// Live tree == state "now"; NodeAt with a far-future sequence number
	// falls through every snapshot overlay to the live tree.
	info, ok := r.ckpt.NodeAt(message.Seq(1<<62), level, index)
	if !ok {
		return crypto.Digest{}
	}
	return info.Digest
}

func (r *Replica) sendFetch() {
	f := &r.fetch
	item := f.outstanding
	msg := &message.Fetch{
		Level:     uint8(item.level),
		Index:     item.index,
		LastKnown: r.latestCkptSeq(),
		Target:    f.target,
		Replier:   f.replier,
		Replica:   r.id,
	}
	f.sentAt = time.Now()
	r.multicastReplicas(msg)
}

// fetchTick retries timed-out fetches with a new designated replier and
// promotes stalled catch-up candidates to real transfers.
func (r *Replica) fetchTick(now time.Time) {
	f := &r.fetch
	if !f.active && f.candSeq != 0 {
		if r.lastExec >= f.candSeq {
			f.candSeq = 0 // caught up by ordinary execution
		} else if now.Sub(f.candSince) > 4*fetchTimeout {
			seq, d := f.candSeq, f.candDigest
			f.candSeq = 0
			r.startStateTransfer(seq, d)
			return
		}
	}
	if !f.active || f.outstanding == nil {
		return
	}
	if now.Sub(f.sentAt) < fetchTimeout {
		return
	}
	f.retries++
	f.replier = r.pickReplier(f.replier)
	r.sendFetch()
}

// onFetch serves state to a fetching replica (§5.3.2). The whole serving
// path reads snapshot overlays and live pages, so on the staged path it
// runs as one executor rendezvous (serving is rare — only while a peer is
// fetching — so stalling the dispatch loop briefly is fine).
func (r *Replica) onFetch(m *message.Fetch) {
	if m.Replica == r.id {
		return
	}
	r.execSync(func() {
		snap, ok := r.ckpt.Snapshot(m.Target)
		if m.Replier == r.id && ok {
			r.serveFetch(m, snap.Seq)
			return
		}
		// Non-designated replicas (or ones that discarded the checkpoint)
		// offer their latest stable checkpoint if it is fresher than what
		// the requester has (guarantees progress when m.Target was
		// collected).
		low := r.log.Low()
		if low > m.LastKnown && low > m.Target {
			if s2, ok2 := r.ckpt.Snapshot(low); ok2 {
				r.serveFetch(m, s2.Seq)
			}
		}
	})
}

// serveFetch sends the meta-data (or page data) for one partition at
// checkpoint seq.
func (r *Replica) serveFetch(m *message.Fetch, seq message.Seq) {
	level := int(m.Level)
	leaf := r.ckpt.Levels() - 1
	if level >= leaf {
		// Page request: the designated replier ships the full page; its
		// correctness is checked against the digest the fetcher already
		// verified, so no MAC is needed.
		content, lm, ok := r.ckpt.PageAt(seq, int(m.Index))
		if !ok {
			return
		}
		d := &message.Data{
			Index:   m.Index,
			LastMod: lm,
			Page:    append([]byte(nil), content...),
			Replica: r.id,
		}
		r.sendRaw(m.Replica, d)
		return
	}
	parts, ok := r.ckpt.ChildrenAt(seq, level, int(m.Index))
	if !ok {
		return
	}
	info, _ := r.ckpt.NodeAt(seq, level, int(m.Index))
	md := &message.MetaData{
		Seq:     seq,
		Level:   m.Level,
		Index:   m.Index,
		LastMod: info.LastMod,
		Parts:   parts,
		Replica: r.id,
	}
	if level == 0 {
		if snap, ok := r.ckpt.Snapshot(seq); ok {
			md.Extra = snap.Extra
		}
	}
	r.sendTo(m.Replica, md)
}

// onMetaData advances the fetch recursion after verifying the reply against
// the digest learned from the parent (or the weak certificate for the root).
func (r *Replica) onMetaData(md *message.MetaData) {
	f := &r.fetch
	if !f.active || f.outstanding == nil {
		return
	}
	item := f.outstanding
	if int(md.Level) != item.level || md.Index != item.index || md.Seq != f.target {
		return
	}
	// Verify: recompute the partition digest from the children.
	var sum crypto.Incr
	for _, p := range md.Parts {
		sum = sum.Add(crypto.IncrOf(p.Digest))
	}
	computed := checkpoint.InteriorDigest(item.level, int(item.index), sum)
	if item.level == 0 {
		if ckptDigest(computed, md.Extra) != f.targetDigest {
			return // bogus or stale reply; retry will pick another replier
		}
		f.rootVerified = true
		f.extra = append([]byte(nil), md.Extra...)
	} else if computed != item.digest {
		return
	}
	// Enqueue children that differ from our live state — one rendezvous
	// covers the whole child set on the staged path.
	live := make([]crypto.Digest, len(md.Parts))
	r.execSync(func() {
		for i, p := range md.Parts {
			live[i] = r.liveNodeDigest(item.level+1, int(p.Index))
		}
	})
	for i, p := range md.Parts {
		if live[i] == p.Digest {
			continue
		}
		f.queue = append(f.queue, fetchItem{
			level:  item.level + 1,
			index:  p.Index,
			digest: p.Digest,
			lm:     p.LastMod,
		})
	}
	f.outstanding = nil
	f.retries = 0
	r.issueNextFetch()
}

// onData installs a fetched page after verifying it against the expected
// leaf digest.
func (r *Replica) onData(d *message.Data) {
	f := &r.fetch
	if !f.active || f.outstanding == nil {
		return
	}
	item := f.outstanding
	leaf := r.ckpt.Levels() - 1
	if item.level != leaf || d.Index != item.index {
		return
	}
	if len(d.Page) != r.region.PageSize() {
		return
	}
	if checkpoint.LeafDigest(int(d.Index), d.LastMod, d.Page) != item.digest {
		return
	}
	r.execSync(func() { r.ckpt.InstallPage(int(d.Index), d.LastMod, d.Page) })
	r.metrics.PagesFetched++
	f.outstanding = nil
	f.retries = 0
	r.issueNextFetch()
}

// finishFetchIfDone seals a completed transfer and resumes the protocol.
func (r *Replica) finishFetchIfDone() {
	f := &r.fetch
	if !f.active || len(f.queue) != 0 || f.outstanding != nil || !f.rootVerified {
		return
	}
	rootOK := false
	r.execSync(func() {
		if ckptDigest(r.ckpt.RootDigest(), f.extra) != f.targetDigest {
			return
		}
		rootOK = true
		r.ckpt.SealFetched(f.target, f.extra)
		r.setRepliesFromCheckpoint(f.extra)
	})
	if !rootOK {
		// Shouldn't happen: every page verified. Restart from the root.
		f.queue = []fetchItem{{level: 0, index: 0}}
		f.rootVerified = false
		r.issueNextFetch()
		return
	}
	target := f.target
	f.active = false

	if r.staged() {
		// SealFetched replaced every snapshot with the fetched one; reports
		// in flight for destroyed snapshots must not land, and the digest
		// mirror now holds exactly the verified target.
		r.xs.epoch++
		r.xs.myCkpts = map[message.Seq]crypto.Digest{target: f.targetDigest}
	}
	if target > r.log.Low() {
		r.log.AdvanceLow(target)
		for s := range r.ckptVotes {
			if s <= target {
				delete(r.ckptVotes, s)
			}
		}
		r.pruneViewChangeSets(target)
	}
	prev := r.lastExec
	if target != prev {
		// The live state now reflects execution through target exactly; any
		// slots between target and the old lastExec must re-execute, so
		// their request bodies must survive garbage collection.
		r.lastExec = target
		r.lastCommitted = target
		r.log.UnmarkExecutedAbove(target)
		for s := range r.execRecords {
			if s > target {
				delete(r.execRecords, s)
			}
		}
		r.log.Slots(func(s *vlog.Slot) {
			if s.Seq > target {
				s.Executed = false
				s.ExecutedTentative = false
			}
		})
	}
	r.metrics.StableCheckpoints++
	r.recoveryCheckpointStable(target)
	r.executeForward()
}

// ---------------------------------------------------------------------------
// Status messages and retransmission (§5.2)
// ---------------------------------------------------------------------------

func setBit(b []byte, i int) {
	if i>>3 < len(b) {
		b[i>>3] |= 1 << (i & 7)
	}
}

func getBit(b []byte, i int) bool {
	return i>>3 < len(b) && b[i>>3]&(1<<(i&7)) != 0
}

// sendStatus multicasts the appropriate status summary.
func (r *Replica) sendStatus() {
	if r.vc.pending {
		st := &message.StatusPending{
			View:       r.view,
			LastStable: r.log.Low(),
			LastExec:   r.lastExec,
			Replica:    r.id,
			HasNewView: false,
			VCs:        make([]byte, (r.n+7)/8),
		}
		for id := range r.vc.forView {
			setBit(st.VCs, int(id))
		}
		r.multicastReplicas(st)
		return
	}
	// Status messages are periodic (§5.2): they double as negative
	// acknowledgments, and they are how an isolated replica's peers learn
	// it fell behind, so they are sent even when nothing seems missing.
	bits := int(min64(int64(r.log.LogSize()), statusBitmapBits))
	st := &message.StatusActive{
		View:       r.view,
		LastStable: r.log.Low(),
		LastExec:   r.lastExec,
		Replica:    r.id,
		Prepared:   make([]byte, (bits+7)/8),
		Committed:  make([]byte, (bits+7)/8),
	}
	for i := 0; i < bits; i++ {
		seq := r.lastExec + 1 + message.Seq(i)
		if s, ok := r.log.Peek(seq); ok {
			if s.Prepared {
				setBit(st.Prepared, i)
			}
			if s.CommittedLocal {
				setBit(st.Committed, i)
			}
		}
	}
	r.multicastReplicas(st)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (r *Replica) onStatusActive(st *message.StatusActive) {
	if st.Replica == r.id {
		return
	}
	if st.View < r.view {
		r.helpLaggingView(st.Replica)
		return
	}
	if st.View > r.view || r.vc.pending {
		return
	}
	// Retransmit checkpoint votes if the peer's stability lags ours.
	if st.LastStable < r.log.Low() {
		if d, ok := r.ownCkptDigest(r.log.Low()); ok {
			cp := &message.Checkpoint{Seq: r.log.Low(), Digest: d, Replica: r.id}
			r.resendOwn(st.Replica, cp)
		}
	}
	// Retransmit protocol messages for sequence numbers the peer lacks.
	// Retransmissions are authenticated with the CURRENT keys (§5.2: after
	// a key refresh, messages stored with old authenticators are useless),
	// so each replica only retransmits messages it originally sent.
	bits := int(min64(int64(r.log.LogSize()), statusBitmapBits))
	for i := 0; i < bits; i++ {
		seq := st.LastExec + 1 + message.Seq(i)
		s, ok := r.log.Peek(seq)
		if !ok || !s.HasDigest {
			continue
		}
		if !getBit(st.Prepared, i) {
			if s.PrePrepare != nil && s.PrePrepare.Replica == r.id && r.haveSeparateBodies(s.PrePrepare) {
				r.resendOwn(st.Replica, s.PrePrepare) // fresh authenticator
				// Ship separately-transmitted request bodies too (client
				// authenticators are epoch-stable).
				for _, d := range s.PrePrepare.Digests {
					if req, ok := r.log.Request(d); ok {
						r.sendRaw(st.Replica, req)
					}
				}
			}
			if s.SentPrepare {
				p := &message.Prepare{View: s.View, Seq: seq, Digest: s.Digest, Replica: r.id}
				r.resendOwn(st.Replica, p)
			}
		}
		if getBit(st.Prepared, i) && !getBit(st.Committed, i) && s.SentCommit {
			c := &message.Commit{View: s.View, Seq: seq, Digest: s.Digest, Replica: r.id}
			r.resendOwn(st.Replica, c)
		}
	}
}

func (r *Replica) onStatusPending(st *message.StatusPending) {
	if st.Replica == r.id {
		return
	}
	if st.View < r.view {
		r.helpLaggingView(st.Replica)
		return
	}
	if st.View != r.view {
		return
	}
	if r.vc.pending {
		// Resend our own view-change with a fresh authenticator if the peer
		// lacks it, and relay others' (the receiver validates relays by
		// digest against the new-view certificate when authenticators are
		// stale, §3.2.4).
		for id, vc := range r.vc.forView {
			if getBit(st.VCs, int(id)) {
				continue
			}
			if id == r.id {
				r.resendOwn(st.Replica, vc)
			} else {
				r.sendRaw(st.Replica, vc)
			}
		}
		return
	}
	// We are active in this view: give the peer the new-view decision (the
	// author re-authenticates it; others relay) plus the certificate's
	// view-changes.
	if r.vc.newView != nil && !st.HasNewView {
		if r.vc.newView.Replica == r.id {
			r.resendOwn(st.Replica, r.vc.newView)
		} else {
			r.sendRaw(st.Replica, r.vc.newView)
		}
		for id, vc := range r.vc.forView {
			if getBit(st.VCs, int(id)) {
				continue
			}
			if id == r.id {
				r.resendOwn(st.Replica, vc)
			} else {
				r.sendRaw(st.Replica, vc)
			}
		}
	}
}

// helpLaggingView pushes a replica stuck in an older view forward: our own
// view-change for the current view (freshly authenticated) plus the
// new-view message if we authored it. The other certificate members help
// with their own messages when they see the laggard's status.
func (r *Replica) helpLaggingView(peer message.NodeID) {
	if vc, ok := r.vc.forView[r.id]; ok {
		r.resendOwn(peer, vc)
	}
	if !r.vc.pending && r.vc.newView != nil {
		if r.vc.newView.Replica == r.id {
			r.resendOwn(peer, r.vc.newView)
		} else {
			r.sendRaw(peer, r.vc.newView)
		}
		for _, ref := range r.vc.newView.V {
			if vc, ok := r.vc.forView[ref.Replica]; ok {
				if ref.Replica == r.id {
					r.resendOwn(peer, vc)
				} else {
					r.sendRaw(peer, vc)
				}
			}
		}
	}
}
