package pbft

import (
	"testing"
	"time"

	"repro/internal/kvservice"
	"repro/internal/message"
)

// dropServeTraffic installs a simnet filter that drops MetaData and Data
// datagrams destined to dst — the fetcher can ask, learn of checkpoints, and
// run the protocol, but no state-transfer reply ever reaches it.
func dropServeTraffic(c *Cluster, dst message.NodeID) {
	c.Net.SetFilter(func(_, to message.NodeID, p []byte) ([]byte, bool) {
		if to == dst && len(p) > 0 &&
			(p[0] == byte(message.TMetaData) || p[0] == byte(message.TData)) {
			return nil, false
		}
		return p, true
	})
}

// TestStateTransferRetargetsWhenTargetCollected is the wedge regression:
// a replica with an ACTIVE transfer whose target checkpoint has been
// garbage-collected at every peer used to re-send the same doomed Fetch
// every 150 ms forever — the fallback meta-data was dropped for digest
// mismatch, and maybeStartTransfer refused to record a newer candidate
// while fetch.active. The fix re-targets the active transfer once a weak
// certificate (f+1 votes, assembled from the serving replicas' re-sent
// Checkpoint votes) forms for a newer stable checkpoint.
func TestStateTransferRetargetsWhenTargetCollected(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointInterval = 4
	cfg.LogWindow = 16
	// The wedged phases leave requests queued at the laggard for seconds;
	// keep it from drifting into lonely view changes while wedged.
	cfg.ViewChangeTimeout = 5 * time.Second
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	cl.MaxRetries = 20

	// Phase 1: replica 3 misses seqs 1..10; the others stabilize 8.
	c.Net.Isolate(3)
	for i := 0; i < 10; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}
	waitUntil(t, 5*time.Second, "group stabilizes 8", func() bool {
		return c.Replica(0).LowWaterMark() >= 8
	})

	// Phase 2: heal, but block every state-transfer reply to 3. It learns
	// of checkpoint 8 (within its water marks: High = 0+16), promotes the
	// candidate, and is left with an active transfer it cannot complete.
	dropServeTraffic(c, 3)
	c.Net.Heal()
	waitUntil(t, 10*time.Second, "replica 3 starts a transfer", func() bool {
		return c.Replica(3).Metrics().StateTransfers >= 1
	})

	// Phase 3: the cluster moves on to seq 17 and stabilizes 16, so the
	// snapshot for 3's fetch target is discarded at every peer. The cluster
	// then goes idle: no checkpoint beyond 3's water marks will ever form,
	// so the old immediate-restart path can never fire.
	for i := 0; i < 7; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}
	for i := 0; i < 3; i++ {
		waitUntil(t, 5*time.Second, "group collects the old target", func() bool {
			return c.Replica(i).LowWaterMark() >= 16
		})
	}

	// Phase 4: un-block serving. The doomed Fetch now draws Checkpoint
	// votes for 16 from the fallback path; the weak certificate re-targets
	// the active transfer and the catch-up completes without any new
	// client traffic.
	c.Net.SetFilter(nil)
	waitUntil(t, 10*time.Second, "replica 3 catches up", func() bool {
		return counterAt(c, 3) == 17
	})
	m := c.Replica(3).Metrics()
	if m.StateTransfers < 2 {
		t.Fatalf("transfer never re-targeted: %d transfers", m.StateTransfers)
	}
	if m.PagesFetched == 0 || m.TransferBytes == 0 {
		t.Fatalf("catch-up did not move state: %+v", m)
	}
	if m.LastTransferTime <= 0 {
		t.Fatalf("LastTransferTime not recorded: %+v", m)
	}
}

// TestWindowedTransferByzantineReplier stripes a window across repliers of
// which one is Byzantine for state transfer: replica 2's Data pages are
// corrupted in flight and its MetaData withheld. The digest checks must keep
// corrupt pages out of the installed state, per-item retries must route the
// stalled items to honest repliers, and the transfer must still complete.
func TestWindowedTransferByzantineReplier(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointInterval = 4
	cfg.LogWindow = 8
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	cl.MaxRetries = 20

	c.Net.Isolate(3)
	for i := 0; i < 40; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}
	waitUntil(t, 5*time.Second, "group GC", func() bool {
		return c.Replica(0).LowWaterMark() >= 16
	})
	c.Net.SetFilter(func(src, dst message.NodeID, p []byte) ([]byte, bool) {
		if src != 2 || dst != 3 || len(p) == 0 {
			return p, true
		}
		switch p[0] {
		case byte(message.TMetaData):
			return nil, false // withheld: the item times out and rotates
		case byte(message.TData):
			if len(p) > 40 {
				q := append([]byte(nil), p...)
				q[40] ^= 0xFF // corrupt page content: digest check must catch it
				return q, true
			}
		}
		return p, true
	})
	c.Net.Heal()

	waitUntil(t, 15*time.Second, "catch-up despite Byzantine replier", func() bool {
		return counterAt(c, 3) == 40
	})
	m := c.Replica(3).Metrics()
	if m.StateTransfers == 0 || m.PagesFetched == 0 {
		t.Fatalf("rejoin did not use state transfer: %+v", m)
	}
	if m.FetchRetries == 0 {
		t.Fatalf("expected per-item retries away from the Byzantine replier: %+v", m)
	}
	c.Net.SetFilter(nil)
	waitUntil(t, 5*time.Second, "state digests converge", func() bool {
		return c.Replica(3).StateDigest() == c.Replica(0).StateDigest()
	})
}

// TestWindowedTransferSurvivesViewChangeUnderLoad runs a windowed transfer
// concurrently with normal-case traffic and kills the primary mid-transfer:
// the rejoining replica must catch up through the view change and the
// cluster must stay live and consistent (with the old primary isolated the
// quorum NEEDS the rejoiner).
func TestWindowedTransferSurvivesViewChangeUnderLoad(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointInterval = 4
	cfg.LogWindow = 8
	// Long enough that the mid-transfer rejoiner (and later the healed old
	// primary) drains its queue before its own timer fires even under the
	// race detector's slowdown — a lone early view change would strand it
	// ahead of the group — while still converting the primary's death into
	// a group view change well inside the phase budgets.
	cfg.ViewChangeTimeout = 2 * time.Second
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	cl.MaxRetries = 40

	c.Net.Isolate(3)
	for i := 0; i < 30; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}
	waitUntil(t, 5*time.Second, "group GC", func() bool {
		return c.Replica(0).LowWaterMark() >= 16
	})

	// Normal-case load that keeps flowing through heal and failover.
	stop := make(chan struct{})
	done := make(chan struct{})
	loader := c.NewClient()
	loader.MaxRetries = 60
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			loader.Invoke(kvservice.Incr(), false) //nolint:errcheck
		}
	}()

	c.Net.Heal()
	waitUntil(t, 10*time.Second, "transfer starts", func() bool {
		return c.Replica(3).Metrics().StateTransfers >= 1
	})
	c.Net.Isolate(0) // primary of view 0 dies mid-transfer
	// The surviving quorum is {1, 2, 3}: the view change can only complete
	// with the still-catching-up rejoiner participating.
	waitUntil(t, 20*time.Second, "group view change completes", func() bool {
		return c.Replica(1).Metrics().NewViewsProcessed >= 1 &&
			c.Replica(2).Metrics().NewViewsProcessed >= 1 &&
			c.Replica(3).Metrics().NewViewsProcessed >= 1
	})
	waitUntil(t, 20*time.Second, "catch-up through the view change", func() bool {
		return c.Replica(3).Metrics().PagesFetched > 0 &&
			c.Replica(3).LastExecuted() >= 30
	})
	close(stop)
	<-done

	// Quiesce the surviving quorum before healing the old primary back in:
	// a healed replica racing live traffic can time out into a lonely view
	// change (a liveness scenario of its own, not this test's subject), and
	// f=1 tolerates it — but this test wants full convergence.
	waitUntil(t, 10*time.Second, "surviving quorum quiesces", func() bool {
		v := counterAt(c, 1)
		return v >= 30 && counterAt(c, 2) == v && counterAt(c, 3) == v
	})
	c.Net.Heal()
	// The old primary catches back up (by transfer or retransmission)
	// before new traffic arrives — otherwise its view-change timer can
	// fire mid-rejoin and strand it in a lonely higher view.
	waitUntil(t, 10*time.Second, "old primary rejoins", func() bool {
		return counterAt(c, 0) == counterAt(c, 1)
	})

	// Liveness after the dust settles, then convergence everywhere.
	mustInvoke(t, cl, kvservice.Incr(), false)
	waitUntil(t, 10*time.Second, "counters converge", func() bool {
		v := counterAt(c, 0)
		return v >= 31 && counterAt(c, 1) == v && counterAt(c, 2) == v && counterAt(c, 3) == v
	})
}

// TestStateTransferSerialWindowAblation pins FetchWindow=1 — the serial
// engine the windowed rewrite must preserve for the ablation — and runs the
// classic collected-log rejoin.
func TestStateTransferSerialWindowAblation(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointInterval = 4
	cfg.LogWindow = 8
	cfg.Opt.FetchWindow = 1
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	cl.MaxRetries = 20

	c.Net.Isolate(3)
	for i := 0; i < 40; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}
	waitUntil(t, 5*time.Second, "group GC", func() bool {
		return c.Replica(0).LowWaterMark() >= 16
	})
	c.Net.Heal()
	waitUntil(t, 10*time.Second, "serial-window catch-up", func() bool {
		return counterAt(c, 3) == 40
	})
	if m := c.Replica(3).Metrics(); m.StateTransfers == 0 || m.PagesFetched == 0 {
		t.Fatalf("rejoin did not use state transfer: %+v", m)
	}
}

// TestFetchWindowDefault pins the Validate default so the ablation knob and
// the windowed default cannot silently drift.
func TestFetchWindowDefault(t *testing.T) {
	var cfg Config
	cfg.Validate()
	if cfg.Opt.FetchWindow != 8 {
		t.Fatalf("FetchWindow default = %d, want 8", cfg.Opt.FetchWindow)
	}
	if w := DefaultOptions().FetchWindow; w != 8 {
		t.Fatalf("DefaultOptions().FetchWindow = %d, want 8", w)
	}
}
