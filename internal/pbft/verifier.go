package pbft

import (
	"repro/internal/crypto"
	"repro/internal/message"
)

// verifier is the state-free authentication core shared by the replica
// event loop (serial path) and the ingress pipeline workers (parallel
// path). It owns no protocol state: it reads the directory (RW-locked),
// the key store (copy-on-write snapshots), and the immutable mode, so
// Verify is safe to call from any goroutine concurrently with key
// refresh and client registration.
type verifier struct {
	mode Mode
	dir  *Directory
	ks   *crypto.KeyStore
}

// ensurePeerKeys lazily installs the administrator-distributed initial keys
// for a principal first seen now (clients appear dynamically).
func (v *verifier) ensurePeerKeys(peer message.NodeID) {
	if k, _ := v.ks.OutKey(uint32(peer)); k == nil {
		v.ks.InstallInitial(uint32(peer))
	}
}

// verifySig checks a signature trailer against the directory.
func (v *verifier) verifySig(m message.Message) bool {
	a := m.AuthTrailer()
	if a.Kind != message.AuthSig {
		return false
	}
	pub, ok := v.dir.PublicKey(m.Sender())
	if !ok {
		return false
	}
	return crypto.Verify(pub, m.Payload(), a.Sig)
}

// Verify authenticates an inbound message according to mode and type. It
// implements ingress.Verifier. Annotated as a worker entry point because
// ingress workers reach it through interface dispatch, which the bftowner
// call graph cannot see; the annotation closes that hole.
//
// bftlint:entrypoint=worker
func (v *verifier) Verify(m message.Message) bool {
	sender := m.Sender()
	a := m.AuthTrailer()

	switch m.(type) {
	case *message.Data, *message.BatchBody:
		// Content-addressed: verified against known digests (§5.3.2).
		return true
	case *message.NewKey:
		return v.verifySig(m)
	}

	if req, ok := m.(*message.Request); ok && req.Recovery() {
		return v.verifySig(m) // recovery requests are co-processor signed
	}

	if v.mode == ModePK {
		return v.verifySig(m)
	}

	switch a.Kind {
	case message.AuthVector:
		v.ensurePeerKeys(sender)
		return v.ks.CheckAuthenticator(uint32(sender), m.Payload(), a.Vector)
	case message.AuthMAC:
		v.ensurePeerKeys(sender)
		return v.ks.CheckPointMAC(uint32(sender), m.Payload(), a.MAC)
	default:
		return false
	}
}

// VerifyTagged verifies m and stamps the verdict with the key generation
// it was computed under (loaded before the snapshot, so a rotation racing
// the verification is always detected as a generation change). It
// implements ingress.Verifier for pipeline workers; the event loop
// compares the tag against the current generation on dispatch and
// re-verifies when keys rotated in between — the §4.3.2 stale-key rule.
// Nothing in the trailer can forge its way past this: the tag is computed
// locally, never from attacker-controlled fields.
//
// bftlint:entrypoint=worker
func (v *verifier) VerifyTagged(m message.Message) (bool, uint64) {
	gen := v.ks.Generation()
	return v.Verify(m), gen
}
