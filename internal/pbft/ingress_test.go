package pbft

// Tests for the staged ingress pipeline (internal/ingress) and its serial
// fallback. The rest of the suite runs with the pipeline ON (DefaultOptions
// enables it), so these tests pin down the OFF path, cross-mode agreement,
// and the inbox-overflow accounting.

import (
	"testing"
	"time"

	"repro/internal/kvservice"
	"repro/internal/message"
	"repro/internal/simnet"
)

// serialConfig is testConfig with the ingress pipeline disabled.
func serialConfig() Config {
	cfg := testConfig()
	cfg.Opt.Pipeline = false
	return cfg
}

func TestSerialIngressInvoke(t *testing.T) {
	// The pipeline-off path must still serve requests (it is the benchmark
	// baseline and the degenerate single-core configuration).
	c := newTestCluster(t, 4, serialConfig(), nil)
	cl := c.NewClient()
	for i := 1; i <= 5; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d", i, got)
		}
	}
	res := mustInvoke(t, cl, kvservice.Get(), true)
	if got := kvservice.DecodeU64(res); got != 5 {
		t.Fatalf("read-only get returned %d, want 5", got)
	}
}

func TestSerialIngressViewChange(t *testing.T) {
	c := newTestCluster(t, 4, serialConfig(), map[message.NodeID]Behavior{
		0: SilentPrimary,
	})
	cl := c.NewClient()
	cl.MaxRetries = 30
	res := mustInvoke(t, cl, kvservice.Incr(), false)
	if got := kvservice.DecodeU64(res); got != 1 {
		t.Fatalf("incr -> %d", got)
	}
	if v := c.Replica(1).View(); v < 1 {
		t.Fatalf("system settled in view %d, expected >= 1", v)
	}
}

func TestPipelineSerialAgreement(t *testing.T) {
	// The pipeline preserves arrival order, so both ingress modes must
	// produce identical execution histories for the same workload.
	run := func(pipeline bool) []uint64 {
		cfg := testConfig()
		cfg.Opt.Pipeline = pipeline
		c := NewLocalCluster(4, cfg, kvservice.Factory, nil)
		c.Start()
		defer c.Stop()
		cl := c.NewClient()
		var out []uint64
		for i := 0; i < 10; i++ {
			res := mustInvoke(t, cl, kvservice.Incr(), false)
			out = append(out, kvservice.DecodeU64(res))
		}
		return out
	}
	serial, pipelined := run(false), run(true)
	for i := range serial {
		if serial[i] != pipelined[i] {
			t.Fatalf("histories diverge at op %d: serial=%d pipelined=%d",
				i, serial[i], pipelined[i])
		}
	}
}

func TestPipelineMixedClusterAgreement(t *testing.T) {
	// Pipelined and serial replicas interoperate in one group: the wire
	// format and protocol are unchanged, only the receive path differs.
	cfg := testConfig()
	net := simnet.New(simnet.WithSeed(cfg.Seed + 7))
	t.Cleanup(func() { net.Close() })
	cfg.N = 4
	cfg.Validate()
	dir := NewDirectory(4)
	var reps []*Replica
	for i := 0; i < 4; i++ {
		rc := cfg
		rc.ID = message.NodeID(i)
		rc.Opt.Pipeline = i%2 == 0 // replicas 0,2 pipelined; 1,3 serial
		r := NewReplica(rc, dir, net, kvservice.Factory)
		reps = append(reps, r)
		r.Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})
	cl := NewClient(message.ClientIDBase, dir, net, cfg.Mode, cfg.Opt)
	t.Cleanup(cl.Close)
	for i := 1; i <= 8; i++ {
		res, err := cl.Invoke(kvservice.Incr(), false)
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d -> %d", i, got)
		}
	}
}

func TestInboxOverflowCounted(t *testing.T) {
	// Flood an unstarted replica (its event loop consumes nothing) past its
	// tiny inbox: the drops the attach handler used to swallow silently
	// must now be counted.
	for _, pipeline := range []bool{false, true} {
		name := "serial"
		if pipeline {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			net := simnet.New(simnet.WithSeed(1))
			t.Cleanup(func() { net.Close() })
			cfg := testConfig()
			cfg.ID = 0
			cfg.N = 4
			cfg.InboxCap = 4
			cfg.Opt.Pipeline = pipeline
			dir := NewDirectory(4)
			r := NewReplica(cfg, dir, net, kvservice.Factory) // not started yet
			t.Cleanup(r.Stop)                                 // Stop without Start is safe

			attacker := newRawSender(net, message.ClientIDBase+9)
			payload := (&message.Request{
				Client:    message.ClientIDBase + 9,
				Timestamp: 1,
				Replier:   message.NoNode,
				Op:        kvservice.Get(),
			}).Marshal()
			for i := 0; i < 256; i++ {
				attacker.trans.Send(0, payload)
			}
			deadline := time.Now().Add(5 * time.Second)
			for r.inboxDrops.Load() == 0 {
				if time.Now().After(deadline) {
					t.Fatal("no inbox drops counted after flooding a full inbox")
				}
				time.Sleep(time.Millisecond)
			}
			// The counter must surface through the public snapshot too.
			r.Start()
			m := r.Metrics()
			if m.InboxDrops == 0 {
				t.Fatal("Metrics().InboxDrops = 0 after overflow")
			}
		})
	}
}
