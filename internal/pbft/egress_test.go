package pbft

// Tests for the staged egress pipeline (internal/egress) and its serial
// fallback. The rest of the suite runs with the pipeline ON (testConfig
// forces it), so these tests pin down the OFF path, cross-mode agreement,
// and the replier rotation the egress-side client relies on.

import (
	"testing"

	"repro/internal/kvservice"
	"repro/internal/message"
	"repro/internal/simnet"
)

// serialEgressConfig is testConfig with the egress pipeline disabled.
func serialEgressConfig() Config {
	cfg := testConfig()
	cfg.Opt.EgressPipeline = false
	return cfg
}

func TestSerialEgressInvoke(t *testing.T) {
	// The pipeline-off path must still serve requests (it is the benchmark
	// baseline and the degenerate single-core configuration).
	c := newTestCluster(t, 4, serialEgressConfig(), nil)
	cl := c.NewClient()
	for i := 1; i <= 5; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d", i, got)
		}
	}
	res := mustInvoke(t, cl, kvservice.Get(), true)
	if got := kvservice.DecodeU64(res); got != 5 {
		t.Fatalf("read-only get returned %d, want 5", got)
	}
}

func TestSerialEgressViewChange(t *testing.T) {
	c := newTestCluster(t, 4, serialEgressConfig(), map[message.NodeID]Behavior{
		0: SilentPrimary,
	})
	cl := c.NewClient()
	cl.MaxRetries = 30
	res := mustInvoke(t, cl, kvservice.Incr(), false)
	if got := kvservice.DecodeU64(res); got != 1 {
		t.Fatalf("incr -> %d", got)
	}
	if v := c.Replica(1).View(); v < 1 {
		t.Fatalf("system settled in view %d, expected >= 1", v)
	}
}

func TestEgressSerialAgreement(t *testing.T) {
	// The pipeline hands wire buffers to the transport in send order, so
	// both egress modes must produce identical execution histories for the
	// same workload.
	run := func(pipeline bool) []uint64 {
		cfg := testConfig()
		cfg.Opt.EgressPipeline = pipeline
		c := NewLocalCluster(4, cfg, kvservice.Factory, nil)
		c.Start()
		defer c.Stop()
		cl := c.NewClient()
		var out []uint64
		for i := 0; i < 10; i++ {
			res := mustInvoke(t, cl, kvservice.Incr(), false)
			out = append(out, kvservice.DecodeU64(res))
		}
		return out
	}
	serial, pipelined := run(false), run(true)
	for i := range serial {
		if serial[i] != pipelined[i] {
			t.Fatalf("histories diverge at op %d: serial=%d pipelined=%d",
				i, serial[i], pipelined[i])
		}
	}
}

func TestEgressMixedClusterAgreement(t *testing.T) {
	// Pipelined and serial egress replicas interoperate in one group: the
	// wire format and protocol are unchanged, only the send path differs.
	cfg := testConfig()
	net := simnet.New(simnet.WithSeed(cfg.Seed + 7))
	t.Cleanup(func() { net.Close() })
	cfg.N = 4
	cfg.Validate()
	dir := NewDirectory(4)
	var reps []*Replica
	for i := 0; i < 4; i++ {
		rc := cfg
		rc.ID = message.NodeID(i)
		rc.Opt.EgressPipeline = i%2 == 0 // replicas 0,2 pipelined; 1,3 serial
		r := NewReplica(rc, dir, net, kvservice.Factory)
		reps = append(reps, r)
		r.Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})
	cl := NewClient(message.ClientIDBase, dir, net, cfg.Mode, cfg.Opt)
	t.Cleanup(cl.Close)
	for i := 1; i <= 8; i++ {
		res, err := cl.Invoke(kvservice.Incr(), false)
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d -> %d", i, got)
		}
	}
}

func TestEgressSurvivesKeyRefresh(t *testing.T) {
	// Key refreshment (§4.3.1) rotates the copy-on-write key store under
	// queued egress jobs; the generation stamp re-seals anything that
	// crossed a rotation, so the protocol keeps making progress across
	// aggressive refresh intervals.
	cfg := testConfig()
	cfg.KeyRefreshInterval = 10 * tickInterval
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	for i := 1; i <= 20; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d -> %d under key refresh", i, got)
		}
	}
}

func TestPickReplierRoundRobin(t *testing.T) {
	// §5.1.1 load balancing: the designated replier must rotate through the
	// replicas in strict rotation — over any window of n picks each replica
	// is designated exactly once. (The seed-scrambled LCG this replaces
	// skewed the distribution through modulo bias.)
	net := simnet.New(simnet.WithSeed(1))
	t.Cleanup(func() { net.Close() })
	dir := NewDirectory(4)
	cl := NewClient(message.ClientIDBase, dir, net, ModeMAC, Options{})
	t.Cleanup(cl.Close)

	first := cl.pickReplier()
	counts := make(map[message.NodeID]int)
	counts[first]++
	prev := first
	for i := 1; i < 40; i++ {
		r := cl.pickReplier()
		if want := message.NodeID((int(prev) + 1) % 4); r != want {
			t.Fatalf("pick %d: got replica %d after %d, want %d", i, r, prev, want)
		}
		counts[r]++
		prev = r
	}
	for id := message.NodeID(0); id < 4; id++ {
		if counts[id] != 10 {
			t.Fatalf("replica %d designated %d times in 40 picks, want 10", id, counts[id])
		}
	}
}
