package pbft

// Stage-3 executor wiring: when Config.Opt.ExecPipeline is on, the replica
// hands ownership of the service Region, the checkpoint manager, and the
// reply cache to a single ordered executor goroutine (internal/executor)
// and the event loop keeps only the protocol state plus two mirrors:
//
//   - repMarks:  last replied (timestamp, tentative) per client, for the
//     §2.3.3 exactly-once checks the event loop performs on every request;
//   - myCkpts:   this replica's own checkpoint digests by sequence number,
//     for the checkpoint/view-change protocol reads that the serial path
//     served straight from the manager.
//
// Commands flow core -> executor in dispatch order; checkpoint digests flow
// back as events through an unbounded queue the event loop drains, so the
// executor never blocks on the core. The rare paths that must observe or
// mutate execution state from the core — view-change rollback, state
// transfer, proactive-recovery state checking, test inspection — run as
// execSync rendezvous: the closure executes on the executor goroutine after
// every earlier command while the event loop waits, which is exactly the
// mutual exclusion the serial path got for free from single-threading.

import (
	"sync"

	"repro/internal/crypto"
	"repro/internal/egress"
	"repro/internal/executor"
	"repro/internal/message"
)

// replyMark is the event-loop mirror of one reply-cache entry: enough for
// exactly-once decisions without touching the executor-owned cache.
type replyMark struct {
	ts        uint64
	tentative bool
}

// execState is the replica's staged-executor bookkeeping. The mirrors and
// the dispatch handle belong to the event loop; only the event queue below
// is written from the executor goroutine.
//
// bftlint:owner=eventloop
type execState struct {
	ex *executor.Executor

	// epoch stamps TakeCheckpoint commands; it is bumped whenever a
	// rendezvous rebuilds execution state (rollback, state transfer), so
	// checkpoint events reported for snapshots destroyed in between are
	// recognized as stale and dropped.
	epoch uint64

	// myCkpts mirrors the manager's retained snapshots: seq -> combined
	// digest of every checkpoint this replica has taken (and been told
	// about via the digest event). Pruned in step with DiscardBefore.
	myCkpts map[message.Seq]crypto.Digest

	// repMarks is the exactly-once mirror (see replyMark).
	repMarks map[message.NodeID]replyMark

	// Unbounded event queue from the executor goroutine; evC is a
	// 1-buffered doorbell the event loop selects on.
	evMu sync.Mutex       // bftlint:owner=shared
	evQ  []executor.Event // bftlint:owner=shared (guarded by evMu)
	evC  chan struct{}    // bftlint:owner=shared
}

// startExecutor builds the stage-3 executor and hands it the service,
// checkpoint manager, and reply cache. Called from NewReplica after the
// transport and egress pipeline exist (replies route through them).
func (r *Replica) startExecutor() {
	r.xs = &execState{
		myCkpts:  map[message.Seq]crypto.Digest{0: ckptDigest(r.ckpt.RootDigest(), nil)},
		repMarks: make(map[message.NodeID]replyMark),
		evC:      make(chan struct{}, 1),
	}
	r.xs.ex = executor.New(executor.Config{
		Self:          r.id,
		DigestReplies: r.cfg.Opt.DigestReplies,
		SmallResult:   smallResultThreshold,
		QueueCap:      r.cfg.InboxCap,
		Service:       r.service,
		Ckpt:          r.ckpt,
		Cache:         r.replyCache,
		Out:           (*execSender)(r),
		Report:        r.reportExecEvent,
	})
}

// staged reports whether the stage-3 executor owns execution state.
func (r *Replica) staged() bool { return r.xs != nil }

// execSync runs fn with exclusive access to the Region, the checkpoint
// manager, and the reply cache: inline on the serial path, as an executor
// rendezvous on the staged path (the event loop blocks, so fn may touch
// protocol state too). Never nest execSync calls.
//
// bftlint:rendezvous
func (r *Replica) execSync(fn func()) {
	if r.xs == nil {
		fn()
		return
	}
	r.xs.ex.Sync(fn)
}

// ---------------------------------------------------------------------------
// Reply-cache mirror
// ---------------------------------------------------------------------------

// lastReplied returns the timestamp of the last reply sent to client, if
// any — the event loop's exactly-once check (§2.3.3).
func (r *Replica) lastReplied(client message.NodeID) (uint64, bool) {
	if r.staged() {
		m, ok := r.xs.repMarks[client]
		return m.ts, ok
	}
	if cr := r.replyCache.Get(client); cr != nil {
		return cr.Timestamp, true
	}
	return 0, false
}

// setRepliesFromCheckpoint installs a checkpointed reply cache (rollback,
// state transfer). Must run inside execSync on the staged path: the cache
// belongs to the executor, and the mirror to the (blocked) event loop.
func (r *Replica) setRepliesFromCheckpoint(extra []byte) {
	r.replyCache.Install(extra)
	if r.staged() {
		marks := executor.Marks(extra)
		r.xs.repMarks = make(map[message.NodeID]replyMark, len(marks))
		for _, mk := range marks {
			r.xs.repMarks[mk.Client] = replyMark{ts: mk.Timestamp}
		}
	}
}

// ---------------------------------------------------------------------------
// Batch dispatch
// ---------------------------------------------------------------------------

// dispatchBatch is the staged twin of the serial execOne loop: it performs
// the event-loop half of execution (log bookkeeping, exactly-once mirror,
// recovery-request protocol effects) and ships the state-machine half to
// the executor as one ordered command.
func (r *Replica) dispatchBatch(pp *message.PrePrepare, seq message.Seq, tentative bool) {
	var entries []executor.Entry
	var recReqs []*message.Request
	for _, req := range r.batchRequests(pp) {
		if req == nil {
			continue // null request: no-op (§2.3.5)
		}
		client := req.Client
		d := req.Digest()
		r.log.MarkRequestExecuted(d, seq)
		r.dequeueExecuted(client, d)
		if mark, ok := r.xs.repMarks[client]; ok && req.Timestamp <= mark.ts {
			if req.Timestamp == mark.ts {
				r.xs.ex.ResendReply(client, r.view)
			}
			continue
		}
		ent := executor.Entry{Req: req}
		if req.Recovery() {
			// Recovery requests are pure protocol bookkeeping: the result
			// (the sequence number) is computed here and their side
			// effects run on the event loop after dispatch (§4.3.2).
			recReqs = append(recReqs, req)
			ent.Pre = recoveryResult(seq)
			ent.HasPre = true
		}
		// repMarks is the staged-path reply cache: one entry per client that
		// ever executed, by design; the batch passed requestAuthOK at accept.
		r.xs.repMarks[client] = replyMark{ts: req.Timestamp, tentative: tentative} // bftlint:allow=bfttaint
		r.metrics.RequestsExecuted++
		entries = append(entries, ent)
	}
	if len(entries) > 0 {
		r.xs.ex.ExecBatch(seq, r.view, pp.NonDet, tentative, entries)
	}
	for _, req := range recReqs {
		r.recoveryRequestEffects(req, seq)
	}
}

// ---------------------------------------------------------------------------
// Checkpoint digest mirror
// ---------------------------------------------------------------------------

// reportExecEvent is the executor's non-blocking report callback: append to
// the unbounded queue and ring the doorbell. It runs on the executor
// goroutine and may touch only the shared queue fields.
//
// bftlint:entrypoint=executor
func (r *Replica) reportExecEvent(ev executor.Event) {
	r.xs.evMu.Lock()
	r.xs.evQ = append(r.xs.evQ, ev)
	r.xs.evMu.Unlock()
	select {
	case r.xs.evC <- struct{}{}:
	default:
	}
}

// takeExecEvents drains the event queue (event loop only).
func (r *Replica) takeExecEvents() []executor.Event {
	r.xs.evMu.Lock()
	evs := r.xs.evQ
	r.xs.evQ = nil
	r.xs.evMu.Unlock()
	return evs
}

// syncExecEvents makes the checkpoint-digest mirror current: a rendezvous
// drains every queued command (so all dispatched checkpoints are taken),
// then the reports produced so far are consumed. The view-change paths use
// it before reading the mirror — the serial path always saw its own
// checkpoints immediately, and a new-view or view-change decision based on
// a lagging mirror could start a state transfer for a checkpoint this
// replica already holds, or under-report C in its view-change message.
func (r *Replica) syncExecEvents() {
	if !r.staged() {
		return
	}
	r.execSync(func() {})
	for _, ev := range r.takeExecEvents() {
		r.onCkptTaken(ev)
	}
}

// onCkptTaken consumes one checkpoint-digest event: record it in the
// mirror, then broadcast (committed) or defer to pendingCkpts (tentative),
// per §5.1.2.
func (r *Replica) onCkptTaken(ev executor.Event) {
	if ev.Epoch != r.xs.epoch {
		return // snapshot destroyed by a rollback/transfer since dispatch
	}
	if ev.Seq <= r.log.Low() {
		return // already obsolete (a new-view proof stabilized past it)
	}
	r.xs.myCkpts[ev.Seq] = ev.Digest
	if ev.Seq <= r.lastCommitted {
		r.broadcastCheckpoint(ev.Seq, ev.Digest)
	} else {
		r.pendingCkpts[ev.Seq] = ev.Digest
	}
}

// ownCkptDigest returns this replica's digest for the checkpoint at seq,
// if taken (and, on the staged path, reported back).
func (r *Replica) ownCkptDigest(seq message.Seq) (crypto.Digest, bool) {
	if r.staged() {
		d, ok := r.xs.myCkpts[seq]
		return d, ok
	}
	snap, ok := r.ckpt.Snapshot(seq)
	if !ok {
		return crypto.Digest{}, false
	}
	return ckptDigest(snap.Root, snap.Extra), true
}

// latestCkptSeq returns the newest retained checkpoint's sequence number.
func (r *Replica) latestCkptSeq() message.Seq {
	if !r.staged() {
		return r.ckpt.Latest().Seq
	}
	var max message.Seq
	for s := range r.xs.myCkpts {
		if s > max {
			max = s
		}
	}
	return max
}

// ownCkptList returns every retained checkpoint at or above the low water
// mark, ascending — the C component of a view-change message.
func (r *Replica) ownCkptList() []message.CkptInfo {
	low := r.log.Low()
	if !r.staged() {
		var out []message.CkptInfo
		for s := low; ; {
			if snap, ok := r.ckpt.Snapshot(s); ok {
				out = append(out, message.CkptInfo{Seq: s, Digest: ckptDigest(snap.Root, snap.Extra)})
			}
			s += r.cfg.CheckpointInterval
			if s > r.ckpt.Latest().Seq {
				break
			}
		}
		return out
	}
	seqs := make([]message.Seq, 0, len(r.xs.myCkpts))
	for s := range r.xs.myCkpts {
		if s >= low {
			seqs = append(seqs, s)
		}
	}
	for i := 1; i < len(seqs); i++ {
		for j := i; j > 0 && seqs[j] < seqs[j-1]; j-- {
			seqs[j], seqs[j-1] = seqs[j-1], seqs[j]
		}
	}
	out := make([]message.CkptInfo, 0, len(seqs))
	for _, s := range seqs {
		out = append(out, message.CkptInfo{Seq: s, Digest: r.xs.myCkpts[s]})
	}
	return out
}

// discardCkptsBefore truncates checkpoint history at a stable checkpoint,
// mirroring checkpoint.Manager.DiscardBefore (drop < seq, always keep the
// newest) in the digest mirror.
func (r *Replica) discardCkptsBefore(seq message.Seq) {
	if !r.staged() {
		r.ckpt.DiscardBefore(seq)
		return
	}
	r.xs.ex.Discard(seq)
	newest := r.latestCkptSeq()
	for s := range r.xs.myCkpts {
		if s < seq && s != newest {
			delete(r.xs.myCkpts, s)
		}
	}
}

// pruneCkptsAbove drops mirror entries above seq (rollback).
func (r *Replica) pruneCkptsAbove(seq message.Seq) {
	if !r.staged() {
		return
	}
	for s := range r.xs.myCkpts {
		if s > seq {
			delete(r.xs.myCkpts, s)
		}
	}
}

// ---------------------------------------------------------------------------
// Reply egress
// ---------------------------------------------------------------------------

// execSender is the executor's reply outbound: the same point-authenticated
// send path the event loop uses, safe off the event loop because it touches
// only immutable config, the thread-safe key store, and the egress
// pipeline / transport.
type execSender Replica

// SendReply implements executor.Outbound. It runs on the executor
// goroutine; everything it reaches must be shared (bftowner checks this).
//
// bftlint:entrypoint=executor
// bftlint:send
func (s *execSender) SendReply(rep *message.Reply) {
	r := (*Replica)(s)
	if r.muted.Load() {
		return // WAL replay: re-executed batches must not re-send replies
	}
	r.behaviorMangle(rep)
	if r.out != nil {
		r.out.Send(rep.Client, rep, egress.Point)
		return
	}
	r.authPoint(rep, rep.Client)
	r.trans.Send(rep.Client, rep.Marshal())
}
