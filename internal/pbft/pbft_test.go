package pbft

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kvservice"
	"repro/internal/message"
	"repro/internal/statemachine"
)

// testConfig returns a small, fast configuration for integration tests.
// The ingress, egress, and executor pipelines are forced on (DefaultOptions
// adapts them to the core count) so the whole protocol suite exercises all
// three staged paths on any machine; ingress_test.go, egress_test.go, and
// executor_test.go cover the serial paths explicitly.
func testConfig() Config {
	opt := DefaultOptions()
	opt.Pipeline = true
	opt.EgressPipeline = true
	opt.ExecPipeline = true
	return Config{
		Mode:               ModeMAC,
		Opt:                opt,
		CheckpointInterval: 16,
		LogWindow:          32,
		ViewChangeTimeout:  150 * time.Millisecond,
		StatusInterval:     30 * time.Millisecond,
		StateSize:          kvservice.MinStateSize,
		PageSize:           1024,
		Fanout:             16,
		Seed:               42,
	}
}

func newTestCluster(t testing.TB, n int, cfg Config, behaviors map[message.NodeID]Behavior) *Cluster {
	t.Helper()
	c := NewLocalCluster(n, cfg, kvservice.Factory, behaviors)
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func mustInvoke(t testing.TB, cl *Client, op []byte, ro bool) []byte {
	t.Helper()
	res, err := cl.Invoke(op, ro)
	if err != nil {
		t.Fatalf("invoke failed: %v", err)
	}
	return res
}

func TestBasicInvoke(t *testing.T) {
	c := newTestCluster(t, 4, testConfig(), nil)
	cl := c.NewClient()
	for i := 1; i <= 5; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d", i, got)
		}
	}
}

func TestReadOnlyInvoke(t *testing.T) {
	c := newTestCluster(t, 4, testConfig(), nil)
	cl := c.NewClient()
	mustInvoke(t, cl, kvservice.Incr(), false)
	mustInvoke(t, cl, kvservice.Incr(), false)
	res := mustInvoke(t, cl, kvservice.Get(), true)
	if got := kvservice.DecodeU64(res); got != 2 {
		t.Fatalf("read-only get returned %d, want 2", got)
	}
}

func TestMultipleClients(t *testing.T) {
	c := newTestCluster(t, 4, testConfig(), nil)
	const nClients = 5
	const each = 10
	errs := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		cl := c.NewClient()
		go func() {
			for j := 0; j < each; j++ {
				if _, err := cl.Invoke(kvservice.Incr(), false); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < nClients; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("client failed: %v", err)
		}
	}
	cl := c.NewClient()
	res := mustInvoke(t, cl, kvservice.Get(), true)
	if got := kvservice.DecodeU64(res); got != nClients*each {
		t.Fatalf("counter = %d, want %d", got, nClients*each)
	}
}

func TestLargeArgsAndResults(t *testing.T) {
	cfg := testConfig()
	cfg.StateSize = kvservice.MinStateSize + 64*1024
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()

	blob := bytes.Repeat([]byte{0xAB}, 4096) // 4/0 operation
	mustInvoke(t, cl, kvservice.WriteBlob(blob), false)

	res := mustInvoke(t, cl, kvservice.ReadBlob(4096), true) // 0/4 operation
	if len(res) != 4096 {
		t.Fatalf("read %d bytes, want 4096", len(res))
	}
	if !bytes.Equal(res, blob) {
		t.Fatal("blob round trip corrupted data")
	}
}

func TestCrashedBackupTolerated(t *testing.T) {
	// f=1: one crashed backup must not affect liveness or results.
	c := newTestCluster(t, 4, testConfig(), map[message.NodeID]Behavior{3: Crashed})
	cl := c.NewClient()
	for i := 1; i <= 10; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d", i, got)
		}
	}
}

func TestWrongResultReplicaMasked(t *testing.T) {
	// A replica lying in its replies must be outvoted by the certificate.
	c := newTestCluster(t, 4, testConfig(), map[message.NodeID]Behavior{2: WrongResult})
	cl := c.NewClient()
	for i := 1; i <= 5; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d (bad replica leaked through)", i, got)
		}
	}
}

func TestCorruptDigestReplicaTolerated(t *testing.T) {
	c := newTestCluster(t, 4, testConfig(), map[message.NodeID]Behavior{1: CorruptDigest})
	cl := c.NewClient()
	for i := 1; i <= 5; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d", i, got)
		}
	}
}

func TestViewChangeOnSilentPrimary(t *testing.T) {
	// Replica 0 (primary of view 0) never orders requests: the backups must
	// elect replica 1 and still serve the client.
	c := newTestCluster(t, 4, testConfig(), map[message.NodeID]Behavior{0: SilentPrimary})
	cl := c.NewClient()
	cl.MaxRetries = 20
	res := mustInvoke(t, cl, kvservice.Incr(), false)
	if got := kvservice.DecodeU64(res); got != 1 {
		t.Fatalf("incr returned %d", got)
	}
	// The system must have moved past view 0.
	if v := c.Replica(1).View(); v == 0 {
		t.Fatalf("replica 1 still in view 0 after silent primary")
	}
	// And keep working afterwards.
	for i := 2; i <= 6; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("post-view-change incr %d returned %d", i, got)
		}
	}
}

func TestCrashedPrimaryViewChange(t *testing.T) {
	c := newTestCluster(t, 4, testConfig(), map[message.NodeID]Behavior{0: Crashed})
	cl := c.NewClient()
	cl.MaxRetries = 20
	for i := 1; i <= 5; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d", i, got)
		}
	}
}

func TestConflictingPrimarySafety(t *testing.T) {
	// A Byzantine primary equivocating on batches must never make correct
	// replicas diverge; progress resumes (possibly via view change).
	c := newTestCluster(t, 4, testConfig(), map[message.NodeID]Behavior{0: ConflictingPrimary})
	cl := c.NewClient()
	cl.MaxRetries = 20
	for i := 1; i <= 5; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d", i, got)
		}
	}
	// All correct replicas must agree on the counter value.
	waitForAgreement(t, c, []int{1, 2, 3}, 5*time.Second)
}

// waitForAgreement blocks until the given replicas report identical state
// digests (after quiescence) or the deadline passes.
func waitForAgreement(t testing.TB, c *Cluster, ids []int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		// Compare the counters through the service (digests also cover the
		// reply caches, which legitimately differ between repliers).
		vals := make([]uint64, len(ids))
		for i, id := range ids {
			c.Replica(id).InspectService(func(s statemachine.Service) {
				res := s.Execute(message.ClientIDBase+9999, kvservice.Get(), nil)
				vals[i] = kvservice.DecodeU64(res)
			})
		}
		same := true
		for _, v := range vals {
			if v != vals[0] {
				same = false
			}
		}
		if same {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas disagree: %v", vals)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestCheckpointGarbageCollection(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointInterval = 4
	cfg.LogWindow = 8
	cfg.Opt.Batching = false // one request per sequence number
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	for i := 0; i < 20; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}
	// Low water marks must have advanced past 0 everywhere.
	deadline := time.Now().Add(5 * time.Second)
	for _, r := range c.Replicas {
		for r.LowWaterMark() == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("replica %d never advanced its low water mark", r.ID())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestStateDigestsConverge(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointInterval = 4
	cfg.Opt.Batching = false
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	for i := 0; i < 12; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}
	// After quiescence every replica must reach the same state root.
	deadline := time.Now().Add(5 * time.Second)
	for {
		d0 := c.Replica(0).StateDigest()
		same := true
		for i := 1; i < 4; i++ {
			if c.Replica(i).StateDigest() != d0 {
				same = false
				break
			}
		}
		if same {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("state digests never converged")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestPKModeBasic(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = ModePK
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	for i := 1; i <= 3; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d", i, got)
		}
	}
}

func TestSevenReplicas(t *testing.T) {
	c := newTestCluster(t, 7, testConfig(), map[message.NodeID]Behavior{5: Crashed, 6: Crashed})
	cl := c.NewClient()
	for i := 1; i <= 5; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d", i, got)
		}
	}
}

func TestExactlyOnceUnderRetransmission(t *testing.T) {
	// Force client retransmissions with a lossy network; increments must
	// not be applied twice.
	cfg := testConfig()
	c := NewLocalCluster(4, cfg, kvservice.Factory, nil)
	c.Net.SetFilter(nil)
	c.Start()
	t.Cleanup(c.Stop)

	// Drop ~30% of everything.
	var drop atomic.Int64
	c.Net.SetFilter(func(src, dst message.NodeID, p []byte) ([]byte, bool) {
		if drop.Add(1)%3 == 0 {
			return nil, false
		}
		return p, true
	})
	cl := c.NewClient()
	cl.RetryTimeout = 60 * time.Millisecond
	// Budget retries from the timeout rather than a fixed count: under -race
	// with CPU contention a 30%-lossy run legitimately burns many rounds,
	// and a fixed 30 made this test flake. Size MaxRetries so the cumulative
	// backoff (doubling, capped at 8×RetryTimeout — the client's schedule)
	// spans ~30 seconds of wall clock per op.
	cl.MaxRetries = retriesForBudget(cl.RetryTimeout, 30*time.Second)
	const n = 8
	for i := 1; i <= n; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d (duplicate or lost execution)", i, got)
		}
	}
	c.Net.SetFilter(nil)
	res := mustInvoke(t, cl, kvservice.Get(), true)
	if got := kvservice.DecodeU64(res); got != n {
		t.Fatalf("counter = %d, want %d", got, n)
	}
}

// retriesForBudget returns the retry count whose cumulative exponential
// backoff (doubling from base, capped at 8×base — the client's §5.2
// schedule) first covers budget.
func retriesForBudget(base, budget time.Duration) int {
	wait, total, n := base, time.Duration(0), 0
	for total < budget {
		total += wait
		n++
		if wait < 8*base {
			wait *= 2
			if wait > 8*base {
				wait = 8 * base
			}
		}
	}
	return n
}

func TestNonDeterminismAgreement(t *testing.T) {
	cfg := testConfig()
	c := NewLocalCluster(4, cfg, kvservice.TimestampFactory, nil)
	c.Start()
	t.Cleanup(c.Stop)
	cl := c.NewClient()
	res := mustInvoke(t, cl, kvservice.GetTime(), false)
	ts := int64(kvservice.DecodeU64(res))
	now := time.Now().UnixNano()
	diff := now - ts
	if diff < 0 {
		diff = -diff
	}
	if time.Duration(diff) > 30*time.Second {
		t.Fatalf("agreed timestamp too far from real time: %v", time.Duration(diff))
	}
}

func TestOrderLogConsistentUnderConcurrency(t *testing.T) {
	// Multiple clients appending concurrently: all replicas must hold the
	// same order log (total order of execution).
	c := newTestCluster(t, 4, testConfig(), nil)
	const nClients = 4
	const each = 5
	errs := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		cl := c.NewClient()
		go func() {
			for j := 0; j < each; j++ {
				if _, err := cl.Invoke(kvservice.AppendLog(), false); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < nClients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	cl := c.NewClient()
	logRes := mustInvoke(t, cl, kvservice.ReadLog(), true)
	if len(logRes) != nClients*each*8 {
		t.Fatalf("order log has %d bytes, want %d", len(logRes), nClients*each*8)
	}
	// Every replica's log must match the certified one.
	for i := 0; i < 4; i++ {
		var local []byte
		c.Replica(i).InspectService(func(s statemachine.Service) {
			local = s.Execute(message.ClientIDBase+9999, kvservice.ReadLog(), nil)
		})
		if !bytes.Equal(local, logRes) {
			t.Fatalf("replica %d order log diverges", i)
		}
	}
}

func TestMetricsProgress(t *testing.T) {
	c := newTestCluster(t, 4, testConfig(), nil)
	cl := c.NewClient()
	for i := 0; i < 5; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}
	m := c.Replica(0).Metrics()
	if m.RequestsExecuted < 5 {
		t.Fatalf("primary executed %d requests, want >= 5", m.RequestsExecuted)
	}
	if m.BatchesExecuted == 0 {
		t.Fatal("no batches executed")
	}
}

func TestManySequentialRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	cfg := testConfig()
	cfg.CheckpointInterval = 8
	cfg.LogWindow = 16
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	const n = 100
	for i := 1; i <= n; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d", i, got)
		}
	}
}

func TestTentativeExecDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.Opt.TentativeExec = false
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	for i := 1; i <= 5; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d", i, got)
		}
	}
	if m := c.Replica(0).Metrics(); m.TentativeExecs != 0 {
		t.Fatalf("tentative execs %d with optimization disabled", m.TentativeExecs)
	}
}

func TestAllOptimizationsDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.Opt = Options{BatchRequests: 1, AgreementWindow: 4, InlineThreshold: 1 << 20}
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	for i := 1; i <= 5; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d", i, got)
		}
	}
}

func TestClientTimeoutWhenClusterDown(t *testing.T) {
	cfg := testConfig()
	c := NewLocalCluster(4, cfg, kvservice.Factory, map[message.NodeID]Behavior{
		0: Crashed, 1: Crashed, 2: Crashed, 3: Crashed,
	})
	c.Start()
	t.Cleanup(c.Stop)
	cl := c.NewClient()
	cl.RetryTimeout = 20 * time.Millisecond
	cl.MaxRetries = 2
	if _, err := cl.Invoke(kvservice.Incr(), false); err == nil {
		t.Fatal("invoke succeeded against a dead cluster")
	}
}

func TestLatencyReasonable(t *testing.T) {
	// Sanity guard for the harness: a local 0/0 op should complete fast.
	c := newTestCluster(t, 4, testConfig(), nil)
	cl := c.NewClient()
	mustInvoke(t, cl, kvservice.Noop(), false) // warm up
	start := time.Now()
	const n = 20
	for i := 0; i < n; i++ {
		mustInvoke(t, cl, kvservice.Noop(), false)
	}
	avg := time.Since(start) / n
	if avg > 50*time.Millisecond {
		t.Fatalf("average latency %v is implausibly high", avg)
	}
}

func TestViewChangePreservesExecutedRequests(t *testing.T) {
	// Execute some requests, kill the primary, execute more: the counter
	// must continue from where it was (committed state survives the view
	// change).
	cfg := testConfig()
	c := NewLocalCluster(4, cfg, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(c.Stop)
	cl := c.NewClient()
	cl.MaxRetries = 20
	for i := 1; i <= 5; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}
	c.Net.Isolate(0) // primary of view 0 disappears
	for i := 6; i <= 10; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d after primary failure", i, got)
		}
	}
}

func TestRejoinAfterPartition(t *testing.T) {
	// A backup partitioned away must catch up via retransmission/state
	// transfer once healed.
	cfg := testConfig()
	cfg.CheckpointInterval = 4
	cfg.LogWindow = 8
	c := NewLocalCluster(4, cfg, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(c.Stop)
	cl := c.NewClient()
	cl.MaxRetries = 20

	c.Net.Isolate(3)
	for i := 1; i <= 20; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}
	c.Net.Heal()

	// Replica 3 must converge to the same counter value.
	deadline := time.Now().Add(8 * time.Second)
	for {
		var v uint64
		c.Replica(3).InspectService(func(s statemachine.Service) {
			v = kvservice.DecodeU64(s.Execute(message.ClientIDBase+9999, kvservice.Get(), nil))
		})
		if v == 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica 3 stuck at counter %d after heal", v)
		}
		time.Sleep(30 * time.Millisecond)
	}
}

func TestBatchingUnderLoad(t *testing.T) {
	cfg := testConfig()
	c := newTestCluster(t, 4, cfg, nil)
	const nClients = 8
	errs := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		cl := c.NewClient()
		go func() {
			for j := 0; j < 5; j++ {
				if _, err := cl.Invoke(kvservice.Incr(), false); err != nil {
					errs <- fmt.Errorf("invoke: %w", err)
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < nClients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	m := c.Replica(0).Metrics()
	if m.BatchesExecuted == 0 || m.RequestsExecuted < nClients*5 {
		t.Fatalf("metrics: %+v", m)
	}
	// With batching on, batches should be fewer than requests under load.
	if m.BatchesExecuted > m.RequestsExecuted {
		t.Fatalf("more batches (%d) than requests (%d)?", m.BatchesExecuted, m.RequestsExecuted)
	}
}
