package pbft

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/crypto"
	"repro/internal/egress"
	"repro/internal/executor"
	"repro/internal/ingress"
	"repro/internal/message"
	"repro/internal/statemachine"
	"repro/internal/transport"
	"repro/internal/vlog"
	"repro/internal/wal"
)

// Metrics counts protocol events at one replica.
type Metrics struct {
	RequestsExecuted  uint64
	BatchesExecuted   uint64
	TentativeExecs    uint64
	Rollbacks         uint64
	ViewChanges       uint64 // view changes this replica initiated or joined
	NewViewsProcessed uint64
	CheckpointsTaken  uint64
	StableCheckpoints uint64
	StateTransfers    uint64
	PagesFetched      uint64
	// State-transfer observability (statefetch.go): LastTransferTime is the
	// wall clock of the last completed transfer that advanced execution
	// (re-targets extend the same transfer), TransferBytes counts page
	// bytes installed, FetchRetries counts per-item timeout rotations to a
	// new designated replier.
	LastTransferTime    time.Duration
	TransferBytes       uint64
	FetchRetries        uint64
	Recoveries          uint64
	RecoveriesCompleted uint64
	LastRecoveryTime    time.Duration
	MsgsDroppedBadAuth  uint64
	// InboxDrops counts datagrams lost to receive-queue overflow (the
	// attach handler's non-blocking enqueue, or ingress pipeline
	// saturation). It is maintained atomically outside the event loop.
	InboxDrops uint64
	// OutboxDrops counts sends lost to egress-pipeline saturation — the
	// send-side twin of InboxDrops. A dropped send is simply never
	// transmitted; retransmission recovers, like any datagram lost on the
	// wire. Zero when the egress pipeline is off (serial sends never drop).
	OutboxDrops uint64
	// ExecQueueDepth samples the stage-3 executor's command-queue depth at
	// snapshot time; ExecStalls counts event-loop dispatches that found
	// the queue full and had to block. Both zero when ExecPipeline is off.
	ExecQueueDepth uint64
	ExecStalls     uint64
	// PagesCopied / PagesDigested surface the checkpoint manager's
	// copy-on-write and digesting counters (§5.3, Table 8.12);
	// CkptDigestTime is the cumulative wall time spent taking checkpoints.
	PagesCopied    uint64
	PagesDigested  uint64
	CkptDigestTime time.Duration
	// Batching observability (§5.1.4, normalcase.go): BatchesProposed /
	// RequestsProposed count pre-prepares this primary issued and the
	// requests they carried; BatchFillAvg is their ratio at snapshot time.
	// BatchBytesTotal sums the op bytes proposed. BatchWaitFires counts
	// accumulate deadlines that expired and flushed a partial batch.
	// QueueDepth and BatchTarget sample the request queue length and the
	// adaptive fill target at snapshot time.
	BatchesProposed  uint64
	RequestsProposed uint64
	BatchFillAvg     float64
	BatchBytesTotal  uint64
	BatchWaitFires   uint64
	QueueDepth       uint64
	BatchTarget      uint64
	// Durability observability (durability.go, internal/wal): WALAppends /
	// WALFsyncs / WALBytes count records enqueued, group commits issued, and
	// frame bytes written; their ratio is the fsync batching factor.
	// ReplayTime is the wall time the last restart spent rebuilding state
	// from the log before going live.
	WALAppends uint64
	WALFsyncs  uint64
	WALBytes   uint64
	ReplayTime time.Duration
}

// execRecord remembers what executed at a sequence number so new-view
// processing can decide whether re-execution or rollback is needed.
type execRecord struct {
	digest    crypto.Digest
	tentative bool
}

// queuedRO pairs a queued read-only request with the execution frontier at
// its arrival: §5.1.3 delays the reply until every request whose effects
// the client could already have observed has COMMITTED, so the answer can
// never run behind a tentative write that was rolled back by a view change
// and recommitted later.
type queuedRO struct {
	req *message.Request
	// mark is lastExec at arrival; the reply may go out only once
	// lastCommitted has caught up to it (possibly in a later view).
	mark message.Seq
}

// Replica is one member of the replica group. Unless a field says
// otherwise, fields are owned by the event-loop goroutine; external access
// goes through control thunks. The shared carve-outs are immutable
// configuration, thread-safe crypto state, channels/atomics, and the
// pipelines, which are exactly what the worker closures and the executor's
// reply path touch.
//
// bftlint:owner=eventloop
// bftlint:longlived
type Replica struct {
	cfg Config         // bftlint:owner=shared (immutable after NewReplica)
	id  message.NodeID // bftlint:owner=shared
	n   int            // bftlint:owner=shared
	// bftlint:faultbound
	f   int        // bftlint:owner=shared
	dir *Directory // bftlint:owner=shared (internally locked)

	ks   *crypto.KeyStore // bftlint:owner=shared (copy-on-write snapshots)
	kp   crypto.KeyPair   // bftlint:owner=shared (immutable)
	auth verifier         // bftlint:owner=shared (reads ks/dir only)

	trans transport.Transport // bftlint:owner=shared (substrates are thread-safe)
	// inbox carries raw datagrams on the serial path; inboxV carries
	// decoded, pre-verified messages from the ingress pipeline. Exactly one
	// of the two is allocated, selected by cfg.Opt.Pipeline (the nil one's
	// event-loop case simply never fires).
	inbox      chan []byte       // bftlint:owner=shared
	inboxV     chan inbound      // bftlint:owner=shared
	pipe       *ingress.Pipeline // bftlint:owner=shared
	inboxDrops atomic.Uint64     // bftlint:owner=shared
	// out, when non-nil (cfg.Opt.EgressPipeline), seals and transmits
	// outbound messages off the event loop in send order.
	out   *egress.Pipeline // bftlint:owner=shared
	ctrl  chan func()      // bftlint:owner=shared
	stopC chan struct{}    // bftlint:owner=shared
	wg    sync.WaitGroup   // bftlint:owner=shared

	// Protocol state.
	view   message.View
	active bool // has new-view for view (or view 0)
	seqno  message.Seq

	log           *vlog.Log
	lastExec      message.Seq // highest executed (tentative or final)
	lastCommitted message.Seq // highest seq with all <= it committed+executed
	execRecords   map[message.Seq]execRecord

	// Execution state. On the serial path all four are event-loop-owned;
	// with cfg.Opt.ExecPipeline the region, service (its Execute), the
	// checkpoint manager, and the reply cache belong to the stage-3
	// executor goroutine (r.xs), and the event loop touches them only
	// inside execSync rendezvous. service's IsReadOnly / ProposeNonDet /
	// CheckNonDet stay callable from the event loop (see the
	// statemachine.Service contract).
	region  *statemachine.Region // bftlint:owner=executor
	service statemachine.Service // bftlint:owner=executor
	ckpt    *checkpoint.Manager  // bftlint:owner=executor

	replyCache *executor.ReplyCache // bftlint:owner=executor
	// xs is the staged-executor state; nil when ExecPipeline is off. The
	// pointer itself is shared (set once in NewReplica); ownership of the
	// fields behind it is declared on execState.
	xs *execState // bftlint:owner=shared

	// Checkpoint protocol.
	ckptVotes    map[message.Seq]map[message.NodeID]crypto.Digest
	pendingCkpts map[message.Seq]crypto.Digest // taken tentatively, msg unsent

	// Request queue (FIFO, one entry per client — §5.5 fairness) and the
	// primary's batch-assembly state (normalcase.go): batchTarget is the
	// adaptive fill target (AIMD between 1 and BatchRequests); batchDeadline
	// is the live accumulate deadline (zero = not armed) backed by
	// batchTimer, whose channel the event loop selects on.
	queue         requestQueue
	batchTarget   int
	batchDeadline time.Time
	batchTimer    *time.Timer
	roQueue       []queuedRO // read-only requests awaiting quiescence

	// Pre-prepares waiting for separately-transmitted request bodies.
	waitingPP map[message.Seq]*message.PrePrepare

	// View change state (viewchange.go).
	vc vcState

	// State transfer (statefetch.go).
	fetch fetchState

	// Recovery (recovery.go).
	rec recoveryState

	// Timers (deadline-polled from the tick loop).
	vcTimerDeadline time.Time // zero = stopped
	// vcTimerCommitted is lastCommitted when the deadline was last (re)set:
	// tentative-only waiting restarts the timer on commit progress.
	vcTimerCommitted message.Seq
	vcTimeout        time.Duration
	statusDeadline   time.Time
	keyDeadline      time.Time
	watchdogDeadline time.Time

	// Durability (durability.go): wal is the async group-commit log writer
	// (nil when durability is off); muted suppresses every send path while
	// the replica replays its log at startup or is being killed. The writer
	// handle is set once in NewReplica; Append/Barrier are called from the
	// event loop only.
	wal          *wal.Writer // bftlint:owner=shared
	muted        atomic.Bool // bftlint:owner=shared
	walRotated   uint64      // writer bytes at the last segment rotation; bftlint:owner=loop
	rekeyOnStart bool        // replayed from an existing log: re-announce in-keys (§4.3.1); bftlint:owner=loop
	keyRecs      keyRecords  // key-exchange records to re-log on rotation; bftlint:owner=loop

	rng     *rand.Rand
	metrics Metrics
	stopped bool
}

// Network is the attachment point replicas and clients need: the simulated
// network and the UDP book both provide it. The definition lives in
// internal/transport so every substrate shares it.
type Network = transport.Network

// inbound is one decoded message plus its authentication verdict and the
// key generation the verdict was computed under, produced by the ingress
// pipeline and consumed by the event loop.
type inbound struct {
	m   message.Message
	ok  bool
	gen uint64
}

// NewReplica constructs a replica. The service factory receives the region
// the library allocated so the service keeps all state inside it.
func NewReplica(cfg Config, dir *Directory, net Network,
	svc func(*statemachine.Region) statemachine.Service) *Replica {
	cfg.Validate()
	r := &Replica{
		cfg:          cfg,
		id:           cfg.ID,
		n:            cfg.N,
		f:            cfg.F(),
		dir:          dir,
		ks:           crypto.NewKeyStore(uint32(cfg.ID)),
		kp:           crypto.GenerateKeyPair(crypto.DeriveKey("replica-identity", uint64(cfg.ID))),
		ctrl:         make(chan func(), 64),
		stopC:        make(chan struct{}),
		view:         0,
		active:       true,
		log:          vlog.New(cfg.N, cfg.LogWindow),
		execRecords:  make(map[message.Seq]execRecord),
		replyCache:   executor.NewReplyCache(),
		ckptVotes:    make(map[message.Seq]map[message.NodeID]crypto.Digest),
		pendingCkpts: make(map[message.Seq]crypto.Digest),
		queue:        newRequestQueue(),
		batchTarget:  1,
		waitingPP:    make(map[message.Seq]*message.PrePrepare),
		rng:          rand.New(rand.NewPCG(uint64(cfg.Seed), uint64(cfg.ID))),
		vcTimeout:    cfg.ViewChangeTimeout,
	}
	r.batchTimer = time.NewTimer(time.Hour)
	r.batchTimer.Stop()
	r.region = statemachine.NewRegion(cfg.StateSize, cfg.PageSize)
	r.service = svc(r.region)
	r.ckpt = checkpoint.NewManager(r.region, cfg.Fanout)

	dir.Register(r.id, r.kp.Public)
	for i := 0; i < cfg.N; i++ {
		if message.NodeID(i) != r.id {
			r.ks.InstallInitial(uint32(i))
		}
	}
	r.initViewChangeState()
	r.initFetchState()
	r.initRecoveryState()

	r.auth = verifier{mode: cfg.Mode, dir: dir, ks: r.ks}
	if cfg.Opt.Pipeline {
		// Staged ingress: the transport handler fans datagrams across the
		// worker pool, which decodes and authenticates in parallel and
		// re-sequences results into arrival order before the event loop.
		r.inboxV = make(chan inbound, cfg.InboxCap)
		r.pipe = ingress.New(cfg.Opt.PipelineWorkers, cfg.InboxCap,
			ingress.VerifierFunc(r.auth.VerifyTagged),
			func(m message.Message, ok bool, gen uint64) {
				select {
				case r.inboxV <- inbound{m, ok, gen}:
				default: // inbox overflow models receive-buffer loss
					r.inboxDrops.Add(1)
				}
			})
		r.trans = net.Attach(r.id, func(p []byte) {
			if r.cfg.Behavior == Crashed {
				return // fail-stop: burn no worker cycles, like the serial path
			}
			if !r.pipe.Submit(p) {
				r.inboxDrops.Add(1)
			}
		})
	} else {
		r.inbox = make(chan []byte, cfg.InboxCap)
		r.trans = net.Attach(r.id, func(p []byte) {
			select {
			case r.inbox <- p:
			default: // inbox overflow models receive-buffer loss
				r.inboxDrops.Add(1)
			}
		})
	}
	if cfg.Opt.EgressPipeline {
		// Staged egress: the event loop submits (recipients, message) jobs;
		// workers marshal and authenticate against the same copy-on-write
		// key-store snapshots the ingress workers read, and the collector
		// hands wire buffers to the transport in send order.
		r.out = egress.New(cfg.Opt.EgressWorkers, cfg.InboxCap,
			&sealer{mode: cfg.Mode, n: cfg.N, ks: r.ks, kp: r.kp}, r.trans)
	}
	if cfg.Opt.ExecPipeline {
		// Stage 3: execution, checkpoint digesting, and reply construction
		// move onto the executor goroutine, which takes ownership of the
		// region, service execution, checkpoint manager, and reply cache.
		// Created last: its replies route through the egress pipeline or
		// the transport above.
		r.startExecutor()
	}
	// Durability last: replay needs the executor (state installs rendezvous
	// through it) and the muted send paths above.
	r.initWAL()
	return r
}

// Start launches the event loop.
func (r *Replica) Start() {
	r.wg.Add(1)
	now := time.Now()
	r.statusDeadline = now.Add(r.cfg.StatusInterval)
	if r.cfg.KeyRefreshInterval > 0 {
		r.keyDeadline = now.Add(r.cfg.KeyRefreshInterval)
	}
	if r.cfg.WatchdogInterval > 0 {
		// Stagger watchdogs so at most f replicas recover at once (§4.3.3).
		r.watchdogDeadline = now.Add(r.cfg.WatchdogInterval +
			time.Duration(r.id)*r.cfg.WatchdogInterval/time.Duration(r.n))
	}
	go r.run()
}

// Stop terminates the event loop and detaches from the network.
func (r *Replica) Stop() {
	select {
	case <-r.stopC:
		return // already stopped
	default:
	}
	close(r.stopC)
	r.wg.Wait()
	if r.xs != nil {
		// After the event loop (no more dispatchers), before the egress
		// pipeline and transport (in-flight replies route through them).
		r.xs.ex.Close()
	}
	if r.out != nil {
		r.out.Close() // before the transport: the collector transmits through it
	}
	if r.wal != nil {
		r.wal.Close() // clean shutdown flushes; only Kill abandons the tail
	}
	r.trans.Close()
	if r.pipe != nil {
		r.pipe.Close()
	}
}

// ID returns the replica id.
func (r *Replica) ID() message.NodeID { return r.id }

// do runs fn inside the event loop and waits for it (test/inspection hook).
func (r *Replica) do(fn func()) {
	done := make(chan struct{})
	select {
	case r.ctrl <- func() { fn(); close(done) }:
	case <-r.stopC:
		return
	}
	select {
	case <-done:
	case <-r.stopC:
	}
}

// Metrics returns a snapshot of the replica's counters.
func (r *Replica) Metrics() Metrics {
	var m Metrics
	r.do(func() {
		m = r.metrics
		m.QueueDepth = uint64(r.queue.Len())
		m.BatchTarget = uint64(r.batchTarget)
		if m.BatchesProposed > 0 {
			m.BatchFillAvg = float64(m.RequestsProposed) / float64(m.BatchesProposed)
		}
		if r.xs == nil {
			// Serial path: the manager is event-loop-owned, read directly.
			m.PagesCopied = r.ckpt.PagesCopied
			m.PagesDigested = r.ckpt.PagesDigested
		}
	})
	m.InboxDrops = r.inboxDrops.Load()
	if r.out != nil {
		m.OutboxDrops = r.out.Stats().Rejected
	}
	if r.xs != nil {
		s := r.xs.ex.Stats()
		m.ExecQueueDepth = uint64(s.Depth)
		m.ExecStalls = s.Stalls
		m.PagesCopied = s.PagesCopied
		m.PagesDigested = s.PagesDigested
		m.CkptDigestTime = s.CkptTime
	}
	if r.wal != nil {
		ws := r.wal.Stats()
		m.WALAppends = ws.Appends
		m.WALFsyncs = ws.Fsyncs
		m.WALBytes = ws.Bytes
	}
	return m
}

// View returns the replica's current view.
func (r *Replica) View() message.View {
	var v message.View
	r.do(func() { v = r.view })
	return v
}

// LastExecuted returns the highest executed sequence number.
func (r *Replica) LastExecuted() message.Seq {
	var s message.Seq
	r.do(func() { s = r.lastExec })
	return s
}

// LowWaterMark returns the last stable checkpoint sequence number.
func (r *Replica) LowWaterMark() message.Seq {
	var s message.Seq
	r.do(func() { s = r.log.Low() })
	return s
}

// StateDigest returns the live state root digest.
func (r *Replica) StateDigest() crypto.Digest {
	var d crypto.Digest
	r.do(func() { r.execSync(func() { d = r.ckpt.RootDigest() }) })
	return d
}

// InspectService calls fn with the replica's service instance while both
// the event loop and the executor are quiesced (read-only use in tests).
func (r *Replica) InspectService(fn func(statemachine.Service)) {
	r.do(func() { r.execSync(func() { fn(r.service) }) })
}

// CorruptStatePage simulates an attacker flipping state bytes behind the
// library's back; the state-checking pass of recovery must find it.
func (r *Replica) CorruptStatePage(page int) {
	r.do(func() { r.execSync(func() { r.ckpt.CorruptLivePage(page) }) })
}

const tickInterval = 2 * time.Millisecond

func (r *Replica) run() {
	defer r.wg.Done()
	if r.rekeyOnStart {
		// A restart loses every session key installed since boot (they are
		// deliberately volatile, §4.3.1), while peers that refreshed theirs
		// keep expecting them. Announce fresh in-keys so peers re-key toward
		// us; peers that rotated respond in kind (onNewKey) so we re-learn
		// theirs.
		r.rekeyOnStart = false
		r.refreshKeys()
	}
	ticker := time.NewTicker(tickInterval)
	defer ticker.Stop()
	// execEvC is the stage-3 executor's doorbell; nil (never ready) when
	// the executor is off.
	var execEvC chan struct{}
	if r.xs != nil {
		execEvC = r.xs.evC
	}
	for {
		select {
		case <-execEvC:
			for _, ev := range r.takeExecEvents() {
				r.onCkptTaken(ev)
			}
		case p := <-r.inbox:
			if r.cfg.Behavior == Crashed {
				continue
			}
			r.onRaw(p)
		case im := <-r.inboxV:
			if r.cfg.Behavior == Crashed {
				continue
			}
			if im.ok && im.gen != r.ks.Generation() {
				// Keys rotated after the worker verified (§4.3.2): the
				// verdict may rest on a stolen pre-refresh key, so
				// re-verify against the current generation. Refreshes are
				// rare, so this almost never runs.
				im.ok = r.verify(im.m)
			}
			r.onVerified(im.m, im.ok)
		case <-r.batchTimer.C:
			if r.cfg.Behavior == Crashed {
				continue
			}
			r.onBatchWait()
		case <-ticker.C:
			if r.cfg.Behavior == Crashed {
				continue
			}
			r.onTick(time.Now())
		case fn := <-r.ctrl:
			fn()
		case <-r.stopC:
			return
		}
	}
}

func (r *Replica) onTick(now time.Time) {
	if !r.vcTimerDeadline.IsZero() && now.After(r.vcTimerDeadline) {
		r.onViewChangeTimeout()
	}
	if now.After(r.statusDeadline) {
		r.statusDeadline = now.Add(r.cfg.StatusInterval)
		r.sendStatus()
	}
	if !r.keyDeadline.IsZero() && now.After(r.keyDeadline) {
		r.keyDeadline = now.Add(r.cfg.KeyRefreshInterval)
		r.refreshKeys()
	}
	if !r.watchdogDeadline.IsZero() && now.After(r.watchdogDeadline) {
		r.watchdogDeadline = now.Add(r.cfg.WatchdogInterval)
		r.startRecovery()
	}
	r.fetchTick(now)
	r.recoveryTick(now)
}

// onRaw decodes, authenticates, and dispatches one datagram — the serial
// ingress path, kept both as the pipeline-off baseline and for benchmarks.
func (r *Replica) onRaw(p []byte) {
	m, err := message.Unmarshal(p)
	if err != nil {
		return
	}
	r.onVerified(m, r.verify(m))
}

// onVerified dispatches one decoded message given its authentication
// verdict. It runs on the event loop whether the verdict came from the
// inline verify (serial path) or an ingress worker (pipelined path), so all
// protocol state stays single-threaded.
func (r *Replica) onVerified(m message.Message, ok bool) {
	if !ok {
		// A relayed view-change may carry a stale authenticator (its sender
		// refreshed keys or the relay is second-hand); §3.2.4 still lets us
		// accept it when its digest is pinned by a new-view certificate.
		if vc, isVC := m.(*message.ViewChange); isVC {
			r.onUnauthenticatedViewChange(vc)
			return
		}
		r.metrics.MsgsDroppedBadAuth++
		return
	}
	switch m := m.(type) {
	case *message.Request:
		r.onRequest(m)
	case *message.Reply:
		r.onRecoveryReply(m)
	case *message.PrePrepare:
		r.onPrePrepare(m)
	case *message.Prepare:
		r.onPrepare(m)
	case *message.Commit:
		r.onCommit(m)
	case *message.Checkpoint:
		r.onCheckpoint(m)
	case *message.ViewChange:
		r.onViewChange(m)
	case *message.ViewChangeAck:
		r.onViewChangeAck(m)
	case *message.NewView:
		r.onNewView(m)
	case *message.StatusActive:
		r.onStatusActive(m)
	case *message.StatusPending:
		r.onStatusPending(m)
	case *message.Fetch:
		r.onFetch(m)
	case *message.MetaData:
		r.onMetaData(m)
	case *message.Data:
		r.onData(m)
	case *message.NewKey:
		r.onNewKey(m)
	case *message.QueryStable:
		r.onQueryStable(m)
	case *message.ReplyStable:
		r.onReplyStable(m)
	case *message.BatchFetch:
		r.onBatchFetch(m)
	case *message.BatchBody:
		r.onBatchBody(m)
	}
}

// primary returns the primary of view v.
func (r *Replica) primary(v message.View) message.NodeID { return r.dir.Primary(v) }

// isPrimary reports whether this replica is the primary of its current view.
func (r *Replica) isPrimary() bool { return r.primary(r.view) == r.id }

// replicaIDs returns all replica ids (multicast destination set).
func (r *Replica) replicaIDs() []message.NodeID { return r.dir.ReplicaIDs() }

// ---------------------------------------------------------------------------
// Authentication
// ---------------------------------------------------------------------------

// signIfPK signs the message in BFT-PK mode; returns true if it handled it.
//
// bftlint:owner=shared (kp is immutable; mutates only the message)
func (r *Replica) signIfPK(m message.Message) bool {
	if r.cfg.Mode != ModePK {
		return false
	}
	*m.AuthTrailer() = message.Auth{Kind: message.AuthSig, Sig: r.kp.Sign(m.Payload())}
	return true
}

// authMulticast attaches a group authenticator (or a signature in PK mode).
func (r *Replica) authMulticast(m message.Message) {
	if r.signIfPK(m) {
		return
	}
	*m.AuthTrailer() = message.Auth{
		Kind:   message.AuthVector,
		Vector: r.ks.MakeAuthenticator(r.n, m.Payload()),
	}
}

// authPoint attaches a single MAC for dst (or a signature in PK mode).
// Shared: the executor's reply path seals through it off the event loop.
//
// bftlint:owner=shared
func (r *Replica) authPoint(m message.Message, dst message.NodeID) {
	if r.signIfPK(m) {
		return
	}
	r.ensurePeerKeys(dst)
	*m.AuthTrailer() = message.Auth{
		Kind: message.AuthMAC,
		MAC:  r.ks.ComputePointMAC(uint32(dst), m.Payload()),
	}
}

// authSigned always signs (new-key, recovery requests) via the simulated
// secure co-processor.
func (r *Replica) authSigned(m message.Message) {
	*m.AuthTrailer() = message.Auth{Kind: message.AuthSig, Sig: r.kp.Sign(m.Payload())}
}

// ensurePeerKeys lazily installs the administrator-distributed initial keys
// for a principal first seen now (clients appear dynamically).
//
// bftlint:owner=shared (key store is internally synchronized)
func (r *Replica) ensurePeerKeys(peer message.NodeID) { r.auth.ensurePeerKeys(peer) }

// verifySig checks a signature trailer against the directory.
func (r *Replica) verifySig(m message.Message) bool { return r.auth.verifySig(m) }

// verify authenticates an inbound message according to mode and type. The
// logic lives in verifier so ingress workers share it.
func (r *Replica) verify(m message.Message) bool { return r.auth.Verify(m) }

// ---------------------------------------------------------------------------
// Sending
// ---------------------------------------------------------------------------

// multicastReplicas authenticates and multicasts m to the whole group. On
// the pipelined path the message body must not be mutated after this call
// (egress workers read it concurrently); every caller builds or re-seals a
// body that is immutable from here on.
//
// bftlint:send
func (r *Replica) multicastReplicas(m message.Message) {
	if r.muted.Load() {
		return // WAL replay / kill: nothing may reach the network
	}
	r.behaviorMangle(m)
	if r.out != nil {
		// An outbox-overflow drop here loses the multicast like a dropped
		// datagram; status retransmission recovers (§5.2) and the pipeline
		// counts it in Metrics.OutboxDrops.
		r.out.Multicast(r.replicaIDs(), m, egress.Vector)
		return
	}
	r.authMulticast(m)
	r.trans.Multicast(r.replicaIDs(), m.Marshal())
}

// sendTo authenticates point-to-point and sends m to dst.
//
// bftlint:send
func (r *Replica) sendTo(dst message.NodeID, m message.Message) {
	if r.muted.Load() {
		return
	}
	r.behaviorMangle(m)
	if r.out != nil {
		r.out.Send(dst, m, egress.Point)
		return
	}
	r.authPoint(m, dst)
	r.trans.Send(dst, m.Marshal())
}

// sendRaw sends an already-authenticated message (retransmissions of stored
// messages keep their original authenticators so relays work). The bytes
// are captured on the event loop — the stored trailer is event-loop-owned —
// and ride the egress pipeline as-is so send order is preserved.
//
// bftlint:send
func (r *Replica) sendRaw(dst message.NodeID, m message.Message) {
	if r.muted.Load() {
		return
	}
	if r.out != nil {
		r.out.SendRaw(dst, m.Marshal())
		return
	}
	r.trans.Send(dst, m.Marshal())
}

// resendOwn retransmits a message this replica authored, re-sealed with a
// fresh group authenticator under the CURRENT keys, to a single peer (§5.2:
// stored authenticators go stale across key refreshes, so each replica only
// retransmits messages it originally sent, freshly authenticated). On the
// pipelined path the trailer of a stored message object is never populated
// — sealing happens in the wire buffer — so retransmission must always
// re-seal rather than replay the object's trailer.
//
// bftlint:send
func (r *Replica) resendOwn(dst message.NodeID, m message.Message) {
	if r.muted.Load() {
		return
	}
	r.behaviorMangle(m)
	if r.out != nil {
		r.out.Send(dst, m, egress.Vector)
		return
	}
	r.authMulticast(m)
	r.trans.Send(dst, m.Marshal())
}

// multicastSigned signs m (via the simulated secure co-processor) and
// multicasts it to the whole group — new-key announcements (§4.3.1).
//
// bftlint:send
func (r *Replica) multicastSigned(m message.Message) {
	if r.muted.Load() {
		return
	}
	if r.out != nil {
		r.out.Multicast(r.replicaIDs(), m, egress.Sign)
		return
	}
	r.authSigned(m)
	r.trans.Multicast(r.replicaIDs(), m.Marshal())
}

// multicastRawBytes ships pre-encoded bytes to the whole group, ordered
// with the sealed traffic (recovery-request retransmission keeps the exact
// signed encoding, §4.3.2).
//
// bftlint:send
func (r *Replica) multicastRawBytes(raw []byte) {
	if r.muted.Load() {
		return
	}
	if r.out != nil {
		r.out.MulticastRaw(r.replicaIDs(), raw)
		return
	}
	r.trans.Multicast(r.replicaIDs(), raw)
}

// behaviorMangle applies fault-injection personalities to outgoing traffic.
//
// bftlint:owner=shared (reads cfg, mutates only the message)
func (r *Replica) behaviorMangle(m message.Message) {
	switch r.cfg.Behavior {
	case CorruptDigest:
		switch mm := m.(type) {
		case *message.Prepare:
			mm.Digest[0] ^= 0xFF
		case *message.Commit:
			mm.Digest[0] ^= 0xFF
		}
	case WrongResult:
		if rep, ok := m.(*message.Reply); ok {
			if len(rep.Result) > 0 {
				// Flip a copy: Result aliases the reply cache's backing
				// array, which the event loop reuses for retransmissions
				// while an egress worker may still be encoding this reply.
				rep.Result = append([]byte(nil), rep.Result...)
				rep.Result[0] ^= 0xFF
			}
			rep.ResultDigest[0] ^= 0xFF
		}
	}
}
