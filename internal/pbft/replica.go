package pbft

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/crypto"
	"repro/internal/message"
	"repro/internal/simnet"
	"repro/internal/statemachine"
	"repro/internal/vlog"
)

// Metrics counts protocol events at one replica.
type Metrics struct {
	RequestsExecuted    uint64
	BatchesExecuted     uint64
	TentativeExecs      uint64
	Rollbacks           uint64
	ViewChanges         uint64 // view changes this replica initiated or joined
	NewViewsProcessed   uint64
	CheckpointsTaken    uint64
	StableCheckpoints   uint64
	StateTransfers      uint64
	PagesFetched        uint64
	Recoveries          uint64
	RecoveriesCompleted uint64
	LastRecoveryTime    time.Duration
	MsgsDroppedBadAuth  uint64
}

type cachedReply struct {
	timestamp uint64
	result    []byte
	tentative bool
}

// execRecord remembers what executed at a sequence number so new-view
// processing can decide whether re-execution or rollback is needed.
type execRecord struct {
	digest    crypto.Digest
	tentative bool
}

// Replica is one member of the replica group. All fields are owned by the
// event-loop goroutine; external access goes through control thunks.
type Replica struct {
	cfg Config
	id  message.NodeID
	n   int
	f   int
	dir *Directory

	ks *crypto.KeyStore
	kp crypto.KeyPair

	trans simnet.Transport
	inbox chan []byte
	ctrl  chan func()
	stopC chan struct{}
	wg    sync.WaitGroup

	// Protocol state.
	view   message.View
	active bool // has new-view for view (or view 0)
	seqno  message.Seq

	log           *vlog.Log
	lastExec      message.Seq // highest executed (tentative or final)
	lastCommitted message.Seq // highest seq with all <= it committed+executed
	execRecords   map[message.Seq]execRecord

	region  *statemachine.Region
	service statemachine.Service
	ckpt    *checkpoint.Manager

	replyCache map[message.NodeID]*cachedReply

	// Checkpoint protocol.
	ckptVotes    map[message.Seq]map[message.NodeID]crypto.Digest
	pendingCkpts map[message.Seq]crypto.Digest // taken tentatively, msg unsent

	// Request queue (FIFO, one entry per client — §5.5 fairness).
	queue       []crypto.Digest
	queuedByCli map[message.NodeID]crypto.Digest
	roQueue     []*message.Request // read-only requests awaiting quiescence

	// Pre-prepares waiting for separately-transmitted request bodies.
	waitingPP map[message.Seq]*message.PrePrepare

	// View change state (viewchange.go).
	vc vcState

	// State transfer (statefetch.go).
	fetch fetchState

	// Recovery (recovery.go).
	rec recoveryState

	// Timers (deadline-polled from the tick loop).
	vcTimerDeadline  time.Time // zero = stopped
	vcTimeout        time.Duration
	statusDeadline   time.Time
	keyDeadline      time.Time
	watchdogDeadline time.Time

	rng     *rand.Rand
	metrics Metrics
	stopped bool
}

// Network is the attachment point replicas and clients need: the simulated
// network and the UDP book both provide it.
type Network interface {
	Attach(id message.NodeID, h simnet.Handler) simnet.Transport
}

// NewReplica constructs a replica. The service factory receives the region
// the library allocated so the service keeps all state inside it.
func NewReplica(cfg Config, dir *Directory, net Network,
	svc func(*statemachine.Region) statemachine.Service) *Replica {
	cfg.Validate()
	r := &Replica{
		cfg:          cfg,
		id:           cfg.ID,
		n:            cfg.N,
		f:            cfg.F(),
		dir:          dir,
		ks:           crypto.NewKeyStore(uint32(cfg.ID)),
		kp:           crypto.GenerateKeyPair(crypto.DeriveKey("replica-identity", uint64(cfg.ID))),
		inbox:        make(chan []byte, 8192),
		ctrl:         make(chan func(), 64),
		stopC:        make(chan struct{}),
		view:         0,
		active:       true,
		log:          vlog.New(cfg.N, cfg.LogWindow),
		execRecords:  make(map[message.Seq]execRecord),
		replyCache:   make(map[message.NodeID]*cachedReply),
		ckptVotes:    make(map[message.Seq]map[message.NodeID]crypto.Digest),
		pendingCkpts: make(map[message.Seq]crypto.Digest),
		queuedByCli:  make(map[message.NodeID]crypto.Digest),
		waitingPP:    make(map[message.Seq]*message.PrePrepare),
		rng:          rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.ID)<<32)),
		vcTimeout:    cfg.ViewChangeTimeout,
	}
	r.region = statemachine.NewRegion(cfg.StateSize, cfg.PageSize)
	r.service = svc(r.region)
	r.ckpt = checkpoint.NewManager(r.region, cfg.Fanout)

	dir.Register(r.id, r.kp.Public)
	for i := 0; i < cfg.N; i++ {
		if message.NodeID(i) != r.id {
			r.ks.InstallInitial(uint32(i))
		}
	}
	r.initViewChangeState()
	r.initFetchState()
	r.initRecoveryState()

	r.trans = net.Attach(r.id, func(p []byte) {
		select {
		case r.inbox <- p:
		default: // inbox overflow models receive-buffer loss
		}
	})
	return r
}

// Start launches the event loop.
func (r *Replica) Start() {
	r.wg.Add(1)
	now := time.Now()
	r.statusDeadline = now.Add(r.cfg.StatusInterval)
	if r.cfg.KeyRefreshInterval > 0 {
		r.keyDeadline = now.Add(r.cfg.KeyRefreshInterval)
	}
	if r.cfg.WatchdogInterval > 0 {
		// Stagger watchdogs so at most f replicas recover at once (§4.3.3).
		r.watchdogDeadline = now.Add(r.cfg.WatchdogInterval +
			time.Duration(r.id)*r.cfg.WatchdogInterval/time.Duration(r.n))
	}
	go r.run()
}

// Stop terminates the event loop and detaches from the network.
func (r *Replica) Stop() {
	select {
	case <-r.stopC:
		return // already stopped
	default:
	}
	close(r.stopC)
	r.wg.Wait()
	r.trans.Close()
}

// ID returns the replica id.
func (r *Replica) ID() message.NodeID { return r.id }

// do runs fn inside the event loop and waits for it (test/inspection hook).
func (r *Replica) do(fn func()) {
	done := make(chan struct{})
	select {
	case r.ctrl <- func() { fn(); close(done) }:
	case <-r.stopC:
		return
	}
	select {
	case <-done:
	case <-r.stopC:
	}
}

// Metrics returns a snapshot of the replica's counters.
func (r *Replica) Metrics() Metrics {
	var m Metrics
	r.do(func() { m = r.metrics })
	return m
}

// View returns the replica's current view.
func (r *Replica) View() message.View {
	var v message.View
	r.do(func() { v = r.view })
	return v
}

// LastExecuted returns the highest executed sequence number.
func (r *Replica) LastExecuted() message.Seq {
	var s message.Seq
	r.do(func() { s = r.lastExec })
	return s
}

// LowWaterMark returns the last stable checkpoint sequence number.
func (r *Replica) LowWaterMark() message.Seq {
	var s message.Seq
	r.do(func() { s = r.log.Low() })
	return s
}

// StateDigest returns the live state root digest.
func (r *Replica) StateDigest() crypto.Digest {
	var d crypto.Digest
	r.do(func() { d = r.ckpt.RootDigest() })
	return d
}

// InspectService calls fn with the replica's service instance inside the
// event loop (read-only use in tests).
func (r *Replica) InspectService(fn func(statemachine.Service)) {
	r.do(func() { fn(r.service) })
}

// CorruptStatePage simulates an attacker flipping state bytes behind the
// library's back; the state-checking pass of recovery must find it.
func (r *Replica) CorruptStatePage(page int) {
	r.do(func() { r.ckpt.CorruptLivePage(page) })
}

const tickInterval = 2 * time.Millisecond

func (r *Replica) run() {
	defer r.wg.Done()
	ticker := time.NewTicker(tickInterval)
	defer ticker.Stop()
	for {
		select {
		case p := <-r.inbox:
			if r.cfg.Behavior == Crashed {
				continue
			}
			r.onRaw(p)
		case <-ticker.C:
			if r.cfg.Behavior == Crashed {
				continue
			}
			r.onTick(time.Now())
		case fn := <-r.ctrl:
			fn()
		case <-r.stopC:
			return
		}
	}
}

func (r *Replica) onTick(now time.Time) {
	if !r.vcTimerDeadline.IsZero() && now.After(r.vcTimerDeadline) {
		r.onViewChangeTimeout()
	}
	if now.After(r.statusDeadline) {
		r.statusDeadline = now.Add(r.cfg.StatusInterval)
		r.sendStatus()
	}
	if !r.keyDeadline.IsZero() && now.After(r.keyDeadline) {
		r.keyDeadline = now.Add(r.cfg.KeyRefreshInterval)
		r.refreshKeys()
	}
	if !r.watchdogDeadline.IsZero() && now.After(r.watchdogDeadline) {
		r.watchdogDeadline = now.Add(r.cfg.WatchdogInterval)
		r.startRecovery()
	}
	r.fetchTick(now)
	r.recoveryTick(now)
}

// onRaw decodes, authenticates, and dispatches one datagram.
func (r *Replica) onRaw(p []byte) {
	m, err := message.Unmarshal(p)
	if err != nil {
		return
	}
	if !r.verify(m) {
		// A relayed view-change may carry a stale authenticator (its sender
		// refreshed keys or the relay is second-hand); §3.2.4 still lets us
		// accept it when its digest is pinned by a new-view certificate.
		if vc, ok := m.(*message.ViewChange); ok {
			r.onUnauthenticatedViewChange(vc)
			return
		}
		r.metrics.MsgsDroppedBadAuth++
		return
	}
	switch m := m.(type) {
	case *message.Request:
		r.onRequest(m)
	case *message.Reply:
		r.onRecoveryReply(m)
	case *message.PrePrepare:
		r.onPrePrepare(m)
	case *message.Prepare:
		r.onPrepare(m)
	case *message.Commit:
		r.onCommit(m)
	case *message.Checkpoint:
		r.onCheckpoint(m)
	case *message.ViewChange:
		r.onViewChange(m)
	case *message.ViewChangeAck:
		r.onViewChangeAck(m)
	case *message.NewView:
		r.onNewView(m)
	case *message.StatusActive:
		r.onStatusActive(m)
	case *message.StatusPending:
		r.onStatusPending(m)
	case *message.Fetch:
		r.onFetch(m)
	case *message.MetaData:
		r.onMetaData(m)
	case *message.Data:
		r.onData(m)
	case *message.NewKey:
		r.onNewKey(m)
	case *message.QueryStable:
		r.onQueryStable(m)
	case *message.ReplyStable:
		r.onReplyStable(m)
	case *message.BatchFetch:
		r.onBatchFetch(m)
	case *message.BatchBody:
		r.onBatchBody(m)
	}
}

// primary returns the primary of view v.
func (r *Replica) primary(v message.View) message.NodeID { return r.dir.Primary(v) }

// isPrimary reports whether this replica is the primary of its current view.
func (r *Replica) isPrimary() bool { return r.primary(r.view) == r.id }

// replicaIDs returns all replica ids (multicast destination set).
func (r *Replica) replicaIDs() []message.NodeID { return r.dir.ReplicaIDs() }

// ---------------------------------------------------------------------------
// Authentication
// ---------------------------------------------------------------------------

// signIfPK signs the message in BFT-PK mode; returns true if it handled it.
func (r *Replica) signIfPK(m message.Message) bool {
	if r.cfg.Mode != ModePK {
		return false
	}
	*m.AuthTrailer() = message.Auth{Kind: message.AuthSig, Sig: r.kp.Sign(m.Payload())}
	return true
}

// authMulticast attaches a group authenticator (or a signature in PK mode).
func (r *Replica) authMulticast(m message.Message) {
	if r.signIfPK(m) {
		return
	}
	*m.AuthTrailer() = message.Auth{
		Kind:   message.AuthVector,
		Vector: r.ks.MakeAuthenticator(r.n, m.Payload()),
	}
}

// authPoint attaches a single MAC for dst (or a signature in PK mode).
func (r *Replica) authPoint(m message.Message, dst message.NodeID) {
	if r.signIfPK(m) {
		return
	}
	r.ensurePeerKeys(dst)
	*m.AuthTrailer() = message.Auth{
		Kind: message.AuthMAC,
		MAC:  r.ks.ComputePointMAC(uint32(dst), m.Payload()),
	}
}

// authSigned always signs (new-key, recovery requests) via the simulated
// secure co-processor.
func (r *Replica) authSigned(m message.Message) {
	*m.AuthTrailer() = message.Auth{Kind: message.AuthSig, Sig: r.kp.Sign(m.Payload())}
}

// ensurePeerKeys lazily installs the administrator-distributed initial keys
// for a principal first seen now (clients appear dynamically).
func (r *Replica) ensurePeerKeys(peer message.NodeID) {
	if k, _ := r.ks.OutKey(uint32(peer)); k == nil {
		r.ks.InstallInitial(uint32(peer))
	}
}

// verifySig checks a signature trailer against the directory.
func (r *Replica) verifySig(m message.Message) bool {
	a := m.AuthTrailer()
	if a.Kind != message.AuthSig {
		return false
	}
	pub, ok := r.dir.PublicKey(m.Sender())
	if !ok {
		return false
	}
	return crypto.Verify(pub, m.Payload(), a.Sig)
}

// verify authenticates an inbound message according to mode and type.
func (r *Replica) verify(m message.Message) bool {
	sender := m.Sender()
	a := m.AuthTrailer()

	switch m.(type) {
	case *message.Data, *message.BatchBody:
		// Content-addressed: verified against known digests (§5.3.2).
		return true
	case *message.NewKey:
		return r.verifySig(m)
	}

	if req, ok := m.(*message.Request); ok && req.Recovery() {
		return r.verifySig(m) // recovery requests are co-processor signed
	}

	if r.cfg.Mode == ModePK {
		return r.verifySig(m)
	}

	switch a.Kind {
	case message.AuthVector:
		r.ensurePeerKeys(sender)
		return r.ks.CheckAuthenticator(uint32(sender), m.Payload(), a.Vector)
	case message.AuthMAC:
		r.ensurePeerKeys(sender)
		return r.ks.CheckPointMAC(uint32(sender), m.Payload(), a.MAC)
	default:
		return false
	}
}

// ---------------------------------------------------------------------------
// Sending
// ---------------------------------------------------------------------------

// multicastReplicas authenticates and multicasts m to the whole group.
func (r *Replica) multicastReplicas(m message.Message) {
	r.behaviorMangle(m)
	r.authMulticast(m)
	r.trans.Multicast(r.replicaIDs(), m.Marshal())
}

// sendTo authenticates point-to-point and sends m to dst.
func (r *Replica) sendTo(dst message.NodeID, m message.Message) {
	r.behaviorMangle(m)
	r.authPoint(m, dst)
	r.trans.Send(dst, m.Marshal())
}

// sendRaw sends an already-authenticated message (retransmissions of stored
// messages keep their original authenticators so relays work).
func (r *Replica) sendRaw(dst message.NodeID, m message.Message) {
	r.trans.Send(dst, m.Marshal())
}

// behaviorMangle applies fault-injection personalities to outgoing traffic.
func (r *Replica) behaviorMangle(m message.Message) {
	switch r.cfg.Behavior {
	case CorruptDigest:
		switch mm := m.(type) {
		case *message.Prepare:
			mm.Digest[0] ^= 0xFF
		case *message.Commit:
			mm.Digest[0] ^= 0xFF
		}
	case WrongResult:
		if rep, ok := m.(*message.Reply); ok {
			if len(rep.Result) > 0 {
				rep.Result[0] ^= 0xFF
			}
			rep.ResultDigest[0] ^= 0xFF
		}
	}
}
