package pbft

import (
	"fmt"
	"path/filepath"
	"sync"

	"repro/internal/message"
	"repro/internal/simnet"
	"repro/internal/statemachine"
)

// Cluster wires n replicas and any number of clients onto one network. It
// exists so tests, examples, and the benchmark harness share the same setup
// path.
type Cluster struct {
	Net      *simnet.Network
	Dir      *Directory
	Replicas []*Replica

	template  Config
	svc       func(*statemachine.Region) statemachine.Service
	behaviors map[message.NodeID]Behavior

	mu         sync.Mutex
	clients    []*Client
	nextClient message.NodeID
	ownsNet    bool
}

// NewCluster builds n replicas from the template config (ID/N are filled
// in), each with its own service instance from svc. behaviors, when non-nil,
// overrides the fault personality per replica.
func NewCluster(net *simnet.Network, template Config, n int,
	svc func(*statemachine.Region) statemachine.Service,
	behaviors map[message.NodeID]Behavior) *Cluster {

	template.N = n
	template.Validate()
	c := &Cluster{
		Net:        net,
		Dir:        NewDirectory(n),
		template:   template,
		svc:        svc,
		behaviors:  behaviors,
		nextClient: message.ClientIDBase,
	}
	for i := 0; i < n; i++ {
		c.Replicas = append(c.Replicas, NewReplica(c.replicaConfig(i), c.Dir, net, svc))
	}
	return c
}

// replicaConfig derives replica i's config from the template: ID, fault
// personality, and — when the template names a WAL directory — a private
// per-replica subdirectory (replicas must never share a log).
func (c *Cluster) replicaConfig(i int) Config {
	cfg := c.template
	cfg.ID = message.NodeID(i)
	if c.behaviors != nil {
		if b, ok := c.behaviors[cfg.ID]; ok {
			cfg.Behavior = b
		}
	}
	if cfg.WALDir != "" {
		cfg.WALDir = filepath.Join(cfg.WALDir, fmt.Sprintf("r%d", i))
	}
	return cfg
}

// NewLocalCluster creates a zero-latency in-process cluster (the common
// configuration for tests and micro-benchmarks).
func NewLocalCluster(n int, template Config,
	svc func(*statemachine.Region) statemachine.Service,
	behaviors map[message.NodeID]Behavior) *Cluster {
	net := simnet.New(simnet.WithSeed(template.Seed + 7))
	c := NewCluster(net, template, n, svc, behaviors)
	c.ownsNet = true
	return c
}

// Start launches every replica.
func (c *Cluster) Start() {
	for _, r := range c.Replicas {
		r.Start()
	}
}

// Stop stops replicas and clients and, if the cluster owns the network,
// shuts it down.
func (c *Cluster) Stop() {
	for _, r := range c.Replicas {
		r.Stop()
	}
	c.mu.Lock()
	clients := c.clients
	c.clients = nil
	c.mu.Unlock()
	for _, cl := range clients {
		cl.Close()
	}
	if c.ownsNet {
		c.Net.Close()
	}
}

// NewClient attaches a fresh client to the cluster.
func (c *Cluster) NewClient() *Client {
	c.mu.Lock()
	id := c.nextClient
	c.nextClient++
	c.mu.Unlock()
	cl := NewClient(id, c.Dir, c.Net, c.template.Mode, c.template.Opt)
	c.mu.Lock()
	c.clients = append(c.clients, cl)
	c.mu.Unlock()
	return cl
}

// Kill crashes replica i without flushing: pending WAL frames are abandoned
// exactly as a power failure would abandon them. The replica stops sending
// and receiving; the rest of the cluster keeps running.
func (c *Cluster) Kill(i int) {
	c.Replicas[i].Kill()
}

// Restart replaces a stopped or killed replica i with a fresh instance built
// from the same per-replica config. With a WAL directory configured the new
// instance replays its durable log before rejoining; without one it comes
// back empty and relies on state transfer. The replica is started before
// Restart returns.
func (c *Cluster) Restart(i int) *Replica {
	r := NewReplica(c.replicaConfig(i), c.Dir, c.Net, c.svc)
	c.Replicas[i] = r
	r.Start()
	return r
}

// Replica returns replica i.
func (c *Cluster) Replica(i int) *Replica { return c.Replicas[i] }

// N returns the group size.
func (c *Cluster) N() int { return len(c.Replicas) }

// F returns the fault threshold.
func (c *Cluster) F() int { return (len(c.Replicas) - 1) / 3 }
