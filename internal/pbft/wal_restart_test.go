package pbft

import (
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kvservice"
	"repro/internal/message"
	"repro/internal/statemachine"
)

// durableConfig is testConfig with a file-backed WAL rooted at a fresh
// temporary directory (one subdirectory per replica, created by the
// cluster) and a small window so crashes land both inside and across
// checkpoint intervals.
func durableConfig(t testing.TB) Config {
	cfg := testConfig()
	cfg.CheckpointInterval = 4
	cfg.LogWindow = 8
	cfg.WALDir = t.TempDir()
	// Rotate at every stable checkpoint regardless of segment size, so
	// these tests exercise the snapshot-plus-tail replay path and not just
	// the long-tail one.
	cfg.WALRotateBytes = 1
	return cfg
}

// flushWAL forces replica i's pending log frames to disk so a subsequent
// Kill models "crash after the fsync window", making the replayed state
// deterministic for assertions.
func flushWAL(c *Cluster, i int) {
	if w := c.Replica(i).wal; w != nil {
		w.Barrier()
	}
}

// TestRestartSurvivesKillMidBatch crashes a backup with agreement traffic
// in flight, keeps the load flowing on the surviving quorum, restarts the
// victim from its log, and requires full convergence with exactly-once
// semantics: the final counter is bounded by the loader's successful and
// attempted operations and identical on every replica.
func TestRestartSurvivesKillMidBatch(t *testing.T) {
	c := newTestCluster(t, 4, durableConfig(t), nil)
	cl := c.NewClient()

	var successes, attempts atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	loader := c.NewClient()
	loader.MaxRetries = 60
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			attempts.Add(1)
			if _, err := loader.Invoke(kvservice.Incr(), false); err == nil {
				successes.Add(1)
			}
		}
	}()

	waitUntil(t, 10*time.Second, "initial progress", func() bool {
		return counterAt(c, 0) >= 10
	})
	c.Kill(1) // mid-batch: the loader never pauses

	waitUntil(t, 10*time.Second, "liveness with a dead backup", func() bool {
		return counterAt(c, 0) >= 30
	})

	restart := time.Now()
	c.Restart(1)
	waitUntil(t, 20*time.Second, "restarted replica catches up", func() bool {
		return counterAt(c, 1) >= 30
	})
	t.Logf("restart-to-caught-up: %v (replay %v)",
		time.Since(restart), c.Replica(1).Metrics().ReplayTime)

	close(stop)
	<-done

	// One more agreed operation, then every replica must hold the same
	// counter, and that counter must equal some prefix of the loader's
	// attempts: at least every acknowledged op, at most every attempt
	// (an op whose ack was lost may still have executed — once).
	mustInvoke(t, cl, kvservice.Incr(), false)
	waitUntil(t, 10*time.Second, "counters converge", func() bool {
		v := counterAt(c, 0)
		return counterAt(c, 1) == v && counterAt(c, 2) == v && counterAt(c, 3) == v
	})
	got := counterAt(c, 1)
	lo, hi := successes.Load()+1, attempts.Load()+1
	if got < lo || got > hi {
		t.Fatalf("counter %d outside exactly-once bounds [%d, %d]", got, lo, hi)
	}
}

// TestRestartPreservesReplyCache quiesces the cluster, flushes the victim's
// log, kills and restarts it, and requires the WAL replay alone (no state
// transfer, no help from peers) to restore both the application state and
// the client's cached reply — the mechanism that makes a retransmitted
// request return its old answer instead of executing twice.
func TestRestartPreservesReplyCache(t *testing.T) {
	c := newTestCluster(t, 4, durableConfig(t), nil)
	cl := c.NewClient()
	const ops = 6
	for i := 0; i < ops; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}
	waitUntil(t, 5*time.Second, "victim executes everything", func() bool {
		return counterAt(c, 1) == ops
	})
	flushWAL(c, 1)
	c.Kill(1)

	r := c.Restart(1)
	if r.Metrics().ReplayTime <= 0 {
		t.Fatalf("restart did not replay a log")
	}
	var counter uint64
	var cachedTS uint64
	var cachedResult []byte
	r.InspectService(func(s statemachine.Service) {
		counter = kvservice.DecodeU64(s.Execute(message.ClientIDBase+9999, kvservice.Get(), nil))
		// Loop and executor are quiesced here; the cache is safe to read.
		if cr := r.replyCache.Get(message.ClientIDBase); cr != nil {
			cachedTS = cr.Timestamp
			cachedResult = append([]byte(nil), cr.Result...)
		}
	})
	if counter != ops {
		t.Fatalf("replayed counter = %d, want %d", counter, ops)
	}
	if cachedTS == 0 {
		t.Fatalf("reply cache lost across restart")
	}
	if got := kvservice.DecodeU64(cachedResult); got != ops {
		t.Fatalf("cached reply = %d, want %d", got, ops)
	}

	// The restored replica participates in new agreements immediately and
	// nothing was double-applied.
	mustInvoke(t, cl, kvservice.Incr(), false)
	waitUntil(t, 10*time.Second, "post-restart convergence", func() bool {
		v := counterAt(c, 0)
		return v == ops+1 && counterAt(c, 1) == v && counterAt(c, 2) == v && counterAt(c, 3) == v
	})
}

// TestRestartSurvivesKillMidCheckpoint crashes just past a stable
// checkpoint boundary, so recovery must stitch a snapshot AND a record
// tail together: replay installs the checkpoint, re-executes the suffix,
// and the replica rejoins without divergence.
func TestRestartSurvivesKillMidCheckpoint(t *testing.T) {
	c := newTestCluster(t, 4, durableConfig(t), nil)
	cl := c.NewClient()
	const ops = 18 // stable checkpoints at 4, 8, 12, 16; records 17-18 in the tail
	for i := 0; i < ops; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}
	waitUntil(t, 5*time.Second, "victim executes everything", func() bool {
		return counterAt(c, 1) == uint64(ops)
	})
	waitUntil(t, 5*time.Second, "victim collects a stable checkpoint", func() bool {
		return c.Replica(1).LowWaterMark() >= 16
	})
	flushWAL(c, 1)
	c.Kill(1)

	r := c.Restart(1)
	var counter uint64
	r.InspectService(func(s statemachine.Service) {
		counter = kvservice.DecodeU64(s.Execute(message.ClientIDBase+9999, kvservice.Get(), nil))
	})
	if counter != ops {
		t.Fatalf("replayed counter = %d, want %d", counter, ops)
	}
	if r.LowWaterMark() < 16 {
		t.Fatalf("low water mark %d did not survive restart", r.LowWaterMark())
	}

	mustInvoke(t, cl, kvservice.Incr(), false)
	waitUntil(t, 10*time.Second, "post-restart convergence", func() bool {
		v := counterAt(c, 0)
		return v == ops+1 && counterAt(c, 1) == v && counterAt(c, 2) == v && counterAt(c, 3) == v
	})
}

// TestRestartLongTailReplay restarts from a log that was never rotated
// (the default size threshold is far above what 18 tiny ops write): the
// whole history replays from sequence zero, which works only if replay
// slides its water-mark window over the logged stable-checkpoint records —
// 18 sequences do not fit in a LogWindow of 8.
func TestRestartLongTailReplay(t *testing.T) {
	cfg := durableConfig(t)
	cfg.WALRotateBytes = 0 // default threshold: no rotation at this scale
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	const ops = 18
	for i := 0; i < ops; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}
	waitUntil(t, 5*time.Second, "victim executes everything", func() bool {
		return counterAt(c, 1) == uint64(ops)
	})
	waitUntil(t, 5*time.Second, "victim collects a stable checkpoint", func() bool {
		return c.Replica(1).LowWaterMark() >= 16
	})
	flushWAL(c, 1)
	c.Kill(1)

	r := c.Restart(1)
	var counter uint64
	r.InspectService(func(s statemachine.Service) {
		counter = kvservice.DecodeU64(s.Execute(message.ClientIDBase+9999, kvservice.Get(), nil))
	})
	if counter != ops {
		t.Fatalf("replayed counter = %d, want %d", counter, ops)
	}
	if lw := r.LowWaterMark(); lw < 16 {
		t.Fatalf("low water mark %d: replay did not slide the window over KindStable records", lw)
	}

	mustInvoke(t, cl, kvservice.Incr(), false)
	waitUntil(t, 10*time.Second, "post-restart convergence", func() bool {
		v := counterAt(c, 0)
		return v == ops+1 && counterAt(c, 1) == v && counterAt(c, 2) == v && counterAt(c, 3) == v
	})
}

// TestRestartTornTail corrupts the last bytes of the victim's newest
// segment on disk — a torn write — and requires recovery to stop at the
// last valid frame without panicking, then catch the lost suffix back up
// from the live quorum.
func TestRestartTornTail(t *testing.T) {
	cfg := durableConfig(t)
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	const ops = 6
	for i := 0; i < ops; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}
	waitUntil(t, 5*time.Second, "victim executes everything", func() bool {
		return counterAt(c, 1) == ops
	})
	flushWAL(c, 1)
	c.Kill(1)

	// Flip a bit near the end of the newest segment in replica 1's dir.
	dir := filepath.Join(cfg.WALDir, "r1")
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	sort.Strings(segs)
	tail := segs[len(segs)-1]
	b, err := os.ReadFile(tail)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	if len(b) < 32 {
		t.Fatalf("segment too short to corrupt: %d bytes", len(b))
	}
	b[len(b)-3] ^= 0x40
	if err := os.WriteFile(tail, b, 0o644); err != nil {
		t.Fatalf("rewrite segment: %v", err)
	}

	c.Restart(1) // must not panic; replays the valid prefix only

	// Catch-up (retransmission or state transfer) covers the hole.
	mustInvoke(t, cl, kvservice.Incr(), false)
	waitUntil(t, 15*time.Second, "torn replica converges", func() bool {
		v := counterAt(c, 0)
		return v == ops+1 && counterAt(c, 1) == v && counterAt(c, 2) == v && counterAt(c, 3) == v
	})
}

// TestRestartAfterViewChange crashes a replica after the group has moved
// views; the replay must resume in the logged view (or rejoin via the
// pending-view retransmission path), not view 0.
func TestRestartAfterViewChange(t *testing.T) {
	cfg := durableConfig(t)
	cfg.ViewChangeTimeout = 200 * time.Millisecond
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	cl.MaxRetries = 40
	mustInvoke(t, cl, kvservice.Incr(), false)

	// Isolate the view-0 primary; the next request stalls until the
	// backups' timers fire and the group changes views, then executes.
	c.Net.Isolate(0)
	mustInvoke(t, cl, kvservice.Incr(), false)
	waitUntil(t, 10*time.Second, "victim executes in the new view", func() bool {
		return c.Replica(2).View() >= 1 && counterAt(c, 2) == 2
	})

	view := c.Replica(2).View()
	flushWAL(c, 2)
	c.Kill(2)
	r := c.Restart(2)
	waitUntil(t, 10*time.Second, "restarted replica resumes the view", func() bool {
		return r.View() >= view
	})

	c.Net.Heal()
	mustInvoke(t, cl, kvservice.Incr(), false)
	waitUntil(t, 15*time.Second, "post-restart convergence", func() bool {
		v := counterAt(c, 1)
		return v == 3 && counterAt(c, 2) == v && counterAt(c, 3) == v
	})
}
