package pbft

// Metrics aggregation. A sharded deployment snapshots many replicas
// across many groups; Merge folds snapshots into one rollup with
// deployment-meaningful semantics per field:
//
//   - event counters (executions, view changes, drops, batching tallies,
//     cumulative digest time) add,
//   - point-in-time gauges of backlog (QueueDepth, ExecQueueDepth) add —
//     the rollup reports total queued work,
//   - "last observed" durations (LastTransferTime, LastRecoveryTime) and
//     the adaptive BatchTarget take the max — the rollup reports the
//     worst/hottest member,
//   - BatchFillAvg is recomputed from the summed proposal tallies so the
//     rollup is the true requests-per-batch ratio, not an average of
//     averages.

// Merge folds other into m in place using the per-field semantics above.
func (m *Metrics) Merge(other Metrics) {
	m.RequestsExecuted += other.RequestsExecuted
	m.BatchesExecuted += other.BatchesExecuted
	m.TentativeExecs += other.TentativeExecs
	m.Rollbacks += other.Rollbacks
	m.ViewChanges += other.ViewChanges
	m.NewViewsProcessed += other.NewViewsProcessed
	m.CheckpointsTaken += other.CheckpointsTaken
	m.StableCheckpoints += other.StableCheckpoints
	m.StateTransfers += other.StateTransfers
	m.PagesFetched += other.PagesFetched
	if other.LastTransferTime > m.LastTransferTime {
		m.LastTransferTime = other.LastTransferTime
	}
	m.TransferBytes += other.TransferBytes
	m.FetchRetries += other.FetchRetries
	m.Recoveries += other.Recoveries
	m.RecoveriesCompleted += other.RecoveriesCompleted
	if other.LastRecoveryTime > m.LastRecoveryTime {
		m.LastRecoveryTime = other.LastRecoveryTime
	}
	m.MsgsDroppedBadAuth += other.MsgsDroppedBadAuth
	m.InboxDrops += other.InboxDrops
	m.OutboxDrops += other.OutboxDrops
	m.ExecQueueDepth += other.ExecQueueDepth
	m.ExecStalls += other.ExecStalls
	m.PagesCopied += other.PagesCopied
	m.PagesDigested += other.PagesDigested
	m.CkptDigestTime += other.CkptDigestTime
	m.BatchesProposed += other.BatchesProposed
	m.RequestsProposed += other.RequestsProposed
	m.BatchBytesTotal += other.BatchBytesTotal
	m.BatchWaitFires += other.BatchWaitFires
	m.QueueDepth += other.QueueDepth
	m.WALAppends += other.WALAppends
	m.WALFsyncs += other.WALFsyncs
	m.WALBytes += other.WALBytes
	if other.ReplayTime > m.ReplayTime {
		m.ReplayTime = other.ReplayTime
	}
	if other.BatchTarget > m.BatchTarget {
		m.BatchTarget = other.BatchTarget
	}
	if m.BatchesProposed > 0 {
		m.BatchFillAvg = float64(m.RequestsProposed) / float64(m.BatchesProposed)
	} else {
		m.BatchFillAvg = 0
	}
}

// SumMetrics merges a set of snapshots into one rollup.
func SumMetrics(snaps ...Metrics) Metrics {
	var out Metrics
	for _, s := range snaps {
		out.Merge(s)
	}
	return out
}
