package pbft

import (
	"testing"
	"time"

	"repro/internal/kvservice"
)

// TestRecoveryDefaultConfig is a regression test for two recovery bugs:
// (1) state checking flagged legitimately-dirty pages as corrupt, and
// (2) stored-message retransmission used stale-epoch authenticators after
// the recovery's new-key refresh, so lagging replicas never caught up. It
// dumps replica and slot state if recovery stalls.
func TestRecoveryDefaultConfig(t *testing.T) {
	cfg := Config{
		Mode:               ModeMAC,
		Opt:                DefaultOptions(),
		CheckpointInterval: 4,
		Seed:               3,
	}
	c := newTestClusterCfgOnly(t, 4, cfg)
	cl := c.NewClient()
	for i := 0; i < 6; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}
	c.Replica(2).Recover()
	deadline := time.Now().Add(8 * time.Second)
	for c.Replica(2).Recovering() {
		if time.Now().After(deadline) {
			for i, r := range c.Replicas {
				r.do(func() {
					t.Logf("replica %d: view=%d active=%v pending=%v seqno=%d lastExec=%d lastCommitted=%d low=%d queue=%d recPhase=%d recPoint=%d recovering=%v",
						i, r.view, r.active, r.vc.pending, r.seqno, r.lastExec, r.lastCommitted,
						r.log.Low(), r.queue.Len(), r.rec.phase, r.rec.recoveryPoint, r.rec.recovering)
					for seq := r.log.Low() + 1; seq <= r.log.Low()+8; seq++ {
						if s, ok := r.log.Peek(seq); ok {
							t.Logf("  slot %d: view=%d hasD=%v hasPP=%v sentPrep=%v prepCnt=%d prepared=%v sentCommit=%v commitCnt=%d committed=%v exec=%v",
								seq, s.View, s.HasDigest, s.PrePrepare != nil, s.SentPrepare, s.PrepareCount(r.primary(s.View)), s.Prepared, s.SentCommit, s.CommitCount(), s.CommittedLocal, s.Executed)
						} else {
							t.Logf("  slot %d: missing", seq)
						}
					}
				})
			}
			t.Fatal("recovery stuck")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func newTestClusterCfgOnly(t testing.TB, n int, cfg Config) *Cluster {
	t.Helper()
	c := NewLocalCluster(n, cfg, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(c.Stop)
	return c
}
