package pbft

import (
	"testing"
	"time"

	"repro/internal/kvservice"
	"repro/internal/message"
	"repro/internal/statemachine"
)

func waitUntil(t testing.TB, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(15 * time.Millisecond)
	}
}

func counterAt(c *Cluster, i int) uint64 {
	var v uint64
	c.Replica(i).InspectService(func(s statemachine.Service) {
		v = kvservice.DecodeU64(s.Execute(message.ClientIDBase+9999, kvservice.Get(), nil))
	})
	return v
}

func TestManualRecoveryCompletes(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointInterval = 4
	cfg.LogWindow = 8
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	for i := 0; i < 8; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}

	// Recover backup 3.
	c.Replica(3).Recover()
	waitUntil(t, 10*time.Second, "recovery to finish", func() bool {
		return !c.Replica(3).Recovering()
	})
	m := c.Replica(3).Metrics()
	if m.Recoveries != 1 {
		t.Fatalf("recoveries = %d", m.Recoveries)
	}
	if m.LastRecoveryTime <= 0 {
		t.Fatal("recovery time not recorded")
	}
	// Service still works and the recovered replica still tracks state.
	for i := 9; i <= 12; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d", i, got)
		}
	}
	waitUntil(t, 5*time.Second, "replica 3 to catch up", func() bool {
		return counterAt(c, 3) == 12
	})
}

func TestRecoveryOfPrimaryHandsOffView(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointInterval = 4
	cfg.LogWindow = 8
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	cl.MaxRetries = 20
	for i := 0; i < 4; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}
	c.Replica(0).Recover() // primary of view 0
	waitUntil(t, 10*time.Second, "primary recovery", func() bool {
		return !c.Replica(0).Recovering()
	})
	// The group must have moved past view 0 (recovering primary resigns).
	moved := false
	for i := 0; i < 4; i++ {
		if c.Replica(i).View() > 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("no replica left view 0 after primary recovery")
	}
	for i := 5; i <= 8; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d", i, got)
		}
	}
}

func TestRecoveryDetectsCorruptState(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointInterval = 4
	cfg.LogWindow = 8
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	for i := 0; i < 8; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}
	// Wait for a stable checkpoint on replica 2 so recovery has a base.
	waitUntil(t, 5*time.Second, "stable checkpoint", func() bool {
		return c.Replica(2).LowWaterMark() > 0
	})

	// An attacker flips bytes in replica 2's state behind the library.
	c.Replica(2).CorruptStatePage(0)

	c.Replica(2).Recover()
	waitUntil(t, 10*time.Second, "recovery with repair", func() bool {
		return !c.Replica(2).Recovering()
	})
	m := c.Replica(2).Metrics()
	if m.PagesFetched == 0 {
		t.Fatal("corrupt page was not re-fetched during recovery")
	}
	// State must match the group again after repair and catch-up.
	waitUntil(t, 5*time.Second, "repaired state", func() bool {
		return counterAt(c, 2) == counterAt(c, 0)
	})
}

func TestWatchdogPeriodicRecovery(t *testing.T) {
	// The watchdog period must comfortably exceed recovery time (the
	// thesis's Tw = 4*s*Rn constraint, §4.3.3); recoveries here take
	// ~100-300ms, so fire per-replica watchdogs about a second apart.
	cfg := testConfig()
	cfg.CheckpointInterval = 4
	cfg.LogWindow = 8
	cfg.WatchdogInterval = 1 * time.Second
	cfg.KeyRefreshInterval = 500 * time.Millisecond
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	cl.RetryTimeout = 200 * time.Millisecond
	cl.MaxRetries = 40

	// Keep the system busy while watchdogs fire; run long enough for every
	// staggered watchdog to trigger (stagger spreads them over ~2 periods).
	// Correctness (exactly-once, ordering) must hold unconditionally; a
	// transient liveness blip is tolerated once — this configuration churns
	// far beyond the paper's own envelope (its watchdog period of minutes
	// dwarfs recovery time, §4.3.3's Tw = 4*s*Rn).
	deadline := time.Now().Add(3 * time.Second)
	count := uint64(0)
	blips := 0
	for time.Now().Before(deadline) {
		res, err := cl.Invoke(kvservice.Incr(), false)
		if err != nil {
			blips++
			if blips > 1 {
				t.Fatalf("system wedged repeatedly under recovery churn: %v", err)
			}
			continue
		}
		count++
		if got := kvservice.DecodeU64(res); got != count {
			t.Fatalf("incr %d returned %d during proactive recovery", count, got)
		}
	}
	// Every replica should have started at least one recovery, and at
	// least one must have completed somewhere.
	completed := uint64(0)
	for i := 0; i < 4; i++ {
		m := c.Replica(i).Metrics()
		if m.Recoveries == 0 {
			t.Fatalf("replica %d never recovered (watchdog dead)", i)
		}
		completed += m.RecoveriesCompleted
	}
	if completed == 0 {
		t.Fatal("no recovery ever completed")
	}
}

func TestKeyRefreshKeepsClusterLive(t *testing.T) {
	cfg := testConfig()
	cfg.KeyRefreshInterval = 100 * time.Millisecond
	c := newTestCluster(t, 4, cfg, nil)
	cl := c.NewClient()
	cl.MaxRetries = 20
	for i := 1; i <= 20; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d across key refreshes", i, got)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestStateTransferAfterLongPartition(t *testing.T) {
	// Like TestRejoinAfterPartition but long enough that the log window has
	// been garbage collected: rejoining requires a real state transfer.
	cfg := testConfig()
	cfg.CheckpointInterval = 4
	cfg.LogWindow = 8
	c := NewLocalCluster(4, cfg, kvservice.Factory, nil)
	c.Start()
	t.Cleanup(c.Stop)
	cl := c.NewClient()
	cl.MaxRetries = 20

	c.Net.Isolate(3)
	for i := 1; i <= 40; i++ {
		mustInvoke(t, cl, kvservice.Incr(), false)
	}
	// Ensure the others GC'd past replica 3's window.
	waitUntil(t, 5*time.Second, "group GC", func() bool {
		return c.Replica(0).LowWaterMark() >= 16
	})
	c.Net.Heal()

	waitUntil(t, 10*time.Second, "replica 3 state transfer", func() bool {
		return counterAt(c, 3) == 40
	})
	if m := c.Replica(3).Metrics(); m.StateTransfers == 0 || m.PagesFetched == 0 {
		t.Fatalf("rejoin did not use state transfer: %+v", m)
	}
}

func TestPRModeEndToEnd(t *testing.T) {
	// Full BFT-PR: watchdog recoveries + key refreshes + a crashed replica.
	cfg := testConfig()
	cfg.CheckpointInterval = 4
	cfg.LogWindow = 8
	cfg.WatchdogInterval = 1200 * time.Millisecond
	cfg.KeyRefreshInterval = 600 * time.Millisecond
	c := newTestCluster(t, 4, cfg, map[message.NodeID]Behavior{3: Crashed})
	cl := c.NewClient()
	cl.MaxRetries = 30
	for i := 1; i <= 15; i++ {
		res := mustInvoke(t, cl, kvservice.Incr(), false)
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d returned %d", i, got)
		}
		time.Sleep(30 * time.Millisecond)
	}
}
