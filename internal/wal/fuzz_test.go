package wal

import (
	"bytes"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the segment replay path: header
// check plus frame-by-frame parse. The invariants under fuzz are the crash
// safety properties — no panic, no absurd allocation, and any frame that
// parses re-encodes to the identical bytes (so replay-then-rewrite is
// lossless).
func FuzzWALReplay(f *testing.F) {
	// Seed with a well-formed segment: header + two frames.
	seg := encodeSegHeader(128)
	r1 := Record{Kind: KindPrePrepare, Seq: 129, View: 2, From: 1, Body: []byte("batch")}
	r2 := Record{Kind: KindView, Flags: ViewActive, View: 3}
	r3 := Record{Kind: KindKeys, Flags: KeysSelf, Seq: 2, View: 1, From: 0,
		Body: []byte{1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0}}
	seg = appendFrame(seg, &r1)
	seg = appendFrame(seg, &r2)
	seg = appendFrame(seg, &r3)
	f.Add(seg)
	f.Add(seg[:len(seg)-3])             // torn tail
	f.Add(encodeSegHeader(0))           // empty segment
	f.Add([]byte("BFTWAL1\nnot a seg")) // magic, garbage after
	f.Add(EncodeSnapshot(&Snapshot{Seq: 128, Extra: []byte("x"),
		Pages: []Page{{Index: 1, LastMod: 7, Content: []byte("p")}}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Segment scan: mirror Recover's per-segment loop on raw bytes.
		if checkSegHeader(data, 128) || len(data) >= segHeader {
			off := segHeader
			if len(data) < segHeader {
				off = 0
			}
			for off < len(data) {
				rec, n, ok := parseFrame(data[off:])
				if !ok {
					break // replay stop condition; must not panic before this
				}
				if n <= 0 {
					t.Fatal("accepted frame consumed nothing")
				}
				// A frame that validates must round-trip byte-identically.
				re := appendFrame(nil, &rec)
				if !bytes.Equal(re, data[off:off+n]) {
					t.Fatalf("frame at %d re-encodes differently", off)
				}
				off += n
			}
		}
		// Snapshot decode must reject or round-trip, never panic.
		if s, err := DecodeSnapshot(data); err == nil {
			if !bytes.Equal(EncodeSnapshot(s), data) {
				t.Fatal("snapshot re-encodes differently")
			}
		}
	})
}
