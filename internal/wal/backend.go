package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Backend is the storage seam beneath the writer: the file implementation
// provides real durability, the memory implementation backs unit tests and
// lets the group-commit machinery run without touching disk. Methods are
// called only from the writer goroutine (and from Recover before the
// writer starts), except where noted.
type Backend interface {
	// ListSegments returns existing segment base sequence numbers,
	// ascending.
	ListSegments() ([]uint64, error)
	// ReadSegment returns a segment's full contents.
	ReadSegment(base uint64) ([]byte, error)
	// OpenAppend opens segment base for appending after truncating it to
	// size bytes, creating it empty when absent (or when size is 0).
	OpenAppend(base uint64, size int64) (SegmentWriter, error)
	// RemoveSegment deletes a segment.
	RemoveSegment(base uint64) error
	// ListSnapshots returns existing snapshot sequence numbers, ascending.
	ListSnapshots() ([]uint64, error)
	// ReadSnapshot returns a snapshot blob.
	ReadSnapshot(seq uint64) ([]byte, error)
	// WriteSnapshot durably stores a snapshot blob, atomically with
	// respect to crashes (the previous snapshot survives a torn write).
	WriteSnapshot(seq uint64, data []byte) error
	// RemoveSnapshot deletes a snapshot.
	RemoveSnapshot(seq uint64) error
}

// SegmentWriter is an open segment accepting appends. Write buffers in the
// OS; Sync makes everything written so far durable.
type SegmentWriter interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// ---------------------------------------------------------------------------
// File backend
// ---------------------------------------------------------------------------

const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
)

// FileBackend stores segments and snapshots as files in one directory.
//
// bftlint:owner=worker (the writer goroutine is the sole user after Open)
type FileBackend struct {
	dir string
}

// NewFileBackend creates (if needed) and wraps the directory.
func NewFileBackend(dir string) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileBackend{dir: dir}, nil
}

// Dir returns the backing directory.
func (fb *FileBackend) Dir() string { return fb.dir }

func (fb *FileBackend) segPath(base uint64) string {
	return filepath.Join(fb.dir, fmt.Sprintf("%s%020d%s", segPrefix, base, segSuffix))
}

func (fb *FileBackend) snapPath(seq uint64) string {
	return filepath.Join(fb.dir, fmt.Sprintf("%s%020d", snapPrefix, seq))
}

// list scans the directory for names with the given prefix/suffix and
// returns their decoded sequence numbers, ascending.
func (fb *FileBackend) list(prefix, suffix string) ([]uint64, error) {
	ents, err := os.ReadDir(fb.dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		mid := name[len(prefix) : len(name)-len(suffix)]
		n, err := strconv.ParseUint(mid, 10, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func (fb *FileBackend) ListSegments() ([]uint64, error) { return fb.list(segPrefix, segSuffix) }

func (fb *FileBackend) ReadSegment(base uint64) ([]byte, error) {
	return os.ReadFile(fb.segPath(base))
}

func (fb *FileBackend) OpenAppend(base uint64, size int64) (SegmentWriter, error) {
	path := fb.segPath(base)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (fb *FileBackend) RemoveSegment(base uint64) error {
	return os.Remove(fb.segPath(base))
}

func (fb *FileBackend) ListSnapshots() ([]uint64, error) { return fb.list(snapPrefix, "") }

func (fb *FileBackend) ReadSnapshot(seq uint64) ([]byte, error) {
	return os.ReadFile(fb.snapPath(seq))
}

// WriteSnapshot writes tmp + fsync + rename + fsync(dir): a crash at any
// point leaves either the old snapshot set or the old set plus a complete
// new snapshot, never a half-written one under the final name.
func (fb *FileBackend) WriteSnapshot(seq uint64, data []byte) error {
	tmp := fb.snapPath(seq) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, fb.snapPath(seq)); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(fb.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

func (fb *FileBackend) RemoveSnapshot(seq uint64) error {
	return os.Remove(fb.snapPath(seq))
}

// ---------------------------------------------------------------------------
// Memory backend
// ---------------------------------------------------------------------------

// MemBackend keeps segments and snapshots in process memory: the unit-test
// double for the storage seam (crash-cut tests drop the writer's pending
// queue, which is where the un-fsynced suffix lives — see Writer.Crash).
// Internally locked: tests inspect it while a writer appends.
//
// bftlint:owner=shared (internally locked)
type MemBackend struct {
	mu    sync.Mutex
	segs  map[uint64][]byte
	snaps map[uint64][]byte
}

// NewMemBackend creates an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{segs: make(map[uint64][]byte), snaps: make(map[uint64][]byte)}
}

func (mb *MemBackend) sorted(m map[uint64][]byte) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (mb *MemBackend) ListSegments() ([]uint64, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.sorted(mb.segs), nil
}

func (mb *MemBackend) ReadSegment(base uint64) ([]byte, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	b, ok := mb.segs[base]
	if !ok {
		return nil, os.ErrNotExist
	}
	return append([]byte(nil), b...), nil
}

func (mb *MemBackend) OpenAppend(base uint64, size int64) (SegmentWriter, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	b := mb.segs[base]
	if int64(len(b)) > size {
		b = b[:size]
	}
	mb.segs[base] = b
	return &memSegment{mb: mb, base: base}, nil
}

func (mb *MemBackend) RemoveSegment(base uint64) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	delete(mb.segs, base)
	return nil
}

func (mb *MemBackend) ListSnapshots() ([]uint64, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.sorted(mb.snaps), nil
}

func (mb *MemBackend) ReadSnapshot(seq uint64) ([]byte, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	b, ok := mb.snaps[seq]
	if !ok {
		return nil, os.ErrNotExist
	}
	return append([]byte(nil), b...), nil
}

func (mb *MemBackend) WriteSnapshot(seq uint64, data []byte) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.snaps[seq] = append([]byte(nil), data...)
	return nil
}

func (mb *MemBackend) RemoveSnapshot(seq uint64) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	delete(mb.snaps, seq)
	return nil
}

// CorruptSegmentTail flips one byte near the end of a segment (torn-write
// test hook).
func (mb *MemBackend) CorruptSegmentTail(base uint64, back int) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	b := mb.segs[base]
	if i := len(b) - back; i >= 0 && i < len(b) {
		b[i] ^= 0xFF
	}
}

// memSegment appends into its backend's map under the lock.
type memSegment struct {
	mb   *MemBackend
	base uint64
}

func (s *memSegment) Write(p []byte) (int, error) {
	s.mb.mu.Lock()
	s.mb.segs[s.base] = append(s.mb.segs[s.base], p...)
	s.mb.mu.Unlock()
	return len(p), nil
}

func (s *memSegment) Sync() error  { return nil }
func (s *memSegment) Close() error { return nil }
