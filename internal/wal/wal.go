package wal

import (
	"sync"
	"sync/atomic"
	"time"
)

// segMagic begins every segment, followed by the u64 base sequence number.
var segMagic = [8]byte{'B', 'F', 'T', 'W', 'A', 'L', '1', '\n'}

// segHeader is the segment header length: magic + base.
const segHeader = 16

func encodeSegHeader(base uint64) []byte {
	b := make([]byte, 0, segHeader)
	b = append(b, segMagic[:]...)
	var v [8]byte
	putU32(v[0:], uint32(base))
	putU32(v[4:], uint32(base>>32))
	return append(b, v[:]...)
}

func checkSegHeader(b []byte, base uint64) bool {
	if len(b) < segHeader {
		return false
	}
	for i := range segMagic {
		if b[i] != segMagic[i] {
			return false
		}
	}
	got := uint64(getU32(b[8:])) | uint64(getU32(b[12:]))<<32
	return got == base
}

// Options tunes the writer. The zero value is the async group-commit
// default: coalesce appends for up to DefaultSyncWait, then one
// write+fsync for the whole group.
type Options struct {
	// SyncEvery forces a write+fsync per record — the honest worst case
	// the durability benchmark measures against.
	SyncEvery bool
	// SyncWait is the minimum interval between group commits. A record
	// that arrives when the last fsync is at least this old flushes
	// immediately (an idle or lightly loaded replica pays no added
	// latency); otherwise the writer collects records until the interval
	// elapses and issues one fsync for the whole group, capping the
	// fsync rate — and the per-fsync stall injected into the protocol —
	// at 1/SyncWait under load. Zero means DefaultSyncWait; negative
	// flushes with no wait (still coalescing whatever is already queued).
	SyncWait time.Duration
	// QueueCap bounds the command queue between the protocol core and the
	// writer goroutine; a full queue blocks the appender (backpressure,
	// not loss — a dropped record would silently weaken durability).
	// Zero means 4096.
	QueueCap int
}

// DefaultSyncWait is the default minimum interval between group commits.
// 25ms bounds the crash-durability window while keeping the fsync rate
// (and the syscall stalls it injects on small machines) low enough that
// agreement throughput stays close to the in-memory configuration; an
// idle replica still syncs every record immediately.
const DefaultSyncWait = 25 * time.Millisecond

func (o *Options) validate() {
	if o.SyncWait == 0 {
		o.SyncWait = DefaultSyncWait
	}
	if o.SyncWait < 0 {
		o.SyncWait = 0
	}
	if o.QueueCap == 0 {
		o.QueueCap = 4096
	}
}

// Stats counts writer activity.
type Stats struct {
	Appends uint64 // records enqueued
	Fsyncs  uint64 // fsync batches issued (group commits)
	Bytes   uint64 // frame bytes written
}

// Recovered is the result of scanning a log directory at startup: the
// newest valid snapshot, every valid record in order, and where the writer
// must truncate before resuming appends.
type Recovered struct {
	// Snap is the newest snapshot that decoded and checksummed clean;
	// nil when none exists.
	Snap *Snapshot
	// Records holds every valid record from the retained segments in
	// append order, stopping at the first corrupt or truncated frame.
	Records []Record
	// Torn reports that the scan stopped early (truncated tail, CRC
	// mismatch, or a bad segment header): the suffix is lost and state
	// transfer covers whatever it contained.
	Torn bool

	// Resume point for Open: truncate segment tailBase to tailSize and
	// append there; segments after it (if any survived a torn middle) are
	// deleted so the disk agrees with what was replayed.
	tailBase uint64
	tailSize int64
	hasTail  bool
	drop     []uint64 // segments after the resume point
}

// Recover scans the backend read-only. It never fails on corruption —
// corrupt suffixes shorten the replay — and returns an error only for
// backend I/O failures.
func Recover(b Backend) (*Recovered, error) {
	rec := &Recovered{}

	// Newest snapshot that validates wins; older ones are fallbacks.
	snaps, err := b.ListSnapshots()
	if err != nil {
		return nil, err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		blob, err := b.ReadSnapshot(snaps[i])
		if err != nil {
			continue
		}
		s, derr := DecodeSnapshot(blob)
		if derr != nil || s.Seq != snaps[i] {
			rec.Torn = true
			continue
		}
		rec.Snap = s
		break
	}

	segs, err := b.ListSegments()
	if err != nil {
		return nil, err
	}
	for i, base := range segs {
		data, err := b.ReadSegment(base)
		if err != nil {
			return nil, err
		}
		if !checkSegHeader(data, base) {
			// Unreadable header: resume by rewriting this segment from
			// scratch and drop everything after it.
			rec.Torn = true
			rec.tailBase, rec.tailSize, rec.hasTail = base, 0, true
			rec.drop = append([]uint64(nil), segs[i+1:]...)
			return rec, nil
		}
		off := segHeader
		for off < len(data) {
			r, n, ok := parseFrame(data[off:])
			if !ok {
				// First bad frame: replay stops here, the writer truncates
				// here, later segments (written after the corruption) are
				// dropped so disk state matches the replayed prefix.
				rec.Torn = true
				rec.tailBase, rec.tailSize, rec.hasTail = base, int64(off), true
				rec.drop = append([]uint64(nil), segs[i+1:]...)
				return rec, nil
			}
			rec.Records = append(rec.Records, r)
			off += n
		}
		rec.tailBase, rec.tailSize, rec.hasTail = base, int64(len(data)), true
	}
	return rec, nil
}

// wcmd is one writer-goroutine command.
// wcmd is one urgent writer-goroutine command (records travel separately,
// by value, so the hot path never heap-allocates per append).
type wcmd struct {
	barrier chan struct{}
	snap    *Snapshot
	stop    bool
}

// Writer is the async group-commit log writer. Append enqueues and
// returns; a dedicated goroutine coalesces queued records into one
// write+fsync per group (the fsync-batching twin of the replica's
// ingress/egress/executor pipeline stages). Barrier blocks until every
// record enqueued before it is durable — the protocol calls it right
// before the sends the paper requires to be stable.
//
// bftlint:owner=shared (channels and atomics; worker-owned fields noted)
// bftlint:longlived
type Writer struct {
	opts Options

	cmdC  chan Record   // record appends only; bftlint:owner=shared
	urgC  chan wcmd     // barrier/snapshot/stop; bftlint:owner=shared
	killC chan struct{} // bftlint:owner=shared
	doneC chan struct{} // bftlint:owner=shared
	kill1 sync.Once
	stop1 sync.Once

	appends atomic.Uint64
	fsyncs  atomic.Uint64
	bytes   atomic.Uint64
	errV    atomic.Value // error; sticky first I/O failure

	// Worker-goroutine state: the log goroutine exclusively owns the
	// backend handle and the open segment after Open returns.
	b        Backend       // bftlint:owner=worker
	seg      SegmentWriter // bftlint:owner=worker
	segBase  uint64        // bftlint:owner=worker
	prevBase uint64        // bftlint:owner=worker
	hasPrev  bool          // bftlint:owner=worker
}

// Open prepares the backend for appending — truncating the recovered tail
// so disk state matches the replayed prefix, deleting post-corruption
// segments, or creating the first segment — and starts the writer
// goroutine.
func Open(b Backend, rec *Recovered, opts Options) (*Writer, error) {
	opts.validate()
	w := &Writer{
		opts:  opts,
		cmdC:  make(chan Record, opts.QueueCap),
		urgC:  make(chan wcmd),
		killC: make(chan struct{}),
		doneC: make(chan struct{}),
		b:     b,
	}
	if rec == nil {
		rec = &Recovered{}
	}
	for _, base := range rec.drop {
		if err := b.RemoveSegment(base); err != nil {
			return nil, err
		}
	}
	if rec.hasTail {
		seg, err := b.OpenAppend(rec.tailBase, rec.tailSize)
		if err != nil {
			return nil, err
		}
		w.seg, w.segBase = seg, rec.tailBase
		if rec.tailSize < segHeader {
			if _, err := seg.Write(encodeSegHeader(rec.tailBase)); err != nil {
				return nil, err
			}
		}
	} else {
		base := uint64(0)
		if rec.Snap != nil {
			base = rec.Snap.Seq
		}
		seg, err := b.OpenAppend(base, 0)
		if err != nil {
			return nil, err
		}
		if _, err := seg.Write(encodeSegHeader(base)); err != nil {
			return nil, err
		}
		w.seg, w.segBase = seg, base
	}
	go w.loop()
	return w, nil
}

// Err returns the writer's sticky I/O error, if any.
func (w *Writer) Err() error {
	if e := w.errV.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// Stats returns a snapshot of the writer's counters.
func (w *Writer) Stats() Stats {
	return Stats{
		Appends: w.appends.Load(),
		Fsyncs:  w.fsyncs.Load(),
		Bytes:   w.bytes.Load(),
	}
}

// Append enqueues one record for the next group commit. It blocks only on
// queue backpressure, never on the fsync itself.
func (w *Writer) Append(rec Record) {
	w.appends.Add(1)
	select {
	case w.cmdC <- rec:
	case <-w.killC:
	case <-w.doneC:
	}
}

// Barrier blocks until every previously appended record is durable — the
// §4.3/§2.3.4 stability barrier carried by checkpoint votes and
// view-change multicasts.
func (w *Writer) Barrier() {
	ch := make(chan struct{})
	select {
	case w.urgC <- wcmd{barrier: ch}:
	case <-w.killC:
		return
	case <-w.doneC:
		return
	}
	select {
	case <-ch:
	case <-w.killC:
	case <-w.doneC:
	}
}

// AppendSync appends one record and waits for it to be durable.
func (w *Writer) AppendSync(rec Record) {
	w.Append(rec)
	w.Barrier()
}

// SaveSnapshot enqueues a stable-checkpoint snapshot: the writer flushes
// pending records, durably writes the snapshot, rotates to a fresh segment
// based at snap.Seq, and prunes segments and snapshots the replay window
// no longer needs. Ordering with earlier Appends is preserved.
func (w *Writer) SaveSnapshot(snap *Snapshot) {
	select {
	case w.urgC <- wcmd{snap: snap}:
	case <-w.killC:
	case <-w.doneC:
	}
}

// Close flushes everything queued, fsyncs, and stops the writer.
func (w *Writer) Close() {
	w.stop1.Do(func() {
		select {
		case w.urgC <- wcmd{stop: true}:
			<-w.doneC
		case <-w.killC:
			<-w.doneC
		case <-w.doneC:
		}
	})
}

// Crash stops the writer WITHOUT flushing: every record not yet covered by
// a group commit is abandoned, exactly like power failing mid-batch. Test
// and Kill hook.
func (w *Writer) Crash() {
	w.kill1.Do(func() { close(w.killC) })
	<-w.doneC
}

// ---------------------------------------------------------------------------
// Writer goroutine
// ---------------------------------------------------------------------------

// loop is the log goroutine: it exclusively owns the open segment file and
// the backend, draining the command queue and coalescing appends into one
// write+fsync per group.
//
// bftlint:entrypoint=worker
func (w *Writer) loop() {
	defer close(w.doneC)
	var buf []byte         // encoded frames awaiting the next group commit
	var lastSync time.Time // end of the previous flush; zero → flush now
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	defer timer.Stop()

	flush := func() {
		if len(buf) == 0 || w.Err() != nil {
			buf = buf[:0]
			return
		}
		if _, err := w.seg.Write(buf); err != nil {
			w.fail(err)
			buf = buf[:0]
			return
		}
		if err := w.seg.Sync(); err != nil {
			w.fail(err)
			buf = buf[:0]
			return
		}
		w.fsyncs.Add(1)
		w.bytes.Add(uint64(len(buf)))
		buf = buf[:0]
		lastSync = time.Now()
	}

	// drain moves every record already queued into buf without blocking.
	// Appends never sit behind a channel receive per record — the whole
	// backlog is swallowed in one pass.
	drain := func() {
		for {
			select {
			case rec := <-w.cmdC:
				buf = appendFrame(buf, &rec)
				if w.opts.SyncEvery {
					flush() // per-record fsync even through a backlog
				}
			default:
				return
			}
		}
	}

	// urgent handles a barrier, snapshot, or stop. Everything appended
	// before the command must be durable before it acts, so: drain the
	// record queue, flush, then act. Reports whether the writer must exit.
	urgent := func(c wcmd) (done bool) {
		drain()
		flush()
		switch {
		case c.stop:
			return true
		case c.barrier != nil:
			close(c.barrier)
		case c.snap != nil:
			w.rotate(c.snap)
		}
		return false
	}

	for {
		select {
		case <-w.killC:
			return
		case c := <-w.urgC:
			if urgent(c) {
				return
			}
		case rec := <-w.cmdC:
			buf = appendFrame(buf, &rec)
			if w.opts.SyncEvery {
				flush()
				continue
			}
			// Group commit with a minimum fsync interval: if the last
			// flush is at least SyncWait old, sync now (after draining
			// whatever else is queued); otherwise sleep until
			// lastSync+SyncWait and issue one fsync for the whole group.
			// While sleeping the writer deliberately does NOT receive from
			// cmdC — records pile up in the buffered queue and are drained
			// in one pass when the window closes. One writer wakeup per
			// group instead of one per record keeps the log goroutine off
			// the scheduler's critical path on small machines. Barriers
			// and snapshots cut the window short; a kill abandons it.
			if w.opts.SyncWait > 0 {
				if wait := w.opts.SyncWait - time.Since(lastSync); wait > 0 {
					timer.Reset(wait)
				window:
					for {
						select {
						case <-w.killC:
							return
						case <-timer.C:
							break window
						case c := <-w.urgC:
							if urgent(c) {
								return
							}
							break window
						}
					}
					if !timer.Stop() {
						select {
						case <-timer.C:
						default:
						}
					}
				}
			}
			drain()
			flush()
		}
	}
}

// rotate durably writes a stable-checkpoint snapshot, starts a fresh
// segment based at its sequence number, and prunes history: segments older
// than the PREVIOUS base are deleted (slots still above the new low water
// mark were logged while the previous window was current, so the previous
// segment must survive one more rotation), as are superseded snapshots.
func (w *Writer) rotate(snap *Snapshot) {
	if w.Err() != nil {
		return
	}
	if err := w.b.WriteSnapshot(snap.Seq, EncodeSnapshot(snap)); err != nil {
		w.fail(err)
		return
	}
	if snap.Seq <= w.segBase {
		// Replaying a stable point we already rotated at (or a regression
		// after state transfer): keep the current segment.
		w.pruneSnapshots(snap.Seq)
		return
	}
	seg, err := w.b.OpenAppend(snap.Seq, 0)
	if err != nil {
		w.fail(err)
		return
	}
	if _, err := seg.Write(encodeSegHeader(snap.Seq)); err != nil {
		w.fail(err)
		return
	}
	w.seg.Close()
	oldPrev, hadPrev := w.prevBase, w.hasPrev
	w.prevBase, w.hasPrev = w.segBase, true
	w.seg, w.segBase = seg, snap.Seq
	if hadPrev {
		if bases, err := w.b.ListSegments(); err == nil {
			for _, base := range bases {
				if base <= oldPrev && base != w.segBase && base != w.prevBase {
					w.b.RemoveSegment(base)
				}
			}
		}
	}
	w.pruneSnapshots(snap.Seq)
}

// pruneSnapshots removes snapshots older than seq.
func (w *Writer) pruneSnapshots(seq uint64) {
	if seqs, err := w.b.ListSnapshots(); err == nil {
		for _, s := range seqs {
			if s < seq {
				w.b.RemoveSnapshot(s)
			}
		}
	}
}

// fail records the first backend error; later operations no-op. Durability
// is lost from here on but the replica keeps serving — on restart the
// replay falls back to the shorter durable prefix plus state transfer,
// exactly the torn-tail degradation path.
func (w *Writer) fail(err error) {
	w.errV.CompareAndSwap(nil, err)
}
