package wal

import (
	"encoding/binary"
	"errors"

	"repro/internal/crypto"
)

// ErrTruncated reports a record or snapshot that ends mid-field.
var ErrTruncated = errors.New("wal: truncated encoding")

// ErrCorrupt reports a frame or snapshot whose checksum does not match its
// contents, or whose header is not one this version wrote.
var ErrCorrupt = errors.New("wal: corrupt encoding")

// maxSliceLen bounds any decoded length field. Log frames are produced
// locally, but replay must survive arbitrary disk corruption without
// allocating absurd buffers — the same DoS discipline as the wire codec.
const maxSliceLen = 1 << 26

// writer appends fixed-layout little-endian fields, mirroring the
// internal/message codec idiom so the record structs read the same way.
type writer struct{ b []byte }

func newWriter(sizeHint int) *writer { return &writer{b: make([]byte, 0, sizeHint)} }

func (w *writer) u8(v uint8)   { w.b = append(w.b, v) }
func (w *writer) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }

func (w *writer) digest(d crypto.Digest) { w.b = append(w.b, d[:]...) }

// bytes writes a length-prefixed byte slice.
func (w *writer) bytes(p []byte) {
	w.u32(uint32(len(p)))
	w.b = append(w.b, p...)
}

// reader consumes the same layout with a sticky error: after the first
// failure every subsequent read returns zero values and done() reports it.
type reader struct {
	b   []byte
	off int
	err error
}

func newReader(b []byte) *reader { return &reader{b: b} }

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
	r.off = len(r.b)
}

func (r *reader) u8() uint8 {
	if r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) digest() crypto.Digest {
	var d crypto.Digest
	if r.off+len(d) > len(r.b) {
		r.fail()
		return d
	}
	copy(d[:], r.b[r.off:])
	r.off += len(d)
	return d
}

// bytes reads a length-prefixed byte slice, copying out of the backing
// buffer so decoded records never alias the (reused) read buffer.
func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n < 0 || n > maxSliceLen || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+n])
	r.off += n
	return out
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return ErrCorrupt // trailing garbage inside a checksummed payload
	}
	return nil
}
