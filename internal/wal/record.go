// Package wal is the replica's durability subsystem: a write-ahead log of
// length-prefixed, CRC-framed records (protocol votes, accepted batches,
// view transitions, stable-checkpoint certificates) plus checkpoint-state
// snapshots, behind an async group-commit writer that batches fsyncs off
// the event loop. The protocol core appends and continues; a dedicated log
// goroutine coalesces appends into one write+fsync per group, and sends the
// paper requires to be stable (checkpoint votes, view-change multicasts)
// carry an explicit durability barrier. The log truncates at each stable
// checkpoint: the replay window is exactly the water-mark window, so a
// restarted replica rebuilds its slots from the newest snapshot plus the
// retained segments and catches the tail up through ordinary state
// transfer.
//
// On-disk layout (one directory per replica):
//
//	wal-<base>.log   segment: 16-byte header (magic + base seq), then
//	                 frames [u32 len][u32 crc32][payload]. A new segment
//	                 starts at every stable checkpoint; the previous one is
//	                 retained (live slots above the new low water mark were
//	                 logged while the previous window was current), older
//	                 ones are deleted.
//	snap-<seq>       checkpoint snapshot: magic, body, crc32 trailer,
//	                 written tmp+rename so a torn write never destroys the
//	                 previous snapshot.
//
// Replay stops at the first frame whose CRC (or structure) fails — a torn
// or bit-flipped tail degrades to a shorter replay and a wider state
// transfer, never a panic — and the writer truncates the segment there
// before resuming appends.
package wal

import (
	"hash/crc32"

	"repro/internal/crypto"
)

// Kind tags one log record.
type Kind uint8

// Record kinds.
const (
	// KindRequest is a separately-transmitted request body accepted into
	// the request store (inline bodies ride inside KindPrePrepare).
	KindRequest Kind = 1 + iota
	// KindPrePrepare is an accepted pre-prepare (the full marshaled
	// message, inline bodies included) — primary's own or a backup's.
	KindPrePrepare
	// KindPrepare is one prepare vote recorded in a slot (From tells
	// whose; the replica's own votes restore the SentPrepare dedupe flag).
	KindPrepare
	// KindCommit is one commit vote recorded in a slot.
	KindCommit
	// KindStable is a stable-checkpoint certificate marker: Seq reached a
	// quorum of matching checkpoint votes with digest Digest. Replay
	// slides the water-mark window over it (rotation is throttled, so the
	// retained tail can span several stable checkpoints); it is also the
	// audit trail of log truncations.
	KindStable
	// KindView is a view transition: Flags&ViewActive distinguishes
	// entering a new view (active) from starting a view change (pending).
	KindView
	// KindKeys is session-key-exchange state (§4.3.1), which peers hold us
	// to across a crash: with Flags&KeysSelf it is our own refreshment
	// (View=epoch, Seq=co-processor counter, Body=per-peer RNG seeds —
	// RefreshIn is deterministic given a seed, so replay regenerates the
	// identical in-keys); otherwise it is a peer's accepted new-key
	// announcement (From=peer, View=epoch, Seq=counter, Body=the out-key
	// it chose for our traffic to it).
	KindKeys
)

// ViewActive is the KindView flag bit for "new-view processed" (§3.2.4);
// clear means the replica multicast a view-change and is waiting.
const ViewActive uint8 = 1

// KeysSelf is the KindKeys flag bit for "our own refreshment" (seeds);
// clear means a peer's announcement (key).
const KeysSelf uint8 = 1

// Record is one WAL entry. One struct covers every kind — the unused
// fields of a kind are written as zeros — so the frame codec, the fuzzer,
// and the bftwire symmetry check all see a single layout.
type Record struct {
	Kind   Kind
	Flags  uint8
	Seq    uint64
	View   uint64
	From   uint32
	Digest crypto.Digest
	Body   []byte
}

// marshalBody appends the record's fields (everything but the frame).
func (rec *Record) marshalBody(w *writer) {
	w.u8(uint8(rec.Kind))
	w.u8(rec.Flags)
	w.u64(rec.Seq)
	w.u64(rec.View)
	w.u32(rec.From)
	w.digest(rec.Digest)
	w.bytes(rec.Body)
}

// unmarshalBody decodes the record's fields.
func (rec *Record) unmarshalBody(r *reader) {
	rec.Kind = Kind(r.u8())
	rec.Flags = r.u8()
	rec.Seq = r.u64()
	rec.View = r.u64()
	rec.From = r.u32()
	rec.Digest = r.digest()
	rec.Body = r.bytes()
}

// frame layout: [u32 payload len][u32 crc32(payload)][payload].
const frameHeader = 8

// appendFrame encodes rec as one CRC-framed entry onto dst.
func appendFrame(dst []byte, rec *Record) []byte {
	w := newWriter(64 + len(rec.Body))
	rec.marshalBody(w)
	var hdr [frameHeader]byte
	putU32(hdr[0:], uint32(len(w.b)))
	putU32(hdr[4:], crc32.ChecksumIEEE(w.b))
	dst = append(dst, hdr[:]...)
	return append(dst, w.b...)
}

// parseFrame decodes one frame from b. It returns the record, the total
// frame size consumed, and false if the frame is truncated, oversized,
// checksum-corrupt, or structurally invalid — the replay stop condition.
func parseFrame(b []byte) (Record, int, bool) {
	var rec Record
	if len(b) < frameHeader {
		return rec, 0, false
	}
	n := int(getU32(b[0:]))
	if n < 0 || n > maxSliceLen || len(b) < frameHeader+n {
		return rec, 0, false
	}
	payload := b[frameHeader : frameHeader+n]
	if crc32.ChecksumIEEE(payload) != getU32(b[4:]) {
		return rec, 0, false
	}
	r := newReader(payload)
	rec.unmarshalBody(r)
	if r.done() != nil {
		return rec, 0, false
	}
	return rec, frameHeader + n, true
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
