package wal

import (
	"hash/crc32"

	"repro/internal/crypto"
)

// snapMagic begins every snapshot blob.
var snapMagic = [8]byte{'B', 'F', 'T', 'S', 'N', 'A', 'P', '1'}

// Page is one checkpointed state page: its index, the last-modified
// sequence number the leaf digest covers (checkpoint.LeafDigest includes
// lm, so restoring a group-matching root digest REQUIRES persisting it),
// and the page contents.
type Page struct {
	Index   uint32
	LastMod uint64
	Content []byte
}

func (p *Page) marshalBody(w *writer) {
	w.u32(p.Index)
	w.u64(p.LastMod)
	w.bytes(p.Content)
}

func (p *Page) unmarshalBody(r *reader) {
	p.Index = r.u32()
	p.LastMod = r.u64()
	p.Content = r.bytes()
}

// Snapshot is a persisted stable checkpoint: the full service state page
// by page plus the reply-cache blob (the checkpoint's Extra component, so
// exactly-once survives restart) and the expected combined root digest.
type Snapshot struct {
	Seq   uint64
	Root  crypto.Digest
	Extra []byte
	Pages []Page
}

func (s *Snapshot) marshalBody(w *writer) {
	w.u64(s.Seq)
	w.digest(s.Root)
	w.bytes(s.Extra)
	w.u32(uint32(len(s.Pages)))
	for i := range s.Pages {
		s.Pages[i].marshalBody(w)
	}
}

func (s *Snapshot) unmarshalBody(r *reader) {
	s.Seq = r.u64()
	s.Root = r.digest()
	s.Extra = r.bytes()
	n := int(r.u32())
	// Each page costs at least its 16-byte fixed header, so bounding the
	// count by the remaining bytes rejects absurd corrupt counts before
	// allocating (decoded-integer-as-allocation-size discipline).
	if r.err != nil || n < 0 || n > len(r.b)/16+1 {
		r.fail()
		return
	}
	s.Pages = make([]Page, n)
	for i := range s.Pages {
		s.Pages[i].unmarshalBody(r)
	}
}

// EncodeSnapshot serializes s as a self-validating blob:
// magic, body, crc32(body) trailer.
func EncodeSnapshot(s *Snapshot) []byte {
	w := newWriter(64 + len(s.Extra) + len(s.Pages)*4112)
	s.marshalBody(w)
	out := make([]byte, 0, len(snapMagic)+len(w.b)+4)
	out = append(out, snapMagic[:]...)
	out = append(out, w.b...)
	var crc [4]byte
	putU32(crc[:], crc32.ChecksumIEEE(w.b))
	return append(out, crc[:]...)
}

// DecodeSnapshot validates and decodes a snapshot blob. A bad magic,
// checksum, or structure yields ErrCorrupt/ErrTruncated — the caller falls
// back to an older snapshot or a from-scratch state transfer.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < len(snapMagic)+4 {
		return nil, ErrTruncated
	}
	for i := range snapMagic {
		if b[i] != snapMagic[i] {
			return nil, ErrCorrupt
		}
	}
	body := b[len(snapMagic) : len(b)-4]
	if crc32.ChecksumIEEE(body) != getU32(b[len(b)-4:]) {
		return nil, ErrCorrupt
	}
	var s Snapshot
	r := newReader(body)
	s.unmarshalBody(r)
	if err := r.done(); err != nil {
		return nil, err
	}
	return &s, nil
}
