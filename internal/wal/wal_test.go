package wal

import (
	"testing"
	"time"

	"repro/internal/crypto"
)

func testRecord(seq uint64, kind Kind) Record {
	return Record{
		Kind:   kind,
		Seq:    seq,
		View:   1,
		From:   2,
		Digest: crypto.DigestOf([]byte{byte(seq)}),
		Body:   []byte{byte(seq), byte(seq >> 8), 0xAB},
	}
}

func recordsEqual(a, b Record) bool {
	if a.Kind != b.Kind || a.Flags != b.Flags || a.Seq != b.Seq ||
		a.View != b.View || a.From != b.From || a.Digest != b.Digest {
		return false
	}
	if len(a.Body) != len(b.Body) {
		return false
	}
	for i := range a.Body {
		if a.Body[i] != b.Body[i] {
			return false
		}
	}
	return true
}

func TestFrameRoundTrip(t *testing.T) {
	want := testRecord(7, KindPrepare)
	buf := appendFrame(nil, &want)
	got, n, ok := parseFrame(buf)
	if !ok || n != len(buf) {
		t.Fatalf("parseFrame: ok=%v n=%d len=%d", ok, n, len(buf))
	}
	if !recordsEqual(got, want) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
	// Every truncation of a valid frame must be rejected, not panic.
	for i := 0; i < len(buf); i++ {
		if _, _, ok := parseFrame(buf[:i]); ok {
			t.Fatalf("truncated frame of %d/%d bytes accepted", i, len(buf))
		}
	}
	// Any single bit flip must fail the CRC (or the structure check).
	for i := 0; i < len(buf); i++ {
		buf[i] ^= 0x01
		if got, _, ok := parseFrame(buf); ok && recordsEqual(got, want) {
			t.Fatalf("bit flip at byte %d went unnoticed", i)
		}
		buf[i] ^= 0x01
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := &Snapshot{
		Seq:   128,
		Root:  crypto.DigestOf([]byte("root")),
		Extra: []byte("reply cache blob"),
		Pages: []Page{
			{Index: 0, LastMod: 100, Content: []byte("page zero")},
			{Index: 3, LastMod: 127, Content: []byte("page three")},
		},
	}
	blob := EncodeSnapshot(want)
	got, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Seq != want.Seq || got.Root != want.Root || string(got.Extra) != string(want.Extra) {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Pages) != 2 || got.Pages[1].LastMod != 127 || string(got.Pages[0].Content) != "page zero" {
		t.Fatalf("pages mismatch: %+v", got.Pages)
	}
	// Corruption anywhere must be detected.
	for i := 0; i < len(blob); i++ {
		blob[i] ^= 0x01
		if _, err := DecodeSnapshot(blob); err == nil {
			t.Fatalf("bit flip at byte %d went unnoticed", i)
		}
		blob[i] ^= 0x01
	}
	if _, err := DecodeSnapshot(blob[:len(blob)-6]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestWriterAppendRecover(t *testing.T) {
	mb := NewMemBackend()
	w, err := Open(mb, nil, Options{SyncWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := uint64(1); i <= 20; i++ {
		rec := testRecord(i, KindCommit)
		want = append(want, rec)
		w.Append(rec)
	}
	w.Barrier()
	st := w.Stats()
	if st.Appends != 20 {
		t.Fatalf("appends = %d", st.Appends)
	}
	if st.Fsyncs == 0 || st.Fsyncs > 21 {
		t.Fatalf("fsyncs = %d", st.Fsyncs)
	}
	w.Close()

	rec, err := Recover(mb)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Torn || rec.Snap != nil {
		t.Fatalf("unexpected recovery shape: torn=%v snap=%v", rec.Torn, rec.Snap)
	}
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(want))
	}
	for i := range want {
		if !recordsEqual(rec.Records[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestWriterGroupCommitCoalesces(t *testing.T) {
	mb := NewMemBackend()
	w, err := Open(mb, nil, Options{SyncWait: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 100; i++ {
		w.Append(testRecord(i, KindPrepare))
	}
	w.Barrier()
	st := w.Stats()
	if st.Fsyncs >= 100 {
		t.Fatalf("group commit did not coalesce: %d fsyncs for 100 appends", st.Fsyncs)
	}
	w.Close()
}

func TestWriterSyncEvery(t *testing.T) {
	mb := NewMemBackend()
	w, err := Open(mb, nil, Options{SyncEvery: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 10; i++ {
		w.Append(testRecord(i, KindPrepare))
	}
	w.Barrier()
	if st := w.Stats(); st.Fsyncs < 10 {
		t.Fatalf("sync-every issued only %d fsyncs for 10 appends", st.Fsyncs)
	}
	w.Close()
}

func TestCrashDropsUnflushedSuffix(t *testing.T) {
	mb := NewMemBackend()
	// A long group-commit window so the tail is guaranteed pending.
	w, err := Open(mb, nil, Options{SyncWait: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(testRecord(1, KindCommit))
	w.Barrier() // first record durable
	for i := uint64(2); i <= 9; i++ {
		w.Append(testRecord(i, KindCommit))
	}
	w.Crash() // power fails mid-batch

	rec, err := Recover(mb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 || rec.Records[0].Seq != 1 {
		t.Fatalf("recovered %d records after crash, want exactly the durable one", len(rec.Records))
	}
}

func TestSnapshotRotationPrunes(t *testing.T) {
	mb := NewMemBackend()
	w, err := Open(mb, nil, Options{SyncWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	for stable := uint64(128); stable <= 512; stable += 128 {
		for s := stable - 127; s <= stable; s += 32 {
			w.Append(testRecord(s, KindCommit))
		}
		w.SaveSnapshot(&Snapshot{Seq: stable, Extra: []byte("x")})
	}
	w.Barrier()
	segs, _ := mb.ListSegments()
	// Current segment (512) + retained previous (384); older pruned.
	if len(segs) != 2 || segs[0] != 384 || segs[1] != 512 {
		t.Fatalf("segments after rotation = %v", segs)
	}
	snaps, _ := mb.ListSnapshots()
	if len(snaps) != 1 || snaps[0] != 512 {
		t.Fatalf("snapshots after rotation = %v", snaps)
	}
	w.Close()

	rec, err := Recover(mb)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snap == nil || rec.Snap.Seq != 512 {
		t.Fatalf("recovered snapshot = %+v", rec.Snap)
	}
	// Replay only sees records from the retained segments.
	for _, r := range rec.Records {
		if r.Seq <= 256 {
			t.Fatalf("record for pruned slot %d survived", r.Seq)
		}
	}
}

func TestRecoverStopsAtCorruptTail(t *testing.T) {
	mb := NewMemBackend()
	w, err := Open(mb, nil, Options{SyncWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 10; i++ {
		w.Append(testRecord(i, KindCommit))
		w.Barrier()
	}
	w.Close()
	mb.CorruptSegmentTail(0, 3) // flip a byte inside the last frame

	rec, err := Recover(mb)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Torn {
		t.Fatal("corrupt tail not reported as torn")
	}
	if len(rec.Records) != 9 {
		t.Fatalf("recovered %d records, want 9 (replay stops at the bad frame)", len(rec.Records))
	}

	// Re-open truncates the bad tail and appends cleanly after it.
	w2, err := Open(mb, rec, Options{SyncWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	w2.AppendSync(testRecord(11, KindCommit))
	w2.Close()
	rec2, err := Recover(mb)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Torn || len(rec2.Records) != 10 || rec2.Records[9].Seq != 11 {
		t.Fatalf("post-truncation recovery: torn=%v n=%d", rec2.Torn, len(rec2.Records))
	}
}

func TestFileBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fb, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Open(fb, nil, Options{SyncWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(testRecord(1, KindPrePrepare))
	w.SaveSnapshot(&Snapshot{Seq: 128, Extra: []byte("e"), Pages: []Page{{Index: 0, LastMod: 5, Content: []byte("c")}}})
	w.AppendSync(testRecord(129, KindCommit))
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	fb2, err := NewFileBackend(dir) // reopen the same directory
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(fb2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snap == nil || rec.Snap.Seq != 128 || len(rec.Snap.Pages) != 1 {
		t.Fatalf("snapshot lost across reopen: %+v", rec.Snap)
	}
	// One rotation retains the previous segment (its slots can still be
	// above the new low water mark), so both records replay.
	if len(rec.Records) != 2 || rec.Records[1].Seq != 129 {
		t.Fatalf("records after rotation = %+v", rec.Records)
	}
}
