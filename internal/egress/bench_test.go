package egress

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/crypto"
	"repro/internal/message"
)

// benchSealer is the vector-of-MACs group seal a replica performs per
// multicast (internal/pbft's sealer without the mode/signature branches):
// encode the body, MAC it once per replica, append the trailer.
type benchSealer struct {
	n  int
	ks *crypto.KeyStore
}

func (s *benchSealer) Seal(buf []byte, _ Kind, _ message.NodeID,
	m message.Message) ([]byte, uint64) {
	gen := s.ks.Generation()
	start := len(buf)
	buf = message.AppendPayload(buf, m)
	a := message.Auth{
		Kind:   message.AuthVector,
		Vector: s.ks.MakeAuthenticator(s.n, buf[start:]),
	}
	return message.AppendAuth(buf, &a), gen
}

func (s *benchSealer) Generation() uint64 { return s.ks.Generation() }

// countTransport discards datagrams, counting them, and releases buffers
// immediately like udpnet, so the pipeline's pooled-buffer path is what the
// benchmark measures.
type countTransport struct{ sent atomic.Uint64 }

func (t *countTransport) Self() message.NodeID               { return 0 }
func (t *countTransport) Send(message.NodeID, []byte)        { t.sent.Add(1) }
func (t *countTransport) Multicast([]message.NodeID, []byte) { t.sent.Add(1) }
func (t *countTransport) Close()                             {}
func (t *countTransport) SendOwned(_ message.NodeID, p []byte, release func([]byte)) {
	t.sent.Add(1)
	release(p)
}
func (t *countTransport) MulticastOwned(_ []message.NodeID, p []byte, release func([]byte)) {
	t.sent.Add(1)
	release(p)
}

// BenchmarkEgressPipeline compares the serial send path (marshal + group
// authenticator inline, as Replica.multicastReplicas does with the pipeline
// off) against the worker pool at 1/2/4/8 workers. The workload is the
// replica hot path: one 1 KiB-op request multicast to a 4-replica group,
// sealed with a 4-entry vector of MACs — the neighborhood of the paper's
// 4/0 benchmark operation (§8.3.2). ns/op is per sealed multicast, so
// multicasts/sec = 1e9 / (ns/op).
func BenchmarkEgressPipeline(b *testing.B) {
	const (
		opSize   = 1024
		groupN   = 4
		queueCap = 16384
	)
	ks := crypto.NewKeyStore(1000)
	for i := 0; i < groupN; i++ {
		ks.InstallInitial(uint32(i))
	}
	req := &message.Request{
		Client:    1000,
		Timestamp: 1,
		Replier:   message.NoNode,
		Op:        make([]byte, opSize),
	}
	dsts := []message.NodeID{0, 1, 2, 3}
	sealer := &benchSealer{n: groupN, ks: ks}

	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// The serial path: Payload() allocation, vector of MACs,
			// Marshal() allocation — what the event loop pays inline.
			payload := req.Payload()
			req.Auth = message.Auth{
				Kind:   message.AuthVector,
				Vector: ks.MakeAuthenticator(groupN, payload),
			}
			if w := req.Marshal(); len(w) == 0 {
				b.Fatal("empty wire message")
			}
		}
		req.Auth = message.Auth{}
	})

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ct := &countTransport{}
			p := New(workers, queueCap, sealer, ct)
			defer p.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for !p.Multicast(dsts, req, Vector) {
					runtime.Gosched() // backpressure: wait for queue headroom
				}
			}
			for ct.sent.Load() < uint64(b.N) {
				runtime.Gosched()
			}
		})
	}
}
