// Package egress is the staged send path of the replication library: a
// worker pool that marshals and authenticates outbound messages in parallel
// and hands finished wire buffers to the transport in submission order. It
// mirrors internal/ingress, which does the same for the receive path.
//
// The cost it moves off the event loop is the one Castro & Liskov's own
// analysis (§8.3.1) puts at the center of BFT's performance: with vector-of-
// MACs authenticators every multicast costs O(n) HMACs plus a serialization
// pass, and a replica that seals serially caps its send rate at one core.
// The pipeline splits the path into stages:
//
//	event loop -> Submit (send order) -> workers (marshal + authenticate)
//	           -> collector (re-sequenced to send order) -> transport
//
// Protocol state stays single-threaded: workers only READ the message body
// (immutable once submitted) and the copy-on-write key-store snapshots; the
// computed trailer goes straight into the wire buffer, never back into the
// message object, so no protocol structure is ever written outside the
// event loop. Each sealed job is stamped with the key-store generation its
// authenticator was computed under; the collector re-seals any job that
// crossed a key rotation while queued (the egress twin of the §4.3.2
// stale-key rule on ingress), so a refresh never ships MACs receivers will
// reject as stale.
//
// Wire buffers come from a pool and are handed to the transport through
// transport.Multicaster when the substrate implements it: the transport
// coalesces the n datagrams of one multicast and releases the buffer for
// reuse once the bytes are out. Substrates that retain payload references
// (the simulator) simply never release, and the buffer falls to the GC.
package egress

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/message"
	"repro/internal/transport"
)

// Kind selects how a job is authenticated when it is sealed on a worker.
type Kind uint8

// Job kinds.
const (
	// Raw ships pre-marshaled bytes untouched (retransmissions of stored
	// messages keep their original authenticators so relays work). No
	// crypto runs on the worker and the job is never re-sealed.
	Raw Kind = iota
	// Vector seals with a group authenticator: the vector of per-replica
	// MACs of §5.2 (or a signature in PK mode).
	Vector
	// Point seals with the single point-to-point MAC for the destination
	// (or a signature in PK mode).
	Point
	// Sign always seals with a signature (new-key and recovery traffic,
	// §4.3.1: these must be verifiable regardless of session-key state).
	Sign
)

// NoGeneration marks a sealed job that can never go stale: signatures do
// not depend on session keys, so key rotation does not invalidate them.
const NoGeneration = ^uint64(0)

// Sealer produces the authenticated wire encoding of one message.
// Implementations must be safe for concurrent use: Seal runs on pool
// workers against copy-on-write key-store snapshots. Seal appends the
// complete wire message (body followed by trailer) to buf and returns the
// extended buffer together with the key generation the authenticator was
// computed under (NoGeneration when rotation cannot invalidate it). It must
// not write into m.
type Sealer interface {
	Seal(buf []byte, kind Kind, dst message.NodeID, m message.Message) (wire []byte, gen uint64)
	// Generation returns the current key generation, compared against a
	// job's stamp by the collector to detect sends that crossed a rotation.
	Generation() uint64
}

// job carries one outbound message through the pool. The worker signals
// done (a reusable 1-buffered channel) once wire/gen are set; the collector
// waits on jobs in submission order, then recycles the job via jobPool.
type job struct {
	kind Kind
	m    message.Message
	dst  message.NodeID
	dsts []message.NodeID
	wire []byte
	gen  uint64
	done chan struct{}
}

// jobPool recycles jobs and their done channels: egress is the per-message
// hot path and allocations per send would show up at high rates.
var jobPool = sync.Pool{
	New: func() any { return &job{done: make(chan struct{}, 1)} },
}

// wirePool recycles wire buffers between the workers and the transport.
// Buffers come back through the release callback of transport.Multicaster;
// substrates that retain the bytes never release and the buffer is GC'd.
var wirePool = sync.Pool{
	New: func() any { return make([]byte, 0, 512) },
}

// Stats are the pipeline's counters (atomic; safe to read live).
type Stats struct {
	// Submitted counts jobs accepted into the pipeline.
	Submitted uint64
	// Rejected counts sends refused by a full or closed pipeline — outbox
	// overflow, the send-side twin of receive-buffer loss. The datagram is
	// simply never transmitted; retransmission recovers, exactly as for a
	// datagram lost on the wire.
	Rejected uint64
	// Resealed counts jobs re-authenticated by the collector because a key
	// rotation was published after the worker sealed them.
	Resealed uint64
}

// Pipeline is a fixed-size worker pool with an order-preserving collector
// that releases sealed wire buffers to the transport in submission order,
// so the transport observes the exact send sequence the event loop issued.
type Pipeline struct {
	seal  Sealer
	trans transport.Transport
	mc    transport.Multicaster // trans, if it implements the extension

	jobs  chan *job // work queue, consumed by any worker
	order chan *job // same jobs in submission order, consumed by collector
	quit  chan struct{}

	submitMu sync.Mutex // serializes Submit so order == send order
	closed   atomic.Bool
	wg       sync.WaitGroup

	submitted atomic.Uint64
	rejected  atomic.Uint64
	resealed  atomic.Uint64
}

// New starts a pipeline with the given pool size (0 means GOMAXPROCS) and
// queue capacity (0 means 8192, matching the replica inbox), sealing with s
// and transmitting through t. Close releases the pool.
func New(workers, queueCap int, s Sealer, t transport.Transport) *Pipeline {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueCap <= 0 {
		queueCap = 8192
	}
	p := &Pipeline{
		seal:  s,
		trans: t,
		jobs:  make(chan *job, queueCap),
		order: make(chan *job, queueCap),
		quit:  make(chan struct{}),
	}
	p.mc, _ = t.(transport.Multicaster)
	p.wg.Add(workers + 1)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	go p.collect()
	return p
}

// Multicast seals m per kind and transmits it to every id in dsts. It never
// blocks: a saturated or closed pipeline drops the send and reports false
// (outbox overflow). The caller must not mutate m's body after submission.
//
// bftlint:send
func (p *Pipeline) Multicast(dsts []message.NodeID, m message.Message, kind Kind) bool {
	return p.submit(kind, m, nil, message.NoNode, dsts)
}

// Send seals m per kind and transmits it to dst.
//
// bftlint:send
func (p *Pipeline) Send(dst message.NodeID, m message.Message, kind Kind) bool {
	return p.submit(kind, m, nil, dst, nil)
}

// SendRaw transmits already-encoded bytes to dst, ordered with the sealed
// traffic (retransmissions that keep their original authenticators).
//
// bftlint:send
func (p *Pipeline) SendRaw(dst message.NodeID, wire []byte) bool {
	return p.submit(Raw, nil, wire, dst, nil)
}

// MulticastRaw transmits already-encoded bytes to every id in dsts.
//
// bftlint:send
func (p *Pipeline) MulticastRaw(dsts []message.NodeID, wire []byte) bool {
	return p.submit(Raw, nil, wire, message.NoNode, dsts)
}

func (p *Pipeline) submit(kind Kind, m message.Message, wire []byte,
	dst message.NodeID, dsts []message.NodeID) bool {
	if p.closed.Load() {
		p.rejected.Add(1)
		return false
	}
	j := jobPool.Get().(*job)
	j.kind, j.m, j.wire, j.dst, j.dsts, j.gen = kind, m, wire, dst, dsts, NoGeneration
	p.submitMu.Lock()
	select {
	case p.order <- j:
	default:
		p.submitMu.Unlock()
		p.rejected.Add(1)
		jobPool.Put(j)
		return false
	}
	select {
	case p.jobs <- j:
	default:
		// order accepted but the work queue is full (workers far behind):
		// resolve the reserved slot as an empty drop so the collector never
		// stalls on it.
		j.m, j.wire = nil, nil
		j.done <- struct{}{}
		p.submitMu.Unlock()
		p.rejected.Add(1)
		return false
	}
	p.submitMu.Unlock()
	p.submitted.Add(1)
	return true
}

// Close stops accepting sends and releases the workers and collector.
// In-flight sends may or may not reach the transport; after Close returns,
// the transport is never invoked again, so it is safe to close afterwards.
func (p *Pipeline) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.quit)
		p.wg.Wait()
	}
}

// Stats returns a snapshot of the counters.
func (p *Pipeline) Stats() Stats {
	return Stats{
		Submitted: p.submitted.Load(),
		Rejected:  p.rejected.Load(),
		Resealed:  p.resealed.Load(),
	}
}

// worker seals outbound messages off the shared queue.
//
// bftlint:entrypoint=worker
func (p *Pipeline) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case j := <-p.jobs:
			if j.kind != Raw {
				buf := wirePool.Get().([]byte)
				j.wire, j.gen = p.seal.Seal(buf[:0], j.kind, j.dst, j.m)
			}
			j.done <- struct{}{}
		}
	}
}

// collect re-sequences sealed jobs into send order, re-seals any that
// crossed a key rotation, and hands buffers to the transport.
//
// bftlint:entrypoint=worker
func (p *Pipeline) collect() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case j := <-p.order:
			select {
			case <-j.done:
			case <-p.quit:
				return
			}
			if j.wire != nil {
				if j.gen != NoGeneration && j.gen != p.seal.Generation() {
					// Keys rotated while the job was queued: the sealed MACs
					// may already be stale at their receivers. Re-seal with
					// the current snapshot; rotations are rare, so this
					// almost never runs.
					j.wire, j.gen = p.seal.Seal(j.wire[:0], j.kind, j.dst, j.m)
					p.resealed.Add(1)
				}
				p.transmit(j)
			}
			j.m, j.wire, j.dsts = nil, nil, nil
			jobPool.Put(j)
		}
	}
}

// transmit hands one sealed buffer to the transport, through the owned
// (pooled-buffer, coalesced) surface when the substrate provides it.
func (p *Pipeline) transmit(j *job) {
	if p.mc != nil {
		if j.dsts != nil {
			p.mc.MulticastOwned(j.dsts, j.wire, releaseWire)
		} else {
			p.mc.SendOwned(j.dst, j.wire, releaseWire)
		}
		return
	}
	if j.dsts != nil {
		p.trans.Multicast(j.dsts, j.wire)
	} else {
		p.trans.Send(j.dst, j.wire)
	}
}

// releaseWire returns a transport-released buffer to the pool.
func releaseWire(b []byte) { wirePool.Put(b[:0]) }
