package egress

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/message"
	"repro/internal/transport"
)

// fakeTransport records every transmitted datagram in arrival order.
type fakeTransport struct {
	mu    sync.Mutex
	wires [][]byte
	dsts  []message.NodeID
}

func (t *fakeTransport) Self() message.NodeID { return 0 }
func (t *fakeTransport) Send(dst message.NodeID, p []byte) {
	t.mu.Lock()
	t.wires = append(t.wires, append([]byte(nil), p...))
	t.dsts = append(t.dsts, dst)
	t.mu.Unlock()
}
func (t *fakeTransport) Multicast(dsts []message.NodeID, p []byte) {
	t.mu.Lock()
	t.wires = append(t.wires, append([]byte(nil), p...))
	t.dsts = append(t.dsts, message.NoNode)
	t.mu.Unlock()
}
func (t *fakeTransport) Close() {}

func (t *fakeTransport) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.wires)
}

// ownedTransport additionally implements transport.Multicaster, releasing
// every buffer immediately (udpnet's behavior).
type ownedTransport struct {
	fakeTransport
	released atomic.Uint64
}

func (t *ownedTransport) MulticastOwned(dsts []message.NodeID, p []byte, release func([]byte)) {
	t.Multicast(dsts, p)
	if release != nil {
		release(p)
		t.released.Add(1)
	}
}

func (t *ownedTransport) SendOwned(dst message.NodeID, p []byte, release func([]byte)) {
	t.Send(dst, p)
	if release != nil {
		release(p)
		t.released.Add(1)
	}
}

// fakeSealer encodes a Commit's sequence number as the wire bytes and
// reports a controllable generation. sealGen is the generation stamped on
// sealed jobs; curGen is what Generation() reports.
type fakeSealer struct {
	sealGen atomic.Uint64
	curGen  atomic.Uint64
	seals   atomic.Uint64
	gate    chan struct{} // when non-nil, Seal blocks until the gate closes
}

func (s *fakeSealer) Seal(buf []byte, kind Kind, dst message.NodeID,
	m message.Message) ([]byte, uint64) {
	if s.gate != nil {
		<-s.gate
	}
	s.seals.Add(1)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.(*message.Commit).Seq))
	return buf, s.sealGen.Load()
}

func (s *fakeSealer) Generation() uint64 { return s.curGen.Load() }

func commitMsg(seq uint64) *message.Commit { return &message.Commit{Seq: message.Seq(seq)} }

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEgressOrderPreserved(t *testing.T) {
	// Workers seal out of order; the collector must hand buffers to the
	// transport in exact submission order.
	const n = 500
	ft := &fakeTransport{}
	s := &fakeSealer{}
	p := New(4, 0, s, ft)
	defer p.Close()
	for i := 0; i < n; i++ {
		if !p.Send(1, commitMsg(uint64(i)), Vector) {
			t.Fatalf("submit %d rejected", i)
		}
	}
	waitFor(t, "all sends", func() bool { return ft.count() == n })
	ft.mu.Lock()
	defer ft.mu.Unlock()
	for i, w := range ft.wires {
		if got := binary.LittleEndian.Uint64(w); got != uint64(i) {
			t.Fatalf("send %d carried seq %d: order not preserved", i, got)
		}
	}
	if st := p.Stats(); st.Submitted != n || st.Rejected != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEgressResealOnRotation(t *testing.T) {
	// Jobs whose stamped generation no longer matches the sealer's current
	// generation must be re-sealed by the collector before transmission.
	ft := &fakeTransport{}
	s := &fakeSealer{}
	s.sealGen.Store(6)
	s.curGen.Store(7) // every job looks like it crossed a rotation
	p := New(2, 0, s, ft)
	defer p.Close()
	const n = 50
	for i := 0; i < n; i++ {
		p.Send(1, commitMsg(uint64(i)), Vector)
	}
	waitFor(t, "all sends", func() bool { return ft.count() == n })
	if st := p.Stats(); st.Resealed != n {
		t.Fatalf("Resealed = %d, want %d", st.Resealed, n)
	}
	if got := s.seals.Load(); got != 2*n {
		t.Fatalf("sealer invoked %d times, want %d (seal + re-seal)", got, 2*n)
	}
	// Order must survive re-sealing.
	ft.mu.Lock()
	defer ft.mu.Unlock()
	for i, w := range ft.wires {
		if got := binary.LittleEndian.Uint64(w); got != uint64(i) {
			t.Fatalf("send %d carried seq %d after reseal", i, got)
		}
	}
}

func TestEgressSignaturesNeverResealed(t *testing.T) {
	// NoGeneration-stamped jobs (signatures) must not re-seal however the
	// generation moves.
	ft := &fakeTransport{}
	s := &fakeSealer{}
	s.sealGen.Store(NoGeneration)
	s.curGen.Store(3)
	p := New(1, 0, s, ft)
	defer p.Close()
	p.Send(1, commitMsg(0), Sign)
	waitFor(t, "send", func() bool { return ft.count() == 1 })
	if st := p.Stats(); st.Resealed != 0 {
		t.Fatalf("signature job re-sealed %d times", st.Resealed)
	}
}

func TestEgressOutboxOverflowCounted(t *testing.T) {
	// With the workers gated shut and a tiny queue, surplus submissions
	// must be dropped and counted, never block, and never wedge the
	// collector.
	ft := &fakeTransport{}
	gate := make(chan struct{})
	s := &fakeSealer{gate: gate}
	p := New(1, 4, s, ft)
	defer p.Close()
	accepted, rejected := 0, 0
	for i := 0; i < 64; i++ {
		if p.Send(1, commitMsg(uint64(i)), Vector) {
			accepted++
		} else {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("no submissions rejected with a gated 4-slot pipeline")
	}
	st := p.Stats()
	if st.Rejected != uint64(rejected) || st.Submitted != uint64(accepted) {
		t.Fatalf("stats %+v, want rejected=%d submitted=%d", st, rejected, accepted)
	}
	close(gate) // release the workers; accepted jobs must all drain
	waitFor(t, "accepted sends to drain", func() bool { return ft.count() == accepted })
}

func TestEgressRawBypassesSealer(t *testing.T) {
	// Raw jobs carry pre-encoded bytes: the sealer must never run and the
	// bytes arrive untouched, ordered with sealed traffic.
	ft := &fakeTransport{}
	s := &fakeSealer{}
	p := New(2, 0, s, ft)
	defer p.Close()
	raw := []byte{0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0}
	p.Send(1, commitMsg(7), Vector)
	p.SendRaw(2, raw)
	p.MulticastRaw([]message.NodeID{1, 2, 3}, raw)
	waitFor(t, "three sends", func() bool { return ft.count() == 3 })
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if binary.LittleEndian.Uint64(ft.wires[0]) != 7 {
		t.Fatalf("sealed job out of order: % x", ft.wires[0])
	}
	for i := 1; i < 3; i++ {
		if string(ft.wires[i]) != string(raw) {
			t.Fatalf("raw bytes modified in flight: % x", ft.wires[i])
		}
	}
	if s.seals.Load() != 1 {
		t.Fatalf("sealer ran %d times, want 1", s.seals.Load())
	}
}

func TestEgressUsesOwnedSurface(t *testing.T) {
	// A transport implementing Multicaster receives buffers through the
	// owned surface and its releases recycle them.
	ot := &ownedTransport{}
	s := &fakeSealer{}
	p := New(1, 0, s, ot)
	defer p.Close()
	const n = 20
	for i := 0; i < n; i++ {
		p.Multicast([]message.NodeID{1, 2, 3}, commitMsg(uint64(i)), Vector)
	}
	waitFor(t, "owned sends", func() bool { return ot.count() == n })
	if got := ot.released.Load(); got != n {
		t.Fatalf("released %d buffers, want %d", got, n)
	}
}

func TestEgressCloseStopsTransmission(t *testing.T) {
	ft := &fakeTransport{}
	s := &fakeSealer{}
	p := New(2, 0, s, ft)
	p.Send(1, commitMsg(1), Vector)
	p.Close()
	if p.Send(1, commitMsg(2), Vector) {
		t.Fatal("Send accepted after Close")
	}
	if st := p.Stats(); st.Rejected == 0 {
		t.Fatal("post-Close send not counted as rejected")
	}
	var _ transport.Transport = ft // the fake really is a Transport
}
