package checkpoint

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/message"
	"repro/internal/statemachine"
)

func newMgr(t testing.TB, pages, pageSize, fanout int) (*statemachine.Region, *Manager) {
	t.Helper()
	r := statemachine.NewRegion(pages*pageSize, pageSize)
	m := NewManager(r, fanout)
	return r, m
}

func TestTreeGeometry(t *testing.T) {
	_, m := newMgr(t, 256, 64, 16)
	if m.Levels() != 3 { // 256 leaves, 16 mid, 1 root
		t.Fatalf("levels = %d, want 3", m.Levels())
	}
	if m.Width(0) != 1 || m.Width(1) != 16 || m.Width(2) != 256 {
		t.Fatalf("widths = %d %d %d", m.Width(0), m.Width(1), m.Width(2))
	}
	if m.Width(5) != 0 {
		t.Fatal("out-of-range level has nonzero width")
	}
}

func TestTreeGeometryNonPowerOfFanout(t *testing.T) {
	_, m := newMgr(t, 10, 64, 4) // 10 -> 3 -> 1
	if m.Levels() != 3 || m.Width(1) != 3 || m.Width(2) != 10 {
		t.Fatalf("levels=%d w1=%d w2=%d", m.Levels(), m.Width(1), m.Width(2))
	}
	if err := m.VerifyTree(); err != nil {
		t.Fatal(err)
	}
}

func TestSinglePageTree(t *testing.T) {
	r, m := newMgr(t, 1, 64, 4)
	if m.Levels() != 1 {
		t.Fatalf("levels = %d, want 1", m.Levels())
	}
	d0 := m.RootDigest()
	r.WriteAt(0, []byte("x"))
	m.Take(128, nil)
	if m.RootDigest() == d0 {
		t.Fatal("root unchanged after write")
	}
}

func TestRootChangesOnlyWhenStateChanges(t *testing.T) {
	r, m := newMgr(t, 64, 64, 8)
	d0 := m.RootDigest()
	m.Take(128, nil)
	if m.RootDigest() != d0 {
		t.Fatal("root changed with no writes")
	}
	r.WriteAt(100, []byte{42})
	m.Take(256, nil)
	if m.RootDigest() == d0 {
		t.Fatal("root did not change after a write")
	}
	if err := m.VerifyTree(); err != nil {
		t.Fatal(err)
	}
}

func TestIdenticalStatesIdenticalDigests(t *testing.T) {
	// Two replicas applying the same writes at the same checkpoints must
	// produce identical root digests — the agreement the checkpoint
	// protocol depends on.
	r1, m1 := newMgr(t, 32, 64, 4)
	r2, m2 := newMgr(t, 32, 64, 4)
	rng := rand.New(rand.NewSource(3))
	for ck := 1; ck <= 5; ck++ {
		for i := 0; i < 20; i++ {
			off := rng.Intn(32*64 - 8)
			var b [8]byte
			rng.Read(b[:])
			r1.WriteAt(off, b[:])
			r2.WriteAt(off, b[:])
		}
		s1 := m1.Take(message.Seq(ck*128), nil)
		s2 := m2.Take(message.Seq(ck*128), nil)
		if s1.Root != s2.Root {
			t.Fatalf("checkpoint %d: roots differ", ck)
		}
	}
}

func TestDivergentStatesDivergentDigests(t *testing.T) {
	r1, m1 := newMgr(t, 32, 64, 4)
	r2, m2 := newMgr(t, 32, 64, 4)
	r1.WriteAt(0, []byte{1})
	r2.WriteAt(0, []byte{2})
	if m1.Take(128, nil).Root == m2.Take(128, nil).Root {
		t.Fatal("different states produced equal roots")
	}
}

func TestCopyOnWritePreservesSnapshotReads(t *testing.T) {
	r, m := newMgr(t, 8, 64, 4)
	r.WriteAt(0, []byte("first"))
	m.Take(128, nil)

	r.WriteAt(0, []byte("SECOND"))
	// Read page 0 at checkpoint 128: must show "first".
	page, _, ok := m.PageAt(128, 0)
	if !ok {
		t.Fatal("PageAt failed")
	}
	if string(page[:5]) != "first" {
		t.Fatalf("snapshot read got %q", page[:6])
	}
	// Live region shows the new value.
	if string(r.ReadAt(0, 6)) != "SECOND" {
		t.Fatal("live read wrong")
	}
	m.Take(256, nil)
	// Still readable at 128 through the chain.
	page, _, _ = m.PageAt(128, 0)
	if string(page[:5]) != "first" {
		t.Fatal("older snapshot read broken after second checkpoint")
	}
	p256, _, _ := m.PageAt(256, 0)
	if string(p256[:6]) != "SECOND" {
		t.Fatal("newer snapshot read broken")
	}
}

func TestSnapshotChainAcrossUnmodifiedEpochs(t *testing.T) {
	r, m := newMgr(t, 8, 64, 4)
	r.WriteAt(64, []byte("A"))
	m.Take(128, nil) // page 1 = A
	m.Take(256, nil) // no writes
	r.WriteAt(64, []byte("B"))
	m.Take(384, nil)
	// Page 1 at 128 and 256 must both read "A".
	for _, seq := range []message.Seq{128, 256} {
		p, _, ok := m.PageAt(seq, 1)
		if !ok || p[0] != 'A' {
			t.Fatalf("page at %d = %c, want A", seq, p[0])
		}
	}
	p, _, _ := m.PageAt(384, 1)
	if p[0] != 'B' {
		t.Fatal("latest snapshot wrong")
	}
}

func TestDiscardBefore(t *testing.T) {
	r, m := newMgr(t, 8, 64, 4)
	for ck := 1; ck <= 4; ck++ {
		r.WriteAt(0, []byte{byte(ck)})
		m.Take(message.Seq(ck*128), nil)
	}
	if m.SnapCount() != 5 { // includes initial 0
		t.Fatalf("snap count %d", m.SnapCount())
	}
	m.DiscardBefore(256)
	if m.SnapCount() != 3 {
		t.Fatalf("after discard %d, want 3", m.SnapCount())
	}
	if _, ok := m.Snapshot(128); ok {
		t.Fatal("discarded snapshot still present")
	}
	if _, ok := m.Snapshot(256); !ok {
		t.Fatal("kept snapshot missing")
	}
	p, _, ok := m.PageAt(256, 0)
	if !ok || p[0] != 2 {
		t.Fatalf("read after discard got %d", p[0])
	}
}

func TestChildrenAtMatchesNodeDigests(t *testing.T) {
	r, m := newMgr(t, 64, 64, 8)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		r.WriteAt(rng.Intn(64*64-4), []byte{byte(i)})
	}
	m.Take(128, nil)
	// Verify every interior node's children list matches NodeAt.
	for l := 0; l < m.Levels()-1; l++ {
		for i := 0; i < m.Width(l); i++ {
			kids, ok := m.ChildrenAt(128, l, i)
			if !ok {
				t.Fatalf("ChildrenAt(%d,%d) failed", l, i)
			}
			for _, k := range kids {
				info, ok := m.NodeAt(128, l+1, int(k.Index))
				if !ok || info.Digest != k.Digest || info.LastMod != k.LastMod {
					t.Fatalf("child info mismatch at level %d index %d", l+1, k.Index)
				}
			}
		}
	}
}

func TestInstallPageRebuildsDigests(t *testing.T) {
	// Replica A takes a checkpoint; replica B installs A's pages and must
	// arrive at the same root digest.
	rA, mA := newMgr(t, 16, 64, 4)
	_, mB := newMgr(t, 16, 64, 4)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10; i++ {
		rA.WriteAt(rng.Intn(16*64-8), []byte{byte(rng.Int())})
	}
	snapA := mA.Take(128, nil)

	for p := 0; p < 16; p++ {
		content, lm, ok := mA.PageAt(128, p)
		if !ok {
			t.Fatal("source read failed")
		}
		infoB, _ := mB.NodeAt(0, mB.Levels()-1, p)
		srcInfo, _ := mA.NodeAt(128, mA.Levels()-1, p)
		if infoB.Digest == srcInfo.Digest {
			continue // already up to date
		}
		mB.InstallPage(p, lm, content)
	}
	if mB.RootDigest() != snapA.Root {
		t.Fatal("fetched state root does not match source checkpoint")
	}
	snapB := mB.SealFetched(128, nil)
	if snapB.Root != snapA.Root || mB.SnapCount() != 1 {
		t.Fatal("SealFetched inconsistent")
	}
	if err := mB.VerifyTree(); err != nil {
		t.Fatal(err)
	}
}

func TestRecomputeFullFindsCorruption(t *testing.T) {
	r, m := newMgr(t, 16, 64, 4)
	r.WriteAt(0, []byte("data"))
	m.Take(128, nil)
	if bad := m.RecomputeFull(); len(bad) != 0 {
		t.Fatalf("clean state reported corrupt pages %v", bad)
	}
	m.CorruptLivePage(3)
	bad := m.RecomputeFull()
	if len(bad) != 1 || bad[0] != 3 {
		t.Fatalf("corruption scan got %v, want [3]", bad)
	}
}

func TestExtraCapturedPerSnapshot(t *testing.T) {
	r, m := newMgr(t, 4, 64, 4)
	r.WriteAt(0, []byte{1})
	s1 := m.Take(128, []byte("replies-1"))
	r.WriteAt(0, []byte{2})
	s2 := m.Take(256, []byte("replies-2"))
	if string(s1.Extra) != "replies-1" || string(s2.Extra) != "replies-2" {
		t.Fatal("extra blobs mixed up")
	}
	got, _ := m.Snapshot(128)
	if string(got.Extra) != "replies-1" {
		t.Fatal("snapshot lookup returned wrong extra")
	}
}

func TestCheckpointCostProportionalToDirtyPages(t *testing.T) {
	// The incremental property Table 8.12 relies on: digesting work is
	// bounded by dirty pages, not state size.
	r, m := newMgr(t, 1024, 64, 16)
	r.WriteAt(0, []byte{1}) // one dirty page
	before := m.PagesDigested
	m.Take(128, nil)
	if m.PagesDigested-before != 1 {
		t.Fatalf("digested %d pages for 1 dirty page", m.PagesDigested-before)
	}
	if err := m.VerifyTree(); err != nil {
		t.Fatal(err)
	}
}

// Property: after arbitrary write/checkpoint interleavings the tree is
// internally consistent and the latest snapshot root equals a from-scratch
// rebuild on an identical region.
func TestTreeConsistencyQuick(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := statemachine.NewRegion(32*64, 64)
		m := NewManager(r, 4)
		shadow := statemachine.NewRegion(32*64, 64)
		seq := message.Seq(0)
		lastMods := make([]message.Seq, 32)
		for i := 0; i < int(ops)%40+5; i++ {
			if rng.Intn(4) == 0 {
				seq += 128
				for _, p := range r.DirtyPages() {
					lastMods[p] = seq
				}
				m.Take(seq, nil)
			} else {
				off := rng.Intn(32*64 - 4)
				var b [4]byte
				rng.Read(b[:])
				r.WriteAt(off, b[:])
				shadow.WriteAt(off, b[:])
			}
		}
		seq += 128
		for _, p := range r.DirtyPages() {
			lastMods[p] = seq
		}
		snap := m.Take(seq, nil)
		if m.VerifyTree() != nil {
			return false
		}
		// From-scratch rebuild with the same lm values.
		m2 := NewManager(shadow, 4)
		for p := 0; p < 32; p++ {
			if lastMods[p] != 0 {
				m2.InstallPage(p, lastMods[p], shadow.Page(p))
			}
		}
		return m2.RootDigest() == snap.Root
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
