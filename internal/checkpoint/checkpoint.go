// Package checkpoint implements the hierarchical checkpoint management of
// Section 5.3: a partition tree over the paged service state with
// incrementally-maintained digests, copy-on-write logical snapshots, and the
// lookups the state-transfer and state-checking protocols need.
//
// The tree has a configurable fan-out; leaves are pages. Page digests are
// H(index, lm, value) where lm is the checkpoint at whose epoch the page
// last changed; an interior partition's digest is H(level, index, sum) where
// sum is the modular (AdHash) sum of its children's digests. This makes the
// cost of taking a checkpoint proportional to the number of pages modified
// since the previous one — the property measured in Table 8.12. (We deviate
// from the thesis in one detail: interior digests omit the partition's own
// lm so a fetching replica can rebuild the tree from leaf lm values alone;
// lm is still tracked and shipped in meta-data messages as a freshness
// hint.)
package checkpoint

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/message"
	"repro/internal/statemachine"
)

// NodeInfo describes one partition at some checkpoint.
type NodeInfo struct {
	LastMod message.Seq
	Digest  crypto.Digest
	Sum     crypto.Incr // interior nodes only: sum of child digests
}

type nodeKey struct {
	level int
	index int
}

// Snapshot is one logical copy of the state: the digest tree position and
// the copy-on-write page overlays needed to read the state as of Seq.
type Snapshot struct {
	Seq   message.Seq
	Root  crypto.Digest
	Extra []byte // serialized reply cache captured with the checkpoint

	// pages[p] is the content of page p at this checkpoint; present iff the
	// page changed after this checkpoint and before the next one.
	pages map[int][]byte
	// nodes[k] is the tree info of partition k at this checkpoint, present
	// under the same condition.
	nodes map[nodeKey]NodeInfo
}

// Manager owns the live partition tree and the chain of snapshots for one
// replica. Like the Region it digests, it belongs to the executor goroutine
// on the staged path; other goroutines reach it only inside Sync/execSync
// rendezvous.
//
// bftlint:owner=executor
type Manager struct {
	region *statemachine.Region
	fanout int
	levels int   // number of levels; level levels-1 is the leaf level
	width  []int // nodes per level

	live  [][]NodeInfo
	snaps []*Snapshot // ascending Seq

	// stats
	PagesCopied   uint64 // copy-on-write copies performed
	PagesDigested uint64 // page digests recomputed at checkpoints
}

// LeafDigest computes the digest of a page.
func LeafDigest(index int, lm message.Seq, content []byte) crypto.Digest {
	return crypto.DigestOfU64([]uint64{uint64(index), uint64(lm)}, content)
}

// InteriorDigest computes the digest of an interior partition from the
// modular sum of its children's digests.
func InteriorDigest(level, index int, sum crypto.Incr) crypto.Digest {
	d := sum.Digest()
	return crypto.DigestOfU64([]uint64{uint64(level), uint64(index)}, d[:])
}

// CombinedDigest folds the partition-tree root and the checkpointed
// reply-cache blob into the digest carried by checkpoint messages — the
// one value every replica must agree on for a checkpoint to stabilize.
func CombinedDigest(root crypto.Digest, extra []byte) crypto.Digest {
	return crypto.DigestOf(root[:], extra)
}

// NewManager builds the tree for region with the given fan-out and takes the
// initial checkpoint at sequence number 0.
func NewManager(region *statemachine.Region, fanout int) *Manager {
	if fanout < 2 {
		panic("checkpoint: fanout must be >= 2")
	}
	m := &Manager{region: region, fanout: fanout}

	// Compute level widths from leaves up, then reverse so level 0 is root.
	widths := []int{region.NumPages()}
	for widths[len(widths)-1] > 1 {
		w := (widths[len(widths)-1] + fanout - 1) / fanout
		widths = append(widths, w)
	}
	m.levels = len(widths)
	m.width = make([]int, m.levels)
	for i := range widths {
		m.width[m.levels-1-i] = widths[i]
	}

	m.live = make([][]NodeInfo, m.levels)
	for l := range m.live {
		m.live[l] = make([]NodeInfo, m.width[l])
	}

	// Initial digests: every page at lm 0.
	leaf := m.levels - 1
	for p := 0; p < region.NumPages(); p++ {
		m.live[leaf][p] = NodeInfo{LastMod: 0, Digest: LeafDigest(p, 0, region.Page(p))}
	}
	for l := leaf - 1; l >= 0; l-- {
		for i := 0; i < m.width[l]; i++ {
			var sum crypto.Incr
			for c := i * fanout; c < min((i+1)*fanout, m.width[l+1]); c++ {
				sum = sum.Add(crypto.IncrOf(m.live[l+1][c].Digest))
			}
			m.live[l][i] = NodeInfo{LastMod: 0, Sum: sum, Digest: InteriorDigest(l, i, sum)}
		}
	}

	m.snaps = []*Snapshot{{
		Seq:   0,
		Root:  m.live[0][0].Digest,
		pages: make(map[int][]byte),
		nodes: make(map[nodeKey]NodeInfo),
	}}

	region.SetOnModify(m.beforePageWrite)
	return m
}

// Levels returns the number of tree levels (root = level 0).
func (m *Manager) Levels() int { return m.levels }

// Fanout returns the tree fan-out.
func (m *Manager) Fanout() int { return m.fanout }

// Width returns the number of partitions at a level.
func (m *Manager) Width(level int) int {
	if level < 0 || level >= m.levels {
		return 0
	}
	return m.width[level]
}

// RootDigest returns the digest of the live tree root.
func (m *Manager) RootDigest() crypto.Digest { return m.live[0][0].Digest }

// beforePageWrite is the copy-on-write hook: the first time a page is
// modified after the newest checkpoint, its pre-image is stashed in that
// checkpoint's overlay.
func (m *Manager) beforePageWrite(p int) {
	if len(m.snaps) == 0 {
		return
	}
	newest := m.snaps[len(m.snaps)-1]
	if _, ok := newest.pages[p]; ok {
		return
	}
	cp := make([]byte, m.region.PageSize())
	copy(cp, m.region.Page(p))
	newest.pages[p] = cp
	m.PagesCopied++
}

// stashNode preserves the pre-image of a tree node in the newest snapshot
// before the live tree overwrites it.
func (m *Manager) stashNode(level, index int, info NodeInfo) {
	if len(m.snaps) == 0 {
		return
	}
	newest := m.snaps[len(m.snaps)-1]
	k := nodeKey{level, index}
	if _, ok := newest.nodes[k]; !ok {
		newest.nodes[k] = info
	}
}

// Take creates the checkpoint for sequence number seq: it folds the dirty
// pages into the digest tree (cost proportional to the number of dirty
// pages), records the root digest, captures extra (the reply cache), and
// clears the dirty set. It returns the new snapshot.
func (m *Manager) Take(seq message.Seq, extra []byte) *Snapshot {
	dirty := m.region.DirtyPages()
	leaf := m.levels - 1

	// Update leaves.
	touchedParents := make(map[int]struct{})
	for _, p := range dirty {
		old := m.live[leaf][p]
		m.stashNode(leaf, p, old)
		nd := NodeInfo{LastMod: seq, Digest: LeafDigest(p, seq, m.region.Page(p))}
		m.PagesDigested++
		m.live[leaf][p] = nd
		if m.levels > 1 {
			parent := p / m.fanout
			m.updateParentSum(leaf-1, parent, old.Digest, nd.Digest, seq, touchedParents)
		}
	}

	// Propagate level by level toward the root.
	for l := leaf - 1; l > 0; l-- {
		next := make(map[int]struct{})
		for i := range touchedParents {
			old := m.live[l][i] // already stashed+updated sum in updateParentSum
			newDigest := InteriorDigest(l, i, old.Sum)
			if newDigest != old.Digest {
				upd := old
				upd.Digest = newDigest
				upd.LastMod = seq
				m.live[l][i] = upd
				m.updateParentSum(l-1, i/m.fanout, old.Digest, newDigest, seq, next)
			}
		}
		touchedParents = next
	}
	if m.levels > 1 {
		root := m.live[0][0]
		root.Digest = InteriorDigest(0, 0, root.Sum)
		if len(dirty) > 0 {
			root.LastMod = seq
		}
		m.live[0][0] = root
	}

	snap := &Snapshot{
		Seq:   seq,
		Root:  m.live[0][0].Digest,
		Extra: append([]byte(nil), extra...),
		pages: make(map[int][]byte),
		nodes: make(map[nodeKey]NodeInfo),
	}
	m.snaps = append(m.snaps, snap)
	m.region.ClearDirty()
	return snap
}

// updateParentSum stashes the parent's pre-image (once) and folds the child
// digest change into its sum. The parent's digest/lm are fixed up later when
// its level is processed.
func (m *Manager) updateParentSum(level, index int, oldChild, newChild crypto.Digest, seq message.Seq, touched map[int]struct{}) {
	if _, ok := touched[index]; !ok {
		m.stashNode(level, index, m.live[level][index])
		touched[index] = struct{}{}
	}
	n := m.live[level][index]
	n.Sum = n.Sum.Sub(crypto.IncrOf(oldChild)).Add(crypto.IncrOf(newChild))
	m.live[level][index] = n
}

// Snapshot returns the snapshot taken at exactly seq, if it exists.
func (m *Manager) Snapshot(seq message.Seq) (*Snapshot, bool) {
	for _, s := range m.snaps {
		if s.Seq == seq {
			return s, true
		}
	}
	return nil, false
}

// Latest returns the most recent snapshot.
func (m *Manager) Latest() *Snapshot { return m.snaps[len(m.snaps)-1] }

// Oldest returns the oldest retained snapshot.
func (m *Manager) Oldest() *Snapshot { return m.snaps[0] }

// DiscardBefore drops snapshots with Seq < seq (log truncation, §2.3.4).
// The newest snapshot is always retained — a replica that learned of a
// stable checkpoint it has not reached yet still needs a base for state
// transfer diffing.
func (m *Manager) DiscardBefore(seq message.Seq) {
	if len(m.snaps) > 0 && m.snaps[len(m.snaps)-1].Seq < seq {
		seq = m.snaps[len(m.snaps)-1].Seq
	}
	keep := m.snaps[:0]
	for _, s := range m.snaps {
		if s.Seq >= seq {
			keep = append(keep, s)
		}
	}
	// Zero the tail so discarded snapshots can be collected.
	for i := len(keep); i < len(m.snaps); i++ {
		m.snaps[i] = nil
	}
	m.snaps = keep
}

// NodeAt returns partition (level, index)'s info as of checkpoint seq.
func (m *Manager) NodeAt(seq message.Seq, level, index int) (NodeInfo, bool) {
	if level < 0 || level >= m.levels || index < 0 || index >= m.width[level] {
		return NodeInfo{}, false
	}
	k := nodeKey{level, index}
	for _, s := range m.snaps {
		if s.Seq < seq {
			continue
		}
		if info, ok := s.nodes[k]; ok {
			return info, true
		}
	}
	return m.live[level][index], true
}

// ChildrenAt returns the info of every child of (level, index) at checkpoint
// seq, in child-index order.
func (m *Manager) ChildrenAt(seq message.Seq, level, index int) ([]message.PartInfo, bool) {
	if level < 0 || level >= m.levels-1 {
		return nil, false
	}
	lo := index * m.fanout
	hi := min(lo+m.fanout, m.width[level+1])
	if lo >= hi {
		return nil, false
	}
	out := make([]message.PartInfo, 0, hi-lo)
	for c := lo; c < hi; c++ {
		info, ok := m.NodeAt(seq, level+1, c)
		if !ok {
			return nil, false
		}
		out = append(out, message.PartInfo{Index: uint64(c), LastMod: info.LastMod, Digest: info.Digest})
	}
	return out, true
}

// PageAt returns the content and lm of page p as of checkpoint seq.
func (m *Manager) PageAt(seq message.Seq, p int) ([]byte, message.Seq, bool) {
	info, ok := m.NodeAt(seq, m.levels-1, p)
	if !ok {
		return nil, 0, false
	}
	for _, s := range m.snaps {
		if s.Seq < seq {
			continue
		}
		if content, ok := s.pages[p]; ok {
			return content, info.LastMod, true
		}
	}
	return m.region.Page(p), info.LastMod, true
}

// LiveDigest returns the digest of partition (level, index) in the live
// tree — the state "now", with no snapshot overlay applied. State transfer
// diffs fetched meta-data against it to skip partitions that already match.
func (m *Manager) LiveDigest(level, index int) crypto.Digest {
	if level < 0 || level >= m.levels || index < 0 || index >= m.width[level] {
		return crypto.Digest{}
	}
	return m.live[level][index].Digest
}

// AppendLiveDigests appends the live digest of every part (all at one level)
// to dst, in part order. It exists so the staged replica can price a whole
// meta-data child set — or a whole fetch window — at one executor
// rendezvous instead of one per partition.
func (m *Manager) AppendLiveDigests(dst []crypto.Digest, level int, parts []message.PartInfo) []crypto.Digest {
	for _, p := range parts {
		dst = append(dst, m.LiveDigest(level, int(p.Index)))
	}
	return dst
}

// HasSnapshot reports whether checkpoint seq is retained.
func (m *Manager) HasSnapshot(seq message.Seq) bool {
	_, ok := m.Snapshot(seq)
	return ok
}

// InstallPage overwrites page p with fetched content and records its lm,
// updating the live tree incrementally. Used by state transfer (§5.3.2).
func (m *Manager) InstallPage(p int, lm message.Seq, content []byte) {
	if len(content) != m.region.PageSize() {
		panic(fmt.Sprintf("checkpoint: InstallPage content %d bytes, want %d", len(content), m.region.PageSize()))
	}
	m.region.SetPage(p, content)
	leaf := m.levels - 1
	old := m.live[leaf][p]
	nd := NodeInfo{LastMod: lm, Digest: LeafDigest(p, lm, content)}
	m.live[leaf][p] = nd
	// Propagate digest change to the root immediately.
	oldD, newD := old.Digest, nd.Digest
	for l := leaf - 1; l >= 0; l-- {
		idx := p
		for k := leaf; k > l; k-- {
			idx /= m.fanout
		}
		n := m.live[l][idx]
		n.Sum = n.Sum.Sub(crypto.IncrOf(oldD)).Add(crypto.IncrOf(newD))
		if lm > n.LastMod {
			n.LastMod = lm
		}
		oldD = n.Digest
		n.Digest = InteriorDigest(l, idx, n.Sum)
		newD = n.Digest
		m.live[l][idx] = n
	}
}

// SealFetched finalizes a completed state transfer: the live state now
// equals checkpoint seq, so record it as a snapshot (replacing everything
// older) and clear dirty tracking.
func (m *Manager) SealFetched(seq message.Seq, extra []byte) *Snapshot {
	snap := &Snapshot{
		Seq:   seq,
		Root:  m.live[0][0].Digest,
		Extra: append([]byte(nil), extra...),
		pages: make(map[int][]byte),
		nodes: make(map[nodeKey]NodeInfo),
	}
	m.snaps = []*Snapshot{snap}
	m.region.ClearDirty()
	return snap
}

// RevertTo restores the live region and digest tree to the snapshot taken
// at seq and discards every later snapshot. It returns the snapshot's Extra
// blob (the reply cache as of that checkpoint) and false if the snapshot is
// not retained. Used when tentative executions abort at a view change
// (§5.1.2).
func (m *Manager) RevertTo(seq message.Seq) ([]byte, bool) {
	snap, ok := m.Snapshot(seq)
	if !ok {
		return nil, false
	}
	leaf := m.levels - 1
	// Restore page contents and leaf infos as of the snapshot.
	for p := 0; p < m.width[leaf]; p++ {
		info, _ := m.NodeAt(seq, leaf, p)
		content, _, _ := m.PageAt(seq, p)
		if &content[0] != &m.region.Page(p)[0] {
			copy(m.region.Page(p), content)
		}
		m.live[leaf][p] = info
	}
	// Restore interior infos as of the snapshot.
	for l := leaf - 1; l >= 0; l-- {
		for i := 0; i < m.width[l]; i++ {
			info, _ := m.NodeAt(seq, l, i)
			m.live[l][i] = info
		}
	}
	// Drop snapshots after seq; clear seq's own overlays (live == snapshot).
	keep := m.snaps[:0]
	for _, s := range m.snaps {
		if s.Seq <= seq {
			keep = append(keep, s)
		}
	}
	for i := len(keep); i < len(m.snaps); i++ {
		m.snaps[i] = nil
	}
	m.snaps = keep
	snap.pages = make(map[int][]byte)
	snap.nodes = make(map[nodeKey]NodeInfo)
	m.region.ClearDirty()
	return snap.Extra, true
}

// RecomputeFull recomputes every page digest against the live region,
// returning the pages whose stored digest does not match the recomputed one.
// This is the state-checking pass a recovering replica runs to find
// corruption (§5.3.3). Pages legitimately modified since the last checkpoint
// (still in the region's dirty set) are skipped: their digests are only
// updated when the next checkpoint is taken.
func (m *Manager) RecomputeFull() (badPages []int) {
	dirty := make(map[int]struct{})
	for _, p := range m.region.DirtyPages() {
		dirty[p] = struct{}{}
	}
	leaf := m.levels - 1
	for p := 0; p < m.width[leaf]; p++ {
		if _, ok := dirty[p]; ok {
			continue
		}
		info := m.live[leaf][p]
		want := LeafDigest(p, info.LastMod, m.region.Page(p))
		if want != info.Digest {
			badPages = append(badPages, p)
		}
	}
	return badPages
}

// VerifyTree recomputes the entire tree bottom-up and reports whether every
// stored interior digest is consistent (test/diagnostic helper).
func (m *Manager) VerifyTree() error {
	leaf := m.levels - 1
	for l := leaf - 1; l >= 0; l-- {
		for i := 0; i < m.width[l]; i++ {
			var sum crypto.Incr
			for c := i * m.fanout; c < min((i+1)*m.fanout, m.width[l+1]); c++ {
				sum = sum.Add(crypto.IncrOf(m.live[l+1][c].Digest))
			}
			if sum != m.live[l][i].Sum {
				return fmt.Errorf("checkpoint: sum mismatch at level %d index %d", l, i)
			}
			if d := InteriorDigest(l, i, sum); d != m.live[l][i].Digest {
				return fmt.Errorf("checkpoint: digest mismatch at level %d index %d", l, i)
			}
		}
	}
	return nil
}

// CorruptLivePage flips a byte of a live page *without* dirty tracking,
// simulating an attacker modifying state behind the library's back. For
// fault-injection tests only.
func (m *Manager) CorruptLivePage(p int) {
	m.region.Page(p)[0] ^= 0xFF
}

// SnapCount returns the number of retained snapshots.
func (m *Manager) SnapCount() int { return len(m.snaps) }
