package checkpoint

import (
	"testing"

	"repro/internal/message"
	"repro/internal/statemachine"
)

// BenchmarkTakeSparse measures checkpoint creation with 1% of pages dirty —
// the common case Table 8.12 optimizes for.
func BenchmarkTakeSparse(b *testing.B) {
	const pages = 4096
	r := statemachine.NewRegion(pages*4096, 4096)
	m := NewManager(r, 16)
	seq := message.Seq(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < pages/100; p++ {
			r.WriteAt(p*4096, []byte{byte(i)})
		}
		seq += 128
		m.Take(seq, nil)
		m.DiscardBefore(seq)
	}
}

// BenchmarkTakeDense measures checkpoint creation with every page dirty.
func BenchmarkTakeDense(b *testing.B) {
	const pages = 256
	r := statemachine.NewRegion(pages*4096, 4096)
	m := NewManager(r, 16)
	seq := message.Seq(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < pages; p++ {
			r.WriteAt(p*4096, []byte{byte(i)})
		}
		seq += 128
		m.Take(seq, nil)
		m.DiscardBefore(seq)
	}
}

// BenchmarkPageAt measures snapshot reads through the copy-on-write chain.
func BenchmarkPageAt(b *testing.B) {
	r := statemachine.NewRegion(256*4096, 4096)
	m := NewManager(r, 16)
	for ck := 1; ck <= 4; ck++ {
		r.WriteAt(ck*4096, []byte{byte(ck)})
		m.Take(message.Seq(ck*128), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := m.PageAt(128, i%256); !ok {
			b.Fatal("read failed")
		}
	}
}

// BenchmarkRevertTo measures the tentative-execution rollback path.
func BenchmarkRevertTo(b *testing.B) {
	const pages = 256
	r := statemachine.NewRegion(pages*4096, 4096)
	m := NewManager(r, 16)
	m.Take(128, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < 16; p++ {
			r.WriteAt(p*4096, []byte{byte(i)})
		}
		if _, ok := m.RevertTo(128); !ok {
			b.Fatal("revert failed")
		}
	}
}
