// Package statemachine defines the deterministic state machine abstraction
// the BFT library replicates (Definition 2.4.1 of the thesis) and the paged
// memory region in which services keep their state.
//
// Like the thesis's library, the service state lives in a contiguous memory
// region allocated by the library and divided into fixed-size pages. The
// service must announce writes via Region.Modify (the thesis's Byz_modify
// upcall) so the checkpoint manager can copy-on-write the pages about to
// change and update digests incrementally.
package statemachine

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"

	"repro/internal/message"
)

// Service is the replicated application. Implementations must be
// deterministic: the result and the new state must be a pure function of the
// current state, the operation, the client id and the agreed
// non-deterministic value. The transition function must be total — invalid
// operations must return an encoded error result, never diverge.
type Service interface {
	// Execute applies one operation and returns its result. The client id is
	// passed so the service can enforce access control (§2.4.2). nondet is
	// the value agreed through the protocol for this batch (§5.4).
	//
	// Concurrency: when the replica's staged executor is enabled
	// (Config.Opt.ExecPipeline), Execute runs on the executor goroutine
	// while IsReadOnly, ProposeNonDet, and CheckNonDet keep running on the
	// protocol event loop. Those three must therefore not read Region
	// state (decide from the operation bytes and local clocks, as
	// kvservice and bfs do) or must synchronize internally.
	Execute(client message.NodeID, op []byte, nondet []byte) []byte

	// IsReadOnly reports whether op does not modify state. It is the
	// service-specific upcall guarding the read-only optimization (§5.1.3);
	// it must be conservative because clients can lie.
	IsReadOnly(op []byte) bool

	// ProposeNonDet is invoked at the primary to pick the non-deterministic
	// value for a batch (e.g. a timestamp). Deterministic services return
	// nil.
	ProposeNonDet() []byte

	// CheckNonDet is invoked at backups to validate the primary's proposal.
	// The decision must be deterministic given state and arguments.
	CheckNonDet(nondet []byte) bool
}

// Region is the paged state of one replica. The zero offset layout is owned
// entirely by the service; the replication library only sees pages.
//
// Ownership: a Region belongs to exactly one goroutine at a time — the
// replica event loop on the serial path, or the stage-3 executor goroutine
// once Config.Opt.ExecPipeline hands execution off (other goroutines may
// then touch it only inside executor Sync rendezvous). The mutGuard below
// turns a violated handoff into a panic even without the race detector;
// the owner annotation lets bftowner report the same violations at build
// time.
//
// bftlint:owner=executor
type Region struct {
	pageSize int
	data     []byte
	dirty    map[int]struct{}
	// onModify, when set, is invoked before a page is first dirtied; the
	// checkpoint manager uses it for copy-on-write snapshots.
	onModify func(page int)
	// mutGuard is a cheap single-mutator assertion: every mutation
	// announcement CASes it 0->1 and back, so two goroutines mutating
	// concurrently trip the panic with high probability. mutHolder records
	// the current mutator's call site (best effort — stored just after the
	// CAS) so the panic can name both parties; bftowner reports the same
	// violations statically.
	mutGuard  atomic.Int32
	mutHolder atomic.Uintptr
}

// NewRegion allocates a region of size bytes divided into pageSize pages.
// size is rounded up to a whole number of pages.
func NewRegion(size, pageSize int) *Region {
	if pageSize <= 0 {
		panic("statemachine: page size must be positive")
	}
	pages := (size + pageSize - 1) / pageSize
	if pages == 0 {
		pages = 1
	}
	return &Region{
		pageSize: pageSize,
		data:     make([]byte, pages*pageSize),
		dirty:    make(map[int]struct{}),
	}
}

// PageSize returns the page size in bytes.
func (r *Region) PageSize() int { return r.pageSize }

// NumPages returns the number of pages.
func (r *Region) NumPages() int { return len(r.data) / r.pageSize }

// Size returns the total size in bytes.
func (r *Region) Size() int { return len(r.data) }

// SetOnModify installs the copy-on-write hook. Pass nil to clear.
func (r *Region) SetOnModify(f func(page int)) { r.onModify = f }

// beginMut asserts this goroutine is the Region's sole mutator right now;
// endMut releases the assertion. On violation the panic names both call
// sites — the losing one and (best effort) the one currently holding the
// guard — so the runtime diagnostic cross-references the static bftowner
// report.
func (r *Region) beginMut() {
	if !r.mutGuard.CompareAndSwap(0, 1) {
		panic(fmt.Sprintf(
			"statemachine: concurrent Region mutation (single-owner contract violated): %s raced %s",
			mutSite(mutCallerPC()), mutSite(r.mutHolder.Load())))
	}
	r.mutHolder.Store(mutCallerPC())
}

func (r *Region) endMut() { r.mutGuard.Store(0) }

// pkgPrefix identifies this package's frames when walking the stack for
// the first external caller.
const pkgPrefix = "repro/internal/statemachine."

// mutCallerPC returns the return PC of the first stack frame outside this
// package: the service or executor call site that entered the Region.
func mutCallerPC() uintptr {
	var pcs [8]uintptr
	n := runtime.Callers(2, pcs[:])
	for _, pc := range pcs[:n] {
		fn := runtime.FuncForPC(pc - 1)
		if fn == nil || !strings.HasPrefix(fn.Name(), pkgPrefix) {
			return pc
		}
	}
	return 0
}

// mutSite formats a PC captured by mutCallerPC as "func (file:line)".
func mutSite(pc uintptr) string {
	if pc == 0 {
		return "unknown call site"
	}
	fn := runtime.FuncForPC(pc - 1)
	if fn == nil {
		return "unknown call site"
	}
	file, line := fn.FileLine(pc - 1)
	return fmt.Sprintf("%s (%s:%d)", fn.Name(), file, line)
}

// Modify declares that [off, off+n) is about to be written. Services must
// call it before mutating state, exactly like the thesis's Byz_modify.
func (r *Region) Modify(off, n int) {
	if n <= 0 {
		return
	}
	r.beginMut()
	defer r.endMut()
	if off < 0 || off+n > len(r.data) {
		panic(fmt.Sprintf("statemachine: Modify(%d,%d) outside region of %d bytes", off, n, len(r.data)))
	}
	first := off / r.pageSize
	last := (off + n - 1) / r.pageSize
	for p := first; p <= last; p++ {
		if _, ok := r.dirty[p]; !ok {
			if r.onModify != nil {
				r.onModify(p)
			}
			r.dirty[p] = struct{}{}
		}
	}
}

// WriteAt copies b into the region at off, handling Modify itself.
func (r *Region) WriteAt(off int, b []byte) {
	r.Modify(off, len(b))
	copy(r.data[off:], b)
}

// ReadAt returns a copy of n bytes at off.
func (r *Region) ReadAt(off, n int) []byte {
	out := make([]byte, n)
	copy(out, r.data[off:off+n])
	return out
}

// Bytes exposes the raw region. Callers that write through it must call
// Modify first; read-only access is free.
func (r *Region) Bytes() []byte { return r.data }

// Page returns the live contents of page p (not a copy).
func (r *Region) Page(p int) []byte {
	return r.data[p*r.pageSize : (p+1)*r.pageSize]
}

// SetPage overwrites page p (used by state transfer).
func (r *Region) SetPage(p int, b []byte) {
	r.Modify(p*r.pageSize, r.pageSize)
	copy(r.Page(p), b)
}

// DirtyPages returns the pages touched since the last ClearDirty, sorted
// ascending.
func (r *Region) DirtyPages() []int {
	out := make([]int, 0, len(r.dirty))
	for p := range r.dirty {
		out = append(out, p)
	}
	// insertion sort: dirty sets are small between checkpoints
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ClearDirty resets the dirty set (after a checkpoint is taken).
func (r *Region) ClearDirty() {
	r.beginMut()
	defer r.endMut()
	clear(r.dirty)
}

// Clone copies the full region contents (used for baselines and tests).
func (r *Region) Clone() *Region {
	nr := NewRegion(len(r.data), r.pageSize)
	copy(nr.data, r.data)
	return nr
}
