package statemachine

import (
	"testing"
)

func TestRegionGeometry(t *testing.T) {
	r := NewRegion(10_000, 4096)
	if r.PageSize() != 4096 {
		t.Fatalf("page size %d", r.PageSize())
	}
	if r.NumPages() != 3 { // 10000/4096 rounds up to 3
		t.Fatalf("pages %d, want 3", r.NumPages())
	}
	if r.Size() != 3*4096 {
		t.Fatalf("size %d", r.Size())
	}
	r0 := NewRegion(0, 64)
	if r0.NumPages() != 1 {
		t.Fatal("zero-size region must still hold one page")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := NewRegion(1024, 128)
	r.WriteAt(100, []byte("hello"))
	got := r.ReadAt(100, 5)
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestDirtyTracking(t *testing.T) {
	r := NewRegion(1024, 128) // 8 pages
	r.WriteAt(0, []byte{1})
	r.WriteAt(130, []byte{2})    // page 1
	r.WriteAt(127, []byte{9, 9}) // spans pages 0-1
	if got := r.DirtyPages(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("dirty = %v, want [0 1]", got)
	}
	r.ClearDirty()
	if got := r.DirtyPages(); len(got) != 0 {
		t.Fatalf("dirty after clear = %v", got)
	}
	r.WriteAt(1023, []byte{1})
	if got := r.DirtyPages(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("dirty = %v, want [7]", got)
	}
}

func TestModifyZeroLenNoop(t *testing.T) {
	r := NewRegion(256, 64)
	r.Modify(10, 0)
	if len(r.DirtyPages()) != 0 {
		t.Fatal("zero-length modify dirtied pages")
	}
}

func TestModifyOutOfRangePanics(t *testing.T) {
	r := NewRegion(256, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Modify did not panic")
		}
	}()
	r.Modify(250, 10)
}

func TestOnModifyHookFiresOncePerPageEpoch(t *testing.T) {
	r := NewRegion(256, 64)
	var calls []int
	r.SetOnModify(func(p int) { calls = append(calls, p) })
	r.WriteAt(0, []byte{1})
	r.WriteAt(1, []byte{2}) // same page: hook must not fire again
	r.WriteAt(64, []byte{3})
	if len(calls) != 2 || calls[0] != 0 || calls[1] != 1 {
		t.Fatalf("hook calls = %v, want [0 1]", calls)
	}
	r.ClearDirty()
	r.WriteAt(0, []byte{4})
	if len(calls) != 3 {
		t.Fatal("hook must fire again after ClearDirty")
	}
}

func TestSetPageAndPage(t *testing.T) {
	r := NewRegion(256, 64)
	content := make([]byte, 64)
	for i := range content {
		content[i] = byte(i)
	}
	r.SetPage(2, content)
	got := r.Page(2)
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("page byte %d = %d", i, got[i])
		}
	}
	if d := r.DirtyPages(); len(d) != 1 || d[0] != 2 {
		t.Fatalf("dirty %v", d)
	}
}

func TestClone(t *testing.T) {
	r := NewRegion(256, 64)
	r.WriteAt(5, []byte("abc"))
	c := r.Clone()
	if string(c.ReadAt(5, 3)) != "abc" {
		t.Fatal("clone content differs")
	}
	c.WriteAt(5, []byte("xyz"))
	if string(r.ReadAt(5, 3)) != "abc" {
		t.Fatal("clone shares storage with original")
	}
}

func TestDirtyPagesSorted(t *testing.T) {
	r := NewRegion(64*64, 64)
	for _, p := range []int{33, 2, 17, 5, 60, 1} {
		r.WriteAt(p*64, []byte{1})
	}
	d := r.DirtyPages()
	for i := 1; i < len(d); i++ {
		if d[i-1] >= d[i] {
			t.Fatalf("dirty pages not sorted: %v", d)
		}
	}
}
