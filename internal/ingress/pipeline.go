// Package ingress is the staged receive path of the replication library: a
// worker pool that unmarshals and authenticates raw datagrams in parallel
// and delivers typed, verified messages downstream in arrival order.
//
// Castro & Liskov's performance argument (§5.1 of the thesis) is that MAC
// authenticators make Byzantine agreement cheap; but cheap-per-message
// crypto still saturates one core once message rates grow, and a replica
// whose event loop decodes and MAC-checks serially caps its throughput
// there. The pipeline splits the receive path into stages:
//
//	transport -> Submit (arrival order) -> workers (decode + verify)
//	          -> collector (re-sequenced to arrival order) -> sink
//
// Protocol state stays single-threaded: only the pure, state-free work —
// wire decoding and MAC/signature verification against an immutable
// key-store snapshot — runs on the pool. The collector releases results in
// exactly the order Submit accepted them, so the downstream event loop
// observes the same per-sender (indeed, the same total) message order as
// the serial path and no protocol logic can tell the difference.
package ingress

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/message"
)

// Verifier authenticates a decoded message. Implementations must be safe
// for concurrent use; verdicts are computed on pool workers. The returned
// tag is opaque to the pipeline and travels with the verdict to the Sink —
// consumers use it to stamp the conditions a verdict was computed under
// (e.g. the key-store generation, so the event loop can detect that a key
// refresh invalidated an in-flight verdict and re-verify).
type Verifier interface {
	Verify(m message.Message) (ok bool, tag uint64)
}

// VerifierFunc adapts a function to the Verifier interface.
type VerifierFunc func(m message.Message) (bool, uint64)

// Verify implements Verifier.
func (f VerifierFunc) Verify(m message.Message) (bool, uint64) { return f(m) }

// Sink receives each decoded message together with its authentication
// verdict and the verifier's tag, in arrival order, from a single collector
// goroutine. Messages that fail to decode are dropped before the sink (the
// serial path ignored them too); messages that decode but fail
// authentication are passed with verified=false so the consumer can count
// them or apply fallbacks (the unauthenticated view-change rule of §3.2.4).
type Sink func(m message.Message, verified bool, tag uint64)

// job carries one datagram through the pool. The worker signals done (a
// reusable 1-buffered channel) once msg/ok/tag are set; the collector waits
// on jobs in submission order, then recycles the job via jobPool.
type job struct {
	raw  []byte
	done chan struct{}
	msg  message.Message
	ok   bool
	tag  uint64
}

// jobPool recycles jobs and their done channels: ingress is the per-message
// hot path, and two allocations per datagram would show up at high rates.
var jobPool = sync.Pool{
	New: func() any { return &job{done: make(chan struct{}, 1)} },
}

// Stats are the pipeline's counters (atomic; safe to read live).
type Stats struct {
	// Submitted counts datagrams accepted into the pipeline.
	Submitted uint64
	// Rejected counts datagrams refused by Submit (queue full or closed);
	// this models receive-buffer loss exactly like the serial inbox.
	Rejected uint64
	// DecodeFailed counts datagrams that did not parse as any message.
	DecodeFailed uint64
	// AuthFailed counts messages whose authenticator did not verify.
	AuthFailed uint64
}

// Pipeline is a fixed-size worker pool with an order-preserving collector.
type Pipeline struct {
	verify Verifier
	sink   Sink

	jobs  chan *job // work queue, consumed by any worker
	order chan *job // same jobs in submission order, consumed by collector
	quit  chan struct{}

	submitMu sync.Mutex // serializes Submit so order == acceptance order
	closed   atomic.Bool
	wg       sync.WaitGroup

	submitted    atomic.Uint64
	rejected     atomic.Uint64
	decodeFailed atomic.Uint64
	authFailed   atomic.Uint64
}

// New starts a pipeline with the given pool size (0 means GOMAXPROCS) and
// queue capacity (0 means 8192, matching the replica inbox), delivering to
// sink. Close releases the pool. The sink closure runs on the collector
// goroutine, never the caller's: it must confine itself to worker-safe
// state (channels, atomics).
//
// bftlint:runs=worker
func New(workers, queueCap int, v Verifier, sink Sink) *Pipeline {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueCap <= 0 {
		queueCap = 8192
	}
	p := &Pipeline{
		verify: v,
		sink:   sink,
		jobs:   make(chan *job, queueCap),
		order:  make(chan *job, queueCap),
		quit:   make(chan struct{}),
	}
	p.wg.Add(workers + 1)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	go p.collect()
	return p
}

// Submit hands one raw datagram to the pipeline. It never blocks: when the
// pipeline is saturated or closed the datagram is dropped and Submit
// reports false, modeling receive-buffer overflow.
func (p *Pipeline) Submit(raw []byte) bool {
	if p.closed.Load() {
		p.rejected.Add(1)
		return false
	}
	j := jobPool.Get().(*job)
	j.raw, j.msg, j.ok = raw, nil, false
	p.submitMu.Lock()
	select {
	case p.order <- j:
	default:
		p.submitMu.Unlock()
		p.rejected.Add(1)
		jobPool.Put(j)
		return false
	}
	select {
	case p.jobs <- j:
	default:
		// order accepted but the work queue is full (workers far behind):
		// resolve the reserved slot as a decode-free drop so the collector
		// never stalls on it.
		j.done <- struct{}{}
		p.submitMu.Unlock()
		p.rejected.Add(1)
		return false
	}
	p.submitMu.Unlock()
	p.submitted.Add(1)
	return true
}

// Close stops accepting datagrams and releases the workers and collector.
// In-flight datagrams may or may not reach the sink; after Close returns,
// the sink is never invoked again.
func (p *Pipeline) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.quit)
		p.wg.Wait()
	}
}

// Stats returns a snapshot of the counters.
func (p *Pipeline) Stats() Stats {
	return Stats{
		Submitted:    p.submitted.Load(),
		Rejected:     p.rejected.Load(),
		DecodeFailed: p.decodeFailed.Load(),
		AuthFailed:   p.authFailed.Load(),
	}
}

// worker decodes and authenticates datagrams off the shared queue.
//
// bftlint:entrypoint=worker
func (p *Pipeline) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case j := <-p.jobs:
			m, err := message.Unmarshal(j.raw)
			if err == nil {
				j.msg = m
				j.ok, j.tag = p.verify.Verify(m)
				if !j.ok {
					p.authFailed.Add(1)
				}
			} else {
				p.decodeFailed.Add(1)
			}
			j.done <- struct{}{}
		}
	}
}

// collect re-sequences verdicts into acceptance order and feeds the sink.
//
// bftlint:entrypoint=worker
func (p *Pipeline) collect() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case j := <-p.order:
			select {
			case <-j.done:
			case <-p.quit:
				return
			}
			if j.msg != nil {
				p.sink(j.msg, j.ok, j.tag)
			}
			j.raw, j.msg = nil, nil
			jobPool.Put(j)
		}
	}
}
