package ingress

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/message"
)

// BenchmarkIngressPipeline compares the serial receive path (decode + MAC
// verification inline, as Replica.onRaw does with the pipeline off) against
// the worker pool at 1/2/4/8 workers. The workload is MAC-authenticated
// requests with a 1 KiB operation — the neighborhood of the paper's 0/4 and
// 4/0 benchmark operations (§8.3.2). ns/op is per verified message, so
// verified-messages/sec = 1e9 / (ns/op).
func BenchmarkIngressPipeline(b *testing.B) {
	const (
		opSize   = 1024
		preGen   = 4096
		queueCap = 16384
	)
	raws, rks := makeAuthedRequests(1000, preGen, opSize)
	verify := keystoreVerifier(rks)

	b.Run("serial", func(b *testing.B) {
		count := 0
		b.ReportAllocs()
		b.SetBytes(int64(len(raws[0])))
		for i := 0; i < b.N; i++ {
			m, err := message.Unmarshal(raws[i%preGen])
			if err != nil {
				b.Fatal(err)
			}
			if ok, _ := verify.Verify(m); ok {
				count++
			}
		}
		if count != b.N {
			b.Fatalf("verified %d/%d", count, b.N)
		}
	})

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			done := make(chan struct{})
			count := 0
			p := New(workers, queueCap, verify, func(m message.Message, ok bool, _ uint64) {
				if !ok {
					b.Error("authentic message failed verification")
				}
				count++
				if count == b.N {
					close(done)
				}
			})
			defer p.Close()
			b.ReportAllocs()
			b.SetBytes(int64(len(raws[0])))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for !p.Submit(raws[i%preGen]) {
					runtime.Gosched() // backpressure: wait for queue headroom
				}
			}
			<-done
		})
	}
}
