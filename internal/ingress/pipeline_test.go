package ingress

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/message"
)

// makeAuthedRequests marshals count requests from sender, MAC'd for
// receiver 0 of a 4-principal group, with opSize bytes of operation.
func makeAuthedRequests(sender uint32, count, opSize int) ([][]byte, *crypto.KeyStore) {
	cks := crypto.NewKeyStore(sender)
	rks := crypto.NewKeyStore(0)
	for i := uint32(0); i < 4; i++ {
		cks.InstallInitial(i)
	}
	rks.InstallInitial(sender)
	raws := make([][]byte, count)
	for i := 0; i < count; i++ {
		req := &message.Request{
			Client:    message.NodeID(sender),
			Timestamp: uint64(i + 1),
			Replier:   message.NoNode,
			Op:        make([]byte, opSize),
		}
		req.Auth = message.Auth{
			Kind:   message.AuthVector,
			Vector: cks.MakeAuthenticator(4, req.Payload()),
		}
		raws[i] = req.Marshal()
	}
	return raws, rks
}

func keystoreVerifier(rks *crypto.KeyStore) Verifier {
	return VerifierFunc(func(m message.Message) (bool, uint64) {
		a := m.AuthTrailer()
		if a.Kind != message.AuthVector {
			return false, rks.Generation()
		}
		ok := rks.CheckAuthenticator(uint32(m.Sender()), m.Payload(), a.Vector)
		return ok, rks.Generation()
	})
}

// TestPipelinePreservesOrder submits a long per-sender sequence and checks
// the sink observes it in exactly submission order at every pool size.
func TestPipelinePreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 5000
			raws, rks := makeAuthedRequests(1000, n, 16)

			var mu sync.Mutex
			var got []uint64
			done := make(chan struct{})
			p := New(workers, n, keystoreVerifier(rks), func(m message.Message, ok bool, _ uint64) {
				if !ok {
					t.Error("authentic message failed verification")
				}
				mu.Lock()
				got = append(got, m.(*message.Request).Timestamp)
				if len(got) == n {
					close(done)
				}
				mu.Unlock()
			})
			defer p.Close()

			for _, raw := range raws {
				if !p.Submit(raw) {
					t.Fatal("submit rejected below queue capacity")
				}
			}
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatalf("pipeline delivered %d/%d messages", len(got), n)
			}
			for i, ts := range got {
				if ts != uint64(i+1) {
					t.Fatalf("order violated at %d: got timestamp %d", i, ts)
				}
			}
		})
	}
}

// TestPipelineVerdicts checks forged and undecodable datagrams: garbage is
// dropped before the sink, bad MACs arrive with verified=false.
func TestPipelineVerdicts(t *testing.T) {
	raws, rks := makeAuthedRequests(1000, 2, 16)
	forged, _ := makeAuthedRequests(1001, 1, 16) // MAC'd with wrong keys
	// rks only knows peer 1000, so 1001's MAC cannot verify.

	type verdict struct {
		ts uint64
		ok bool
	}
	out := make(chan verdict, 8)
	p := New(2, 64, keystoreVerifier(rks), func(m message.Message, ok bool, _ uint64) {
		out <- verdict{m.(*message.Request).Timestamp, ok}
	})
	defer p.Close()

	p.Submit(raws[0])
	p.Submit([]byte{0xFF, 0x00, 0x01}) // bad tag: dropped in the worker
	p.Submit(forged[0])
	p.Submit(raws[1])

	want := []verdict{{1, true}, {1, false}, {2, true}}
	for i, w := range want {
		select {
		case v := <-out:
			if v != w {
				t.Fatalf("delivery %d = %+v, want %+v", i, v, w)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for delivery %d", i)
		}
	}
	if s := p.Stats(); s.DecodeFailed != 1 || s.AuthFailed != 1 {
		t.Fatalf("stats = %+v, want DecodeFailed=1 AuthFailed=1", s)
	}
}

// TestPipelineOverflowRejects fills the queue beyond capacity with no
// consumer headroom and checks Submit refuses instead of blocking.
func TestPipelineOverflowRejects(t *testing.T) {
	raws, rks := makeAuthedRequests(1000, 64, 16)
	gate := make(chan struct{})
	p := New(1, 4, keystoreVerifier(rks), func(message.Message, bool, uint64) { <-gate })
	defer p.Close()   // runs second: collector unblocks once gate closes
	defer close(gate) // runs first (LIFO)

	rejected := 0
	for i := 0; i < 64; i++ {
		if !p.Submit(raws[i%len(raws)]) {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("saturated pipeline never rejected a datagram")
	}
	if s := p.Stats(); s.Rejected == 0 {
		t.Fatalf("stats = %+v, want Rejected > 0", s)
	}
}

// TestPipelineSubmitAfterClose checks the post-Close contract.
func TestPipelineSubmitAfterClose(t *testing.T) {
	raws, rks := makeAuthedRequests(1000, 1, 16)
	p := New(2, 16, keystoreVerifier(rks), func(message.Message, bool, uint64) {
		t.Error("sink invoked after Close")
	})
	p.Close()
	if p.Submit(raws[0]) {
		t.Fatal("Submit accepted a datagram after Close")
	}
	p.Close() // idempotent
}
