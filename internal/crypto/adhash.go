package crypto

import "encoding/binary"

// Incr is an incremental digest: a 256-bit accumulator over which page and
// sub-partition digests are combined by modular addition (AdHash, Section
// 5.3.1). Because addition is commutative and invertible, updating the digest
// of a meta-data partition when one child changes costs one subtraction and
// one addition instead of rehashing every child; this is what makes frequent
// checkpoints cheap (Table 8.12's workload).
//
// The accumulator is four little-endian 64-bit limbs; arithmetic is modulo
// 2^256, which is collision resistant as long as the underlying hash is
// (AdHash security reduces to the hash plus the weighted knapsack problem;
// for this reproduction the stdlib SHA-256 stands in for the thesis's MD5).
type Incr [4]uint64

// IncrOf converts a digest into an accumulator element.
func IncrOf(d Digest) Incr {
	var v Incr
	for i := 0; i < 4; i++ {
		v[i] = binary.LittleEndian.Uint64(d[i*8:])
	}
	return v
}

// Digest converts the accumulator back to digest form (for wire transfer and
// comparison).
func (v Incr) Digest() Digest {
	var d Digest
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint64(d[i*8:], v[i])
	}
	return d
}

// Add returns v + o (mod 2^256).
func (v Incr) Add(o Incr) Incr {
	var r Incr
	var carry uint64
	for i := 0; i < 4; i++ {
		s := v[i] + o[i]
		c1 := uint64(0)
		if s < v[i] {
			c1 = 1
		}
		s2 := s + carry
		c2 := uint64(0)
		if s2 < s {
			c2 = 1
		}
		r[i] = s2
		carry = c1 + c2
	}
	return r
}

// Sub returns v - o (mod 2^256); it is the inverse of Add and enables
// incremental updates: parent.Sub(oldChild).Add(newChild).
func (v Incr) Sub(o Incr) Incr {
	var r Incr
	var borrow uint64
	for i := 0; i < 4; i++ {
		d := v[i] - o[i]
		b1 := uint64(0)
		if v[i] < o[i] {
			b1 = 1
		}
		d2 := d - borrow
		b2 := uint64(0)
		if d < borrow {
			b2 = 1
		}
		r[i] = d2
		borrow = b1 + b2
	}
	return r
}

// IsZero reports whether the accumulator is zero.
func (v Incr) IsZero() bool { return v == Incr{} }
