// Package crypto provides the cryptographic substrate for the BFT library:
// message digests, MACs and authenticators (the vector-of-MACs construction
// of Section 3.2.1 of the thesis), public-key signatures used by BFT-PK and
// by the proactive-recovery key exchange, and the incremental (AdHash-style)
// digests used by the hierarchical checkpoint partition tree (Section 5.3).
//
// The paper used MD5 digests, UMAC32 MACs and Rabin-Williams signatures; we
// substitute SHA-256, truncated HMAC-SHA-256 and Ed25519 from the Go standard
// library. The property the protocol depends on — MACs being orders of
// magnitude cheaper than signatures, digests in between — is preserved.
package crypto

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// DigestSize is the size in bytes of a message or state digest.
const DigestSize = 32

// MACSize is the size in bytes of a single (truncated) MAC tag.
// The thesis used 8-byte UMAC32 tags (a 4-byte tag plus a 4-byte nonce);
// we truncate HMAC-SHA-256 to the same size.
const MACSize = 8

// SigSize is the size in bytes of a signature (Ed25519).
const SigSize = ed25519.SignatureSize

// Digest is a collision-resistant hash of a message or of service state.
type Digest [DigestSize]byte

// ZeroDigest is the digest value used for the special null request that view
// changes use to fill sequence-number gaps (Section 2.3.5).
var ZeroDigest Digest

// IsZero reports whether d is the all-zero digest.
func (d Digest) IsZero() bool { return d == ZeroDigest }

// String returns an abbreviated hex form for logs.
func (d Digest) String() string { return fmt.Sprintf("%x", d[:4]) }

// DigestOf hashes the concatenation of the given byte slices.
func DigestOf(parts ...[]byte) Digest {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// DigestOfU64 hashes a sequence of uint64 values followed by byte slices.
// It is used where the digest must cover fixed header fields.
func DigestOfU64(nums []uint64, parts ...[]byte) Digest {
	h := sha256.New()
	var buf [8]byte
	for _, n := range nums {
		binary.LittleEndian.PutUint64(buf[:], n)
		h.Write(buf[:])
	}
	for _, p := range parts {
		h.Write(p)
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// MAC is a truncated message authentication tag for one sender/receiver pair.
type MAC [MACSize]byte

// ComputeMAC computes the MAC of payload under key.
func ComputeMAC(key []byte, payload []byte) MAC {
	mac := hmac.New(sha256.New, key)
	mac.Write(payload)
	var sum [sha256.Size]byte
	mac.Sum(sum[:0])
	var m MAC
	copy(m[:], sum[:MACSize])
	return m
}

// VerifyMAC reports whether m is a valid MAC of payload under key.
func VerifyMAC(key []byte, payload []byte, m MAC) bool {
	want := ComputeMAC(key, payload)
	// Constant time is unnecessary in the simulation but cheap.
	return hmac.Equal(want[:], m[:])
}

// Authenticator is a vector of MACs, one per replica, attached to messages
// that are multicast to the whole replica group (Section 3.2.1). Entry i is
// the MAC computed with the key the sender shares with replica i. The entry
// for the sender itself is left zero.
type Authenticator struct {
	// Epoch is the sender's key epoch; receivers reject authenticators from
	// epochs older than the freshness horizon (Section 4.3.1).
	Epoch uint32
	MACs  []MAC
}

// KeyPair is a public-key signature key pair. In BFT-PR the private key
// lives inside the simulated secure co-processor.
type KeyPair struct {
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// GenerateKeyPair creates a key pair from a deterministic seed. Production
// code would use crypto/rand; the simulation wants reproducibility.
func GenerateKeyPair(seed []byte) KeyPair {
	h := sha256.Sum256(seed)
	priv := ed25519.NewKeyFromSeed(h[:])
	return KeyPair{Public: priv.Public().(ed25519.PublicKey), private: priv}
}

// Sign signs payload with the private key.
func (kp KeyPair) Sign(payload []byte) []byte {
	return ed25519.Sign(kp.private, payload)
}

// Verify reports whether sig is a valid signature of payload under pub.
func Verify(pub ed25519.PublicKey, payload, sig []byte) bool {
	if len(sig) != ed25519.SignatureSize || len(pub) != ed25519.PublicKeySize {
		return false
	}
	return ed25519.Verify(pub, payload, sig)
}

// DeriveKey derives a deterministic symmetric key from a label and a set of
// integers. Used to set up initial session keys and by the simulated secure
// co-processor to generate fresh keys.
func DeriveKey(label string, nums ...uint64) []byte {
	h := sha256.New()
	h.Write([]byte(label))
	var buf [8]byte
	for _, n := range nums {
		binary.LittleEndian.PutUint64(buf[:], n)
		h.Write(buf[:])
	}
	return h.Sum(nil)[:16]
}
