package crypto

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestKeyStoreConcurrentVerifyDuringRefresh hammers the verification paths
// from many goroutines while key refreshes rotate session keys underneath,
// the exact interleaving the ingress pipeline produces: workers verifying
// MACs against copy-on-write snapshots while the replica event loop runs
// the proactive-recovery key exchange (§4.3). Run under -race.
func TestKeyStoreConcurrentVerifyDuringRefresh(t *testing.T) {
	const (
		peers     = 4
		verifiers = 8
		rounds    = 2000
	)
	// a is the receiver under test; senders[p] plays peer p.
	a := NewKeyStore(0)
	senders := make([]*KeyStore, peers+1)
	for p := 1; p <= peers; p++ {
		a.InstallInitial(uint32(p))
		senders[p] = NewKeyStore(uint32(p))
		senders[p].InstallInitial(0)
	}
	payload := []byte("concurrent verification payload")

	var stop atomic.Bool
	var verified atomic.Uint64
	var wg sync.WaitGroup

	// Verification workers: check authenticators and point MACs computed
	// with whatever key generation the sender currently holds. A check may
	// legitimately fail while a refresh is mid-handshake (receiver rotated,
	// sender not yet told); it must never race, tear, or panic.
	for w := 0; w < verifiers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := uint32(w%peers + 1)
			for !stop.Load() {
				av := senders[p].MakeAuthenticator(1, payload)
				if a.CheckAuthenticator(p, payload, av) {
					verified.Add(1)
				}
				mac := senders[p].ComputePointMAC(0, payload)
				if a.CheckPointMAC(p, payload, mac) {
					verified.Add(1)
				}
				// Exercise the snapshot read API the hot path uses.
				a.InKey(p)
				a.OutKey(p)
			}
		}(w)
	}

	// Refresher: the event-loop role. Rotate each peer's in-key the way
	// recovery does — derive, install, announce to the sender — plus
	// redundant InstallInitial calls (lazy installs must not roll epochs
	// back) and MakeAuthenticator calls (send path shares the snapshot).
	for epoch := uint32(1); epoch <= rounds; epoch++ {
		for p := uint32(1); p <= peers; p++ {
			k := a.RefreshIn(p, epoch, uint64(epoch))
			senders[p].SetOut(0, k, epoch)
			a.InstallInitial(p)
			a.MakeAuthenticator(peers+1, payload)
		}
	}
	stop.Store(true)
	wg.Wait()

	if verified.Load() == 0 {
		t.Fatal("no verification ever succeeded under concurrent refresh")
	}
	// After the dust settles, the final generation must verify cleanly.
	for p := uint32(1); p <= peers; p++ {
		mac := senders[p].ComputePointMAC(0, payload)
		if !a.CheckPointMAC(p, payload, mac) {
			t.Fatalf("final key generation for peer %d does not verify", p)
		}
		if _, epoch := a.InKey(p); epoch != rounds {
			t.Fatalf("peer %d epoch = %d, want %d", p, epoch, rounds)
		}
	}
}

// TestKeyStoreGeneration pins the contract the replica's stale-verdict
// re-check depends on: the generation changes on every real key mutation
// and stays put on redundant installs, so an unchanged generation proves a
// verdict was computed against current keys.
func TestKeyStoreGeneration(t *testing.T) {
	ks := NewKeyStore(0)
	g0 := ks.Generation()
	ks.InstallInitial(1)
	g1 := ks.Generation()
	if g1 == g0 {
		t.Fatal("first install did not advance the generation")
	}
	ks.InstallInitial(1) // redundant: no new generation
	if ks.Generation() != g1 {
		t.Fatal("redundant InstallInitial advanced the generation")
	}
	ks.RefreshIn(1, 1, 7)
	g2 := ks.Generation()
	if g2 == g1 {
		t.Fatal("RefreshIn did not advance the generation")
	}
	ks.SetOut(1, DeriveKey("x", 1), 1)
	if ks.Generation() == g2 {
		t.Fatal("SetOut did not advance the generation")
	}
}

// TestKeyStoreInstallInitialIdempotent verifies lazy installs cannot
// clobber refreshed keys (the ingress workers race InstallInitial against
// the event loop's RefreshIn).
func TestKeyStoreInstallInitialIdempotent(t *testing.T) {
	a := NewKeyStore(0)
	a.InstallInitial(1)
	k := a.RefreshIn(1, 3, 99)
	a.InstallInitial(1) // must be a no-op
	got, epoch := a.InKey(1)
	if epoch != 3 {
		t.Fatalf("epoch rolled back to %d after InstallInitial", epoch)
	}
	if string(got) != string(k) {
		t.Fatal("refreshed key clobbered by InstallInitial")
	}
}
