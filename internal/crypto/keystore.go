package crypto

import "sync"

// KeyStore holds the symmetric session keys one principal shares with every
// other principal, together with the epoch bookkeeping needed for the
// authentication-freshness rules of Section 4.3.1.
//
// Key direction follows the thesis: the key used for messages from i to j is
// chosen by the RECEIVER j and announced to i in a new-key message. So a
// node's "in" keys are the ones it generated (peers use them to send to it)
// and its "out" keys are the latest ones each peer announced.
//
// KeyStore is safe for concurrent use: the replica event loop reads it while
// transports may verify concurrently.
type KeyStore struct {
	mu   sync.RWMutex
	self uint32

	// inKeys[p] authenticates messages p sends to us; we chose it.
	inKeys map[uint32][]byte
	// inEpoch[p] is the epoch of inKeys[p] (bumped when we refresh).
	inEpoch map[uint32]uint32
	// outKeys[p] authenticates messages we send to p; p chose it.
	outKeys  map[uint32][]byte
	outEpoch map[uint32]uint32
}

// NewKeyStore creates an empty key store for principal self.
func NewKeyStore(self uint32) *KeyStore {
	return &KeyStore{
		self:     self,
		inKeys:   make(map[uint32][]byte),
		inEpoch:  make(map[uint32]uint32),
		outKeys:  make(map[uint32][]byte),
		outEpoch: make(map[uint32]uint32),
	}
}

// InstallInitial seeds the pairwise keys between self and peer
// deterministically, as if an offline administrator had distributed them.
// Both ends derive the same value, so clusters come up with working keys
// before any new-key message is exchanged.
func (ks *KeyStore) InstallInitial(peer uint32) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	// Key for peer->self traffic (chosen, conceptually, by self).
	ks.inKeys[peer] = DeriveKey("session", uint64(peer), uint64(ks.self))
	ks.inEpoch[peer] = 0
	// Key for self->peer traffic (chosen by peer).
	ks.outKeys[peer] = DeriveKey("session", uint64(ks.self), uint64(peer))
	ks.outEpoch[peer] = 0
}

// RefreshIn generates a fresh key for messages from peer to self and returns
// it so it can be shipped to peer in a new-key message. epoch must be the
// sender's new epoch number.
func (ks *KeyStore) RefreshIn(peer uint32, epoch uint32, seed uint64) []byte {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	k := DeriveKey("refresh", uint64(peer), uint64(ks.self), uint64(epoch), seed)
	ks.inKeys[peer] = k
	ks.inEpoch[peer] = epoch
	return k
}

// SetOut installs the key peer announced for self->peer traffic.
func (ks *KeyStore) SetOut(peer uint32, key []byte, epoch uint32) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	ks.outKeys[peer] = key
	ks.outEpoch[peer] = epoch
}

// OutKey returns the key and epoch for sending to peer.
func (ks *KeyStore) OutKey(peer uint32) ([]byte, uint32) {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	return ks.outKeys[peer], ks.outEpoch[peer]
}

// InKey returns the key and epoch expected on traffic from peer.
func (ks *KeyStore) InKey(peer uint32) ([]byte, uint32) {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	return ks.inKeys[peer], ks.inEpoch[peer]
}

// MakeAuthenticator computes the vector of MACs for a payload multicast by
// self to principals [0, n). Entry self is left zero.
func (ks *KeyStore) MakeAuthenticator(n int, payload []byte) Authenticator {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	a := Authenticator{MACs: make([]MAC, n)}
	for p := 0; p < n; p++ {
		if uint32(p) == ks.self {
			continue
		}
		key := ks.outKeys[uint32(p)]
		if key == nil {
			continue
		}
		a.MACs[p] = ComputeMAC(key, payload)
		// All out keys share the sender's view of epochs; report the max so
		// receivers with refreshed keys can detect staleness.
		if e := ks.outEpoch[uint32(p)]; e > a.Epoch {
			a.Epoch = e
		}
	}
	return a
}

// CheckAuthenticator verifies the MAC destined to self inside an
// authenticator sent by from, enforcing epoch freshness: tags computed with
// keys older than the current in-epoch for that sender are rejected, which
// is how recovered replicas shed messages forged with stolen keys
// (Section 4.3.2).
func (ks *KeyStore) CheckAuthenticator(from uint32, payload []byte, a Authenticator) bool {
	ks.mu.RLock()
	key := ks.inKeys[from]
	epoch := ks.inEpoch[from]
	ks.mu.RUnlock()
	if key == nil {
		return false
	}
	if int(ks.self) >= len(a.MACs) {
		return false
	}
	if a.Epoch < epoch {
		return false
	}
	return VerifyMAC(key, payload, a.MACs[ks.self])
}

// ComputePointMAC computes the single MAC for a point-to-point message from
// self to peer.
func (ks *KeyStore) ComputePointMAC(peer uint32, payload []byte) MAC {
	ks.mu.RLock()
	key := ks.outKeys[peer]
	ks.mu.RUnlock()
	if key == nil {
		return MAC{}
	}
	return ComputeMAC(key, payload)
}

// CheckPointMAC verifies a point-to-point MAC from peer to self.
func (ks *KeyStore) CheckPointMAC(peer uint32, payload []byte, m MAC) bool {
	ks.mu.RLock()
	key := ks.inKeys[peer]
	ks.mu.RUnlock()
	if key == nil {
		return false
	}
	return VerifyMAC(key, payload, m)
}
