package crypto

import (
	"sync"
	"sync/atomic"
)

// keySnapshot is one immutable generation of a KeyStore's session-key tables.
// Readers grab the current snapshot with a single atomic load and work on it
// without locks; writers build a new snapshot under KeyStore.mu and publish
// it atomically (copy-on-write).
type keySnapshot struct {
	// inKeys[p] authenticates messages p sends to us; we chose it.
	inKeys map[uint32][]byte
	// inEpoch[p] is the epoch of inKeys[p] (bumped when we refresh).
	inEpoch map[uint32]uint32
	// outKeys[p] authenticates messages we send to p; p chose it.
	outKeys  map[uint32][]byte
	outEpoch map[uint32]uint32
}

func newKeySnapshot() *keySnapshot {
	return &keySnapshot{
		inKeys:   make(map[uint32][]byte),
		inEpoch:  make(map[uint32]uint32),
		outKeys:  make(map[uint32][]byte),
		outEpoch: make(map[uint32]uint32),
	}
}

// clone deep-copies the tables (keys themselves are never mutated in place).
func (s *keySnapshot) clone() *keySnapshot {
	c := &keySnapshot{
		inKeys:   make(map[uint32][]byte, len(s.inKeys)),
		inEpoch:  make(map[uint32]uint32, len(s.inEpoch)),
		outKeys:  make(map[uint32][]byte, len(s.outKeys)),
		outEpoch: make(map[uint32]uint32, len(s.outEpoch)),
	}
	for k, v := range s.inKeys {
		c.inKeys[k] = v
	}
	for k, v := range s.inEpoch {
		c.inEpoch[k] = v
	}
	for k, v := range s.outKeys {
		c.outKeys[k] = v
	}
	for k, v := range s.outEpoch {
		c.outEpoch[k] = v
	}
	return c
}

// KeyStore holds the symmetric session keys one principal shares with every
// other principal, together with the epoch bookkeeping needed for the
// authentication-freshness rules of Section 4.3.1.
//
// Key direction follows the thesis: the key used for messages from i to j is
// chosen by the RECEIVER j and announced to i in a new-key message. So a
// node's "in" keys are the ones it generated (peers use them to send to it)
// and its "out" keys are the latest ones each peer announced.
//
// KeyStore is safe for concurrent use and optimized for read-mostly access:
// the ingress pipeline's workers verify MACs against an immutable snapshot
// (one atomic pointer load, no lock), while key refresh from the replica
// event loop publishes a new snapshot copy-on-write. A verification that
// races a refresh sees either the old or the new generation atomically,
// never a torn mix — the epoch freshness check then decides acceptance.
type KeyStore struct {
	self uint32
	mu   sync.Mutex // serializes writers
	snap atomic.Pointer[keySnapshot]
	// gen counts published generations. A verifier that records the
	// generation alongside a verdict can later detect that keys rotated in
	// between and re-verify — the §4.3.2 stale-key defense for verdicts
	// that cross a refresh (the epoch field in an authenticator trailer is
	// attacker-controlled and cannot be trusted for this).
	gen atomic.Uint64
}

// NewKeyStore creates an empty key store for principal self.
func NewKeyStore(self uint32) *KeyStore {
	ks := &KeyStore{self: self}
	ks.snap.Store(newKeySnapshot())
	return ks
}

// mutate runs fn on a private clone of the current snapshot and, if fn
// reports a change, publishes the clone as a new generation. This is the
// ONLY publish path: the snap.Store + gen.Add pairing is the correctness
// core of the copy-on-write scheme and must not be duplicated. Callers
// hold no other KeyStore locks.
func (ks *KeyStore) mutate(fn func(*keySnapshot) bool) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	s := ks.snap.Load().clone()
	if !fn(s) {
		return
	}
	ks.snap.Store(s)
	ks.gen.Add(1)
}

// Generation returns the current key generation. It changes exactly when a
// mutation publishes a new snapshot, so a reader that saw the same value
// before and after an operation worked against current keys throughout.
func (ks *KeyStore) Generation() uint64 { return ks.gen.Load() }

// InstallInitial seeds the pairwise keys between self and peer
// deterministically, as if an offline administrator had distributed them.
// Both ends derive the same value, so clusters come up with working keys
// before any new-key message is exchanged. Re-installing over present keys
// is a true no-op (no new generation), so concurrent lazy installs from
// verification workers can neither roll an epoch back nor churn the
// generation counter.
func (ks *KeyStore) InstallInitial(peer uint32) {
	ks.mutate(func(s *keySnapshot) bool {
		_, haveIn := s.inKeys[peer]
		_, haveOut := s.outKeys[peer]
		if !haveIn {
			// Key for peer->self traffic (chosen, conceptually, by self).
			s.inKeys[peer] = DeriveKey("session", uint64(peer), uint64(ks.self))
			s.inEpoch[peer] = 0
		}
		if !haveOut {
			// Key for self->peer traffic (chosen by peer).
			s.outKeys[peer] = DeriveKey("session", uint64(ks.self), uint64(peer))
			s.outEpoch[peer] = 0
		}
		return !haveIn || !haveOut
	})
}

// RefreshIn generates a fresh key for messages from peer to self and returns
// it so it can be shipped to peer in a new-key message. epoch must be the
// sender's new epoch number.
func (ks *KeyStore) RefreshIn(peer uint32, epoch uint32, seed uint64) []byte {
	k := DeriveKey("refresh", uint64(peer), uint64(ks.self), uint64(epoch), seed)
	ks.mutate(func(s *keySnapshot) bool {
		s.inKeys[peer] = k
		s.inEpoch[peer] = epoch
		return true
	})
	return k
}

// SetOut installs the key peer announced for self->peer traffic.
func (ks *KeyStore) SetOut(peer uint32, key []byte, epoch uint32) {
	ks.mutate(func(s *keySnapshot) bool {
		s.outKeys[peer] = key
		s.outEpoch[peer] = epoch
		return true
	})
}

// OutKey returns the key and epoch for sending to peer.
func (ks *KeyStore) OutKey(peer uint32) ([]byte, uint32) {
	s := ks.snap.Load()
	return s.outKeys[peer], s.outEpoch[peer]
}

// InKey returns the key and epoch expected on traffic from peer.
func (ks *KeyStore) InKey(peer uint32) ([]byte, uint32) {
	s := ks.snap.Load()
	return s.inKeys[peer], s.inEpoch[peer]
}

// MakeAuthenticator computes the vector of MACs for a payload multicast by
// self to principals [0, n). Entry self is left zero.
func (ks *KeyStore) MakeAuthenticator(n int, payload []byte) Authenticator {
	s := ks.snap.Load()
	a := Authenticator{MACs: make([]MAC, n)}
	for p := 0; p < n; p++ {
		if uint32(p) == ks.self {
			continue
		}
		key := s.outKeys[uint32(p)]
		if key == nil {
			continue
		}
		a.MACs[p] = ComputeMAC(key, payload)
		// All out keys share the sender's view of epochs; report the max so
		// receivers with refreshed keys can detect staleness.
		if e := s.outEpoch[uint32(p)]; e > a.Epoch {
			a.Epoch = e
		}
	}
	return a
}

// CheckAuthenticator verifies the MAC destined to self inside an
// authenticator sent by from, enforcing epoch freshness: tags computed with
// keys older than the current in-epoch for that sender are rejected, which
// is how recovered replicas shed messages forged with stolen keys
// (Section 4.3.2).
func (ks *KeyStore) CheckAuthenticator(from uint32, payload []byte, a Authenticator) bool {
	s := ks.snap.Load()
	key := s.inKeys[from]
	if key == nil {
		return false
	}
	if int(ks.self) >= len(a.MACs) {
		return false
	}
	if a.Epoch < s.inEpoch[from] {
		return false
	}
	return VerifyMAC(key, payload, a.MACs[ks.self])
}

// ComputePointMAC computes the single MAC for a point-to-point message from
// self to peer.
func (ks *KeyStore) ComputePointMAC(peer uint32, payload []byte) MAC {
	key, _ := ks.OutKey(peer)
	if key == nil {
		return MAC{}
	}
	return ComputeMAC(key, payload)
}

// CheckPointMAC verifies a point-to-point MAC from peer to self.
func (ks *KeyStore) CheckPointMAC(peer uint32, payload []byte, m MAC) bool {
	key, _ := ks.InKey(peer)
	if key == nil {
		return false
	}
	return VerifyMAC(key, payload, m)
}
