package crypto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDigestDeterministic(t *testing.T) {
	a := DigestOf([]byte("hello"), []byte("world"))
	b := DigestOf([]byte("hello"), []byte("world"))
	if a != b {
		t.Fatal("same input produced different digests")
	}
	c := DigestOf([]byte("helloworld"))
	if a != c {
		t.Fatal("digest must be over concatenation")
	}
}

func TestDigestDistinct(t *testing.T) {
	a := DigestOf([]byte("a"))
	b := DigestOf([]byte("b"))
	if a == b {
		t.Fatal("distinct inputs collided")
	}
	if a.IsZero() {
		t.Fatal("digest of non-empty input is zero")
	}
	if !ZeroDigest.IsZero() {
		t.Fatal("ZeroDigest not zero")
	}
}

func TestDigestOfU64IncludesNumbers(t *testing.T) {
	a := DigestOfU64([]uint64{1, 2}, []byte("x"))
	b := DigestOfU64([]uint64{1, 3}, []byte("x"))
	if a == b {
		t.Fatal("numeric header ignored by digest")
	}
}

func TestMACRoundTrip(t *testing.T) {
	key := DeriveKey("k", 1, 2)
	payload := []byte("some message payload")
	m := ComputeMAC(key, payload)
	if !VerifyMAC(key, payload, m) {
		t.Fatal("MAC did not verify")
	}
	if VerifyMAC(key, append(payload, 'x'), m) {
		t.Fatal("MAC verified for modified payload")
	}
	other := DeriveKey("k", 2, 1)
	if VerifyMAC(other, payload, m) {
		t.Fatal("MAC verified under wrong key")
	}
}

func TestSignVerify(t *testing.T) {
	kp := GenerateKeyPair([]byte("replica-0"))
	payload := []byte("view-change body")
	sig := kp.Sign(payload)
	if len(sig) != SigSize {
		t.Fatalf("signature size %d, want %d", len(sig), SigSize)
	}
	if !Verify(kp.Public, payload, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(kp.Public, []byte("other"), sig) {
		t.Fatal("signature verified for different payload")
	}
	kp2 := GenerateKeyPair([]byte("replica-1"))
	if Verify(kp2.Public, payload, sig) {
		t.Fatal("signature verified under wrong key")
	}
	if Verify(kp.Public, payload, sig[:10]) {
		t.Fatal("truncated signature verified")
	}
}

func TestKeyPairDeterministic(t *testing.T) {
	a := GenerateKeyPair([]byte("seed"))
	b := GenerateKeyPair([]byte("seed"))
	if string(a.Public) != string(b.Public) {
		t.Fatal("same seed produced different keys")
	}
}

// Property: Add/Sub are inverse, commutative, associative — the algebra the
// incremental partition-tree digests depend on.
func TestIncrAddSubInverse(t *testing.T) {
	f := func(a, b [32]byte) bool {
		x, y := IncrOf(Digest(a)), IncrOf(Digest(b))
		return x.Add(y).Sub(y) == x && x.Add(y).Sub(x) == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIncrCommutativeAssociative(t *testing.T) {
	f := func(a, b, c [32]byte) bool {
		x, y, z := IncrOf(Digest(a)), IncrOf(Digest(b)), IncrOf(Digest(c))
		if x.Add(y) != y.Add(x) {
			return false
		}
		return x.Add(y).Add(z) == x.Add(y.Add(z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIncrDigestRoundTrip(t *testing.T) {
	f := func(a [32]byte) bool {
		return IncrOf(Digest(a)).Digest() == Digest(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIncrCarryPropagation(t *testing.T) {
	// all-ones + 1 wraps to zero across every limb boundary
	var ones Digest
	for i := range ones {
		ones[i] = 0xFF
	}
	var one Digest
	one[0] = 1
	sum := IncrOf(ones).Add(IncrOf(one))
	if !sum.IsZero() {
		t.Fatalf("2^256-1 + 1 != 0 (mod 2^256): %v", sum)
	}
	back := sum.Sub(IncrOf(one))
	if back.Digest() != ones {
		t.Fatal("0 - 1 != 2^256-1")
	}
}

func TestKeyStoreInitialSymmetry(t *testing.T) {
	a := NewKeyStore(0)
	b := NewKeyStore(1)
	a.InstallInitial(1)
	b.InstallInitial(0)
	// Key a uses to send to b must equal key b expects from a.
	out, _ := a.OutKey(1)
	in, _ := b.InKey(0)
	if string(out) != string(in) {
		t.Fatal("pairwise keys do not match (a->b)")
	}
	out2, _ := b.OutKey(0)
	in2, _ := a.InKey(1)
	if string(out2) != string(in2) {
		t.Fatal("pairwise keys do not match (b->a)")
	}
	if string(out) == string(out2) {
		t.Fatal("the two directions must use distinct keys")
	}
}

func TestAuthenticatorRoundTrip(t *testing.T) {
	const n = 4
	stores := make([]*KeyStore, n)
	for i := range stores {
		stores[i] = NewKeyStore(uint32(i))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				stores[i].InstallInitial(uint32(j))
			}
		}
	}
	payload := []byte("pre-prepare body")
	auth := stores[0].MakeAuthenticator(n, payload)
	for j := 1; j < n; j++ {
		if !stores[j].CheckAuthenticator(0, payload, auth) {
			t.Fatalf("replica %d rejected valid authenticator", j)
		}
		if stores[j].CheckAuthenticator(0, []byte("tampered"), auth) {
			t.Fatalf("replica %d accepted authenticator for modified payload", j)
		}
		if stores[j].CheckAuthenticator(1, payload, auth) {
			t.Fatalf("replica %d accepted authenticator from wrong claimed sender", j)
		}
	}
}

func TestAuthenticatorFreshness(t *testing.T) {
	a := NewKeyStore(0) // sender
	b := NewKeyStore(1) // receiver
	a.InstallInitial(1)
	b.InstallInitial(0)

	payload := []byte("m")
	old := a.MakeAuthenticator(2, payload)
	if !b.CheckAuthenticator(0, payload, old) {
		t.Fatal("fresh authenticator rejected")
	}

	// Receiver refreshes the key it expects from 0 (epoch 1); sender learns it.
	k := b.RefreshIn(0, 1, 42)
	if b.CheckAuthenticator(0, payload, old) {
		t.Fatal("stale-epoch authenticator accepted after refresh")
	}
	a.SetOut(1, k, 1)
	fresh := a.MakeAuthenticator(2, payload)
	if !b.CheckAuthenticator(0, payload, fresh) {
		t.Fatal("refreshed authenticator rejected")
	}
}

func TestPointMAC(t *testing.T) {
	a := NewKeyStore(0)
	b := NewKeyStore(1)
	a.InstallInitial(1)
	b.InstallInitial(0)
	payload := []byte("reply body")
	m := a.ComputePointMAC(1, payload)
	if !b.CheckPointMAC(0, payload, m) {
		t.Fatal("point MAC rejected")
	}
	if b.CheckPointMAC(0, []byte("x"), m) {
		t.Fatal("point MAC accepted for wrong payload")
	}
}

func TestCheckAuthenticatorUnknownSender(t *testing.T) {
	b := NewKeyStore(1)
	a := Authenticator{MACs: make([]MAC, 4)}
	if b.CheckAuthenticator(7, []byte("m"), a) {
		t.Fatal("accepted authenticator from unknown sender")
	}
}

func TestCheckAuthenticatorShortVector(t *testing.T) {
	a := NewKeyStore(0)
	b := NewKeyStore(5)
	a.InstallInitial(5)
	b.InstallInitial(0)
	auth := a.MakeAuthenticator(3, []byte("m")) // too few entries for id 5
	if b.CheckAuthenticator(0, []byte("m"), auth) {
		t.Fatal("accepted authenticator lacking our entry")
	}
}

func BenchmarkDigest4K(b *testing.B) {
	buf := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(buf)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		_ = DigestOf(buf)
	}
}

func BenchmarkMAC(b *testing.B) {
	key := DeriveKey("k", 0, 1)
	payload := make([]byte, 64)
	for i := 0; i < b.N; i++ {
		_ = ComputeMAC(key, payload)
	}
}

func BenchmarkSign(b *testing.B) {
	kp := GenerateKeyPair([]byte("seed"))
	payload := make([]byte, 64)
	for i := 0; i < b.N; i++ {
		_ = kp.Sign(payload)
	}
}

func BenchmarkVerifySig(b *testing.B) {
	kp := GenerateKeyPair([]byte("seed"))
	payload := make([]byte, 64)
	sig := kp.Sign(payload)
	for i := 0; i < b.N; i++ {
		if !Verify(kp.Public, payload, sig) {
			b.Fatal("verify failed")
		}
	}
}
