// Package transport defines the datagram abstractions every network
// substrate implements: the in-process simulator (internal/simnet) and the
// real UDP transport (internal/udpnet). The protocol engine in internal/pbft
// is written purely against these interfaces, so the same replica code runs
// in simulation and across processes — the structure of §6.1 of Castro's
// thesis, where the replication library sits on an unreliable point-to-point
// datagram service.
//
// A Network hands each principal a Transport (its sending half) and invokes
// its Handler serially, in arrival order, for each inbound datagram. The
// serial-delivery contract is what lets the ingress pipeline
// (internal/ingress) preserve per-sender ordering while fanning decode and
// authentication across a worker pool.
package transport

import "repro/internal/message"

// Handler consumes one raw datagram delivered to an endpoint. A Network
// invokes it from a single goroutine per endpoint, in arrival order; the
// handler must not block for long or it backs up the receive queue (exactly
// like a UDP socket buffer).
type Handler func(payload []byte)

// Transport is the sending half an endpoint uses.
type Transport interface {
	// Self returns this endpoint's principal id.
	Self() message.NodeID
	// Send transmits one datagram to dst.
	//
	// bftlint:send
	Send(dst message.NodeID, payload []byte)
	// Multicast transmits one datagram to every id in dsts.
	//
	// bftlint:send
	Multicast(dsts []message.NodeID, payload []byte)
	// Close detaches the endpoint.
	Close()
}

// Multicaster is an optional Transport extension for the egress pipeline:
// a batched, ownership-transferring send surface. A substrate that
// implements it can coalesce the n per-replica datagrams of one multicast
// into a single submission (one lock round in the simulator, one tight
// syscall loop over one buffer in udpnet) instead of n independent sends.
//
// Ownership: the caller must not touch payload again until release(payload)
// runs; the transport calls release once it no longer references the bytes,
// letting the caller recycle pooled wire buffers. A substrate that retains
// payload indefinitely (the simulator's zero-copy delivery queues) may
// never call release — the buffer then simply falls to the garbage
// collector, which is always safe. release may be nil.
type Multicaster interface {
	// MulticastOwned behaves like Transport.Multicast with the ownership
	// contract above.
	//
	// bftlint:send
	// bftlint:consumes=payload
	MulticastOwned(dsts []message.NodeID, payload []byte, release func([]byte))
	// SendOwned behaves like Transport.Send with the ownership contract
	// above.
	//
	// bftlint:send
	// bftlint:consumes=payload
	SendOwned(dst message.NodeID, payload []byte, release func([]byte))
}

// Network is the attachment point replicas and clients need; the simulated
// network and the UDP address book both provide it.
type Network interface {
	// Attach registers an endpoint that receives datagrams through h and
	// returns its sending half. The handler runs on the network's receive
	// goroutine, never the caller's.
	//
	// bftlint:runs=worker
	Attach(id message.NodeID, h Handler) Transport
}
