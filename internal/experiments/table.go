// Package experiments regenerates every table and figure of the thesis's
// evaluation (Chapter 8) on the simulated substrate. Each experiment is a
// function returning a Table; cmd/bftbench prints them and bench_test.go
// wraps them in testing.B benchmarks. Absolute numbers differ from the 1999
// testbed — the reproduction target is the shape: who wins, by what rough
// factor, and where crossovers sit (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is a formatted experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row.
func (t *Table) Add(cols ...string) { t.Rows = append(t.Rows, cols) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders an aligned text table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// ms renders a duration in milliseconds with three decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

// us renders a duration in microseconds.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1000)
}

// ratio renders a/b with two decimals ("x1.42").
func ratio(a, b time.Duration) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("x%.2f", float64(a)/float64(b))
}

// Spec describes a runnable experiment for the CLI.
type Spec struct {
	ID    string
	What  string
	Paper string // the thesis table/figure it regenerates
	Run   func(scale int) []*Table
}

// All lists every experiment in id order.
func All() []Spec {
	return []Spec{
		{"E1", "latency of 0/0, 0/4, 4/0 operations; BFT vs BFT-PK vs NO-REP", "Tables 8.2-8.5, Figs 8-2..8-4", E1Latency},
		{"E2", "throughput vs number of clients", "Figs 8-7..8-9", E2Throughput},
		{"E3", "impact of each optimization (ablation)", "§8.3.3", E3Ablation},
		{"E4", "scaling the replica group (f=1..4)", "§8.3.4, Figs 8-12..8-15", E4Replicas},
		{"E5", "checkpoint creation cost", "§8.4.1, Table 8.12", E5Checkpoint},
		{"E6", "state transfer", "§8.4.2, Fig 8-16", E6StateTransfer},
		{"E7", "view change latency", "§8.5, Table 8.13", E7ViewChange},
		{"E8", "BFS Andrew-style benchmark vs NO-REP", "§8.6.2, Tables 8.14-8.16", E8BFS},
		{"E9", "proactive recovery", "§8.6.3, Figs 8-18/8-19", E9Recovery},
		{"E10", "analytic model vs measurement", "Ch. 7 vs Ch. 8", E10Model},
		{"E11", "authenticators vs signatures as n grows", "§3.2.1, §8.3.3", E11AuthCrossover},
		{"E12", "request batching knee: serial vs fixed vs adaptive", "§5.1.4-§5.1.5", E12Batching},
		{"E13", "sharded scale-out: throughput vs shard count k", "beyond the paper: §5.1.4 ceiling × k groups", E13Sharding},
		{"E14", "write-ahead log: durability cost + crash-restart time", "beyond the paper: durable replicas (cf. §6.2 non-volatile discussion)", E14WAL},
	}
}

// ByID finds an experiment.
func ByID(id string) (Spec, bool) {
	for _, s := range All() {
		if strings.EqualFold(s.ID, id) {
			return s, true
		}
	}
	return Spec{}, false
}
