package experiments

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/kvservice"
	"repro/internal/pbft"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// WALRow is one durability configuration of the E14 table, shaped for
// BENCH_wal.json. Throughput/latency come from the median-throughput trial
// of several: the box's fsync latency varies enough run to run that a
// single sample misstates the durability tax.
type WALRow struct {
	Config  string  `json:"config"`
	Clients int     `json:"clients"`
	OpsEach int     `json:"ops_per_client"`
	Trials  int     `json:"trials"`
	Tput    float64 `json:"throughput_ops_s"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
	Fsyncs  uint64  `json:"wal_fsyncs"`
	Appends uint64  `json:"wal_appends"`
	Errors  int     `json:"errors"`
}

// WALReport is the machine-readable result of E14 (BENCH_wal.json).
type WALReport struct {
	Experiment string   `json:"experiment"`
	Rows       []WALRow `json:"rows"`
	// GroupCommitOverInMemory is async group-commit throughput over the
	// in-memory (no WAL) baseline at 100 closed-loop clients, medians of
	// the trials; the design target is ≥ 0.7 — durability for less than a
	// third of the throughput.
	GroupCommitOverInMemory float64 `json:"group_commit_over_in_memory_at_100_clients"`
	// Restart-to-caught-up: a replica is killed (un-fsynced tail
	// abandoned) under load, restarted from its log, and timed until its
	// execution frontier rejoins the group's.
	RestartToCaughtUpMs float64 `json:"restart_to_caught_up_ms"`
	ReplayMs            float64 `json:"replay_ms"`
	ReplayedToSeq       uint64  `json:"replayed_to_seq"`
}

// walConfigs are the three durability policies E14 compares. The mutator
// receives the per-run WAL directory ("" = in-memory, no log at all).
func walConfigs() []struct {
	name string
	mut  func(cfg *pbft.Config, dir string)
} {
	return []struct {
		name string
		mut  func(cfg *pbft.Config, dir string)
	}{
		{"inMemory (no WAL)", func(cfg *pbft.Config, dir string) {}},
		{"async group-commit", func(cfg *pbft.Config, dir string) { cfg.WALDir = dir }},
		{"sync every record", func(cfg *pbft.Config, dir string) {
			cfg.WALDir = dir
			cfg.WALSyncEvery = true
		}},
	}
}

// E14WAL measures what durability costs and what it buys: closed-loop
// throughput/latency at 100 clients for no log, async group-commit, and
// fsync-per-record, plus the time for a killed replica to restart from its
// log and catch back up to the live group.
func E14WAL(scale int) []*Table {
	t, _ := E14WALReport(scale)
	return []*Table{t}
}

// E14WALReport runs E14 and also returns the machine-readable report.
func E14WALReport(scale int) (*Table, *WALReport) {
	t := &Table{
		ID:    "E14",
		Title: "write-ahead log: durability cost and crash-restart time (0/0 op), f=1 (n=4)",
		Header: []string{"config", "clients", "ops/client", "tput/s",
			"p50 ms", "p99 ms", "fsyncs", "err"},
	}
	rep := &WALReport{Experiment: "E14"}

	const clients = 100
	const trials = 3
	opsEach := 40 * scale

	// Trials interleave the configs so slow drift in the box's I/O latency
	// lands on all of them equally.
	byConfig := map[string][]WALRow{}
	for trial := 0; trial < trials; trial++ {
		for _, wc := range walConfigs() {
			byConfig[wc.name] = append(byConfig[wc.name],
				runWALTrial(wc.name, wc.mut, clients, opsEach))
		}
	}

	tputs := map[string]float64{}
	for _, wc := range walConfigs() {
		rows := byConfig[wc.name]
		sort.Slice(rows, func(i, j int) bool { return rows[i].Tput < rows[j].Tput })
		row := rows[len(rows)/2]
		row.Trials = trials
		tputs[wc.name] = row.Tput
		rep.Rows = append(rep.Rows, row)
		t.Add(row.Config, fmt.Sprintf("%d", row.Clients),
			fmt.Sprintf("%d", row.OpsEach), fmt.Sprintf("%.0f", row.Tput),
			fmt.Sprintf("%.3f", row.P50Ms), fmt.Sprintf("%.3f", row.P99Ms),
			fmt.Sprintf("%d", row.Fsyncs), fmt.Sprintf("%d", row.Errors))
	}

	if tputs["inMemory (no WAL)"] > 0 {
		rep.GroupCommitOverInMemory = tputs["async group-commit"] / tputs["inMemory (no WAL)"]
	}

	measureRestart(time.Duration(scale)*1500*time.Millisecond, rep)

	t.Note("async group-commit vs in-memory throughput at 100 closed-loop clients, median of %d trials: x%.2f (target ≥ 0.7)", trials, rep.GroupCommitOverInMemory)
	t.Note("kill -9 one replica mid-load, restart from its log: caught up in %.1f ms (replay %.1f ms, to seq %d)",
		rep.RestartToCaughtUpMs, rep.ReplayMs, rep.ReplayedToSeq)
	t.Note("the log records votes before they can matter to the group (checkpoint votes and view changes under a barrier, normal votes on group commit); replay plus state transfer rebuilds the replica without divergence")
	return t, rep
}

// runWALTrial runs one closed-loop trial of one durability config: 100
// clients each issuing opsEach requests back to back.
func runWALTrial(name string, mut func(cfg *pbft.Config, dir string), clients, opsEach int) WALRow {
	dir, err := os.MkdirTemp("", "bft-e14-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	cfg := benchConfig(pbft.ModeMAC)
	mut(&cfg, dir)
	// Same substrate as the E12 knee: 1ms links so agreement rounds (and
	// therefore the fsyncs that ride them) have a real cost.
	net := simnet.New(simnet.WithSeed(cfg.Seed+14),
		simnet.WithDefaults(simnet.LinkConfig{Latency: time.Millisecond}))
	defer net.Close()
	c := pbft.NewCluster(net, cfg, 4, kvservice.Factory, nil)
	c.Start()
	defer c.Stop()

	st := workload.RunClosed(func() workload.Invoker {
		cl := c.NewClient()
		// Closed loop wants each op's true completion time, not a
		// retransmission storm once the loop saturates the group.
		cl.RetryTimeout = 8 * time.Second
		return cl
	}, clients, opsEach,
		func(int) ([]byte, bool) { return kvservice.Noop(), false })
	m := c.Replica(0).Metrics()

	return WALRow{
		Config:  name,
		Clients: clients,
		OpsEach: opsEach,
		Tput:    st.Throughput(),
		P50Ms:   float64(st.Median().Microseconds()) / 1000,
		P99Ms:   float64(st.Percentile(99).Microseconds()) / 1000,
		Fsyncs:  m.WALFsyncs,
		Appends: m.WALAppends,
		Errors:  st.Errors,
	}
}

// measureRestart crashes a backup of a durable cluster mid-load, restarts
// it from its log, and records replay time and time-to-rejoin.
func measureRestart(duration time.Duration, rep *WALReport) {
	dir, err := os.MkdirTemp("", "bft-e14-restart-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	cfg := benchConfig(pbft.ModeMAC)
	cfg.WALDir = dir
	net := simnet.New(simnet.WithSeed(cfg.Seed+15),
		simnet.WithDefaults(simnet.LinkConfig{Latency: time.Millisecond}))
	defer net.Close()
	c := pbft.NewCluster(net, cfg, 4, kvservice.Factory, nil)
	c.Start()
	defer c.Stop()
	pool := newClientPool(c, 100)

	ctx, cancel := context.WithTimeout(context.Background(), 4*duration)
	defer cancel()
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		workload.RunOpenLoop(ctx, pool, 5000, 3*duration,
			func(int) ([]byte, bool) { return kvservice.Noop(), false })
	}()

	// Let the log grow, then crash a backup mid-batch.
	for c.Replica(1).LastExecuted() < 64 {
		time.Sleep(5 * time.Millisecond)
	}
	c.Kill(1)
	time.Sleep(duration / 4) // the group runs ahead while the victim is down

	start := time.Now()
	r := c.Restart(1)
	rep.ReplayedToSeq = uint64(r.LastExecuted())
	// Caught up: the victim's frontier reaches where the group was at
	// restart time and trails the still-moving frontier by less than a
	// checkpoint interval.
	target := c.Replica(0).LastExecuted()
	for {
		v, lead := r.LastExecuted(), c.Replica(0).LastExecuted()
		if v >= target && v+cfg.CheckpointInterval >= lead {
			break
		}
		if time.Since(start) > 2*duration+30*time.Second {
			break // record the timeout rather than hang the experiment
		}
		time.Sleep(2 * time.Millisecond)
	}
	rep.RestartToCaughtUpMs = float64(time.Since(start).Microseconds()) / 1000
	rep.ReplayMs = float64(r.Metrics().ReplayTime.Microseconds()) / 1000
	cancel()
	<-loadDone
}
