package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/kvservice"
	"repro/internal/pbft"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// clientPool multiplexes concurrent open-loop invocations across k distinct
// client principals (the engine admits one operation in flight per
// principal, §2.3.2). Arrivals beyond k queue on the pool, and their latency
// includes the queueing delay — exactly the open-loop signal E12 wants.
type clientPool struct {
	clients chan *pbft.Client
}

func newClientPool(c *pbft.Cluster, k int) *clientPool {
	p := &clientPool{clients: make(chan *pbft.Client, k)}
	for i := 0; i < k; i++ {
		cl := c.NewClient()
		cl.RetryTimeout = 2 * time.Second
		cl.MaxRetries = 8
		p.clients <- cl
	}
	return p
}

func (p *clientPool) InvokeContext(ctx context.Context, op []byte, ro bool) ([]byte, error) {
	select {
	case cl := <-p.clients:
		defer func() { p.clients <- cl }()
		return cl.InvokeContext(ctx, op, ro)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// BatchingRow is one (config, client count) cell of the E12 knee experiment,
// shaped for BENCH_batching.json.
type BatchingRow struct {
	Config    string  `json:"config"`
	Clients   int     `json:"clients"`
	OfferedHz float64 `json:"offered_rate_hz"`
	Tput      float64 `json:"throughput_ops_s"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	FillAvg   float64 `json:"batch_fill_avg"`
	Errors    int     `json:"errors"`
}

// BatchingReport is the machine-readable result of E12 — the repo's
// performance-trajectory record (BENCH_batching.json).
type BatchingReport struct {
	Experiment string        `json:"experiment"`
	Rows       []BatchingRow `json:"rows"`
	// SpeedupAt100 is adaptive throughput over serial (batch=1) throughput
	// at 100 open-loop clients; P50RatioAt1 is adaptive p50 over serial p50
	// at 1 client (the low-load latency guard).
	SpeedupAt100 float64 `json:"adaptive_speedup_at_100_clients"`
	P50RatioAt1  float64 `json:"adaptive_p50_over_serial_at_1_client"`
}

// batchingConfigs are the three proposal policies the knee table compares.
func batchingConfigs() []struct {
	name string
	mut  func(*pbft.Options)
} {
	return []struct {
		name string
		mut  func(*pbft.Options)
	}{
		{"serial (batch=1)", func(o *pbft.Options) { o.Batching = false }},
		{"fixed batch=16", func(o *pbft.Options) { o.AdaptiveBatch = false }},
		{"adaptive", func(o *pbft.Options) {}},
	}
}

// E12Batching regenerates the §5.1.4 batching argument as a knee table:
// open-loop load at 1/10/100 clients against serial (one request per
// pre-prepare), fixed-cap batching, and the adaptive policy. The paper's
// claim is that batching amortizes one agreement round over many requests at
// high load; the adaptive policy must capture that win without giving up
// low-load latency.
func E12Batching(scale int) []*Table {
	t, _ := E12BatchingReport(scale)
	return []*Table{t}
}

// E12BatchingReport runs E12 and also returns the machine-readable report.
func E12BatchingReport(scale int) (*Table, *BatchingReport) {
	duration := time.Duration(scale) * 1500 * time.Millisecond
	t := &Table{
		ID:    "E12",
		Title: "request batching knee: open-loop throughput/latency (0/0 op), f=1 (n=4)",
		Header: []string{"config", "clients", "offered/s", "tput/s",
			"p50 ms", "p95 ms", "fill avg", "err"},
	}
	rep := &BatchingReport{Experiment: "E12"}

	type cellKey struct {
		config  string
		clients int
	}
	cells := map[cellKey]BatchingRow{}

	for _, bc := range batchingConfigs() {
		for _, load := range []struct {
			clients int
			rate    float64
		}{
			{1, 150},
			{10, 2000},
			{100, 10000},
		} {
			cfg := benchConfig(pbft.ModeMAC)
			bc.mut(&cfg.Opt)
			// Unlike the zero-latency micro-benchmark substrate, the knee
			// needs links where an agreement round has a real cost to
			// amortize (the paper's testbed was a switched LAN): with 1ms
			// links, serial agreement caps near AgreementWindow/RTT and
			// batching lifts the ceiling by the fill factor.
			net := simnet.New(simnet.WithSeed(cfg.Seed+12),
				simnet.WithDefaults(simnet.LinkConfig{Latency: time.Millisecond}))
			c := pbft.NewCluster(net, cfg, 4, kvservice.Factory, nil)
			c.Start()
			pool := newClientPool(c, load.clients)
			ctx, cancel := context.WithTimeout(context.Background(), duration+15*time.Second)
			st := workload.RunOpenLoop(ctx, pool, load.rate, duration,
				func(int) ([]byte, bool) { return kvservice.Noop(), false })
			cancel()
			fill := c.Replica(0).Metrics().BatchFillAvg
			c.Stop()
			net.Close()

			row := BatchingRow{
				Config:    bc.name,
				Clients:   load.clients,
				OfferedHz: float64(st.Offered) / st.Elapsed.Seconds(),
				Tput:      st.Throughput(),
				P50Ms:     float64(st.Median().Microseconds()) / 1000,
				P95Ms:     float64(st.Percentile(95).Microseconds()) / 1000,
				FillAvg:   fill,
				Errors:    st.Errors,
			}
			cells[cellKey{bc.name, load.clients}] = row
			rep.Rows = append(rep.Rows, row)
			t.Add(row.Config, fmt.Sprintf("%d", row.Clients),
				fmt.Sprintf("%.0f", row.OfferedHz), fmt.Sprintf("%.0f", row.Tput),
				fmt.Sprintf("%.3f", row.P50Ms), fmt.Sprintf("%.3f", row.P95Ms),
				fmt.Sprintf("%.2f", row.FillAvg), fmt.Sprintf("%d", row.Errors))
		}
	}

	serial100 := cells[cellKey{"serial (batch=1)", 100}]
	adaptive100 := cells[cellKey{"adaptive", 100}]
	if serial100.Tput > 0 {
		rep.SpeedupAt100 = adaptive100.Tput / serial100.Tput
	}
	serial1 := cells[cellKey{"serial (batch=1)", 1}]
	adaptive1 := cells[cellKey{"adaptive", 1}]
	if serial1.P50Ms > 0 {
		rep.P50RatioAt1 = adaptive1.P50Ms / serial1.P50Ms
	}
	t.Note("adaptive vs serial throughput at 100 clients: x%.2f (target ≥ 1.5)", rep.SpeedupAt100)
	t.Note("adaptive vs serial p50 at 1 client: x%.2f (target within 10%%)", rep.P50RatioAt1)
	t.Note("paper shape (§5.1.4): batching amortizes one agreement round over many requests at high load; the adaptive policy keeps single-request latency when idle")
	return t, rep
}
