package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/bft"
	"repro/bft/kv"
	"repro/bft/sharded"
	"repro/internal/workload"
)

// ShardingRow is one shard-count cell of the E13 scale-out sweep, shaped
// for BENCH_sharding.json.
type ShardingRow struct {
	Shards    int     `json:"shards"`
	Clients   int     `json:"clients"`
	PerShard  int     `json:"pool_per_shard"`
	OfferedHz float64 `json:"offered_rate_hz"`
	Tput      float64 `json:"throughput_ops_s"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	FillAvg   float64 `json:"batch_fill_avg"`
	Errors    int     `json:"errors"`
}

// ShardingReport is the machine-readable result of E13 — the repo's
// TPS-vs-shard-count trajectory record (BENCH_sharding.json).
type ShardingReport struct {
	Experiment string        `json:"experiment"`
	Rows       []ShardingRow `json:"rows"`
	// SpeedupAt4 is aggregate throughput at k=4 over k=1 at the 100-client
	// open-loop load point (acceptance floor: ≥ 2.5); SpeedupAt8 extends
	// the curve to k=8 (expected to flatten once the offered load or the
	// host CPU, not the per-group ceiling, binds).
	SpeedupAt4 float64 `json:"speedup_at_4_shards"`
	SpeedupAt8 float64 `json:"speedup_at_8_shards"`
}

// e13GroupOptions is the per-group configuration every shard count runs
// with. The group pipeline is deliberately bounded (AgreementWindow 1 —
// one batch of ≤ 8 in agreement at a time) over 5ms links — a
// metro-area deployment, not a rack: a PBFT group's throughput ceiling
// is roughly window × batch / round-latency, and provisioned
// deployments bound both knobs to cap memory and tail latency. Holding
// the per-group ceiling fixed and realistic is exactly what makes the
// sweep measure SHARDING — k groups, k primaries, k pipelines — rather
// than retuning a single group: every added group contributes its own
// ~batch/round-trip of capacity until the shared host CPU binds.
func e13GroupOptions() bft.Options {
	return bft.Options{
		Replicas:           4,
		CheckpointInterval: 64,
		LogWindow:          128,
		AgreementWindow:    1,
		BatchRequests:      8,
		ViewChangeTimeout:  2 * time.Second,
		RetryTimeout:       2 * time.Second,
		MaxRetries:         8,
		Seed:               13,
	}
}

// E13Sharding sweeps shard count k ∈ {1,2,4,8} at n=4 replicas per group
// under a fixed 100-client open-loop single-key write load. One group's
// ceiling is a primary's pipeline; k independent groups multiply it until
// the offered load (or the host's cores — this table is honest about
// running every group on one machine) binds instead.
func E13Sharding(scale int) []*Table {
	t, _ := E13ShardingReport(scale)
	return []*Table{t}
}

// E13ShardingReport runs E13 and also returns the machine-readable report.
func E13ShardingReport(scale int) (*Table, *ShardingReport) {
	duration := time.Duration(scale) * 1500 * time.Millisecond
	const (
		clients = 100
		rate    = 3000.0
		nKeys   = 256
	)
	t := &Table{
		ID: "E13",
		Title: fmt.Sprintf("sharded scale-out: aggregate put throughput vs shard count, n=4 per group, "+
			"%d open-loop clients at %.0f/s offered", clients, rate),
		Header: []string{"shards", "clients", "pool/shard", "offered/s", "tput/s",
			"p50 ms", "p95 ms", "fill avg", "err"},
	}
	rep := &ShardingReport{Experiment: "E13"}
	tputAt := map[int]float64{}

	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("bench-key-%04d", i))
	}
	val := make([]byte, 16)

	for _, k := range []int{1, 2, 4, 8} {
		perShard := (clients + k - 1) / k
		cluster := sharded.New(sharded.Options{
			Shards:   k,
			PoolSize: perShard,
			Group:    e13GroupOptions(),
			NetworkFactory: func(g int) bft.Network {
				return bft.SimNetwork(
					bft.SimSeed(int64(13+101*g)),
					bft.SimLinks(bft.LinkProfile{Latency: 5 * time.Millisecond}),
				)
			},
		}, kv.KeyedFactory)
		cluster.Start()
		cl := cluster.NewClient()

		// Give each run long enough past the arrival window to drain the
		// open-loop backlog an over-offered configuration accumulates: the
		// drain IS the measurement (completed ops over total elapsed ≈
		// sustained capacity when offered > capacity, ≈ offered when not).
		ctx, cancel := context.WithTimeout(context.Background(), duration+90*time.Second)
		st := workload.RunOpenLoop(ctx, cl, rate, duration, func(i int) ([]byte, bool) {
			return kv.Put(uint64(time.Now().UnixNano()), keys[i%nKeys], val), false
		})
		cancel()
		fill := cluster.Metrics().Total.BatchFillAvg
		cluster.Stop()

		row := ShardingRow{
			Shards:    k,
			Clients:   clients,
			PerShard:  perShard,
			OfferedHz: float64(st.Offered) / st.Elapsed.Seconds(),
			Tput:      st.Throughput(),
			P50Ms:     float64(st.Median().Microseconds()) / 1000,
			P95Ms:     float64(st.Percentile(95).Microseconds()) / 1000,
			FillAvg:   fill,
			Errors:    st.Errors,
		}
		tputAt[k] = row.Tput
		rep.Rows = append(rep.Rows, row)
		t.Add(fmt.Sprintf("%d", k), fmt.Sprintf("%d", clients), fmt.Sprintf("%d", perShard),
			fmt.Sprintf("%.0f", row.OfferedHz), fmt.Sprintf("%.0f", row.Tput),
			fmt.Sprintf("%.3f", row.P50Ms), fmt.Sprintf("%.3f", row.P95Ms),
			fmt.Sprintf("%.2f", row.FillAvg), fmt.Sprintf("%d", row.Errors))
	}

	if tputAt[1] > 0 {
		rep.SpeedupAt4 = tputAt[4] / tputAt[1]
		rep.SpeedupAt8 = tputAt[8] / tputAt[1]
	}
	t.Note("aggregate throughput at 4 shards vs 1: x%.2f (target ≥ 2.5)", rep.SpeedupAt4)
	t.Note("aggregate throughput at 8 shards vs 1: x%.2f", rep.SpeedupAt8)
	t.Note("one group's ceiling ≈ window×batch/round-latency; k independent groups multiply it until offered load or host CPU binds (all groups share this machine)")
	return t, rep
}
