package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestTableFormatting(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	tb.Add("1", "2")
	tb.Note("hello %d", 7)
	out := tb.String()
	for _, want := range []string{"== X: demo ==", "a", "bb", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHelpers(t *testing.T) {
	if ms(1500*time.Microsecond) != "1.500" {
		t.Fatalf("ms: %s", ms(1500*time.Microsecond))
	}
	if us(1500*time.Nanosecond) != "1.5" {
		t.Fatalf("us: %s", us(1500*time.Nanosecond))
	}
	if ratio(2*time.Second, time.Second) != "x2.00" {
		t.Fatal("ratio")
	}
	if ratio(time.Second, 0) != "-" {
		t.Fatal("ratio zero")
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("%d experiments, want 14", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if s.Run == nil || s.ID == "" || s.Paper == "" {
			t.Fatalf("incomplete spec %+v", s)
		}
		if seen[s.ID] {
			t.Fatalf("duplicate id %s", s.ID)
		}
		seen[s.ID] = true
	}
	if _, ok := ByID("e5"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("phantom experiment")
	}
}

// Smoke-run the cheap experiments at minimum scale so the harness itself is
// covered by `go test`. The heavyweight cluster experiments run under
// -bench (see bench_test.go) and in cmd/bftbench.
func TestE5CheckpointSmoke(t *testing.T) {
	tables := E5Checkpoint(1)
	if len(tables) != 2 || len(tables[0].Rows) != 9 {
		t.Fatalf("unexpected table shape: %+v", tables)
	}
	// The live-replica table: one inline and one staged row, both with
	// checkpoint work recorded through Replica.Metrics().
	live := tables[1]
	if len(live.Rows) != 2 {
		t.Fatalf("live table rows: %+v", live.Rows)
	}
	for _, row := range live.Rows {
		if row[1] == "0" || row[3] == "0" {
			t.Fatalf("live replica row recorded no checkpoint work: %v", row)
		}
	}
}

func TestE11CrossoverSmoke(t *testing.T) {
	tables := E11AuthCrossover(1)
	rows := tables[0].Rows
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// At n=4 MACs must win by a mile (the protocol's core premise).
	if rows[0][3] != "true" {
		t.Fatalf("MACs lost at n=4: %v", rows[0])
	}
}

func TestE1LatencySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	tables := E1Latency(1)
	if len(tables) != 1 {
		t.Fatal("table count")
	}
	if len(tables[0].Rows) < 7 {
		t.Fatalf("rows: %d", len(tables[0].Rows))
	}
	for _, row := range tables[0].Rows {
		if row[2] == "0.000" {
			t.Fatalf("zero latency in row %v", row)
		}
	}
}
