package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/kvservice"
	"repro/internal/message"
	"repro/internal/pbft"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// benchConfig is the shared cluster configuration for micro benchmarks.
func benchConfig(mode pbft.Mode) pbft.Config {
	return pbft.Config{
		Mode:               mode,
		Opt:                pbft.DefaultOptions(),
		CheckpointInterval: 64,
		LogWindow:          128,
		ViewChangeTimeout:  2 * time.Second, // avoid spurious view changes under load
		StatusInterval:     100 * time.Millisecond,
		StateSize:          kvservice.MinStateSize + 128*1024,
		PageSize:           4096,
		Fanout:             16,
		Seed:               1,
	}
}

func newKVCluster(n int, cfg pbft.Config) *pbft.Cluster {
	c := pbft.NewLocalCluster(n, cfg, kvservice.Factory, nil)
	c.Start()
	return c
}

// microOp describes one of the paper's micro-benchmark operations (§8.1):
// "operation a/b has a KB argument and b KB result".
type microOp struct {
	name string
	op   []byte
	ro   bool // eligible for the read-only optimization
}

func microOps() []microOp {
	return []microOp{
		{"0/0", kvservice.Noop(), false},
		{"4/0", kvservice.WriteBlob(make([]byte, 4096)), false},
		{"0/4", kvservice.ReadBlob(4096), true},
	}
}

// E1Latency regenerates the latency micro-benchmarks: each operation's
// latency under BFT (read-write and, where legal, read-only), BFT-PK, and
// the unreplicated NO-REP baseline.
func E1Latency(scale int) []*Table {
	iters := 20 * scale
	t := &Table{
		ID:    "E1",
		Title: "operation latency (ms), f=1 (n=4)",
		Header: []string{"op", "mode", "mean", "p50", "p95",
			"vs NO-REP"},
	}

	type cell struct {
		op, mode string
		st       *workload.Stats
	}
	var cells []cell
	noRep := map[string]time.Duration{}

	// NO-REP baseline.
	{
		net := simnet.New(simnet.WithSeed(2))
		srv := baseline.NewServer(net, kvservice.MinStateSize+128*1024, 4096, kvservice.Factory)
		srv.Start()
		cl := baseline.NewClient(message.ClientIDBase, net)
		for _, op := range microOps() {
			st := workload.MeasureLatency(cl, iters, func(int) ([]byte, bool) { return op.op, false })
			cells = append(cells, cell{op.name, "NO-REP", st})
			noRep[op.name] = st.Mean()
		}
		cl.Close()
		srv.Stop()
		net.Close()
	}

	// BFT (MAC) read-write and read-only.
	{
		c := newKVCluster(4, benchConfig(pbft.ModeMAC))
		cl := c.NewClient()
		for _, op := range microOps() {
			st := workload.MeasureLatency(cl, iters, func(int) ([]byte, bool) { return op.op, false })
			cells = append(cells, cell{op.name, "BFT rw", st})
			if op.ro {
				st := workload.MeasureLatency(cl, iters, func(int) ([]byte, bool) { return op.op, true })
				cells = append(cells, cell{op.name, "BFT ro", st})
			}
		}
		c.Stop()
	}

	// BFT-PK.
	{
		c := newKVCluster(4, benchConfig(pbft.ModePK))
		cl := c.NewClient()
		for _, op := range microOps() {
			st := workload.MeasureLatency(cl, iters, func(int) ([]byte, bool) { return op.op, false })
			cells = append(cells, cell{op.name, "BFT-PK rw", st})
		}
		c.Stop()
	}

	for _, cl := range cells {
		t.Add(cl.op, cl.mode, ms(cl.st.Mean()), ms(cl.st.Median()), ms(cl.st.Percentile(95)),
			ratio(cl.st.Mean(), noRep[cl.op]))
	}
	t.Note("paper shape: BFT within a small factor of NO-REP; BFT-PK an order of magnitude slower; read-only cuts BFT latency roughly in half")
	return []*Table{t}
}

// E2Throughput regenerates the throughput-vs-clients curves.
func E2Throughput(scale int) []*Table {
	opsEach := 10 * scale
	clientCounts := []int{1, 5, 10, 20}
	var tables []*Table
	for _, op := range microOps() {
		t := &Table{
			ID:     "E2",
			Title:  fmt.Sprintf("throughput, operation %s (ops/s)", op.name),
			Header: []string{"clients", "BFT", "BFT ro", "NO-REP"},
		}
		for _, nc := range clientCounts {
			row := []string{fmt.Sprintf("%d", nc)}

			c := newKVCluster(4, benchConfig(pbft.ModeMAC))
			st := workload.RunClosed(func() workload.Invoker { return c.NewClient() },
				nc, opsEach, func(int) ([]byte, bool) { return op.op, false })
			row = append(row, fmt.Sprintf("%.0f", st.Throughput()))
			if op.ro {
				st := workload.RunClosed(func() workload.Invoker { return c.NewClient() },
					nc, opsEach, func(int) ([]byte, bool) { return op.op, true })
				row = append(row, fmt.Sprintf("%.0f", st.Throughput()))
			} else {
				row = append(row, "-")
			}
			c.Stop()

			net := simnet.New(simnet.WithSeed(3))
			srv := baseline.NewServer(net, kvservice.MinStateSize+128*1024, 4096, kvservice.Factory)
			srv.Start()
			next := message.ClientIDBase
			st = workload.RunClosed(func() workload.Invoker {
				cl := baseline.NewClient(next, net)
				next++
				return cl
			}, nc, opsEach, func(int) ([]byte, bool) { return op.op, false })
			row = append(row, fmt.Sprintf("%.0f", st.Throughput()))
			srv.Stop()
			net.Close()

			t.Add(row...)
		}
		t.Note("paper shape: throughput grows with clients until the primary saturates; batching keeps BFT within a small factor of NO-REP")
		tables = append(tables, t)
	}
	return tables
}

// E3Ablation measures each Chapter 5 optimization's contribution by
// disabling it.
func E3Ablation(scale int) []*Table {
	iters := 15 * scale
	loadClients := 10
	type variant struct {
		name string
		mut  func(*pbft.Config)
	}
	variants := []variant{
		{"full BFT", func(c *pbft.Config) {}},
		{"no tentative exec", func(c *pbft.Config) { c.Opt.TentativeExec = false }},
		{"no digest replies", func(c *pbft.Config) { c.Opt.DigestReplies = false }},
		{"no batching", func(c *pbft.Config) { c.Opt.Batching = false }},
		{"no separate req", func(c *pbft.Config) { c.Opt.SeparateRequests = false }},
		{"no read-only opt", func(c *pbft.Config) { c.Opt.ReadOnly = false }},
		{"serial ingress", func(c *pbft.Config) { c.Opt.Pipeline = false }},
		{"serial egress", func(c *pbft.Config) { c.Opt.EgressPipeline = false }},
		{"inline execution", func(c *pbft.Config) { c.Opt.ExecPipeline = false }},
		{"signatures (BFT-PK)", func(c *pbft.Config) { c.Mode = pbft.ModePK }},
	}
	lat := &Table{
		ID:     "E3",
		Title:  "ablation: latency (ms) per configuration",
		Header: []string{"configuration", "0/0 rw", "4/0 rw", "0/4 ro"},
	}
	tput := &Table{
		ID:     "E3",
		Title:  fmt.Sprintf("ablation: 0/0 throughput with %d clients (ops/s)", loadClients),
		Header: []string{"configuration", "ops/s"},
	}
	for _, v := range variants {
		cfg := benchConfig(pbft.ModeMAC)
		// Pin all three pipelines on before each mutation (the defaults
		// adapt to core count): every row then differs from "full BFT" by
		// exactly the named optimization, and the "serial ingress" /
		// "serial egress" / "inline execution" rows are real ablations on
		// any host.
		cfg.Opt.Pipeline = true
		cfg.Opt.EgressPipeline = true
		cfg.Opt.ExecPipeline = true
		v.mut(&cfg)
		c := newKVCluster(4, cfg)
		cl := c.NewClient()

		row := []string{v.name}
		for _, op := range microOps() {
			ro := op.ro
			st := workload.MeasureLatency(cl, iters, func(int) ([]byte, bool) { return op.op, ro })
			row = append(row, ms(st.Mean()))
		}
		lat.Add(row[0], row[2], row[3], row[1]) // order: 0/0, 4/0, 0/4

		st := workload.RunClosed(func() workload.Invoker { return c.NewClient() },
			loadClients, 10*scale, func(int) ([]byte, bool) { return kvservice.Noop(), false })
		tput.Add(v.name, fmt.Sprintf("%.0f", st.Throughput()))
		c.Stop()
	}
	lat.Note("rows use the optimization set named; read-only column degenerates to read-write when the optimization is off")
	return []*Table{lat, tput}
}

// E4Replicas measures latency and throughput as the group grows.
func E4Replicas(scale int) []*Table {
	iters := 15 * scale
	t := &Table{
		ID:     "E4",
		Title:  "scaling the replica group",
		Header: []string{"n", "f", "0/0 rw latency (ms)", "0/0 tput 10 clients (ops/s)"},
	}
	for _, n := range []int{4, 7, 10, 13} {
		cfg := benchConfig(pbft.ModeMAC)
		c := newKVCluster(n, cfg)
		cl := c.NewClient()
		st := workload.MeasureLatency(cl, iters, func(int) ([]byte, bool) { return kvservice.Noop(), false })
		tp := workload.RunClosed(func() workload.Invoker { return c.NewClient() },
			10, 10*scale, func(int) ([]byte, bool) { return kvservice.Noop(), false })
		t.Add(fmt.Sprintf("%d", n), fmt.Sprintf("%d", (n-1)/3),
			ms(st.Mean()), fmt.Sprintf("%.0f", tp.Throughput()))
		c.Stop()
	}
	t.Note("paper shape: latency grows modestly with n (authenticators are linear in n); throughput degrades gently")
	return []*Table{t}
}
